//! Where does the FMM spend its energy?
//!
//! The paper's Section IV analysis in one program: profile the FMM with
//! the counter pipeline, run it on the simulated TK1 across DVFS
//! settings, and decompose the energy by instruction class, memory
//! level, and the computation/data/constant-power buckets (Figures 4, 6
//! and 7), including the prefetch what-if from the conclusion.
//!
//! Run with: `cargo run --release --example energy_breakdown`

use compat::rng::StdRng;
use fmm_energy::model::experiments::SYSTEM_SETTINGS;
use fmm_energy::prelude::*;

fn main() {
    println!("fitting the model ...");
    let dataset = run_sweep(&SweepConfig::default());
    let model = fit_model(dataset.training()).model;

    // Profile an FMM run (a scaled-down F1: N = 32768, Q = 128).
    let n = 32_768;
    let q = 128;
    let mut rng = StdRng::seed_from_u64(4);
    let points: Vec<[f64; 3]> =
        (0..n).map(|_| [rng.random(), rng.random(), rng.random()]).collect();
    let densities: Vec<f64> = (0..n).map(|_| 2.0 * rng.random::<f64>() - 1.0).collect();
    let plan = FmmPlan::new(&points, &densities, q, 4, M2lMethod::Fft);
    let profile = profile_plan(&plan, &CostModel::default());
    let ops = profile.total_ops();

    // --- Figure 4 flavor: instruction and data-access mix. -------------
    println!("\ninstruction mix (N = {n}, Q = {q}):");
    let compute = ops.total_compute();
    println!("  DP floating point : {:5.1}%", ops.get(OpClass::FlopDp) / compute * 100.0);
    println!("  integer           : {:5.1}%", ops.get(OpClass::Int) / compute * 100.0);
    println!("data accesses by level (words):");
    let mem = ops.total_memory_ops();
    for class in [OpClass::Shared, OpClass::L1, OpClass::L2, OpClass::Dram] {
        println!("  {:>4}              : {:5.1}%", class.name(), ops.get(class) / mem * 100.0);
    }

    // --- Figures 6 & 7 flavor: energy decomposition across settings. ---
    println!("\nenergy decomposition per DVFS setting:");
    println!(
        "{:>8} {:>9} {:>12} {:>8} {:>8} {:>10}",
        "setting", "time s", "energy J", "comp %", "data %", "constant %"
    );
    let mut device = Device::new(11);
    for sys in SYSTEM_SETTINGS {
        let setting = sys.setting();
        device.set_operating_point(setting);
        let time_s: f64 = profile.kernels().iter().map(|k| device.execute(k).duration_s).sum();
        let report = BreakdownReport::new(&model, &ops, setting, time_s);
        println!(
            "{:>8} {:>9.3} {:>12.3} {:>7.1}% {:>7.1}% {:>9.1}%",
            setting.label(),
            time_s,
            report.breakdown.total_j(),
            report.buckets[0].share * 100.0,
            report.buckets[1].share * 100.0,
            report.buckets[2].share * 100.0,
        );
    }

    // --- The two headline observations. ---------------------------------
    let s1 = SYSTEM_SETTINGS[0].setting();
    device.set_operating_point(s1);
    let t1: f64 = profile.kernels().iter().map(|k| device.execute(k).duration_s).sum();
    let report = BreakdownReport::new(&model, &ops, s1, t1);
    println!(
        "\ninteger ops are {:.0}% of instructions but only {:.0}% of compute energy;",
        ops.get(OpClass::Int) / compute * 100.0,
        report.integer_share_of_compute() * 100.0
    );
    println!(
        "DRAM is {:.0}% of accesses but {:.0}% of data-access energy.",
        ops.get(OpClass::Dram) / mem * 100.0,
        report.dram_share_of_data() * 100.0
    );

    // --- Prefetch what-if (the paper's concluding scenario). ------------
    println!("\nprefetch what-if at {} (time {:.3} s):", s1.label(), t1);
    for unused in [0.1, 0.3] {
        for slowdown in [1.0, 1.05] {
            let verdict = prefetch_whatif(
                &model,
                &PrefetchScenario { ops, time_s: t1, unused_fraction: unused, slowdown },
                s1,
            );
            println!(
                "  {:.0}% unused, {:.2}x slowdown: {} ({:+.4} J, break-even {:.4}x)",
                unused * 100.0,
                slowdown,
                if verdict.should_disable() { "disable prefetch" } else { "keep prefetch" },
                verdict.savings_j,
                verdict.breakeven_slowdown
            );
        }
    }
}
