//! Quickstart: fit the DVFS-aware energy model and use it.
//!
//! Mirrors the paper's Section II end to end:
//!   1. sweep the intensity microbenchmarks over the Table I settings,
//!   2. fit the model constants by NNLS,
//!   3. validate on the held-out settings,
//!   4. predict the energy of a new kernel and pick its best DVFS point.
//!
//! Run with: `cargo run --release --example quickstart`

use fmm_energy::prelude::*;

fn main() {
    // 1. Measure.  The default config is the paper's: all five benchmark
    //    families at 103 intensity points across the 16 Table I settings.
    println!(
        "sweeping microbenchmarks over {} settings ...",
        SweepConfig::default().settings.len()
    );
    let dataset = run_sweep(&SweepConfig::default());
    println!("collected {} samples", dataset.len());

    // 2. Fit on the training ("T") split.
    let report = fit_model(dataset.training());
    let model = report.model;
    println!(
        "fit {} samples, training RMS error {:.2}%",
        report.samples,
        report.train_rms_rel * 100.0
    );

    // The derived per-op energies at maximum frequency (the paper's
    // Table I, first row):
    let s_max = Setting::max_performance();
    let (sp, dp, int, sm, l2, dram, pi0) = model.table1_row(s_max);
    println!("at {}: ε_SP {sp:.1} pJ, ε_DP {dp:.1} pJ, ε_Int {int:.1} pJ,", s_max.label());
    println!("           ε_SM {sm:.1} pJ, ε_L2 {l2:.1} pJ, ε_DRAM {dram:.0} pJ, π0 {pi0:.2} W");

    // 3. Validate on the held-out "V" settings.
    let validation = holdout_validation(&dataset);
    println!("holdout validation: {}", validation.stats.summary());

    // 4. Use the model: predict a kernel's energy across settings and
    //    pick the most efficient one.
    let kernel = KernelProfile::new(
        "user-kernel",
        OpVector::from_pairs(&[(OpClass::FlopSp, 5e9), (OpClass::Int, 1e9), (OpClass::Dram, 5e7)]),
    );
    let mut device = Device::new(42);
    let mut best: Option<(f64, Setting)> = None;
    for setting in Setting::all() {
        device.set_operating_point(setting);
        let execution = device.execute(&kernel);
        let joules = model.predict_energy_j(&kernel.ops, setting, execution.duration_s);
        if best.map_or(true, |(e, _)| joules < e) {
            best = Some((joules, setting));
        }
    }
    let (joules, setting) = best.expect("105 settings scanned");
    println!("predicted best setting for the kernel: {} ({:.3} J)", setting.label(), joules);
    let max_op = Setting::max_performance();
    device.set_operating_point(max_op);
    let t = device.execute(&kernel).duration_s;
    let at_max = model.predict_energy_j(&kernel.ops, max_op, t);
    println!(
        "racing to halt at {} would use {:.3} J ({:+.1}%)",
        max_op.label(),
        at_max,
        (at_max / joules - 1.0) * 100.0
    );
}
