//! Energy autotuning: the fitted model vs the race-to-halt time oracle.
//!
//! Reproduces the paper's Section II-E experiment on a subset of the
//! microbenchmark suite and prints a Table II-style summary, then shows
//! the crossover the paper explains in Section IV-C: when constant power
//! dominates (low utilization), racing to halt *is* energy-optimal.
//!
//! Run with: `cargo run --release --example autotune`

use fmm_energy::prelude::*;

fn main() {
    println!("fitting the model (sweep + NNLS) ...");
    let dataset = run_sweep(&SweepConfig::default());
    let model = fit_model(dataset.training()).model;

    println!("\nautotuning each benchmark family over all 105 DVFS settings:");
    println!("{:<16} {:>22} {:>22}", "benchmark", "model mispredictions", "oracle mispredictions");
    let outcomes = autotune_microbenchmarks(
        &model,
        &[
            MicrobenchKind::SinglePrecision,
            MicrobenchKind::DoublePrecision,
            MicrobenchKind::Integer,
            MicrobenchKind::SharedMemory,
            MicrobenchKind::L2,
        ],
        7,
    );
    for o in &outcomes {
        println!(
            "{:<16} {:>15} / {:<4} {:>15} / {:<4}  (oracle loses {:.1}% mean)",
            o.kind.name(),
            o.model.mispredictions,
            o.cases,
            o.oracle.mispredictions,
            o.cases,
            o.oracle.mean_lost_pct()
        );
    }

    // The crossover: sweep utilization for one compute-bound kernel.
    println!("\nrace-to-halt penalty as constant power comes to dominate:");
    println!("{:>12} {:>16} {:>18}", "utilization", "constant share", "race-to-halt loss");
    let base = MicrobenchKind::SinglePrecision.instance(64.0);
    for util in [1.0, 0.5, 0.25, 0.1] {
        let kernel = base.kernel().clone().with_utilization(util);
        let mut device = Device::new(99);
        let mut meter = PowerMon::new(100);
        let settings: Vec<Setting> = Setting::all().collect();
        let mut energies = Vec::new();
        let mut times = Vec::new();
        for &s in &settings {
            device.set_operating_point(s);
            let m = meter.measure(&mut device, &kernel);
            energies.push(m.measured_energy_j);
            times.push(m.execution.duration_s);
        }
        let best = (0..settings.len())
            .min_by(|&a, &b| energies[a].partial_cmp(&energies[b]).unwrap())
            .unwrap();
        let fastest =
            (0..settings.len()).min_by(|&a, &b| times[a].partial_cmp(&times[b]).unwrap()).unwrap();
        let share =
            BreakdownReport::new(&model, &kernel.ops, settings[best], times[best]).constant_share();
        println!(
            "{util:>12.2} {:>15.1}% {:>17.1}%",
            share * 100.0,
            (energies[fastest] / energies[best] - 1.0) * 100.0
        );
    }
    println!("\nthis is why the FMM — at under a quarter of peak IPC — is best run");
    println!("at maximum frequency, while the saturating microbenchmarks are not.");
}
