//! DVFS governors racing on the FMM's phase sequence.
//!
//! The paper's Related Work contrasts model-based DVFS selection with
//! system-level, slack-reactive governors.  This example stages that
//! comparison directly: the FMM's six phase kernels (profiled at
//! N = 32768, Q = 128) run under four governors, and the energy roofline
//! shows *why* the winners win.
//!
//! Run with: `cargo run --release --example governor_study`

use compat::rng::StdRng;
use fmm_energy::model::roofline::EnergyRoofline;
use fmm_energy::platform::{EnergyEstimates, Governor};
use fmm_energy::prelude::*;

fn main() {
    // Fit the model (its estimates drive the model-based governor).
    println!("fitting the model ...");
    let dataset = run_sweep(&SweepConfig::default());
    let model = fit_model(dataset.training()).model;
    let estimates = EnergyEstimates {
        c0_pj_per_v2: model.c0_pj_per_v2,
        c1_proc_w_per_v: model.c1_proc_w_per_v,
        c1_mem_w_per_v: model.c1_mem_w_per_v,
        p_misc_w: model.p_misc_w,
    };

    // Profile the FMM's phases into executable kernels.
    let n = 32_768;
    let mut rng = StdRng::seed_from_u64(7);
    let pts: Vec<[f64; 3]> = (0..n).map(|_| [rng.random(), rng.random(), rng.random()]).collect();
    let den: Vec<f64> = (0..n).map(|_| rng.random::<f64>() - 0.5).collect();
    let plan = FmmPlan::new(&pts, &den, 128, 4, M2lMethod::Fft);
    let kernels = profile_plan(&plan, &CostModel::default()).kernels();

    println!("\nrunning the FMM phase sequence under four governors:\n");
    println!("{:<28} {:>10} {:>12} {:>24}", "governor", "time s", "energy J", "settings used");
    let governors: Vec<(&str, Governor)> = vec![
        ("performance (race-to-halt)", Governor::Performance),
        ("powersave", Governor::Powersave),
        ("ondemand (95% target)", Governor::OnDemand { threshold: 0.95 }),
        ("model-based (this paper)", Governor::ModelBased(estimates)),
    ];
    let mut device = Device::new(99);
    for (name, gov) in governors {
        let run = gov.run(&mut device, &kernels);
        let mut used: Vec<String> = run.settings.iter().map(|s| s.label()).collect();
        used.dedup();
        println!(
            "{name:<28} {:>10.3} {:>12.3} {:>24}",
            run.total_time_s,
            run.total_energy_j,
            used.join(" ")
        );
    }

    // Why: the energy roofline per setting.
    println!("\n{}", EnergyRoofline::new(&model).render(Setting::max_performance(), 44));
    println!(
        "{}",
        EnergyRoofline::new(&model)
            .render(Setting::from_frequencies(396.0, 204.0).expect("valid setting"), 44,)
    );
    println!("the FMM's effective intensity sits left of the energy balance at every");
    println!("setting, so constant power dominates and the fastest clocks win — while a");
    println!("saturating high-intensity kernel sits right of it and profits from slowing down.");
}
