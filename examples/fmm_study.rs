//! The FMM as a numerical method: accuracy, adaptivity, and the
//! compute-bound/bandwidth-bound phase dichotomy.
//!
//! This is the paper's Section III made runnable: build the
//! kernel-independent FMM over a particle distribution, check it against
//! the O(N²) direct sum, and show how the `Q` parameter (max points per
//! box) shifts work between the compute-bound U list and the
//! FFT-accelerated, bandwidth-bound V list.
//!
//! Run with: `cargo run --release --example fmm_study`

use compat::rng::StdRng;
use fmm_energy::prelude::*;

fn main() {
    let n = 8192;
    let mut rng = StdRng::seed_from_u64(2016);
    let points: Vec<[f64; 3]> =
        (0..n).map(|_| [rng.random(), rng.random(), rng.random()]).collect();
    let densities: Vec<f64> = (0..n).map(|_| 2.0 * rng.random::<f64>() - 1.0).collect();

    // --- Accuracy: FMM vs direct sum at two surface orders. -----------
    println!("reference O(N²) direct sum over {n} points ...");
    let reference = direct_sum(&points, &densities);
    for p in [4, 8] {
        let plan = FmmPlan::new(&points, &densities, 64, p, M2lMethod::Fft);
        let potentials = FmmEvaluator::new().evaluate(&plan);
        let err = relative_l2_error(&potentials, &reference);
        println!("surface order p = {p}: relative L2 error {err:.2e}");
    }

    // --- The two M2L paths agree. --------------------------------------
    let dense =
        FmmEvaluator::new().evaluate(&FmmPlan::new(&points, &densities, 64, 4, M2lMethod::Dense));
    let fft =
        FmmEvaluator::new().evaluate(&FmmPlan::new(&points, &densities, 64, 4, M2lMethod::Fft));
    println!(
        "dense vs FFT M2L discrepancy: {:.2e} (same operator, different evaluation)",
        relative_l2_error(&fft, &dense)
    );

    // --- Q shifts the U/V balance (the paper's tuning knob). ----------
    println!("\nQ sweep (N = {n}):");
    println!("{:>6} {:>8} {:>14} {:>14} {:>10}", "Q", "leaves", "U flops", "V flops", "U/V");
    for q in [32, 64, 128, 256] {
        let plan = FmmPlan::new(&points, &densities, q, 4, M2lMethod::Fft);
        let profile = profile_plan(&plan, &CostModel::default());
        let u = profile.phase(Phase::U).ops().total_flops();
        let v = profile.phase(Phase::V).ops().total_flops();
        println!(
            "{q:>6} {:>8} {u:>14.3e} {v:>14.3e} {:>10.2}",
            plan.tree.num_leaves(),
            u / v.max(1.0)
        );
        println!("       {}", kifmm::TreeStats::compute(&plan.tree, &plan.lists).summary());
    }

    // --- Forces: the gradient path, validated against the direct sum. -
    let plan = FmmPlan::new(&points, &densities, 64, 8, M2lMethod::Fft);
    let (_, gradients) = FmmEvaluator::new().evaluate_with_gradient(&plan);
    let g0 = gradients[0];
    println!(
        "\nforces come with the potentials: ∇f(x_0) = [{:+.3e}, {:+.3e}, {:+.3e}]",
        g0[0], g0[1], g0[2]
    );
    println!("\nlarger Q -> more direct (U) work per box, higher arithmetic intensity;");
    println!("smaller Q -> deeper tree, more FFT (V) translations, more bandwidth demand.");

    // --- Adaptive distributions exercise the W/X lists. ----------------
    let mut clustered: Vec<[f64; 3]> = Vec::with_capacity(n);
    for i in 0..n {
        if i % 2 == 0 {
            clustered.push([
                0.2 + rng.random::<f64>() * 0.02,
                0.2 + rng.random::<f64>() * 0.02,
                0.2 + rng.random::<f64>() * 0.02,
            ]);
        } else {
            clustered.push([rng.random(), rng.random(), rng.random()]);
        }
    }
    let plan = FmmPlan::new(&clustered, &densities, 64, 4, M2lMethod::Fft);
    let w_count: usize = plan.lists.w.iter().map(|l| l.len()).sum();
    println!(
        "\nclustered distribution: tree depth {}, {} leaves, {} W-list entries",
        plan.tree.depth(),
        plan.tree.num_leaves(),
        w_count
    );
    let potentials = FmmEvaluator::new().evaluate(&plan);
    let reference = direct_sum(&clustered, &densities);
    println!(
        "adaptive accuracy: relative L2 error {:.2e}",
        relative_l2_error(&potentials, &reference)
    );
}
