//! A two-level set-associative cache hierarchy simulator.
//!
//! Classifies memory accesses into L1 hits, L2 hits, and DRAM fetches at
//! 128-byte-line / 32-byte-sector granularity, mirroring how the Kepler
//! memory system counts the Table III events (`l1_global_load_hit` in
//! lines, `l2_*_sectors` and `fb_*_sectors` in 32 B sectors, with DRAM
//! traffic striped across two sub-partitions and L2 across four slices).
//!
//! The simulator is deliberately single-threaded: the FMM instrumentation
//! feeds it per-phase access streams at tile granularity, then folds the
//! outcome into the shared atomic [`crate::CounterSet`].

use crate::events::CounterEvent;
use crate::registry::CounterSet;

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.capacity_bytes / (self.line_bytes * self.ways)
    }

    /// Kepler SMX L1: 16 KB (the 48/16 split favouring shared memory, as
    /// an FMM would configure it), 128 B lines, 4-way.
    pub fn kepler_l1() -> Self {
        CacheConfig { capacity_bytes: 16 * 1024, line_bytes: 128, ways: 4 }
    }

    /// Tegra K1 L2: 128 KB, 128 B lines, 8-way.
    pub fn tegra_l2() -> Self {
        CacheConfig { capacity_bytes: 128 * 1024, line_bytes: 128, ways: 8 }
    }
}

/// Where an access was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// All sectors hit in L1.
    L1Hit,
    /// Missed L1, all missing sectors hit in L2.
    L2Hit,
    /// At least one sector came from DRAM.
    Dram,
}

/// One set-associative LRU cache level.
#[derive(Debug)]
struct Level {
    config: CacheConfig,
    /// `tags[set * ways + way]`; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    clock: u64,
}

impl Level {
    fn new(config: CacheConfig) -> Self {
        let slots = config.sets() * config.ways;
        Level { config, tags: vec![u64::MAX; slots], stamps: vec![0; slots], clock: 0 }
    }

    /// Looks up the line containing `addr`; inserts on miss.  Returns hit.
    fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let line = addr / self.config.line_bytes as u64;
        let sets = self.config.sets() as u64;
        let set = (line % sets) as usize;
        let ways = self.config.ways;
        let base = set * ways;
        // Hit?
        for w in 0..ways {
            if self.tags[base + w] == line {
                self.stamps[base + w] = self.clock;
                return true;
            }
        }
        // Miss: evict LRU.
        let victim = (0..ways).min_by_key(|&w| self.stamps[base + w]).expect("ways > 0");
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.clock;
        false
    }
}

/// The L1 → L2 → DRAM hierarchy.
#[derive(Debug)]
pub struct CacheSim {
    l1: Level,
    l2: Level,
    sector_bytes: usize,
    /// Round-robin cursor for attributing sectors to L2 slices / DRAM
    /// sub-partitions (addresses are interleaved on real hardware).
    slice_cursor: usize,
}

impl CacheSim {
    /// A hierarchy with Kepler/Tegra K1 geometry.
    pub fn tegra_k1() -> Self {
        CacheSim::new(CacheConfig::kepler_l1(), CacheConfig::tegra_l2())
    }

    /// A hierarchy with explicit geometry.
    pub fn new(l1: CacheConfig, l2: CacheConfig) -> Self {
        assert!(l1.line_bytes == l2.line_bytes, "uniform line size assumed");
        CacheSim { l1: Level::new(l1), l2: Level::new(l2), sector_bytes: 32, slice_cursor: 0 }
    }

    /// Sector granularity (32 B on Kepler).
    pub fn sector_bytes(&self) -> usize {
        self.sector_bytes
    }

    /// Simulates a read of `bytes` bytes at `addr`, folding the hardware
    /// events it would generate into `counters`.  Returns the overall
    /// outcome (worst level touched).
    pub fn read(&mut self, addr: u64, bytes: usize, counters: &CounterSet) -> AccessOutcome {
        assert!(bytes > 0, "zero-length access");
        let line_bytes = self.l1.config.line_bytes as u64;
        let first_line = addr / line_bytes;
        let last_line = (addr + bytes as u64 - 1) / line_bytes;
        let sectors_per_line = (line_bytes as usize / self.sector_bytes) as u64;
        let mut worst = AccessOutcome::L1Hit;
        for line in first_line..=last_line {
            let line_addr = line * line_bytes;
            if self.l1.access(line_addr) {
                counters.add(CounterEvent::l1_global_load_hit, 1);
                continue;
            }
            // L1 miss: the line's sectors query L2.
            for _ in 0..sectors_per_line {
                counters.add(CounterEvent::l2_subp0_total_read_sector_queries, 1);
            }
            if self.l2.access(line_addr) {
                // All sectors served by L2, attributed round-robin to the
                // four slices.
                for _ in 0..sectors_per_line {
                    let ev = match self.slice_cursor % 4 {
                        0 => CounterEvent::l2_subp0_read_l1_hit_sectors,
                        1 => CounterEvent::l2_subp1_read_l1_hit_sectors,
                        2 => CounterEvent::l2_subp2_read_l1_hit_sectors,
                        _ => CounterEvent::l2_subp3_read_l1_hit_sectors,
                    };
                    counters.add(ev, 1);
                    self.slice_cursor += 1;
                }
                if worst == AccessOutcome::L1Hit {
                    worst = AccessOutcome::L2Hit;
                }
            } else {
                // L2 miss: sectors fetched from DRAM sub-partitions.
                for _ in 0..sectors_per_line {
                    let ev = if self.slice_cursor.is_multiple_of(2) {
                        CounterEvent::fb_subp0_read_sectors
                    } else {
                        CounterEvent::fb_subp1_read_sectors
                    };
                    counters.add(ev, 1);
                    self.slice_cursor += 1;
                }
                worst = AccessOutcome::Dram;
            }
        }
        counters.add(CounterEvent::gld_request, 1);
        worst
    }

    /// Simulates a read that bypasses L1 (Kepler's *default* global-load
    /// path: plain loads are cached in L2 only; L1 caching requires the
    /// read-only `__ldg` path, which [`CacheSim::read`] models).
    pub fn read_l2_only(
        &mut self,
        addr: u64,
        bytes: usize,
        counters: &CounterSet,
    ) -> AccessOutcome {
        assert!(bytes > 0, "zero-length access");
        let line_bytes = self.l1.config.line_bytes as u64;
        let first_line = addr / line_bytes;
        let last_line = (addr + bytes as u64 - 1) / line_bytes;
        let sectors_per_line = (line_bytes as usize / self.sector_bytes) as u64;
        let mut worst = AccessOutcome::L2Hit;
        for line in first_line..=last_line {
            let line_addr = line * line_bytes;
            for _ in 0..sectors_per_line {
                counters.add(CounterEvent::l2_subp0_total_read_sector_queries, 1);
            }
            if self.l2.access(line_addr) {
                for _ in 0..sectors_per_line {
                    let ev = match self.slice_cursor % 4 {
                        0 => CounterEvent::l2_subp0_read_l1_hit_sectors,
                        1 => CounterEvent::l2_subp1_read_l1_hit_sectors,
                        2 => CounterEvent::l2_subp2_read_l1_hit_sectors,
                        _ => CounterEvent::l2_subp3_read_l1_hit_sectors,
                    };
                    counters.add(ev, 1);
                    self.slice_cursor += 1;
                }
            } else {
                for _ in 0..sectors_per_line {
                    let ev = if self.slice_cursor.is_multiple_of(2) {
                        CounterEvent::fb_subp0_read_sectors
                    } else {
                        CounterEvent::fb_subp1_read_sectors
                    };
                    counters.add(ev, 1);
                    self.slice_cursor += 1;
                }
                worst = AccessOutcome::Dram;
            }
        }
        counters.add(CounterEvent::gld_request, 1);
        worst
    }

    /// Simulates a write of `bytes` at `addr` (write-through to L2, as
    /// Kepler L1 does not cache global stores).
    pub fn write(&mut self, addr: u64, bytes: usize, counters: &CounterSet) {
        assert!(bytes > 0, "zero-length access");
        let sectors = bytes.div_ceil(self.sector_bytes) as u64;
        counters.add(CounterEvent::l2_subp0_total_write_sector_queries, sectors);
        counters.add(CounterEvent::gst_request, 1);
        // Keep L2 warm with the written lines.
        let line_bytes = self.l1.config.line_bytes as u64;
        let first_line = addr / line_bytes;
        let last_line = (addr + bytes as u64 - 1) / line_bytes;
        for line in first_line..=last_line {
            self.l2.access(line * line_bytes);
        }
    }

    /// Flushes both levels (between FMM phases, which stream different
    /// arrays).
    pub fn flush(&mut self) {
        self.l1 = Level::new(self.l1.config);
        self.l2 = Level::new(self.l2.config);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheSim {
        // L1: 2 sets x 2 ways x 128 B = 512 B.  L2: 4 sets x 2 ways = 1 KB.
        CacheSim::new(
            CacheConfig { capacity_bytes: 512, line_bytes: 128, ways: 2 },
            CacheConfig { capacity_bytes: 1024, line_bytes: 128, ways: 2 },
        )
    }

    #[test]
    fn first_touch_misses_to_dram_second_hits_l1() {
        let mut sim = tiny();
        let c = CounterSet::new();
        assert_eq!(sim.read(0, 8, &c), AccessOutcome::Dram);
        assert_eq!(sim.read(0, 8, &c), AccessOutcome::L1Hit);
        assert_eq!(c.get(CounterEvent::l1_global_load_hit), 1);
        assert_eq!(c.dram_read_sectors(), 4, "one 128 B line = 4 sectors");
        assert_eq!(c.get(CounterEvent::gld_request), 2);
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let mut sim = tiny();
        let c = CounterSet::new();
        // Fill set 0 of L1 beyond its 2 ways: lines 0, 2, 4 map to set 0
        // (2 sets).  Line 0 gets evicted from L1 but stays in L2.
        sim.read(0, 8, &c);
        sim.read(2 * 128, 8, &c);
        sim.read(4 * 128, 8, &c);
        assert_eq!(sim.read(0, 8, &c), AccessOutcome::L2Hit, "L1 evicted, L2 retains");
        assert!(c.l2_read_hit_sectors() >= 4);
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let mut sim = tiny();
        let c = CounterSet::new();
        sim.read(120, 16, &c); // bytes 120..136 cross the 128 B boundary
        assert_eq!(c.dram_read_sectors(), 8, "two lines fetched");
    }

    #[test]
    fn sector_queries_equal_hits_plus_dram() {
        // The identity behind the paper's "L2 reads = total queries −
        // DRAM reads" derivation.
        let mut sim = tiny();
        let c = CounterSet::new();
        for i in 0..64 {
            sim.read((i % 24) * 128, 8, &c);
        }
        let queries = c.get(CounterEvent::l2_subp0_total_read_sector_queries);
        assert_eq!(queries, c.l2_read_hit_sectors() + c.dram_read_sectors());
    }

    #[test]
    fn writes_count_store_sectors() {
        let mut sim = tiny();
        let c = CounterSet::new();
        sim.write(0, 64, &c);
        assert_eq!(c.get(CounterEvent::l2_subp0_total_write_sector_queries), 2);
        assert_eq!(c.get(CounterEvent::gst_request), 1);
    }

    #[test]
    fn flush_forgets_contents() {
        let mut sim = tiny();
        let c = CounterSet::new();
        sim.read(0, 8, &c);
        sim.flush();
        assert_eq!(sim.read(0, 8, &c), AccessOutcome::Dram);
    }

    #[test]
    fn dram_sectors_balance_across_subpartitions() {
        let mut sim = CacheSim::tegra_k1();
        let c = CounterSet::new();
        for i in 0..1000u64 {
            sim.read(i * 4096, 128, &c); // all misses, distinct lines
        }
        let a = c.get(CounterEvent::fb_subp0_read_sectors);
        let b = c.get(CounterEvent::fb_subp1_read_sectors);
        assert_eq!(a + b, 4000);
        assert!((a as i64 - b as i64).abs() <= 4, "round-robin stripes evenly");
    }

    #[test]
    fn working_set_inside_l1_stays_in_l1() {
        let mut sim = CacheSim::tegra_k1();
        let c = CounterSet::new();
        // 8 KB working set fits the 16 KB L1.
        for pass in 0..4 {
            for line in 0..64u64 {
                let outcome = sim.read(line * 128, 128, &c);
                if pass > 0 {
                    assert_eq!(outcome, AccessOutcome::L1Hit, "pass {pass} line {line}");
                }
            }
        }
    }

    #[test]
    fn l2_only_reads_never_touch_l1() {
        let mut sim = tiny();
        let c = CounterSet::new();
        assert_eq!(sim.read_l2_only(0, 8, &c), AccessOutcome::Dram);
        assert_eq!(sim.read_l2_only(0, 8, &c), AccessOutcome::L2Hit);
        assert_eq!(c.get(CounterEvent::l1_global_load_hit), 0);
        assert_eq!(c.l2_read_hit_sectors(), 4);
        // A later L1-path read still misses L1 (the line was never filled).
        let outcome = sim.read(0, 8, &c);
        assert_ne!(outcome, AccessOutcome::L1Hit);
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_length_read_rejected() {
        let mut sim = tiny();
        let c = CounterSet::new();
        sim.read(0, 0, &c);
    }
}
