//! Deriving the energy model's feature vector from raw counters.
//!
//! This reproduces Section IV-A: instruction counts are read directly
//! from the corresponding counters; per-level byte counts are inferred
//! from combinations — in particular, *reads served by the L2* are
//! computed by subtracting DRAM read sectors from total L2 read sector
//! queries, exactly as the paper describes.

use crate::events::CounterEvent;
use crate::registry::CounterSet;
use tk1_sim::{OpClass, OpVector};

/// Bytes per L2/DRAM sector.
pub const SECTOR_BYTES: f64 = 32.0;
/// Bytes per L1 line.
pub const LINE_BYTES: f64 = 128.0;
/// Bytes per shared-memory transaction (32 lanes × 4 B).
pub const SHARED_TRANSACTION_BYTES: f64 = 128.0;
/// Bytes per model "mop" (the model counts 4-byte words).
pub const WORD_BYTES: f64 = 4.0;

/// Converts a counter snapshot into the model's `(W_k, Q_l)` op vector.
///
/// Compute classes come straight from the metrics (`flops_dp_*` summed
/// into the DP class, `inst_integer` into the integer class — the FMM is
/// a double-precision code, as its Table III counter list shows).
/// Memory classes are converted from hardware units (lines, sectors,
/// transactions) into 4-byte words:
///
/// * shared = shared load+store transactions × 128 B;
/// * L1 = L1 hit lines × 128 B;
/// * L2 = (total read sector queries − DRAM read sectors) × 32 B,
///   plus write sector queries (writes go through L2);
/// * DRAM = DRAM read sectors × 32 B.
pub fn derive_op_vector(counters: &CounterSet) -> OpVector {
    let dp = counters.get(CounterEvent::flops_dp_fma)
        + counters.get(CounterEvent::flops_dp_add)
        + counters.get(CounterEvent::flops_dp_mul);
    let int = counters.get(CounterEvent::inst_integer);

    let shared_tx = counters.get(CounterEvent::l1_shared_load_transactions)
        + counters.get(CounterEvent::l1_shared_store_transactions);
    let shared_words = shared_tx as f64 * SHARED_TRANSACTION_BYTES / WORD_BYTES;

    let l1_words = counters.get(CounterEvent::l1_global_load_hit) as f64 * LINE_BYTES / WORD_BYTES;

    let read_queries = counters.get(CounterEvent::l2_subp0_total_read_sector_queries);
    let dram_sectors = counters.dram_read_sectors();
    // The paper's subtraction; saturating in case of counter skew.
    let l2_read_sectors = read_queries.saturating_sub(dram_sectors);
    let l2_write_sectors = counters.get(CounterEvent::l2_subp0_total_write_sector_queries);
    let l2_words = (l2_read_sectors + l2_write_sectors) as f64 * SECTOR_BYTES / WORD_BYTES;

    let dram_words = dram_sectors as f64 * SECTOR_BYTES / WORD_BYTES;

    OpVector::from_pairs(&[
        (OpClass::FlopDp, dp as f64),
        (OpClass::Int, int as f64),
        (OpClass::Shared, shared_words),
        (OpClass::L1, l1_words),
        (OpClass::L2, l2_words),
        (OpClass::Dram, dram_words),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flops_sum_into_dp_class() {
        let c = CounterSet::new();
        c.add(CounterEvent::flops_dp_fma, 100);
        c.add(CounterEvent::flops_dp_add, 30);
        c.add(CounterEvent::flops_dp_mul, 20);
        let v = derive_op_vector(&c);
        assert_eq!(v.get(OpClass::FlopDp), 150.0);
        assert_eq!(v.get(OpClass::FlopSp), 0.0);
    }

    #[test]
    fn l2_is_queries_minus_dram() {
        let c = CounterSet::new();
        c.add(CounterEvent::l2_subp0_total_read_sector_queries, 100);
        c.add(CounterEvent::fb_subp0_read_sectors, 25);
        c.add(CounterEvent::fb_subp1_read_sectors, 15);
        let v = derive_op_vector(&c);
        // 60 L2 sectors x 32 B / 4 B = 480 words; DRAM 40 x 8 = 320 words.
        assert_eq!(v.get(OpClass::L2), 480.0);
        assert_eq!(v.get(OpClass::Dram), 320.0);
    }

    #[test]
    fn counter_skew_saturates_instead_of_underflowing() {
        let c = CounterSet::new();
        c.add(CounterEvent::l2_subp0_total_read_sector_queries, 10);
        c.add(CounterEvent::fb_subp0_read_sectors, 12);
        let v = derive_op_vector(&c);
        assert_eq!(v.get(OpClass::L2), 0.0);
    }

    #[test]
    fn shared_and_l1_unit_conversions() {
        let c = CounterSet::new();
        c.add(CounterEvent::l1_shared_load_transactions, 2);
        c.add(CounterEvent::l1_shared_store_transactions, 1);
        c.add(CounterEvent::l1_global_load_hit, 3);
        let v = derive_op_vector(&c);
        assert_eq!(v.get(OpClass::Shared), 3.0 * 32.0);
        assert_eq!(v.get(OpClass::L1), 3.0 * 32.0);
    }

    #[test]
    fn writes_count_as_l2_traffic() {
        let c = CounterSet::new();
        c.add(CounterEvent::l2_subp0_total_write_sector_queries, 4);
        let v = derive_op_vector(&c);
        assert_eq!(v.get(OpClass::L2), 32.0);
    }

    #[test]
    fn consistency_with_cache_sim() {
        // Stream reads through the cache sim and check the derived words
        // account for every access level without double counting.
        use crate::cache::CacheSim;
        let mut sim = CacheSim::tegra_k1();
        let c = CounterSet::new();
        for pass in 0..3 {
            for line in 0..256u64 {
                sim.read(line * 128, 128, &c);
                let _ = pass;
            }
        }
        let v = derive_op_vector(&c);
        // Each of the 3x256 accesses is served by exactly one level.
        let total_words = v.get(OpClass::L1) + v.get(OpClass::L2) + v.get(OpClass::Dram);
        assert_eq!(total_words, 3.0 * 256.0 * 32.0);
    }
}
