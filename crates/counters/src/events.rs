//! The counter events and metrics of the paper's Table III.

/// Whether a counter is a raw hardware event ("E") or a derived metric
/// ("M"), as in Table III's Type column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterKind {
    /// A single hardware counter value.
    Event,
    /// A characteristic derived from one or more counter events.
    Metric,
}

/// The counters used to profile the FMM kernel (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(non_camel_case_types)]
pub enum CounterEvent {
    /// # of double-precision floating point multiply-accumulate operations.
    flops_dp_fma,
    /// # of double-precision floating point add operations.
    flops_dp_add,
    /// # of double-precision floating point multiply operations.
    flops_dp_mul,
    /// # of integer instructions.
    inst_integer,
    /// # of cache lines that hit in L1 cache.
    l1_global_load_hit,
    /// Total read requests for slice 0 of L2 cache.
    l2_subp0_total_read_sector_queries,
    /// # of load instructions.
    gld_request,
    /// # of shared load transactions.
    l1_shared_load_transactions,
    /// # of DRAM read requests to sub partition 0.
    fb_subp0_read_sectors,
    /// # of DRAM read requests to sub partition 1.
    fb_subp1_read_sectors,
    /// # of read requests from L1 that hit in slice 0 of L2 cache.
    l2_subp0_read_l1_hit_sectors,
    /// # of read requests from L1 that hit in slice 1 of L2 cache.
    l2_subp1_read_l1_hit_sectors,
    /// # of read requests from L1 that hit in slice 2 of L2 cache.
    l2_subp2_read_l1_hit_sectors,
    /// # of read requests from L1 that hit in slice 3 of L2 cache.
    l2_subp3_read_l1_hit_sectors,
    /// # of store instructions.
    gst_request,
    /// Total write requests to slice 0 of L2 cache.
    l2_subp0_total_write_sector_queries,
    /// # of shared store transactions.
    l1_shared_store_transactions,
}

/// All Table III counters in the table's order.
pub const TABLE3_EVENTS: [CounterEvent; 17] = [
    CounterEvent::flops_dp_fma,
    CounterEvent::flops_dp_add,
    CounterEvent::flops_dp_mul,
    CounterEvent::inst_integer,
    CounterEvent::l1_global_load_hit,
    CounterEvent::l2_subp0_total_read_sector_queries,
    CounterEvent::gld_request,
    CounterEvent::l1_shared_load_transactions,
    CounterEvent::fb_subp0_read_sectors,
    CounterEvent::fb_subp1_read_sectors,
    CounterEvent::l2_subp0_read_l1_hit_sectors,
    CounterEvent::l2_subp1_read_l1_hit_sectors,
    CounterEvent::l2_subp2_read_l1_hit_sectors,
    CounterEvent::l2_subp3_read_l1_hit_sectors,
    CounterEvent::gst_request,
    CounterEvent::l2_subp0_total_write_sector_queries,
    CounterEvent::l1_shared_store_transactions,
];

impl CounterEvent {
    /// Index into [`TABLE3_EVENTS`]-ordered arrays.
    pub fn index(self) -> usize {
        TABLE3_EVENTS.iter().position(|&e| e == self).expect("all events listed")
    }

    /// Event vs metric, as Table III tags them.
    pub fn kind(self) -> CounterKind {
        match self {
            CounterEvent::flops_dp_fma
            | CounterEvent::flops_dp_add
            | CounterEvent::flops_dp_mul
            | CounterEvent::inst_integer => CounterKind::Metric,
            _ => CounterKind::Event,
        }
    }

    /// The nvprof counter name.
    pub fn name(self) -> &'static str {
        match self {
            CounterEvent::flops_dp_fma => "flops_dp_fma",
            CounterEvent::flops_dp_add => "flops_dp_add",
            CounterEvent::flops_dp_mul => "flops_dp_mul",
            CounterEvent::inst_integer => "inst_integer",
            CounterEvent::l1_global_load_hit => "l1_global_load_hit",
            CounterEvent::l2_subp0_total_read_sector_queries => {
                "l2_subp0_total_read_sector_queries"
            }
            CounterEvent::gld_request => "gld_request",
            CounterEvent::l1_shared_load_transactions => "l1_shared_load_transactions",
            CounterEvent::fb_subp0_read_sectors => "fb_subp0_read_sectors",
            CounterEvent::fb_subp1_read_sectors => "fb_subp1_read_sectors",
            CounterEvent::l2_subp0_read_l1_hit_sectors => "l2_subp0_read_l1_hit_sectors",
            CounterEvent::l2_subp1_read_l1_hit_sectors => "l2_subp1_read_l1_hit_sectors",
            CounterEvent::l2_subp2_read_l1_hit_sectors => "l2_subp2_read_l1_hit_sectors",
            CounterEvent::l2_subp3_read_l1_hit_sectors => "l2_subp3_read_l1_hit_sectors",
            CounterEvent::gst_request => "gst_request",
            CounterEvent::l2_subp0_total_write_sector_queries => {
                "l2_subp0_total_write_sector_queries"
            }
            CounterEvent::l1_shared_store_transactions => "l1_shared_store_transactions",
        }
    }

    /// The human description from Table III.
    pub fn description(self) -> &'static str {
        match self {
            CounterEvent::flops_dp_fma => {
                "# of double-precision floating point multiply-accumulate operations"
            }
            CounterEvent::flops_dp_add => "# of double-precision floating point add operations",
            CounterEvent::flops_dp_mul => {
                "# of double-precision floating point multiply operations"
            }
            CounterEvent::inst_integer => "# of integer instructions",
            CounterEvent::l1_global_load_hit => "# of cache lines that hit in L1 cache",
            CounterEvent::l2_subp0_total_read_sector_queries => {
                "Total read request for slice 0 of L2 cache"
            }
            CounterEvent::gld_request => "# of load instructions",
            CounterEvent::l1_shared_load_transactions => "# of shared load transactions",
            CounterEvent::fb_subp0_read_sectors => "# of DRAM read request to sub partition 0",
            CounterEvent::fb_subp1_read_sectors => "# of DRAM read request to sub partition 1",
            CounterEvent::l2_subp0_read_l1_hit_sectors => {
                "# of read requests from L1 that hit in slice 0 of L2 cache"
            }
            CounterEvent::l2_subp1_read_l1_hit_sectors => {
                "# of read requests from L1 that hit in slice 1 of L2 cache"
            }
            CounterEvent::l2_subp2_read_l1_hit_sectors => {
                "# of read requests from L1 that hit in slice 2 of L2 cache"
            }
            CounterEvent::l2_subp3_read_l1_hit_sectors => {
                "# of read requests from L1 that hit in slice 3 of L2 cache"
            }
            CounterEvent::gst_request => "# of store instructions",
            CounterEvent::l2_subp0_total_write_sector_queries => {
                "Total write request to slice 0 of L2 cache"
            }
            CounterEvent::l1_shared_store_transactions => "# of shared store transactions",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seventeen_counters_as_in_table3() {
        assert_eq!(TABLE3_EVENTS.len(), 17);
    }

    #[test]
    fn indices_are_dense_and_unique() {
        for (i, e) in TABLE3_EVENTS.iter().enumerate() {
            assert_eq!(e.index(), i);
        }
    }

    #[test]
    fn four_metrics_rest_events() {
        let metrics = TABLE3_EVENTS.iter().filter(|e| e.kind() == CounterKind::Metric).count();
        assert_eq!(metrics, 4);
    }

    #[test]
    fn names_are_nvprof_style() {
        assert_eq!(CounterEvent::flops_dp_fma.name(), "flops_dp_fma");
        assert_eq!(
            CounterEvent::l2_subp3_read_l1_hit_sectors.name(),
            "l2_subp3_read_l1_hit_sectors"
        );
        // All names unique.
        let mut names: Vec<_> = TABLE3_EVENTS.iter().map(|e| e.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 17);
    }

    #[test]
    fn descriptions_are_present() {
        for e in TABLE3_EVENTS {
            assert!(!e.description().is_empty());
        }
    }
}
