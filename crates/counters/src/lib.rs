//! An nvprof-style performance-counter facility.
//!
//! The paper profiles its FMM with `nvprof` hardware counters (its
//! Table III) and derives the model's operation counts from them — e.g.
//! "reads from the L2 cache can be calculated by subtracting the number
//! of bytes read from the DRAM from the total number of *requests* to
//! the L2".  This crate reproduces that pipeline:
//!
//! * [`events`] — the counter events ("E") and metrics ("M") of
//!   Table III, by their nvprof names.
//! * [`registry`] — a thread-safe counter set that instrumented code
//!   increments (the FMM's phases run under rayon, so counters are
//!   atomics).
//! * [`cache`] — a set-associative L1/L2/DRAM hierarchy simulator at
//!   32-byte-sector granularity, standing in for the real memory system
//!   behind the counters.
//! * [`profile`] — derivation of the energy model's `(W_k, Q_l)` feature
//!   vector from raw counter values, including the paper's
//!   L2-minus-DRAM subtraction.

pub mod cache;
pub mod events;
pub mod metrics;
pub mod profile;
pub mod registry;

pub use cache::{AccessOutcome, CacheConfig, CacheSim};
pub use events::{CounterEvent, CounterKind, TABLE3_EVENTS};
pub use metrics::DerivedMetrics;
pub use profile::derive_op_vector;
pub use registry::CounterSet;
