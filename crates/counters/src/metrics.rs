//! Derived counter metrics — the nvprof "metrics" layer on top of raw
//! events (hit rates, intensities, traffic totals), used by analysts to
//! sanity-check a profile before feeding it to the energy model.

use crate::events::CounterEvent;
use crate::registry::CounterSet;

/// Bytes per 32-byte sector.
const SECTOR_BYTES: u64 = 32;
/// Bytes per 128-byte L1 line / shared transaction.
const LINE_BYTES: u64 = 128;

/// Derived metrics over one counter set.
#[derive(Debug, Clone, Copy)]
pub struct DerivedMetrics {
    /// Total double-precision flops.
    pub dp_flops: u64,
    /// Total instructions (DP + integer).
    pub instructions: u64,
    /// L1 hit rate over load requests that could hit L1, in `[0, 1]`.
    pub l1_hit_rate: f64,
    /// L2 read hit rate (hit sectors over total read sector queries).
    pub l2_read_hit_rate: f64,
    /// Total off-chip (DRAM) read traffic, bytes.
    pub dram_read_bytes: u64,
    /// Total shared-memory traffic, bytes.
    pub shared_bytes: u64,
    /// Arithmetic intensity: DP flops per DRAM byte (∞ if no traffic).
    pub flops_per_dram_byte: f64,
}

impl DerivedMetrics {
    /// Computes the metrics from raw counters.
    pub fn from_counters(c: &CounterSet) -> Self {
        let dp_flops = c.get(CounterEvent::flops_dp_fma)
            + c.get(CounterEvent::flops_dp_add)
            + c.get(CounterEvent::flops_dp_mul);
        let instructions = dp_flops + c.get(CounterEvent::inst_integer);

        let l1_hits = c.get(CounterEvent::l1_global_load_hit);
        // Each L1 miss produced sectors-per-line L2 queries; recover the
        // miss count in lines.
        let l2_queries = c.get(CounterEvent::l2_subp0_total_read_sector_queries);
        let l1_misses_lines = l2_queries / (LINE_BYTES / SECTOR_BYTES);
        let l1_lookups = l1_hits + l1_misses_lines;
        let l1_hit_rate = if l1_lookups > 0 { l1_hits as f64 / l1_lookups as f64 } else { 0.0 };

        let l2_hits = c.l2_read_hit_sectors();
        let l2_read_hit_rate =
            if l2_queries > 0 { l2_hits as f64 / l2_queries as f64 } else { 0.0 };

        let dram_read_bytes = c.dram_read_sectors() * SECTOR_BYTES;
        let shared_tx = c.get(CounterEvent::l1_shared_load_transactions)
            + c.get(CounterEvent::l1_shared_store_transactions);
        let shared_bytes = shared_tx * LINE_BYTES;

        let flops_per_dram_byte = if dram_read_bytes > 0 {
            dp_flops as f64 / dram_read_bytes as f64
        } else {
            f64::INFINITY
        };

        DerivedMetrics {
            dp_flops,
            instructions,
            l1_hit_rate,
            l2_read_hit_rate,
            dram_read_bytes,
            shared_bytes,
            flops_per_dram_byte,
        }
    }

    /// Formats the metrics like an nvprof summary block.
    pub fn summary(&self) -> String {
        format!(
            "dp_flops {}, insts {}, l1_hit {:.1}%, l2_hit {:.1}%, dram {} B, shared {} B, intensity {:.2} flop/B",
            self.dp_flops,
            self.instructions,
            self.l1_hit_rate * 100.0,
            self.l2_read_hit_rate * 100.0,
            self.dram_read_bytes,
            self.shared_bytes,
            self.flops_per_dram_byte
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheSim;

    #[test]
    fn flop_and_instruction_totals() {
        let c = CounterSet::new();
        c.add(CounterEvent::flops_dp_fma, 10);
        c.add(CounterEvent::flops_dp_add, 5);
        c.add(CounterEvent::flops_dp_mul, 5);
        c.add(CounterEvent::inst_integer, 30);
        let m = DerivedMetrics::from_counters(&c);
        assert_eq!(m.dp_flops, 20);
        assert_eq!(m.instructions, 50);
    }

    #[test]
    fn hit_rates_from_cache_sim_are_consistent() {
        let mut sim = CacheSim::tegra_k1();
        let c = CounterSet::new();
        // Two passes over a small working set: second pass hits L1.
        for _ in 0..2 {
            for line in 0..32u64 {
                sim.read(line * 128, 128, &c);
            }
        }
        let m = DerivedMetrics::from_counters(&c);
        assert!((m.l1_hit_rate - 0.5).abs() < 1e-12, "half the lookups hit: {}", m.l1_hit_rate);
        assert_eq!(m.dram_read_bytes, 32 * 128, "first pass is compulsory misses");
        assert_eq!(m.l2_read_hit_rate, 0.0, "nothing was re-fetched from L2");
    }

    #[test]
    fn intensity_is_infinite_without_dram_traffic() {
        let c = CounterSet::new();
        c.add(CounterEvent::flops_dp_fma, 100);
        let m = DerivedMetrics::from_counters(&c);
        assert!(m.flops_per_dram_byte.is_infinite());
        assert_eq!(m.l1_hit_rate, 0.0);
    }

    #[test]
    fn shared_traffic_counts_both_directions() {
        let c = CounterSet::new();
        c.add(CounterEvent::l1_shared_load_transactions, 3);
        c.add(CounterEvent::l1_shared_store_transactions, 1);
        let m = DerivedMetrics::from_counters(&c);
        assert_eq!(m.shared_bytes, 4 * 128);
    }

    #[test]
    fn summary_mentions_key_figures() {
        let c = CounterSet::new();
        c.add(CounterEvent::flops_dp_fma, 7);
        let s = DerivedMetrics::from_counters(&c).summary();
        assert!(s.contains("dp_flops 7"));
        assert!(s.contains("intensity"));
    }
}
