//! Thread-safe counter storage.
//!
//! Instrumented code (the FMM's rayon-parallel phases) increments
//! counters concurrently; reads (profile extraction) happen between
//! phases.  Hot increments are relaxed atomics; the named-set registry
//! uses a `parking_lot` lock since it is touched once per phase.

use crate::events::{CounterEvent, TABLE3_EVENTS};
use compat::sync::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One set of Table III counters.
#[derive(Debug, Default)]
pub struct CounterSet {
    values: [AtomicU64; 17],
}

impl CounterSet {
    /// A fresh all-zero counter set.
    pub fn new() -> Self {
        CounterSet::default()
    }

    /// Adds `n` to `event`.
    #[inline]
    pub fn add(&self, event: CounterEvent, n: u64) {
        self.values[event.index()].fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of `event`.
    pub fn get(&self, event: CounterEvent) -> u64 {
        self.values[event.index()].load(Ordering::Relaxed)
    }

    /// Snapshot of all counters in Table III order.
    pub fn snapshot(&self) -> [u64; 17] {
        std::array::from_fn(|i| self.values[i].load(Ordering::Relaxed))
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        for v in &self.values {
            v.store(0, Ordering::Relaxed);
        }
    }

    /// Accumulates another set into this one.
    pub fn merge(&self, other: &CounterSet) {
        for e in TABLE3_EVENTS {
            self.add(e, other.get(e));
        }
    }

    /// Sum of DRAM read sectors across both sub-partitions.
    pub fn dram_read_sectors(&self) -> u64 {
        self.get(CounterEvent::fb_subp0_read_sectors)
            + self.get(CounterEvent::fb_subp1_read_sectors)
    }

    /// Sum of L1→L2 read hit sectors across the four slices.
    pub fn l2_read_hit_sectors(&self) -> u64 {
        self.get(CounterEvent::l2_subp0_read_l1_hit_sectors)
            + self.get(CounterEvent::l2_subp1_read_l1_hit_sectors)
            + self.get(CounterEvent::l2_subp2_read_l1_hit_sectors)
            + self.get(CounterEvent::l2_subp3_read_l1_hit_sectors)
    }
}

/// A registry of named counter sets — one per FMM phase, like profiling
/// each kernel separately under nvprof.
#[derive(Debug, Default)]
pub struct PhaseRegistry {
    sets: RwLock<HashMap<String, Arc<CounterSet>>>,
}

impl PhaseRegistry {
    /// A fresh registry.
    pub fn new() -> Self {
        PhaseRegistry::default()
    }

    /// The counter set for `phase`, created on first use.
    pub fn phase(&self, phase: &str) -> Arc<CounterSet> {
        if let Some(set) = self.sets.read().get(phase) {
            return Arc::clone(set);
        }
        let mut w = self.sets.write();
        Arc::clone(w.entry(phase.to_string()).or_default())
    }

    /// Phase names registered so far, sorted.
    pub fn phases(&self) -> Vec<String> {
        let mut names: Vec<String> = self.sets.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// A counter set holding the sum over all phases.
    pub fn total(&self) -> CounterSet {
        let total = CounterSet::new();
        for set in self.sets.read().values() {
            total.merge(set);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let c = CounterSet::new();
        c.add(CounterEvent::flops_dp_fma, 10);
        c.add(CounterEvent::flops_dp_fma, 5);
        assert_eq!(c.get(CounterEvent::flops_dp_fma), 15);
        assert_eq!(c.get(CounterEvent::inst_integer), 0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let c = CounterSet::new();
        c.add(CounterEvent::gld_request, 3);
        c.reset();
        assert_eq!(c.snapshot(), [0; 17]);
    }

    #[test]
    fn merge_accumulates() {
        let a = CounterSet::new();
        let b = CounterSet::new();
        a.add(CounterEvent::gst_request, 1);
        b.add(CounterEvent::gst_request, 2);
        a.merge(&b);
        assert_eq!(a.get(CounterEvent::gst_request), 3);
    }

    #[test]
    fn dram_and_l2_aggregates() {
        let c = CounterSet::new();
        c.add(CounterEvent::fb_subp0_read_sectors, 4);
        c.add(CounterEvent::fb_subp1_read_sectors, 6);
        c.add(CounterEvent::l2_subp0_read_l1_hit_sectors, 1);
        c.add(CounterEvent::l2_subp3_read_l1_hit_sectors, 2);
        assert_eq!(c.dram_read_sectors(), 10);
        assert_eq!(c.l2_read_hit_sectors(), 3);
    }

    #[test]
    fn concurrent_increments_do_not_lose_updates() {
        let c = Arc::new(CounterSet::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.add(CounterEvent::inst_integer, 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(CounterEvent::inst_integer), 80_000);
    }

    #[test]
    fn registry_reuses_sets_and_totals() {
        let r = PhaseRegistry::new();
        r.phase("ulist").add(CounterEvent::flops_dp_fma, 7);
        r.phase("vlist").add(CounterEvent::flops_dp_fma, 3);
        r.phase("ulist").add(CounterEvent::flops_dp_fma, 1);
        assert_eq!(r.phase("ulist").get(CounterEvent::flops_dp_fma), 8);
        assert_eq!(r.phases(), vec!["ulist".to_string(), "vlist".to_string()]);
        assert_eq!(r.total().get(CounterEvent::flops_dp_fma), 11);
    }
}
