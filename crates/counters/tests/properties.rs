//! Property-based tests for the counter registry and cache simulator.

use compat::prop::prelude::*;
use gpu_counters::{derive_op_vector, AccessOutcome, CacheConfig, CacheSim, CounterSet};
use tk1_sim::OpClass;

fn access_stream() -> impl Strategy<Value = Vec<(u64, usize, bool)>> {
    compat::prop::collection::vec((0u64..(1 << 20), 1usize..256, compat::prop::bool::ANY), 1..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_read_is_served_by_exactly_one_level(stream in access_stream()) {
        // The conservation law behind the paper's counter arithmetic:
        // L1-hit lines + L2-hit sectors + DRAM sectors account for every
        // line of every read, with no double counting.
        let mut sim = CacheSim::tegra_k1();
        let c = CounterSet::new();
        let mut expected_lines = 0u64;
        for &(addr, bytes, _write) in &stream {
            let first = addr / 128;
            let last = (addr + bytes as u64 - 1) / 128;
            expected_lines += last - first + 1;
            sim.read(addr, bytes, &c);
        }
        let l1_lines = c.get(gpu_counters::CounterEvent::l1_global_load_hit);
        let l2_lines = c.l2_read_hit_sectors() / 4;
        let dram_lines = c.dram_read_sectors() / 4;
        prop_assert_eq!(l1_lines + l2_lines + dram_lines, expected_lines);
    }

    #[test]
    fn l2_queries_equal_hits_plus_dram(stream in access_stream()) {
        let mut sim = CacheSim::tegra_k1();
        let c = CounterSet::new();
        for &(addr, bytes, write) in &stream {
            if write {
                sim.write(addr, bytes, &c);
            } else {
                sim.read(addr, bytes, &c);
            }
        }
        let queries = c.get(gpu_counters::CounterEvent::l2_subp0_total_read_sector_queries);
        prop_assert_eq!(queries, c.l2_read_hit_sectors() + c.dram_read_sectors());
    }

    #[test]
    fn repeating_a_read_immediately_hits_l1(addr in 0u64..(1 << 18), bytes in 1usize..128) {
        let mut sim = CacheSim::tegra_k1();
        let c = CounterSet::new();
        sim.read(addr, bytes, &c);
        let outcome = sim.read(addr, bytes, &c);
        prop_assert_eq!(outcome, AccessOutcome::L1Hit);
    }

    #[test]
    fn derived_words_are_nonnegative_and_additive(stream in access_stream()) {
        let mut sim = CacheSim::tegra_k1();
        let c = CounterSet::new();
        for &(addr, bytes, write) in &stream {
            if write {
                sim.write(addr, bytes, &c);
            } else {
                sim.read(addr, bytes, &c);
            }
        }
        let v = derive_op_vector(&c);
        for (_, count) in v.iter() {
            prop_assert!(count >= 0.0);
        }
        // Memory words decompose over the levels.
        let mem_total = v.total_memory_ops();
        let sum = v.get(OpClass::Shared)
            + v.get(OpClass::L1)
            + v.get(OpClass::L2)
            + v.get(OpClass::Dram);
        prop_assert!((mem_total - sum).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_running_both_streams(
        a in access_stream(),
        b in access_stream(),
    ) {
        // Counters are additive: merging per-stream sets equals counting
        // both streams into one set with the same cache state sequence.
        let mut sim1 = CacheSim::tegra_k1();
        let ca = CounterSet::new();
        for &(addr, bytes, _) in &a {
            sim1.read(addr, bytes, &ca);
        }
        sim1.flush();
        let cb = CounterSet::new();
        for &(addr, bytes, _) in &b {
            sim1.read(addr, bytes, &cb);
        }
        let merged = CounterSet::new();
        merged.merge(&ca);
        merged.merge(&cb);
        // Replay on a fresh sim with a flush between streams.
        let mut sim2 = CacheSim::tegra_k1();
        let combined = CounterSet::new();
        for &(addr, bytes, _) in &a {
            sim2.read(addr, bytes, &combined);
        }
        sim2.flush();
        for &(addr, bytes, _) in &b {
            sim2.read(addr, bytes, &combined);
        }
        prop_assert_eq!(merged.snapshot(), combined.snapshot());
    }

    #[test]
    fn higher_associativity_never_hits_less(stream in access_stream()) {
        // The LRU inclusion property: with the set count fixed, a
        // higher-associativity cache's contents are a superset of a
        // lower-associativity one's, so its hit count can only be >=.
        // (Note this holds for fixed sets + varying ways; varying the set
        // count does NOT preserve inclusion.)
        let sets = 16;
        let big = CacheConfig { capacity_bytes: sets * 8 * 128, line_bytes: 128, ways: 8 };
        let small = CacheConfig { capacity_bytes: sets * 2 * 128, line_bytes: 128, ways: 2 };
        let l2 = CacheConfig::tegra_l2();
        let mut sim_big = CacheSim::new(big, l2);
        let mut sim_small = CacheSim::new(small, l2);
        let cb = CounterSet::new();
        let cs = CounterSet::new();
        for &(addr, bytes, _) in &stream {
            sim_big.read(addr, bytes, &cb);
            sim_small.read(addr, bytes, &cs);
        }
        let hits_big = cb.get(gpu_counters::CounterEvent::l1_global_load_hit);
        let hits_small = cs.get(gpu_counters::CounterEvent::l1_global_load_hit);
        prop_assert!(hits_big >= hits_small,
            "more ways hit at least as often: {hits_big} vs {hits_small}");
    }
}
