//! ADC front-end model: quantization, gain/offset error, sensor noise.
//!
//! PowerMon 2 senses current through a shunt into a 12-bit ADC.  The model
//! here reads *power* directly (current × the nominally constant supply
//! voltage) but keeps the three error terms that matter for energy
//! integration: additive white noise, a small calibration gain error, and
//! quantization to the ADC's resolution.

use tk1_sim::rng::Noise;

/// ADC conversion model for one measurement channel.
#[derive(Debug, Clone)]
pub struct AdcModel {
    /// Full-scale power reading, W (readings clip here).
    pub full_scale_w: f64,
    /// ADC resolution in bits.
    pub bits: u32,
    /// Multiplicative calibration error (1.0 = perfect).
    pub gain: f64,
    /// Additive offset, W.
    pub offset_w: f64,
    /// White sensor noise (σ), W.
    pub noise_sigma_w: f64,
}

impl Default for AdcModel {
    fn default() -> Self {
        // 12-bit converter scaled for a board that peaks near 15 W, with a
        // ±0.2% gain calibration and a few mW of sensor noise — consistent
        // with PowerMon 2's published accuracy.
        AdcModel {
            full_scale_w: 15.0,
            bits: 12,
            gain: 1.002,
            offset_w: 0.003,
            noise_sigma_w: 0.008,
        }
    }
}

impl AdcModel {
    /// An error-free converter (still quantizes, but with no gain, offset,
    /// or noise error).
    pub fn ideal(full_scale_w: f64, bits: u32) -> Self {
        AdcModel { full_scale_w, bits, gain: 1.0, offset_w: 0.0, noise_sigma_w: 0.0 }
    }

    /// The quantization step, W per LSB.
    pub fn lsb_w(&self) -> f64 {
        self.full_scale_w / (1u64 << self.bits) as f64
    }

    /// Converts a true instantaneous power into the value the ADC reports.
    pub fn convert(&self, true_power_w: f64, noise: &mut Noise) -> f64 {
        let noisy = true_power_w * self.gain
            + self.offset_w
            + if self.noise_sigma_w > 0.0 { noise.normal(0.0, self.noise_sigma_w) } else { 0.0 };
        let clipped = noisy.clamp(0.0, self.full_scale_w);
        let lsb = self.lsb_w();
        (clipped / lsb).round() * lsb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsb_matches_bits() {
        let adc = AdcModel::ideal(16.0, 12);
        assert!((adc.lsb_w() - 16.0 / 4096.0).abs() < 1e-15);
    }

    #[test]
    fn ideal_adc_error_bounded_by_half_lsb() {
        let adc = AdcModel::ideal(15.0, 12);
        let mut noise = Noise::new(1);
        for i in 0..100 {
            let p = 0.1 + i as f64 * 0.14;
            let r = adc.convert(p, &mut noise);
            assert!((r - p).abs() <= adc.lsb_w() / 2.0 + 1e-12);
        }
    }

    #[test]
    fn readings_clip_at_full_scale() {
        let adc = AdcModel::ideal(10.0, 12);
        let mut noise = Noise::new(1);
        assert_eq!(adc.convert(25.0, &mut noise), 10.0);
        assert_eq!(adc.convert(-3.0, &mut noise), 0.0);
    }

    #[test]
    fn gain_error_scales_reading() {
        let adc = AdcModel { gain: 1.01, ..AdcModel::ideal(15.0, 16) };
        let mut noise = Noise::new(1);
        let r = adc.convert(5.0, &mut noise);
        assert!((r - 5.05).abs() < adc.lsb_w());
    }

    #[test]
    fn noise_has_expected_scale() {
        let adc = AdcModel { noise_sigma_w: 0.05, ..AdcModel::ideal(15.0, 16) };
        let mut noise = Noise::new(42);
        let readings: Vec<f64> = (0..20_000).map(|_| adc.convert(5.0, &mut noise)).collect();
        let mean = readings.iter().sum::<f64>() / readings.len() as f64;
        let sd = (readings.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>()
            / readings.len() as f64)
            .sqrt();
        assert!((mean - 5.0).abs() < 0.01, "unbiased: {mean}");
        assert!((sd - 0.05).abs() < 0.01, "sigma ~0.05: {sd}");
    }
}
