//! Sampled power traces and their statistics.
//!
//! # Gaps and outliers
//!
//! A dropped ADC sample is recorded as `NaN` and treated as *missing*:
//! [`PowerTrace::mean_power_w`] and [`PowerTrace::energy_j`] skip gaps
//! (bridging them by trapezoid between the neighboring valid samples),
//! and [`PowerTrace::robust_mean_power_w`] additionally rejects
//! outliers (spikes, saturated samples) by the median-absolute-deviation
//! rule before averaging.  Traces without gaps take the exact original
//! code paths, so clean-measurement results are bitwise unchanged.

/// A fixed-rate sequence of power samples from one measurement window.
#[derive(Debug, Clone)]
pub struct PowerTrace {
    sample_rate_hz: f64,
    samples_w: Vec<f64>,
}

/// MAD cutoff for [`PowerTrace::robust_mean_power_w`]: samples farther
/// than this many scaled MADs from the median are rejected.  6σ-ish —
/// wide enough that clean Gaussian noise (plus the 1% supply ripple) is
/// essentially never rejected, tight enough to kill saturation clips
/// and transient spikes.
const MAD_CUTOFF: f64 = 6.0;

/// Converts a MAD to a Gaussian-consistent σ estimate.
const MAD_TO_SIGMA: f64 = 1.4826;

impl PowerTrace {
    /// Wraps a sample vector taken at `sample_rate_hz`.
    pub fn new(sample_rate_hz: f64, samples_w: Vec<f64>) -> Self {
        assert!(sample_rate_hz > 0.0, "sample rate must be positive");
        PowerTrace { sample_rate_hz, samples_w }
    }

    /// Sampling rate, Hz.
    pub fn sample_rate_hz(&self) -> f64 {
        self.sample_rate_hz
    }

    /// The raw samples, W.
    pub fn samples(&self) -> &[f64] {
        &self.samples_w
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples_w.len()
    }

    /// True when the trace holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples_w.is_empty()
    }

    /// Trace duration, seconds (N samples cover N sample periods).
    pub fn duration_s(&self) -> f64 {
        self.samples_w.len() as f64 / self.sample_rate_hz
    }

    /// Number of valid (non-dropped) samples.
    pub fn valid_count(&self) -> usize {
        self.samples_w.iter().filter(|p| !p.is_nan()).count()
    }

    /// Number of dropped (`NaN`) samples.
    pub fn dropped_count(&self) -> usize {
        self.samples_w.len() - self.valid_count()
    }

    /// Fraction of samples dropped (0 for an empty trace).
    pub fn dropped_fraction(&self) -> f64 {
        if self.samples_w.is_empty() {
            return 0.0;
        }
        self.dropped_count() as f64 / self.samples_w.len() as f64
    }

    /// True when the trace contains dropped samples.
    pub fn has_gaps(&self) -> bool {
        self.samples_w.iter().any(|p| p.is_nan())
    }

    /// Mean power over the valid samples, W.
    pub fn mean_power_w(&self) -> f64 {
        if self.samples_w.is_empty() {
            return 0.0;
        }
        if !self.has_gaps() {
            return self.samples_w.iter().sum::<f64>() / self.samples_w.len() as f64;
        }
        let (sum, n) = self
            .samples_w
            .iter()
            .filter(|p| !p.is_nan())
            .fold((0.0f64, 0usize), |(s, n), &p| (s + p, n + 1));
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Mean power with MAD-based outlier rejection, W.
    ///
    /// Computes the median and the median absolute deviation of the
    /// valid samples, rejects samples beyond `6·(1.4826·MAD)` of the
    /// median (saturation clips, transient spikes), and averages the
    /// survivors in sample order.  Falls back to the plain valid mean
    /// when fewer than 8 samples survive — too short a trace to
    /// estimate a spread from.
    pub fn robust_mean_power_w(&self) -> f64 {
        let valid: Vec<f64> = self.samples_w.iter().copied().filter(|p| !p.is_nan()).collect();
        if valid.len() < 8 {
            return self.mean_power_w();
        }
        let med = median(&valid);
        let deviations: Vec<f64> = valid.iter().map(|p| (p - med).abs()).collect();
        let mad = median(&deviations);
        // A zero MAD (more than half the samples identical) still needs
        // a nonzero band, or clean constant traces would reject the
        // supply-ripple samples; fall back to a small relative width.
        let width = (MAD_CUTOFF * MAD_TO_SIGMA * mad).max(1e-6 * med.abs()).max(1e-12);
        let (sum, n) = valid
            .iter()
            .filter(|p| (**p - med).abs() <= width)
            .fold((0.0f64, 0usize), |(s, n), &p| (s + p, n + 1));
        if n < 8 {
            self.mean_power_w()
        } else {
            sum / n as f64
        }
    }

    /// Peak sample, W.
    pub fn peak_power_w(&self) -> f64 {
        self.samples_w.iter().fold(0.0f64, |m, &p| m.max(p))
    }

    /// Energy by trapezoidal integration of the sample stream, J.
    ///
    /// Samples are treated as midpoints of their sampling intervals for
    /// the first/last half-periods, matching how PowerMon post-processing
    /// integrates its logs.
    pub fn energy_j(&self) -> f64 {
        let n = self.samples_w.len();
        if n == 0 {
            return 0.0;
        }
        if self.has_gaps() {
            return self.energy_j_gap_aware();
        }
        if n == 1 {
            return self.samples_w[0] * self.duration_s();
        }
        let dt = 1.0 / self.sample_rate_hz;
        // Trapezoid over interior plus half-interval extensions at the ends
        // so the integral spans the full window n*dt.
        let interior: f64 = self.samples_w.windows(2).map(|w| 0.5 * (w[0] + w[1]) * dt).sum();
        interior + 0.5 * dt * (self.samples_w[0] + self.samples_w[n - 1])
    }

    /// Gap-aware trapezoid: dropped samples are bridged by a straight
    /// line between their valid neighbors, and leading/trailing gaps are
    /// extended from the nearest valid sample, so the integral still
    /// spans the full `n·dt` window.
    fn energy_j_gap_aware(&self) -> f64 {
        let dt = 1.0 / self.sample_rate_hz;
        let valid: Vec<(usize, f64)> = self
            .samples_w
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.is_nan())
            .map(|(i, &p)| (i, p))
            .collect();
        let n = self.samples_w.len();
        let Some(&(first_i, first_p)) = valid.first() else { return 0.0 };
        let &(last_i, last_p) = valid.last().expect("nonempty");
        let interior: f64 = valid
            .windows(2)
            .map(|w| {
                let ((i, a), (j, b)) = (w[0], w[1]);
                0.5 * (a + b) * ((j - i) as f64 * dt)
            })
            .sum();
        // End extensions: half a period past each end sample, plus any
        // leading/trailing gap held at that sample's level.
        let lead = (first_i as f64 + 0.5) * dt * first_p;
        let tail = ((n - 1 - last_i) as f64 + 0.5) * dt * last_p;
        interior + lead + tail
    }

    /// Standard deviation of the valid samples, W.
    pub fn std_dev_w(&self) -> f64 {
        if !self.has_gaps() {
            let n = self.samples_w.len();
            if n < 2 {
                return 0.0;
            }
            let mean = self.mean_power_w();
            return (self.samples_w.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>()
                / (n - 1) as f64)
                .sqrt();
        }
        let valid: Vec<f64> = self.samples_w.iter().copied().filter(|p| !p.is_nan()).collect();
        if valid.len() < 2 {
            return 0.0;
        }
        let mean = valid.iter().sum::<f64>() / valid.len() as f64;
        (valid.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>() / (valid.len() - 1) as f64)
            .sqrt()
    }
}

/// Median of a nonempty slice (averages the middle pair for even
/// lengths).  Sorting is total-order based, so the result is
/// deterministic for any input.
fn median(xs: &[f64]) -> f64 {
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_trace_energy() {
        let t = PowerTrace::new(1000.0, vec![5.0; 1000]);
        assert!((t.duration_s() - 1.0).abs() < 1e-12);
        assert!((t.energy_j() - 5.0).abs() < 1e-9, "5 W for 1 s = 5 J: {}", t.energy_j());
        assert_eq!(t.mean_power_w(), 5.0);
        assert_eq!(t.peak_power_w(), 5.0);
        assert_eq!(t.std_dev_w(), 0.0);
    }

    #[test]
    fn empty_trace_is_zero() {
        let t = PowerTrace::new(1024.0, vec![]);
        assert!(t.is_empty());
        assert_eq!(t.energy_j(), 0.0);
        assert_eq!(t.mean_power_w(), 0.0);
    }

    #[test]
    fn single_sample_trace() {
        let t = PowerTrace::new(10.0, vec![3.0]);
        assert!((t.energy_j() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn linear_ramp_integrates_exactly() {
        // Trapezoid rule is exact for linear signals.
        let n = 101;
        let rate = 100.0;
        let samples: Vec<f64> = (0..n).map(|i| i as f64 * 0.1).collect();
        let t = PowerTrace::new(rate, samples);
        // Integral of the ramp over the interior + end extensions.
        let dt = 1.0 / rate;
        let expected: f64 =
            (0..n - 1).map(|i| 0.5 * (i as f64 + (i + 1) as f64) * 0.1 * dt).sum::<f64>()
                + 0.5 * dt * (0.0 + (n - 1) as f64 * 0.1);
        assert!((t.energy_j() - expected).abs() < 1e-12);
    }

    #[test]
    fn std_dev_of_alternating_signal() {
        let t = PowerTrace::new(10.0, vec![1.0, 3.0, 1.0, 3.0, 1.0, 3.0]);
        assert_eq!(t.mean_power_w(), 2.0);
        assert!((t.std_dev_w() - (6.0f64 / 5.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sample rate")]
    fn zero_rate_rejected() {
        let _ = PowerTrace::new(0.0, vec![]);
    }

    #[test]
    fn gaps_are_bridged_by_trapezoid() {
        // A flat 5 W signal with holes must still integrate to 5 W × T.
        let mut samples = vec![5.0; 1000];
        for i in [0, 1, 17, 500, 501, 502, 998, 999] {
            samples[i] = f64::NAN;
        }
        let t = PowerTrace::new(1000.0, samples);
        assert_eq!(t.dropped_count(), 8);
        assert_eq!(t.valid_count(), 992);
        assert!((t.dropped_fraction() - 0.008).abs() < 1e-12);
        assert!((t.energy_j() - 5.0).abs() < 1e-9, "{}", t.energy_j());
        assert_eq!(t.mean_power_w(), 5.0);
        assert_eq!(t.std_dev_w(), 0.0);
    }

    #[test]
    fn gap_aware_ramp_stays_exact() {
        // Trapezoid across a gap is exact for linear signals, so the
        // integral must not move when interior samples are dropped.
        let n = 101;
        let make = |holes: &[usize]| {
            let mut samples: Vec<f64> = (0..n).map(|i| i as f64 * 0.1).collect();
            for &h in holes {
                samples[h] = f64::NAN;
            }
            PowerTrace::new(100.0, samples)
        };
        let clean = make(&[]).energy_j();
        let holey = make(&[3, 4, 5, 50, 77]).energy_j();
        assert!((clean - holey).abs() < 1e-12, "{clean} vs {holey}");
    }

    #[test]
    fn all_nan_trace_is_zero_energy() {
        let t = PowerTrace::new(100.0, vec![f64::NAN; 16]);
        assert_eq!(t.energy_j(), 0.0);
        assert_eq!(t.mean_power_w(), 0.0);
        assert_eq!(t.valid_count(), 0);
    }

    #[test]
    fn robust_mean_rejects_spikes_and_clips() {
        let mut samples = vec![8.0; 500];
        // 2% corrupted: saturation clips at 15 W and a few big spikes.
        for i in 0..5 {
            samples[i * 100 + 3] = 15.0;
        }
        for i in 0..5 {
            samples[i * 100 + 7] = 16.0 + i as f64;
        }
        let t = PowerTrace::new(1024.0, samples);
        assert!(t.mean_power_w() > 8.05, "plain mean is pulled up");
        assert_eq!(t.robust_mean_power_w(), 8.0, "robust mean is not");
    }

    #[test]
    fn robust_mean_keeps_clean_gaussian_traces() {
        use tk1_sim::rng::Noise;
        let mut noise = Noise::new(3);
        let samples: Vec<f64> = (0..2000).map(|_| 8.0 + noise.normal(0.0, 0.05)).collect();
        let t = PowerTrace::new(1024.0, samples);
        let rel = (t.robust_mean_power_w() - t.mean_power_w()).abs() / t.mean_power_w();
        assert!(rel < 2e-4, "clean traces barely move: {rel}");
    }

    #[test]
    fn robust_mean_of_short_trace_falls_back() {
        let t = PowerTrace::new(10.0, vec![4.0, 4.0, 400.0]);
        assert_eq!(t.robust_mean_power_w(), t.mean_power_w());
    }
}
