//! Sampled power traces and their statistics.

/// A fixed-rate sequence of power samples from one measurement window.
#[derive(Debug, Clone)]
pub struct PowerTrace {
    sample_rate_hz: f64,
    samples_w: Vec<f64>,
}

impl PowerTrace {
    /// Wraps a sample vector taken at `sample_rate_hz`.
    pub fn new(sample_rate_hz: f64, samples_w: Vec<f64>) -> Self {
        assert!(sample_rate_hz > 0.0, "sample rate must be positive");
        PowerTrace { sample_rate_hz, samples_w }
    }

    /// Sampling rate, Hz.
    pub fn sample_rate_hz(&self) -> f64 {
        self.sample_rate_hz
    }

    /// The raw samples, W.
    pub fn samples(&self) -> &[f64] {
        &self.samples_w
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples_w.len()
    }

    /// True when the trace holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples_w.is_empty()
    }

    /// Trace duration, seconds (N samples cover N sample periods).
    pub fn duration_s(&self) -> f64 {
        self.samples_w.len() as f64 / self.sample_rate_hz
    }

    /// Mean power over the trace, W.
    pub fn mean_power_w(&self) -> f64 {
        if self.samples_w.is_empty() {
            return 0.0;
        }
        self.samples_w.iter().sum::<f64>() / self.samples_w.len() as f64
    }

    /// Peak sample, W.
    pub fn peak_power_w(&self) -> f64 {
        self.samples_w.iter().fold(0.0f64, |m, &p| m.max(p))
    }

    /// Energy by trapezoidal integration of the sample stream, J.
    ///
    /// Samples are treated as midpoints of their sampling intervals for
    /// the first/last half-periods, matching how PowerMon post-processing
    /// integrates its logs.
    pub fn energy_j(&self) -> f64 {
        let n = self.samples_w.len();
        if n == 0 {
            return 0.0;
        }
        if n == 1 {
            return self.samples_w[0] * self.duration_s();
        }
        let dt = 1.0 / self.sample_rate_hz;
        // Trapezoid over interior plus half-interval extensions at the ends
        // so the integral spans the full window n*dt.
        let interior: f64 = self.samples_w.windows(2).map(|w| 0.5 * (w[0] + w[1]) * dt).sum();
        interior + 0.5 * dt * (self.samples_w[0] + self.samples_w[n - 1])
    }

    /// Standard deviation of the samples, W.
    pub fn std_dev_w(&self) -> f64 {
        let n = self.samples_w.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean_power_w();
        (self.samples_w.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>() / (n - 1) as f64)
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_trace_energy() {
        let t = PowerTrace::new(1000.0, vec![5.0; 1000]);
        assert!((t.duration_s() - 1.0).abs() < 1e-12);
        assert!((t.energy_j() - 5.0).abs() < 1e-9, "5 W for 1 s = 5 J: {}", t.energy_j());
        assert_eq!(t.mean_power_w(), 5.0);
        assert_eq!(t.peak_power_w(), 5.0);
        assert_eq!(t.std_dev_w(), 0.0);
    }

    #[test]
    fn empty_trace_is_zero() {
        let t = PowerTrace::new(1024.0, vec![]);
        assert!(t.is_empty());
        assert_eq!(t.energy_j(), 0.0);
        assert_eq!(t.mean_power_w(), 0.0);
    }

    #[test]
    fn single_sample_trace() {
        let t = PowerTrace::new(10.0, vec![3.0]);
        assert!((t.energy_j() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn linear_ramp_integrates_exactly() {
        // Trapezoid rule is exact for linear signals.
        let n = 101;
        let rate = 100.0;
        let samples: Vec<f64> = (0..n).map(|i| i as f64 * 0.1).collect();
        let t = PowerTrace::new(rate, samples);
        // Integral of the ramp over the interior + end extensions.
        let dt = 1.0 / rate;
        let expected: f64 =
            (0..n - 1).map(|i| 0.5 * (i as f64 + (i + 1) as f64) * 0.1 * dt).sum::<f64>()
                + 0.5 * dt * (0.0 + (n - 1) as f64 * 0.1);
        assert!((t.energy_j() - expected).abs() < 1e-12);
    }

    #[test]
    fn std_dev_of_alternating_signal() {
        let t = PowerTrace::new(10.0, vec![1.0, 3.0, 1.0, 3.0, 1.0, 3.0]);
        assert_eq!(t.mean_power_w(), 2.0);
        assert!((t.std_dev_w() - (6.0f64 / 5.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sample rate")]
    fn zero_rate_rejected() {
        let _ = PowerTrace::new(0.0, vec![]);
    }
}
