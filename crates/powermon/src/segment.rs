//! Power-trace segmentation: recovering phase structure from the log.
//!
//! A PowerMon capture of a whole application run is a single stream of
//! samples with no kernel markers.  The analyst's first post-processing
//! step is to segment it — find the instants where mean power shifts —
//! and integrate each segment separately, so per-phase energies can be
//! attributed without host-side timestamps.  This module implements the
//! standard approach: top-down binary segmentation minimizing
//! within-segment variance, with a penalized stopping rule.

use crate::trace::PowerTrace;

/// One detected segment of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// First sample index (inclusive).
    pub start: usize,
    /// One past the last sample index.
    pub end: usize,
    /// Mean power over the segment, W.
    pub mean_power_w: f64,
    /// Segment energy (mean power × segment duration), J.
    pub energy_j: f64,
}

impl Segment {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True for an empty segment (cannot occur in valid output).
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Configuration of the segmentation.
#[derive(Debug, Clone)]
pub struct SegmentConfig {
    /// Maximum number of segments to return.
    pub max_segments: usize,
    /// Minimum samples per segment (suppresses spurious splits on noise).
    pub min_segment_len: usize,
    /// A split must reduce the total squared error by at least this
    /// relative amount to be accepted.
    pub min_gain: f64,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        SegmentConfig { max_segments: 16, min_segment_len: 4, min_gain: 0.02 }
    }
}

/// Segments `trace` by binary segmentation.
///
/// Returns at least one segment covering the whole trace; segments are
/// contiguous, non-overlapping, and in order.
pub fn segment_trace(trace: &PowerTrace, config: &SegmentConfig) -> Vec<Segment> {
    assert!(config.max_segments >= 1);
    assert!(config.min_segment_len >= 1);
    let samples = trace.samples();
    if samples.is_empty() {
        return Vec::new();
    }
    // Prefix sums for O(1) segment cost queries.  Dropped (`NaN`)
    // samples contribute nothing and are excluded from the counts, so
    // all statistics are over the valid samples of each window; for a
    // gap-free trace `count[b] - count[a] == b - a` and the arithmetic
    // is identical to the original.
    let mut sum = vec![0.0f64; samples.len() + 1];
    let mut sum2 = vec![0.0f64; samples.len() + 1];
    let mut count = vec![0usize; samples.len() + 1];
    for (i, &p) in samples.iter().enumerate() {
        let (v, c) = if p.is_nan() { (0.0, 0) } else { (p, 1) };
        sum[i + 1] = sum[i] + v;
        sum2[i + 1] = sum2[i] + v * v;
        count[i + 1] = count[i] + c;
    }
    // Sum of squared deviations from the segment mean over [a, b).
    let sse = |a: usize, b: usize| -> f64 {
        let n = (count[b] - count[a]) as f64;
        if n == 0.0 {
            return 0.0;
        }
        let s = sum[b] - sum[a];
        (sum2[b] - sum2[a]) - s * s / n
    };

    let total_sse = sse(0, samples.len()).max(1e-12);
    let mut boundaries = vec![0usize, samples.len()];
    while boundaries.len() - 1 < config.max_segments {
        // Find the single split with the largest SSE reduction.
        let mut best: Option<(f64, usize)> = None;
        for w in 0..boundaries.len() - 1 {
            let (a, b) = (boundaries[w], boundaries[w + 1]);
            if b - a < 2 * config.min_segment_len {
                continue;
            }
            let base = sse(a, b);
            for cut in (a + config.min_segment_len)..=(b - config.min_segment_len) {
                let gain = base - sse(a, cut) - sse(cut, b);
                if best.is_none_or(|(g, _)| gain > g) {
                    best = Some((gain, cut));
                }
            }
        }
        match best {
            Some((gain, cut)) if gain > config.min_gain * total_sse => {
                let pos = boundaries.binary_search(&cut).unwrap_err();
                boundaries.insert(pos, cut);
            }
            _ => break,
        }
    }

    let dt = 1.0 / trace.sample_rate_hz();
    boundaries
        .windows(2)
        .map(|w| {
            let (a, b) = (w[0], w[1]);
            let n_valid = count[b] - count[a];
            let mean = if n_valid == 0 { 0.0 } else { (sum[b] - sum[a]) / n_valid as f64 };
            Segment { start: a, end: b, mean_power_w: mean, energy_j: mean * (b - a) as f64 * dt }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_of(levels: &[(f64, usize)]) -> PowerTrace {
        let mut samples = Vec::new();
        for &(w, n) in levels {
            samples.extend(std::iter::repeat(w).take(n));
        }
        PowerTrace::new(100.0, samples)
    }

    #[test]
    fn flat_trace_is_one_segment() {
        let t = trace_of(&[(5.0, 200)]);
        let segs = segment_trace(&t, &SegmentConfig::default());
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].start, 0);
        assert_eq!(segs[0].end, 200);
        assert!((segs[0].mean_power_w - 5.0).abs() < 1e-12);
        assert!((segs[0].energy_j - 5.0 * 2.0).abs() < 1e-9);
    }

    #[test]
    fn two_level_trace_splits_at_the_step() {
        let t = trace_of(&[(5.0, 100), (9.0, 150)]);
        let segs = segment_trace(&t, &SegmentConfig::default());
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].end, 100, "cut at the power step");
        assert!((segs[0].mean_power_w - 5.0).abs() < 1e-9);
        assert!((segs[1].mean_power_w - 9.0).abs() < 1e-9);
    }

    #[test]
    fn three_phases_recovered_with_noise() {
        use tk1_sim::rng::Noise;
        let mut noise = Noise::new(5);
        let mut samples = Vec::new();
        for &(w, n) in &[(6.0, 120), (10.0, 80), (7.0, 150)] {
            for _ in 0..n {
                samples.push(w + noise.normal(0.0, 0.15));
            }
        }
        let t = PowerTrace::new(100.0, samples);
        let segs = segment_trace(&t, &SegmentConfig::default());
        assert_eq!(segs.len(), 3, "{segs:?}");
        assert!((segs[0].end as i64 - 120).unsigned_abs() <= 3);
        assert!((segs[1].end as i64 - 200).unsigned_abs() <= 3);
        assert!((segs[0].mean_power_w - 6.0).abs() < 0.1);
        assert!((segs[1].mean_power_w - 10.0).abs() < 0.1);
        assert!((segs[2].mean_power_w - 7.0).abs() < 0.1);
    }

    #[test]
    fn segments_partition_the_trace_and_conserve_energy() {
        let t = trace_of(&[(4.0, 50), (8.0, 70), (3.0, 60), (12.0, 40)]);
        let segs = segment_trace(&t, &SegmentConfig::default());
        // Contiguous, ordered, covering.
        assert_eq!(segs.first().unwrap().start, 0);
        assert_eq!(segs.last().unwrap().end, 220);
        for w in segs.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        // Energy conservation vs rectangle integration.
        let total: f64 = segs.iter().map(|s| s.energy_j).sum();
        let expected = (4.0 * 50.0 + 8.0 * 70.0 + 3.0 * 60.0 + 12.0 * 40.0) / 100.0;
        assert!((total - expected).abs() < 1e-9);
    }

    #[test]
    fn max_segments_is_respected() {
        let t = trace_of(&[(1.0, 20), (2.0, 20), (3.0, 20), (4.0, 20), (5.0, 20)]);
        let cfg = SegmentConfig { max_segments: 2, ..SegmentConfig::default() };
        let segs = segment_trace(&t, &cfg);
        assert_eq!(segs.len(), 2);
    }

    #[test]
    fn min_gain_suppresses_noise_splits() {
        use tk1_sim::rng::Noise;
        // Seed picked for a typical noise draw; a rare unlucky stream can
        // contain a run the segmenter legitimately (if marginally) splits.
        let mut noise = Noise::new(8);
        let samples: Vec<f64> = (0..400).map(|_| 6.0 + noise.normal(0.0, 0.2)).collect();
        let t = PowerTrace::new(100.0, samples);
        let segs = segment_trace(&t, &SegmentConfig::default());
        assert_eq!(segs.len(), 1, "pure noise must not split: {segs:?}");
    }

    #[test]
    fn dropped_samples_do_not_bias_segment_means() {
        // A two-level trace with NaN dropouts sprinkled into both phases:
        // the segmenter must still find the step and report the clean
        // per-phase means (dropouts excluded, not counted as zeros).
        let mut samples = Vec::new();
        for i in 0..100 {
            samples.push(if i % 9 == 3 { f64::NAN } else { 5.0 });
        }
        for i in 0..150 {
            samples.push(if i % 11 == 7 { f64::NAN } else { 9.0 });
        }
        let t = PowerTrace::new(100.0, samples);
        let segs = segment_trace(&t, &SegmentConfig::default());
        assert_eq!(segs.len(), 2, "{segs:?}");
        assert_eq!(segs[0].end, 100, "cut at the power step");
        assert!((segs[0].mean_power_w - 5.0).abs() < 1e-12);
        assert!((segs[1].mean_power_w - 9.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_yields_no_segments() {
        let t = PowerTrace::new(100.0, vec![]);
        assert!(segment_trace(&t, &SegmentConfig::default()).is_empty());
    }

    #[test]
    fn segmentation_of_a_real_fmm_like_sequence() {
        // Execute two very different kernels back-to-back on the device,
        // concatenate their sampled traces, and check the segmentation
        // recovers the boundary and the per-phase energies within a few
        // percent.
        use tk1_sim::{Device, KernelProfile, OpClass, OpVector};
        let mut dev = Device::new(3);
        let hot = KernelProfile::new(
            "hot",
            OpVector::from_pairs(&[(OpClass::FlopSp, 6e10), (OpClass::Dram, 1e6)]),
        );
        let cool = KernelProfile::new(
            "cool",
            OpVector::from_pairs(&[(OpClass::FlopSp, 1e8), (OpClass::Dram, 4e8)]),
        )
        .with_utilization(0.3);
        let mut meter = crate::PowerMon::new(7);
        let m1 = meter.measure(&mut dev, &hot);
        let m2 = meter.measure(&mut dev, &cool);
        let mut combined = m1.trace.samples().to_vec();
        combined.extend_from_slice(m2.trace.samples());
        let t = PowerTrace::new(m1.trace.sample_rate_hz(), combined);
        let segs = segment_trace(&t, &SegmentConfig::default());
        assert!(segs.len() >= 2, "at least the kernel boundary: {}", segs.len());
        // The first detected boundary sits near the true one.
        let true_cut = m1.trace.len();
        let nearest =
            segs.iter().map(|s| (s.end as i64 - true_cut as i64).unsigned_abs()).min().unwrap();
        assert!(nearest <= 5, "boundary within 5 samples, got {nearest}");
        // Total energy conserved.
        let total: f64 = segs.iter().map(|s| s.energy_j).sum();
        let direct = t.mean_power_w() * t.duration_s();
        assert!((total - direct).abs() / direct < 1e-9);
    }
}
