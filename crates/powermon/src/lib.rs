//! A simulated PowerMon 2 inline power meter.
//!
//! PowerMon 2 (Bedard et al., SoutheastCon 2010) sits between the power
//! supply and the device under test and samples direct current and voltage
//! at up to 1024 Hz.  The paper's entire measurement methodology flows
//! through this device, so the simulation reproduces its measurement
//! path:
//!
//! * per-channel current/voltage sensing with ADC quantization and
//!   calibrated gain/offset error ([`adc`]);
//! * fixed-rate sampling of the device's instantaneous power waveform
//!   ([`PowerMon::measure`]);
//! * trapezoidal integration of the sample stream into energy
//!   ([`trace::PowerTrace::energy_j`]).
//!
//! The measurement error this injects (quantization, sampling of the
//! supply ripple, white sensor noise) is what keeps the downstream model
//! validation honest: predicted-vs-"measured" errors in the reproduction
//! have the same provenance as the paper's.

pub mod adc;
pub mod monitor;
pub mod planner;
pub mod segment;
pub mod trace;

pub use adc::AdcModel;
pub use monitor::{MeasuredExecution, PowerMon};
pub use planner::{measure_until, MeasurePlan, MeasuredMean};
pub use segment::{segment_trace, Segment, SegmentConfig};
pub use trace::PowerTrace;
