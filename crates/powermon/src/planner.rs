//! Adaptive measurement planning: repeat until the estimate converges.
//!
//! Run-to-run noise means a single measurement of a (kernel, setting)
//! pair carries a few percent of scatter; the autotuner and the
//! validation experiments care about mean energies.  The standard lab
//! protocol — repeat until the half-width of the confidence interval of
//! the mean drops under a target, with a cap — is implemented here.

use crate::monitor::PowerMon;
use tk1_sim::{Device, KernelProfile};

/// Configuration of the adaptive protocol.
#[derive(Debug, Clone)]
pub struct MeasurePlan {
    /// Target relative half-width of the ~95% CI of the mean energy.
    pub target_rel_ci: f64,
    /// Minimum trials before testing convergence.
    pub min_trials: usize,
    /// Hard cap on trials.
    pub max_trials: usize,
}

impl Default for MeasurePlan {
    fn default() -> Self {
        MeasurePlan { target_rel_ci: 0.01, min_trials: 3, max_trials: 30 }
    }
}

/// The converged estimate.
#[derive(Debug, Clone)]
pub struct MeasuredMean {
    /// Mean energy over the trials, J.
    pub mean_energy_j: f64,
    /// Mean duration, s.
    pub mean_time_s: f64,
    /// Sample standard deviation of energy, J.
    pub std_energy_j: f64,
    /// Trials actually run.
    pub trials: usize,
    /// Achieved relative CI half-width.
    pub achieved_rel_ci: f64,
    /// True when the target was met within the trial cap.
    pub converged: bool,
}

/// Measures `kernel` on `device` repeatedly until the mean energy's CI
/// half-width falls below the plan's target (≈95%: `2σ/√n`).
pub fn measure_until(
    device: &mut Device,
    meter: &mut PowerMon,
    kernel: &KernelProfile,
    plan: &MeasurePlan,
) -> MeasuredMean {
    assert!(plan.target_rel_ci > 0.0);
    assert!(plan.min_trials >= 2, "variance needs at least two trials");
    assert!(plan.max_trials >= plan.min_trials);
    let mut energies: Vec<f64> = Vec::new();
    let mut times: Vec<f64> = Vec::new();
    let mut achieved = f64::INFINITY;
    while energies.len() < plan.max_trials {
        let m = meter.measure(device, kernel);
        energies.push(m.measured_energy_j);
        times.push(m.execution.duration_s);
        if energies.len() >= plan.min_trials {
            let n = energies.len() as f64;
            let mean = energies.iter().sum::<f64>() / n;
            let var = energies.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>() / (n - 1.0);
            achieved = 2.0 * (var / n).sqrt() / mean;
            if achieved <= plan.target_rel_ci {
                break;
            }
        }
    }
    let n = energies.len() as f64;
    let mean_energy_j = energies.iter().sum::<f64>() / n;
    let mean_time_s = times.iter().sum::<f64>() / n;
    let std_energy_j = if energies.len() > 1 {
        (energies.iter().map(|e| (e - mean_energy_j) * (e - mean_energy_j)).sum::<f64>()
            / (n - 1.0))
            .sqrt()
    } else {
        0.0
    };
    MeasuredMean {
        mean_energy_j,
        mean_time_s,
        std_energy_j,
        trials: energies.len(),
        achieved_rel_ci: achieved,
        converged: achieved <= plan.target_rel_ci,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tk1_sim::{OpClass, OpVector};

    fn kernel() -> KernelProfile {
        KernelProfile::new(
            "planned",
            OpVector::from_pairs(&[(OpClass::FlopSp, 2e10), (OpClass::Dram, 5e7)]),
        )
    }

    #[test]
    fn converges_within_cap_on_normal_noise() {
        let mut dev = Device::new(1);
        let mut meter = PowerMon::new(2);
        let plan = MeasurePlan { target_rel_ci: 0.02, min_trials: 3, max_trials: 30 };
        let m = measure_until(&mut dev, &mut meter, &kernel(), &plan);
        assert!(m.converged, "CI {:.4} after {} trials", m.achieved_rel_ci, m.trials);
        assert!(m.trials >= 3 && m.trials <= 30);
        assert!(m.mean_energy_j > 0.0 && m.mean_time_s > 0.0);
    }

    #[test]
    fn tighter_targets_cost_more_trials() {
        let plan_loose = MeasurePlan { target_rel_ci: 0.05, ..MeasurePlan::default() };
        let plan_tight =
            MeasurePlan { target_rel_ci: 0.005, max_trials: 200, ..MeasurePlan::default() };
        let mut dev = Device::new(3);
        let mut meter = PowerMon::new(4);
        let loose = measure_until(&mut dev, &mut meter, &kernel(), &plan_loose);
        let mut dev2 = Device::new(3);
        let mut meter2 = PowerMon::new(4);
        let tight = measure_until(&mut dev2, &mut meter2, &kernel(), &plan_tight);
        assert!(tight.trials >= loose.trials, "{} vs {}", tight.trials, loose.trials);
    }

    #[test]
    fn unreachable_target_reports_nonconvergence() {
        let plan = MeasurePlan { target_rel_ci: 1e-9, min_trials: 2, max_trials: 5 };
        let mut dev = Device::new(5);
        let mut meter = PowerMon::new(6);
        let m = measure_until(&mut dev, &mut meter, &kernel(), &plan);
        assert!(!m.converged);
        assert_eq!(m.trials, 5);
    }

    #[test]
    fn noiseless_device_converges_immediately() {
        let plan = MeasurePlan::default();
        let mut dev = Device::ideal(7);
        let mut meter = PowerMon::ideal(8);
        let m = measure_until(&mut dev, &mut meter, &kernel(), &plan);
        assert_eq!(m.trials, plan.min_trials);
        assert!(m.std_energy_j / m.mean_energy_j < 1e-3);
    }

    #[test]
    #[should_panic(expected = "two trials")]
    fn degenerate_plan_rejected() {
        let plan = MeasurePlan { min_trials: 1, ..MeasurePlan::default() };
        let mut dev = Device::new(9);
        let mut meter = PowerMon::new(10);
        let _ = measure_until(&mut dev, &mut meter, &kernel(), &plan);
    }
}
