//! The power meter itself: samples a device execution into a trace.

use crate::adc::AdcModel;
use crate::trace::PowerTrace;
use tk1_sim::rng::Noise;
use tk1_sim::{Device, Execution, KernelProfile};

/// Maximum sample rate of PowerMon 2, Hz.
pub const MAX_SAMPLE_RATE_HZ: f64 = 1024.0;

/// A simulated PowerMon 2 measurement channel attached to the board's
/// supply rail.
///
/// ```
/// use powermon_sim::PowerMon;
/// use tk1_sim::{Device, KernelProfile, OpClass, OpVector};
///
/// let mut board = Device::new(1);
/// let mut meter = PowerMon::new(2);
/// let kernel = KernelProfile::new(
///     "stream",
///     OpVector::from_pairs(&[(OpClass::Dram, 5e8)]),
/// );
/// let measured = meter.measure(&mut board, &kernel);
/// assert!(measured.measured_energy_j > 0.0);
/// assert!(measured.trace.len() >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct PowerMon {
    sample_rate_hz: f64,
    adc: AdcModel,
    noise: Noise,
}

impl PowerMon {
    /// Creates a meter at the maximum sample rate with the default ADC.
    ///
    /// Each meter instance gets its own calibration: a per-session gain
    /// error of σ ≈ 2.5% (shunt tolerance + temperature drift), the same
    /// systematic error a physical PowerMon channel carries between
    /// calibrations.  Within one session the gain is constant, so
    /// comparisons *within* a sweep are unbiased while absolute energies
    /// across sessions scatter by a percent or two — the dominant term in
    /// the paper's cross-validation error floor.
    pub fn new(seed: u64) -> Self {
        PowerMon::with_session(seed, seed)
    }

    /// A meter whose *calibration* comes from `calibration_seed` while
    /// the white sampling noise streams from `noise_seed`.
    ///
    /// Measurement campaigns that share one physical meter (the paper's
    /// setup: a single PowerMon channel wired inline for the whole study)
    /// should share a calibration seed across their sessions, so that the
    /// systematic gain is common to every sample — it then scales the
    /// fitted coefficients uniformly instead of aliasing into individual
    /// columns.
    pub fn with_session(calibration_seed: u64, noise_seed: u64) -> Self {
        let mut calib = Noise::new(calibration_seed ^ 0xCA11_B8A7);
        let adc = AdcModel {
            gain: (1.0 + calib.normal(0.0, 0.025)).clamp(0.9, 1.1),
            ..AdcModel::default()
        };
        PowerMon::with_config(MAX_SAMPLE_RATE_HZ, adc, noise_seed)
    }

    /// Creates a meter with an explicit rate and ADC model.
    ///
    /// # Panics
    /// Panics if `sample_rate_hz` is outside `(0, 1024]` (the hardware
    /// cannot sample faster).
    pub fn with_config(sample_rate_hz: f64, adc: AdcModel, seed: u64) -> Self {
        assert!(
            sample_rate_hz > 0.0 && sample_rate_hz <= MAX_SAMPLE_RATE_HZ,
            "PowerMon 2 samples at up to {MAX_SAMPLE_RATE_HZ} Hz, got {sample_rate_hz}"
        );
        PowerMon { sample_rate_hz, adc, noise: Noise::new(seed ^ 0x504d_4f4e) }
    }

    /// An error-free meter (ideal ADC) for pipeline sanity tests.
    pub fn ideal(seed: u64) -> Self {
        PowerMon::with_config(MAX_SAMPLE_RATE_HZ, AdcModel::ideal(20.0, 24), seed)
    }

    /// Configured sample rate, Hz.
    pub fn sample_rate_hz(&self) -> f64 {
        self.sample_rate_hz
    }

    /// Samples the instantaneous power of `execution` over its duration.
    pub fn sample(&mut self, execution: &Execution) -> PowerTrace {
        let dt = 1.0 / self.sample_rate_hz;
        // At least one sample is always logged, even for very short runs
        // (short kernels are why the paper repeats launches inside one
        // measurement window).
        let n = ((execution.duration_s / dt).floor() as usize).max(1);
        let samples: Vec<f64> = (0..n)
            .map(|i| {
                let t = (i as f64 + 0.5) * dt;
                self.adc.convert(execution.instantaneous_power_w(t), &mut self.noise)
            })
            .collect();
        PowerTrace::new(self.sample_rate_hz, samples)
    }

    /// Runs `kernel` on `device` and measures it: the full
    /// execute-and-log-power loop of the paper's experimental setup.
    pub fn measure(&mut self, device: &mut Device, kernel: &KernelProfile) -> MeasuredExecution {
        let execution = device.execute(kernel);
        let trace = self.sample(&execution);
        // The measured duration comes from the host-side timer, which on
        // the real setup is far more precise than the power log; use the
        // execution's realized duration directly.
        let measured_energy_j = trace.mean_power_w() * execution.duration_s;
        MeasuredExecution { execution, trace, measured_energy_j }
    }
}

/// A kernel execution together with its measured power trace.
#[derive(Debug, Clone)]
pub struct MeasuredExecution {
    /// The device-side execution record (carries the hidden ground truth).
    pub execution: Execution,
    /// The sampled power trace.
    pub trace: PowerTrace,
    /// Energy as the experimenter computes it: mean measured power times
    /// the host-timed duration, J.
    pub measured_energy_j: f64,
}

impl MeasuredExecution {
    /// Measured average power, W.
    pub fn measured_power_w(&self) -> f64 {
        self.trace.mean_power_w()
    }

    /// Relative error of the measured energy against the hidden truth
    /// (diagnostics only).
    pub fn measurement_error_rel(&self) -> f64 {
        let truth = self.execution.true_energy_j();
        if truth == 0.0 {
            return 0.0;
        }
        (self.measured_energy_j - truth).abs() / truth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tk1_sim::{OpClass, OpVector, Setting};

    fn long_kernel() -> KernelProfile {
        // ~0.5 s at max frequency so the trace holds hundreds of samples.
        KernelProfile::new(
            "long",
            OpVector::from_pairs(&[(OpClass::FlopSp, 8e10), (OpClass::Dram, 1e8)]),
        )
    }

    #[test]
    fn sample_count_matches_rate_and_duration() {
        let mut dev = Device::new(1);
        let mut pm = PowerMon::new(2);
        let m = pm.measure(&mut dev, &long_kernel());
        let expected = (m.execution.duration_s * 1024.0).floor() as usize;
        assert_eq!(m.trace.len(), expected.max(1));
    }

    #[test]
    fn measured_energy_close_to_truth() {
        // Bounded by the per-session calibration bias (σ 2.5%) plus the
        // small sampling error.
        let mut dev = Device::new(3);
        let mut pm = PowerMon::new(4);
        let m = pm.measure(&mut dev, &long_kernel());
        assert!(
            m.measurement_error_rel() < 0.12,
            "measurement error {:.3}% should be bounded by calibration",
            m.measurement_error_rel() * 100.0
        );
    }

    #[test]
    fn calibration_bias_is_constant_within_a_session() {
        // The same meter measuring the same execution twice reports the
        // same systematic scale — comparisons within a sweep stay fair.
        let mut dev = Device::ideal(3);
        let e = dev.execute(&long_kernel());
        let mut pm = PowerMon::new(21);
        let a = pm.sample(&e).mean_power_w();
        let b = pm.sample(&e).mean_power_w();
        assert!((a - b).abs() / a < 1e-3, "white noise only: {a} vs {b}");
        // Different sessions (seeds) disagree by calibration, beyond
        // white noise.
        let biases: Vec<f64> = (0..12)
            .map(|s| {
                let mut pm = PowerMon::new(1000 + s);
                pm.sample(&e).mean_power_w()
            })
            .collect();
        let spread = biases.iter().cloned().fold(0.0f64, f64::max)
            - biases.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread / a > 0.01, "sessions differ by calibration: spread {spread}");
    }

    #[test]
    fn ideal_meter_is_nearly_exact() {
        let mut dev = Device::ideal(1);
        let mut pm = PowerMon::ideal(5);
        let m = pm.measure(&mut dev, &long_kernel());
        assert!(m.measurement_error_rel() < 2e-3, "err {:.5}", m.measurement_error_rel());
    }

    #[test]
    fn short_kernel_still_measured() {
        let mut dev = Device::new(6);
        let k = KernelProfile::new("tiny", OpVector::from_pairs(&[(OpClass::FlopSp, 1e3)]));
        let mut pm = PowerMon::new(7);
        let m = pm.measure(&mut dev, &k);
        assert!(m.trace.len() >= 1);
        assert!(m.measured_energy_j > 0.0);
    }

    #[test]
    fn lower_sample_rate_gives_fewer_samples() {
        let mut dev = Device::new(8);
        let e = dev.execute(&long_kernel());
        let mut fast = PowerMon::with_config(1024.0, AdcModel::default(), 9);
        let mut slow = PowerMon::with_config(128.0, AdcModel::default(), 9);
        assert!(fast.sample(&e).len() > slow.sample(&e).len() * 7);
    }

    #[test]
    fn measured_power_in_plausible_range() {
        let mut dev = Device::new(10);
        dev.set_operating_point(Setting::max_performance());
        let mut pm = PowerMon::new(11);
        let m = pm.measure(&mut dev, &long_kernel());
        // Board-level power: constant ~6.7 W plus dynamic.
        assert!(m.measured_power_w() > 5.0 && m.measured_power_w() < 15.0);
    }

    #[test]
    #[should_panic(expected = "1024")]
    fn oversampling_rejected() {
        let _ = PowerMon::with_config(2048.0, AdcModel::default(), 1);
    }
}
