//! The power meter itself: samples a device execution into a trace.

use crate::adc::AdcModel;
use crate::trace::PowerTrace;
use tk1_sim::rng::Noise;
use tk1_sim::{Device, Execution, FaultInjector, KernelProfile};

/// Maximum sample rate of PowerMon 2, Hz.
pub const MAX_SAMPLE_RATE_HZ: f64 = 1024.0;

/// A simulated PowerMon 2 measurement channel attached to the board's
/// supply rail.
///
/// ```
/// use powermon_sim::PowerMon;
/// use tk1_sim::{Device, KernelProfile, OpClass, OpVector};
///
/// let mut board = Device::new(1);
/// let mut meter = PowerMon::new(2);
/// let kernel = KernelProfile::new(
///     "stream",
///     OpVector::from_pairs(&[(OpClass::Dram, 5e8)]),
/// );
/// let measured = meter.measure(&mut board, &kernel);
/// assert!(measured.measured_energy_j > 0.0);
/// assert!(measured.trace.len() >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct PowerMon {
    sample_rate_hz: f64,
    adc: AdcModel,
    noise: Noise,
    /// Optional fault injector corrupting the acquisition path (dropped
    /// samples, clips, spikes, host-timer jitter).  `None` leaves the
    /// meter bitwise identical to the fault-free build.
    injector: Option<FaultInjector>,
    /// Count of completed `measure` calls; keys the injector's draws so
    /// faults are deterministic per measurement, not per wall-clock.
    measurements: u64,
}

impl PowerMon {
    /// Creates a meter at the maximum sample rate with the default ADC.
    ///
    /// Each meter instance gets its own calibration: a per-session gain
    /// error of σ ≈ 2.5% (shunt tolerance + temperature drift), the same
    /// systematic error a physical PowerMon channel carries between
    /// calibrations.  Within one session the gain is constant, so
    /// comparisons *within* a sweep are unbiased while absolute energies
    /// across sessions scatter by a percent or two — the dominant term in
    /// the paper's cross-validation error floor.
    pub fn new(seed: u64) -> Self {
        PowerMon::with_session(seed, seed)
    }

    /// A meter whose *calibration* comes from `calibration_seed` while
    /// the white sampling noise streams from `noise_seed`.
    ///
    /// Measurement campaigns that share one physical meter (the paper's
    /// setup: a single PowerMon channel wired inline for the whole study)
    /// should share a calibration seed across their sessions, so that the
    /// systematic gain is common to every sample — it then scales the
    /// fitted coefficients uniformly instead of aliasing into individual
    /// columns.
    pub fn with_session(calibration_seed: u64, noise_seed: u64) -> Self {
        let mut calib = Noise::new(calibration_seed ^ 0xCA11_B8A7);
        let adc = AdcModel {
            gain: (1.0 + calib.normal(0.0, 0.025)).clamp(0.9, 1.1),
            ..AdcModel::default()
        };
        PowerMon::with_config(MAX_SAMPLE_RATE_HZ, adc, noise_seed)
    }

    /// Creates a meter with an explicit rate and ADC model.
    ///
    /// # Panics
    /// Panics if `sample_rate_hz` is outside `(0, 1024]` (the hardware
    /// cannot sample faster).
    pub fn with_config(sample_rate_hz: f64, adc: AdcModel, seed: u64) -> Self {
        assert!(
            sample_rate_hz > 0.0 && sample_rate_hz <= MAX_SAMPLE_RATE_HZ,
            "PowerMon 2 samples at up to {MAX_SAMPLE_RATE_HZ} Hz, got {sample_rate_hz}"
        );
        PowerMon {
            sample_rate_hz,
            adc,
            noise: Noise::new(seed ^ 0x504d_4f4e),
            injector: None,
            measurements: 0,
        }
    }

    /// Attaches (or detaches, with `None`) a fault injector to the
    /// acquisition path.  Faults corrupt readings *after* ADC conversion,
    /// so the white-noise stream is consumed identically with and without
    /// faults and a clean run stays bitwise reproducible.
    pub fn set_fault_injector(&mut self, injector: Option<FaultInjector>) {
        self.injector = injector;
    }

    /// An error-free meter (ideal ADC) for pipeline sanity tests.
    pub fn ideal(seed: u64) -> Self {
        PowerMon::with_config(MAX_SAMPLE_RATE_HZ, AdcModel::ideal(20.0, 24), seed)
    }

    /// Configured sample rate, Hz.
    pub fn sample_rate_hz(&self) -> f64 {
        self.sample_rate_hz
    }

    /// Samples the instantaneous power of `execution` over its duration.
    pub fn sample(&mut self, execution: &Execution) -> PowerTrace {
        let meas_idx = self.measurements;
        self.sample_indexed(execution, meas_idx)
    }

    fn sample_indexed(&mut self, execution: &Execution, meas_idx: u64) -> PowerTrace {
        let dt = 1.0 / self.sample_rate_hz;
        // At least one sample is always logged, even for very short runs
        // (short kernels are why the paper repeats launches inside one
        // measurement window).
        let n = ((execution.duration_s / dt).floor() as usize).max(1);
        let full_scale_w = self.adc.full_scale_w;
        let samples: Vec<f64> = (0..n)
            .map(|i| {
                let t = (i as f64 + 0.5) * dt;
                let converted =
                    self.adc.convert(execution.instantaneous_power_w(t), &mut self.noise);
                match self.injector {
                    None => converted,
                    Some(inj) => inj
                        .corrupt_sample(meas_idx, i as u64, converted, full_scale_w)
                        .unwrap_or(f64::NAN),
                }
            })
            .collect();
        PowerTrace::new(self.sample_rate_hz, samples)
    }

    /// Runs `kernel` on `device` and measures it: the full
    /// execute-and-log-power loop of the paper's experimental setup.
    pub fn measure(&mut self, device: &mut Device, kernel: &KernelProfile) -> MeasuredExecution {
        let meas_idx = self.measurements;
        self.measurements += 1;
        let execution = device.execute(kernel);
        let trace = self.sample_indexed(&execution, meas_idx);
        // The measured duration comes from the host-side timer, which on
        // the real setup is far more precise than the power log; with a
        // fault injector attached the timer read can land late or early.
        let measured_duration_s = match &self.injector {
            None => execution.duration_s,
            Some(inj) => execution.duration_s * inj.timestamp_jitter(meas_idx),
        };
        // Against a corrupted trace the robust (gap-skipping, MAD-gated)
        // mean is used; the clean path keeps the plain mean so fault-free
        // measurements stay bitwise identical across builds.
        let mean_power = match self.injector {
            None => trace.mean_power_w(),
            Some(_) => trace.robust_mean_power_w(),
        };
        let measured_energy_j = mean_power * measured_duration_s;
        MeasuredExecution { execution, trace, measured_duration_s, measured_energy_j }
    }
}

/// A kernel execution together with its measured power trace.
#[derive(Debug, Clone)]
pub struct MeasuredExecution {
    /// The device-side execution record (carries the hidden ground truth).
    pub execution: Execution,
    /// The sampled power trace.
    pub trace: PowerTrace,
    /// Duration as reported by the host-side timer, s.  Equals
    /// `execution.duration_s` unless a fault injector jittered the read.
    pub measured_duration_s: f64,
    /// Energy as the experimenter computes it: mean measured power times
    /// the host-timed duration, J.
    pub measured_energy_j: f64,
}

impl MeasuredExecution {
    /// Measured average power, W.
    pub fn measured_power_w(&self) -> f64 {
        if self.measured_duration_s > 0.0 {
            self.measured_energy_j / self.measured_duration_s
        } else {
            self.trace.mean_power_w()
        }
    }

    /// Relative error of the measured energy against the hidden truth
    /// (diagnostics only).
    pub fn measurement_error_rel(&self) -> f64 {
        let truth = self.execution.true_energy_j();
        if truth == 0.0 {
            return 0.0;
        }
        (self.measured_energy_j - truth).abs() / truth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tk1_sim::{OpClass, OpVector, Setting};

    fn long_kernel() -> KernelProfile {
        // ~0.5 s at max frequency so the trace holds hundreds of samples.
        KernelProfile::new(
            "long",
            OpVector::from_pairs(&[(OpClass::FlopSp, 8e10), (OpClass::Dram, 1e8)]),
        )
    }

    #[test]
    fn sample_count_matches_rate_and_duration() {
        let mut dev = Device::new(1);
        let mut pm = PowerMon::new(2);
        let m = pm.measure(&mut dev, &long_kernel());
        let expected = (m.execution.duration_s * 1024.0).floor() as usize;
        assert_eq!(m.trace.len(), expected.max(1));
    }

    #[test]
    fn measured_energy_close_to_truth() {
        // Bounded by the per-session calibration bias (σ 2.5%) plus the
        // small sampling error.
        let mut dev = Device::new(3);
        let mut pm = PowerMon::new(4);
        let m = pm.measure(&mut dev, &long_kernel());
        assert!(
            m.measurement_error_rel() < 0.12,
            "measurement error {:.3}% should be bounded by calibration",
            m.measurement_error_rel() * 100.0
        );
    }

    #[test]
    fn calibration_bias_is_constant_within_a_session() {
        // The same meter measuring the same execution twice reports the
        // same systematic scale — comparisons within a sweep stay fair.
        let mut dev = Device::ideal(3);
        let e = dev.execute(&long_kernel());
        let mut pm = PowerMon::new(21);
        let a = pm.sample(&e).mean_power_w();
        let b = pm.sample(&e).mean_power_w();
        assert!((a - b).abs() / a < 1e-3, "white noise only: {a} vs {b}");
        // Different sessions (seeds) disagree by calibration, beyond
        // white noise.
        let biases: Vec<f64> = (0..12)
            .map(|s| {
                let mut pm = PowerMon::new(1000 + s);
                pm.sample(&e).mean_power_w()
            })
            .collect();
        let spread = biases.iter().cloned().fold(0.0f64, f64::max)
            - biases.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread / a > 0.01, "sessions differ by calibration: spread {spread}");
    }

    #[test]
    fn ideal_meter_is_nearly_exact() {
        let mut dev = Device::ideal(1);
        let mut pm = PowerMon::ideal(5);
        let m = pm.measure(&mut dev, &long_kernel());
        assert!(m.measurement_error_rel() < 2e-3, "err {:.5}", m.measurement_error_rel());
    }

    #[test]
    fn short_kernel_still_measured() {
        let mut dev = Device::new(6);
        let k = KernelProfile::new("tiny", OpVector::from_pairs(&[(OpClass::FlopSp, 1e3)]));
        let mut pm = PowerMon::new(7);
        let m = pm.measure(&mut dev, &k);
        assert!(m.trace.len() >= 1);
        assert!(m.measured_energy_j > 0.0);
    }

    #[test]
    fn lower_sample_rate_gives_fewer_samples() {
        let mut dev = Device::new(8);
        let e = dev.execute(&long_kernel());
        let mut fast = PowerMon::with_config(1024.0, AdcModel::default(), 9);
        let mut slow = PowerMon::with_config(128.0, AdcModel::default(), 9);
        assert!(fast.sample(&e).len() > slow.sample(&e).len() * 7);
    }

    #[test]
    fn measured_power_in_plausible_range() {
        let mut dev = Device::new(10);
        dev.set_operating_point(Setting::max_performance());
        let mut pm = PowerMon::new(11);
        let m = pm.measure(&mut dev, &long_kernel());
        // Board-level power: constant ~6.7 W plus dynamic.
        assert!(m.measured_power_w() > 5.0 && m.measured_power_w() < 15.0);
    }

    #[test]
    #[should_panic(expected = "1024")]
    fn oversampling_rejected() {
        let _ = PowerMon::with_config(2048.0, AdcModel::default(), 1);
    }

    #[test]
    fn fault_injector_corrupts_but_measurement_survives() {
        use tk1_sim::FaultConfig;
        let mut dev = Device::new(30);
        let mut pm = PowerMon::new(31);
        pm.set_fault_injector(Some(FaultConfig::default_campaign().injector(7)));
        let m = pm.measure(&mut dev, &long_kernel());
        assert!(m.trace.dropped_count() > 0, "default dropout rate must hit a long trace");
        assert!(m.measured_energy_j.is_finite() && m.measured_energy_j > 0.0);
        // Robust statistics keep the corrupted measurement close to truth.
        assert!(
            m.measurement_error_rel() < 0.2,
            "corrupted but robust: err {:.3}",
            m.measurement_error_rel()
        );
    }

    #[test]
    fn faulted_measurements_are_deterministic() {
        use tk1_sim::FaultConfig;
        let run = || {
            let mut dev = Device::new(30);
            let mut pm = PowerMon::new(31);
            pm.set_fault_injector(Some(FaultConfig::default_campaign().injector(7)));
            let m = pm.measure(&mut dev, &long_kernel());
            (m.trace.samples().to_vec(), m.measured_duration_s, m.measured_energy_j)
        };
        let (s1, d1, e1) = run();
        let (s2, d2, e2) = run();
        assert_eq!(d1.to_bits(), d2.to_bits());
        assert_eq!(e1.to_bits(), e2.to_bits());
        assert_eq!(s1.len(), s2.len());
        for (a, b) in s1.iter().zip(&s2) {
            assert_eq!(a.to_bits(), b.to_bits(), "corrupted traces must be bitwise equal");
        }
    }

    #[test]
    fn detached_injector_restores_clean_bitwise_path() {
        use tk1_sim::FaultConfig;
        let clean = {
            let mut dev = Device::new(40);
            let mut pm = PowerMon::new(41);
            pm.measure(&mut dev, &long_kernel())
        };
        let cycled = {
            let mut dev = Device::new(40);
            let mut pm = PowerMon::new(41);
            pm.set_fault_injector(Some(FaultConfig::default_campaign().injector(1)));
            pm.set_fault_injector(None);
            pm.measure(&mut dev, &long_kernel())
        };
        assert_eq!(clean.measured_energy_j.to_bits(), cycled.measured_energy_j.to_bits());
        assert_eq!(clean.measured_duration_s.to_bits(), cycled.measured_duration_s.to_bits());
    }
}
