//! The governor runtime: latch → execute → measure → feed back.
//!
//! [`GovernorRuntime`] owns the simulated device, the power meter and
//! the calibrated [`TransitionModel`].  For each phase it consults the
//! policy, latches the chosen operating point with bounded
//! verify-and-retry (every attempt pays its transition cost — a stuck
//! latch burns latency *and* another retry), executes and measures the
//! phase kernel, and reports the measurement back to the policy.
//!
//! Every joule is accounted: a run's total energy is the sum of the
//! measured phase energies plus all transition energy, so a policy
//! that switches at every boundary pays for it visibly.
//!
//! Determinism: decisions are pure functions of the seeds, the phase
//! profiles and the roofline timing model; no wall-clock time enters.
//! Two runs with the same seed, workload and policy are bitwise
//! identical, independent of the thread count.

use crate::policy::{PhaseContext, PhaseFeedback, Policy, Predictor, RunContext};
use crate::transition::{latch_with_retry, TransitionCost, TransitionModel};
use dvfs_energy_model::EnergyModel;
use kifmm::{FmmProfile, Phase};
use powermon_sim::PowerMon;
use tk1_sim::timing::TimingModel;
use tk1_sim::{Device, FaultConfig, KernelProfile, Setting};

/// One phase of the workload: which FMM phase and its kernel descriptor.
#[derive(Debug, Clone)]
pub struct PhaseTask {
    /// The FMM phase.
    pub phase: Phase,
    /// The phase's executable kernel profile.
    pub kernel: KernelProfile,
}

/// A governor workload: a phase sequence repeated for some rounds.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The phase sequence of one round.
    pub tasks: Vec<PhaseTask>,
    /// How many times the sequence repeats (a time-stepped FMM runs the
    /// same evaluation once per step — rounds model that, and give the
    /// adaptive policy measurements to learn from).
    pub rounds: usize,
}

impl Workload {
    /// Builds the six-phase workload of one FMM input from its profile.
    pub fn from_profile(profile: &FmmProfile, rounds: usize) -> Self {
        let tag = format!("N{}-Q{}", profile.n, profile.q);
        let tasks = profile
            .phases
            .iter()
            .map(|p| PhaseTask { phase: p.phase, kernel: p.kernel_profile(&tag) })
            .collect();
        Workload { tasks, rounds: rounds.max(1) }
    }
}

/// What happened to one phase execution.
#[derive(Debug, Clone, Copy)]
pub struct PhaseRecord {
    /// The round this record belongs to.
    pub round: usize,
    /// The phase.
    pub phase: Phase,
    /// What the policy asked for.
    pub requested: Setting,
    /// What actually latched.
    pub applied: Setting,
    /// Model-predicted energy at the applied setting, J.
    pub predicted_j: f64,
    /// Measured energy, J.
    pub measured_j: f64,
    /// Measured duration, s.
    pub time_s: f64,
    /// Accumulated transition cost of all latch attempts at this
    /// boundary.
    pub transition: TransitionCost,
    /// Latch retries beyond the first attempt (fault episodes).
    pub latch_retries: u32,
}

/// The full accounting of one governor run.
#[derive(Debug, Clone)]
pub struct GovernorReport {
    /// The policy's [`Policy::name`].
    pub policy: &'static str,
    /// Per-phase records, in execution order.
    pub records: Vec<PhaseRecord>,
    /// Σ measured phase time + Σ transition latency, s.
    pub total_time_s: f64,
    /// Σ measured phase energy + Σ transition energy, J.
    pub total_energy_j: f64,
    /// Σ transition energy alone, J.
    pub transition_energy_j: f64,
    /// Σ transition latency alone, s.
    pub transition_time_s: f64,
    /// Phase boundaries at which the operating point actually moved.
    pub switches: usize,
    /// Total latch retries across the run (fault episodes survived).
    pub latch_retries: u32,
}

impl GovernorReport {
    fn new(policy: &'static str) -> Self {
        GovernorReport {
            policy,
            records: Vec::new(),
            total_time_s: 0.0,
            total_energy_j: 0.0,
            transition_energy_j: 0.0,
            transition_time_s: 0.0,
            switches: 0,
            latch_retries: 0,
        }
    }

    /// Σ measured phase energy without transition energy, J.
    pub fn phase_energy_j(&self) -> f64 {
        self.total_energy_j - self.transition_energy_j
    }
}

/// A selected-but-not-yet-executed phase (between
/// [`GovernorRuntime::begin_phase`] and
/// [`GovernorRuntime::finish_phase`] — the two halves the FMM
/// phase-boundary hooks call from `on_phase_start`/`on_phase_end`).
#[derive(Debug, Clone, Copy)]
pub struct PendingPhase {
    requested: Setting,
    switched_from: Setting,
    transition: TransitionCost,
    latch_retries: u32,
}

/// Latch attempts per phase boundary before accepting whatever stuck.
const MAX_LATCH_ATTEMPTS: u32 = 16;

/// The online governor runtime over one simulated device + meter.
pub struct GovernorRuntime {
    device: Device,
    meter: PowerMon,
    timing: TimingModel,
    transitions: TransitionModel,
    model: EnergyModel,
    candidates: Vec<Setting>,
}

impl GovernorRuntime {
    /// Builds a runtime: a fresh device and meter seeded from `seed`,
    /// fault injectors attached per `faults` (streams are private to
    /// the governor, so a governor run never perturbs another
    /// subsystem's fault draws), and the transition model calibrated
    /// *under those faults* — the calibration pass itself must survive
    /// latch failures.
    ///
    /// Compare policies by building one runtime per policy with the
    /// same seed: each policy then sees an identical device, meter and
    /// fault sequence.
    pub fn new(
        model: EnergyModel,
        candidates: Vec<Setting>,
        seed: u64,
        faults: Option<&FaultConfig>,
    ) -> Self {
        let mut device = Device::new(seed ^ 0x60BE_12D0);
        let mut meter = PowerMon::new(seed ^ 0x90E7_A11E);
        if let Some(cfg) = faults {
            device.set_fault_injector(Some(cfg.injector(0xD0_17)));
            meter.set_fault_injector(Some(cfg.injector(0xD1_17)));
        }
        let timing = device.timing_model().clone();
        let transitions = TransitionModel::calibrate(&mut device);
        GovernorRuntime { device, meter, timing, transitions, model, candidates }
    }

    /// The simulated device (e.g. to snapshot ground truth for
    /// [`crate::Oracle`]).
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The calibrated transition model.
    pub fn transitions(&self) -> &TransitionModel {
        &self.transitions
    }

    /// The candidate settings.
    pub fn candidates(&self) -> &[Setting] {
        &self.candidates
    }

    fn predictor(&self) -> Predictor<'_> {
        Predictor { model: &self.model, timing: &self.timing, transitions: &self.transitions }
    }

    /// Starts a run: resets the device to the boot operating point
    /// (max performance, latched with uncharged retry — boot state is
    /// not part of the run) and gives the policy its whole-run view.
    pub fn start_run(
        &mut self,
        tasks: &[PhaseTask],
        rounds: usize,
        policy: &mut dyn Policy,
    ) -> GovernorReport {
        latch_with_retry(&mut self.device, Setting::max_performance(), 64);
        let run = RunContext {
            tasks,
            rounds,
            candidates: &self.candidates,
            start: self.device.operating_point(),
            predictor: self.predictor(),
        };
        policy.begin(&run);
        GovernorReport::new(policy.name())
    }

    /// First half of a phase: consult the policy and latch its pick
    /// (bounded verify-and-retry; every attempt pays transition cost).
    pub fn begin_phase(
        &mut self,
        task: &PhaseTask,
        round: usize,
        phase_idx: usize,
        policy: &mut dyn Policy,
    ) -> PendingPhase {
        let current = self.device.operating_point();
        let ctx = PhaseContext {
            phase: task.phase,
            phase_idx,
            round,
            kernel: &task.kernel,
            current,
            candidates: &self.candidates,
            predictor: Predictor {
                model: &self.model,
                timing: &self.timing,
                transitions: &self.transitions,
            },
        };
        let requested = policy.select(&ctx);
        let mut transition = TransitionCost::ZERO;
        let mut attempts = 0;
        while self.device.operating_point() != requested && attempts < MAX_LATCH_ATTEMPTS {
            let from = self.device.operating_point();
            self.device.set_operating_point(requested);
            attempts += 1;
            // Each attempt pays the latch latency for the domains it
            // tried to move — a stuck write still stalls the pipeline.
            transition.accumulate(self.transitions.cost(from, requested));
        }
        PendingPhase {
            requested,
            switched_from: current,
            transition,
            latch_retries: attempts.saturating_sub(1),
        }
    }

    /// Second half of a phase: execute + measure the kernel, feed the
    /// measurement back to the policy, and account the record.
    pub fn finish_phase(
        &mut self,
        task: &PhaseTask,
        round: usize,
        phase_idx: usize,
        pending: PendingPhase,
        policy: &mut dyn Policy,
        report: &mut GovernorReport,
    ) {
        let applied = self.device.operating_point();
        let m = self.meter.measure(&mut self.device, &task.kernel);
        let predicted_j = self.predictor().phase_energy_j(&task.kernel, applied);
        let fb = PhaseFeedback {
            phase_idx,
            requested: pending.requested,
            applied,
            predicted_j,
            measured_j: m.measured_energy_j,
            measured_s: m.measured_duration_s,
        };
        policy.observe(&fb);
        report.records.push(PhaseRecord {
            round,
            phase: task.phase,
            requested: pending.requested,
            applied,
            predicted_j,
            measured_j: m.measured_energy_j,
            time_s: m.measured_duration_s,
            transition: pending.transition,
            latch_retries: pending.latch_retries,
        });
        report.total_time_s += m.measured_duration_s + pending.transition.latency_s;
        report.total_energy_j += m.measured_energy_j + pending.transition.energy_j;
        report.transition_energy_j += pending.transition.energy_j;
        report.transition_time_s += pending.transition.latency_s;
        report.latch_retries += pending.latch_retries;
        if applied != pending.switched_from {
            report.switches += 1;
        }
    }

    /// Runs `workload` under `policy` end to end.
    pub fn run(&mut self, workload: &Workload, policy: &mut dyn Policy) -> GovernorReport {
        let mut report = self.start_run(&workload.tasks, workload.rounds, policy);
        for round in 0..workload.rounds {
            for (pi, task) in workload.tasks.iter().enumerate() {
                let pending = self.begin_phase(task, round, pi, policy);
                self.finish_phase(task, round, pi, pending, policy, &mut report);
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{FixedSetting, PerPhaseAdaptive, PerPhaseModel, RaceToHalt, StaticBest};
    use dvfs_energy_model::model::EnergyModel;

    /// A plausibly-close hand-written model (the real pipeline fits one
    /// from sweeps; unit tests only need sane relative ordering).
    fn test_model() -> EnergyModel {
        EnergyModel {
            c0_pj_per_v2: [27.0, 131.0, 56.0, 33.0, 33.0, 85.0, 370.0],
            c1_proc_w_per_v: 2.7,
            c1_mem_w_per_v: 3.9,
            p_misc_w: 0.13,
        }
    }

    fn test_workload() -> Workload {
        use tk1_sim::{OpClass, OpVector};
        let flops = OpVector::from_pairs(&[(OpClass::FlopSp, 6.0e8), (OpClass::L1, 1.0e7)]);
        let mem = OpVector::from_pairs(&[(OpClass::Dram, 4.0e7), (OpClass::FlopSp, 1.0e7)]);
        Workload {
            tasks: vec![
                PhaseTask {
                    phase: Phase::Up,
                    kernel: KernelProfile::new("gov-up", flops.clone()).with_utilization(0.3),
                },
                PhaseTask {
                    phase: Phase::V,
                    kernel: KernelProfile::new("gov-v", mem).with_utilization(0.35),
                },
                PhaseTask {
                    phase: Phase::U,
                    kernel: KernelProfile::new("gov-u", flops).with_utilization(0.25),
                },
            ],
            rounds: 3,
        }
    }

    fn candidates() -> Vec<Setting> {
        vec![
            Setting::max_performance(),
            Setting::new(14, 2),
            Setting::new(8, 4),
            Setting::new(4, 4),
            Setting::new(10, 6),
        ]
    }

    #[test]
    fn runs_are_bitwise_reproducible() {
        let wl = test_workload();
        for threads in [1usize, 2, 4, 8] {
            compat::par::set_thread_count(Some(threads));
            let mut rt = GovernorRuntime::new(test_model(), candidates(), 42, None);
            let mut policy = PerPhaseModel::new();
            let a = rt.run(&wl, &mut policy);
            let mut rt2 = GovernorRuntime::new(test_model(), candidates(), 42, None);
            let mut policy2 = PerPhaseModel::new();
            let b = rt2.run(&wl, &mut policy2);
            assert_eq!(a.total_energy_j.to_bits(), b.total_energy_j.to_bits());
            assert_eq!(a.total_time_s.to_bits(), b.total_time_s.to_bits());
            assert_eq!(a.switches, b.switches);
        }
        compat::par::set_thread_count(None);
    }

    #[test]
    fn every_policy_completes_and_accounts_transitions() {
        let wl = test_workload();
        let mk = || GovernorRuntime::new(test_model(), candidates(), 7, None);
        let mut policies: Vec<Box<dyn Policy>> = vec![
            Box::new(FixedSetting(Setting::new(8, 4))),
            Box::new(StaticBest::new()),
            Box::new(RaceToHalt),
            Box::new(PerPhaseModel::new()),
            Box::new(PerPhaseAdaptive::new(0.5, 0.03)),
        ];
        for p in policies.iter_mut() {
            let mut rt = mk();
            let report = rt.run(&wl, p.as_mut());
            assert_eq!(report.records.len(), wl.tasks.len() * wl.rounds);
            assert!(report.total_energy_j > 0.0 && report.total_time_s > 0.0);
            assert!(report.phase_energy_j() <= report.total_energy_j);
            let rec_transition: f64 = report.records.iter().map(|r| r.transition.energy_j).sum();
            assert!((rec_transition - report.transition_energy_j).abs() < 1e-12);
        }
    }

    #[test]
    fn fixed_policy_never_switches_after_the_first_latch() {
        let wl = test_workload();
        let mut rt = GovernorRuntime::new(test_model(), candidates(), 9, None);
        let mut policy = FixedSetting(Setting::new(8, 4));
        let report = rt.run(&wl, &mut policy);
        assert_eq!(report.switches, 1, "one switch from boot, then pinned");
        for r in &report.records {
            assert_eq!(r.applied, Setting::new(8, 4));
        }
    }

    #[test]
    fn latch_faults_are_survived_and_reported() {
        let wl = test_workload();
        let faults = FaultConfig::default_campaign();
        let mut rt = GovernorRuntime::new(test_model(), candidates(), 1234, Some(&faults));
        let mut policy = PerPhaseModel::new();
        let report = rt.run(&wl, &mut policy);
        assert_eq!(report.records.len(), wl.tasks.len() * wl.rounds);
        // Under the default 4%/2% latch-fault rates a full run's latch
        // traffic (calibration happened before the report) still ends
        // with every record executed at its requested point.
        for r in &report.records {
            assert_eq!(r.applied, r.requested, "verify-and-retry converged");
        }
    }

    #[test]
    fn adaptive_bias_tracks_measured_over_predicted() {
        let wl = test_workload();
        let mut rt = GovernorRuntime::new(test_model(), candidates(), 5, None);
        let mut policy = PerPhaseAdaptive::new(0.5, 0.03);
        let report = rt.run(&wl, &mut policy);
        for pi in 0..wl.tasks.len() {
            let b = policy.bias(pi);
            assert!(b > 0.25 && b < 4.0, "bias stays in band: {b}");
            // The hand-written test model is deliberately imperfect, so
            // feedback must have moved the bias off its 1.0 prior.
            assert!((b - 1.0).abs() > 1e-6, "phase {pi} bias updated: {b}");
        }
        assert!(report.latch_retries == 0, "no faults configured");
    }
}
