//! Online phase-aware DVFS governor for the FMM.
//!
//! The paper's autotuner (Section II-E, Table II) picks ONE static
//! `(f_core, f_mem)` setting for an entire run.  Its own breakdowns
//! (Figs. 4/6/7) show why that leaves energy on the table: the FMM's
//! phases have wildly different operation mixes — U/X are flop-dense, V
//! is FFT/memory-bound — and constant power is 75–95% of total energy,
//! exactly the regime where matching the operating point to each phase
//! beats both a static pick and race-to-halt.  This crate closes that
//! loop at (simulated) runtime:
//!
//! * [`transition`] — the DVFS transition-cost model: per-domain latch
//!   latencies plus the energy burned while latching, with the idle
//!   power at every operating point *calibrated* from the simulated
//!   device (surviving latch-failure faults via verify-and-retry).
//! * [`policy`] — the pluggable [`Policy`] trait and its
//!   implementations: [`FixedSetting`], [`StaticBest`] (the paper's
//!   Table II strategy), [`RaceToHalt`], [`PerPhaseModel`] (per-phase
//!   argmin of the fitted model's predicted energy, transition costs
//!   included), [`PerPhaseAdaptive`] (the model policy plus an online
//!   exponentially-weighted bias estimator fed by `powermon`
//!   measurements, with switching hysteresis), and the ground-truth
//!   [`Oracle`] scorer.
//! * [`runtime`] — [`GovernorRuntime`]: owns the simulated device,
//!   power meter and transition model; latches each phase's chosen
//!   setting (bounded verify-and-retry under latch faults), executes
//!   and measures the phase kernel, feeds the measurement back to the
//!   policy, and accounts every joule — including transition energy —
//!   in a [`GovernorReport`].
//! * [`hook`] — [`PhasedDriver`], a [`kifmm::PhaseObserver`] that
//!   drives the governor from a *live* FMM evaluation's phase
//!   boundaries ([`governed_evaluate`]).
//!
//! Everything is a pure function of seeds, profiles and the roofline
//! timing model — no wall-clock time enters any decision — so every
//! governor run is bitwise reproducible across thread counts.

pub mod hook;
pub mod policy;
pub mod runtime;
pub mod transition;

pub use hook::{governed_evaluate, PhasedDriver};
pub use policy::{
    plan_phase_settings, FixedSetting, Oracle, PerPhaseAdaptive, PerPhaseModel, PhaseContext,
    PhaseFeedback, PhasePlan, Policy, Predictor, RaceToHalt, RunContext, StaticBest,
};
pub use runtime::{GovernorReport, GovernorRuntime, PhaseRecord, PhaseTask, Workload};
pub use transition::{TransitionCost, TransitionModel};

/// Tunable governor knobs, with `FMM_ENERGY_GOV_*` env overrides.
#[derive(Debug, Clone, Copy)]
pub struct GovernorConfig {
    /// Times the phase sequence is repeated per run.  More rounds give
    /// the adaptive policy more feedback to converge on; every policy
    /// is compared over the same round count.
    pub rounds: usize,
    /// EWMA weight of the newest measured/predicted energy ratio in
    /// [`PerPhaseAdaptive`]'s per-phase bias estimator, in `[0, 1]`.
    pub alpha: f64,
    /// Relative improvement a challenger setting must show over the
    /// incumbent before [`PerPhaseAdaptive`] switches — the hysteresis
    /// that keeps it from thrashing across latch-failure episodes.
    pub hysteresis: f64,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig { rounds: 4, alpha: 0.5, hysteresis: 0.03 }
    }
}

impl GovernorConfig {
    /// The defaults, overridden by `FMM_ENERGY_GOV_ROUNDS` (positive
    /// integer), `FMM_ENERGY_GOV_ALPHA` (in `[0, 1]`) and
    /// `FMM_ENERGY_GOV_HYSTERESIS` (in `[0, 0.5]`).  Malformed or
    /// out-of-range values fall back to the defaults (see
    /// [`compat::env`]).
    pub fn from_env() -> Self {
        let d = GovernorConfig::default();
        GovernorConfig {
            rounds: compat::env::positive_usize("FMM_ENERGY_GOV_ROUNDS").unwrap_or(d.rounds),
            alpha: compat::env::float_in("FMM_ENERGY_GOV_ALPHA", 0.0, 1.0).unwrap_or(d.alpha),
            hysteresis: compat::env::float_in("FMM_ENERGY_GOV_HYSTERESIS", 0.0, 0.5)
                .unwrap_or(d.hysteresis),
        }
    }
}
