//! Driving the governor from a live FMM evaluation.
//!
//! [`PhasedDriver`] implements [`kifmm::PhaseObserver`]: at each engine
//! phase boundary it consults the policy and latches the phase's
//! operating point (`on_phase_start`), then executes and measures the
//! phase's profiled kernel on the simulated device and feeds the
//! measurement back (`on_phase_end`).  The numeric evaluation itself is
//! untouched — the observer runs strictly between phases — so governed
//! potentials are bitwise identical to ungoverned ones.
//!
//! The engine exposes five execution sections ([`EnginePhase`]) while
//! the instrumentation profile has six phases: the engine's fused leaf
//! pass ([`EnginePhase::Near`]) maps to the U and W profiles merged
//! into one kernel descriptor.

use crate::policy::Policy;
use crate::runtime::{GovernorReport, GovernorRuntime, PendingPhase, PhaseTask};
use kifmm::evaluator::{EnginePhase, PhaseObserver};
use kifmm::{FmmProfile, Phase};
use tk1_sim::KernelProfile;

/// Index of each engine phase in the driver's task table.
fn task_index(phase: EnginePhase) -> usize {
    match phase {
        EnginePhase::Up => 0,
        EnginePhase::V => 1,
        EnginePhase::X => 2,
        EnginePhase::Down => 3,
        EnginePhase::Near => 4,
    }
}

/// Merges the U and W phase profiles into the engine's fused leaf-pass
/// kernel: ops and launches add; utilization is the op-weighted mean.
fn near_task(profile: &FmmProfile, tag: &str) -> PhaseTask {
    let u = profile.phase(Phase::U);
    let w = profile.phase(Phase::W);
    let mut ops = u.ops();
    ops.accumulate(&w.ops());
    let weight = |p: &kifmm::PhaseProfile| {
        let o = p.ops();
        o.total_compute() + o.total_memory_ops()
    };
    let (wu, ww) = (weight(u), weight(w));
    let utilization = if wu + ww > 0.0 {
        (u.utilization * wu + w.utilization * ww) / (wu + ww)
    } else {
        u.utilization
    };
    let kernel = KernelProfile::new(format!("fmm-NEAR-{tag}"), ops)
        .with_utilization(utilization)
        .with_launches(u.launches + w.launches);
    PhaseTask { phase: Phase::U, kernel }
}

/// A [`PhaseObserver`] that runs the governor loop at the FMM engine's
/// phase boundaries.
pub struct PhasedDriver<'a> {
    runtime: &'a mut GovernorRuntime,
    policy: &'a mut dyn Policy,
    tasks: Vec<PhaseTask>,
    pending: Option<(usize, PendingPhase)>,
    report: GovernorReport,
    round: usize,
}

impl<'a> PhasedDriver<'a> {
    /// Builds a driver for `rounds` planned evaluations of the problem
    /// `profile` describes (each [`kifmm::FmmEvaluator::evaluate_observed`]
    /// call advances one round).
    pub fn new(
        runtime: &'a mut GovernorRuntime,
        policy: &'a mut dyn Policy,
        profile: &FmmProfile,
        rounds: usize,
    ) -> Self {
        let tag = format!("N{}-Q{}", profile.n, profile.q);
        let tasks = vec![
            PhaseTask { phase: Phase::Up, kernel: profile.phase(Phase::Up).kernel_profile(&tag) },
            PhaseTask { phase: Phase::V, kernel: profile.phase(Phase::V).kernel_profile(&tag) },
            PhaseTask { phase: Phase::X, kernel: profile.phase(Phase::X).kernel_profile(&tag) },
            PhaseTask {
                phase: Phase::Down,
                kernel: profile.phase(Phase::Down).kernel_profile(&tag),
            },
            near_task(profile, &tag),
        ];
        let report = runtime.start_run(&tasks, rounds, policy);
        PhasedDriver { runtime, policy, tasks, pending: None, report, round: 0 }
    }

    /// Finishes the drive and returns the accumulated report.
    pub fn into_report(self) -> GovernorReport {
        self.report
    }
}

impl PhaseObserver for PhasedDriver<'_> {
    fn on_phase_start(&mut self, phase: EnginePhase) {
        let idx = task_index(phase);
        let pending =
            self.runtime.begin_phase(&self.tasks[idx], self.round, idx, &mut *self.policy);
        self.pending = Some((idx, pending));
    }

    fn on_phase_end(&mut self, phase: EnginePhase, _elapsed_s: f64) {
        if let Some((idx, pending)) = self.pending.take() {
            debug_assert_eq!(idx, task_index(phase), "start/end pairs nest");
            self.runtime.finish_phase(
                &self.tasks[idx],
                self.round,
                idx,
                pending,
                &mut *self.policy,
                &mut self.report,
            );
        }
        if matches!(phase, EnginePhase::Near) {
            self.round += 1;
        }
    }
}

/// Evaluates `plan` with the governor latching per-phase operating
/// points at the engine's phase boundaries; returns the (bitwise
/// ungoverned-identical) potentials and the governor's accounting.
pub fn governed_evaluate<K: kifmm::Kernel>(
    plan: &kifmm::FmmPlan<K>,
    profile: &FmmProfile,
    runtime: &mut GovernorRuntime,
    policy: &mut dyn Policy,
) -> (Vec<f64>, GovernorReport) {
    let mut driver = PhasedDriver::new(runtime, policy, profile, 1);
    let (potentials, _timings) = kifmm::FmmEvaluator::new().evaluate_observed(plan, &mut driver);
    (potentials, driver.into_report())
}
