//! The pluggable per-phase DVFS policies.
//!
//! A [`Policy`] is consulted once per phase with a [`PhaseContext`]
//! (the phase's kernel descriptor, the currently-latched setting, the
//! candidate settings, and a [`Predictor`] over the fitted model) and
//! answers with the [`Setting`] to latch for that phase.  After the
//! phase executes, the runtime reports what actually happened through
//! [`Policy::observe`] — the feedback loop [`PerPhaseAdaptive`] closes.
//!
//! All policies are deterministic: scans run in candidate order and
//! ties resolve strictly to the first (lowest-index) minimum, so a
//! policy's decisions are a pure function of its inputs.

use crate::runtime::PhaseTask;
use crate::transition::TransitionModel;
use dvfs_energy_model::EnergyModel;
use kifmm::Phase;
use tk1_sim::timing::TimingModel;
use tk1_sim::{Device, KernelProfile, Setting, TruthConstants};

/// Model-side scoring used by planning policies: predicted phase time
/// from the roofline timing model, predicted phase energy from the
/// fitted [`EnergyModel`], and transition costs from the calibrated
/// [`TransitionModel`].
#[derive(Debug, Clone, Copy)]
pub struct Predictor<'a> {
    /// The fitted energy model.
    pub model: &'a EnergyModel,
    /// The roofline timing model (how phase time scales with clocks).
    pub timing: &'a TimingModel,
    /// The calibrated transition-cost model.
    pub transitions: &'a TransitionModel,
}

impl Predictor<'_> {
    /// Predicted execution time of `kernel` at `setting`, s.
    pub fn phase_time_s(&self, kernel: &KernelProfile, setting: Setting) -> f64 {
        self.timing.execution_time(kernel, setting).total_s
    }

    /// Model-predicted energy of `kernel` at `setting`, J.
    pub fn phase_energy_j(&self, kernel: &KernelProfile, setting: Setting) -> f64 {
        let t = self.phase_time_s(kernel, setting);
        self.model.predict_energy_j(&kernel.ops, setting, t)
    }

    /// Energy of switching `from → to`, J (0 for the identity).
    pub fn switch_energy_j(&self, from: Setting, to: Setting) -> f64 {
        self.transitions.cost(from, to).energy_j
    }
}

/// Whole-run context handed to [`Policy::begin`] before the first phase.
pub struct RunContext<'a> {
    /// The phase sequence of one round.
    pub tasks: &'a [PhaseTask],
    /// How many rounds the run repeats.
    pub rounds: usize,
    /// The candidate settings policies may choose from.
    pub candidates: &'a [Setting],
    /// The operating point latched when the run starts (the first
    /// phase's transition is paid from here).
    pub start: Setting,
    /// Model-side scoring.
    pub predictor: Predictor<'a>,
}

/// Per-phase context handed to [`Policy::select`].
pub struct PhaseContext<'a> {
    /// The phase about to run.
    pub phase: Phase,
    /// Index of the phase within the round (stable across rounds — the
    /// key adaptive per-phase state is held under).
    pub phase_idx: usize,
    /// The current round.
    pub round: usize,
    /// The phase's kernel descriptor.
    pub kernel: &'a KernelProfile,
    /// The operating point latched right now (staying costs nothing).
    pub current: Setting,
    /// The candidate settings.
    pub candidates: &'a [Setting],
    /// Model-side scoring.
    pub predictor: Predictor<'a>,
}

/// What actually happened to a phase, handed to [`Policy::observe`].
#[derive(Debug, Clone, Copy)]
pub struct PhaseFeedback {
    /// Index of the phase within the round.
    pub phase_idx: usize,
    /// The setting the policy asked for.
    pub requested: Setting,
    /// The setting that actually latched (≠ `requested` only when the
    /// bounded retry gave up during a latch-failure episode).
    pub applied: Setting,
    /// Model-predicted energy at the *applied* setting, J.
    pub predicted_j: f64,
    /// `powermon`-measured energy, J.
    pub measured_j: f64,
    /// Measured duration, s.
    pub measured_s: f64,
}

/// A per-phase DVFS selection policy.
pub trait Policy {
    /// Short identifier used in reports.
    fn name(&self) -> &'static str;
    /// Called once before the first phase of a run.
    fn begin(&mut self, _run: &RunContext<'_>) {}
    /// Picks the setting to latch for the phase.
    fn select(&mut self, ctx: &PhaseContext<'_>) -> Setting;
    /// Receives the phase's measurement after it executed.
    fn observe(&mut self, _fb: &PhaseFeedback) {}
}

/// Pins one setting for the whole run (the measurement baseline the
/// per-input "best static" ground truth is built from).
#[derive(Debug, Clone, Copy)]
pub struct FixedSetting(pub Setting);

impl Policy for FixedSetting {
    fn name(&self) -> &'static str {
        "fixed"
    }
    fn select(&mut self, _ctx: &PhaseContext<'_>) -> Setting {
        self.0
    }
}

/// The paper's Table II strategy: one static setting for the whole run,
/// chosen up front as the candidate minimizing the model-predicted
/// energy of the full phase sequence.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticBest {
    choice: Option<Setting>,
}

impl StaticBest {
    /// Creates the policy (the pick happens in [`Policy::begin`]).
    pub fn new() -> Self {
        StaticBest::default()
    }
}

impl Policy for StaticBest {
    fn name(&self) -> &'static str {
        "static-best"
    }
    fn begin(&mut self, run: &RunContext<'_>) {
        let mut best: Option<(f64, Setting)> = None;
        for &s in run.candidates {
            let e: f64 = run.tasks.iter().map(|t| run.predictor.phase_energy_j(&t.kernel, s)).sum();
            // Strict `<`: equal predictions keep the earlier candidate,
            // so ties break deterministically to the lowest index.
            if best.map_or(true, |(be, _)| e < be) {
                best = Some((e, s));
            }
        }
        self.choice = best.map(|(_, s)| s);
    }
    fn select(&mut self, ctx: &PhaseContext<'_>) -> Setting {
        self.choice.unwrap_or(ctx.current)
    }
}

/// Race-to-halt doctrine: always the highest clocks on offer.
#[derive(Debug, Clone, Copy, Default)]
pub struct RaceToHalt;

impl Policy for RaceToHalt {
    fn name(&self) -> &'static str {
        "race-to-halt"
    }
    fn select(&mut self, ctx: &PhaseContext<'_>) -> Setting {
        ctx.candidates
            .iter()
            .copied()
            .max_by_key(|s| (s.core_idx, s.mem_idx))
            .unwrap_or_else(Setting::max_performance)
    }
}

/// Scores `s` for one phase: predicted phase energy plus the energy of
/// switching there from `current`.  Staying put is always a candidate
/// (its transition is free), so a switch only happens when the model
/// says the phase's savings beat the latch cost.
fn model_score(ctx: &PhaseContext<'_>, bias: f64, s: Setting) -> f64 {
    bias * ctx.predictor.phase_energy_j(ctx.kernel, s)
        + ctx.predictor.switch_energy_j(ctx.current, s)
}

/// Minimum-total-energy plan over a stage sequence: a Viterbi pass over
/// (stage × candidate) states whose edges pay the calibrated transition
/// energy, with `cost(stage, setting)` as the per-stage energy under
/// the caller's beliefs.  Returns one candidate index per stage plus
/// the plan's total.
///
/// Planning over the *whole* sequence is what lets a switch amortize:
/// a greedy per-phase argmin charges the full latch cost against a
/// single phase and locks into its first choice, while the DP pays it
/// once against every remaining repetition.  A constant path is always
/// feasible, so the plan is never predicted-worse than the best static
/// setting.  Relaxations use strict `<` in candidate order and the
/// identity transition is free, so ties resolve deterministically to
/// the lowest candidate index.
fn plan_stages(
    predictor: &Predictor<'_>,
    candidates: &[Setting],
    start: Setting,
    stages: usize,
    mut cost: impl FnMut(usize, Setting) -> f64,
) -> (Vec<usize>, f64) {
    let n = candidates.len();
    if n == 0 || stages == 0 {
        return (Vec::new(), 0.0);
    }
    let mut dp: Vec<f64> =
        candidates.iter().map(|&s| predictor.switch_energy_j(start, s) + cost(0, s)).collect();
    let mut back: Vec<Vec<usize>> = Vec::with_capacity(stages.saturating_sub(1));
    for t in 1..stages {
        let mut next = vec![f64::INFINITY; n];
        let mut prev = vec![0usize; n];
        for (j, &to) in candidates.iter().enumerate() {
            let mut best = f64::INFINITY;
            let mut best_i = 0usize;
            for (i, &from) in candidates.iter().enumerate() {
                let through = dp[i] + predictor.switch_energy_j(from, to);
                if through < best {
                    best = through;
                    best_i = i;
                }
            }
            next[j] = best + cost(t, to);
            prev[j] = best_i;
        }
        dp = next;
        back.push(prev);
    }
    let mut end = 0usize;
    for (i, &v) in dp.iter().enumerate().skip(1) {
        if v < dp[end] {
            end = i;
        }
    }
    let total = dp[end];
    let mut plan = vec![0usize; stages];
    let mut j = end;
    for t in (0..stages).rev() {
        plan[t] = j;
        if t > 0 {
            j = back[t - 1][j];
        }
    }
    (plan, total)
}

/// A computed phase plan: one setting per stage (phase × round, in
/// execution order) plus the plan's predicted total energy, including
/// every transition it pays.
#[derive(Debug, Clone, PartialEq)]
pub struct PhasePlan {
    /// The setting to latch for each stage, `kernels.len() × rounds`
    /// entries in execution order.
    pub settings: Vec<Setting>,
    /// Predicted total energy of the planned run, J.
    pub predicted_total_j: f64,
}

/// Request-shaped planning entry point: the minimum-predicted-energy
/// DVFS schedule for `kernels` executed back to back for `rounds`
/// rounds, starting from `start`.
///
/// This is the same Viterbi pass [`PerPhaseModel`] runs inside the
/// governor loop ([`plan_stages`]), exposed as a pure function so the
/// serving layer can answer plan requests without standing up a
/// [`crate::GovernorRuntime`].  Deterministic: ties resolve to the
/// lowest candidate index.  Empty `kernels` or `candidates` yield an
/// empty plan with zero energy.
pub fn plan_phase_settings(
    predictor: &Predictor<'_>,
    candidates: &[Setting],
    start: Setting,
    kernels: &[KernelProfile],
    rounds: usize,
) -> PhasePlan {
    let stages = kernels.len() * rounds;
    let (indices, predicted_total_j) = plan_stages(predictor, candidates, start, stages, |t, s| {
        predictor.phase_energy_j(&kernels[t % kernels.len()], s)
    });
    PhasePlan { settings: indices.into_iter().map(|i| candidates[i]).collect(), predicted_total_j }
}

/// Picks the argmin of `score` over `current ∪ candidates`, first-wins.
fn argmin_setting(ctx: &PhaseContext<'_>, mut score: impl FnMut(Setting) -> f64) -> Setting {
    let mut best = ctx.current;
    let mut best_score = score(ctx.current);
    for &s in ctx.candidates {
        let sc = score(s);
        if sc < best_score {
            best = s;
            best_score = sc;
        }
    }
    best
}

/// The fitted model applied per phase instead of per run: one Viterbi
/// plan over the whole phase sequence ([`plan_stages`]), minimizing
/// total predicted energy with transition costs on every edge.
#[derive(Debug, Clone, Default)]
pub struct PerPhaseModel {
    plan: Vec<Setting>,
    stride: usize,
}

impl PerPhaseModel {
    /// Creates the policy (the plan is laid in [`Policy::begin`]).
    pub fn new() -> Self {
        PerPhaseModel::default()
    }
}

impl Policy for PerPhaseModel {
    fn name(&self) -> &'static str {
        "per-phase-model"
    }
    fn begin(&mut self, run: &RunContext<'_>) {
        self.stride = run.tasks.len();
        let stages = run.tasks.len() * run.rounds.max(1);
        let (plan, _) = plan_stages(&run.predictor, run.candidates, run.start, stages, |t, s| {
            run.predictor.phase_energy_j(&run.tasks[t % self.stride].kernel, s)
        });
        self.plan = plan.into_iter().map(|j| run.candidates[j]).collect();
    }
    fn select(&mut self, ctx: &PhaseContext<'_>) -> Setting {
        // Greedy fallback covers phases past the planned horizon (more
        // rounds driven than announced) or a run with no `begin`.
        let t = ctx.round * self.stride.max(1) + ctx.phase_idx;
        self.plan
            .get(t)
            .copied()
            .unwrap_or_else(|| argmin_setting(ctx, |s| model_score(ctx, 1.0, s)))
    }
}

/// [`PerPhaseModel`] plus an online feedback loop: an exponentially
/// weighted estimate of each phase's measured/predicted energy ratio
/// scales the model's prediction, correcting phase-specific model bias
/// from live `powermon` measurements.  Each phase boundary re-plans
/// the *remaining* horizon ([`plan_stages`] from the currently-latched
/// point) under the updated biases — receding-horizon control.
///
/// Switching is damped two ways so noisy feedback and latch-failure
/// episodes cannot make it thrash: the bias ratio is clamped (one
/// corrupted measurement cannot swing the estimate to an extreme), and
/// once a phase has a chosen point, a re-plan may only move that phase
/// elsewhere if the whole-horizon saving exceeds the configured
/// hysteresis fraction of the phase's predicted energy.  The *first*
/// pick of each phase follows the plan ungated — hysteresis damps
/// feedback-driven churn, it never vetoes the initial plan.
#[derive(Debug, Clone)]
pub struct PerPhaseAdaptive {
    alpha: f64,
    hysteresis: f64,
    bias: Vec<f64>,
    kernels: Vec<KernelProfile>,
    rounds: usize,
    incumbent: Vec<Option<Setting>>,
}

/// Clamp band for the per-phase bias estimate.
const BIAS_CLAMP: (f64, f64) = (0.25, 4.0);

impl PerPhaseAdaptive {
    /// Creates the policy with the given EWMA weight and hysteresis
    /// margin (see [`crate::GovernorConfig`]).
    pub fn new(alpha: f64, hysteresis: f64) -> Self {
        PerPhaseAdaptive {
            alpha,
            hysteresis,
            bias: Vec::new(),
            kernels: Vec::new(),
            rounds: 0,
            incumbent: Vec::new(),
        }
    }

    /// Creates the policy from a [`crate::GovernorConfig`].
    pub fn from_config(cfg: &crate::GovernorConfig) -> Self {
        Self::new(cfg.alpha, cfg.hysteresis)
    }

    /// The current bias estimate for phase `phase_idx` (1 = unbiased).
    pub fn bias(&self, phase_idx: usize) -> f64 {
        self.bias.get(phase_idx).copied().unwrap_or(1.0)
    }
}

impl Policy for PerPhaseAdaptive {
    fn name(&self) -> &'static str {
        "per-phase-adaptive"
    }
    fn begin(&mut self, run: &RunContext<'_>) {
        self.bias = vec![1.0; run.tasks.len()];
        self.kernels = run.tasks.iter().map(|t| t.kernel.clone()).collect();
        self.rounds = run.rounds.max(1);
        self.incumbent = vec![None; run.tasks.len()];
    }
    fn select(&mut self, ctx: &PhaseContext<'_>) -> Setting {
        let stride = self.kernels.len();
        let pi = ctx.phase_idx;
        let t0 = ctx.round * stride.max(1) + pi;
        let total = stride * self.rounds;
        if stride == 0 || t0 >= total {
            let bias = self.bias.get(pi).copied().unwrap_or(1.0);
            return argmin_setting(ctx, |s| model_score(ctx, bias, s));
        }
        let cost = |dt: usize, s: Setting| {
            let i = (t0 + dt) % stride;
            self.bias[i] * ctx.predictor.phase_energy_j(&self.kernels[i], s)
        };
        let remaining = total - t0;
        let (plan, free_cost) =
            plan_stages(&ctx.predictor, ctx.candidates, ctx.current, remaining, &cost);
        let pick = ctx.candidates[plan[0]];
        let chosen = match self.incumbent[pi] {
            Some(inc) if inc != pick => {
                // A feedback-driven plan change: keeping the incumbent
                // for this phase and re-planning after must cost more
                // than the hysteresis margin, or the incumbent stands.
                let forced = ctx.predictor.switch_energy_j(ctx.current, inc)
                    + cost(0, inc)
                    + plan_stages(&ctx.predictor, ctx.candidates, inc, remaining - 1, |dt, s| {
                        cost(dt + 1, s)
                    })
                    .1;
                if forced - free_cost > self.hysteresis * cost(0, inc) {
                    pick
                } else {
                    inc
                }
            }
            _ => pick,
        };
        self.incumbent[pi] = Some(chosen);
        chosen
    }
    fn observe(&mut self, fb: &PhaseFeedback) {
        if fb.phase_idx >= self.bias.len() {
            return;
        }
        if !(fb.predicted_j > 0.0) || !fb.measured_j.is_finite() || !(fb.measured_j > 0.0) {
            return;
        }
        let ratio = (fb.measured_j / fb.predicted_j).clamp(BIAS_CLAMP.0, BIAS_CLAMP.1);
        let b = (1.0 - self.alpha) * self.bias[fb.phase_idx] + self.alpha * ratio;
        self.bias[fb.phase_idx] = b.clamp(BIAS_CLAMP.0, BIAS_CLAMP.1);
    }
}

/// Ground-truth scorer: the per-phase argmin under the simulator's
/// *hidden* constants instead of the fitted model.
///
/// Diagnostics only — it reads [`Device::ground_truth`], which no
/// real-hardware policy could, so it serves as the idealized lower
/// bound the practical policies are judged against (noise and
/// activity-factor deviations keep even this from being exact).
#[derive(Debug, Clone)]
pub struct Oracle {
    truth: TruthConstants,
    timing: TimingModel,
    plan: Vec<Setting>,
    stride: usize,
}

impl Oracle {
    /// Snapshots `device`'s hidden constants and timing model.
    pub fn new(device: &Device) -> Self {
        Oracle {
            truth: device.ground_truth().clone(),
            timing: device.timing_model().clone(),
            plan: Vec::new(),
            stride: 0,
        }
    }

    fn true_energy_j(&self, kernel: &KernelProfile, s: Setting) -> f64 {
        let t = self.timing.execution_time(kernel, s).total_s;
        let mut dynamic_j = 0.0;
        for (class, count) in kernel.ops.iter() {
            dynamic_j += count * self.truth.energy_per_op_j(class, s);
        }
        let constant_w = self.truth.constant_power_w(s, dynamic_j / t.max(1e-12));
        dynamic_j + constant_w * t
    }
}

impl Policy for Oracle {
    fn name(&self) -> &'static str {
        "oracle"
    }
    fn begin(&mut self, run: &RunContext<'_>) {
        self.stride = run.tasks.len();
        let stages = run.tasks.len() * run.rounds.max(1);
        let (plan, _) = plan_stages(&run.predictor, run.candidates, run.start, stages, |t, s| {
            self.true_energy_j(&run.tasks[t % run.tasks.len()].kernel, s)
        });
        self.plan = plan.into_iter().map(|j| run.candidates[j]).collect();
    }
    fn select(&mut self, ctx: &PhaseContext<'_>) -> Setting {
        let t = ctx.round * self.stride.max(1) + ctx.phase_idx;
        self.plan.get(t).copied().unwrap_or_else(|| {
            argmin_setting(ctx, |s| {
                self.true_energy_j(ctx.kernel, s) + ctx.predictor.switch_energy_j(ctx.current, s)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tk1_sim::{Device, OpClass, OpVector, NUM_OP_CLASSES};

    fn toy_model() -> EnergyModel {
        EnergyModel {
            c0_pj_per_v2: [120.0; NUM_OP_CLASSES],
            c1_proc_w_per_v: 1.1,
            c1_mem_w_per_v: 0.35,
            p_misc_w: 0.6,
        }
    }

    #[test]
    fn plan_phase_settings_is_deterministic_and_never_beats_itself() {
        let model = toy_model();
        let mut device = Device::new(42);
        let transitions = TransitionModel::calibrate(&mut device);
        let predictor =
            Predictor { model: &model, timing: device.timing_model(), transitions: &transitions };
        let kernels = vec![
            KernelProfile::new("compute", OpVector::from_pairs(&[(OpClass::FlopSp, 4e8)])),
            KernelProfile::new("memory", OpVector::from_pairs(&[(OpClass::Dram, 3e7)])),
        ];
        let candidates: Vec<Setting> = dvfs_energy_model::service_grid();
        let start = Setting::max_performance();

        let plan = plan_phase_settings(&predictor, &candidates, start, &kernels, 3);
        assert_eq!(plan.settings.len(), kernels.len() * 3);
        assert!(plan.predicted_total_j.is_finite() && plan.predicted_total_j > 0.0);
        let again = plan_phase_settings(&predictor, &candidates, start, &kernels, 3);
        assert_eq!(plan, again, "pure function of its inputs");

        // A constant path at any candidate is feasible, so the plan's
        // total can never exceed the best static schedule.
        for &s in &candidates {
            let mut static_total = predictor.switch_energy_j(start, s);
            for t in 0..plan.settings.len() {
                static_total += predictor.phase_energy_j(&kernels[t % kernels.len()], s);
            }
            assert!(plan.predicted_total_j <= static_total + 1e-9, "beaten by {}", s.label());
        }
    }

    #[test]
    fn empty_plan_requests_yield_empty_plans() {
        let model = toy_model();
        let mut device = Device::new(42);
        let transitions = TransitionModel::calibrate(&mut device);
        let predictor =
            Predictor { model: &model, timing: device.timing_model(), transitions: &transitions };
        let plan = plan_phase_settings(
            &predictor,
            &[Setting::max_performance()],
            Setting::max_performance(),
            &[],
            4,
        );
        assert!(plan.settings.is_empty());
        assert_eq!(plan.predicted_total_j, 0.0);
    }
}
