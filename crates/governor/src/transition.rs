//! The DVFS transition-cost model.
//!
//! Changing an operating point is not free: each clock domain that
//! moves pays a latch latency (the sysfs write, PLL relock and — for
//! the memory domain — DRAM retraining), and the board keeps burning
//! its constant power while nothing executes.  The paper's static
//! autotuner can ignore this (one transition per run); an online
//! per-phase governor cannot, because a policy that switched at every
//! boundary "for free" would look better than it is.
//!
//! Latencies are fixed device characteristics.  The *power* burned
//! during a transition is taken from an idle-power table calibrated
//! once per runtime from the simulated device: the calibration pass
//! latches every operating point (verify-and-retry, so it survives the
//! injected latch failures) and reads back what a power meter shows
//! between kernels.  Transition energy is then the mean of the two
//! endpoints' idle powers times the latency — the clocks ramp from one
//! point to the other, so the trapezoid midpoint is the natural model.

use tk1_sim::dvfs::{core_points, mem_points};
use tk1_sim::{Device, Setting};

/// Latency and energy of one operating-point change.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TransitionCost {
    /// Seconds during which no kernel can execute.
    pub latency_s: f64,
    /// Joules burned while latching (idle power × latency).
    pub energy_j: f64,
}

impl TransitionCost {
    /// The free transition (same operating point).
    pub const ZERO: TransitionCost = TransitionCost { latency_s: 0.0, energy_j: 0.0 };

    /// Accumulates another cost (retried latch attempts add up).
    pub fn accumulate(&mut self, other: TransitionCost) {
        self.latency_s += other.latency_s;
        self.energy_j += other.energy_j;
    }
}

/// Calibrated transition costs between any two [`Setting`]s.
#[derive(Debug, Clone)]
pub struct TransitionModel {
    /// Latency of a core-clock latch, s.
    pub core_latch_s: f64,
    /// Latency of a memory-clock latch, s (longer: DRAM retraining).
    pub mem_latch_s: f64,
    /// Idle power per setting, W, indexed `core_idx * n_mem + mem_idx`.
    idle_w: Vec<f64>,
    n_mem: usize,
}

/// Latch attempts before calibration gives up on a point (the injected
/// stuck probability per attempt is ~4%, so 32 tries fail with
/// probability ~1e-45 — the bound exists to keep the loop provably
/// finite, not because it is ever expected to trip).
const CALIBRATION_LATCH_ATTEMPTS: u32 = 32;

impl TransitionModel {
    /// Core latch latency: a PLL relock plus the driver round trip.
    pub const DEFAULT_CORE_LATCH_S: f64 = 100e-6;
    /// Memory latch latency: EMC frequency switch with DRAM retraining.
    pub const DEFAULT_MEM_LATCH_S: f64 = 300e-6;

    /// Calibrates the idle-power table from `device` by latching every
    /// operating point and reading the between-kernels idle power.
    ///
    /// Survives latch faults by verify-and-retry: a stuck or
    /// neighbor-latched write is re-issued until the read-back matches
    /// (each retry re-rolls its fault draw deterministically).  The
    /// device's operating point is restored before returning, so
    /// calibration is invisible to the run that follows.
    pub fn calibrate(device: &mut Device) -> Self {
        let n_mem = mem_points().len();
        let n_core = core_points().len();
        let restore = device.operating_point();
        let mut idle_w = vec![0.0; n_core * n_mem];
        for s in Setting::all() {
            latch_with_retry(device, s, CALIBRATION_LATCH_ATTEMPTS);
            // Read at whatever point actually latched: if the retry
            // bound ever tripped we record a neighbor's idle power,
            // which is still within a few percent — never garbage.
            idle_w[device.operating_point().core_idx * n_mem + device.operating_point().mem_idx] =
                device.idle_power_w();
        }
        latch_with_retry(device, restore, CALIBRATION_LATCH_ATTEMPTS);
        TransitionModel {
            core_latch_s: Self::DEFAULT_CORE_LATCH_S,
            mem_latch_s: Self::DEFAULT_MEM_LATCH_S,
            idle_w,
            n_mem,
        }
    }

    /// Calibrated idle power at `s`, W.
    pub fn idle_power_w(&self, s: Setting) -> f64 {
        self.idle_w[s.core_idx * self.n_mem + s.mem_idx]
    }

    /// Cost of one latch attempt from `from` to `to`.  Only the domains
    /// whose index changes pay latency; the identity transition is
    /// [`TransitionCost::ZERO`].
    pub fn cost(&self, from: Setting, to: Setting) -> TransitionCost {
        let mut latency_s = 0.0;
        if from.core_idx != to.core_idx {
            latency_s += self.core_latch_s;
        }
        if from.mem_idx != to.mem_idx {
            latency_s += self.mem_latch_s;
        }
        if latency_s == 0.0 {
            return TransitionCost::ZERO;
        }
        let energy_j = 0.5 * (self.idle_power_w(from) + self.idle_power_w(to)) * latency_s;
        TransitionCost { latency_s, energy_j }
    }
}

/// Latches `target` with bounded verify-and-retry; returns the number
/// of attempts issued (1 = latched first try, 0 = already there).
pub fn latch_with_retry(device: &mut Device, target: Setting, max_attempts: u32) -> u32 {
    let mut attempts = 0;
    while device.operating_point() != target && attempts < max_attempts {
        device.set_operating_point(target);
        attempts += 1;
    }
    attempts
}

#[cfg(test)]
mod tests {
    use super::*;
    use tk1_sim::FaultConfig;

    #[test]
    fn identity_transition_is_free_and_domains_add() {
        let mut d = Device::new(11);
        let tm = TransitionModel::calibrate(&mut d);
        let a = Setting::new(3, 2);
        assert_eq!(tm.cost(a, a), TransitionCost::ZERO);
        let core_only = tm.cost(a, Setting::new(9, 2));
        let mem_only = tm.cost(a, Setting::new(3, 5));
        let both = tm.cost(a, Setting::new(9, 5));
        assert!((core_only.latency_s - tm.core_latch_s).abs() < 1e-15);
        assert!((mem_only.latency_s - tm.mem_latch_s).abs() < 1e-15);
        assert!((both.latency_s - (tm.core_latch_s + tm.mem_latch_s)).abs() < 1e-15);
        for c in [core_only, mem_only, both] {
            assert!(c.energy_j > 0.0);
        }
    }

    #[test]
    fn calibration_survives_latch_faults_and_restores_the_point() {
        let cfg = FaultConfig::default_campaign();
        let mut clean = Device::new(23);
        let clean_tm = TransitionModel::calibrate(&mut clean);
        let mut faulty = Device::new(23);
        faulty.set_fault_injector(Some(cfg.injector(0xCAFE)));
        let start = faulty.operating_point();
        let faulty_tm = TransitionModel::calibrate(&mut faulty);
        assert_eq!(faulty.operating_point(), start, "operating point restored");
        // Idle power is a pure function of the setting, so the faulted
        // calibration (which retries until latched) matches the clean one.
        for s in Setting::all() {
            assert_eq!(
                clean_tm.idle_power_w(s).to_bits(),
                faulty_tm.idle_power_w(s).to_bits(),
                "at {}",
                s.label()
            );
        }
    }

    #[test]
    fn higher_settings_idle_hotter() {
        let mut d = Device::new(7);
        let tm = TransitionModel::calibrate(&mut d);
        let lo = tm.idle_power_w(Setting::new(0, 0));
        let hi = tm.idle_power_w(Setting::max_performance());
        assert!(hi > lo, "idle power rises with voltage: {lo} vs {hi}");
    }
}
