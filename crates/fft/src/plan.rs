//! Precomputed FFT plans (bit-reversal permutation + twiddle factors).
//!
//! The KIFMM evaluator performs thousands of same-size transforms (one per
//! box per direction), so the index permutation and the twiddle table are
//! computed once per size and shared.

use crate::{Complex, FftError, Result};

/// A reusable plan for radix-2 transforms of a fixed power-of-two size.
///
/// ```
/// use dvfs_fft::{Complex, FftPlan};
///
/// let plan = FftPlan::new(8).unwrap();
/// let mut data = vec![Complex::ZERO; 8];
/// data[0] = Complex::ONE;                  // unit impulse ...
/// plan.forward(&mut data).unwrap();
/// assert!((data[5].re - 1.0).abs() < 1e-12); // ... transforms flat
/// plan.inverse(&mut data).unwrap();
/// assert!((data[0].re - 1.0).abs() < 1e-12); // round trip
/// ```
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// Bit-reversal permutation of `0..n`.
    rev: Vec<u32>,
    /// Twiddles for the forward transform, grouped per stage: for stage
    /// with half-block size `len/2`, entries `w^j = e^{-2πi j/len}`.
    twiddles: Vec<Complex>,
    /// Conjugated twiddles for the inverse transform, same grouping —
    /// precomputed so the butterfly inner loop is branch-free.
    inv_twiddles: Vec<Complex>,
    /// Start offset of each stage's twiddle group in `twiddles`.
    stage_offsets: Vec<usize>,
}

/// One radix-2 butterfly through raw indices:
/// `(data[ia], data[ib]) ← (a + w·b, a − w·b)`.
///
/// # Safety
/// `ia` and `ib` must be in bounds for the allocation behind `ptr` and
/// distinct from each other.
#[inline(always)]
unsafe fn bfly(ptr: *mut Complex, ia: usize, ib: usize, w: Complex) {
    let a = *ptr.add(ia);
    let b = *ptr.add(ib) * w;
    *ptr.add(ia) = a + b;
    *ptr.add(ib) = a - b;
}

impl FftPlan {
    /// Builds a plan for length `n` (must be a power of two; `n >= 1`).
    pub fn new(n: usize) -> Result<Self> {
        if n == 0 || !n.is_power_of_two() {
            return Err(FftError::NotPowerOfTwo(n));
        }
        let log2n = n.trailing_zeros();
        let mut rev = vec![0u32; n];
        for i in 0..n {
            rev[i] = (rev[i >> 1] >> 1) | (((i & 1) as u32) << (log2n.saturating_sub(1)));
        }
        let mut twiddles = Vec::new();
        let mut stage_offsets = Vec::new();
        let mut len = 2;
        while len <= n {
            stage_offsets.push(twiddles.len());
            let half = len / 2;
            let step = -2.0 * std::f64::consts::PI / (len as f64);
            for j in 0..half {
                twiddles.push(Complex::cis(step * j as f64));
            }
            len <<= 1;
        }
        let inv_twiddles = twiddles.iter().map(|w| w.conj()).collect();
        Ok(FftPlan { n, rev, twiddles, inv_twiddles, stage_offsets })
    }

    /// Transform length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the degenerate length-1 plan.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n <= 1
    }

    /// In-place forward transform (DFT with `e^{-2πi jk/n}` convention).
    pub fn forward(&self, data: &mut [Complex]) -> Result<()> {
        self.check_len(data.len())?;
        self.permute(data);
        self.butterflies(data, false);
        Ok(())
    }

    /// In-place inverse transform, including the `1/n` normalization.
    pub fn inverse(&self, data: &mut [Complex]) -> Result<()> {
        self.check_len(data.len())?;
        self.permute(data);
        self.butterflies(data, true);
        let scale = 1.0 / self.n as f64;
        for z in data.iter_mut() {
            *z = z.scale(scale);
        }
        Ok(())
    }

    fn check_len(&self, len: usize) -> Result<()> {
        if len != self.n {
            return Err(FftError::LengthMismatch { expected: self.n, found: len });
        }
        Ok(())
    }

    #[inline]
    fn permute(&self, data: &mut [Complex]) {
        for i in 0..self.n {
            let j = self.rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
    }

    fn butterflies(&self, data: &mut [Complex], inverse: bool) {
        let twiddles = if inverse { &self.inv_twiddles } else { &self.twiddles };
        let mut len = 2;
        let mut stage = 0;
        while len <= self.n {
            let half = len / 2;
            let tw = &twiddles[self.stage_offsets[stage]..self.stage_offsets[stage] + half];
            for start in (0..self.n).step_by(len) {
                for j in 0..half {
                    let a = data[start + j];
                    let b = data[start + j + half] * tw[j];
                    data[start + j] = a + b;
                    data[start + j + half] = a - b;
                }
            }
            len <<= 1;
            stage += 1;
        }
    }

    /// Transforms one line of a strided batch without length re-checks:
    /// the line's elements are `data[base + k*stride]` for `k in 0..n`.
    /// The permutation and butterflies index through the stride, so no
    /// gather/scatter copies are needed.  Used by the 3-D cube
    /// transforms, which call this `3n²` times per cube.
    ///
    /// Performs the same operations in the same order as
    /// [`FftPlan::forward`]/[`FftPlan::inverse`] (the size-8 fast path is
    /// a pure unrolling using the plan's own twiddle values, and the
    /// generic stages unroll two independent butterflies — four f64
    /// lanes — per iteration with a scalar tail), so results are bitwise
    /// identical to the buffered form.
    #[inline]
    pub(crate) fn line_strided(
        &self,
        data: &mut [Complex],
        base: usize,
        stride: usize,
        inverse: bool,
    ) {
        let n = self.n;
        assert!(base + (n - 1) * stride < data.len(), "line exceeds buffer");
        if n == 8 {
            self.line8_strided(data, base, stride, inverse);
            return;
        }
        // Bit-reversal permutation through the stride.
        for i in 0..n {
            let j = self.rev[i] as usize;
            if i < j {
                data.swap(base + i * stride, base + j * stride);
            }
        }
        let twiddles = if inverse { &self.inv_twiddles } else { &self.twiddles };
        // SAFETY for every `bfly` below: both indices are
        // `base + k*stride` with `k < n`, within bounds by the assert
        // above; the two butterflies of an unrolled pair touch four
        // distinct elements, so the pair is order-independent and the
        // result stays bitwise identical to the rolled loop.
        let ptr = data.as_mut_ptr();
        let mut len = 2;
        let mut stage = 0;
        while len <= n {
            let half = len / 2;
            let tw = &twiddles[self.stage_offsets[stage]..self.stage_offsets[stage] + half];
            if half == 1 {
                // First stage: each length-2 block is one unit-twiddle
                // butterfly.  Unroll across two blocks — four f64 lanes
                // of independent add/sub — with a scalar tail block.
                let w = tw[0];
                let body = n - n % 4;
                let mut start = 0;
                while start < body {
                    unsafe {
                        bfly(ptr, base + start * stride, base + (start + 1) * stride, w);
                        bfly(ptr, base + (start + 2) * stride, base + (start + 3) * stride, w);
                    }
                    start += 4;
                }
                while start < n {
                    unsafe { bfly(ptr, base + start * stride, base + (start + 1) * stride, w) };
                    start += 2;
                }
            } else {
                // Later stages: unroll the twiddle loop two butterflies
                // (four complex lanes) at a time, scalar tail after.
                let body = half - half % 2;
                for start in (0..n).step_by(len) {
                    let mut j = 0;
                    while j < body {
                        let ia = base + (start + j) * stride;
                        let ib = base + (start + j + half) * stride;
                        unsafe {
                            bfly(ptr, ia, ib, tw[j]);
                            bfly(ptr, ia + stride, ib + stride, tw[j + 1]);
                        }
                        j += 2;
                    }
                    while j < half {
                        let ia = base + (start + j) * stride;
                        unsafe { bfly(ptr, ia, ia + half * stride, tw[j]) };
                        j += 1;
                    }
                }
            }
            len <<= 1;
            stage += 1;
        }
        if inverse {
            let scale = 1.0 / n as f64;
            let body = n - n % 2;
            let mut k = 0;
            while k < body {
                let i = base + k * stride;
                data[i] = data[i].scale(scale);
                data[i + stride] = data[i + stride].scale(scale);
                k += 2;
            }
            while k < n {
                let i = base + k * stride;
                data[i] = data[i].scale(scale);
                k += 1;
            }
        }
    }

    /// Fully unrolled size-8 line transform (`m = 2p` with `p = 4`, the
    /// default surface order, makes this the hot size).  Loads the line
    /// into registers in bit-reversed order, runs the 12 butterflies with
    /// the plan's stored twiddles, and stores back — identical arithmetic
    /// to the generic path, none of its loop and index overhead.
    #[inline]
    fn line8_strided(&self, data: &mut [Complex], base: usize, stride: usize, inverse: bool) {
        debug_assert_eq!(self.n, 8);
        let twiddles = if inverse { &self.inv_twiddles } else { &self.twiddles };
        // stage_offsets for n = 8 are [0, 1, 3]: one len-2 twiddle, two
        // len-4 twiddles, four len-8 twiddles.
        let w2 = twiddles[0];
        let (w4a, w4b) = (twiddles[1], twiddles[2]);
        let (w8a, w8b, w8c, w8d) = (twiddles[3], twiddles[4], twiddles[5], twiddles[6]);
        // SAFETY: base + 7*stride < data.len(), checked by the caller's
        // assert in `line_strided`.
        unsafe {
            let at = |k: usize| -> Complex { *data.get_unchecked(base + k * stride) };
            // Bit-reversed load: rev(8) = [0, 4, 2, 6, 1, 5, 3, 7].
            let (mut t0, mut t1, mut t2, mut t3) = (at(0), at(4), at(2), at(6));
            let (mut t4, mut t5, mut t6, mut t7) = (at(1), at(5), at(3), at(7));
            // Stage 1 (len 2).
            let b = t1 * w2;
            (t0, t1) = (t0 + b, t0 - b);
            let b = t3 * w2;
            (t2, t3) = (t2 + b, t2 - b);
            let b = t5 * w2;
            (t4, t5) = (t4 + b, t4 - b);
            let b = t7 * w2;
            (t6, t7) = (t6 + b, t6 - b);
            // Stage 2 (len 4).
            let b = t2 * w4a;
            (t0, t2) = (t0 + b, t0 - b);
            let b = t3 * w4b;
            (t1, t3) = (t1 + b, t1 - b);
            let b = t6 * w4a;
            (t4, t6) = (t4 + b, t4 - b);
            let b = t7 * w4b;
            (t5, t7) = (t5 + b, t5 - b);
            // Stage 3 (len 8).
            let b = t4 * w8a;
            (t0, t4) = (t0 + b, t0 - b);
            let b = t5 * w8b;
            (t1, t5) = (t1 + b, t1 - b);
            let b = t6 * w8c;
            (t2, t6) = (t2 + b, t2 - b);
            let b = t7 * w8d;
            (t3, t7) = (t3 + b, t3 - b);
            if inverse {
                let s = 1.0 / 8.0;
                (t0, t1, t2, t3) = (t0.scale(s), t1.scale(s), t2.scale(s), t3.scale(s));
                (t4, t5, t6, t7) = (t4.scale(s), t5.scale(s), t6.scale(s), t7.scale(s));
            }
            let out = data.as_mut_ptr();
            *out.add(base) = t0;
            *out.add(base + stride) = t1;
            *out.add(base + 2 * stride) = t2;
            *out.add(base + 3 * stride) = t3;
            *out.add(base + 4 * stride) = t4;
            *out.add(base + 5 * stride) = t5;
            *out.add(base + 6 * stride) = t6;
            *out.add(base + 7 * stride) = t7;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_non_power_of_two() {
        assert_eq!(FftPlan::new(12).unwrap_err(), FftError::NotPowerOfTwo(12));
        assert_eq!(FftPlan::new(0).unwrap_err(), FftError::NotPowerOfTwo(0));
    }

    #[test]
    fn length_one_is_identity() {
        let plan = FftPlan::new(1).unwrap();
        let mut d = [Complex::new(3.0, 4.0)];
        plan.forward(&mut d).unwrap();
        assert_eq!(d[0], Complex::new(3.0, 4.0));
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let plan = FftPlan::new(8).unwrap();
        let mut d = vec![Complex::ZERO; 8];
        d[0] = Complex::ONE;
        plan.forward(&mut d).unwrap();
        for z in &d {
            assert!((z.re - 1.0).abs() < 1e-14 && z.im.abs() < 1e-14);
        }
    }

    #[test]
    fn wrong_length_rejected() {
        let plan = FftPlan::new(8).unwrap();
        let mut d = vec![Complex::ZERO; 4];
        assert!(plan.forward(&mut d).is_err());
        assert!(plan.inverse(&mut d).is_err());
    }

    #[test]
    fn strided_line_matches_buffered_transform_bitwise() {
        // The 3-D cube driver relies on line_strided (including the
        // unrolled size-8 fast path) producing exactly the buffered
        // transform's bits.
        for n in [2usize, 4, 8, 16] {
            let plan = FftPlan::new(n).unwrap();
            for inverse in [false, true] {
                // Embed the line with stride 3 inside a larger buffer.
                let stride = 3;
                let mut strided = vec![Complex::new(9.0, -9.0); n * stride + 1];
                let mut packed = Vec::with_capacity(n);
                for k in 0..n {
                    let v = Complex::new((k as f64 * 0.37).sin(), (k as f64 * 1.3).cos());
                    strided[1 + k * stride] = v;
                    packed.push(v);
                }
                plan.line_strided(&mut strided, 1, stride, inverse);
                if inverse {
                    plan.inverse(&mut packed).unwrap();
                } else {
                    plan.forward(&mut packed).unwrap();
                }
                for k in 0..n {
                    let got = strided[1 + k * stride];
                    assert_eq!(got.re.to_bits(), packed[k].re.to_bits());
                    assert_eq!(got.im.to_bits(), packed[k].im.to_bits());
                }
            }
        }
    }

    #[test]
    fn forward_inverse_round_trip() {
        let plan = FftPlan::new(16).unwrap();
        let orig: Vec<Complex> =
            (0..16).map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.7).cos())).collect();
        let mut d = orig.clone();
        plan.forward(&mut d).unwrap();
        plan.inverse(&mut d).unwrap();
        for (a, b) in d.iter().zip(&orig) {
            assert!((a.re - b.re).abs() < 1e-12 && (a.im - b.im).abs() < 1e-12);
        }
    }
}
