//! Precomputed FFT plans (bit-reversal permutation + twiddle factors).
//!
//! The KIFMM evaluator performs thousands of same-size transforms (one per
//! box per direction), so the index permutation and the twiddle table are
//! computed once per size and shared.

use crate::{Complex, FftError, Result};

/// A reusable plan for radix-2 transforms of a fixed power-of-two size.
///
/// ```
/// use dvfs_fft::{Complex, FftPlan};
///
/// let plan = FftPlan::new(8).unwrap();
/// let mut data = vec![Complex::ZERO; 8];
/// data[0] = Complex::ONE;                  // unit impulse ...
/// plan.forward(&mut data).unwrap();
/// assert!((data[5].re - 1.0).abs() < 1e-12); // ... transforms flat
/// plan.inverse(&mut data).unwrap();
/// assert!((data[0].re - 1.0).abs() < 1e-12); // round trip
/// ```
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// Bit-reversal permutation of `0..n`.
    rev: Vec<u32>,
    /// Twiddles for the forward transform, grouped per stage: for stage
    /// with half-block size `len/2`, entries `w^j = e^{-2πi j/len}`.
    twiddles: Vec<Complex>,
    /// Start offset of each stage's twiddle group in `twiddles`.
    stage_offsets: Vec<usize>,
}

impl FftPlan {
    /// Builds a plan for length `n` (must be a power of two; `n >= 1`).
    pub fn new(n: usize) -> Result<Self> {
        if n == 0 || !n.is_power_of_two() {
            return Err(FftError::NotPowerOfTwo(n));
        }
        let log2n = n.trailing_zeros();
        let mut rev = vec![0u32; n];
        for i in 0..n {
            rev[i] = (rev[i >> 1] >> 1) | (((i & 1) as u32) << (log2n.saturating_sub(1)));
        }
        let mut twiddles = Vec::new();
        let mut stage_offsets = Vec::new();
        let mut len = 2;
        while len <= n {
            stage_offsets.push(twiddles.len());
            let half = len / 2;
            let step = -2.0 * std::f64::consts::PI / (len as f64);
            for j in 0..half {
                twiddles.push(Complex::cis(step * j as f64));
            }
            len <<= 1;
        }
        Ok(FftPlan { n, rev, twiddles, stage_offsets })
    }

    /// Transform length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the degenerate length-1 plan.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n <= 1
    }

    /// In-place forward transform (DFT with `e^{-2πi jk/n}` convention).
    pub fn forward(&self, data: &mut [Complex]) -> Result<()> {
        self.check_len(data.len())?;
        self.permute(data);
        self.butterflies(data, false);
        Ok(())
    }

    /// In-place inverse transform, including the `1/n` normalization.
    pub fn inverse(&self, data: &mut [Complex]) -> Result<()> {
        self.check_len(data.len())?;
        self.permute(data);
        self.butterflies(data, true);
        let scale = 1.0 / self.n as f64;
        for z in data.iter_mut() {
            *z = z.scale(scale);
        }
        Ok(())
    }

    fn check_len(&self, len: usize) -> Result<()> {
        if len != self.n {
            return Err(FftError::LengthMismatch { expected: self.n, found: len });
        }
        Ok(())
    }

    #[inline]
    fn permute(&self, data: &mut [Complex]) {
        for i in 0..self.n {
            let j = self.rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
    }

    fn butterflies(&self, data: &mut [Complex], inverse: bool) {
        let mut len = 2;
        let mut stage = 0;
        while len <= self.n {
            let half = len / 2;
            let tw = &self.twiddles[self.stage_offsets[stage]..self.stage_offsets[stage] + half];
            for start in (0..self.n).step_by(len) {
                for j in 0..half {
                    let w = if inverse { tw[j].conj() } else { tw[j] };
                    let a = data[start + j];
                    let b = data[start + j + half] * w;
                    data[start + j] = a + b;
                    data[start + j + half] = a - b;
                }
            }
            len <<= 1;
            stage += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_non_power_of_two() {
        assert_eq!(FftPlan::new(12).unwrap_err(), FftError::NotPowerOfTwo(12));
        assert_eq!(FftPlan::new(0).unwrap_err(), FftError::NotPowerOfTwo(0));
    }

    #[test]
    fn length_one_is_identity() {
        let plan = FftPlan::new(1).unwrap();
        let mut d = [Complex::new(3.0, 4.0)];
        plan.forward(&mut d).unwrap();
        assert_eq!(d[0], Complex::new(3.0, 4.0));
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let plan = FftPlan::new(8).unwrap();
        let mut d = vec![Complex::ZERO; 8];
        d[0] = Complex::ONE;
        plan.forward(&mut d).unwrap();
        for z in &d {
            assert!((z.re - 1.0).abs() < 1e-14 && z.im.abs() < 1e-14);
        }
    }

    #[test]
    fn wrong_length_rejected() {
        let plan = FftPlan::new(8).unwrap();
        let mut d = vec![Complex::ZERO; 4];
        assert!(plan.forward(&mut d).is_err());
        assert!(plan.inverse(&mut d).is_err());
    }

    #[test]
    fn forward_inverse_round_trip() {
        let plan = FftPlan::new(16).unwrap();
        let orig: Vec<Complex> =
            (0..16).map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.7).cos())).collect();
        let mut d = orig.clone();
        plan.forward(&mut d).unwrap();
        plan.inverse(&mut d).unwrap();
        for (a, b) in d.iter().zip(&orig) {
            assert!((a.re - b.re).abs() < 1e-12 && (a.im - b.im).abs() < 1e-12);
        }
    }
}
