//! One-shot and multi-dimensional transforms built on [`FftPlan`].

use crate::{Complex, FftPlan, Result};

/// Forward DFT of `data` (allocates a plan; use [`FftPlan`] directly when
/// transforming many same-size buffers).
pub fn fft(data: &mut [Complex]) -> Result<()> {
    FftPlan::new(data.len())?.forward(data)
}

/// Inverse DFT of `data`, normalized by `1/n`.
pub fn ifft(data: &mut [Complex]) -> Result<()> {
    FftPlan::new(data.len())?.inverse(data)
}

/// Forward 3-D DFT of an `n x n x n` cube stored in row-major
/// (`z`-fastest) order; returns the transformed copy.
pub fn fft3(data: &[Complex], n: usize) -> Result<Vec<Complex>> {
    let mut out = data.to_vec();
    let plan = FftPlan::new(n)?;
    fft3_with_plan(&mut out, n, &plan, false)?;
    Ok(out)
}

/// In-place forward 3-D DFT of an `n³`-element cube.
pub fn fft3_inplace(data: &mut [Complex], n: usize, plan: &FftPlan) -> Result<()> {
    fft3_with_plan(data, n, plan, false)
}

/// In-place inverse 3-D DFT of an `n³`-element cube (normalized).
pub fn ifft3_inplace(data: &mut [Complex], n: usize, plan: &FftPlan) -> Result<()> {
    fft3_with_plan(data, n, plan, true)
}

/// Applies the 1-D transform along each axis of the cube.
///
/// Indexing: element `(x, y, z)` lives at `x*n*n + y*n + z`.
fn fft3_with_plan(data: &mut [Complex], n: usize, plan: &FftPlan, inverse: bool) -> Result<()> {
    if data.len() != n * n * n {
        return Err(crate::FftError::LengthMismatch { expected: n * n * n, found: data.len() });
    }
    if plan.len() != n {
        return Err(crate::FftError::LengthMismatch { expected: n, found: plan.len() });
    }
    // Each pass transforms n² lines in place through their stride — no
    // per-line gather/scatter buffers, no per-line length checks.
    // Along z (contiguous).
    for x in 0..n {
        for y in 0..n {
            plan.line_strided(data, x * n * n + y * n, 1, inverse);
        }
    }
    // Along y.
    for x in 0..n {
        for z in 0..n {
            plan.line_strided(data, x * n * n + z, n, inverse);
        }
    }
    // Along x.
    for y in 0..n {
        for z in 0..n {
            plan.line_strided(data, y * n + z, n * n, inverse);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: Complex, b: Complex, tol: f64) {
        assert!((a.re - b.re).abs() < tol && (a.im - b.im).abs() < tol, "{a:?} != {b:?}");
    }

    #[test]
    fn matches_naive_dft() {
        let n = 16;
        let input: Vec<Complex> =
            (0..n).map(|i| Complex::new((i as f64 * 0.3).sin(), (i as f64 * 1.1).cos())).collect();
        let mut fast = input.clone();
        fft(&mut fast).unwrap();
        for k in 0..n {
            let mut acc = Complex::ZERO;
            for (j, &x) in input.iter().enumerate() {
                let theta = -2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64;
                acc += x * Complex::cis(theta);
            }
            assert_close(fast[k], acc, 1e-11);
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 64;
        let input: Vec<Complex> =
            (0..n).map(|i| Complex::new((i as f64).cos(), (i as f64 * 0.2).sin())).collect();
        let time_energy: f64 = input.iter().map(|z| z.norm_sqr()).sum();
        let mut freq = input.clone();
        fft(&mut freq).unwrap();
        let freq_energy: f64 = freq.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy);
    }

    #[test]
    fn linearity() {
        let n = 32;
        let a: Vec<Complex> = (0..n).map(|i| Complex::real(i as f64)).collect();
        let b: Vec<Complex> = (0..n).map(|i| Complex::new(0.0, (i * i % 7) as f64)).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fab: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x + y.scale(2.0)).collect();
        fft(&mut fa).unwrap();
        fft(&mut fb).unwrap();
        fft(&mut fab).unwrap();
        for k in 0..n {
            assert_close(fab[k], fa[k] + fb[k].scale(2.0), 1e-10);
        }
    }

    #[test]
    fn fft3_impulse_is_flat() {
        let n = 4;
        let mut cube = vec![Complex::ZERO; n * n * n];
        cube[0] = Complex::ONE;
        let out = fft3(&cube, n).unwrap();
        for z in &out {
            assert_close(*z, Complex::ONE, 1e-13);
        }
    }

    #[test]
    fn fft3_round_trip() {
        let n = 8;
        let cube: Vec<Complex> = (0..n * n * n)
            .map(|i| Complex::new((i as f64 * 0.01).sin(), (i as f64 * 0.013).cos()))
            .collect();
        let plan = FftPlan::new(n).unwrap();
        let mut work = cube.clone();
        fft3_inplace(&mut work, n, &plan).unwrap();
        ifft3_inplace(&mut work, n, &plan).unwrap();
        for (a, b) in work.iter().zip(&cube) {
            assert_close(*a, *b, 1e-11);
        }
    }

    #[test]
    fn fft3_separable_product() {
        // A separable input f(x)g(y)h(z) transforms to F(kx)G(ky)H(kz).
        let n = 4;
        let f: Vec<Complex> = (0..n).map(|i| Complex::real(1.0 + i as f64)).collect();
        let g: Vec<Complex> = (0..n).map(|i| Complex::real((i as f64 * 0.5).cos())).collect();
        let h: Vec<Complex> = (0..n).map(|i| Complex::real((i % 2) as f64)).collect();
        let mut cube = vec![Complex::ZERO; n * n * n];
        for x in 0..n {
            for y in 0..n {
                for z in 0..n {
                    cube[x * n * n + y * n + z] = f[x] * g[y] * h[z];
                }
            }
        }
        let out = fft3(&cube, n).unwrap();
        let (mut tf, mut tg, mut th) = (f, g, h);
        fft(&mut tf).unwrap();
        fft(&mut tg).unwrap();
        fft(&mut th).unwrap();
        for x in 0..n {
            for y in 0..n {
                for z in 0..n {
                    assert_close(out[x * n * n + y * n + z], tf[x] * tg[y] * th[z], 1e-11);
                }
            }
        }
    }

    #[test]
    fn fft3_wrong_cube_size_rejected() {
        let plan = FftPlan::new(4).unwrap();
        let mut data = vec![Complex::ZERO; 10];
        assert!(fft3_inplace(&mut data, 4, &plan).is_err());
    }
}
