//! Minimal `f64` complex arithmetic.

use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub};

/// A complex number `re + i·im`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Constructs `re + i·im`.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// A purely real value.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// `e^{iθ} = cos θ + i sin θ`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Complex { re: c, im: s }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex { re: self.re, im: -self.im }
    }

    /// Squared magnitude `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex { re: self.re * k, im: self.im * k }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex { re: self.re * rhs.re - self.im * rhs.im, im: self.re * rhs.im + self.im * rhs.re }
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex { re: -self.re, im: -self.im }
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex::I * Complex::I, Complex::real(-1.0));
    }

    #[test]
    fn cis_on_unit_circle() {
        let z = Complex::cis(std::f64::consts::FRAC_PI_2);
        assert!(z.re.abs() < 1e-15 && (z.im - 1.0).abs() < 1e-15);
        assert!((Complex::cis(1.234).abs() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn conj_mul_gives_norm() {
        let z = Complex::new(3.0, -4.0);
        let p = z * z.conj();
        assert!((p.re - 25.0).abs() < 1e-12 && p.im.abs() < 1e-12);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
    }

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-0.5, 3.0);
        assert_eq!(a + b - b, a);
        assert_eq!((-a) + a, Complex::ZERO);
        assert_eq!(a * Complex::ONE, a);
        assert_eq!(a.scale(2.0), a + a);
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        c = a;
        c *= b;
        assert_eq!(c, a * b);
    }

    #[test]
    fn from_real() {
        let z: Complex = 2.5f64.into();
        assert_eq!(z, Complex::new(2.5, 0.0));
    }
}
