//! Circular convolution via the convolution theorem.
//!
//! The KIFMM M2L operator is, for equivalent densities laid out on a
//! regular grid, a discrete convolution between the source density grid
//! and a translation-invariant kernel tableau.  Evaluating it as
//! `IFFT(FFT(source) ⊙ K̂)` is what gives the V-list phase its
//! low-arithmetic-intensity, bandwidth-bound character that the paper's
//! energy analysis highlights.

use crate::{fft3_inplace, ifft3_inplace, Complex, FftPlan, Result};

/// 1-D circular convolution `(a ⊛ b)[k] = Σ_j a[j] b[(k - j) mod n]`.
pub fn circular_convolve(a: &[Complex], b: &[Complex]) -> Result<Vec<Complex>> {
    if a.len() != b.len() {
        return Err(crate::FftError::LengthMismatch { expected: a.len(), found: b.len() });
    }
    let n = a.len();
    let plan = FftPlan::new(n)?;
    let mut fa = a.to_vec();
    let mut fb = b.to_vec();
    plan.forward(&mut fa)?;
    plan.forward(&mut fb)?;
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x *= *y;
    }
    plan.inverse(&mut fa)?;
    Ok(fa)
}

/// Precomputed 3-D spectrum of a convolution kernel on an `n³` cube.
///
/// The KIFMM precomputes one of these per unique V-list translation vector;
/// applying it to a density grid then costs one forward FFT, `n³` complex
/// multiplies, and one inverse FFT.
#[derive(Debug, Clone)]
pub struct Spectrum3 {
    n: usize,
    freq: Vec<Complex>,
}

impl Spectrum3 {
    /// Transforms `kernel` (an `n³` cube) into its spectrum.
    pub fn new(kernel: &[Complex], n: usize, plan: &FftPlan) -> Result<Self> {
        let mut freq = kernel.to_vec();
        fft3_inplace(&mut freq, n, plan)?;
        Ok(Spectrum3 { n, freq })
    }

    /// Grid edge length `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Raw spectrum values.
    pub fn as_slice(&self) -> &[Complex] {
        &self.freq
    }

    /// Pointwise-multiplies `freq_data` (already in the frequency domain)
    /// by this spectrum, in place.
    pub fn apply_to_spectrum(&self, freq_data: &mut [Complex]) -> Result<()> {
        if freq_data.len() != self.freq.len() {
            return Err(crate::FftError::LengthMismatch {
                expected: self.freq.len(),
                found: freq_data.len(),
            });
        }
        for (x, k) in freq_data.iter_mut().zip(&self.freq) {
            *x *= *k;
        }
        Ok(())
    }

    /// Accumulate `spectrum ⊙ freq_src` into `freq_acc` (all frequency
    /// domain).  Used when a target box gathers from many source boxes
    /// before a single inverse transform.
    pub fn accumulate(&self, freq_src: &[Complex], freq_acc: &mut [Complex]) -> Result<()> {
        if freq_src.len() != self.freq.len() || freq_acc.len() != self.freq.len() {
            return Err(crate::FftError::LengthMismatch {
                expected: self.freq.len(),
                found: freq_src.len().min(freq_acc.len()),
            });
        }
        for i in 0..self.freq.len() {
            freq_acc[i] += freq_src[i] * self.freq[i];
        }
        Ok(())
    }
}

/// Full 3-D circular convolution of two `n³` cubes (one-shot convenience;
/// the evaluator uses [`Spectrum3`] to amortize kernel transforms).
pub fn circular_convolve_3d(a: &[Complex], b: &[Complex], n: usize) -> Result<Vec<Complex>> {
    let plan = FftPlan::new(n)?;
    let mut fa = a.to_vec();
    fft3_inplace(&mut fa, n, &plan)?;
    let spec = Spectrum3::new(b, n, &plan)?;
    spec.apply_to_spectrum(&mut fa)?;
    ifft3_inplace(&mut fa, n, &plan)?;
    Ok(fa)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_circular(a: &[Complex], b: &[Complex]) -> Vec<Complex> {
        let n = a.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::ZERO;
                for j in 0..n {
                    acc += a[j] * b[(n + k - j) % n];
                }
                acc
            })
            .collect()
    }

    #[test]
    fn matches_naive_1d() {
        let a: Vec<Complex> = (0..8).map(|i| Complex::new(i as f64, -(i as f64) * 0.5)).collect();
        let b: Vec<Complex> = (0..8).map(|i| Complex::real(((i * 3) % 5) as f64)).collect();
        let fast = circular_convolve(&a, &b).unwrap();
        let slow = naive_circular(&a, &b);
        for (f, s) in fast.iter().zip(&slow) {
            assert!((f.re - s.re).abs() < 1e-10 && (f.im - s.im).abs() < 1e-10);
        }
    }

    #[test]
    fn delta_kernel_is_identity() {
        let a: Vec<Complex> = (0..16).map(|i| Complex::real((i as f64).sin())).collect();
        let mut delta = vec![Complex::ZERO; 16];
        delta[0] = Complex::ONE;
        let out = circular_convolve(&a, &delta).unwrap();
        for (o, x) in out.iter().zip(&a) {
            assert!((o.re - x.re).abs() < 1e-12);
        }
    }

    #[test]
    fn shifted_delta_rotates() {
        let a: Vec<Complex> = (0..8).map(|i| Complex::real(i as f64)).collect();
        let mut delta = vec![Complex::ZERO; 8];
        delta[3] = Complex::ONE;
        let out = circular_convolve(&a, &delta).unwrap();
        for k in 0..8 {
            assert!((out[k].re - a[(8 + k - 3) % 8].re).abs() < 1e-12);
        }
    }

    #[test]
    fn length_mismatch_rejected() {
        let a = vec![Complex::ZERO; 8];
        let b = vec![Complex::ZERO; 4];
        assert!(circular_convolve(&a, &b).is_err());
    }

    #[test]
    fn convolve_3d_delta_identity() {
        let n = 4;
        let a: Vec<Complex> = (0..n * n * n).map(|i| Complex::real(i as f64)).collect();
        let mut delta = vec![Complex::ZERO; n * n * n];
        delta[0] = Complex::ONE;
        let out = circular_convolve_3d(&a, &delta, n).unwrap();
        for (o, x) in out.iter().zip(&a) {
            assert!((o.re - x.re).abs() < 1e-9);
        }
    }

    #[test]
    fn convolve_3d_matches_naive_on_small_cube() {
        let n = 4;
        let len = n * n * n;
        let a: Vec<Complex> = (0..len).map(|i| Complex::real(((i * 7) % 11) as f64)).collect();
        let b: Vec<Complex> = (0..len).map(|i| Complex::real(((i * 3) % 5) as f64)).collect();
        let fast = circular_convolve_3d(&a, &b, n).unwrap();
        // Naive triple circular convolution.
        let idx = |x: usize, y: usize, z: usize| x * n * n + y * n + z;
        for kx in 0..n {
            for ky in 0..n {
                for kz in 0..n {
                    let mut acc = Complex::ZERO;
                    for jx in 0..n {
                        for jy in 0..n {
                            for jz in 0..n {
                                let bx = (n + kx - jx) % n;
                                let by = (n + ky - jy) % n;
                                let bz = (n + kz - jz) % n;
                                acc += a[idx(jx, jy, jz)] * b[idx(bx, by, bz)];
                            }
                        }
                    }
                    let f = fast[idx(kx, ky, kz)];
                    assert!((f.re - acc.re).abs() < 1e-8, "mismatch at {kx},{ky},{kz}");
                }
            }
        }
    }

    #[test]
    fn spectrum_accumulate_sums_contributions() {
        let n = 4;
        let len = n * n * n;
        let plan = FftPlan::new(n).unwrap();
        let kernel: Vec<Complex> = (0..len).map(|i| Complex::real((i % 3) as f64)).collect();
        let spec = Spectrum3::new(&kernel, n, &plan).unwrap();
        let src: Vec<Complex> = (0..len).map(|i| Complex::real(i as f64)).collect();
        let mut freq_src = src.clone();
        fft3_inplace(&mut freq_src, n, &plan).unwrap();
        let mut acc = vec![Complex::ZERO; len];
        spec.accumulate(&freq_src, &mut acc).unwrap();
        spec.accumulate(&freq_src, &mut acc).unwrap();
        ifft3_inplace(&mut acc, n, &plan).unwrap();
        let direct = circular_convolve_3d(&src, &kernel, n).unwrap();
        for (a, d) in acc.iter().zip(&direct) {
            assert!((a.re - 2.0 * d.re).abs() < 1e-8);
        }
    }
}
