//! Fast Fourier transforms for the KIFMM's V-list translations.
//!
//! The paper's FMM accelerates far-field (V-list) interactions with FFTs;
//! its V-list phase is memory-bandwidth-bound precisely because FFT-based
//! convolution trades arithmetic for data movement.  This crate supplies
//! the FFT machinery from scratch:
//!
//! * [`Complex`] — a minimal `f64` complex number.
//! * [`fft`] / [`ifft`] — iterative radix-2 decimation-in-time transforms
//!   with precomputable twiddle plans ([`FftPlan`]).
//! * [`fft3`] — 3-D transforms by applying the 1-D transform along each
//!   axis of a packed cube.
//! * [`convolution`] — circular convolution via the convolution theorem,
//!   the exact primitive the FFT M2L operator needs.
//!
//! All sizes are powers of two, which is all the KIFMM grid (2n per axis,
//! n a power of two) requires.

pub mod complex;
pub mod convolution;
pub mod plan;
pub mod transform;

pub use complex::Complex;
pub use convolution::{circular_convolve, circular_convolve_3d, Spectrum3};
pub use plan::FftPlan;
pub use transform::{fft, fft3, fft3_inplace, ifft, ifft3_inplace};

/// Errors from the FFT routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FftError {
    /// The length is not a power of two.
    NotPowerOfTwo(usize),
    /// Operand lengths differ.
    LengthMismatch { expected: usize, found: usize },
}

impl std::fmt::Display for FftError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FftError::NotPowerOfTwo(n) => write!(f, "length {n} is not a power of two"),
            FftError::LengthMismatch { expected, found } => {
                write!(f, "length mismatch: expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for FftError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, FftError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages() {
        assert!(FftError::NotPowerOfTwo(12).to_string().contains("12"));
        assert!(FftError::LengthMismatch { expected: 8, found: 4 }.to_string().contains("8"));
    }
}
