//! Property-based tests for the FFT stack.

use compat::prop::prelude::*;
use dvfs_fft::{circular_convolve, fft, ifft, Complex, FftPlan};

fn signal(len: usize) -> impl Strategy<Value = Vec<Complex>> {
    compat::prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), len)
        .prop_map(|v| v.into_iter().map(|(re, im)| Complex::new(re, im)).collect())
}

fn pow2_len() -> impl Strategy<Value = usize> {
    (0u32..8).prop_map(|k| 1usize << k)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn round_trip_is_identity((len, seedless) in pow2_len().prop_flat_map(|l| (Just(l), signal(l)))) {
        let mut data = seedless.clone();
        fft(&mut data).unwrap();
        ifft(&mut data).unwrap();
        let _ = len;
        for (a, b) in data.iter().zip(&seedless) {
            prop_assert!((a.re - b.re).abs() < 1e-8 && (a.im - b.im).abs() < 1e-8);
        }
    }

    #[test]
    fn parseval_holds((_len, x) in pow2_len().prop_flat_map(|l| (Just(l), signal(l)))) {
        let time: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let mut f = x.clone();
        fft(&mut f).unwrap();
        let freq: f64 = f.iter().map(|z| z.norm_sqr()).sum::<f64>() / x.len() as f64;
        prop_assert!((time - freq).abs() <= 1e-7 * time.max(1.0));
    }

    #[test]
    fn transform_is_linear((_l, x, y) in pow2_len().prop_flat_map(|l| (Just(l), signal(l), signal(l))), alpha in -3.0f64..3.0) {
        let mut fx = x.clone();
        let mut fy = y.clone();
        let mut combo: Vec<Complex> =
            x.iter().zip(&y).map(|(&a, &b)| a + b.scale(alpha)).collect();
        fft(&mut fx).unwrap();
        fft(&mut fy).unwrap();
        fft(&mut combo).unwrap();
        for i in 0..x.len() {
            let expect = fx[i] + fy[i].scale(alpha);
            prop_assert!((combo[i].re - expect.re).abs() < 1e-6);
            prop_assert!((combo[i].im - expect.im).abs() < 1e-6);
        }
    }

    #[test]
    fn time_shift_multiplies_by_phase((_l, x) in (1u32..7).prop_map(|k| 1usize << k).prop_flat_map(|l| (Just(l), signal(l))), shift in 0usize..16) {
        let n = x.len();
        let shift = shift % n;
        // y[k] = x[(k - shift) mod n]  =>  Y[j] = X[j]·e^{-2πi j·shift/n}.
        let y: Vec<Complex> = (0..n).map(|k| x[(n + k - shift) % n]).collect();
        let mut fx = x.clone();
        let mut fy = y;
        fft(&mut fx).unwrap();
        fft(&mut fy).unwrap();
        for j in 0..n {
            let theta = -2.0 * std::f64::consts::PI * (j * shift) as f64 / n as f64;
            let expect = fx[j] * Complex::cis(theta);
            prop_assert!((fy[j].re - expect.re).abs() < 1e-6 * (1.0 + expect.abs()));
            prop_assert!((fy[j].im - expect.im).abs() < 1e-6 * (1.0 + expect.abs()));
        }
    }

    #[test]
    fn convolution_commutes((_l, a, b) in (1u32..6).prop_map(|k| 1usize << k).prop_flat_map(|l| (Just(l), signal(l), signal(l)))) {
        let ab = circular_convolve(&a, &b).unwrap();
        let ba = circular_convolve(&b, &a).unwrap();
        for (x, y) in ab.iter().zip(&ba) {
            prop_assert!((x.re - y.re).abs() < 1e-5 && (x.im - y.im).abs() < 1e-5);
        }
    }

    #[test]
    fn convolution_with_delta_is_identity((_l, a) in (1u32..6).prop_map(|k| 1usize << k).prop_flat_map(|l| (Just(l), signal(l)))) {
        let mut delta = vec![Complex::ZERO; a.len()];
        delta[0] = Complex::ONE;
        let out = circular_convolve(&a, &delta).unwrap();
        for (o, x) in out.iter().zip(&a) {
            prop_assert!((o.re - x.re).abs() < 1e-7 * (1.0 + x.abs()));
            prop_assert!((o.im - x.im).abs() < 1e-7 * (1.0 + x.abs()));
        }
    }

    #[test]
    fn plan_reuse_matches_one_shot((_l, x) in pow2_len().prop_flat_map(|l| (Just(l), signal(l)))) {
        let plan = FftPlan::new(x.len()).unwrap();
        let mut via_plan = x.clone();
        plan.forward(&mut via_plan).unwrap();
        let mut one_shot = x.clone();
        fft(&mut one_shot).unwrap();
        for (a, b) in via_plan.iter().zip(&one_shot) {
            prop_assert!((a.re - b.re).abs() < 1e-12 && (a.im - b.im).abs() < 1e-12);
        }
    }
}
