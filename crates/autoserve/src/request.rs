//! The service's wire types: requests, responses, rejections, and the
//! deterministic digests the soak tests pin.

use compat::error::PipelineResult;
use dvfs_energy_model::GridPrediction;
use dvfs_governor::PhasePlan;
use tk1_sim::{FaultConfig, OpVector};

/// What a fitted model is cached under: the simulated device identity
/// plus the fault campaign it was measured under.  Fitted constants do
/// not transfer across devices (each device seed is a different board),
/// and a model fitted through a faulted campaign is a different model —
/// both halves must key the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelKey {
    /// The device (board) the model was fitted on.
    pub device_seed: u64,
    /// [`FaultConfig::cache_key`] of the measurement campaign, 0 when
    /// fault-free.
    pub fault_key: u64,
}

impl ModelKey {
    /// The key for `device_seed` under `faults`.
    pub fn new(device_seed: u64, faults: Option<&FaultConfig>) -> ModelKey {
        ModelKey { device_seed, fault_key: faults.map_or(0, FaultConfig::cache_key) }
    }
}

/// The workload half of a tuning request.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// Pre-counted per-type operation totals (the paper's `W_k`/`Q_l`
    /// vector), as produced by a profiler or the counters path.
    Kernel {
        /// Operation counts per class.
        ops: OpVector,
        /// Fraction of peak issue the kernel sustains, `(0, 1]`; values
        /// outside are clamped into range at lowering.
        utilization: f64,
        /// Kernel launches (fixed per-launch overhead multiplier); 0 is
        /// clamped to 1 at lowering.
        launches: u32,
    },
    /// A raw FMM problem spec, lowered through the existing
    /// plan→profile counters path (`kifmm::profile_plan`).  Lowering is
    /// deterministic in `(n, q, seed)`, so shards cache it.
    Fmm {
        /// Number of source/target points (clamped to the service's
        /// supported range at lowering).
        n: usize,
        /// Multipole expansion order (clamped likewise).
        q: usize,
        /// Seed of the synthetic point distribution.
        seed: u64,
    },
}

/// One tuning request.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneRequest {
    /// Which simulated board to tune for; selects (or cold-fits) the
    /// cached model.
    pub device_seed: u64,
    /// The workload to tune.
    pub workload: WorkloadSpec,
    /// Rounds of a phase plan to compute on top of the grid answer;
    /// 0 skips planning (the common case).
    pub plan_rounds: usize,
}

/// A tuning answer.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneResponse {
    /// The predicted-optimal grid point.
    pub best: GridPrediction,
    /// Time/energy estimates at every grid setting, in grid order.
    pub grid: Vec<GridPrediction>,
    /// The governor phase plan, when `plan_rounds > 0`.
    pub plan: Option<PhasePlan>,
    /// Whether the answering model was fitted through any degradation
    /// fallback (`FitDiagnostics::degraded`) — the served equivalent of
    /// an error bar.
    pub degraded: bool,
    /// Whether the answer came from a cached model (`false` on the
    /// cold fit).  Excluded from [`TuneResponse::digest`]: cache state
    /// is a property of the run, not of the answer.
    pub cache_hit: bool,
}

impl TuneResponse {
    /// A 64-bit digest of the *answer content*: every grid estimate (by
    /// f64 bit pattern), the best setting, the plan, and the degraded
    /// flag.  `cache_hit` is excluded, so a cache-hit answer digests
    /// identically to the cold-fit answer it must match bitwise.
    pub fn digest(&self) -> u64 {
        let mut h = FNV_OFFSET;
        h = fnv1a_u64(h, self.best.setting.core_idx as u64);
        h = fnv1a_u64(h, self.best.setting.mem_idx as u64);
        for p in &self.grid {
            h = fnv1a_u64(h, p.setting.core_idx as u64);
            h = fnv1a_u64(h, p.setting.mem_idx as u64);
            h = fnv1a_u64(h, p.time_s.to_bits());
            h = fnv1a_u64(h, p.energy_j.to_bits());
        }
        if let Some(plan) = &self.plan {
            for s in &plan.settings {
                h = fnv1a_u64(h, s.core_idx as u64);
                h = fnv1a_u64(h, s.mem_idx as u64);
            }
            h = fnv1a_u64(h, plan.predicted_total_j.to_bits());
        }
        fnv1a_u64(h, self.degraded as u64)
    }
}

/// Why a submission was not accepted.  Rejections are immediate (the
/// send side never blocks) and counted by the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejected {
    /// The target shard's ingress queue is at capacity — explicit
    /// backpressure instead of unbounded growth.
    Overloaded {
        /// The shard that rejected.
        shard: usize,
        /// Its queue depth at rejection time.
        queue_depth: usize,
    },
    /// The server is shutting down; the shard no longer reads its queue.
    ShuttingDown,
}

/// The reply to one accepted request, redeemable exactly once.
pub struct Ticket {
    pub(crate) reply: compat::chan::OnceReceiver<PipelineResult<TuneResponse>>,
}

impl Ticket {
    /// Blocks until the answer arrives.  A dropped reply slot (a shard
    /// worker that died mid-request) surfaces as a structured error,
    /// never a hang.
    pub fn wait(self) -> PipelineResult<TuneResponse> {
        self.reply.recv().unwrap_or_else(|| {
            Err(compat::error::PipelineError::WorkerPanic {
                job: "tune request (reply slot dropped by its shard)".to_string(),
                attempts: 1,
            })
        })
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over the 8 bytes of `v`.
fn fnv1a_u64(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// SplitMix64 finalizer — the workspace's standard bit mixer, used here
/// for shard routing and for folding per-request digests into one
/// order-insensitive run digest.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Folds one response into an order-insensitive run digest: XOR of
/// `mix64(request id) ⊕ mix64(response digest)` terms commutes, so the
/// same request/response pairs produce the same run digest regardless
/// of completion order — which is what makes the digest identical
/// across 1/2/4/8 shard threads.
pub fn fold_digest(acc: u64, request_id: u64, response_digest: u64) -> u64 {
    acc ^ mix64(mix64(request_id).wrapping_add(response_digest))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tk1_sim::Setting;

    fn response() -> TuneResponse {
        let p = GridPrediction { setting: Setting::new(2, 3), time_s: 0.5, energy_j: 2.0 };
        TuneResponse {
            best: p,
            grid: vec![
                p,
                GridPrediction { setting: Setting::new(4, 1), time_s: 0.25, energy_j: 3.0 },
            ],
            plan: None,
            degraded: false,
            cache_hit: false,
        }
    }

    #[test]
    fn digest_excludes_cache_hit_but_not_content() {
        let a = response();
        let mut hit = a.clone();
        hit.cache_hit = true;
        assert_eq!(a.digest(), hit.digest(), "cache state is not answer content");

        let mut degraded = a.clone();
        degraded.degraded = true;
        assert_ne!(a.digest(), degraded.digest());

        let mut moved = a.clone();
        moved.grid[1].energy_j = 3.0000000001;
        assert_ne!(a.digest(), moved.digest(), "f64 bits are content");
    }

    #[test]
    fn fold_digest_is_order_insensitive() {
        let pairs = [(0u64, 11u64), (1, 22), (2, 33), (3, 44)];
        let forward = pairs.iter().fold(0u64, |acc, &(id, d)| fold_digest(acc, id, d));
        let backward = pairs.iter().rev().fold(0u64, |acc, &(id, d)| fold_digest(acc, id, d));
        assert_eq!(forward, backward);
        // ...but the pairing matters: swapping digests across ids changes it.
        let swapped = fold_digest(fold_digest(0, 0, 22), 1, 11);
        let straight = fold_digest(fold_digest(0, 0, 11), 1, 22);
        assert_ne!(swapped, straight);
    }

    #[test]
    fn model_key_folds_fault_campaign() {
        let clean = ModelKey::new(7, None);
        assert_eq!(clean.fault_key, 0);
        let faulted = ModelKey::new(7, Some(&FaultConfig::default_campaign()));
        assert_ne!(clean, faulted);
        assert_eq!(faulted, ModelKey::new(7, Some(&FaultConfig::default_campaign())));
    }
}
