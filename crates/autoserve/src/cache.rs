//! Per-shard fitted-model cache: in-memory LRU with an optional
//! on-disk JSON tier.
//!
//! Each shard owns one `ModelCache` outright — the router sends every
//! request for a given [`ModelKey`] to the same shard, so cache state
//! never needs a cross-shard lock, and two shards never read or write
//! the same cache file (file names embed the key).
//!
//! The disk tier stores only the *fitted constants* plus the degraded
//! flag.  Everything else a rig needs (timing ground truth, transition
//! calibration, the answer grid) is a pure function of the key and is
//! rebuilt on load — `compat::json` round-trips `f64`s bitwise, so a
//! restored rig answers bitwise identically to the rig that persisted
//! it (pinned by a property test).

use crate::request::ModelKey;
use crate::rig::Rig;
use compat::error::PipelineResult;
use compat::json::Json;
use dvfs_energy_model::EnergyModel;
use std::path::{Path, PathBuf};
use tk1_sim::{FaultConfig, NUM_OP_CLASSES};

/// Cache traffic counters, aggregated into the server's stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered from an in-memory rig.
    pub hits: usize,
    /// Requests that needed a cold fit.
    pub misses: usize,
    /// Misses intercepted by the on-disk tier (no sweep ran).
    pub disk_hits: usize,
    /// Sweep retries absorbed across all cold fits.
    pub sweep_retries: usize,
}

/// Where an answer's rig came from, for per-response bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// In-memory hit.
    Hit,
    /// Restored from the on-disk tier.
    DiskHit,
    /// Cold fit (sweep + NNLS ran).
    ColdFit,
}

/// One shard's model cache.
#[derive(Debug)]
pub struct ModelCache {
    capacity: usize,
    dir: Option<PathBuf>,
    /// LRU order: most recently used at the back.
    rigs: Vec<Rig>,
    /// Traffic counters.
    pub stats: CacheStats,
}

impl ModelCache {
    /// Creates a cache holding at most `capacity` rigs in memory, with
    /// an optional on-disk tier under `dir`.
    pub fn new(capacity: usize, dir: Option<PathBuf>) -> ModelCache {
        ModelCache {
            capacity: capacity.max(1),
            dir,
            rigs: Vec::new(),
            stats: CacheStats::default(),
        }
    }

    /// The rig for `device_seed` under `faults`, fitting it cold on
    /// first sight.  Returns the rig and where it came from.
    pub fn rig_for(
        &mut self,
        device_seed: u64,
        faults: Option<FaultConfig>,
    ) -> PipelineResult<(&Rig, CacheOutcome)> {
        let key = ModelKey::new(device_seed, faults.as_ref());
        if let Some(pos) = self.rigs.iter().position(|r| r.key == key) {
            let rig = self.rigs.remove(pos);
            self.rigs.push(rig);
            self.stats.hits += 1;
            return Ok((self.rigs.last().expect("just pushed"), CacheOutcome::Hit));
        }

        self.stats.misses += 1;
        let (rig, outcome) = match self.load_from_disk(&key, device_seed, faults) {
            Some(rig) => {
                self.stats.disk_hits += 1;
                (rig, CacheOutcome::DiskHit)
            }
            None => {
                let rig = Rig::cold_fit(device_seed, faults)?;
                self.stats.sweep_retries += rig.sweep_retries;
                if let Some(dir) = &self.dir {
                    persist(dir, &rig);
                }
                (rig, CacheOutcome::ColdFit)
            }
        };
        if self.rigs.len() >= self.capacity {
            self.rigs.remove(0);
        }
        self.rigs.push(rig);
        Ok((self.rigs.last().expect("just pushed"), outcome))
    }

    /// Number of rigs currently resident.
    pub fn len(&self) -> usize {
        self.rigs.len()
    }

    /// Whether no rigs are resident.
    pub fn is_empty(&self) -> bool {
        self.rigs.is_empty()
    }

    fn load_from_disk(
        &self,
        key: &ModelKey,
        device_seed: u64,
        faults: Option<FaultConfig>,
    ) -> Option<Rig> {
        let dir = self.dir.as_ref()?;
        let text = std::fs::read_to_string(cache_path(dir, key)).ok()?;
        let (stored_key, model, degraded) = decode(&text).ok()?;
        // The key is in the file name, but verify the payload too — a
        // corrupted or hand-edited file must fall back to a cold fit,
        // not serve a wrong model.
        if stored_key != *key {
            return None;
        }
        Some(Rig::from_cached_model(device_seed, faults, model, degraded))
    }
}

fn cache_path(dir: &Path, key: &ModelKey) -> PathBuf {
    dir.join(format!("model_{:016x}_{:016x}.json", key.device_seed, key.fault_key))
}

/// Best-effort persistence: a full disk or unwritable directory costs
/// the disk tier, never the answer.
fn persist(dir: &Path, rig: &Rig) {
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let _ = std::fs::write(cache_path(dir, &rig.key), encode(rig));
}

fn encode(rig: &Rig) -> String {
    let m = &rig.model;
    Json::obj([
        // u64 seeds don't fit f64 exactly; store them as hex strings.
        ("device_seed", Json::Str(format!("{:016x}", rig.key.device_seed))),
        ("fault_key", Json::Str(format!("{:016x}", rig.key.fault_key))),
        ("degraded", Json::Bool(rig.degraded)),
        ("c0_pj_per_v2", Json::Arr(m.c0_pj_per_v2.iter().map(|&c| Json::Num(c)).collect())),
        ("c1_proc_w_per_v", Json::Num(m.c1_proc_w_per_v)),
        ("c1_mem_w_per_v", Json::Num(m.c1_mem_w_per_v)),
        ("p_misc_w", Json::Num(m.p_misc_w)),
    ])
    .to_text()
}

fn decode(text: &str) -> Result<(ModelKey, EnergyModel, bool), compat::json::JsonError> {
    let v = Json::parse(text)?;
    let hex_field = |name: &str| -> Result<u64, compat::json::JsonError> {
        let s = v.field(name)?.as_str()?.to_string();
        u64::from_str_radix(&s, 16).map_err(|_| compat::json::JsonError::at(0, 0, "hex u64"))
    };
    let key =
        ModelKey { device_seed: hex_field("device_seed")?, fault_key: hex_field("fault_key")? };
    let degraded = v.field("degraded")?.as_bool()?;
    let arr = v.field("c0_pj_per_v2")?.as_array()?;
    if arr.len() != NUM_OP_CLASSES {
        return Err(compat::json::JsonError::at(0, 0, "c0 array of NUM_OP_CLASSES"));
    }
    let mut c0 = [0.0; NUM_OP_CLASSES];
    for (slot, j) in c0.iter_mut().zip(arr) {
        *slot = j.as_f64()?;
    }
    let model = EnergyModel {
        c0_pj_per_v2: c0,
        c1_proc_w_per_v: v.field("c1_proc_w_per_v")?.as_f64()?,
        c1_mem_w_per_v: v.field("c1_mem_w_per_v")?.as_f64()?,
        p_misc_w: v.field("p_misc_w")?.as_f64()?,
    };
    Ok((key, model, degraded))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_hits_evicts_and_counts() {
        let mut cache = ModelCache::new(2, None);
        let (_, o1) = cache.rig_for(1, None).expect("fit 1");
        assert_eq!(o1, CacheOutcome::ColdFit);
        let (_, o2) = cache.rig_for(1, None).expect("hit 1");
        assert_eq!(o2, CacheOutcome::Hit);
        cache.rig_for(2, None).expect("fit 2");
        cache.rig_for(3, None).expect("fit 3 evicts 1");
        assert_eq!(cache.len(), 2);
        let (_, o) = cache.rig_for(1, None).expect("refit 1");
        assert_eq!(o, CacheOutcome::ColdFit, "evicted rig must refit");
        assert_eq!(cache.stats, CacheStats { hits: 1, misses: 4, disk_hits: 0, sweep_retries: 0 });
    }

    #[test]
    fn disk_tier_round_trips_bitwise() {
        let dir = std::env::temp_dir().join(format!("autoserve-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let mut warm = ModelCache::new(4, Some(dir.clone()));
        let (rig, _) = warm.rig_for(42, None).expect("cold fit persists");
        let persisted_model = rig.model.clone();

        // A fresh cache (fresh process, conceptually) restores from disk.
        let mut cold = ModelCache::new(4, Some(dir.clone()));
        let (restored, outcome) = cold.rig_for(42, None).expect("disk restore");
        assert_eq!(outcome, CacheOutcome::DiskHit);
        assert_eq!(restored.model, persisted_model, "f64 round-trip is bitwise");
        assert_eq!(cold.stats.disk_hits, 1);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_cache_files_fall_back_to_cold_fit() {
        let dir =
            std::env::temp_dir().join(format!("autoserve-corrupt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        let key = ModelKey::new(5, None);
        std::fs::write(cache_path(&dir, &key), "{ not json ").expect("write corrupt file");

        let mut cache = ModelCache::new(4, Some(dir.clone()));
        let (_, outcome) = cache.rig_for(5, None).expect("survives corruption");
        assert_eq!(outcome, CacheOutcome::ColdFit);

        // The cold fit rewrote the file; a fresh cache now disk-hits.
        let mut fresh = ModelCache::new(4, Some(dir.clone()));
        let (_, outcome) = fresh.rig_for(5, None).expect("restored");
        assert_eq!(outcome, CacheOutcome::DiskHit);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
