//! Energy-tuning-as-a-service: a sharded, batching autotune server.
//!
//! The paper's autotuner answers one offline question — which DVFS
//! setting minimizes predicted energy for one FMM input.  This crate
//! turns that into a long-running service: clients submit
//! [`TuneRequest`]s (pre-counted op vectors, or raw FMM problem specs
//! lowered through the counters path) and get back the
//! predicted-optimal [`tk1_sim::Setting`], time/energy estimates
//! across the whole answer grid, and optionally a governor phase plan.
//!
//! Production shape (DESIGN.md §11):
//!
//! * **Bounded ingress, explicit backpressure** — per-shard bounded
//!   queues ([`compat::chan`]); a full queue rejects immediately with
//!   [`Rejected::Overloaded`] instead of growing without bound.
//! * **Batching** — each worker wakeup drains up to a batch of
//!   requests, amortizing model-cache lookups across the batch.
//! * **Model cache** — fitted models are expensive (a full
//!   microbenchmark sweep + NNLS fit) and keyed by `(device, fault
//!   profile)`; each shard keeps an LRU of rigs in memory with an
//!   optional on-disk JSON tier that restores bitwise-identical
//!   answers.
//! * **Sharding without locks** — requests route to shards by a pure
//!   hash of their [`ModelKey`], so each shard owns its caches
//!   outright and answers are identical across 1/2/4/8 workers.
//!
//! Everything is deterministic: answers are pure functions of
//! `(request, fault config)`, and the order-insensitive run digest
//! ([`fold_digest`]) is pinned by golden soak tests.

pub mod cache;
pub mod config;
pub mod request;
pub mod rig;
pub mod server;

pub use cache::{CacheOutcome, CacheStats, ModelCache};
pub use config::ServeConfig;
pub use request::{
    fold_digest, ModelKey, Rejected, Ticket, TuneRequest, TuneResponse, WorkloadSpec,
};
pub use rig::{LowerCache, Rig};
pub use server::{live_workers, shard_for, AutoServer, ServerStats};
