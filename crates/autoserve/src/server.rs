//! The sharded, batching autotune server.
//!
//! ```text
//!           submit() ── shard_for(key) ──┐
//!                                        ▼
//!   client ── try_send ──► [bounded queue, shard 0] ──► worker 0 ─► reply
//!          ╲─ try_send ──► [bounded queue, shard 1] ──► worker 1 ─► reply
//!                 │
//!                 └─ Full → Rejected::Overloaded (counted, immediate)
//! ```
//!
//! Each shard worker drains its queue in batches, owns a [`ModelCache`]
//! and a [`LowerCache`] outright (the router sends each model key to
//! exactly one shard, so no cache state is ever shared), and answers
//! every request as a pure function of `(request, fault config)` —
//! which is why a run's response digest is identical across any shard
//! count.

use crate::cache::{CacheOutcome, CacheStats, ModelCache};
use crate::config::ServeConfig;
use crate::request::{mix64, ModelKey, Rejected, Ticket, TuneRequest, TuneResponse};
use crate::rig::LowerCache;
use compat::chan::{bounded, oneshot, OnceSender, Receiver, Sender, TrySendError};
use compat::error::PipelineResult;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread::JoinHandle;
use tk1_sim::FaultConfig;

/// Lowered FMM workloads each shard keeps around.
const LOWER_CACHE_CAPACITY: usize = 16;

/// Workers alive across every server in the process; the shutdown
/// tests assert this returns to its baseline (no leaked threads).
static LIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Shard worker threads currently alive in this process.
pub fn live_workers() -> usize {
    LIVE_WORKERS.load(Ordering::SeqCst)
}

/// RAII live-worker accounting: the count drops even if a worker dies
/// by panic, so a wedged test sees the truth.
struct LiveGuard;

impl LiveGuard {
    fn enter() -> LiveGuard {
        LIVE_WORKERS.fetch_add(1, Ordering::SeqCst);
        LiveGuard
    }
}

impl Drop for LiveGuard {
    fn drop(&mut self) {
        LIVE_WORKERS.fetch_sub(1, Ordering::SeqCst);
    }
}

/// One queued request with its reply slot.
struct Job {
    req: TuneRequest,
    reply: OnceSender<PipelineResult<TuneResponse>>,
}

/// Whole-run server accounting, returned by [`AutoServer::shutdown`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests answered (including error answers).
    pub served: usize,
    /// Submissions rejected at the ingress queue.
    pub rejected: usize,
    /// Worker wakeups (batches drained).
    pub batches: usize,
    /// In-memory model-cache hits.
    pub cache_hits: usize,
    /// Model-cache misses (disk hits + cold fits).
    pub cache_misses: usize,
    /// Misses intercepted by the on-disk tier.
    pub disk_hits: usize,
    /// Highest queue depth any shard reached.
    pub max_queue_depth: usize,
    /// Sweep retries absorbed across all cold fits.
    pub sweep_retries: usize,
    /// Responses served from a degraded fit.
    pub degraded_responses: usize,
}

/// Per-shard accounting a worker returns when it drains out.
#[derive(Debug, Default)]
struct ShardReport {
    served: usize,
    batches: usize,
    cache: CacheStats,
    degraded_responses: usize,
    max_queue_depth: usize,
}

/// Which shard owns `key` among `shards` workers.  A pure function of
/// the key — the property tests pin that it never depends on thread
/// count, submission order, or anything else.
pub fn shard_for(key: &ModelKey, shards: usize) -> usize {
    (mix64(key.device_seed ^ mix64(key.fault_key)) % shards.max(1) as u64) as usize
}

/// A running autotune server.
pub struct AutoServer {
    senders: Vec<Sender<Job>>,
    workers: Vec<JoinHandle<ShardReport>>,
    faults: Option<FaultConfig>,
    rejected: AtomicUsize,
}

impl AutoServer {
    /// Starts the shard workers and returns the running server.
    pub fn start(cfg: ServeConfig) -> AutoServer {
        let shards = cfg.shards.max(1);
        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = bounded::<Job>(cfg.queue_capacity.max(1));
            senders.push(tx);
            let faults = cfg.faults;
            let batch_max = cfg.batch_max.max(1);
            let cache_capacity = cfg.cache_capacity;
            let cache_dir = cfg.cache_dir.clone();
            let handle = std::thread::Builder::new()
                .name(format!("autoserve-shard-{shard}"))
                .spawn(move || worker_loop(rx, faults, batch_max, cache_capacity, cache_dir))
                .expect("spawning a shard worker thread");
            workers.push(handle);
        }
        AutoServer { senders, workers, faults: cfg.faults, rejected: AtomicUsize::new(0) }
    }

    /// Submits a request.  Never blocks: a full shard queue rejects
    /// immediately with [`Rejected::Overloaded`] (and is counted), so
    /// overload surfaces as backpressure, not unbounded memory growth.
    pub fn submit(&self, req: TuneRequest) -> Result<Ticket, Rejected> {
        let key = ModelKey::new(req.device_seed, self.faults.as_ref());
        let shard = shard_for(&key, self.senders.len());
        let (reply, ticket) = oneshot();
        match self.senders[shard].try_send(Job { req, reply }) {
            Ok(_) => Ok(Ticket { reply: ticket }),
            Err(TrySendError::Full(_)) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                Err(Rejected::Overloaded { shard, queue_depth: self.senders[shard].len() })
            }
            Err(TrySendError::Closed(_)) => Err(Rejected::ShuttingDown),
        }
    }

    /// Submissions rejected so far.
    pub fn rejected(&self) -> usize {
        self.rejected.load(Ordering::Relaxed)
    }

    /// How many shards this server runs.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// Drains and stops the server: closes the ingress queues, lets
    /// every worker finish the requests it already accepted, joins the
    /// threads, and returns the aggregated accounting.  Accepted
    /// requests are never lost.
    pub fn shutdown(self) -> ServerStats {
        drop(self.senders);
        let mut stats =
            ServerStats { rejected: self.rejected.into_inner(), ..ServerStats::default() };
        for handle in self.workers {
            // A worker that panicked contributes nothing; its reply
            // slots were dropped, so waiters got structured errors.
            let Ok(report) = handle.join() else { continue };
            stats.served += report.served;
            stats.batches += report.batches;
            stats.cache_hits += report.cache.hits;
            stats.cache_misses += report.cache.misses;
            stats.disk_hits += report.cache.disk_hits;
            stats.sweep_retries += report.cache.sweep_retries;
            stats.degraded_responses += report.degraded_responses;
            stats.max_queue_depth = stats.max_queue_depth.max(report.max_queue_depth);
        }
        stats
    }
}

fn worker_loop(
    rx: Receiver<Job>,
    faults: Option<FaultConfig>,
    batch_max: usize,
    cache_capacity: usize,
    cache_dir: Option<std::path::PathBuf>,
) -> ShardReport {
    let _live = LiveGuard::enter();
    let mut cache = ModelCache::new(cache_capacity, cache_dir);
    let mut lowered = LowerCache::new(LOWER_CACHE_CAPACITY);
    let mut report = ShardReport::default();
    loop {
        // One wakeup drains up to `batch_max` queued requests; the
        // batch then amortizes cache lookups (consecutive requests for
        // the same model key reuse the rig the first one resolved).
        let batch = rx.recv_batch(batch_max);
        if batch.is_empty() {
            break;
        }
        report.batches += 1;
        for job in batch {
            match cache.rig_for(job.req.device_seed, faults) {
                Ok((rig, outcome)) => {
                    let mut resp = rig.answer(&job.req, &mut lowered);
                    resp.cache_hit = outcome == CacheOutcome::Hit;
                    report.served += 1;
                    if resp.degraded {
                        report.degraded_responses += 1;
                    }
                    job.reply.send(Ok(resp));
                }
                Err(e) => {
                    report.served += 1;
                    job.reply.send(Err(e));
                }
            }
        }
    }
    report.cache = cache.stats;
    report.max_queue_depth = rx.max_depth();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::WorkloadSpec;
    use tk1_sim::{OpClass, OpVector};

    fn request(device_seed: u64, flops: f64) -> TuneRequest {
        TuneRequest {
            device_seed,
            workload: WorkloadSpec::Kernel {
                ops: OpVector::from_pairs(&[(OpClass::FlopSp, flops), (OpClass::Dram, 1e6)]),
                utilization: 1.0,
                launches: 1,
            },
            plan_rounds: 0,
        }
    }

    fn tiny_config(shards: usize, queue: usize) -> ServeConfig {
        ServeConfig {
            shards,
            queue_capacity: queue,
            batch_max: 8,
            cache_capacity: 4,
            cache_dir: None,
            faults: None,
        }
    }

    #[test]
    fn serves_and_shuts_down_without_leaking_workers() {
        let before = live_workers();
        let server = AutoServer::start(tiny_config(2, 64));
        let tickets: Vec<Ticket> =
            (0..16).map(|i| server.submit(request(i % 2, 1e8)).expect("queue has room")).collect();
        for t in tickets {
            let resp = t.wait().expect("clean fit answers");
            assert!(resp.best.energy_j > 0.0);
        }
        let stats = server.shutdown();
        assert_eq!(stats.served, 16);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.cache_misses, 2, "one cold fit per device");
        assert_eq!(stats.cache_hits, 14);
        assert!(stats.max_queue_depth <= 64);
        // The PR 2 pool-reuse pattern: shutdown drains every worker.
        assert_eq!(live_workers(), before, "no leaked shard workers");
    }

    #[test]
    fn overload_rejections_are_counted_immediate_and_panic_free() {
        // One shard, capacity 2: the worker blocks on its first cold
        // fit while we flood the queue, so rejections must occur.
        let server = AutoServer::start(tiny_config(1, 2));
        let mut accepted = Vec::new();
        let mut overloaded = 0usize;
        for i in 0..64 {
            match server.submit(request(0, 1e8 + i as f64)) {
                Ok(t) => accepted.push(t),
                Err(Rejected::Overloaded { shard, queue_depth }) => {
                    assert_eq!(shard, 0);
                    assert!(queue_depth <= 2, "bounded queue never exceeds capacity");
                    overloaded += 1;
                }
                Err(Rejected::ShuttingDown) => panic!("server is running"),
            }
        }
        assert!(overloaded > 0, "flooding a capacity-2 queue must reject");
        assert_eq!(server.rejected(), overloaded);
        // Every *accepted* request still gets its answer.
        let n_accepted = accepted.len();
        for t in accepted {
            t.wait().expect("accepted requests are answered");
        }
        let stats = server.shutdown();
        assert_eq!(stats.served, n_accepted);
        assert_eq!(stats.rejected, overloaded);
        assert!(stats.max_queue_depth <= 2);
    }

    #[test]
    fn shutdown_answers_every_accepted_request_before_exiting() {
        // Queue requests and shut down immediately, without waiting:
        // the drain contract says every accepted request still gets
        // answered (tickets redeemed after shutdown), none are lost.
        let server = AutoServer::start(tiny_config(2, 32));
        let tickets: Vec<Ticket> =
            (0..8).map(|i| server.submit(request(i, 1e8)).expect("queue has room")).collect();
        let stats = server.shutdown();
        assert_eq!(stats.served, 8, "drain before exit");
        for t in tickets {
            t.wait().expect("answer delivered before the worker exited");
        }
    }

    #[test]
    fn shard_routing_is_a_pure_function_of_the_key() {
        for shards in [1usize, 2, 4, 8] {
            for seed in 0..256u64 {
                let key = ModelKey::new(seed, None);
                let first = shard_for(&key, shards);
                assert!(first < shards);
                assert_eq!(first, shard_for(&key, shards), "same key, same shard, always");
            }
        }
    }
}
