//! A simulated tuning rig: one fitted model plus everything needed to
//! answer requests against it, all owned by one shard.

use crate::request::{ModelKey, TuneRequest, TuneResponse, WorkloadSpec};
use compat::error::PipelineResult;
use compat::rng::StdRng;
use dvfs_energy_model::{best_index, predict_grid, service_grid, try_fit_from_sweep, EnergyModel};
use dvfs_governor::{plan_phase_settings, Predictor, TransitionModel};
use dvfs_microbench::SweepConfig;
use kifmm::evaluator::{FmmPlan, M2lMethod};
use kifmm::{profile_plan, CostModel};
use tk1_sim::{Device, FaultConfig, KernelProfile, Setting, TimingModel};

/// Salt separating the rig's answer-side device from the sweep's
/// measurement devices (which are seeded per setting inside the sweep).
const RIG_DEVICE_SALT: u64 = 0x41D0_5EED;
/// Fault-injector stream for the rig device during calibration.
const RIG_FAULT_STREAM: u64 = 0xD2_17;

/// FMM problem sizes the service lowers; out-of-range requests clamp.
const FMM_N_RANGE: (usize, usize) = (1024, 1 << 16);
/// Multipole orders the service lowers; out-of-range requests clamp.
const FMM_Q_RANGE: (usize, usize) = (2, 12);

/// One fitted rig: the model, the timing ground truth of its device,
/// the calibrated transition costs, and the answer grid.
///
/// Everything a rig computes is a pure function of `(key, request)` —
/// rigs are seeded by their [`ModelKey`], never by the shard that
/// happens to own them, which is why answers are identical across any
/// shard count.
#[derive(Debug, Clone)]
pub struct Rig {
    /// What this rig is cached under.
    pub key: ModelKey,
    /// The fitted energy model.
    pub model: EnergyModel,
    /// Whether the fit went through any degradation fallback.
    pub degraded: bool,
    /// Retries the measurement campaign absorbed (0 for rigs restored
    /// from the on-disk cache — the campaign didn't rerun).
    pub sweep_retries: usize,
    timing: TimingModel,
    transitions: TransitionModel,
    grid: Vec<Setting>,
}

impl Rig {
    /// Fits a rig from scratch: full service-preset sweep, NNLS fit,
    /// transition calibration.  This is the expensive path the cache
    /// exists to amortize.
    pub fn cold_fit(device_seed: u64, faults: Option<FaultConfig>) -> PipelineResult<Rig> {
        let fit = try_fit_from_sweep(&SweepConfig::service_preset(device_seed, faults))?;
        Ok(Rig::assemble(
            device_seed,
            faults,
            fit.model,
            fit.diagnostics.degraded(),
            fit.sweep_stats.total_retries(),
        ))
    }

    /// Rebuilds a rig around an already-fitted model (the on-disk cache
    /// path).  Timing and transition calibration are pure functions of
    /// the device seed (idle power is a pure function of the setting,
    /// even under latch faults), so a restored rig answers bitwise
    /// identically to the rig that persisted the model.
    pub fn from_cached_model(
        device_seed: u64,
        faults: Option<FaultConfig>,
        model: EnergyModel,
        degraded: bool,
    ) -> Rig {
        Rig::assemble(device_seed, faults, model, degraded, 0)
    }

    fn assemble(
        device_seed: u64,
        faults: Option<FaultConfig>,
        model: EnergyModel,
        degraded: bool,
        sweep_retries: usize,
    ) -> Rig {
        let mut device = Device::new(device_seed ^ RIG_DEVICE_SALT);
        if let Some(f) = &faults {
            device.set_fault_injector(Some(f.injector(device_seed ^ RIG_FAULT_STREAM)));
        }
        let transitions = TransitionModel::calibrate(&mut device);
        Rig {
            key: ModelKey::new(device_seed, faults.as_ref()),
            model,
            degraded,
            sweep_retries,
            timing: device.timing_model().clone(),
            transitions,
            grid: service_grid(),
        }
    }

    /// Answers one request: grid estimates, the argmin, and (when
    /// requested) a phase plan.  Pure in `(self, req, lowering)` —
    /// `cache_hit` is left `false` for the server to stamp.
    pub fn answer(&self, req: &TuneRequest, lowered: &mut LowerCache) -> TuneResponse {
        let kernels = lowered.kernels(&req.workload);
        let grid = predict_grid(&self.model, &self.timing, &kernels, &self.grid);
        let best = best_index(&grid).map(|i| grid[i]).expect("service grid is non-empty");
        let plan = (req.plan_rounds > 0).then(|| {
            let predictor = Predictor {
                model: &self.model,
                timing: &self.timing,
                transitions: &self.transitions,
            };
            plan_phase_settings(
                &predictor,
                &self.grid,
                Setting::max_performance(),
                &kernels,
                req.plan_rounds,
            )
        });
        TuneResponse { best, grid, plan, degraded: self.degraded, cache_hit: false }
    }
}

/// Per-shard cache of lowered FMM workloads: building an octree plan
/// and profiling it costs far more than the grid evaluation, and load
/// mixes repeat the same few problem specs.
#[derive(Debug)]
pub struct LowerCache {
    capacity: usize,
    entries: Vec<((usize, usize, u64), Vec<KernelProfile>)>,
}

impl LowerCache {
    /// Creates a cache holding at most `capacity` lowered problems.
    pub fn new(capacity: usize) -> LowerCache {
        LowerCache { capacity: capacity.max(1), entries: Vec::new() }
    }

    /// The kernel sequence of `workload`, lowering (and caching) FMM
    /// specs on first sight.
    pub fn kernels(&mut self, workload: &WorkloadSpec) -> Vec<KernelProfile> {
        match workload {
            WorkloadSpec::Kernel { ops, utilization, launches } => {
                // Clamp instead of panicking: a server must answer (or
                // reject) malformed requests, never die on one.
                let utilization = if utilization.is_finite() && *utilization > 0.0 {
                    utilization.min(1.0)
                } else {
                    1.0
                };
                vec![KernelProfile::new("request", *ops)
                    .with_utilization(utilization)
                    .with_launches((*launches).max(1))]
            }
            WorkloadSpec::Fmm { n, q, seed } => {
                let n = (*n).clamp(FMM_N_RANGE.0, FMM_N_RANGE.1);
                let q = (*q).clamp(FMM_Q_RANGE.0, FMM_Q_RANGE.1);
                let key = (n, q, *seed);
                if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
                    // LRU bump.
                    let hit = self.entries.remove(pos);
                    self.entries.push(hit);
                    return self.entries.last().expect("just pushed").1.clone();
                }
                let kernels = lower_fmm(n, q, *seed);
                if self.entries.len() >= self.capacity {
                    self.entries.remove(0);
                }
                self.entries.push((key, kernels.clone()));
                kernels
            }
        }
    }
}

/// Lowers an FMM problem spec to its phase kernels through the plan →
/// profile counters path, with the same synthetic point distribution
/// the bench pipeline uses.
fn lower_fmm(n: usize, q: usize, seed: u64) -> Vec<KernelProfile> {
    let mut rng = StdRng::seed_from_u64(seed ^ (n as u64).rotate_left(13) ^ q as u64);
    let pts: Vec<[f64; 3]> = (0..n).map(|_| [rng.random(), rng.random(), rng.random()]).collect();
    let den: Vec<f64> = (0..n).map(|_| 2.0 * rng.random::<f64>() - 1.0).collect();
    let plan = FmmPlan::new(&pts, &den, q, 4, M2lMethod::Fft);
    profile_plan(&plan, &CostModel::default()).kernels()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tk1_sim::{OpClass, OpVector};

    fn kernel_request(device_seed: u64) -> TuneRequest {
        TuneRequest {
            device_seed,
            workload: WorkloadSpec::Kernel {
                ops: OpVector::from_pairs(&[(OpClass::FlopSp, 5e8), (OpClass::Dram, 1e7)]),
                utilization: 0.8,
                launches: 2,
            },
            plan_rounds: 0,
        }
    }

    #[test]
    fn cold_fit_is_deterministic_and_clean_without_faults() {
        let a = Rig::cold_fit(99, None).expect("clean fit");
        let b = Rig::cold_fit(99, None).expect("clean fit");
        assert_eq!(a.model, b.model);
        assert!(!a.degraded);
        assert_eq!(a.sweep_retries, 0);
    }

    #[test]
    fn restored_rig_answers_bitwise_identically() {
        let cold = Rig::cold_fit(7, None).expect("clean fit");
        let restored = Rig::from_cached_model(7, None, cold.model.clone(), cold.degraded);
        let req = kernel_request(7);
        let mut lc = LowerCache::new(4);
        let a = cold.answer(&req, &mut lc);
        let b = restored.answer(&req, &mut lc);
        assert_eq!(a.digest(), b.digest());
        for (x, y) in a.grid.iter().zip(&b.grid) {
            assert_eq!(x.energy_j.to_bits(), y.energy_j.to_bits());
            assert_eq!(x.time_s.to_bits(), y.time_s.to_bits());
        }
    }

    #[test]
    fn plan_requests_get_plans_sized_to_the_workload() {
        let rig = Rig::cold_fit(3, None).expect("clean fit");
        let mut lc = LowerCache::new(4);
        let req = TuneRequest {
            workload: WorkloadSpec::Fmm { n: 1500, q: 4, seed: 5 },
            plan_rounds: 2,
            ..kernel_request(3)
        };
        let resp = rig.answer(&req, &mut lc);
        let plan = resp.plan.expect("plan_rounds > 0 yields a plan");
        let phase_count = lc.kernels(&req.workload).len();
        assert_eq!(plan.settings.len(), phase_count * 2);
        assert!(plan.predicted_total_j > 0.0);
    }

    #[test]
    fn hostile_kernel_specs_are_clamped_not_fatal() {
        let rig = Rig::cold_fit(1, None).expect("clean fit");
        let mut lc = LowerCache::new(4);
        for (util, launches) in
            [(f64::NAN, 0u32), (0.0, 1), (-3.0, 7), (f64::INFINITY, 2), (2.5, 0)]
        {
            let req = TuneRequest {
                device_seed: 1,
                workload: WorkloadSpec::Kernel {
                    ops: OpVector::from_pairs(&[(OpClass::FlopSp, 1e8)]),
                    utilization: util,
                    launches,
                },
                plan_rounds: 0,
            };
            let resp = rig.answer(&req, &mut lc);
            assert!(resp.best.energy_j.is_finite() && resp.best.energy_j > 0.0);
        }
    }

    #[test]
    fn fmm_lowering_is_cached_and_clamped() {
        let mut lc = LowerCache::new(2);
        let tiny = WorkloadSpec::Fmm { n: 1, q: 0, seed: 1 };
        let clamped = WorkloadSpec::Fmm { n: FMM_N_RANGE.0, q: FMM_Q_RANGE.0, seed: 1 };
        let a = lc.kernels(&tiny);
        assert_eq!(lc.entries.len(), 1, "clamped spec shares the cache slot");
        let b = lc.kernels(&clamped);
        assert_eq!(lc.entries.len(), 1);
        assert_eq!(a.len(), b.len());
        // Eviction keeps the cache bounded.
        lc.kernels(&WorkloadSpec::Fmm { n: 2000, q: 4, seed: 2 });
        lc.kernels(&WorkloadSpec::Fmm { n: 3000, q: 4, seed: 3 });
        assert_eq!(lc.entries.len(), 2);
    }
}
