//! Server configuration and its `FMM_ENERGY_SERVE_*` environment knobs.

use std::path::PathBuf;
use tk1_sim::FaultConfig;

/// Configuration of an [`crate::AutoServer`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Shard worker threads.  Each shard owns its model cache and its
    /// ingress queue outright; requests route to shards by model key.
    pub shards: usize,
    /// Per-shard ingress queue capacity; a full queue rejects with
    /// [`crate::Rejected::Overloaded`] instead of growing.
    pub queue_capacity: usize,
    /// Maximum requests drained per worker wakeup (one batch shares one
    /// cache lookup per model key).
    pub batch_max: usize,
    /// Fitted rigs each shard keeps in memory (LRU beyond that).
    pub cache_capacity: usize,
    /// Optional on-disk model cache directory, shared by all shards
    /// (file names embed the model key, and the router sends each key
    /// to exactly one shard, so there are no write races).
    pub cache_dir: Option<PathBuf>,
    /// Fault campaign the server's sweeps and devices run under.
    /// Explicit so tests can pin it regardless of `FMM_ENERGY_FAULTS`.
    pub faults: Option<FaultConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 4,
            queue_capacity: 256,
            batch_max: 32,
            cache_capacity: 32,
            cache_dir: None,
            faults: FaultConfig::from_env(),
        }
    }
}

impl ServeConfig {
    /// The default config with every `FMM_ENERGY_SERVE_*` override
    /// applied (see README's environment table):
    ///
    /// * `FMM_ENERGY_SERVE_SHARDS` — shard worker threads
    /// * `FMM_ENERGY_SERVE_QUEUE` — per-shard queue capacity
    /// * `FMM_ENERGY_SERVE_BATCH` — max requests per batch
    /// * `FMM_ENERGY_SERVE_CACHE` — in-memory rigs per shard
    /// * `FMM_ENERGY_SERVE_CACHE_DIR` — on-disk model cache directory
    pub fn from_env() -> Self {
        let mut cfg = ServeConfig::default();
        if let Some(v) = compat::env::positive_usize("FMM_ENERGY_SERVE_SHARDS") {
            cfg.shards = v;
        }
        if let Some(v) = compat::env::positive_usize("FMM_ENERGY_SERVE_QUEUE") {
            cfg.queue_capacity = v;
        }
        if let Some(v) = compat::env::positive_usize("FMM_ENERGY_SERVE_BATCH") {
            cfg.batch_max = v;
        }
        if let Some(v) = compat::env::positive_usize("FMM_ENERGY_SERVE_CACHE") {
            cfg.cache_capacity = v;
        }
        if let Some(dir) = compat::env::raw("FMM_ENERGY_SERVE_CACHE_DIR") {
            cfg.cache_dir = Some(PathBuf::from(dir));
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = ServeConfig { faults: None, ..ServeConfig::default() };
        assert!(cfg.shards >= 1);
        assert!(cfg.queue_capacity >= cfg.batch_max);
        assert!(cfg.cache_capacity >= 1);
        assert!(cfg.cache_dir.is_none());
    }
}
