//! Property-based tests for the service core (ISSUE 6 satellite):
//!
//! * batching is order-insensitive — any permutation of a batch yields
//!   identical per-request answers, at the pure-rig level and through a
//!   live sharded server;
//! * cache-hit answers are bitwise identical to the cold-fit answers
//!   they stand in for, including across the on-disk model tier;
//! * shard routing is a pure function of the request key, stable across
//!   1/2/4/8 worker threads.
//!
//! Cold fits are expensive (a full training sweep + NNLS fit), so the
//! fitted rigs and the on-disk model tier are built once in `OnceLock`
//! fixtures and every proptest case reuses them.

use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

use compat::prop::prelude::*;
use compat::rng::StdRng;
use dvfs_autoserve::{
    fold_digest, shard_for, AutoServer, ModelCache, ModelKey, Rig, ServeConfig, TuneRequest,
    TuneResponse, WorkloadSpec,
};
use tk1_sim::{OpClass, OpVector};

/// The two simulated boards every property tunes against.
const DEV_A: u64 = 0xA11CE;
const DEV_B: u64 = 0xB0B;

fn cold_rig(device_seed: u64) -> &'static Rig {
    static COLD_A: OnceLock<Rig> = OnceLock::new();
    static COLD_B: OnceLock<Rig> = OnceLock::new();
    let slot = if device_seed == DEV_A { &COLD_A } else { &COLD_B };
    slot.get_or_init(|| Rig::cold_fit(device_seed, None).expect("clean cold fit"))
}

/// The reference answer: a pure cold-fit rig, no server, no cache.
fn expected_answer(req: &TuneRequest) -> TuneResponse {
    let mut lowered = dvfs_autoserve::LowerCache::new(4);
    cold_rig(req.device_seed).answer(req, &mut lowered)
}

/// A model-cache directory pre-populated with both devices, built once.
/// After initialization every server and cache that points here restores
/// models from disk (`DiskHit`) and never writes, so concurrent tests
/// only ever read it.
fn model_dir() -> &'static PathBuf {
    static DIR: OnceLock<PathBuf> = OnceLock::new();
    DIR.get_or_init(|| {
        let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("autoserve-prop-models");
        std::fs::create_dir_all(&dir).expect("create model dir");
        let mut cache = ModelCache::new(2, Some(dir.clone()));
        cache.rig_for(DEV_A, None).expect("persist A");
        cache.rig_for(DEV_B, None).expect("persist B");
        dir
    })
}

/// A shard-style cache restored from [`model_dir`], shared by the
/// cache-identity property so disk decoding happens once, not per case.
fn restored_cache() -> &'static Mutex<ModelCache> {
    static CACHE: OnceLock<Mutex<ModelCache>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(ModelCache::new(2, Some(model_dir().clone()))))
}

fn workload() -> impl Strategy<Value = WorkloadSpec> {
    (compat::prop::array::uniform7(0.0f64..1e9), 0.05f64..1.5, 0u32..4).prop_map(
        |(counts, utilization, launches)| WorkloadSpec::Kernel {
            ops: OpVector::from_pairs(&[
                (OpClass::FlopSp, counts[0]),
                (OpClass::FlopDp, counts[1]),
                (OpClass::Int, counts[2]),
                (OpClass::Shared, counts[3]),
                (OpClass::L1, counts[4]),
                (OpClass::L2, counts[5]),
                (OpClass::Dram, counts[6]),
            ]),
            utilization,
            launches,
        },
    )
}

fn request() -> impl Strategy<Value = TuneRequest> {
    (prop_oneof![Just(DEV_A), Just(DEV_B)], workload(), 0usize..3).prop_map(
        |(device_seed, workload, plan_rounds)| TuneRequest { device_seed, workload, plan_rounds },
    )
}

/// Seeded Fisher–Yates: the permutation under test.
fn permute<T: Clone>(items: &[T], seed: u64) -> Vec<T> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<T> = items.to_vec();
    for i in (1..out.len()).rev() {
        let j = rng.random_range(0usize..i + 1);
        out.swap(i, j);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Batching is order-insensitive at the core: answering a batch in
    /// any permutation yields bitwise-identical per-request answers,
    /// even though the permutation reorders lowering-cache traffic.
    #[test]
    fn batch_answers_are_order_insensitive(
        reqs in compat::prop::collection::vec(request(), 1..8),
        perm_seed in 0u64..1 << 48,
    ) {
        let ids: Vec<usize> = (0..reqs.len()).collect();
        let shuffled = permute(&ids, perm_seed);

        let mut forward = dvfs_autoserve::LowerCache::new(4);
        let in_order: Vec<u64> =
            reqs.iter().map(|r| cold_rig(r.device_seed).answer(r, &mut forward).digest()).collect();

        let mut backward = dvfs_autoserve::LowerCache::new(4);
        for &i in &shuffled {
            let resp = cold_rig(reqs[i].device_seed).answer(&reqs[i], &mut backward);
            prop_assert_eq!(
                resp.digest(), in_order[i],
                "request {} answered differently after permutation", i
            );
        }
    }

    /// Cache-hit answers are bitwise identical to cold-fit answers,
    /// through the harshest path: a model persisted to disk, decoded by
    /// a fresh cache, and reused across every case.
    #[test]
    fn cached_answers_match_cold_fit_bitwise(req in request()) {
        let expected = expected_answer(&req);
        let mut cache = restored_cache().lock().expect("cache mutex");
        let (rig, _) = cache.rig_for(req.device_seed, None).expect("restored rig");
        let mut lowered = dvfs_autoserve::LowerCache::new(4);
        let got = rig.answer(&req, &mut lowered);
        prop_assert_eq!(got.digest(), expected.digest());
        prop_assert_eq!(got.grid.len(), expected.grid.len());
        for (g, e) in got.grid.iter().zip(&expected.grid) {
            prop_assert_eq!(g.setting, e.setting);
            prop_assert_eq!(g.time_s.to_bits(), e.time_s.to_bits());
            prop_assert_eq!(g.energy_j.to_bits(), e.energy_j.to_bits());
        }
        prop_assert_eq!(got.degraded, expected.degraded);
    }

    /// Shard routing is a pure function of the request key: stable call
    /// to call, in range, independent of the workload attached to the
    /// request, and pinned for every supported worker count.
    #[test]
    fn shard_routing_is_pure_in_the_key(device_seed in 0u64..u64::MAX) {
        let key = ModelKey::new(device_seed, None);
        for shards in [1usize, 2, 4, 8] {
            let first = shard_for(&key, shards);
            prop_assert!(first < shards);
            prop_assert_eq!(shard_for(&key, shards), first, "routing must be stable");
            // The key — not the workload, not the request id — routes.
            let same_key = ModelKey::new(device_seed, None);
            prop_assert_eq!(shard_for(&same_key, shards), first);
        }
        prop_assert_eq!(shard_for(&key, 1), 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The live server agrees with the pure rig for every request, for
    /// every supported shard count and batch size, in any submission
    /// order — batching, routing, and caching never change an answer.
    #[test]
    fn server_answers_match_pure_rig_across_shard_counts(
        reqs in compat::prop::collection::vec(request(), 4..10),
        perm_seed in 0u64..1 << 48,
        shards_pick in 0usize..4,
        batch_max in 1usize..5,
    ) {
        let shards = [1usize, 2, 4, 8][shards_pick];
        let expected: Vec<u64> = reqs.iter().map(|r| expected_answer(r).digest()).collect();
        let expected_fold = expected
            .iter()
            .enumerate()
            .fold(0u64, |acc, (id, &d)| fold_digest(acc, id as u64, d));

        let order: Vec<usize> = permute(&(0..reqs.len()).collect::<Vec<_>>(), perm_seed);
        let server = AutoServer::start(ServeConfig {
            shards,
            queue_capacity: 64,
            batch_max,
            cache_capacity: 2,
            cache_dir: Some(model_dir().clone()),
            faults: None,
        });
        let mut fold = 0u64;
        for &i in &order {
            let ticket = server.submit(reqs[i].clone()).expect("under capacity");
            let resp = ticket.wait().expect("clean fit");
            prop_assert_eq!(resp.digest(), expected[i], "request {} diverged", i);
            fold = fold_digest(fold, i as u64, resp.digest());
        }
        let stats = server.shutdown();
        prop_assert_eq!(fold, expected_fold);
        prop_assert_eq!(stats.served, reqs.len());
        prop_assert_eq!(
            stats.cache_misses, stats.disk_hits,
            "every model-cache miss must be satisfied from disk, never a re-fit"
        );
    }
}
