//! Deterministic noise helpers.
//!
//! `rand` is used for the uniform stream; normal deviates are produced
//! in-house with the Box–Muller transform (keeping the dependency set to
//! the approved list — see DESIGN.md).

use compat::rng::StdRng;

/// A seeded Gaussian noise source.
#[derive(Debug, Clone)]
pub struct Noise {
    rng: StdRng,
    /// Cached second Box–Muller deviate.
    spare: Option<f64>,
}

impl Noise {
    /// Creates a noise source from a seed.
    pub fn new(seed: u64) -> Self {
        Noise { rng: StdRng::seed_from_u64(seed), spare: None }
    }

    /// A standard normal deviate (Box–Muller).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        loop {
            let u1: f64 = self.rng.random::<f64>();
            if u1 <= f64::MIN_POSITIVE {
                continue;
            }
            let u2: f64 = self.rng.random::<f64>();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            self.spare = Some(r * theta.sin());
            return r * theta.cos();
        }
    }

    /// A normal deviate with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, sigma: f64) -> f64 {
        mean + sigma * self.standard_normal()
    }

    /// A uniform deviate in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.rng.random::<f64>()
    }

    /// A uniform deviate in `[lo, hi)`.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Noise::new(42);
        let mut b = Noise::new(42);
        for _ in 0..100 {
            assert_eq!(a.standard_normal(), b.standard_normal());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Noise::new(1);
        let mut b = Noise::new(2);
        let same = (0..50).filter(|_| a.standard_normal() == b.standard_normal()).count();
        assert!(same < 5);
    }

    #[test]
    fn standard_normal_moments() {
        let mut n = Noise::new(7);
        let samples: Vec<f64> = (0..200_000).map(|_| n.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn uniform_in_respects_bounds() {
        let mut n = Noise::new(9);
        for _ in 0..1000 {
            let x = n.uniform_in(3.0, 5.0);
            assert!((3.0..5.0).contains(&x));
        }
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut n = Noise::new(11);
        let samples: Vec<f64> = (0..100_000).map(|_| n.normal(10.0, 0.5)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 10.0).abs() < 0.02);
    }
}
