//! DVFS operating points of the simulated Tegra K1.
//!
//! The paper reports 15 selectable GPU-core frequencies and 7 memory
//! frequencies (105 permutations), where "changing the frequency
//! automatically changes the voltage to a predetermined value".  The
//! frequency/voltage pairs below include every pair that appears in the
//! paper's Tables I and IV; the remaining pairs interpolate monotonically,
//! matching published Tegra K1 operating tables.

/// One frequency/voltage operating point of a clock domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DvfsPoint {
    /// Clock frequency in MHz.
    pub freq_mhz: f64,
    /// Supply voltage in volts.
    pub voltage_v: f64,
}

impl DvfsPoint {
    const fn new(freq_mhz: f64, mv: f64) -> Self {
        DvfsPoint { freq_mhz, voltage_v: mv / 1000.0 }
    }

    /// Frequency in Hz.
    pub fn freq_hz(&self) -> f64 {
        self.freq_mhz * 1e6
    }
}

/// The 15 GPU-core operating points (frequency MHz, voltage mV).
const CORE_POINTS: [DvfsPoint; 15] = [
    DvfsPoint::new(72.0, 760.0),
    DvfsPoint::new(108.0, 760.0),
    DvfsPoint::new(180.0, 760.0),
    DvfsPoint::new(252.0, 760.0),
    DvfsPoint::new(324.0, 770.0),
    DvfsPoint::new(396.0, 770.0),
    DvfsPoint::new(468.0, 800.0),
    DvfsPoint::new(540.0, 840.0),
    DvfsPoint::new(612.0, 860.0),
    DvfsPoint::new(648.0, 890.0),
    DvfsPoint::new(684.0, 900.0),
    DvfsPoint::new(708.0, 920.0),
    DvfsPoint::new(756.0, 950.0),
    DvfsPoint::new(804.0, 990.0),
    DvfsPoint::new(852.0, 1030.0),
];

/// The 7 memory operating points (frequency MHz, voltage mV).
const MEM_POINTS: [DvfsPoint; 7] = [
    DvfsPoint::new(68.0, 800.0),
    DvfsPoint::new(204.0, 800.0),
    DvfsPoint::new(300.0, 820.0),
    DvfsPoint::new(396.0, 850.0),
    DvfsPoint::new(528.0, 880.0),
    DvfsPoint::new(792.0, 970.0),
    DvfsPoint::new(924.0, 1010.0),
];

/// All selectable GPU-core operating points (ascending frequency).
pub fn core_points() -> &'static [DvfsPoint] {
    &CORE_POINTS
}

/// All selectable memory operating points (ascending frequency).
pub fn mem_points() -> &'static [DvfsPoint] {
    &MEM_POINTS
}

/// A (core, memory) DVFS setting, addressed by indices into
/// [`core_points`] / [`mem_points`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Setting {
    /// Index into [`core_points`].
    pub core_idx: usize,
    /// Index into [`mem_points`].
    pub mem_idx: usize,
}

impl Setting {
    /// Creates a setting; panics if an index is out of range.
    pub fn new(core_idx: usize, mem_idx: usize) -> Self {
        assert!(core_idx < CORE_POINTS.len(), "core index out of range");
        assert!(mem_idx < MEM_POINTS.len(), "mem index out of range");
        Setting { core_idx, mem_idx }
    }

    /// Finds the setting with the given core/memory frequencies (MHz).
    ///
    /// Returns `None` if either frequency is not an operating point.
    pub fn from_frequencies(core_mhz: f64, mem_mhz: f64) -> Option<Self> {
        let core_idx = CORE_POINTS.iter().position(|p| p.freq_mhz == core_mhz)?;
        let mem_idx = MEM_POINTS.iter().position(|p| p.freq_mhz == mem_mhz)?;
        Some(Setting { core_idx, mem_idx })
    }

    /// The resolved pair of operating points.
    pub fn operating_point(&self) -> OperatingPoint {
        OperatingPoint { core: CORE_POINTS[self.core_idx], mem: MEM_POINTS[self.mem_idx] }
    }

    /// The setting with both domains at maximum frequency (852 / 924 MHz).
    pub fn max_performance() -> Self {
        Setting { core_idx: CORE_POINTS.len() - 1, mem_idx: MEM_POINTS.len() - 1 }
    }

    /// Iterates over all 105 settings (core-major order).
    pub fn all() -> impl Iterator<Item = Setting> {
        (0..CORE_POINTS.len())
            .flat_map(|c| (0..MEM_POINTS.len()).map(move |m| Setting { core_idx: c, mem_idx: m }))
    }

    /// Short display label, e.g. `"852/924"`.
    pub fn label(&self) -> String {
        let op = self.operating_point();
        format!("{:.0}/{:.0}", op.core.freq_mhz, op.mem.freq_mhz)
    }
}

/// A fully resolved (core, memory) frequency/voltage pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// GPU-core domain point.
    pub core: DvfsPoint,
    /// Memory domain point.
    pub mem: DvfsPoint,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_105_permutations() {
        assert_eq!(core_points().len(), 15);
        assert_eq!(mem_points().len(), 7);
        assert_eq!(Setting::all().count(), 105);
    }

    #[test]
    fn frequencies_ascend_and_voltages_monotone() {
        for pts in [core_points(), mem_points()] {
            for w in pts.windows(2) {
                assert!(w[0].freq_mhz < w[1].freq_mhz);
                assert!(w[0].voltage_v <= w[1].voltage_v, "voltage must not drop with frequency");
            }
        }
    }

    #[test]
    fn paper_table1_pairs_present() {
        // Every (freq, voltage) pair in the paper's Table I must exist.
        let cores = [
            (852.0, 1.030),
            (756.0, 0.950),
            (648.0, 0.890),
            (540.0, 0.840),
            (396.0, 0.770),
            (180.0, 0.760),
            (72.0, 0.760),
        ];
        for (f, v) in cores {
            let p = core_points().iter().find(|p| p.freq_mhz == f).expect("core freq missing");
            assert!((p.voltage_v - v).abs() < 1e-9, "core {f} MHz: {} != {v}", p.voltage_v);
        }
        let mems = [(924.0, 1.010), (528.0, 0.880), (204.0, 0.800), (68.0, 0.800)];
        for (f, v) in mems {
            let p = mem_points().iter().find(|p| p.freq_mhz == f).expect("mem freq missing");
            assert!((p.voltage_v - v).abs() < 1e-9, "mem {f} MHz: {} != {v}", p.voltage_v);
        }
    }

    #[test]
    fn paper_table4_frequencies_present() {
        // Table IV uses core 852/756/612/540/180 and mem 924/792/528/396/204.
        for f in [852.0, 756.0, 612.0, 540.0, 180.0] {
            assert!(core_points().iter().any(|p| p.freq_mhz == f), "core {f} missing");
        }
        for f in [924.0, 792.0, 528.0, 396.0, 204.0] {
            assert!(mem_points().iter().any(|p| p.freq_mhz == f), "mem {f} missing");
        }
    }

    #[test]
    fn from_frequencies_round_trips() {
        let s = Setting::from_frequencies(612.0, 396.0).unwrap();
        let op = s.operating_point();
        assert_eq!(op.core.freq_mhz, 612.0);
        assert_eq!(op.mem.freq_mhz, 396.0);
        assert!(Setting::from_frequencies(613.0, 396.0).is_none());
    }

    #[test]
    fn max_performance_is_max() {
        let op = Setting::max_performance().operating_point();
        assert_eq!(op.core.freq_mhz, 852.0);
        assert_eq!(op.mem.freq_mhz, 924.0);
    }

    #[test]
    fn label_formats() {
        assert_eq!(Setting::max_performance().label(), "852/924");
    }

    #[test]
    fn freq_hz_conversion() {
        assert_eq!(core_points()[0].freq_hz(), 72.0e6);
    }
}
