//! DVFS governors: the system-level policies the paper's Related Work
//! contrasts its model against.
//!
//! Slack-based DVFS (Ge, Freeh, Lively, ...) throttles frequency when the
//! processor is not the bottleneck; the paper's point is that a
//! model-based choice also wins on *uniform* computation.  This module
//! makes that comparison concrete: several governors drive the simulated
//! device through a sequence of kernels (e.g. the FMM's phases) and the
//! resulting time/energy totals can be compared.
//!
//! Governors:
//!
//! * [`Governor::Performance`] — both domains pinned at maximum
//!   frequency (race-to-halt).
//! * [`Governor::Powersave`] — both domains pinned at minimum.
//! * [`Governor::OnDemand`] — a load-following heuristic in the style of
//!   the Linux `ondemand` governor: per kernel, each domain runs at the
//!   lowest frequency that keeps that domain's utilization below a
//!   threshold, computed from the kernel's roofline times (the idealized
//!   information a reactive governor converges to after a few periods).
//! * [`Governor::ModelBased`] — picks the setting minimizing energy
//!   predicted by supplied per-op energy/constant-power estimates (the
//!   paper's contribution, as a governor).

use crate::device::Device;
use crate::dvfs::Setting;
use crate::kernel::KernelProfile;
use crate::ops::NUM_OP_CLASSES;
use crate::timing::TimingModel;

/// Per-op-class energy coefficients for the model-based governor
/// (mirrors the fitted model's shape without depending on the model
/// crate; the energy model crate converts into this).
#[derive(Debug, Clone)]
pub struct EnergyEstimates {
    /// `ĉ0` per op class, pJ/V².
    pub c0_pj_per_v2: [f64; NUM_OP_CLASSES],
    /// Processor leakage, W/V.
    pub c1_proc_w_per_v: f64,
    /// Memory leakage, W/V.
    pub c1_mem_w_per_v: f64,
    /// Constant misc power, W.
    pub p_misc_w: f64,
}

impl EnergyEstimates {
    /// Predicted energy of `kernel` at `setting` given a predicted
    /// duration.
    pub fn predict_j(&self, kernel: &KernelProfile, setting: Setting, time_s: f64) -> f64 {
        let op = setting.operating_point();
        let mut dynamic = 0.0;
        for (class, count) in kernel.ops.iter() {
            let v = if class.is_mem_domain() { op.mem.voltage_v } else { op.core.voltage_v };
            dynamic += count * self.c0_pj_per_v2[class.index()] * 1e-12 * v * v;
        }
        let pi0 = self.c1_proc_w_per_v * op.core.voltage_v
            + self.c1_mem_w_per_v * op.mem.voltage_v
            + self.p_misc_w;
        dynamic + pi0 * time_s
    }
}

/// A frequency-selection policy.
#[derive(Debug, Clone)]
pub enum Governor {
    /// Maximum frequencies, always.
    Performance,
    /// Minimum frequencies, always.
    Powersave,
    /// Load-following: slowest clocks that keep each domain's utilization
    /// below the threshold (e.g. 0.95).
    OnDemand {
        /// Target utilization ceiling in `(0, 1]`.
        threshold: f64,
    },
    /// Minimize predicted energy over all settings.
    ModelBased(EnergyEstimates),
}

/// The outcome of driving a kernel sequence under a governor.
#[derive(Debug, Clone)]
pub struct GovernorRun {
    /// Setting chosen for each kernel.
    pub settings: Vec<Setting>,
    /// Total measured time, s.
    pub total_time_s: f64,
    /// Total true energy, J.
    pub total_energy_j: f64,
}

impl Governor {
    /// Selects a setting for `kernel` (using the timing model for the
    /// reactive/ model policies).
    pub fn select(&self, kernel: &KernelProfile, timing: &TimingModel) -> Setting {
        match self {
            Governor::Performance => Setting::max_performance(),
            Governor::Powersave => Setting::new(0, 0),
            Governor::OnDemand { threshold } => {
                assert!(*threshold > 0.0 && *threshold <= 1.0);
                // The kernel's bound time at max frequency determines the
                // demand; each domain independently drops to the slowest
                // frequency whose capacity still covers demand/threshold.
                let max = Setting::max_performance();
                let at_max = timing.execution_time(kernel, max);
                let busy = (at_max.total_s - at_max.overhead_s).max(1e-12);
                // Core domain: find the slowest core index that keeps the
                // core-side time under the budget.
                let core_idx = (0..crate::dvfs::core_points().len())
                    .find(|&c| {
                        let s = Setting::new(c, max.mem_idx);
                        let t = timing.execution_time(kernel, s);
                        let core_side = t.fp_s.max(t.int_s).max(t.sm_l1_s).max(t.l2_s);
                        core_side <= busy / threshold
                    })
                    .unwrap_or(crate::dvfs::core_points().len() - 1);
                let mem_idx = (0..crate::dvfs::mem_points().len())
                    .find(|&m| {
                        let s = Setting::new(max.core_idx, m);
                        let t = timing.execution_time(kernel, s);
                        t.dram_s <= busy / threshold
                    })
                    .unwrap_or(crate::dvfs::mem_points().len() - 1);
                Setting::new(core_idx, mem_idx)
            }
            Governor::ModelBased(estimates) => Setting::all()
                .min_by(|&a, &b| {
                    let ta = timing.execution_time(kernel, a).total_s;
                    let tb = timing.execution_time(kernel, b).total_s;
                    estimates
                        .predict_j(kernel, a, ta)
                        .partial_cmp(&estimates.predict_j(kernel, b, tb))
                        .expect("finite")
                })
                .expect("non-empty settings"),
        }
    }

    /// Drives `kernels` through `device` under this policy.
    pub fn run(&self, device: &mut Device, kernels: &[KernelProfile]) -> GovernorRun {
        let timing = device.timing_model().clone();
        let mut settings = Vec::with_capacity(kernels.len());
        let mut total_time_s = 0.0;
        let mut total_energy_j = 0.0;
        for kernel in kernels {
            let setting = self.select(kernel, &timing);
            device.set_operating_point(setting);
            let execution = device.execute(kernel);
            total_time_s += execution.duration_s;
            total_energy_j += execution.true_energy_j();
            settings.push(setting);
        }
        GovernorRun { settings, total_time_s, total_energy_j }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{OpClass, OpVector};

    fn compute_kernel() -> KernelProfile {
        KernelProfile::new(
            "compute",
            OpVector::from_pairs(&[(OpClass::FlopSp, 2e10), (OpClass::Dram, 1e6)]),
        )
    }

    fn memory_kernel() -> KernelProfile {
        KernelProfile::new(
            "stream",
            OpVector::from_pairs(&[(OpClass::FlopSp, 1e6), (OpClass::Dram, 5e8)]),
        )
    }

    fn estimates() -> EnergyEstimates {
        let t = crate::power::TruthConstants::ideal();
        EnergyEstimates {
            c0_pj_per_v2: t.c0_pj_per_v2,
            c1_proc_w_per_v: t.c1_proc_w_per_v,
            c1_mem_w_per_v: t.c1_mem_w_per_v,
            p_misc_w: t.p_misc_w,
        }
    }

    #[test]
    fn performance_pins_max_and_powersave_pins_min() {
        let tm = TimingModel::default();
        assert_eq!(
            Governor::Performance.select(&compute_kernel(), &tm),
            Setting::max_performance()
        );
        assert_eq!(Governor::Powersave.select(&compute_kernel(), &tm), Setting::new(0, 0));
    }

    #[test]
    fn ondemand_throttles_the_idle_domain() {
        let tm = TimingModel::default();
        let g = Governor::OnDemand { threshold: 0.95 };
        // Compute-bound: the memory domain can drop far below max.
        let s = g.select(&compute_kernel(), &tm);
        assert_eq!(s.core_idx, crate::dvfs::core_points().len() - 1, "core stays fast");
        assert!(s.mem_idx < crate::dvfs::mem_points().len() - 1, "memory throttles");
        // Memory-bound: the core domain throttles instead.
        let s = g.select(&memory_kernel(), &tm);
        assert!(s.core_idx < crate::dvfs::core_points().len() - 1, "core throttles");
        assert_eq!(s.mem_idx, crate::dvfs::mem_points().len() - 1, "memory stays fast");
    }

    #[test]
    fn ondemand_barely_costs_time() {
        let mut dev = Device::ideal(1);
        let kernels = vec![compute_kernel(), memory_kernel()];
        let fast = Governor::Performance.run(&mut dev, &kernels);
        let ondemand = Governor::OnDemand { threshold: 0.95 }.run(&mut dev, &kernels);
        assert!(
            ondemand.total_time_s <= fast.total_time_s * 1.10,
            "throttling the idle domain costs little time: {} vs {}",
            ondemand.total_time_s,
            fast.total_time_s
        );
        assert!(ondemand.total_energy_j < fast.total_energy_j, "and saves energy");
    }

    #[test]
    fn powersave_saves_power_not_energy() {
        let mut dev = Device::ideal(2);
        let kernels = vec![compute_kernel()];
        let fast = Governor::Performance.run(&mut dev, &kernels);
        let slow = Governor::Powersave.run(&mut dev, &kernels);
        // Average power is lower...
        assert!(slow.total_energy_j / slow.total_time_s < fast.total_energy_j / fast.total_time_s);
        // ...but the 72 MHz crawl stretches constant energy so far that
        // total energy is worse.
        assert!(slow.total_energy_j > fast.total_energy_j);
    }

    #[test]
    fn model_based_governor_wins_on_energy() {
        let mut dev = Device::ideal(3);
        let kernels = vec![compute_kernel(), memory_kernel(), compute_kernel()];
        let model = Governor::ModelBased(estimates()).run(&mut dev, &kernels);
        for other in [
            Governor::Performance.run(&mut dev, &kernels),
            Governor::Powersave.run(&mut dev, &kernels),
            Governor::OnDemand { threshold: 0.95 }.run(&mut dev, &kernels),
        ] {
            assert!(
                model.total_energy_j <= other.total_energy_j * 1.001,
                "model {} J vs other {} J",
                model.total_energy_j,
                other.total_energy_j
            );
        }
    }

    #[test]
    fn run_records_one_setting_per_kernel() {
        let mut dev = Device::new(4);
        let kernels = vec![compute_kernel(), memory_kernel()];
        let run = Governor::Performance.run(&mut dev, &kernels);
        assert_eq!(run.settings.len(), 2);
        assert!(run.total_time_s > 0.0 && run.total_energy_j > 0.0);
    }

    #[test]
    fn estimates_predict_matches_shape() {
        let e = estimates();
        let k = compute_kernel();
        let s = Setting::max_performance();
        let j = e.predict_j(&k, s, 0.1);
        // 2e10 SP flops at 29 pJ plus ~6.7 W for 0.1 s.
        let expected = 2e10 * 29.0e-12 + 6.7 * 0.1;
        assert!((j - expected).abs() / expected < 0.05, "{j} vs {expected}");
    }
}
