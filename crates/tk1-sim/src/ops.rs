//! The operation taxonomy of the DVFS-aware energy model.
//!
//! The paper's instantiated model distinguishes single-precision,
//! double-precision and integer instructions, and data loaded from shared
//! memory, L1, L2 and DRAM.  (Table I lists energy costs for SP, DP,
//! integer, SM, L2 and DRAM; on Kepler the L1 cache and shared memory are
//! the same physical SRAM array, so L1 accesses share the SM cost — the
//! paper's Figure 6 accordingly reports an L1 energy share.)

/// One operation class of the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Single-precision floating-point instruction (FMA-equivalent).
    FlopSp,
    /// Double-precision floating-point instruction.
    FlopDp,
    /// Integer instruction (address arithmetic, loop bookkeeping, ...).
    Int,
    /// Shared-memory load/store (per 4-byte word).
    Shared,
    /// L1-cache hit (per 4-byte word; same SRAM array as shared memory).
    L1,
    /// L2-cache hit (per 4-byte word).
    L2,
    /// DRAM access (per 4-byte word).
    Dram,
}

/// Number of operation classes.
pub const NUM_OP_CLASSES: usize = 7;

/// All classes in canonical order (compute first, then memory levels from
/// closest to farthest).
pub const ALL_CLASSES: [OpClass; NUM_OP_CLASSES] = [
    OpClass::FlopSp,
    OpClass::FlopDp,
    OpClass::Int,
    OpClass::Shared,
    OpClass::L1,
    OpClass::L2,
    OpClass::Dram,
];

/// The compute (instruction) classes.
pub const COMPUTE_CLASSES: [OpClass; 3] = [OpClass::FlopSp, OpClass::FlopDp, OpClass::Int];

/// The memory (data access) classes.
pub const MEMORY_CLASSES: [OpClass; 4] = [OpClass::Shared, OpClass::L1, OpClass::L2, OpClass::Dram];

impl OpClass {
    /// Canonical index into [`ALL_CLASSES`]-ordered arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            OpClass::FlopSp => 0,
            OpClass::FlopDp => 1,
            OpClass::Int => 2,
            OpClass::Shared => 3,
            OpClass::L1 => 4,
            OpClass::L2 => 5,
            OpClass::Dram => 6,
        }
    }

    /// True for instruction (compute) classes.
    pub fn is_compute(self) -> bool {
        matches!(self, OpClass::FlopSp | OpClass::FlopDp | OpClass::Int)
    }

    /// True for data-access classes.
    pub fn is_memory(self) -> bool {
        !self.is_compute()
    }

    /// Bytes moved per operation (0 for compute classes, 4-byte words for
    /// memory classes).
    pub fn bytes_per_op(self) -> f64 {
        if self.is_memory() {
            4.0
        } else {
            0.0
        }
    }

    /// Whether the op's dynamic energy scales with the *memory* domain
    /// voltage (only DRAM traffic does; on-chip SRAM levels are in the
    /// core domain).
    pub fn is_mem_domain(self) -> bool {
        matches!(self, OpClass::Dram)
    }

    /// Human-readable short name matching the paper's column headers.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::FlopSp => "SP",
            OpClass::FlopDp => "DP",
            OpClass::Int => "Integer",
            OpClass::Shared => "SM",
            OpClass::L1 => "L1",
            OpClass::L2 => "L2",
            OpClass::Dram => "Mem",
        }
    }
}

/// Operation counts per class: the `(W_k, Q_l)` feature vector of the
/// energy model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OpVector {
    counts: [f64; NUM_OP_CLASSES],
}

impl OpVector {
    /// The zero vector.
    pub fn zero() -> Self {
        OpVector::default()
    }

    /// Builds from `(class, count)` pairs.
    pub fn from_pairs(pairs: &[(OpClass, f64)]) -> Self {
        let mut v = OpVector::default();
        for &(c, n) in pairs {
            v.counts[c.index()] += n;
        }
        v
    }

    /// Count for one class.
    #[inline]
    pub fn get(&self, class: OpClass) -> f64 {
        self.counts[class.index()]
    }

    /// Sets the count for one class.
    pub fn set(&mut self, class: OpClass, count: f64) {
        assert!(count >= 0.0 && count.is_finite(), "op count must be finite and non-negative");
        self.counts[class.index()] = count;
    }

    /// Adds to the count for one class.
    pub fn add(&mut self, class: OpClass, count: f64) {
        debug_assert!(count >= 0.0);
        self.counts[class.index()] += count;
    }

    /// Element-wise accumulation of another vector.
    pub fn accumulate(&mut self, other: &OpVector) {
        for i in 0..NUM_OP_CLASSES {
            self.counts[i] += other.counts[i];
        }
    }

    /// Element-wise scaling (e.g. extrapolating a sampled profile).
    pub fn scaled(&self, factor: f64) -> OpVector {
        let mut out = *self;
        for c in &mut out.counts {
            *c *= factor;
        }
        out
    }

    /// Total compute instructions `Σ W_k`.
    pub fn total_compute(&self) -> f64 {
        COMPUTE_CLASSES.iter().map(|&c| self.get(c)).sum()
    }

    /// Total memory operations `Σ Q_l`.
    pub fn total_memory_ops(&self) -> f64 {
        MEMORY_CLASSES.iter().map(|&c| self.get(c)).sum()
    }

    /// Total bytes moved across all memory levels.
    pub fn total_bytes(&self) -> f64 {
        MEMORY_CLASSES.iter().map(|&c| self.get(c) * c.bytes_per_op()).sum()
    }

    /// Bytes moved at one memory level.
    pub fn bytes(&self, class: OpClass) -> f64 {
        self.get(class) * class.bytes_per_op()
    }

    /// Floating-point operations (SP + DP).
    pub fn total_flops(&self) -> f64 {
        self.get(OpClass::FlopSp) + self.get(OpClass::FlopDp)
    }

    /// Arithmetic intensity in flops per *DRAM* byte — the x-axis of the
    /// roofline and of the paper's intensity microbenchmarks.
    ///
    /// Returns `f64::INFINITY` for kernels with no DRAM traffic.
    pub fn arithmetic_intensity(&self) -> f64 {
        let dram_bytes = self.bytes(OpClass::Dram);
        if dram_bytes == 0.0 {
            f64::INFINITY
        } else {
            self.total_flops() / dram_bytes
        }
    }

    /// Iterates `(class, count)` over all classes.
    pub fn iter(&self) -> impl Iterator<Item = (OpClass, f64)> + '_ {
        ALL_CLASSES.iter().map(move |&c| (c, self.get(c)))
    }

    /// True if every count is zero.
    pub fn is_zero(&self) -> bool {
        self.counts.iter().all(|&c| c == 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_consistent_with_all_classes() {
        for (i, c) in ALL_CLASSES.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn compute_and_memory_partition() {
        for c in ALL_CLASSES {
            assert!(c.is_compute() != c.is_memory());
        }
        assert_eq!(COMPUTE_CLASSES.len() + MEMORY_CLASSES.len(), NUM_OP_CLASSES);
    }

    #[test]
    fn only_dram_is_mem_domain() {
        for c in ALL_CLASSES {
            assert_eq!(c.is_mem_domain(), c == OpClass::Dram);
        }
    }

    #[test]
    fn opvector_accounting() {
        let v = OpVector::from_pairs(&[
            (OpClass::FlopSp, 100.0),
            (OpClass::FlopDp, 50.0),
            (OpClass::Int, 200.0),
            (OpClass::Shared, 10.0),
            (OpClass::L2, 20.0),
            (OpClass::Dram, 5.0),
        ]);
        assert_eq!(v.total_compute(), 350.0);
        assert_eq!(v.total_memory_ops(), 35.0);
        assert_eq!(v.total_flops(), 150.0);
        assert_eq!(v.total_bytes(), 140.0);
        assert_eq!(v.bytes(OpClass::Dram), 20.0);
        assert_eq!(v.arithmetic_intensity(), 150.0 / 20.0);
    }

    #[test]
    fn intensity_infinite_without_dram() {
        let v = OpVector::from_pairs(&[(OpClass::FlopSp, 10.0)]);
        assert!(v.arithmetic_intensity().is_infinite());
    }

    #[test]
    fn accumulate_and_scale() {
        let mut a = OpVector::from_pairs(&[(OpClass::Int, 1.0)]);
        let b = OpVector::from_pairs(&[(OpClass::Int, 2.0), (OpClass::Dram, 3.0)]);
        a.accumulate(&b);
        assert_eq!(a.get(OpClass::Int), 3.0);
        let s = a.scaled(2.0);
        assert_eq!(s.get(OpClass::Dram), 6.0);
        assert!(!s.is_zero());
        assert!(OpVector::zero().is_zero());
    }

    #[test]
    fn from_pairs_accumulates_duplicates() {
        let v = OpVector::from_pairs(&[(OpClass::L2, 1.0), (OpClass::L2, 2.0)]);
        assert_eq!(v.get(OpClass::L2), 3.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_count_rejected() {
        OpVector::zero().set(OpClass::Int, -1.0);
    }

    #[test]
    fn names_match_paper_headers() {
        assert_eq!(OpClass::FlopSp.name(), "SP");
        assert_eq!(OpClass::Dram.name(), "Mem");
    }
}
