//! Kernel descriptors: what the device executes.
//!
//! A kernel, for the purposes of the timing and power models, is its
//! operation-count vector plus an *achieved utilization* — the fraction of
//! the bound resource's peak the implementation actually sustains.  The
//! paper's microbenchmarks are hand-tuned to ~100% utilization of the
//! targeted resource, while the FMM sustains less than a quarter of peak
//! IPC (Section IV-C); this single parameter is what lets the simulator
//! reproduce the "constant power dominates the FMM" observation.

use crate::ops::OpVector;

/// An executable kernel description.
#[derive(Debug, Clone)]
pub struct KernelProfile {
    /// Identifying name (used in traces and datasets).
    pub name: String,
    /// Operation counts by class.
    pub ops: OpVector,
    /// Fraction of peak throughput the kernel sustains on its bound
    /// resource, in `(0, 1]`.
    pub utilization: f64,
    /// Number of launches this profile represents (each launch pays the
    /// device's launch overhead).
    pub launches: u32,
}

impl KernelProfile {
    /// Creates a kernel profile with full utilization and a single launch.
    pub fn new(name: impl Into<String>, ops: OpVector) -> Self {
        KernelProfile { name: name.into(), ops, utilization: 1.0, launches: 1 }
    }

    /// Sets the achieved utilization (must be in `(0, 1]`).
    pub fn with_utilization(mut self, utilization: f64) -> Self {
        assert!(
            utilization > 0.0 && utilization <= 1.0,
            "utilization must be in (0, 1], got {utilization}"
        );
        self.utilization = utilization;
        self
    }

    /// Sets the launch count.
    pub fn with_launches(mut self, launches: u32) -> Self {
        assert!(launches >= 1, "at least one launch");
        self.launches = launches;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::OpClass;

    #[test]
    fn builder_defaults() {
        let k = KernelProfile::new("k", OpVector::from_pairs(&[(OpClass::FlopSp, 1.0)]));
        assert_eq!(k.utilization, 1.0);
        assert_eq!(k.launches, 1);
        assert_eq!(k.name, "k");
    }

    #[test]
    fn builder_overrides() {
        let k = KernelProfile::new("k", OpVector::zero()).with_utilization(0.25).with_launches(6);
        assert_eq!(k.utilization, 0.25);
        assert_eq!(k.launches, 6);
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn zero_utilization_rejected() {
        let _ = KernelProfile::new("k", OpVector::zero()).with_utilization(0.0);
    }

    #[test]
    #[should_panic(expected = "launch")]
    fn zero_launches_rejected() {
        let _ = KernelProfile::new("k", OpVector::zero()).with_launches(0);
    }
}
