//! Roofline-style execution-time model.
//!
//! Each resource (floating-point pipes, integer pipes, the shared-memory/L1
//! SRAM, the L2 slice crossbar, the DRAM interface) has a peak throughput
//! proportional to its domain clock.  A kernel's time on each resource is
//! its demand divided by that throughput; the *bound* resource (the max)
//! determines execution time, derated by the kernel's achieved utilization
//! — the classic roofline argument the energy-roofline papers build on.

use crate::dvfs::Setting;
use crate::kernel::KernelProfile;
use crate::ops::OpClass;

/// Microarchitectural throughput parameters of the simulated Kepler SMX.
///
/// Defaults follow the Tegra K1's published shape: 192 CUDA cores issuing
/// one SP FMA per cycle, double precision at 1/24 of SP (the paper calls
/// this limitation out explicitly), 160 integer lanes, a 128-byte/cycle
/// shared/L1 SRAM, a 64-byte/cycle L2, and a 64-bit DDR interface moving
/// 16 bytes per memory clock.
#[derive(Debug, Clone)]
pub struct MachineSpec {
    /// SP instructions retired per core-clock cycle.
    pub sp_ops_per_cycle: f64,
    /// DP instructions retired per core-clock cycle.
    pub dp_ops_per_cycle: f64,
    /// Integer instructions retired per core-clock cycle.
    pub int_ops_per_cycle: f64,
    /// Shared-memory/L1 bytes per core-clock cycle (same SRAM array).
    pub sm_l1_bytes_per_cycle: f64,
    /// L2 bytes per core-clock cycle.
    pub l2_bytes_per_cycle: f64,
    /// DRAM bytes per memory-clock cycle.
    pub dram_bytes_per_cycle: f64,
    /// Fixed driver/launch overhead per kernel launch, seconds.
    pub launch_overhead_s: f64,
}

impl Default for MachineSpec {
    fn default() -> Self {
        MachineSpec {
            sp_ops_per_cycle: 192.0,
            dp_ops_per_cycle: 8.0,
            int_ops_per_cycle: 160.0,
            sm_l1_bytes_per_cycle: 128.0,
            l2_bytes_per_cycle: 64.0,
            dram_bytes_per_cycle: 16.0,
            launch_overhead_s: 15e-6,
        }
    }
}

impl MachineSpec {
    /// Peak SP throughput in ops/s at the given setting.
    pub fn peak_sp_ops(&self, setting: Setting) -> f64 {
        self.sp_ops_per_cycle * setting.operating_point().core.freq_hz()
    }

    /// Peak DRAM bandwidth in bytes/s at the given setting.
    pub fn peak_dram_bandwidth(&self, setting: Setting) -> f64 {
        self.dram_bytes_per_cycle * setting.operating_point().mem.freq_hz()
    }
}

/// Which resource bound a kernel's execution time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundResource {
    /// Floating-point issue (SP+DP).
    FloatingPoint,
    /// Integer issue.
    Integer,
    /// Shared-memory / L1 SRAM bandwidth.
    SharedL1,
    /// L2 bandwidth.
    L2,
    /// DRAM bandwidth.
    Dram,
}

/// Decomposed timing of one kernel execution.
#[derive(Debug, Clone)]
pub struct TimingBreakdown {
    /// Busy time each resource would need in isolation, seconds.
    pub fp_s: f64,
    /// Integer pipe time, seconds.
    pub int_s: f64,
    /// Shared/L1 time, seconds.
    pub sm_l1_s: f64,
    /// L2 time, seconds.
    pub l2_s: f64,
    /// DRAM time, seconds.
    pub dram_s: f64,
    /// The binding resource.
    pub bound: BoundResource,
    /// Total launch overhead, seconds.
    pub overhead_s: f64,
    /// Final execution time (bound / utilization + overhead), seconds.
    pub total_s: f64,
}

/// The execution-time model.
#[derive(Debug, Clone, Default)]
pub struct TimingModel {
    /// Machine parameters.
    pub spec: MachineSpec,
}

impl TimingModel {
    /// Creates a timing model over a machine spec.
    pub fn new(spec: MachineSpec) -> Self {
        TimingModel { spec }
    }

    /// Predicts execution time for `kernel` at `setting`.
    ///
    /// Floating-point and integer instructions issue from different pipes
    /// (the paper notes integer ops "use different resources in the
    /// pipeline from floating point", which is why the FMM's 60% integer
    /// instruction share costs little time), so compute time is the *max*
    /// of the two pipes rather than their sum.
    pub fn execution_time(&self, kernel: &KernelProfile, setting: Setting) -> TimingBreakdown {
        let op = setting.operating_point();
        let fc = op.core.freq_hz();
        let fm = op.mem.freq_hz();
        let ops = &kernel.ops;
        let s = &self.spec;

        let fp_s = (ops.get(OpClass::FlopSp) / s.sp_ops_per_cycle
            + ops.get(OpClass::FlopDp) / s.dp_ops_per_cycle)
            / fc;
        let int_s = ops.get(OpClass::Int) / s.int_ops_per_cycle / fc;
        let sm_l1_s =
            (ops.bytes(OpClass::Shared) + ops.bytes(OpClass::L1)) / s.sm_l1_bytes_per_cycle / fc;
        let l2_s = ops.bytes(OpClass::L2) / s.l2_bytes_per_cycle / fc;
        let dram_s = ops.bytes(OpClass::Dram) / s.dram_bytes_per_cycle / fm;

        let candidates = [
            (fp_s, BoundResource::FloatingPoint),
            (int_s, BoundResource::Integer),
            (sm_l1_s, BoundResource::SharedL1),
            (l2_s, BoundResource::L2),
            (dram_s, BoundResource::Dram),
        ];
        let (busy, bound) = candidates
            .iter()
            .copied()
            .max_by(|a, b| a.0.partial_cmp(&b.0).expect("times are finite"))
            .expect("non-empty");

        let overhead_s = kernel.launches as f64 * s.launch_overhead_s;
        let total_s = busy / kernel.utilization + overhead_s;
        TimingBreakdown { fp_s, int_s, sm_l1_s, l2_s, dram_s, bound, overhead_s, total_s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::OpVector;

    fn setting_max() -> Setting {
        Setting::max_performance()
    }

    #[test]
    fn sp_peak_matches_spec() {
        let spec = MachineSpec::default();
        // 192 ops/cycle * 852 MHz = 163.6 Gops/s.
        let peak = spec.peak_sp_ops(setting_max());
        assert!((peak - 192.0 * 852e6).abs() < 1.0);
    }

    #[test]
    fn compute_bound_kernel_scales_with_core_freq() {
        let tm = TimingModel::default();
        let k = KernelProfile::new("sp", OpVector::from_pairs(&[(OpClass::FlopSp, 1e9)]));
        let fast = tm.execution_time(&k, Setting::from_frequencies(852.0, 924.0).unwrap());
        let slow = tm.execution_time(&k, Setting::from_frequencies(396.0, 924.0).unwrap());
        assert_eq!(fast.bound, BoundResource::FloatingPoint);
        let busy_fast = fast.total_s - fast.overhead_s;
        let busy_slow = slow.total_s - slow.overhead_s;
        assert!((busy_slow / busy_fast - 852.0 / 396.0).abs() < 1e-9);
    }

    #[test]
    fn memory_bound_kernel_scales_with_mem_freq() {
        let tm = TimingModel::default();
        let k = KernelProfile::new("stream", OpVector::from_pairs(&[(OpClass::Dram, 1e9)]));
        let fast = tm.execution_time(&k, Setting::from_frequencies(852.0, 924.0).unwrap());
        let slow = tm.execution_time(&k, Setting::from_frequencies(852.0, 204.0).unwrap());
        assert_eq!(fast.bound, BoundResource::Dram);
        let busy_fast = fast.total_s - fast.overhead_s;
        let busy_slow = slow.total_s - slow.overhead_s;
        assert!((busy_slow / busy_fast - 924.0 / 204.0).abs() < 1e-9);
    }

    #[test]
    fn dp_is_24x_slower_than_sp() {
        let tm = TimingModel::default();
        let sp = KernelProfile::new("sp", OpVector::from_pairs(&[(OpClass::FlopSp, 1e9)]));
        let dp = KernelProfile::new("dp", OpVector::from_pairs(&[(OpClass::FlopDp, 1e9)]));
        let s = setting_max();
        let t_sp = tm.execution_time(&sp, s).fp_s;
        let t_dp = tm.execution_time(&dp, s).fp_s;
        assert!((t_dp / t_sp - 24.0).abs() < 1e-9);
    }

    #[test]
    fn integer_overlaps_with_fp() {
        // Adding integer work below the FP time must not change total time.
        let tm = TimingModel::default();
        let s = setting_max();
        let fp_only = KernelProfile::new("a", OpVector::from_pairs(&[(OpClass::FlopSp, 1e9)]));
        let with_int = KernelProfile::new(
            "b",
            OpVector::from_pairs(&[(OpClass::FlopSp, 1e9), (OpClass::Int, 5e8)]),
        );
        let ta = tm.execution_time(&fp_only, s).total_s;
        let tb = tm.execution_time(&with_int, s).total_s;
        assert_eq!(ta, tb, "integer ops hide under the FP roof");
    }

    #[test]
    fn utilization_derates_time() {
        let tm = TimingModel::default();
        let s = setting_max();
        let full = KernelProfile::new("u1", OpVector::from_pairs(&[(OpClass::FlopSp, 1e9)]));
        let quarter = full.clone().with_utilization(0.25);
        let t1 = tm.execution_time(&full, s);
        let t4 = tm.execution_time(&quarter, s);
        assert!(((t4.total_s - t4.overhead_s) / (t1.total_s - t1.overhead_s) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn launch_overhead_accumulates() {
        let tm = TimingModel::default();
        let s = setting_max();
        let k = KernelProfile::new("k", OpVector::zero()).with_launches(10);
        let t = tm.execution_time(&k, s);
        assert!((t.overhead_s - 150e-6).abs() < 1e-12);
        assert_eq!(t.total_s, t.overhead_s);
    }

    #[test]
    fn bound_resource_transitions_with_intensity() {
        // Low intensity -> DRAM-bound; high intensity -> FP-bound.
        let tm = TimingModel::default();
        let s = setting_max();
        let lo = KernelProfile::new(
            "lo",
            OpVector::from_pairs(&[(OpClass::FlopSp, 1e6), (OpClass::Dram, 1e8)]),
        );
        let hi = KernelProfile::new(
            "hi",
            OpVector::from_pairs(&[(OpClass::FlopSp, 1e10), (OpClass::Dram, 1e6)]),
        );
        assert_eq!(tm.execution_time(&lo, s).bound, BoundResource::Dram);
        assert_eq!(tm.execution_time(&hi, s).bound, BoundResource::FloatingPoint);
    }

    #[test]
    fn machine_balance_crossover_near_roofline_knee() {
        // The intensity where FP time equals DRAM time is peak_flops /
        // peak_bandwidth; check the model's knee lands there.
        let tm = TimingModel::default();
        let s = setting_max();
        let balance = tm.spec.peak_sp_ops(s) / tm.spec.peak_dram_bandwidth(s);
        let w = 1e9;
        let make = |intensity: f64| {
            KernelProfile::new(
                "x",
                OpVector::from_pairs(&[(OpClass::FlopSp, w), (OpClass::Dram, w / intensity / 4.0)]),
            )
        };
        let below = tm.execution_time(&make(balance * 0.9), s);
        let above = tm.execution_time(&make(balance * 1.1), s);
        assert_eq!(below.bound, BoundResource::Dram);
        assert_eq!(above.bound, BoundResource::FloatingPoint);
    }
}
