//! The executable device: operating-point selection and kernel execution.
//!
//! A [`Device`] is the simulated board.  Executing a [`KernelProfile`]
//! produces an [`Execution`]: the realized wall-clock duration (with
//! run-to-run jitter), the true energy decomposition, and an
//! instantaneous-power waveform that a power meter (see `powermon-sim`)
//! can sample — mirroring how the paper's measurements flow from the
//! PowerMon 2 device sitting between the supply and the board.

use crate::dvfs::Setting;
use crate::faults::{FaultInjector, LatchOutcome};
use crate::kernel::KernelProfile;
use crate::ops::ALL_CLASSES;
use crate::power::{EnergyComponents, TruthConstants};
use crate::rng::Noise;
use crate::timing::{TimingBreakdown, TimingModel};

/// The simulated Jetson TK1.
///
/// ```
/// use tk1_sim::{Device, KernelProfile, OpClass, OpVector, Setting};
///
/// let mut board = Device::new(42);
/// board.set_operating_point(Setting::from_frequencies(612.0, 528.0).unwrap());
/// let kernel = KernelProfile::new(
///     "saxpy",
///     OpVector::from_pairs(&[(OpClass::FlopSp, 1e9), (OpClass::Dram, 3e7)]),
/// );
/// let run = board.execute(&kernel);
/// assert!(run.duration_s > 0.0);
/// assert!(run.true_energy_j() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Device {
    timing: TimingModel,
    truth: TruthConstants,
    setting: Setting,
    noise: Noise,
    /// Relative run-to-run execution-time jitter (σ).
    time_jitter_rel: f64,
    /// Relative run-to-run dynamic-power fluctuation (σ): data-dependent
    /// switching-activity variation the model cannot see.
    activity_noise_rel: f64,
    executions: u64,
    /// Seeded fault source (DVFS latch failures, throttle episodes).
    injector: Option<FaultInjector>,
    /// The setting the driver last *asked* for (may differ from the
    /// applied one under latch faults).
    requested: Setting,
    /// DVFS write attempts so far; keys the latch-fault draws so a
    /// retried write can deterministically succeed.
    latch_attempts: u64,
}

impl Device {
    /// Creates a device with default (Table I-calibrated) ground truth.
    pub fn new(seed: u64) -> Self {
        Device::with_truth(TruthConstants::default(), seed)
    }

    /// Creates a device with explicit ground-truth constants.
    pub fn with_truth(truth: TruthConstants, seed: u64) -> Self {
        Device {
            timing: TimingModel::default(),
            truth,
            setting: Setting::max_performance(),
            noise: Noise::new(seed),
            time_jitter_rel: 3e-3,
            activity_noise_rel: 0.04,
            executions: 0,
            injector: None,
            requested: Setting::max_performance(),
            latch_attempts: 0,
        }
    }

    /// A noiseless, ideal-truth device (pipeline sanity tests).
    pub fn ideal(seed: u64) -> Self {
        let mut d = Device::with_truth(TruthConstants::ideal(), seed);
        d.time_jitter_rel = 0.0;
        d.activity_noise_rel = 0.0;
        d
    }

    /// Attaches (or removes) a fault injector.  With one attached, DVFS
    /// writes can fail to latch and executions can hit throttle
    /// episodes; without one, behavior is bitwise-identical to before.
    pub fn set_fault_injector(&mut self, injector: Option<FaultInjector>) {
        self.injector = injector;
    }

    /// Selects a DVFS operating point (the equivalent of writing the
    /// sysfs frequency knobs on the real board).
    ///
    /// Under an attached fault injector the write may be lost or latch
    /// to a neighboring table entry; [`Device::operating_point`] reports
    /// what actually applied (the sysfs read-back), so callers that
    /// verify-and-retry observe the fault and can re-issue the write.
    pub fn set_operating_point(&mut self, setting: Setting) {
        self.requested = setting;
        let outcome = match &self.injector {
            Some(inj) => {
                self.latch_attempts += 1;
                inj.latch_outcome(self.latch_attempts, setting)
            }
            None => LatchOutcome::Applied,
        };
        match outcome {
            LatchOutcome::Applied => self.setting = setting,
            LatchOutcome::Stuck => {}
            LatchOutcome::Neighbor(s) => self.setting = s,
        }
    }

    /// The *applied* operating point (what reading the sysfs frequency
    /// knobs back would report) — equals the requested one except when a
    /// latch fault intervened.
    pub fn operating_point(&self) -> Setting {
        self.setting
    }

    /// The operating point last requested via
    /// [`Device::set_operating_point`].
    pub fn requested_operating_point(&self) -> Setting {
        self.requested
    }

    /// The timing model (shared with analysis code that needs to *predict*
    /// times rather than measure them).
    pub fn timing_model(&self) -> &TimingModel {
        &self.timing
    }

    /// The hidden ground truth.  Only diagnostics/figure code may use
    /// this; the fitting pipeline must not (and does not).
    pub fn ground_truth(&self) -> &TruthConstants {
        &self.truth
    }

    /// Number of kernels executed so far.
    pub fn execution_count(&self) -> u64 {
        self.executions
    }

    /// Executes a kernel at the current operating point.
    pub fn execute(&mut self, kernel: &KernelProfile) -> Execution {
        self.executions += 1;
        let breakdown = self.timing.execution_time(kernel, self.setting);
        let jitter = if self.time_jitter_rel > 0.0 {
            (1.0 + self.noise.normal(0.0, self.time_jitter_rel)).max(0.5)
        } else {
            1.0
        };
        // A thermal-throttle episode stretches the realized duration: the
        // clocks degrade mid-run, the work still completes.  Dynamic
        // energy is unchanged (same switched capacitance) while constant
        // energy grows with the longer residency — which is exactly why
        // the sweep's time gate must catch and retry these runs.
        let throttle = self
            .injector
            .as_ref()
            .and_then(|inj| inj.throttle_episode(self.executions))
            .unwrap_or(1.0);
        let duration_s = breakdown.total_s * jitter * throttle;

        // True energy decomposition at this setting.  The activity factor
        // (the `A` of P = C·V²·A·f, which the model must assume constant)
        // actually varies with the kernel's data/instruction mix and with
        // how the mix maps onto the units at each clock: a deterministic
        // per-kernel deviation, a smaller per-(kernel, setting) one, and
        // white run-to-run noise.  These deviations are the model's
        // irreducible application-dependent error.
        let activity = if self.activity_noise_rel > 0.0 {
            let per_kernel = 0.08 * hash_unit(&kernel.name, 0, 0);
            let per_setting =
                0.05 * hash_unit(&kernel.name, self.setting.core_idx + 1, self.setting.mem_idx + 1);
            (1.0 + per_kernel + per_setting + self.noise.normal(0.0, self.activity_noise_rel))
                .max(0.5)
        } else {
            1.0
        };
        let mut dynamic_j = [0.0; crate::ops::NUM_OP_CLASSES];
        for &class in &ALL_CLASSES {
            dynamic_j[class.index()] =
                activity * kernel.ops.get(class) * self.truth.energy_per_op_j(class, self.setting);
        }
        let dynamic_total: f64 = dynamic_j.iter().sum();
        let dynamic_power = if duration_s > 0.0 { dynamic_total / duration_s } else { 0.0 };
        // "Constant" power is itself an idealization: how much of the idle
        // machinery a kernel keeps un-gated depends on the kernel and on
        // the clock domain ratios.  Model that as deterministic
        // per-kernel / per-(kernel, setting) deviations around eq. 8 —
        // the single largest modeling error the paper's π0 term carries.
        // The deviation is per (kernel, setting): how the clock-domain
        // ratio interleaves a given kernel's stalls determines what stays
        // un-gated.  (A per-kernel *family* bias would be structurally
        // unidentifiable from the family's per-op coefficient — within a
        // family, time is proportional to op counts — so the same physics
        // that would alias into the paper's fit is kept out of ours.)
        // The deviation magnitude grows with the kernel's idle fraction:
        // a saturating microbenchmark leaves little machinery un-gated
        // (small wobble), while a ~25%-utilization application like the
        // FMM exposes most of the "constant" machinery to residency
        // effects.  This is why the paper's FMM validation errors (mean
        // 6.17%) exceed its microbenchmark CV errors (2.87%).
        let sigma = 0.03 + 0.10 * (1.0 - kernel.utilization);
        let constant_deviation = if self.activity_noise_rel > 0.0 {
            1.0 + sigma
                * hash_unit(
                    &kernel.name,
                    0x2000 + self.setting.core_idx,
                    0x3000 + self.setting.mem_idx,
                )
        } else {
            1.0
        };
        let constant_power =
            self.truth.constant_power_w(self.setting, dynamic_power) * constant_deviation;
        let components = EnergyComponents { dynamic_j, constant_j: constant_power * duration_s };

        Execution {
            kernel_name: kernel.name.clone(),
            setting: self.setting,
            duration_s,
            avg_power_w: components.total_j() / duration_s.max(f64::MIN_POSITIVE),
            components,
            timing: breakdown,
            ripple_phase: self.noise.uniform() * std::f64::consts::TAU,
        }
    }

    /// Idle power at the current setting (what a meter reads between
    /// kernels), W.
    pub fn idle_power_w(&self) -> f64 {
        self.truth.constant_power_w(self.setting, 0.0)
    }
}

/// Deterministic pseudo-random value in `[-1, 1]` from a kernel name and
/// a pair of salts (FNV-1a over the inputs).
fn hash_unit(name: &str, salt_a: usize, salt_b: usize) -> f64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |byte: u8| {
        h ^= byte as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    };
    for b in name.bytes() {
        eat(b);
    }
    for b in (salt_a as u64).to_le_bytes() {
        eat(b);
    }
    for b in (salt_b as u64).to_le_bytes() {
        eat(b);
    }
    // Map the top 53 bits to [0, 1), then to [-1, 1].
    ((h >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
}

/// The realized execution of one kernel.
#[derive(Debug, Clone)]
pub struct Execution {
    /// Name of the executed kernel.
    pub kernel_name: String,
    /// Operating point it ran at.
    pub setting: Setting,
    /// Realized wall-clock duration (including jitter), seconds.
    pub duration_s: f64,
    /// True average power over the execution, W.
    pub avg_power_w: f64,
    /// True energy decomposition (hidden from fitting).
    pub components: EnergyComponents,
    /// Timing decomposition from the roofline model.
    pub timing: TimingBreakdown,
    /// Random phase of the supply ripple for this execution.
    ripple_phase: f64,
}

impl Execution {
    /// True total energy, J.
    pub fn true_energy_j(&self) -> f64 {
        self.components.total_j()
    }

    /// Instantaneous power at time `t` seconds into the execution, W.
    ///
    /// The waveform is the average power plus a small deterministic supply
    /// ripple (~1%, at the 120 Hz a switching regulator under load shows
    /// after rectification); the power meter adds its own sampling noise
    /// on top.  Integrating this waveform over `[0, duration]` recovers
    /// the true energy up to ripple truncation.
    pub fn instantaneous_power_w(&self, t: f64) -> f64 {
        let ripple = 0.01 * self.avg_power_w;
        self.avg_power_w + ripple * (std::f64::consts::TAU * 120.0 * t + self.ripple_phase).sin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{OpClass, OpVector};

    fn kernel() -> KernelProfile {
        KernelProfile::new(
            "test",
            OpVector::from_pairs(&[(OpClass::FlopSp, 1e9), (OpClass::Dram, 5e7)]),
        )
    }

    #[test]
    fn execution_is_deterministic_per_seed() {
        let mut a = Device::new(3);
        let mut b = Device::new(3);
        let ka = a.execute(&kernel());
        let kb = b.execute(&kernel());
        assert_eq!(ka.duration_s, kb.duration_s);
        assert_eq!(ka.true_energy_j(), kb.true_energy_j());
    }

    #[test]
    fn ideal_device_has_no_jitter() {
        let mut d = Device::ideal(1);
        let e1 = d.execute(&kernel());
        let e2 = d.execute(&kernel());
        assert_eq!(e1.duration_s, e2.duration_s);
        assert_eq!(e1.duration_s, e1.timing.total_s);
    }

    #[test]
    fn jitter_is_small_but_present() {
        let mut d = Device::new(5);
        let durations: Vec<f64> = (0..32).map(|_| d.execute(&kernel()).duration_s).collect();
        let t0 = durations[0];
        assert!(durations.iter().any(|&t| t != t0), "jitter varies");
        for t in &durations {
            assert!((t / t0 - 1.0).abs() < 0.05, "jitter is small");
        }
    }

    #[test]
    fn energy_consistent_with_power_and_time() {
        let mut d = Device::new(7);
        let e = d.execute(&kernel());
        assert!((e.avg_power_w * e.duration_s - e.true_energy_j()).abs() < 1e-9);
    }

    #[test]
    fn lower_frequency_means_longer_time() {
        let mut d = Device::ideal(1);
        d.set_operating_point(Setting::max_performance());
        let fast = d.execute(&kernel());
        d.set_operating_point(Setting::from_frequencies(396.0, 204.0).unwrap());
        let slow = d.execute(&kernel());
        assert!(slow.duration_s > fast.duration_s);
    }

    #[test]
    fn race_to_halt_fails_for_compute_bound_kernel() {
        // The core of the paper's Table II: for a high-intensity SP kernel
        // the fastest setting is NOT the most energy-efficient one.
        let mut d = Device::ideal(1);
        let k = KernelProfile::new(
            "sp-heavy",
            OpVector::from_pairs(&[(OpClass::FlopSp, 2e10), (OpClass::Dram, 1e6)]),
        );
        d.set_operating_point(Setting::max_performance());
        let at_max = d.execute(&k);
        d.set_operating_point(Setting::from_frequencies(648.0, 204.0).unwrap());
        let at_mid = d.execute(&k);
        assert!(at_mid.duration_s > at_max.duration_s, "max freq is fastest");
        assert!(
            at_mid.true_energy_j() < at_max.true_energy_j(),
            "but mid freq uses less energy: {} vs {}",
            at_mid.true_energy_j(),
            at_max.true_energy_j()
        );
    }

    #[test]
    fn idle_power_tracks_setting() {
        let mut d = Device::new(1);
        d.set_operating_point(Setting::max_performance());
        let hi = d.idle_power_w();
        d.set_operating_point(Setting::from_frequencies(72.0, 68.0).unwrap());
        let lo = d.idle_power_w();
        assert!(hi > lo);
        assert!(hi < 8.0 && lo > 3.0, "both in a plausible watts range");
    }

    #[test]
    fn instantaneous_power_integrates_to_energy() {
        let mut d = Device::new(11);
        let e = d.execute(&kernel());
        let n = 20_000;
        let dt = e.duration_s / n as f64;
        let integral: f64 =
            (0..n).map(|i| e.instantaneous_power_w((i as f64 + 0.5) * dt) * dt).sum();
        let rel = (integral - e.true_energy_j()).abs() / e.true_energy_j();
        assert!(rel < 0.02, "ripple truncation only: {rel}");
    }

    #[test]
    fn latch_faults_are_visible_and_recoverable_by_retry() {
        use crate::faults::{FaultConfig, FaultRates};
        let mut d = Device::new(1);
        d.set_fault_injector(Some(
            FaultConfig {
                seed: 42,
                rates: FaultRates { latch_fail: 0.3, latch_neighbor: 0.2, ..FaultRates::off() },
            }
            .injector(0),
        ));
        let target = Setting::from_frequencies(612.0, 528.0).unwrap();
        let mut faulted = 0;
        for _ in 0..200 {
            d.set_operating_point(target);
            let mut retries = 0;
            while d.operating_point() != target {
                faulted += 1;
                retries += 1;
                assert!(retries < 50, "retry must converge");
                d.set_operating_point(target);
            }
            assert_eq!(d.requested_operating_point(), target);
        }
        assert!(faulted > 20, "latch faults must actually fire: {faulted}");
    }

    #[test]
    fn throttle_episodes_stretch_duration_only_with_injector() {
        use crate::faults::{FaultConfig, FaultRates};
        let baseline = Device::ideal(1).execute(&kernel()).duration_s;
        let mut d = Device::ideal(1);
        d.set_fault_injector(Some(
            FaultConfig {
                seed: 7,
                rates: FaultRates { throttle: 1.0, throttle_stretch: 0.8, ..FaultRates::off() },
            }
            .injector(0),
        ));
        let throttled = d.execute(&kernel());
        assert!(
            throttled.duration_s > baseline * 1.2,
            "throttled {} vs {baseline}",
            throttled.duration_s
        );
        // Energy bookkeeping stays self-consistent.
        let err = (throttled.avg_power_w * throttled.duration_s - throttled.true_energy_j()).abs();
        assert!(err < 1e-9);
    }

    #[test]
    fn no_injector_means_no_behavior_change() {
        let mut plain = Device::new(9);
        let mut hooked = Device::new(9);
        hooked.set_fault_injector(None);
        let target = Setting::from_frequencies(396.0, 204.0).unwrap();
        plain.set_operating_point(target);
        hooked.set_operating_point(target);
        let a = plain.execute(&kernel());
        let b = hooked.execute(&kernel());
        assert_eq!(a.duration_s.to_bits(), b.duration_s.to_bits());
        assert_eq!(a.true_energy_j().to_bits(), b.true_energy_j().to_bits());
    }

    #[test]
    fn execution_counter_increments() {
        let mut d = Device::new(1);
        assert_eq!(d.execution_count(), 0);
        d.execute(&kernel());
        d.execute(&kernel());
        assert_eq!(d.execution_count(), 2);
    }
}
