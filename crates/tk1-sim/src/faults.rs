//! Deterministic, seeded fault injection for the measurement chain.
//!
//! Real DVFS measurement campaigns are dominated by failures the happy
//! path never sees: ADC samples drop or saturate, host timestamps
//! jitter, supply transients spike the waveform, thermal throttling
//! stretches executions, and a frequency write occasionally fails to
//! latch — or latches to a *neighboring* table entry.  This module
//! injects exactly those faults into the simulated chain at
//! configurable rates so the hardened pipeline (sweep gates, robust
//! integration, fit degradation ladder) can be exercised end to end.
//!
//! # Determinism
//!
//! Every fault decision is a *stateless hash* of `(seed, stream, salt,
//! indices)` — no shared RNG stream is consumed.  Two consequences the
//! property tests pin down:
//!
//! * the same seed and rates corrupt the chain bitwise-identically
//!   regardless of thread count or scheduling, because a draw depends
//!   only on *which* sample/execution/latch-attempt it keys, never on
//!   what other threads drew first;
//! * a retried measurement re-rolls its faults (the attempt counter
//!   advances), so bounded retry can succeed deterministically.
//!
//! # Configuration
//!
//! [`FaultConfig::from_env`] reads `FMM_ENERGY_FAULTS`:
//!
//! ```text
//! FMM_ENERGY_FAULTS=default                 # the documented default rates
//! FMM_ENERGY_FAULTS=default,latch_fail=0.2  # defaults with one override
//! FMM_ENERGY_FAULTS=sample_dropout=0.05,seed=7
//! FMM_ENERGY_FAULTS=off                     # (or unset) no injection
//! ```

use crate::dvfs::{core_points, mem_points, Setting};

/// Per-mechanism fault rates.  All `*_rate` fields are probabilities per
/// draw (per ADC sample, per execution, or per latch attempt).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Probability an ADC sample is dropped (recorded as NaN).
    pub sample_dropout: f64,
    /// Probability an ADC sample saturates to full scale.
    pub sample_clip: f64,
    /// Probability an ADC sample rides a transient power spike.
    pub spike: f64,
    /// Relative magnitude ceiling of a spike (`sample *= 1 + mag·u`).
    pub spike_mag: f64,
    /// Extra relative host-timestamp jitter (σ) on measured durations.
    pub timestamp_jitter_rel: f64,
    /// Probability an execution lands in a thermal-throttle episode.
    pub throttle: f64,
    /// Relative duration stretch ceiling of a throttled execution.
    pub throttle_stretch: f64,
    /// Probability a DVFS write fails to latch (setting unchanged).
    pub latch_fail: f64,
    /// Probability a DVFS write latches to a neighboring table entry.
    pub latch_neighbor: f64,
}

impl FaultRates {
    /// All rates zero: the injector becomes a no-op.
    pub fn off() -> FaultRates {
        FaultRates {
            sample_dropout: 0.0,
            sample_clip: 0.0,
            spike: 0.0,
            spike_mag: 0.0,
            timestamp_jitter_rel: 0.0,
            throttle: 0.0,
            throttle_stretch: 0.0,
            latch_fail: 0.0,
            latch_neighbor: 0.0,
        }
    }

    /// The documented default campaign rates (`FMM_ENERGY_FAULTS=default`).
    ///
    /// Chosen to be aggressive enough that every mechanism fires many
    /// times per sweep (16 settings × 103 kernels × ~100 samples) while
    /// keeping the hardened pipeline's cross-validation error within 2×
    /// of a clean run — the ISSUE's acceptance band.
    pub fn default_campaign() -> FaultRates {
        FaultRates {
            sample_dropout: 0.02,
            sample_clip: 0.004,
            spike: 0.004,
            spike_mag: 1.5,
            timestamp_jitter_rel: 0.002,
            throttle: 0.02,
            throttle_stretch: 0.8,
            latch_fail: 0.04,
            latch_neighbor: 0.02,
        }
    }
}

/// A fault campaign: rates plus the seed that makes it reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Master seed; every injector draw hashes it in.
    pub seed: u64,
    /// Mechanism rates.
    pub rates: FaultRates,
}

impl FaultConfig {
    /// The default campaign with the default seed.
    pub fn default_campaign() -> FaultConfig {
        FaultConfig { seed: 0xFA17, rates: FaultRates::default_campaign() }
    }

    /// Parses `FMM_ENERGY_FAULTS` (see the module docs).  Returns `None`
    /// when the variable is unset, empty, `off`, or `0`.  Unknown keys
    /// and malformed values are ignored rather than fatal — a typo in an
    /// env var must not abort a measurement campaign.
    pub fn from_env() -> Option<FaultConfig> {
        Self::parse(&compat::env::raw("FMM_ENERGY_FAULTS")?)
    }

    /// Parses a `FMM_ENERGY_FAULTS`-style spec string.
    pub fn parse(spec: &str) -> Option<FaultConfig> {
        let spec = spec.trim();
        if spec.is_empty() || spec.eq_ignore_ascii_case("off") || spec == "0" {
            return None;
        }
        let mut cfg = FaultConfig { seed: 0xFA17, rates: FaultRates::off() };
        for token in spec.split(',') {
            let token = token.trim();
            if token.eq_ignore_ascii_case("default")
                || token.eq_ignore_ascii_case("on")
                || token == "1"
            {
                cfg.rates = FaultRates::default_campaign();
                continue;
            }
            let Some((key, value)) = token.split_once('=') else { continue };
            let (key, value) = (key.trim(), value.trim());
            if key == "seed" {
                if let Ok(s) = value.parse::<u64>() {
                    cfg.seed = s;
                }
                continue;
            }
            let Ok(x) = value.parse::<f64>() else { continue };
            let r = &mut cfg.rates;
            match key {
                "sample_dropout" => r.sample_dropout = x,
                "sample_clip" => r.sample_clip = x,
                "spike" => r.spike = x,
                "spike_mag" => r.spike_mag = x,
                "timestamp_jitter_rel" => r.timestamp_jitter_rel = x,
                "throttle" => r.throttle = x,
                "throttle_stretch" => r.throttle_stretch = x,
                "latch_fail" => r.latch_fail = x,
                "latch_neighbor" => r.latch_neighbor = x,
                _ => {}
            }
        }
        Some(cfg)
    }

    /// An injector for one component instance.  `stream` separates
    /// components sharing a config (e.g. per-setting device vs meter),
    /// so their fault draws are independent.
    pub fn injector(&self, stream: u64) -> FaultInjector {
        FaultInjector { key: mix64(self.seed ^ mix64(stream ^ 0x171E_C704)), rates: self.rates }
    }

    /// A deterministic 64-bit digest of the whole campaign (seed and
    /// every rate, by bit pattern).  Two configs hash equal iff they
    /// corrupt the chain identically, which is what makes this usable
    /// as the fault-profile half of a fitted-model cache key.
    pub fn cache_key(&self) -> u64 {
        let r = &self.rates;
        let mut h = mix64(self.seed ^ 0xCAC4_EBE7);
        for bits in [
            r.sample_dropout.to_bits(),
            r.sample_clip.to_bits(),
            r.spike.to_bits(),
            r.spike_mag.to_bits(),
            r.timestamp_jitter_rel.to_bits(),
            r.throttle.to_bits(),
            r.throttle_stretch.to_bits(),
            r.latch_fail.to_bits(),
            r.latch_neighbor.to_bits(),
        ] {
            h = mix64(h ^ bits);
        }
        h
    }
}

// Salt constants: one hash channel per fault mechanism.
const SALT_DROPOUT: u64 = 1;
const SALT_CLIP: u64 = 2;
const SALT_SPIKE: u64 = 3;
const SALT_SPIKE_MAG: u64 = 4;
const SALT_TJITTER: u64 = 5;
const SALT_THROTTLE: u64 = 6;
const SALT_THROTTLE_MAG: u64 = 7;
const SALT_LATCH: u64 = 8;
const SALT_LATCH_DIR: u64 = 9;

/// The outcome of one DVFS latch attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatchOutcome {
    /// The requested setting applied.
    Applied,
    /// The write was lost; the previous setting remains active.
    Stuck,
    /// The write latched to a neighboring table entry.
    Neighbor(Setting),
}

/// A stateless, copyable fault source for one component instance.
///
/// All methods are `&self` and keyed purely by their index arguments —
/// see the module docs for why that is what makes the corruption
/// bitwise-reproducible across thread counts and retries.
#[derive(Debug, Clone, Copy)]
pub struct FaultInjector {
    key: u64,
    rates: FaultRates,
}

impl FaultInjector {
    /// The rates this injector fires at.
    pub fn rates(&self) -> &FaultRates {
        &self.rates
    }

    /// A uniform draw in `[0, 1)` keyed by `(salt, a, b)`.
    fn unit(&self, salt: u64, a: u64, b: u64) -> f64 {
        let h = mix64(
            self.key
                ^ mix64(
                    salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        ^ mix64(a)
                        ^ mix64(b.wrapping_mul(0xBF58_476D_1CE4_E5B9)),
                ),
        );
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Corrupts one ADC sample.  Returns `None` when the sample is
    /// dropped; otherwise the (possibly spiked or clipped) value.
    /// `meas_idx` counts measurements on the owning meter, `sample_idx`
    /// the sample within the measurement.
    pub fn corrupt_sample(
        &self,
        meas_idx: u64,
        sample_idx: u64,
        sample_w: f64,
        full_scale_w: f64,
    ) -> Option<f64> {
        if self.unit(SALT_DROPOUT, meas_idx, sample_idx) < self.rates.sample_dropout {
            return None;
        }
        if self.unit(SALT_CLIP, meas_idx, sample_idx) < self.rates.sample_clip {
            return Some(full_scale_w);
        }
        if self.unit(SALT_SPIKE, meas_idx, sample_idx) < self.rates.spike {
            let mag = self.rates.spike_mag * self.unit(SALT_SPIKE_MAG, meas_idx, sample_idx);
            return Some(sample_w * (1.0 + mag));
        }
        Some(sample_w)
    }

    /// Multiplicative host-timestamp jitter for measurement `meas_idx`.
    pub fn timestamp_jitter(&self, meas_idx: u64) -> f64 {
        if self.rates.timestamp_jitter_rel <= 0.0 {
            return 1.0;
        }
        // A cheap symmetric triangular deviate: mean 0, bounded support.
        let u = self.unit(SALT_TJITTER, meas_idx, 0) + self.unit(SALT_TJITTER, meas_idx, 1) - 1.0;
        (1.0 + self.rates.timestamp_jitter_rel * 2.0 * u).max(0.5)
    }

    /// Duration-stretch multiplier when execution `exec_idx` lands in a
    /// thermal-throttle episode (`> 1`), else `None`.
    pub fn throttle_episode(&self, exec_idx: u64) -> Option<f64> {
        if self.unit(SALT_THROTTLE, exec_idx, 0) >= self.rates.throttle {
            return None;
        }
        // Stretch in [0.3, 1.0]·ceiling: always far outside the sweep
        // gate's tolerance band, so throttled runs are always retried.
        let u = 0.3 + 0.7 * self.unit(SALT_THROTTLE_MAG, exec_idx, 0);
        Some(1.0 + self.rates.throttle_stretch * u)
    }

    /// The outcome of DVFS latch attempt `attempt` for `requested`.
    pub fn latch_outcome(&self, attempt: u64, requested: Setting) -> LatchOutcome {
        let u = self.unit(SALT_LATCH, attempt, 0);
        if u < self.rates.latch_fail {
            return LatchOutcome::Stuck;
        }
        if u < self.rates.latch_fail + self.rates.latch_neighbor {
            return LatchOutcome::Neighbor(neighbor_setting(
                requested,
                self.unit(SALT_LATCH_DIR, attempt, 0),
            ));
        }
        LatchOutcome::Applied
    }
}

/// A neighboring DVFS table entry (core or mem index off by one),
/// selected by a uniform draw and clamped into range.
fn neighbor_setting(s: Setting, u: f64) -> Setting {
    let n_core = core_points().len();
    let n_mem = mem_points().len();
    // Four directions; fall through to the opposite one at table edges.
    let dir = (u * 4.0) as usize;
    let (core, mem) = match dir {
        0 if s.core_idx + 1 < n_core => (s.core_idx + 1, s.mem_idx),
        0 => (s.core_idx - 1, s.mem_idx),
        1 if s.core_idx > 0 => (s.core_idx - 1, s.mem_idx),
        1 => (s.core_idx + 1, s.mem_idx),
        2 if s.mem_idx + 1 < n_mem => (s.core_idx, s.mem_idx + 1),
        2 => (s.core_idx, s.mem_idx - 1),
        _ if s.mem_idx > 0 => (s.core_idx, s.mem_idx - 1),
        _ => (s.core_idx, s.mem_idx + 1),
    };
    Setting::new(core, mem)
}

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn injector() -> FaultInjector {
        FaultConfig::default_campaign().injector(0)
    }

    #[test]
    fn draws_are_stateless_and_reproducible() {
        let a = injector();
        let b = injector();
        for meas in 0..4u64 {
            for i in 0..200u64 {
                assert_eq!(
                    a.corrupt_sample(meas, i, 8.0, 15.0),
                    b.corrupt_sample(meas, i, 8.0, 15.0)
                );
            }
        }
        // Order independence: re-querying an earlier index gives the
        // same answer after later draws (no stream state).
        let first = a.corrupt_sample(0, 0, 8.0, 15.0);
        let _ = a.corrupt_sample(3, 199, 8.0, 15.0);
        assert_eq!(a.corrupt_sample(0, 0, 8.0, 15.0), first);
    }

    #[test]
    fn streams_are_independent() {
        let cfg = FaultConfig::default_campaign();
        let a = cfg.injector(1);
        let b = cfg.injector(2);
        let differs = (0..512u64)
            .filter(|&i| a.unit(SALT_DROPOUT, 0, i) != b.unit(SALT_DROPOUT, 0, i))
            .count();
        assert!(differs > 500, "streams must decorrelate: {differs}");
    }

    #[test]
    fn rates_are_approximately_honored() {
        let inj = injector();
        let n = 50_000u64;
        let dropped =
            (0..n).filter(|&i| inj.corrupt_sample(0, i, 8.0, 15.0).is_none()).count() as f64;
        let rate = dropped / n as f64;
        assert!((rate - 0.02).abs() < 0.005, "dropout rate {rate}");
        let throttled = (0..n).filter(|&i| inj.throttle_episode(i).is_some()).count() as f64;
        let rate = throttled / n as f64;
        assert!((rate - 0.02).abs() < 0.005, "throttle rate {rate}");
    }

    #[test]
    fn clip_saturates_and_spike_amplifies() {
        let inj =
            FaultConfig { seed: 1, rates: FaultRates { sample_clip: 1.0, ..FaultRates::off() } }
                .injector(0);
        assert_eq!(inj.corrupt_sample(0, 0, 8.0, 15.0), Some(15.0));
        let inj = FaultConfig {
            seed: 1,
            rates: FaultRates { spike: 1.0, spike_mag: 1.0, ..FaultRates::off() },
        }
        .injector(0);
        let v = inj.corrupt_sample(0, 0, 8.0, 15.0).unwrap();
        assert!(v >= 8.0 && v <= 16.0, "spiked sample {v}");
    }

    #[test]
    fn latch_outcomes_cover_all_variants_and_neighbors_are_adjacent() {
        let inj = injector();
        let requested = Setting::from_frequencies(612.0, 528.0).unwrap();
        let mut stuck = 0;
        let mut neighbor = 0;
        let mut applied = 0;
        for attempt in 0..10_000u64 {
            match inj.latch_outcome(attempt, requested) {
                LatchOutcome::Stuck => stuck += 1,
                LatchOutcome::Applied => applied += 1,
                LatchOutcome::Neighbor(s) => {
                    neighbor += 1;
                    let d_core = s.core_idx.abs_diff(requested.core_idx);
                    let d_mem = s.mem_idx.abs_diff(requested.mem_idx);
                    assert_eq!(d_core + d_mem, 1, "neighbor must differ by one index");
                }
            }
        }
        assert!(stuck > 250 && neighbor > 100 && applied > 9000, "{stuck}/{neighbor}/{applied}");
    }

    #[test]
    fn neighbor_clamps_at_table_edges() {
        let corner = Setting::new(0, 0);
        for u in [0.05, 0.3, 0.55, 0.8] {
            let s = neighbor_setting(corner, u);
            assert!(s.core_idx + s.mem_idx == 1, "{s:?}");
        }
    }

    #[test]
    fn env_spec_parses() {
        assert!(FaultConfig::parse("off").is_none());
        assert!(FaultConfig::parse("").is_none());
        let cfg = FaultConfig::parse("default").unwrap();
        assert_eq!(cfg.rates, FaultRates::default_campaign());
        assert_eq!(cfg.seed, 0xFA17);
        let cfg = FaultConfig::parse("default,latch_fail=0.5,seed=9").unwrap();
        assert_eq!(cfg.rates.latch_fail, 0.5);
        assert_eq!(cfg.rates.sample_dropout, FaultRates::default_campaign().sample_dropout);
        assert_eq!(cfg.seed, 9);
        let cfg = FaultConfig::parse("sample_dropout=0.1,bogus=1,alsobad").unwrap();
        assert_eq!(cfg.rates.sample_dropout, 0.1);
        assert_eq!(cfg.rates.throttle, 0.0);
    }

    #[test]
    fn cache_key_separates_campaigns_and_is_stable() {
        let a = FaultConfig::default_campaign();
        assert_eq!(a.cache_key(), FaultConfig::default_campaign().cache_key());
        let reseeded = FaultConfig { seed: 1, ..a };
        assert_ne!(a.cache_key(), reseeded.cache_key(), "seed is part of the key");
        let retuned = FaultConfig { rates: FaultRates { latch_fail: 0.5, ..a.rates }, ..a };
        assert_ne!(a.cache_key(), retuned.cache_key(), "rates are part of the key");
    }

    #[test]
    fn timestamp_jitter_is_bounded_and_centered() {
        let inj = injector();
        let js: Vec<f64> = (0..10_000).map(|i| inj.timestamp_jitter(i)).collect();
        let mean = js.iter().sum::<f64>() / js.len() as f64;
        assert!((mean - 1.0).abs() < 1e-3, "mean {mean}");
        for j in js {
            assert!((j - 1.0).abs() <= 0.004 + 1e-12, "jitter {j}");
        }
    }
}
