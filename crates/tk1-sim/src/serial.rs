//! JSON encode/decode for the platform's data types.
//!
//! Replaces the former `serde` derives with explicit
//! [`ToJson`]/[`FromJson`] impls over `compat::json`.  Every impl is a
//! lossless round trip: floats use shortest round-trip formatting, so
//! `decode(encode(x)) == x` holds bitwise — the property the snapshot
//! tests rely on.

use crate::dvfs::{DvfsPoint, OperatingPoint, Setting};
use crate::kernel::KernelProfile;
use crate::ops::{OpClass, OpVector, ALL_CLASSES};
use compat::json::{FromJson, Json, JsonError, ToJson};

impl ToJson for DvfsPoint {
    fn to_json(&self) -> Json {
        Json::obj([
            ("freq_mhz", Json::Num(self.freq_mhz)),
            ("voltage_v", Json::Num(self.voltage_v)),
        ])
    }
}

impl FromJson for DvfsPoint {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(DvfsPoint {
            freq_mhz: v.field("freq_mhz")?.as_f64()?,
            voltage_v: v.field("voltage_v")?.as_f64()?,
        })
    }
}

impl ToJson for Setting {
    fn to_json(&self) -> Json {
        Json::obj([
            ("core_idx", Json::Num(self.core_idx as f64)),
            ("mem_idx", Json::Num(self.mem_idx as f64)),
        ])
    }
}

impl FromJson for Setting {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        // Goes through the validating constructor so a corrupted
        // snapshot cannot produce an out-of-range setting.
        let core_idx = v.field("core_idx")?.as_usize()?;
        let mem_idx = v.field("mem_idx")?.as_usize()?;
        if core_idx >= crate::dvfs::core_points().len() {
            return Err(JsonError::msg(format!("core_idx {core_idx} out of range")));
        }
        if mem_idx >= crate::dvfs::mem_points().len() {
            return Err(JsonError::msg(format!("mem_idx {mem_idx} out of range")));
        }
        Ok(Setting::new(core_idx, mem_idx))
    }
}

impl ToJson for OperatingPoint {
    fn to_json(&self) -> Json {
        Json::obj([("core", self.core.to_json()), ("mem", self.mem.to_json())])
    }
}

impl FromJson for OperatingPoint {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(OperatingPoint {
            core: DvfsPoint::from_json(v.field("core")?)?,
            mem: DvfsPoint::from_json(v.field("mem")?)?,
        })
    }
}

impl ToJson for OpClass {
    fn to_json(&self) -> Json {
        Json::Str(self.name().to_string())
    }
}

impl FromJson for OpClass {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let name = v.as_str()?;
        ALL_CLASSES
            .into_iter()
            .find(|c| c.name() == name)
            .ok_or_else(|| JsonError::msg(format!("unknown op class `{name}`")))
    }
}

impl ToJson for OpVector {
    fn to_json(&self) -> Json {
        Json::Obj(
            self.iter()
                .map(|(class, count)| (class.name().to_string(), Json::Num(count)))
                .collect(),
        )
    }
}

impl FromJson for OpVector {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let mut out = OpVector::zero();
        match v {
            Json::Obj(pairs) => {
                for (name, count) in pairs {
                    let class = OpClass::from_json(&Json::Str(name.clone()))?;
                    out.set(class, count.as_f64()?);
                }
                Ok(out)
            }
            other => Err(JsonError::msg(format!("expected op-vector object, got {other:?}"))),
        }
    }
}

impl ToJson for KernelProfile {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("ops", self.ops.to_json()),
            ("utilization", Json::Num(self.utilization)),
            ("launches", Json::Num(self.launches as f64)),
        ])
    }
}

impl FromJson for KernelProfile {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let launches = v.field("launches")?.as_usize()?;
        Ok(KernelProfile {
            name: v.field("name")?.as_str()?.to_string(),
            ops: OpVector::from_json(v.field("ops")?)?,
            utilization: v.field("utilization")?.as_f64()?,
            launches: u32::try_from(launches)
                .map_err(|_| JsonError::msg(format!("launches {launches} out of range")))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dvfs_types_round_trip() {
        let op = OperatingPoint {
            core: DvfsPoint { freq_mhz: 852.0, voltage_v: 1.05 },
            mem: DvfsPoint { freq_mhz: 924.0, voltage_v: 1.1 },
        };
        let back = OperatingPoint::from_json_text(&op.to_json_text()).unwrap();
        assert_eq!(back.core.freq_mhz.to_bits(), op.core.freq_mhz.to_bits());
        assert_eq!(back.mem.voltage_v.to_bits(), op.mem.voltage_v.to_bits());

        let s = Setting::new(11, 3);
        assert_eq!(Setting::from_json_text(&s.to_json_text()).unwrap(), s);
    }

    #[test]
    fn setting_decode_validates_ranges() {
        assert!(Setting::from_json_text(r#"{"core_idx": 99, "mem_idx": 0}"#).is_err());
        assert!(Setting::from_json_text(r#"{"core_idx": -1, "mem_idx": 0}"#).is_err());
    }

    #[test]
    fn op_vector_round_trips_bitwise() {
        let v = OpVector::from_pairs(&[
            (OpClass::FlopSp, 1.0 / 3.0),
            (OpClass::Dram, 6.02e23),
            (OpClass::L2, 1e-300),
        ]);
        let back = OpVector::from_json_text(&v.to_json_text()).unwrap();
        for (class, count) in v.iter() {
            assert_eq!(back.get(class).to_bits(), count.to_bits(), "{class:?}");
        }
    }

    #[test]
    fn kernel_profile_round_trips() {
        let k = KernelProfile::new("p2p", OpVector::from_pairs(&[(OpClass::FlopSp, 27.0)]));
        let back = KernelProfile::from_json_text(&k.to_json_text()).unwrap();
        assert_eq!(back.name, k.name);
        assert_eq!(back.utilization, k.utilization);
        assert_eq!(back.launches, k.launches);
        assert_eq!(back.ops, k.ops);
    }

    #[test]
    fn unknown_op_class_rejected() {
        assert!(OpVector::from_json_text(r#"{"warp": 1.0}"#).is_err());
    }
}
