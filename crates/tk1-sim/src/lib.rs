//! A simulated NVIDIA Jetson TK1 (Tegra K1) platform.
//!
//! The paper instantiates and validates its DVFS-aware energy model on a
//! physical Jetson TK1 development board measured with a PowerMon 2 inline
//! power meter.  Neither is available here, so this crate provides a
//! synthetic equivalent that exercises the same code paths:
//!
//! * [`dvfs`] — the board's DVFS operating points: 15 GPU core
//!   frequency/voltage pairs and 7 memory pairs (105 permutations), with
//!   the frequency→voltage coupling the paper describes ("changing the
//!   frequency automatically changes the voltage to a predetermined
//!   value").
//! * [`ops`] — the operation taxonomy of the model: single/double
//!   precision and integer instructions, and loads from shared memory, L1,
//!   L2 and DRAM.
//! * [`kernel`] — a kernel descriptor: operation counts plus an achieved
//!   utilization, which is all the timing/power models need.
//! * [`timing`] — a roofline-style execution-time model (per-class
//!   throughputs scaled by frequency, bound resource dominates).
//! * [`power`] — the **hidden ground truth** power model: dynamic power
//!   `ĉ0·V²·f`-shaped per-op energies, leakage `c1·V`, and constant
//!   `P_misc`, with a small activity nonlinearity and measurement noise so
//!   that model fitting faces an honest estimation problem.
//! * [`device`] — the executable device: set an operating point, execute a
//!   kernel, obtain an [`device::Execution`] whose instantaneous power a
//!   power meter can sample.
//!
//! The ground-truth constants are calibrated so that the *derived*
//! per-operation energies reproduce the paper's Table I; the fitting
//! pipeline in `dvfs-energy-model` never reads them — it only sees
//! (operation counts, execution time, sampled power), exactly the
//! observables the authors had.

pub mod device;
pub mod dvfs;
pub mod faults;
pub mod governor;
pub mod kernel;
pub mod ops;
pub mod power;
pub mod rng;
pub mod serial;
pub mod timing;

pub use device::{Device, Execution};
pub use dvfs::{core_points, mem_points, DvfsPoint, OperatingPoint, Setting};
pub use faults::{FaultConfig, FaultInjector, FaultRates, LatchOutcome};
pub use governor::{EnergyEstimates, Governor, GovernorRun};
pub use kernel::KernelProfile;
pub use ops::{OpClass, OpVector, ALL_CLASSES, COMPUTE_CLASSES, MEMORY_CLASSES, NUM_OP_CLASSES};
pub use power::{EnergyComponents, TruthConstants};
pub use timing::{MachineSpec, TimingModel};
