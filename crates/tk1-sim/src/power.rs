//! The simulator's hidden ground-truth power/energy model.
//!
//! This is the "physics" of the simulated board — the thing the
//! energy-roofline model in `dvfs-energy-model` tries to *estimate* from
//! microbenchmark measurements.  Its structure follows the classic CMOS
//! relations the paper starts from (its equations 1–4):
//!
//! * dynamic energy per operation `ε_k = ĉ0,k · V²` (with `V` the voltage
//!   of the domain the operation lives in), perturbed by a small
//!   frequency-dependent activity nonlinearity that the fitted model does
//!   not capture — this is what gives cross-validation a realistic,
//!   non-zero error floor;
//! * leakage `c1,proc·Vproc + c1,mem·Vmem`, amplified by a steady-state
//!   thermal feedback (hotter silicon leaks more);
//! * an operation-independent `P_misc` for peripherals.
//!
//! Default constants are calibrated so the *derived* per-op energies
//! reproduce the paper's Table I (e.g. SP = 29.0 pJ at 1.030 V,
//! 16.2 pJ at 0.770 V; DRAM = 377.0 pJ at 1.010 V).

use crate::dvfs::Setting;
use crate::ops::{OpClass, OpVector, ALL_CLASSES, NUM_OP_CLASSES};

/// Ground-truth constants of the simulated hardware.
#[derive(Debug, Clone)]
pub struct TruthConstants {
    /// `ĉ0` per op class, in pJ/V² (index = [`OpClass::index`]).
    pub c0_pj_per_v2: [f64; NUM_OP_CLASSES],
    /// Processor leakage coefficient, W per volt.
    pub c1_proc_w_per_v: f64,
    /// Memory leakage coefficient, W per volt.
    pub c1_mem_w_per_v: f64,
    /// Operation-independent constant power, W.
    pub p_misc_w: f64,
    /// Relative amplitude of the activity-factor nonlinearity: per-op
    /// energy is multiplied by `1 + amp·s_k·(x − ½) + curve·(x − ½)²`
    /// with `x = f/f_max` and `s_k = +1` for core-pipeline ops, `−1` for
    /// memory-system ops (clock gating behaves differently in the two
    /// domains).  The fitted model assumes `ε` depends on voltage only,
    /// so this term is irreducible model error — the paper's
    /// cross-validation error floor, largest when extrapolating to the
    /// extreme low-frequency settings (as in its 16-fold CV).
    pub nonlinearity_amp: f64,
    /// Quadratic term of the activity nonlinearity (see
    /// [`TruthConstants::nonlinearity_amp`]).
    pub nonlinearity_curve: f64,
    /// Thermal leakage feedback: leakage multiplier `1 + κ·(Θ − Θ_ref)`.
    pub thermal_kappa_per_k: f64,
    /// Thermal resistance junction→ambient, K/W.
    pub thermal_resistance_k_per_w: f64,
    /// Ambient temperature, °C.
    pub ambient_c: f64,
    /// Reference temperature at which `c1` was specified, °C.
    pub reference_temp_c: f64,
}

impl Default for TruthConstants {
    fn default() -> Self {
        TruthConstants {
            // Calibrated from Table I: ε(V) = ĉ0·V², so ĉ0 = ε(1.030 V)/1.030²
            // for core-domain ops and ε(1.010 V)/1.010² for DRAM.
            c0_pj_per_v2: [
                27.335, // SP   -> 29.0 pJ at 1.030 V
                131.12, // DP   -> 139.1 pJ
                56.56,  // INT  -> 60.0 pJ
                33.37,  // SM   -> 35.4 pJ
                33.37,  // L1 (same SRAM array as SM on Kepler)
                85.02,  // L2   -> 90.2 pJ
                369.57, // DRAM -> 377.0 pJ at 1.010 V
            ],
            c1_proc_w_per_v: 2.69,
            c1_mem_w_per_v: 3.85,
            p_misc_w: 0.126,
            nonlinearity_amp: 0.05,
            nonlinearity_curve: 0.06,
            thermal_kappa_per_k: 0.002,
            thermal_resistance_k_per_w: 3.0,
            ambient_c: 27.0,
            reference_temp_c: 45.0,
        }
    }
}

impl TruthConstants {
    /// A noiseless, perfectly linear variant (for pipeline sanity tests:
    /// fitting against this truth must recover the constants exactly).
    pub fn ideal() -> Self {
        TruthConstants {
            nonlinearity_amp: 0.0,
            nonlinearity_curve: 0.0,
            thermal_kappa_per_k: 0.0,
            ..TruthConstants::default()
        }
    }

    /// True dynamic energy of one operation of `class` at `setting`, in
    /// joules (including the activity nonlinearity).
    pub fn energy_per_op_j(&self, class: OpClass, setting: Setting) -> f64 {
        let op = setting.operating_point();
        let (v, f, fmax) = if class.is_mem_domain() {
            (op.mem.voltage_v, op.mem.freq_mhz, 924.0)
        } else {
            (op.core.voltage_v, op.core.freq_mhz, 852.0)
        };
        let base = self.c0_pj_per_v2[class.index()] * 1e-12 * v * v;
        let x = f / fmax - 0.5;
        let sign = if class.is_compute() { 1.0 } else { -1.0 };
        base * (1.0 + self.nonlinearity_amp * sign * x + self.nonlinearity_curve * x * x)
    }

    /// Nominal (reference-temperature) constant power at `setting`, W.
    pub fn nominal_constant_power_w(&self, setting: Setting) -> f64 {
        let op = setting.operating_point();
        self.c1_proc_w_per_v * op.core.voltage_v
            + self.c1_mem_w_per_v * op.mem.voltage_v
            + self.p_misc_w
    }

    /// Constant power including the thermal leakage feedback, solved at
    /// the thermal steady state for a given total-power estimate.
    ///
    /// Steady state: `Θ = ambient + R_th · P_total`, and leakage scales by
    /// `1 + κ(Θ − Θ_ref)`.  The fixed point is solved by a few Picard
    /// iterations (κ·R_th ≪ 1, so this converges immediately).
    pub fn constant_power_w(&self, setting: Setting, dynamic_power_w: f64) -> f64 {
        let nominal_leak = self.nominal_constant_power_w(setting) - self.p_misc_w;
        let mut leak = nominal_leak;
        for _ in 0..8 {
            let total = dynamic_power_w + leak + self.p_misc_w;
            let theta = self.ambient_c + self.thermal_resistance_k_per_w * total;
            leak =
                nominal_leak * (1.0 + self.thermal_kappa_per_k * (theta - self.reference_temp_c));
        }
        leak + self.p_misc_w
    }

    /// True dynamic energy of a whole op vector at `setting`, J.
    pub fn dynamic_energy_j(&self, ops: &OpVector, setting: Setting) -> f64 {
        ALL_CLASSES.iter().map(|&c| ops.get(c) * self.energy_per_op_j(c, setting)).sum()
    }
}

/// Ground-truth energy decomposition of one execution (diagnostics and
/// figure generation only — never used for fitting).
#[derive(Debug, Clone)]
pub struct EnergyComponents {
    /// Dynamic energy per op class, J.
    pub dynamic_j: [f64; NUM_OP_CLASSES],
    /// Leakage + misc energy over the execution, J.
    pub constant_j: f64,
}

impl EnergyComponents {
    /// Total energy, J.
    pub fn total_j(&self) -> f64 {
        self.dynamic_j.iter().sum::<f64>() + self.constant_j
    }

    /// Total dynamic (computation + data) energy, J.
    pub fn dynamic_total_j(&self) -> f64 {
        self.dynamic_j.iter().sum()
    }

    /// Dynamic energy of the compute classes, J.
    pub fn computation_j(&self) -> f64 {
        crate::ops::COMPUTE_CLASSES.iter().map(|&c| self.dynamic_j[c.index()]).sum()
    }

    /// Dynamic energy of the memory classes, J.
    pub fn data_j(&self) -> f64 {
        crate::ops::MEMORY_CLASSES.iter().map(|&c| self.dynamic_j[c.index()]).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table1_setting(core_mhz: f64, mem_mhz: f64) -> Setting {
        Setting::from_frequencies(core_mhz, mem_mhz).unwrap()
    }

    #[test]
    fn reproduces_table1_sp_energies() {
        // With the nonlinearity disabled, per-op energies must match the
        // paper's Table I at its tabulated settings.
        let truth = TruthConstants::ideal();
        let cases = [
            (852.0, OpClass::FlopSp, 29.0),
            (396.0, OpClass::FlopSp, 16.2),
            (756.0, OpClass::FlopSp, 24.7),
            (540.0, OpClass::FlopSp, 19.3),
            (852.0, OpClass::FlopDp, 139.1),
            (648.0, OpClass::FlopDp, 103.8),
            (852.0, OpClass::Int, 60.0),
            (852.0, OpClass::Shared, 35.4),
            (852.0, OpClass::L2, 90.2),
        ];
        for (core, class, expected_pj) in cases {
            let e = truth.energy_per_op_j(class, table1_setting(core, 924.0)) * 1e12;
            assert!(
                (e - expected_pj).abs() < 0.1,
                "{class:?} at {core} MHz: {e:.2} pJ != {expected_pj} pJ"
            );
        }
    }

    #[test]
    fn reproduces_table1_dram_energies() {
        let truth = TruthConstants::ideal();
        let cases = [(924.0, 377.0), (528.0, 286.2), (204.0, 236.5), (68.0, 236.5)];
        for (mem, expected_pj) in cases {
            let e = truth.energy_per_op_j(OpClass::Dram, table1_setting(852.0, mem)) * 1e12;
            assert!((e - expected_pj).abs() < 0.5, "DRAM at {mem} MHz: {e:.2} != {expected_pj}");
        }
    }

    #[test]
    fn reproduces_table1_constant_power_shape() {
        // Nominal constant power must land within ~0.15 W of Table I's
        // column for the training rows (the paper's own values carry
        // measurement noise of similar size).
        let truth = TruthConstants::ideal();
        let cases = [
            (852.0, 924.0, 6.8),
            (396.0, 924.0, 6.1),
            (852.0, 528.0, 6.3),
            (648.0, 528.0, 5.9),
            (396.0, 528.0, 5.6),
            (852.0, 204.0, 6.0),
            (648.0, 204.0, 5.6),
            (396.0, 204.0, 5.2),
        ];
        for (core, mem, expected_w) in cases {
            let p = truth.nominal_constant_power_w(table1_setting(core, mem));
            assert!(
                (p - expected_w).abs() < 0.15,
                "π0 at {core}/{mem}: {p:.2} W != {expected_w} W"
            );
        }
    }

    #[test]
    fn energy_scales_with_v_squared() {
        let truth = TruthConstants::ideal();
        let hi = truth.energy_per_op_j(OpClass::FlopSp, table1_setting(852.0, 924.0));
        let lo = truth.energy_per_op_j(OpClass::FlopSp, table1_setting(396.0, 924.0));
        let ratio = (1.030f64 / 0.770).powi(2);
        assert!((hi / lo - ratio).abs() < 1e-12);
    }

    #[test]
    fn nonlinearity_perturbs_by_a_few_percent() {
        let truth = TruthConstants::default();
        let ideal = TruthConstants::ideal();
        let s = table1_setting(852.0, 924.0);
        let e = truth.energy_per_op_j(OpClass::FlopSp, s);
        let e0 = ideal.energy_per_op_j(OpClass::FlopSp, s);
        let rel = (e / e0 - 1.0).abs();
        assert!(rel > 0.01 && rel < 0.25, "nonlinearity is a structural few-to-ten percent: {rel}");
    }

    #[test]
    fn thermal_feedback_raises_leakage_under_load() {
        let truth = TruthConstants::default();
        let s = table1_setting(852.0, 924.0);
        let idle = truth.constant_power_w(s, 0.0);
        let loaded = truth.constant_power_w(s, 5.0);
        assert!(loaded > idle, "leakage grows with temperature");
        assert!((loaded - idle) / idle < 0.1, "but only by a few percent");
    }

    #[test]
    fn dynamic_energy_sums_over_classes() {
        let truth = TruthConstants::ideal();
        let s = table1_setting(852.0, 924.0);
        let ops = OpVector::from_pairs(&[(OpClass::FlopSp, 1e9), (OpClass::Dram, 1e8)]);
        let e = truth.dynamic_energy_j(&ops, s);
        let expected = 1e9 * 29.0e-12 + 1e8 * 377.0e-12;
        assert!((e - expected).abs() / expected < 1e-3);
    }

    #[test]
    fn components_partition_total() {
        let c =
            EnergyComponents { dynamic_j: [1.0, 2.0, 3.0, 0.5, 0.25, 0.5, 4.0], constant_j: 10.0 };
        assert_eq!(c.total_j(), 21.25);
        assert_eq!(c.computation_j(), 6.0);
        assert_eq!(c.data_j(), 5.25);
        assert_eq!(c.dynamic_total_j(), 11.25);
    }
}
