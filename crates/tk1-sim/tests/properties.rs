//! Property-based tests for the platform simulator's physical
//! invariants: energies and times must respond to frequency, voltage and
//! workload the way the underlying physics says they must, for *every*
//! workload and setting.

use compat::prop::prelude::*;
use tk1_sim::{Device, KernelProfile, OpClass, OpVector, Setting, TimingModel};

fn op_vector() -> impl Strategy<Value = OpVector> {
    (
        0.0f64..1e10,
        0.0f64..1e9,
        0.0f64..1e10,
        0.0f64..1e9,
        0.0f64..1e9,
        0.0f64..1e9,
        1.0f64..1e9, // at least some DRAM traffic keeps kernels non-empty
    )
        .prop_map(|(sp, dp, int, sm, l1, l2, dram)| {
            OpVector::from_pairs(&[
                (OpClass::FlopSp, sp),
                (OpClass::FlopDp, dp),
                (OpClass::Int, int),
                (OpClass::Shared, sm),
                (OpClass::L1, l1),
                (OpClass::L2, l2),
                (OpClass::Dram, dram),
            ])
        })
}

fn setting() -> impl Strategy<Value = Setting> {
    (0usize..15, 0usize..7).prop_map(|(c, m)| Setting::new(c, m))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn time_never_improves_at_lower_frequencies(ops in op_vector(), s in setting()) {
        let tm = TimingModel::default();
        let k = KernelProfile::new("k", ops);
        let t = tm.execution_time(&k, s).total_s;
        // Dropping either domain's frequency can only slow the kernel.
        if s.core_idx > 0 {
            let slower = Setting::new(s.core_idx - 1, s.mem_idx);
            prop_assert!(tm.execution_time(&k, slower).total_s >= t - 1e-15);
        }
        if s.mem_idx > 0 {
            let slower = Setting::new(s.core_idx, s.mem_idx - 1);
            prop_assert!(tm.execution_time(&k, slower).total_s >= t - 1e-15);
        }
    }

    #[test]
    fn time_equals_max_of_resource_times(ops in op_vector(), s in setting()) {
        let tm = TimingModel::default();
        let k = KernelProfile::new("k", ops);
        let b = tm.execution_time(&k, s);
        let max = b.fp_s.max(b.int_s).max(b.sm_l1_s).max(b.l2_s).max(b.dram_s);
        prop_assert!((b.total_s - (max / k.utilization + b.overhead_s)).abs() < 1e-12);
    }

    #[test]
    fn true_energy_is_positive_and_consistent(ops in op_vector(), s in setting(), seed in 0u64..500) {
        let mut dev = Device::new(seed);
        dev.set_operating_point(s);
        let k = KernelProfile::new(format!("k{seed}"), ops);
        let e = dev.execute(&k);
        prop_assert!(e.duration_s > 0.0);
        prop_assert!(e.true_energy_j() > 0.0);
        prop_assert!((e.avg_power_w * e.duration_s - e.true_energy_j()).abs() < 1e-9);
        // Board power stays within the supply's envelope.
        prop_assert!(e.avg_power_w > 2.0 && e.avg_power_w < 40.0, "{} W", e.avg_power_w);
    }

    #[test]
    fn dynamic_energy_scales_with_voltage(ops in op_vector()) {
        // On the noiseless device, core-domain dynamic energy at a higher
        // core voltage (same memory setting) is strictly larger.
        let truth = tk1_sim::TruthConstants::ideal();
        let lo = Setting::from_frequencies(396.0, 528.0).unwrap();
        let hi = Setting::from_frequencies(852.0, 528.0).unwrap();
        for class in [OpClass::FlopSp, OpClass::FlopDp, OpClass::Int, OpClass::L2] {
            if ops.get(class) > 0.0 {
                prop_assert!(truth.energy_per_op_j(class, hi) > truth.energy_per_op_j(class, lo));
            }
        }
        // DRAM energy is independent of the core setting.
        prop_assert_eq!(
            truth.energy_per_op_j(OpClass::Dram, hi),
            truth.energy_per_op_j(OpClass::Dram, lo)
        );
    }

    #[test]
    fn execution_determinism_per_seed(ops in op_vector(), seed in 0u64..100) {
        let k = KernelProfile::new("det", ops);
        let mut a = Device::new(seed);
        let mut b = Device::new(seed);
        let ea = a.execute(&k);
        let eb = b.execute(&k);
        prop_assert_eq!(ea.duration_s, eb.duration_s);
        prop_assert_eq!(ea.true_energy_j(), eb.true_energy_j());
    }

    #[test]
    fn op_vector_accumulate_is_commutative(a in op_vector(), b in op_vector()) {
        let mut ab = a;
        ab.accumulate(&b);
        let mut ba = b;
        ba.accumulate(&a);
        for (class, count) in ab.iter() {
            prop_assert!((count - ba.get(class)).abs() < 1e-6 * count.max(1.0));
        }
        prop_assert!((ab.total_bytes() - a.total_bytes() - b.total_bytes()).abs()
            < 1e-6 * ab.total_bytes().max(1.0));
    }

    #[test]
    fn scaling_ops_scales_ideal_energy_linearly(ops in op_vector(), factor in 1.0f64..8.0) {
        let truth = tk1_sim::TruthConstants::ideal();
        let s = Setting::max_performance();
        let e1 = truth.dynamic_energy_j(&ops, s);
        let e2 = truth.dynamic_energy_j(&ops.scaled(factor), s);
        prop_assert!((e2 - factor * e1).abs() <= 1e-9 * e2.max(1e-12));
    }
}
