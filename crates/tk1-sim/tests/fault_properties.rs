//! Property tests for the seeded fault layer's core contract: every
//! fault draw is a *pure function* of `(seed, rates, stream, indices)`.
//! No injector method may consume hidden state, so corruption is
//! bitwise-reproducible regardless of call order, cloning, or which
//! thread happens to ask.

use compat::prop::prelude::*;
use tk1_sim::faults::{FaultConfig, FaultRates, LatchOutcome};
use tk1_sim::Setting;

fn campaign(seed: u64) -> FaultConfig {
    FaultConfig { seed, rates: FaultRates::default_campaign() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn corruption_is_a_pure_function_of_indices(
        seed in 0u64..1_000_000,
        stream in 0u64..256,
        meas in 0u64..64,
        sample in 0u64..4096,
        value in 0.1f64..20.0,
    ) {
        let a = campaign(seed).injector(stream);
        let b = campaign(seed).injector(stream);
        // Same draw twice from one injector, and once from an
        // independently-built twin: all three must agree bitwise.
        let x = a.corrupt_sample(meas, sample, value, 25.0);
        let y = a.corrupt_sample(meas, sample, value, 25.0);
        let z = b.corrupt_sample(meas, sample, value, 25.0);
        prop_assert_eq!(x.map(f64::to_bits), y.map(f64::to_bits));
        prop_assert_eq!(x.map(f64::to_bits), z.map(f64::to_bits));
        prop_assert_eq!(
            a.timestamp_jitter(meas).to_bits(),
            b.timestamp_jitter(meas).to_bits()
        );
        prop_assert_eq!(
            a.throttle_episode(meas).map(f64::to_bits),
            b.throttle_episode(meas).map(f64::to_bits)
        );
        let s = Setting::new(3, 2);
        prop_assert_eq!(a.latch_outcome(meas, s), b.latch_outcome(meas, s));
    }

    #[test]
    fn call_order_does_not_change_any_draw(
        seed in 0u64..1_000_000,
        stream in 0u64..256,
    ) {
        let inj = campaign(seed).injector(stream);
        // Forward and reverse sweeps over the same index grid.
        let forward: Vec<_> = (0..200u64)
            .map(|i| inj.corrupt_sample(i / 50, i % 50, 5.0, 25.0).map(f64::to_bits))
            .collect();
        let reverse: Vec<_> = (0..200u64)
            .rev()
            .map(|i| inj.corrupt_sample(i / 50, i % 50, 5.0, 25.0).map(f64::to_bits))
            .collect();
        let reversed_back: Vec<_> = reverse.into_iter().rev().collect();
        prop_assert_eq!(forward, reversed_back);
    }

    #[test]
    fn distinct_streams_decorrelate(seed in 0u64..1_000_000) {
        let cfg = campaign(seed);
        let a = cfg.injector(0);
        let b = cfg.injector(1);
        // Over 2000 draws at the default rates (~3% total fault rate),
        // two independent streams firing identically everywhere is
        // beyond astronomically unlikely.
        let differs = (0..2000u64).any(|i| {
            a.corrupt_sample(0, i, 5.0, 25.0).map(f64::to_bits)
                != b.corrupt_sample(0, i, 5.0, 25.0).map(f64::to_bits)
        });
        prop_assert!(differs, "streams 0 and 1 produced identical corruption");
    }

    #[test]
    fn zero_rates_are_a_perfect_identity(
        seed in 0u64..1_000_000,
        meas in 0u64..64,
        sample in 0u64..4096,
        value in 0.0f64..25.0,
    ) {
        let inj = FaultConfig { seed, rates: FaultRates::off() }.injector(7);
        prop_assert_eq!(
            inj.corrupt_sample(meas, sample, value, 25.0).map(f64::to_bits),
            Some(value.to_bits()),
            "off() must pass samples through untouched"
        );
        prop_assert_eq!(inj.timestamp_jitter(meas).to_bits(), 1.0f64.to_bits());
        prop_assert_eq!(inj.throttle_episode(meas), None);
        let s = Setting::new(5, 3);
        prop_assert_eq!(inj.latch_outcome(meas, s), LatchOutcome::Applied);
    }
}
