//! Criterion benchmarks for the experiment pipeline itself: the
//! microbenchmark sweep, the model fit, prediction, and the autotuner —
//! one bench per reproduced artifact's dominant cost, so `cargo bench`
//! exercises the full Table I / Table II / Figure 5 machinery.

use compat::bench::{criterion_group, criterion_main, Criterion};
use dvfs_bench::pipeline::{fig5_validation, fitted_model, fmm_profiles};
use dvfs_energy_model::fit_model;
use dvfs_microbench::{run_sweep, MicrobenchKind, SweepConfig};
use std::hint::black_box;
use tk1_sim::{OpClass, OpVector, Setting};

fn bench_sweep(c: &mut Criterion) {
    // Table I's data collection: 16 settings x 103 intensity points.
    // Pinned fault-free: benches measure the clean-path cost.
    let config = SweepConfig { faults: None, ..SweepConfig::default() };
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    group.bench_function("table1-dataset", |b| b.iter(|| run_sweep(black_box(&config))));
    group.finish();
}

fn bench_fit_and_predict(c: &mut Criterion) {
    let dataset = run_sweep(&SweepConfig { faults: None, ..SweepConfig::default() });
    c.bench_function("fit/nnls-824x9", |b| b.iter(|| fit_model(black_box(dataset.training()))));
    let model = fit_model(dataset.training()).model;
    let ops = OpVector::from_pairs(&[
        (OpClass::FlopDp, 1e10),
        (OpClass::Int, 1.2e10),
        (OpClass::L2, 1e8),
        (OpClass::Dram, 5e7),
    ]);
    c.bench_function("predict/single-kernel", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for setting in Setting::all() {
                acc += model.predict_energy_j(black_box(&ops), setting, 0.01);
            }
            acc
        })
    });
}

fn bench_autotune_family(c: &mut Criterion) {
    let (model, _) = fitted_model(42);
    let mut group = c.benchmark_group("autotune");
    group.sample_size(10);
    group.bench_function("l2-family-105-settings", |b| {
        b.iter(|| {
            dvfs_energy_model::autotune_microbenchmarks(black_box(&model), &[MicrobenchKind::L2], 7)
        })
    });
    group.finish();
}

fn bench_fig5(c: &mut Criterion) {
    // The 64-case FMM validation matrix at 1/16 scale (the profiles are
    // built once; the bench measures the measure-and-predict loop).
    let (model, _) = fitted_model(42);
    let profiles = fmm_profiles(4, 42);
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("validation-64-cases", |b| {
        b.iter(|| fig5_validation(black_box(&model), black_box(&profiles), 11))
    });
    group.finish();
}

criterion_group!(benches, bench_sweep, bench_fit_and_predict, bench_autotune_family, bench_fig5);
criterion_main!(benches);
