//! Criterion benchmarks for the FMM building blocks.
//!
//! These measure the reproduction's own compute kernels (tree build,
//! list construction, P2P, FFT M2L, full evaluation) — the pieces whose
//! balance the paper's `Q` parameter tunes.  The dense-vs-FFT M2L pair
//! is the A2 ablation from DESIGN.md: it shows the arithmetic-intensity
//! trade the V list makes.  The `scaling` group sweeps the pool width
//! over the 1/2/4/8-thread grid of the committed `BENCH_fmm.json`.

use compat::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use compat::rng::StdRng;
use kifmm::evaluator::{FmmPlan, M2lMethod};
use kifmm::{direct_sum, profile_plan, CostModel, FmmEvaluator, InteractionLists, Octree};
use std::hint::black_box;

fn cloud(n: usize, seed: u64) -> (Vec<[f64; 3]>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let pts = (0..n).map(|_| [rng.random(), rng.random(), rng.random()]).collect();
    let den = (0..n).map(|_| 2.0 * rng.random::<f64>() - 1.0).collect();
    (pts, den)
}

fn bench_tree_and_lists(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree");
    for &n in &[4096usize, 16384, 65536] {
        let (pts, den) = cloud(n, 1);
        group.bench_with_input(BenchmarkId::new("build", n), &n, |b, _| {
            b.iter(|| Octree::build(black_box(&pts), black_box(&den), 64))
        });
        let tree = Octree::build(&pts, &den, 64);
        group.bench_with_input(BenchmarkId::new("lists", n), &n, |b, _| {
            b.iter(|| InteractionLists::build(black_box(&tree)))
        });
    }
    group.finish();
}

fn bench_m2l_methods(c: &mut Criterion) {
    // Ablation A2: dense vs FFT M2L at the same accuracy order.
    let (pts, den) = cloud(16384, 2);
    let mut group = c.benchmark_group("m2l");
    group.sample_size(10);
    for (label, method) in [("dense", M2lMethod::Dense), ("fft", M2lMethod::Fft)] {
        let plan = FmmPlan::new(&pts, &den, 64, 4, method);
        let eval = FmmEvaluator::new();
        group.bench_function(label, |b| b.iter(|| eval.evaluate(black_box(&plan))));
    }
    group.finish();
}

fn bench_full_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fmm");
    group.sample_size(10);
    for &n in &[8192usize, 32768] {
        let (pts, den) = cloud(n, 3);
        let plan = FmmPlan::new(&pts, &den, 64, 4, M2lMethod::Fft);
        let eval = FmmEvaluator::new();
        group.bench_with_input(BenchmarkId::new("evaluate", n), &n, |b, _| {
            b.iter(|| eval.evaluate(black_box(&plan)))
        });
    }
    // The O(N²) reference at the small size, for the crossover story.
    let (pts, den) = cloud(8192, 3);
    group.bench_function("direct_sum/8192", |b| {
        b.iter(|| direct_sum(black_box(&pts), black_box(&den)))
    });
    group.finish();
}

fn bench_phase_timings(c: &mut Criterion) {
    // Per-phase wall-time split via the engine's own instrumentation
    // (`evaluate_timed`).  The criterion number tracks the timed
    // evaluate as a whole; the phase split for each size is printed
    // once so a bench log shows where the time goes (the committable
    // artifact form of the same data is `scripts/bench_snapshot.sh`).
    let mut group = c.benchmark_group("phases");
    group.sample_size(10);
    for &n in &[8192usize, 32768] {
        let (pts, den) = cloud(n, 3);
        let plan = FmmPlan::new(&pts, &den, 64, 4, M2lMethod::Fft);
        let eval = FmmEvaluator::new();
        let _ = eval.evaluate(&plan); // warm pool + arenas
        let (_, t) = eval.evaluate_timed(&plan);
        eprintln!(
            "phases/{n}: up={:.3}ms v={:.3}ms x={:.3}ms down={:.3}ms near={:.3}ms total={:.3}ms",
            t.up_s * 1e3,
            t.v_s * 1e3,
            t.x_s * 1e3,
            t.down_s * 1e3,
            t.near_s * 1e3,
            t.total_s * 1e3,
        );
        group.bench_with_input(BenchmarkId::new("evaluate_timed", n), &n, |b, _| {
            b.iter(|| eval.evaluate_timed(black_box(&plan)))
        });
    }
    group.finish();
}

fn bench_thread_scaling(c: &mut Criterion) {
    // The {threads} × {n} grid of the committed BENCH_fmm.json, in
    // criterion form: evaluate under every pool width, plus the
    // sequential and parallel tree builders head to head.  The full
    // grid (n up to 2^20) lives in `bench_snapshot`/`repro
    // fmm-scaling`; this group keeps the small sizes under criterion's
    // statistics.
    let mut group = c.benchmark_group("scaling");
    group.sample_size(10);
    for &n in &[8192usize, 32768] {
        let (pts, den) = cloud(n, 3);
        let plan = FmmPlan::new(&pts, &den, 64, 4, M2lMethod::Fft);
        for &threads in &dvfs_bench::scaling::DEFAULT_THREAD_GRID {
            compat::par::set_thread_count(Some(threads));
            let eval = FmmEvaluator::new();
            let _ = eval.evaluate(&plan); // warm pool, arenas, schedule
            group.bench_with_input(
                BenchmarkId::new(format!("evaluate/n{n}"), threads),
                &threads,
                |b, _| b.iter(|| eval.evaluate(black_box(&plan))),
            );
        }
        compat::par::set_thread_count(None);
    }
    let (pts, den) = cloud(65536, 1);
    for (label, threads) in [("seq", 1usize), ("par", 8)] {
        compat::par::set_thread_count(Some(threads));
        group.bench_function(format!("tree_build/65536/{label}"), |b| {
            b.iter(|| Octree::build(black_box(&pts), black_box(&den), 64))
        });
    }
    compat::par::set_thread_count(None);
    group.finish();
}

fn bench_profiling(c: &mut Criterion) {
    // The nvprof-style instrumentation pass at a paper-scale input.
    let (pts, den) = cloud(65536, 4);
    let plan = FmmPlan::new(&pts, &den, 128, 4, M2lMethod::Fft);
    let cost = CostModel::default();
    c.bench_function("profile/N65536-Q128", |b| {
        b.iter(|| profile_plan(black_box(&plan), black_box(&cost)))
    });
}

criterion_group!(
    benches,
    bench_tree_and_lists,
    bench_m2l_methods,
    bench_full_evaluation,
    bench_phase_timings,
    bench_thread_scaling,
    bench_profiling
);
criterion_main!(benches);
