//! Criterion benchmarks for the numeric substrates: NNLS and the FFT —
//! the two solvers the fitting pipeline and the V-list phase live on.

use compat::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use compat::rng::StdRng;
use dvfs_fft::{fft3_inplace, Complex, FftPlan};
use dvfs_linalg::{nnls, pseudo_inverse, Matrix, NnlsOptions, QrFactorization, Svd};
use std::hint::black_box;

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.random::<f64>() - 0.3)
}

fn bench_nnls(c: &mut Criterion) {
    // The model fit is an 824 x 9 NNLS solve; bench that exact shape plus
    // a larger one.
    let mut group = c.benchmark_group("nnls");
    for &(rows, cols) in &[(824usize, 9usize), (4096, 16)] {
        let a = random_matrix(rows, cols, 7);
        let x_true: Vec<f64> = (0..cols).map(|j| (j % 3) as f64).collect();
        let b = a.matvec(&x_true);
        group.bench_with_input(
            BenchmarkId::new("solve", format!("{rows}x{cols}")),
            &rows,
            |bench, _| {
                bench.iter(|| nnls(black_box(&a), black_box(&b), &NnlsOptions::default()).unwrap())
            },
        );
    }
    group.finish();
}

fn bench_qr_and_svd(c: &mut Criterion) {
    let a = random_matrix(152, 152, 8);
    c.bench_function("qr/152x152", |b| b.iter(|| QrFactorization::new(black_box(&a)).unwrap()));
    let small = random_matrix(56, 56, 9);
    c.bench_function("svd/56x56", |b| b.iter(|| Svd::new(black_box(&small)).unwrap()));
    c.bench_function("pinv/56x56", |b| {
        b.iter(|| pseudo_inverse(black_box(&small), 1e-12).unwrap())
    });
}

fn bench_p2p_layouts(c: &mut Criterion) {
    // The U-phase inner kernel: naive AoS vs the tuned SoA layout.
    use kifmm::kernel::{Kernel, LaplaceKernel};
    use kifmm::{p2p_soa, SoaSources};
    let mut rng = StdRng::seed_from_u64(12);
    let n = 256;
    let targets: Vec<[f64; 3]> =
        (0..n).map(|_| [rng.random(), rng.random(), rng.random()]).collect();
    let sources: Vec<[f64; 3]> =
        (0..n).map(|_| [rng.random(), rng.random(), rng.random()]).collect();
    let densities: Vec<f64> = (0..n).map(|_| rng.random::<f64>() - 0.5).collect();
    let soa = SoaSources::from_points(&sources, &densities);
    let mut group = c.benchmark_group("p2p-256x256");
    group.bench_function("aos-naive", |b| {
        b.iter(|| {
            let mut out = vec![0.0; n];
            LaplaceKernel.p2p(
                black_box(&targets),
                black_box(&sources),
                black_box(&densities),
                &mut out,
            );
            out
        })
    });
    group.bench_function("soa-unrolled", |b| {
        b.iter(|| {
            let mut out = vec![0.0; n];
            p2p_soa(black_box(&targets), black_box(&soa), &mut out);
            out
        })
    });
    group.finish();
}

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft3");
    for &m in &[8usize, 16, 32] {
        let plan = FftPlan::new(m).unwrap();
        let mut data: Vec<Complex> =
            (0..m * m * m).map(|i| Complex::new((i as f64 * 0.01).sin(), 0.0)).collect();
        group.bench_with_input(BenchmarkId::new("forward", m), &m, |b, _| {
            b.iter(|| fft3_inplace(black_box(&mut data), m, &plan).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_nnls, bench_qr_and_svd, bench_p2p_layouts, bench_fft);
criterion_main!(benches);
