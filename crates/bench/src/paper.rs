//! Reference values transcribed from the paper, used for side-by-side
//! "paper vs. measured" reporting.  (Shapes, not absolute joules, are the
//! reproduction target — the substrate here is a simulator, not the
//! authors' instrumented Jetson TK1.)

/// One row of the paper's Table I: `(type, core MHz, core mV, mem MHz,
/// mem mV, ε_SP, ε_DP, ε_Int, ε_SM, ε_L2, ε_Mem [pJ], π0 [W])`.
pub type Table1Row = (&'static str, f64, f64, f64, f64, f64, f64, f64, f64, f64, f64, f64);

/// The paper's Table I, transcribed.
pub const TABLE1: [Table1Row; 16] = [
    ("T", 852.0, 1030.0, 924.0, 1010.0, 29.0, 139.1, 60.0, 35.4, 90.2, 377.0, 6.8),
    ("T", 396.0, 770.0, 924.0, 1010.0, 16.2, 77.7, 33.5, 19.8, 50.4, 377.0, 6.1),
    ("T", 852.0, 1030.0, 528.0, 880.0, 29.0, 139.1, 60.0, 35.4, 90.2, 286.2, 6.3),
    ("T", 648.0, 890.0, 528.0, 880.0, 21.7, 103.8, 44.8, 26.4, 67.3, 286.2, 5.9),
    ("T", 396.0, 770.0, 528.0, 880.0, 16.2, 77.7, 33.5, 19.8, 50.4, 286.2, 5.6),
    ("T", 852.0, 1030.0, 204.0, 800.0, 29.0, 139.1, 60.0, 35.4, 90.2, 236.5, 6.0),
    ("T", 648.0, 890.0, 204.0, 800.0, 21.7, 103.8, 44.8, 26.4, 67.3, 236.5, 5.6),
    ("T", 396.0, 770.0, 204.0, 800.0, 16.2, 77.7, 33.5, 19.8, 50.4, 236.5, 5.2),
    ("V", 756.0, 950.0, 924.0, 1010.0, 24.7, 118.3, 51.0, 30.1, 76.7, 377.0, 6.6),
    ("V", 180.0, 760.0, 528.0, 880.0, 15.8, 75.7, 32.7, 19.3, 49.1, 286.2, 5.5),
    ("V", 540.0, 840.0, 528.0, 880.0, 19.3, 92.5, 39.9, 23.5, 59.9, 286.2, 5.8),
    ("V", 540.0, 840.0, 204.0, 800.0, 19.3, 92.5, 39.9, 23.5, 59.9, 236.5, 5.4),
    ("V", 756.0, 950.0, 204.0, 800.0, 24.7, 118.3, 51.0, 30.1, 76.7, 236.5, 5.8),
    ("V", 72.0, 760.0, 68.0, 800.0, 15.8, 75.7, 32.7, 19.3, 49.1, 236.5, 5.2),
    ("V", 756.0, 950.0, 68.0, 800.0, 24.7, 118.3, 51.0, 30.1, 76.7, 236.5, 5.8),
    ("V", 180.0, 760.0, 924.0, 1010.0, 15.8, 75.7, 32.7, 19.3, 49.1, 377.0, 6.0),
];

/// Section II-D: 2-fold holdout CV error (mean %, σ, min %, max %).
pub const CV_HOLDOUT: (f64, f64, f64, f64) = (2.87, 2.47, 0.00, 11.94);
/// Section II-D: 16-fold CV error (mean %, σ, min %, max %).
pub const CV_16FOLD: (f64, f64, f64, f64) = (6.56, 3.80, 1.60, 15.22);

/// Table II rows: `(benchmark, strategy, mispredictions, cases, mean %,
/// min %, max %)`.
pub const TABLE2: [(&str, &str, usize, usize, f64, f64, f64); 10] = [
    ("Single", "Our model", 0, 25, 0.0, 0.0, 0.0),
    ("Single", "Time Oracle", 20, 25, 18.52, 7.21, 26.52),
    ("Double", "Our model", 10, 36, 3.11, 0.34, 7.30),
    ("Double", "Time Oracle", 23, 36, 3.95, 0.23, 13.90),
    ("Integer", "Our model", 6, 23, 2.37, 0.32, 5.12),
    ("Integer", "Time Oracle", 23, 23, 3.56, 0.44, 9.72),
    ("Shared memory", "Our model", 7, 10, 3.31, 2.92, 3.99),
    ("Shared memory", "Time Oracle", 10, 10, 10.64, 7.07, 12.75),
    ("L2", "Our model", 0, 9, 0.0, 0.0, 0.0),
    ("L2", "Time Oracle", 0, 9, 10.71, 10.49, 11.28),
];

/// Figure 5 / Section IV-B: FMM validation error (mean %, σ, min %, max %).
pub const FMM_VALIDATION: (f64, f64, f64, f64) = (6.17, 4.65, 0.09, 14.89);

/// Section IV-C(a): integer instructions ≈ 60% of compute instructions
/// but ≈ 23% of compute energy.
pub const INTEGER_INSTRUCTION_SHARE: f64 = 0.60;
/// Integer share of compute energy.
pub const INTEGER_ENERGY_SHARE: f64 = 0.23;

/// Section IV-C(b): DRAM ≈ 13% of accesses, up to ≈ 50% of data energy.
pub const DRAM_ACCESS_SHARE: f64 = 0.13;
/// DRAM share of data-access energy.
pub const DRAM_ENERGY_SHARE: f64 = 0.50;

/// Section IV-C(c): constant power is 75–95% of FMM total energy.
pub const FMM_CONSTANT_SHARE_RANGE: (f64, f64) = (0.75, 0.95);
/// ... versus only ~30% for the saturating microbenchmarks.
pub const MICROBENCH_CONSTANT_SHARE: f64 = 0.30;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_8_training_and_8_validation_rows() {
        assert_eq!(TABLE1.iter().filter(|r| r.0 == "T").count(), 8);
        assert_eq!(TABLE1.iter().filter(|r| r.0 == "V").count(), 8);
    }

    #[test]
    fn table1_energies_scale_as_v_squared() {
        // Internal consistency of the transcription: ε_SP/V² constant.
        for r in &TABLE1 {
            let v = r.2 / 1000.0;
            let c0 = r.5 / (v * v);
            assert!((c0 - 27.33).abs() < 0.15, "ε_SP/V² = {c0} at {} mV", r.2);
        }
    }

    #[test]
    fn table2_oracle_never_beats_model_on_mispredictions() {
        for pair in TABLE2.chunks(2) {
            let (model, oracle) = (&pair[0], &pair[1]);
            assert_eq!(model.0, oracle.0);
            assert!(model.2 <= oracle.2, "{}: model {} vs oracle {}", model.0, model.2, oracle.2);
        }
    }
}
