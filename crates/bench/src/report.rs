//! Plain-text table formatting for the `repro` binary.

/// Formats a table with a header row and aligned columns.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            line.push_str(&format!("{:>width$}  ", cell, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a fraction as a percent string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats joules with a sensible precision.
pub fn joules(x: f64) -> String {
    if x >= 1.0 {
        format!("{x:.2} J")
    } else {
        format!("{:.1} mJ", x * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["a", "long-header"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long-header"));
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    fn pct_and_joules_format() {
        assert_eq!(pct(0.137), "13.7%");
        assert_eq!(joules(2.5), "2.50 J");
        assert_eq!(joules(0.0031), "3.1 mJ");
    }
}
