//! `service_load` — a seeded closed-loop load generator for the
//! autotune service (`crates/autoserve`).
//!
//! Spawns `clients` closed-loop client threads against one
//! [`AutoServer`] and drives `requests` synthetic tuning requests
//! through it in seeded bursts of mixed sizes: pre-counted kernel
//! workloads across three op-count size classes, a sprinkle of raw FMM
//! problem specs (lowered through the counters path), and occasional
//! governor phase plans.  Request *content* is a pure function of
//! `(seed, request id)` — never of the client or shard that carries it —
//! so the order-insensitive run digest ([`fold_digest`]) is identical
//! across any shard/client count, which is what `BENCH_service.json`'s
//! cross-shard digest table pins.
//!
//! A separate overload probe floods a deliberately tiny server (one
//! shard, slow lowering-heavy requests, short queue) to measure the
//! backpressure path; its rejections are real and timing-dependent, so
//! the probe is excluded from the digest.

use std::time::Instant;

use compat::rng::{splitmix64, StdRng};
use dvfs_autoserve::{fold_digest, AutoServer, Rejected, ServeConfig, TuneRequest, WorkloadSpec};
use tk1_sim::{FaultConfig, OpClass, OpVector};

/// Load-generator configuration.  The defaults are sized for the
/// integration tests; `bench_snapshot --service` scales `requests` up
/// to the committed ≥1M-request artifact.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Requests in the main (digest-bearing) segment.
    pub requests: usize,
    /// Closed-loop client threads.
    pub clients: usize,
    /// Maximum tickets a client keeps in flight; actual burst sizes are
    /// drawn per round from `1..=burst`.
    pub burst: usize,
    /// Shard worker threads of the server under test.
    pub shards: usize,
    /// Per-shard ingress queue capacity.
    pub queue_capacity: usize,
    /// Max requests drained per worker wakeup.
    pub batch_max: usize,
    /// In-memory model-cache rigs per shard.
    pub cache_capacity: usize,
    /// Distinct simulated boards the request stream tunes for (device
    /// seeds `0..distinct_devices`); each costs one cold fit.
    pub distinct_devices: u64,
    /// Per-mille of requests that are raw FMM problem specs.
    pub fmm_per_mille: u32,
    /// Problem sizes the FMM specs draw from.  Lowering a spec costs a
    /// real plan+profile, so tests shrink this list; the committed
    /// artifact uses the full default.
    pub fmm_sizes: Vec<usize>,
    /// Per-mille of requests that also ask for a governor phase plan.
    pub plan_per_mille: u32,
    /// Seed of the whole request stream.
    pub seed: u64,
    /// Fault campaign the server runs under (`None` = clean).
    pub faults: Option<FaultConfig>,
    /// Submissions in the overload probe segment (0 skips the probe).
    pub overload_probes: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            requests: 10_000,
            clients: 4,
            burst: 32,
            shards: 4,
            queue_capacity: 256,
            batch_max: 32,
            cache_capacity: 32,
            distinct_devices: 24,
            fmm_per_mille: 2,
            fmm_sizes: vec![1024, 2048, 4096],
            plan_per_mille: 5,
            seed: 0x5EED_5E4B,
            faults: None,
            overload_probes: 512,
        }
    }
}

/// Latency percentiles over one class of responses, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Number of responses in the class.
    pub count: usize,
    /// Median latency.
    pub p50_us: f64,
    /// 99th-percentile latency (nearest rank).
    pub p99_us: f64,
    /// Worst observed latency.
    pub max_us: f64,
}

impl LatencyStats {
    fn from_samples(mut us: Vec<f64>) -> LatencyStats {
        us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let pick = |p: f64| {
            if us.is_empty() {
                return 0.0;
            }
            let rank = ((p / 100.0) * us.len() as f64).ceil() as usize;
            us[rank.saturating_sub(1).min(us.len() - 1)]
        };
        LatencyStats {
            count: us.len(),
            p50_us: pick(50.0),
            p99_us: pick(99.0),
            max_us: us.last().copied().unwrap_or(0.0),
        }
    }
}

/// What the overload probe measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadReport {
    /// Submissions attempted against the tiny server.
    pub attempts: usize,
    /// Immediate [`Rejected::Overloaded`] rejections.
    pub rejections: usize,
    /// Accepted requests that were still answered.
    pub served: usize,
    /// `rejections / attempts`.
    pub rejection_rate: f64,
}

/// The full load-generator result.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests driven in the main segment.
    pub requests: usize,
    /// Responses received (equals `requests` minus `fit_errors`).
    pub served: usize,
    /// Requests whose model fit failed outright (0 on clean runs;
    /// faulted campaigns degrade instead of erroring).
    pub fit_errors: usize,
    /// Client threads used.
    pub clients: usize,
    /// Shard worker threads used.
    pub shards: usize,
    /// Wall-clock of the main segment, seconds.
    pub elapsed_s: f64,
    /// `served / elapsed_s`.
    pub throughput_rps: f64,
    /// Latency of cache-hit responses.
    pub hit: LatencyStats,
    /// Latency of cold-path responses (cold fits and disk restores).
    pub cold: LatencyStats,
    /// Server-side model-cache hit rate over the main segment.
    pub cache_hit_rate: f64,
    /// Responses answered by a degradation-ladder model.
    pub degraded_responses: usize,
    /// Sweep retries absorbed by the measurement pipeline.
    pub sweep_retries: usize,
    /// Deepest any shard queue got during the main segment.
    pub max_queue_depth: usize,
    /// Rejections during the main segment (0 when sized correctly; the
    /// client retries after draining its burst, so nothing is lost).
    pub main_rejections: usize,
    /// Order-insensitive digest over all `(request id, response)` pairs.
    pub digest: u64,
    /// The overload probe segment.
    pub overload: OverloadReport,
}

/// The synthetic request for `id` under `cfg` — a pure function of
/// `(cfg.seed, id)` and the mix knobs, independent of clients/shards.
pub fn synth_request(cfg: &LoadConfig, id: u64) -> TuneRequest {
    let mut state = cfg.seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut rng = StdRng::seed_from_u64(splitmix64(&mut state));
    let device_seed = rng.next_u64() % cfg.distinct_devices.max(1);
    let plan_rounds =
        if rng.next_u64() % 1000 < cfg.plan_per_mille as u64 { 4usize } else { 0usize };
    let fmm = !cfg.fmm_sizes.is_empty() && rng.next_u64() % 1000 < cfg.fmm_per_mille as u64;
    let workload = if fmm {
        // A few distinct FMM specs, so shards answer them from their
        // lowering caches after first sight.
        WorkloadSpec::Fmm {
            n: cfg.fmm_sizes[(rng.next_u64() % cfg.fmm_sizes.len() as u64) as usize],
            q: 4,
            seed: rng.next_u64() % 4,
        }
    } else {
        // Three op-count size classes with per-class jitter.
        let base = [1e6, 1e9, 1e11][rng.random_range(0usize..3)];
        let mut count = |class_scale: f64| base * class_scale * rng.random_range(0.5f64..2.0);
        WorkloadSpec::Kernel {
            ops: OpVector::from_pairs(&[
                (OpClass::FlopSp, count(1.0)),
                (OpClass::FlopDp, count(0.25)),
                (OpClass::Int, count(1.5)),
                (OpClass::Shared, count(0.5)),
                (OpClass::L1, count(0.75)),
                (OpClass::L2, count(0.2)),
                (OpClass::Dram, count(0.05)),
            ]),
            utilization: rng.random_range(0.2f64..1.0),
            launches: 1 + (rng.next_u64() % 4) as u32,
        }
    };
    TuneRequest { device_seed, workload, plan_rounds }
}

/// One client's record of one answered request.
struct Outcome {
    id: u64,
    digest: u64,
    latency_us: f64,
    cache_hit: bool,
    error: bool,
}

/// Runs the closed-loop load: the main seeded segment against a
/// production-shaped server, then the overload probe against a tiny one.
pub fn service_load(cfg: &LoadConfig) -> LoadReport {
    let server = AutoServer::start(ServeConfig {
        shards: cfg.shards,
        queue_capacity: cfg.queue_capacity,
        batch_max: cfg.batch_max,
        cache_capacity: cfg.cache_capacity,
        cache_dir: None,
        faults: cfg.faults.clone(),
    });

    let clients = cfg.clients.max(1);
    let started = Instant::now();
    let mut outcomes: Vec<Outcome> = Vec::with_capacity(cfg.requests);
    std::thread::scope(|scope| {
        let server = &server;
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || client_loop(server, cfg, (c..cfg.requests).step_by(clients)))
            })
            .collect();
        for h in handles {
            outcomes.extend(h.join().expect("client threads do not panic"));
        }
    });
    let elapsed_s = started.elapsed().as_secs_f64();
    let main_rejections = server.rejected();
    let stats = server.shutdown();

    let mut digest = 0u64;
    let mut hit_us = Vec::new();
    let mut cold_us = Vec::new();
    let mut fit_errors = 0usize;
    for o in &outcomes {
        if o.error {
            fit_errors += 1;
            continue;
        }
        digest = fold_digest(digest, o.id, o.digest);
        if o.cache_hit {
            hit_us.push(o.latency_us);
        } else {
            cold_us.push(o.latency_us);
        }
    }
    let served = outcomes.len() - fit_errors;

    LoadReport {
        requests: cfg.requests,
        served,
        fit_errors,
        clients,
        shards: cfg.shards,
        elapsed_s,
        throughput_rps: if elapsed_s > 0.0 { served as f64 / elapsed_s } else { 0.0 },
        hit: LatencyStats::from_samples(hit_us),
        cold: LatencyStats::from_samples(cold_us),
        cache_hit_rate: if served > 0 { stats.cache_hits as f64 / served as f64 } else { 0.0 },
        degraded_responses: stats.degraded_responses,
        sweep_retries: stats.sweep_retries,
        max_queue_depth: stats.max_queue_depth,
        main_rejections,
        digest,
        overload: overload_probe(cfg),
    }
}

/// One closed-loop client: submit a seeded burst, then drain it.  On a
/// rejection (possible only when the config undersizes the queues) the
/// client drains its in-flight burst and retries, so no request is ever
/// lost from the digest.
fn client_loop(
    server: &AutoServer,
    cfg: &LoadConfig,
    ids: impl Iterator<Item = usize>,
) -> Vec<Outcome> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xC11E_17);
    let mut outcomes = Vec::new();
    let mut pending: Vec<(u64, Instant, dvfs_autoserve::Ticket)> = Vec::new();
    let mut burst = 1 + rng.next_u64() as usize % cfg.burst.max(1);
    for id in ids {
        let req = synth_request(cfg, id as u64);
        loop {
            match server.submit(req.clone()) {
                Ok(ticket) => {
                    pending.push((id as u64, Instant::now(), ticket));
                    break;
                }
                Err(Rejected::Overloaded { .. }) => {
                    drain(&mut pending, &mut outcomes);
                    std::thread::yield_now();
                }
                Err(Rejected::ShuttingDown) => {
                    panic!("server shut down while clients were still submitting")
                }
            }
        }
        if pending.len() >= burst {
            drain(&mut pending, &mut outcomes);
            burst = 1 + rng.next_u64() as usize % cfg.burst.max(1);
        }
    }
    drain(&mut pending, &mut outcomes);
    outcomes
}

fn drain(pending: &mut Vec<(u64, Instant, dvfs_autoserve::Ticket)>, out: &mut Vec<Outcome>) {
    for (id, submitted, ticket) in pending.drain(..) {
        let result = ticket.wait();
        let latency_us = submitted.elapsed().as_secs_f64() * 1e6;
        match result {
            Ok(resp) => out.push(Outcome {
                id,
                digest: resp.digest(),
                latency_us,
                cache_hit: resp.cache_hit,
                error: false,
            }),
            Err(_) => {
                out.push(Outcome { id, digest: 0, latency_us, cache_hit: false, error: true })
            }
        }
    }
}

/// Floods a deliberately tiny server (one shard, short queue) with
/// lowering-heavy requests from a tight loop, so the worker falls behind
/// and the bounded queue must reject.  Every accepted request is still
/// answered; rejections are immediate and counted, never panics.
fn overload_probe(cfg: &LoadConfig) -> OverloadReport {
    if cfg.overload_probes == 0 {
        return OverloadReport { attempts: 0, rejections: 0, served: 0, rejection_rate: 0.0 };
    }
    let server = AutoServer::start(ServeConfig {
        shards: 1,
        queue_capacity: 8,
        batch_max: cfg.batch_max,
        cache_capacity: 4,
        cache_dir: None,
        faults: cfg.faults.clone(),
    });
    let mut tickets = Vec::new();
    let mut rejections = 0usize;
    for i in 0..cfg.overload_probes {
        // Every request names a fresh board, so each one the worker
        // accepts costs a full cold fit while the tight submission loop
        // keeps hammering the 8-slot queue.
        let req = TuneRequest {
            device_seed: 0xDEAD_0000 + i as u64,
            workload: WorkloadSpec::Kernel {
                ops: OpVector::from_pairs(&[(OpClass::FlopDp, 1e9), (OpClass::Dram, 1e7)]),
                utilization: 0.8,
                launches: 1,
            },
            plan_rounds: 0,
        };
        match server.submit(req) {
            Ok(t) => tickets.push(t),
            Err(Rejected::Overloaded { .. }) => rejections += 1,
            Err(Rejected::ShuttingDown) => unreachable!("server is alive"),
        }
    }
    let served = tickets.into_iter().filter_map(|t| t.wait().ok()).count();
    let stats = server.shutdown();
    debug_assert_eq!(stats.rejected, rejections);
    OverloadReport {
        attempts: cfg.overload_probes,
        rejections,
        served,
        rejection_rate: rejections as f64 / cfg.overload_probes as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LoadConfig {
        LoadConfig {
            requests: 600,
            clients: 3,
            burst: 16,
            shards: 2,
            queue_capacity: 64,
            batch_max: 8,
            cache_capacity: 8,
            distinct_devices: 4,
            fmm_per_mille: 0,
            fmm_sizes: Vec::new(),
            plan_per_mille: 10,
            seed: 0x10AD,
            faults: None,
            overload_probes: 96,
        }
    }

    #[test]
    fn request_stream_is_pure_in_seed_and_id() {
        let cfg = tiny();
        for id in [0u64, 1, 17, 599] {
            assert_eq!(synth_request(&cfg, id), synth_request(&cfg, id));
        }
        let mut other = tiny();
        other.seed ^= 1;
        assert_ne!(synth_request(&cfg, 0), synth_request(&other, 0));
    }

    #[test]
    fn load_digest_is_invariant_across_shard_and_client_counts() {
        let base = tiny();
        let reference = service_load(&base);
        assert_eq!(reference.served, base.requests);
        assert_eq!(reference.fit_errors, 0);
        assert!(reference.cache_hit_rate > 0.9, "few devices must mean mostly hits");
        for (shards, clients) in [(1usize, 1usize), (4, 2)] {
            let mut cfg = base.clone();
            cfg.shards = shards;
            cfg.clients = clients;
            cfg.overload_probes = 0;
            let run = service_load(&cfg);
            assert_eq!(run.digest, reference.digest, "{shards} shards / {clients} clients");
            assert_eq!(run.served, base.requests);
        }
    }

    #[test]
    fn overload_probe_rejects_and_never_loses_accepted_requests() {
        let mut cfg = tiny();
        cfg.requests = 0;
        let report = service_load(&cfg);
        let probe = report.overload;
        assert_eq!(probe.attempts, cfg.overload_probes);
        assert_eq!(probe.served + probe.rejections, probe.attempts, "no request vanishes");
        assert!(probe.rejections > 0, "the tiny queue must exercise backpressure");
        assert!(probe.rejection_rate > 0.0 && probe.rejection_rate < 1.0);
    }
}
