//! The end-to-end experiment pipeline.
//!
//! Everything here composes the crates below it exactly the way the
//! paper's methodology composes the physical pieces: microbenchmark
//! sweep → NNLS fit → cross-validation → autotuning → FMM profiling →
//! FMM energy validation and breakdowns.

use compat::error::PipelineResult;
use compat::rng::StdRng;
use dvfs_energy_model::experiments::{FmmInput, FMM_INPUTS, SYSTEM_SETTINGS};
use dvfs_energy_model::{
    autotune_microbenchmarks, AutotuneOutcome, BreakdownReport, EnergyModel, ErrorStats,
    FitDiagnostics,
};
use dvfs_microbench::{Dataset, MicrobenchKind, SweepConfig, SweepStats};
use kifmm::evaluator::{FmmPlan, M2lMethod};
use kifmm::{profile_plan, CostModel, FmmProfile};
use powermon_sim::PowerMon;
use tk1_sim::{Device, OpClass, OpVector, Setting};

/// A fitted front-end of the pipeline: the model plus everything the
/// hardened sweep and fit reported along the way.
#[derive(Debug, Clone)]
pub struct PipelineFit {
    /// The fitted energy model.
    pub model: EnergyModel,
    /// The sweep dataset the model was trained on.
    pub dataset: Dataset,
    /// Retry/cooldown accounting from the measurement campaign.
    pub sweep_stats: SweepStats,
    /// Degradation diagnostics of the NNLS fit.
    pub fit_diagnostics: FitDiagnostics,
}

/// Runs the microbenchmark sweep and fits the model on the training
/// split (the paper's Section II-C instantiation).
///
/// Fault injection follows `FMM_ENERGY_FAULTS` through
/// [`SweepConfig::default`]; a fault-free run is bitwise identical to
/// the unhardened pipeline.
pub fn fitted_model(seed: u64) -> (EnergyModel, Dataset) {
    let fit = try_fitted_model(&SweepConfig { seed, ..SweepConfig::default() })
        .expect("sweep+fit pipeline survives the configured fault rates");
    (fit.model, fit.dataset)
}

/// Fallible sweep + fit under an explicit config.
///
/// When fault injection is active, the fit additionally enables robust
/// row-outlier rejection so corrupted measurements that slipped past the
/// sweep's sanity gates are still down-weighted instead of biasing the
/// model constants.
pub fn try_fitted_model(config: &SweepConfig) -> PipelineResult<PipelineFit> {
    let fit = dvfs_energy_model::try_fit_from_sweep(config)?;
    Ok(PipelineFit {
        model: fit.model,
        dataset: fit.dataset,
        sweep_stats: fit.sweep_stats,
        fit_diagnostics: fit.diagnostics,
    })
}

/// One reproduced row of Table I.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// "T" or "V".
    pub setting_type: &'static str,
    /// The DVFS setting.
    pub setting: Setting,
    /// Derived per-op energies `(SP, DP, Int, SM, L2, Mem)` in pJ and the
    /// constant power in W, from the fitted model.
    pub measured: (f64, f64, f64, f64, f64, f64, f64),
    /// The paper's corresponding values.
    pub paper: (f64, f64, f64, f64, f64, f64, f64),
}

/// Reproduces Table I: the fitted model's derived energy/power columns
/// for the paper's 16 settings.
pub fn table1_rows(model: &EnergyModel) -> Vec<Table1Row> {
    crate::paper::TABLE1
        .iter()
        .map(|&(ty, core, _cmv, mem, _mmv, sp, dp, int, sm, l2, dram, pi0)| {
            let setting = Setting::from_frequencies(core, mem).expect("Table I setting exists");
            Table1Row {
                setting_type: if ty == "T" { "T" } else { "V" },
                setting,
                measured: model.table1_row(setting),
                paper: (sp, dp, int, sm, l2, dram, pi0),
            }
        })
        .collect()
}

/// Reproduces Table II over all five benchmark families.
pub fn table2_outcomes(model: &EnergyModel, seed: u64) -> Vec<AutotuneOutcome> {
    autotune_microbenchmarks(
        model,
        &[
            MicrobenchKind::SinglePrecision,
            MicrobenchKind::DoublePrecision,
            MicrobenchKind::Integer,
            MicrobenchKind::SharedMemory,
            MicrobenchKind::L2,
        ],
        seed,
    )
}

/// Builds and profiles the FMM for each Table IV input.
///
/// `scale_shift` right-shifts every `N` (keeping `Q`) so tests can run
/// the identical pipeline at a fraction of the paper's sizes; pass 0 for
/// the paper-scale F1–F8.
pub fn fmm_profiles(scale_shift: u32, seed: u64) -> Vec<(FmmInput, FmmProfile)> {
    FMM_INPUTS
        .iter()
        .map(|&input| {
            let n = (input.n >> scale_shift).max(1024);
            let mut rng = StdRng::seed_from_u64(seed ^ (n as u64).rotate_left(13) ^ input.q as u64);
            let pts: Vec<[f64; 3]> =
                (0..n).map(|_| [rng.random(), rng.random(), rng.random()]).collect();
            let den: Vec<f64> = (0..n).map(|_| 2.0 * rng.random::<f64>() - 1.0).collect();
            let plan = FmmPlan::new(&pts, &den, input.q, 4, M2lMethod::Fft);
            let profile = profile_plan(&plan, &CostModel::default());
            (input, profile)
        })
        .collect()
}

/// One of the 64 Figure 5 validation cases.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// System setting id ("S1".."S8").
    pub s_id: &'static str,
    /// FMM input id ("F1".."F8").
    pub f_id: &'static str,
    /// The DVFS setting.
    pub setting: Setting,
    /// Total operation counts of the FMM run.
    pub ops: OpVector,
    /// Measured execution time, s.
    pub time_s: f64,
    /// PowerMon-measured energy, J.
    pub measured_j: f64,
    /// Model-predicted energy, J.
    pub predicted_j: f64,
}

impl CaseResult {
    /// Relative prediction error (fraction).
    pub fn error(&self) -> f64 {
        (self.predicted_j - self.measured_j).abs() / self.measured_j
    }
}

/// Reproduces Figure 5: predicted vs measured FMM energy over the
/// 8 settings × 8 inputs matrix.
pub fn fig5_validation(
    model: &EnergyModel,
    profiles: &[(FmmInput, FmmProfile)],
    seed: u64,
) -> (Vec<CaseResult>, ErrorStats) {
    let mut cases = Vec::new();
    let mut device = Device::new(seed ^ 0xF165);
    let mut meter = PowerMon::new(seed ^ 0x9EA5);
    for (input, profile) in profiles {
        let kernels = profile.kernels();
        let ops = profile.total_ops();
        for sys in SYSTEM_SETTINGS {
            let setting = sys.setting();
            device.set_operating_point(setting);
            let mut time_s = 0.0;
            let mut measured_j = 0.0;
            for k in &kernels {
                let m = meter.measure(&mut device, k);
                time_s += m.execution.duration_s;
                measured_j += m.measured_energy_j;
            }
            let predicted_j = model.predict_energy_j(&ops, setting, time_s);
            cases.push(CaseResult {
                s_id: sys.id,
                f_id: input.id,
                setting,
                ops,
                time_s,
                measured_j,
                predicted_j,
            });
        }
    }
    let errors: Vec<f64> = cases.iter().map(|c| c.error()).collect();
    let stats = ErrorStats::from_relative_errors(&errors);
    (cases, stats)
}

/// Figure 4 data for one FMM input: instruction-mix and per-level byte
/// shares (fractions).
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// FMM input id.
    pub f_id: &'static str,
    /// `(DP share, integer share)` of compute instructions.
    pub instruction_shares: (f64, f64),
    /// `(SM, L1, L2, DRAM)` shares of bytes accessed.
    pub byte_shares: (f64, f64, f64, f64),
}

/// Reproduces Figure 4 from the profiles.
pub fn fig4_breakdown(profiles: &[(FmmInput, FmmProfile)]) -> Vec<Fig4Row> {
    profiles
        .iter()
        .map(|(input, profile)| {
            let ops = profile.total_ops();
            let compute = ops.total_compute().max(f64::MIN_POSITIVE);
            let bytes = ops.total_bytes().max(f64::MIN_POSITIVE);
            Fig4Row {
                f_id: input.id,
                instruction_shares: (
                    ops.get(OpClass::FlopDp) / compute,
                    ops.get(OpClass::Int) / compute,
                ),
                byte_shares: (
                    ops.bytes(OpClass::Shared) / bytes,
                    ops.bytes(OpClass::L1) / bytes,
                    ops.bytes(OpClass::L2) / bytes,
                    ops.bytes(OpClass::Dram) / bytes,
                ),
            }
        })
        .collect()
}

/// Reproduces Figure 6: per-class energy breakdown at maximum frequency
/// (S1) for each FMM input.  Returns `(f_id, BreakdownReport)`.
pub fn fig6_energy_breakdown(
    model: &EnergyModel,
    profiles: &[(FmmInput, FmmProfile)],
    seed: u64,
) -> Vec<(&'static str, BreakdownReport)> {
    let s1 = SYSTEM_SETTINGS[0].setting();
    let mut device = Device::new(seed ^ 0xF166);
    device.set_operating_point(s1);
    profiles
        .iter()
        .map(|(input, profile)| {
            let time_s: f64 = profile.kernels().iter().map(|k| device.execute(k).duration_s).sum();
            (input.id, BreakdownReport::new(model, &profile.total_ops(), s1, time_s))
        })
        .collect()
}

/// One Figure 7 bar: computation/data/constant-power shares for a case.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Case label ("S1/F1" style).
    pub label: String,
    /// Computation share of total energy.
    pub computation: f64,
    /// Data-movement share.
    pub data: f64,
    /// Constant-power share.
    pub constant: f64,
}

/// Reproduces Figure 7 from the Figure 5 cases.
pub fn fig7_buckets(model: &EnergyModel, cases: &[CaseResult]) -> Vec<Fig7Row> {
    cases
        .iter()
        .map(|c| {
            let r = BreakdownReport::new(model, &c.ops, c.setting, c.time_s);
            Fig7Row {
                label: format!("{}/{}", c.s_id, c.f_id),
                computation: r.buckets[0].share,
                data: r.buckets[1].share,
                constant: r.buckets[2].share,
            }
        })
        .collect()
}

/// The Section IV-C observations, measured.
#[derive(Debug, Clone)]
pub struct ObservationSummary {
    /// Integer share of compute instructions (paper: ≈ 0.60).
    pub integer_instruction_share: f64,
    /// Integer share of compute energy (paper: ≈ 0.23).
    pub integer_energy_share: f64,
    /// DRAM share of memory accesses (paper: ≈ 0.13).
    pub dram_access_share: f64,
    /// DRAM share of data energy (paper: up to ≈ 0.50).
    pub dram_energy_share: f64,
    /// Min/max constant-power share over the 64 FMM cases (paper:
    /// 0.75–0.95).
    pub fmm_constant_share_range: (f64, f64),
    /// Constant-power share of the most intense SP microbenchmark at S1
    /// (paper: ≈ 0.30).
    pub microbench_constant_share: f64,
    /// Whether the FMM's best-energy setting equals its best-time
    /// setting (the paper's race-to-halt-is-fine-for-FMM conclusion).
    pub fmm_best_energy_is_best_time: bool,
}

/// Measures every Section IV-C observation.
pub fn observations(
    model: &EnergyModel,
    profiles: &[(FmmInput, FmmProfile)],
    cases: &[CaseResult],
    seed: u64,
) -> ObservationSummary {
    // Instruction/energy shares from F1 at S1.
    let (_, f1) = &profiles[0];
    let ops = f1.total_ops();
    let s1 = SYSTEM_SETTINGS[0].setting();
    let case_s1f1 = cases.iter().find(|c| c.s_id == "S1" && c.f_id == "F1").expect("S1/F1 present");
    let report = BreakdownReport::new(model, &ops, s1, case_s1f1.time_s);
    let integer_instruction_share = ops.get(OpClass::Int) / ops.total_compute();
    let integer_energy_share = report.integer_share_of_compute();
    let dram_access_share = ops.get(OpClass::Dram) / ops.total_memory_ops();
    let dram_energy_share = report.dram_share_of_data();

    // Constant-power share range over all 64 cases.
    let mut lo = f64::INFINITY;
    let mut hi = 0.0f64;
    for c in cases {
        let share = BreakdownReport::new(model, &c.ops, c.setting, c.time_s).constant_share();
        lo = lo.min(share);
        hi = hi.max(share);
    }

    // Microbenchmark contrast: the most intense SP point at S1.
    let sp = MicrobenchKind::SinglePrecision;
    let top = sp.instance(*sp.intensities().last().expect("non-empty"));
    let mut device = Device::new(seed ^ 0x0B5);
    device.set_operating_point(s1);
    let exec = device.execute(top.kernel());
    let micro_share =
        BreakdownReport::new(model, &top.kernel().ops, s1, exec.duration_s).constant_share();

    // Best-energy vs best-time over all 105 settings for F1.  As in the
    // paper, this is the *model's* verdict: the model predicts energy at
    // every setting (using the measured time there); the claim holds if
    // the predicted-best-energy setting is also a fastest setting (within
    // run-to-run jitter — many settings tie on time when another resource
    // is the bottleneck).
    let kernels = f1.kernels();
    let mut meter = PowerMon::new(seed ^ 0x0B6);
    let mut rows: Vec<(Setting, f64, f64)> = Vec::new();
    for setting in Setting::all() {
        device.set_operating_point(setting);
        let mut t = 0.0;
        for k in &kernels {
            let m = meter.measure(&mut device, k);
            t += m.execution.duration_s;
        }
        let predicted = model.predict_energy_j(&ops, setting, t);
        rows.push((setting, t, predicted));
    }
    // `total_cmp` keeps the argmins total even if a degraded fit ever
    // yields a NaN prediction (NaN sorts last, so it can't be picked).
    let best_energy = rows.iter().min_by(|a, b| a.2.total_cmp(&b.2)).expect("non-empty");
    let t_min = rows.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
    // The operational form of the paper's claim: the best-energy setting
    // is (within jitter) also a fastest setting — or, equivalently,
    // racing to halt forfeits almost no energy because constant power
    // dominates.  Accept either signature: the argmin-energy setting ties
    // the fastest on time, or the fastest setting's predicted energy is
    // within a few percent of the optimum.
    let fastest = rows.iter().min_by(|a, b| a.1.total_cmp(&b.1)).expect("non-empty");
    let fmm_best_energy_is_best_time =
        best_energy.1 <= t_min * 1.02 || fastest.2 <= best_energy.2 * 1.05;

    ObservationSummary {
        integer_instruction_share,
        integer_energy_share,
        dram_access_share,
        dram_energy_share,
        fmm_constant_share_range: (lo, hi),
        microbench_constant_share: micro_share,
        fmm_best_energy_is_best_time,
    }
}

/// One point of the utilization ablation (experiment A1 in DESIGN.md).
#[derive(Debug, Clone)]
pub struct MicrobenchAblationPoint {
    /// Kernel utilization.
    pub utilization: f64,
    /// Constant-power share of total energy at the best-energy setting.
    pub constant_share: f64,
    /// Energy the race-to-halt pick loses vs the true optimum (fraction).
    pub race_to_halt_loss: f64,
}

/// Sweeps utilization for a fixed high-intensity kernel and measures how
/// the race-to-halt penalty shrinks as constant power comes to dominate —
/// the paper's Section IV-C hypothesis, isolated.
pub fn utilization_ablation(model: &EnergyModel, seed: u64) -> Vec<MicrobenchAblationPoint> {
    let settings: Vec<Setting> = Setting::all().collect();
    let base = MicrobenchKind::SinglePrecision.instance(64.0);
    [1.0, 0.7, 0.5, 0.35, 0.25, 0.15, 0.08]
        .iter()
        .map(|&util| {
            let kernel = base.kernel().clone().with_utilization(util);
            let mut device = Device::new(seed ^ (util * 1e6) as u64);
            let mut meter = PowerMon::new(seed ^ 0xAB1);
            let mut energies = Vec::new();
            let mut times = Vec::new();
            for &s in &settings {
                device.set_operating_point(s);
                let m = meter.measure(&mut device, &kernel);
                times.push(m.execution.duration_s);
                energies.push(m.measured_energy_j);
            }
            let best = argmin(&energies);
            // Race-to-halt: fastest (ties toward max clocks).
            let tmin = times.iter().cloned().fold(f64::INFINITY, f64::min);
            let race = (0..settings.len())
                .filter(|&i| times[i] <= tmin * 1.01)
                .max_by_key(|&i| (settings[i].core_idx, settings[i].mem_idx))
                .expect("non-empty");
            let share = {
                let s = settings[best];
                let t = times[best];
                BreakdownReport::new(model, &kernel.ops, s, t).constant_share()
            };
            MicrobenchAblationPoint {
                utilization: util,
                constant_share: share,
                race_to_halt_loss: energies[race] / energies[best] - 1.0,
            }
        })
        .collect()
}

/// Scans the prefetch what-if (experiment A3): for each unused-data
/// fraction, the break-even slowdown below which disabling prefetch
/// saves energy.  Returns `(unused_fraction, breakeven_slowdown)`.
pub fn prefetch_scan(model: &EnergyModel, profile: &FmmProfile, time_s: f64) -> Vec<(f64, f64)> {
    let s1 = SYSTEM_SETTINGS[0].setting();
    [0.05, 0.1, 0.2, 0.3, 0.5]
        .iter()
        .map(|&unused| {
            let scenario = dvfs_energy_model::PrefetchScenario {
                ops: profile.total_ops(),
                time_s,
                unused_fraction: unused,
                slowdown: 1.0,
            };
            let verdict = dvfs_energy_model::prefetch_whatif(model, &scenario, s1);
            (unused, verdict.breakeven_slowdown)
        })
        .collect()
}

fn argmin(values: &[f64]) -> usize {
    values.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1)).expect("non-empty").0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One shared model for the cheaper tests, pinned fault-free so the
    /// paper-band assertions stay deterministic even when the suite runs
    /// under `FMM_ENERGY_FAULTS`.
    fn model() -> EnergyModel {
        let cfg = SweepConfig { seed: 0xBEEF, faults: None, ..SweepConfig::default() };
        try_fitted_model(&cfg).expect("clean pipeline").model
    }

    #[test]
    fn faulted_pipeline_fits_and_reports_its_bookkeeping() {
        use dvfs_microbench::dataset::table1_settings;
        use tk1_sim::faults::FaultConfig;
        let cfg = SweepConfig {
            settings: table1_settings(),
            kinds: vec![MicrobenchKind::SinglePrecision, MicrobenchKind::L2],
            trials: 1,
            seed: 0xFA17,
            threads: 0,
            faults: Some(FaultConfig::default_campaign()),
        };
        let fit = try_fitted_model(&cfg).expect("default fault rates are survivable");
        assert_eq!(fit.dataset.len(), cfg.sample_count());
        assert!(fit.sweep_stats.total_retries() > 0, "default rates must trip some gate");
        assert!(fit.model.p_misc_w.is_finite());
        // Two families can't excite every design column, so this fit
        // also exercises the degradation ladder: the unexcited columns
        // must be dropped and reported, not silently mis-fit.
        assert!(fit.fit_diagnostics.condition_estimate >= 1.0);
        assert!(!fit.fit_diagnostics.dropped_columns.is_empty());
        assert!(fit.fit_diagnostics.degraded());
    }

    #[test]
    fn table1_measured_tracks_paper() {
        let m = model();
        let rows = table1_rows(&m);
        assert_eq!(rows.len(), 16);
        for row in &rows {
            // SP energy within ~18% of the paper's column (the structural
            // misspecifications — thermal feedback, activity nonlinearity
            // — bias the dynamic coefficients upward by ~10%; see
            // EXPERIMENTS.md).
            let rel = (row.measured.0 - row.paper.0).abs() / row.paper.0;
            assert!(
                rel < 0.18,
                "{}: SP {:.1} vs {:.1}",
                row.setting.label(),
                row.measured.0,
                row.paper.0
            );
            // Constant power within 10%.
            let rel = (row.measured.6 - row.paper.6).abs() / row.paper.6;
            assert!(
                rel < 0.10,
                "{}: π0 {:.2} vs {:.2}",
                row.setting.label(),
                row.measured.6,
                row.paper.6
            );
        }
    }

    #[test]
    fn fig5_errors_in_paper_band() {
        let m = model();
        let profiles = fmm_profiles(4, 7); // 1/16th scale keeps the test quick
        let (cases, stats) = fig5_validation(&m, &profiles, 11);
        assert_eq!(cases.len(), 64);
        // Paper: mean 6.17% (max 14.89%).  Same order of magnitude here.
        assert!(stats.mean_pct < 12.0, "{}", stats.summary());
        assert!(stats.max_pct < 30.0, "{}", stats.summary());
    }

    #[test]
    fn fig7_constant_power_dominates_fmm() {
        let m = model();
        let profiles = fmm_profiles(4, 7);
        let (cases, _) = fig5_validation(&m, &profiles, 11);
        let rows = fig7_buckets(&m, &cases);
        for r in &rows {
            assert!(
                r.constant > 0.55,
                "{}: constant share {:.2} should dominate",
                r.label,
                r.constant
            );
            assert!((r.computation + r.data + r.constant - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn utilization_ablation_is_monotone_in_spirit() {
        let m = model();
        let points = utilization_ablation(&m, 3);
        // Constant share grows as utilization falls...
        assert!(points.last().unwrap().constant_share > points[0].constant_share);
        // ...and the race-to-halt penalty shrinks to (near) nothing.
        assert!(points[0].race_to_halt_loss > points.last().unwrap().race_to_halt_loss);
        assert!(points.last().unwrap().race_to_halt_loss < 0.02);
    }
}
