//! Experiment reproduction library.
//!
//! One function per paper artifact (Tables I–IV, Figures 4–7, the
//! Section II-D cross-validations and the Section IV-C observations),
//! each returning a structured result that the `repro` binary prints and
//! the integration tests assert on.  Paper reference values live in
//! [`paper`] so every report can show *paper vs. measured* side by side.

pub mod governor;
pub mod paper;
pub mod pipeline;
pub mod report;
pub mod scaling;
pub mod service_load;

pub use governor::{governor_comparison, GovernorCase, PolicyOutcome};
pub use pipeline::{
    fig4_breakdown, fig5_validation, fig6_energy_breakdown, fig7_buckets, fitted_model,
    fmm_profiles, observations, prefetch_scan, table1_rows, table2_outcomes, try_fitted_model,
    utilization_ablation, CaseResult, Fig7Row, MicrobenchAblationPoint, ObservationSummary,
    PipelineFit, Table1Row,
};
pub use scaling::{potential_digest, scaling_grid, ScalingCase};
pub use service_load::{
    service_load, synth_request, LatencyStats, LoadConfig, LoadReport, OverloadReport,
};
