//! Thread-scaling measurement grid for the FMM evaluation engine.
//!
//! One `(n, threads)` grid drives both the committed `BENCH_fmm.json`
//! snapshot (`bench_snapshot`) and the `repro fmm-scaling` table, so the
//! two artifacts can never disagree about what was measured.  For each
//! problem size the plan (tree, lists, operators) is built **once** and
//! evaluated under every pool width; alongside the phase medians each
//! case records a digest folded from the raw potential bits, which makes
//! the engine's bitwise thread-invariance checkable from the artifact
//! alone — equal digests across a size's rows *are* the reproducibility
//! claim.
//!
//! The worker count recorded per case is the **resolved** one
//! ([`compat::par::num_threads`] after the override), not the requested
//! one, so a snapshot taken under `FMM_ENERGY_THREADS` or on a smaller
//! machine says what actually ran.

use compat::rng::StdRng;
use compat::{env, par};
use kifmm::evaluator::{FmmPlan, M2lMethod};
use kifmm::{FmmEvaluator, PhaseTimings};

/// Pool widths measured by default: the paper's 1/2/4 core sweep plus
/// an 8-way point for SMT/headroom.
pub const DEFAULT_THREAD_GRID: [usize; 4] = [1, 2, 4, 8];

/// Problem sizes for the committed snapshot, up to `2^20` points.
pub const DEFAULT_SIZES: [usize; 4] = [8_192, 32_768, 262_144, 1_048_576];

/// Environment override for the repetition count (a positive integer);
/// an explicit `--reps` flag still wins over it.
pub const REPS_ENV: &str = "FMM_ENERGY_BENCH_REPS";

/// Resolves the repetition count: `FMM_ENERGY_BENCH_REPS` if set and
/// positive, else `fallback`.
pub fn reps_from_env(fallback: usize) -> usize {
    env::positive_usize(REPS_ENV).unwrap_or(fallback)
}

/// One measured `(n, threads)` grid point.
#[derive(Debug, Clone)]
pub struct ScalingCase {
    /// Problem size.
    pub n: usize,
    /// Resolved worker count the case actually ran with.
    pub threads: usize,
    /// Timed repetitions behind each median.
    pub reps: usize,
    /// Per-phase median seconds (up, v, x, down, near).
    pub phase_medians_s: [f64; 5],
    /// Median total evaluation seconds.
    pub evaluate_median_s: f64,
    /// FNV-1a fold of the output potentials' bit patterns; identical
    /// across rows of the same `n` iff the engine is thread-invariant.
    pub digest: u64,
}

/// The standard uniform-cube benchmark problem (matches the committed
/// snapshot and the `fmm_phases` criterion bench).
pub fn cloud(n: usize, seed: u64) -> (Vec<[f64; 3]>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let pts = (0..n).map(|_| [rng.random(), rng.random(), rng.random()]).collect();
    let den = (0..n).map(|_| 2.0 * rng.random::<f64>() - 1.0).collect();
    (pts, den)
}

/// FNV-1a over the bit patterns of `potentials` — order-sensitive, so
/// it pins both values and their layout.
pub fn potential_digest(potentials: &[f64]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for p in potentials {
        for b in p.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        0.5 * (xs[n / 2 - 1] + xs[n / 2])
    }
}

/// Measures the full `sizes × threads` grid.  The plan is built once
/// per size (under the first requested width, which also exercises the
/// parallel tree build); each width then gets one warm-up evaluation
/// (pool spin-up, arena touch, schedule build) before `reps` timed
/// runs.  The pool override is restored to its entry state on return.
pub fn scaling_grid(
    sizes: &[usize],
    threads: &[usize],
    reps: usize,
    seed: u64,
) -> Vec<ScalingCase> {
    let mut cases = Vec::with_capacity(sizes.len() * threads.len());
    for &n in sizes {
        let (pts, den) = cloud(n, seed);
        let mut plan: Option<FmmPlan> = None;
        for &t in threads {
            par::set_thread_count(Some(t));
            let resolved = par::num_threads();
            let plan = plan.get_or_insert_with(|| FmmPlan::new(&pts, &den, 64, 4, M2lMethod::Fft));
            let eval = FmmEvaluator::new();
            let warm = eval.evaluate(plan);
            let mut runs: Vec<PhaseTimings> = Vec::with_capacity(reps);
            for _ in 0..reps {
                let (_, timings) = eval.evaluate_timed(plan);
                runs.push(timings);
            }
            let med = |f: fn(&PhaseTimings) -> f64| {
                let mut xs: Vec<f64> = runs.iter().map(f).collect();
                median(&mut xs)
            };
            cases.push(ScalingCase {
                n,
                threads: resolved,
                reps,
                phase_medians_s: [
                    med(|t| t.up_s),
                    med(|t| t.v_s),
                    med(|t| t.x_s),
                    med(|t| t.down_s),
                    med(|t| t.near_s),
                ],
                evaluate_median_s: med(|t| t.total_s),
                digest: potential_digest(&warm),
            });
        }
    }
    par::set_thread_count(None);
    cases
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_order_and_bit_sensitive() {
        let a = potential_digest(&[1.0, 2.0, 3.0]);
        assert_eq!(a, potential_digest(&[1.0, 2.0, 3.0]));
        assert_ne!(a, potential_digest(&[2.0, 1.0, 3.0]), "order matters");
        assert_ne!(a, potential_digest(&[1.0, 2.0]), "length matters");
        assert_ne!(potential_digest(&[0.0]), potential_digest(&[-0.0]), "bit patterns, not values");
    }

    #[test]
    fn reps_env_overrides_fallback() {
        // The only test touching FMM_ENERGY_BENCH_REPS; keep it that way.
        std::env::remove_var(REPS_ENV);
        assert_eq!(reps_from_env(7), 7);
        std::env::set_var(REPS_ENV, "3");
        assert_eq!(reps_from_env(7), 3);
        std::env::set_var(REPS_ENV, "0");
        assert_eq!(reps_from_env(7), 7, "non-positive values fall back");
        std::env::remove_var(REPS_ENV);
    }

    #[test]
    fn grid_covers_every_point_and_digests_agree_per_size() {
        let cases = scaling_grid(&[600], &[1, 2], 1, 3);
        assert_eq!(cases.len(), 2);
        assert!(cases.iter().all(|c| c.n == 600 && c.reps == 1));
        assert_eq!(cases[0].threads, 1);
        assert!(cases.iter().all(|c| c.evaluate_median_s > 0.0));
        assert_eq!(cases[0].digest, cases[1].digest, "potentials bitwise identical across widths");
        assert_eq!(par::num_threads(), par::num_threads(), "override restored");
    }
}
