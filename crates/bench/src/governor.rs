//! The governor experiment: per-phase DVFS policies vs. the paper's
//! static autotuning, over the paper's 8 FMM inputs × 8 DVFS settings.
//!
//! For every FMM input (Table IV) the experiment:
//!
//! 1. measures a *static* run at each of the 8 paper system settings
//!    (S1–S8) and records the best — the ground truth the paper's
//!    Table II strategy aspires to;
//! 2. runs every governor policy over the same workload on an
//!    identically-seeded device/meter, so policies differ only in
//!    their decisions — never in their noise draws;
//! 3. reports total energy (transition costs included), time, switch
//!    counts and latch retries per policy.
//!
//! Everything is seeded and simulated, so the whole comparison is
//! bitwise reproducible across thread counts.

use dvfs_energy_model::experiments::{FmmInput, SYSTEM_SETTINGS};
use dvfs_energy_model::EnergyModel;
use dvfs_governor::{
    FixedSetting, GovernorConfig, GovernorReport, GovernorRuntime, Oracle, PerPhaseAdaptive,
    PerPhaseModel, Policy, RaceToHalt, StaticBest, Workload,
};
use kifmm::FmmProfile;
use tk1_sim::{FaultConfig, Setting};

/// One policy's totals for one FMM input.
#[derive(Debug, Clone)]
pub struct PolicyOutcome {
    /// The policy name ([`Policy::name`]).
    pub policy: &'static str,
    /// Total energy, transition costs included, J.
    pub energy_j: f64,
    /// Total time, transition latency included, s.
    pub time_s: f64,
    /// Transition energy alone, J.
    pub transition_energy_j: f64,
    /// Phase boundaries where the operating point moved.
    pub switches: usize,
    /// Latch retries survived.
    pub latch_retries: u32,
}

impl PolicyOutcome {
    fn from_report(r: &GovernorReport) -> Self {
        PolicyOutcome {
            policy: r.policy,
            energy_j: r.total_energy_j,
            time_s: r.total_time_s,
            transition_energy_j: r.transition_energy_j,
            switches: r.switches,
            latch_retries: r.latch_retries,
        }
    }
}

/// The governor comparison for one FMM input.
#[derive(Debug, Clone)]
pub struct GovernorCase {
    /// The input (paper Table IV row).
    pub input: FmmInput,
    /// Measured total energy of a static run at each S1–S8, in
    /// [`SYSTEM_SETTINGS`] order, J.
    pub static_energy_j: Vec<(&'static str, f64)>,
    /// The id of the best (measured) static setting.
    pub best_static_id: &'static str,
    /// Its energy, J.
    pub best_static_j: f64,
    /// Governor policy outcomes.
    pub outcomes: Vec<PolicyOutcome>,
}

impl GovernorCase {
    /// The outcome of `policy` (by [`Policy::name`]).
    pub fn outcome(&self, policy: &str) -> &PolicyOutcome {
        self.outcomes.iter().find(|o| o.policy == policy).expect("policy present")
    }
}

/// Runs the full comparison: every policy over every profiled input.
///
/// All runtimes of one input share one per-input seed, so each policy
/// sees an identical device, meter and fault stream; `faults` applies
/// to every run (including the transition-model calibration).
pub fn governor_comparison(
    model: &EnergyModel,
    profiles: &[(FmmInput, FmmProfile)],
    cfg: &GovernorConfig,
    seed: u64,
    faults: Option<&FaultConfig>,
) -> Vec<GovernorCase> {
    let candidates: Vec<Setting> = SYSTEM_SETTINGS.iter().map(|s| s.setting()).collect();
    profiles
        .iter()
        .enumerate()
        .map(|(i, (input, profile))| {
            let case_seed = seed.wrapping_add((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let workload = Workload::from_profile(profile, cfg.rounds);
            let runtime =
                || GovernorRuntime::new(model.clone(), candidates.clone(), case_seed, faults);

            // Static baselines: one pinned run per paper setting.
            let mut static_energy_j = Vec::with_capacity(SYSTEM_SETTINGS.len());
            for sys in &SYSTEM_SETTINGS {
                let mut rt = runtime();
                let report = rt.run(&workload, &mut FixedSetting(sys.setting()));
                static_energy_j.push((sys.id, report.total_energy_j));
            }
            // First-wins min: ties resolve to the lowest setting index.
            let (best_static_id, best_static_j) = static_energy_j
                .iter()
                .copied()
                .reduce(|best, cur| if cur.1 < best.1 { cur } else { best })
                .expect("eight settings");

            // Governor policies, each on a fresh identically-seeded rig.
            let mut outcomes = Vec::new();
            let mut named: Vec<Box<dyn Policy>> = vec![
                Box::new(StaticBest::new()),
                Box::new(RaceToHalt),
                Box::new(PerPhaseModel::new()),
                Box::new(PerPhaseAdaptive::from_config(cfg)),
            ];
            for policy in named.iter_mut() {
                let mut rt = runtime();
                let report = rt.run(&workload, policy.as_mut());
                outcomes.push(PolicyOutcome::from_report(&report));
            }
            // Oracle last: it snapshots the device's hidden truth.
            let mut rt = runtime();
            let mut oracle = Oracle::new(rt.device());
            let report = rt.run(&workload, &mut oracle);
            outcomes.push(PolicyOutcome::from_report(&report));

            GovernorCase { input: *input, static_energy_j, best_static_id, best_static_j, outcomes }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{fmm_profiles, try_fitted_model};
    use dvfs_microbench::SweepConfig;

    fn fitted() -> EnergyModel {
        // Pinned fault-free (the acceptance claims must hold even when
        // the suite runs under FMM_ENERGY_FAULTS), small seed space.
        try_fitted_model(&SweepConfig { seed: 0xBEEF, faults: None, ..SweepConfig::default() })
            .expect("clean fit")
            .model
    }

    fn cases(faults: Option<&FaultConfig>) -> Vec<GovernorCase> {
        let model = fitted();
        let profiles = fmm_profiles(6, 7);
        governor_comparison(&model, &profiles, &GovernorConfig::default(), 0xC0DE, faults)
    }

    #[test]
    fn per_phase_model_beats_best_static_on_most_inputs() {
        let cases = cases(None);
        assert_eq!(cases.len(), 8);
        let wins = cases
            .iter()
            .filter(|c| c.outcome("per-phase-model").energy_j <= c.best_static_j)
            .count();
        // The acceptance bar: transition costs included, the per-phase
        // model pick must match or beat the best *measured* static
        // setting on at least 6 of the paper's 8 inputs.
        assert!(wins >= 6, "per-phase-model wins on {wins}/8 inputs");
        for c in &cases {
            let rth = c.outcome("race-to-halt");
            assert!(rth.energy_j > 0.0 && rth.time_s > 0.0);
        }
    }

    #[test]
    fn adaptive_stays_within_5pct_of_model_under_default_faults() {
        let faults = FaultConfig::default_campaign();
        let cases = cases(Some(&faults));
        for c in &cases {
            let model = c.outcome("per-phase-model").energy_j;
            let adaptive = c.outcome("per-phase-adaptive").energy_j;
            assert!(
                adaptive <= model * 1.05,
                "{}: adaptive {adaptive} vs model {model}",
                c.input.id
            );
        }
    }

    #[test]
    fn comparison_is_bitwise_deterministic_across_threads() {
        let model = fitted();
        // Two inputs keep the 4× repetition affordable; the full-size
        // comparison runs through the identical code path.
        let profiles: Vec<_> = fmm_profiles(6, 7).into_iter().take(2).collect();
        let run =
            || governor_comparison(&model, &profiles, &GovernorConfig::default(), 0xC0DE, None);
        let reference = run();
        for threads in [1usize, 2, 4, 8] {
            compat::par::set_thread_count(Some(threads));
            let again = run();
            for (a, b) in reference.iter().zip(&again) {
                assert_eq!(a.best_static_j.to_bits(), b.best_static_j.to_bits());
                for (oa, ob) in a.outcomes.iter().zip(&b.outcomes) {
                    assert_eq!(oa.policy, ob.policy);
                    assert_eq!(
                        oa.energy_j.to_bits(),
                        ob.energy_j.to_bits(),
                        "{} energy at {threads} threads",
                        oa.policy
                    );
                    assert_eq!(oa.time_s.to_bits(), ob.time_s.to_bits());
                    assert_eq!(oa.switches, ob.switches);
                }
            }
        }
        compat::par::set_thread_count(None);
    }

    #[test]
    fn governed_evaluation_matches_ungoverned_potentials() {
        use dvfs_governor::governed_evaluate;
        use kifmm::distributions::plummer;
        use kifmm::evaluator::{FmmPlan, M2lMethod};
        use kifmm::{profile_plan, CostModel, FmmEvaluator};

        let pts = plummer(1500, 0.3, 11);
        let den = vec![1.0; pts.len()];
        let plan = FmmPlan::new(&pts, &den, 64, 4, M2lMethod::Fft);
        let profile = profile_plan(&plan, &CostModel::default());
        let model = fitted();
        let candidates: Vec<Setting> = SYSTEM_SETTINGS.iter().map(|s| s.setting()).collect();
        let mut rt = GovernorRuntime::new(model, candidates, 0xFEED, None);
        let mut policy = PerPhaseModel::new();
        let (governed, report) = governed_evaluate(&plan, &profile, &mut rt, &mut policy);
        let ungoverned = FmmEvaluator::new().evaluate(&plan);
        assert_eq!(governed, ungoverned, "the governor cannot touch the numerics");
        assert_eq!(report.records.len(), 5, "five engine phase boundaries");
        assert!(report.total_energy_j > 0.0);
    }
}
