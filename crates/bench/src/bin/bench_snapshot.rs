//! Phase-timing snapshot for the FMM evaluation engine.
//!
//! Runs the standard uniform-cube problem (q = 64, p = 4, FFT M2L) over
//! a `sizes × threads` grid (see [`dvfs_bench::scaling`]), measures
//! per-phase and total wall time with `FmmEvaluator::evaluate_timed`,
//! and writes the medians — plus a potential-bits digest per case — as
//! JSON, the artifact `scripts/bench_snapshot.sh` commits as
//! `BENCH_fmm.json`.  Each case records the *resolved* worker count it
//! ran with (honoring `FMM_ENERGY_THREADS` and the machine cap), and
//! the repetition count falls back to `FMM_ENERGY_BENCH_REPS` when no
//! `--reps` flag is given.
//!
//! Usage: `bench_snapshot [--out FILE] [--reps K] [--sizes N1,N2,...]
//! [--threads T1,T2,...]`
//!
//! `bench_snapshot --check FILE` instead validates that `FILE` parses
//! with the in-tree JSON reader and has the expected shape — the CI
//! mode used by `scripts/ci.sh --with-snapshot`.
//!
//! `bench_snapshot --check-fmm FILE [--baseline-fmm BASE]` goes
//! further: shape, positive timings, per-size digest agreement (the
//! bitwise thread-invariance claim), grid coverage (threads ⊇
//! {1,2,4,8}, max n ≥ 2^20 — skipped when comparing against a
//! baseline), and, with `--baseline-fmm`, a >10% regression gate on
//! `evaluate_median_s` at every `(n, threads)` point both files share.
//!
//! `bench_snapshot --governor FILE [--scale-shift K] [--seed S]` runs
//! the phase-aware governor comparison (fitted model, 8 inputs × 8
//! settings, every policy) and writes per-policy energy/time as JSON —
//! the artifact committed as `BENCH_governor.json`.
//! `--check-governor FILE` validates that artifact's shape.
//!
//! `bench_snapshot --service FILE [--requests N] [--seed S]` drives the
//! autotune server with `bench::service_load` (a ≥1M-request seeded
//! closed-loop run plus a cross-shard digest sweep and an overload
//! probe) and writes latency/throughput/cache/rejection results as
//! JSON — the artifact committed as `BENCH_service.json`.
//! `--check-service FILE` validates that artifact's shape *and* its
//! service-level invariants: a ≥1M-request run, cache-hit p99 at least
//! 10× below cold-fit p99, some-but-not-all overload rejections, and
//! identical digests across the 1/2/4/8-shard sweep.

use compat::json::Json;
use dvfs_bench::scaling::{self, ScalingCase};

fn case_to_json(c: &ScalingCase) -> Json {
    let [up, v, x, down, near] = c.phase_medians_s;
    Json::obj([
        ("n", Json::Num(c.n as f64)),
        ("q", Json::Num(64.0)),
        ("p", Json::Num(4.0)),
        ("m2l", Json::Str("fft".to_string())),
        ("threads", Json::Num(c.threads as f64)),
        ("reps", Json::Num(c.reps as f64)),
        (
            "phase_medians_s",
            Json::obj([
                ("up", Json::Num(up)),
                ("v", Json::Num(v)),
                ("x", Json::Num(x)),
                ("down", Json::Num(down)),
                ("near", Json::Num(near)),
            ]),
        ),
        ("evaluate_median_s", Json::Num(c.evaluate_median_s)),
        ("digest", Json::Str(format!("{:016x}", c.digest))),
    ])
}

/// Minimal parsed form of one snapshot case, for `--check-fmm`.
struct ParsedCase {
    n: usize,
    threads: usize,
    evaluate_median_s: f64,
    digest: String,
}

fn parse_fmm_cases(path: &str, tag: &str) -> Vec<ParsedCase> {
    let fail = |msg: String| -> ! {
        eprintln!("bench_snapshot {tag}: {msg}");
        std::process::exit(1);
    };
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(format!("cannot read {path}: {e}")));
    let doc =
        Json::parse(&text).unwrap_or_else(|e| fail(format!("{path} is not valid JSON: {e:?}")));
    let Json::Obj(fields) = &doc else { fail("top level must be an object".to_string()) };
    let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
    match get("benchmark") {
        Some(Json::Str(s)) if s == "fmm_evaluate_phases" => {}
        other => fail(format!("bad benchmark field: {other:?}")),
    }
    let Some(Json::Arr(cases)) = get("cases") else { fail("missing cases array".to_string()) };
    let mut parsed = Vec::with_capacity(cases.len());
    for case in cases {
        let Json::Obj(cf) = case else { fail("case is not an object".to_string()) };
        let cget = |key: &str| cf.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let num = |key: &str| match cget(key) {
            Some(Json::Num(v)) => *v,
            other => fail(format!("case missing numeric {key}: {other:?}")),
        };
        let Some(Json::Obj(pm)) = cget("phase_medians_s") else {
            fail("case missing phase_medians_s".to_string())
        };
        for key in ["up", "v", "x", "down", "near"] {
            match pm.iter().find(|(k, _)| k == key).map(|(_, v)| v) {
                Some(Json::Num(v)) if *v >= 0.0 => {}
                other => fail(format!("phase_medians_s.{key} bad: {other:?}")),
            }
        }
        let Some(Json::Str(digest)) = cget("digest") else {
            fail("case missing digest".to_string())
        };
        let total = num("evaluate_median_s");
        if total <= 0.0 {
            fail(format!("evaluate_median_s must be positive, got {total}"));
        }
        if num("reps") < 1.0 {
            fail("reps must be at least 1".to_string());
        }
        parsed.push(ParsedCase {
            n: num("n") as usize,
            threads: num("threads") as usize,
            evaluate_median_s: total,
            digest: digest.clone(),
        });
    }
    parsed
}

/// Validates an FMM scaling snapshot: shape, per-size digest agreement,
/// grid coverage (committed-artifact mode), and an optional >10%
/// regression gate against a baseline file.  Exits non-zero on any
/// failure.
fn check_fmm(path: &str, baseline: Option<&str>) {
    let fail = |msg: String| -> ! {
        eprintln!("bench_snapshot --check-fmm: {msg}");
        std::process::exit(1);
    };
    let cases = parse_fmm_cases(path, "--check-fmm");
    if cases.is_empty() {
        fail("no cases".to_string());
    }
    // The engine's reproducibility claim: every thread count produced
    // bit-identical potentials for each size.
    let mut sizes: Vec<usize> = cases.iter().map(|c| c.n).collect();
    sizes.sort_unstable();
    sizes.dedup();
    for &n in &sizes {
        let digests: Vec<&str> =
            cases.iter().filter(|c| c.n == n).map(|c| c.digest.as_str()).collect();
        if digests.windows(2).any(|w| w[0] != w[1]) {
            fail(format!("digest mismatch across thread counts at n={n}: {digests:?}"));
        }
    }
    match baseline {
        None => {
            // Committed-artifact coverage: the full thread grid and the
            // 2^20-point size must be present.
            let mut threads: Vec<usize> = cases.iter().map(|c| c.threads).collect();
            threads.sort_unstable();
            threads.dedup();
            for want in scaling::DEFAULT_THREAD_GRID {
                if !threads.contains(&want) {
                    fail(format!("thread grid {threads:?} missing width {want}"));
                }
            }
            let max_n = *sizes.last().expect("nonempty");
            if max_n < 1_048_576 {
                fail(format!("largest size {max_n} is below 1048576"));
            }
            println!(
                "bench_snapshot --check-fmm: {path} OK ({} cases, sizes {:?}, threads {:?})",
                cases.len(),
                sizes,
                threads
            );
        }
        Some(base_path) => {
            let base = parse_fmm_cases(base_path, "--baseline-fmm");
            let mut compared = 0usize;
            for c in &cases {
                let Some(b) = base.iter().find(|b| b.n == c.n && b.threads == c.threads) else {
                    continue;
                };
                compared += 1;
                if c.evaluate_median_s > 1.10 * b.evaluate_median_s {
                    fail(format!(
                        "evaluate regression at n={} threads={}: {:.6}s vs baseline {:.6}s (>10%)",
                        c.n, c.threads, c.evaluate_median_s, b.evaluate_median_s
                    ));
                }
            }
            if compared == 0 {
                fail(format!("no (n, threads) points shared with baseline {base_path}"));
            }
            println!(
                "bench_snapshot --check-fmm: {path} OK ({compared} points within 10% of {base_path})"
            );
        }
    }
}

/// Parses a snapshot file with the in-tree JSON reader and checks its
/// shape; exits non-zero on any mismatch.
fn check(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_snapshot --check: cannot read {path}: {e}");
        std::process::exit(1);
    });
    let doc = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("bench_snapshot --check: {path} is not valid JSON: {e:?}");
        std::process::exit(1);
    });
    let Json::Obj(fields) = &doc else {
        eprintln!("bench_snapshot --check: top level must be an object");
        std::process::exit(1);
    };
    let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
    match get("benchmark") {
        Some(Json::Str(s)) if s == "fmm_evaluate_phases" => {}
        other => {
            eprintln!("bench_snapshot --check: bad benchmark field: {other:?}");
            std::process::exit(1);
        }
    }
    let Some(Json::Arr(cases)) = get("cases") else {
        eprintln!("bench_snapshot --check: missing cases array");
        std::process::exit(1);
    };
    for case in cases {
        let Json::Obj(cf) = case else {
            eprintln!("bench_snapshot --check: case is not an object");
            std::process::exit(1);
        };
        for key in ["n", "evaluate_median_s", "phase_medians_s"] {
            if !cf.iter().any(|(k, _)| k == key) {
                eprintln!("bench_snapshot --check: case missing {key}");
                std::process::exit(1);
            }
        }
    }
    println!("bench_snapshot --check: {path} OK ({} cases)", cases.len());
}

/// Runs the governor policy comparison and writes the JSON artifact.
fn governor_snapshot(out_path: &str, scale_shift: u32, seed: u64) {
    use dvfs_bench::{governor_comparison, pipeline};
    use dvfs_governor::GovernorConfig;
    use tk1_sim::FaultConfig;
    eprintln!("bench_snapshot: fitting the energy model ...");
    let (model, _) = pipeline::fitted_model(seed);
    eprintln!("bench_snapshot: profiling FMM inputs (scale shift {scale_shift}) ...");
    let profiles = pipeline::fmm_profiles(scale_shift, seed);
    let cfg = GovernorConfig::from_env();
    let faults = FaultConfig::from_env();
    let cases = governor_comparison(&model, &profiles, &cfg, seed, faults.as_ref());
    let case_docs: Vec<Json> = cases
        .iter()
        .map(|c| {
            let outcomes: Vec<Json> = c
                .outcomes
                .iter()
                .map(|o| {
                    Json::obj([
                        ("policy", Json::Str(o.policy.to_string())),
                        ("energy_j", Json::Num(o.energy_j)),
                        ("time_s", Json::Num(o.time_s)),
                        ("transition_energy_j", Json::Num(o.transition_energy_j)),
                        ("switches", Json::Num(o.switches as f64)),
                        ("latch_retries", Json::Num(o.latch_retries as f64)),
                    ])
                })
                .collect();
            Json::obj([
                ("input", Json::Str(c.input.id.to_string())),
                ("best_static", Json::Str(c.best_static_id.to_string())),
                ("best_static_j", Json::Num(c.best_static_j)),
                ("policies", Json::Arr(outcomes)),
            ])
        })
        .collect();
    let doc = Json::obj([
        ("benchmark", Json::Str("governor_policies".to_string())),
        ("scale_shift", Json::Num(scale_shift as f64)),
        ("rounds", Json::Num(cfg.rounds as f64)),
        ("threads", Json::Num(compat::par::num_threads() as f64)),
        ("cases", Json::Arr(case_docs)),
    ]);
    let text = doc.to_text();
    std::fs::write(out_path, format!("{text}\n")).expect("write governor snapshot");
    println!("{text}");
    eprintln!("bench_snapshot: wrote {out_path}");
}

/// Shape-checks a `--governor` artifact; exits non-zero on mismatch.
fn check_governor(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_snapshot --check-governor: cannot read {path}: {e}");
        std::process::exit(1);
    });
    let doc = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("bench_snapshot --check-governor: {path} is not valid JSON: {e:?}");
        std::process::exit(1);
    });
    let Json::Obj(fields) = &doc else {
        eprintln!("bench_snapshot --check-governor: top level must be an object");
        std::process::exit(1);
    };
    let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
    match get("benchmark") {
        Some(Json::Str(s)) if s == "governor_policies" => {}
        other => {
            eprintln!("bench_snapshot --check-governor: bad benchmark field: {other:?}");
            std::process::exit(1);
        }
    }
    let Some(Json::Arr(cases)) = get("cases") else {
        eprintln!("bench_snapshot --check-governor: missing cases array");
        std::process::exit(1);
    };
    for case in cases {
        let Json::Obj(cf) = case else {
            eprintln!("bench_snapshot --check-governor: case is not an object");
            std::process::exit(1);
        };
        for key in ["input", "best_static_j", "policies"] {
            if !cf.iter().any(|(k, _)| k == key) {
                eprintln!("bench_snapshot --check-governor: case missing {key}");
                std::process::exit(1);
            }
        }
        let Some((_, Json::Arr(policies))) = cf.iter().find(|(k, _)| k == "policies") else {
            eprintln!("bench_snapshot --check-governor: policies is not an array");
            std::process::exit(1);
        };
        for p in policies {
            let Json::Obj(pf) = p else {
                eprintln!("bench_snapshot --check-governor: policy is not an object");
                std::process::exit(1);
            };
            for key in ["policy", "energy_j", "time_s"] {
                if !pf.iter().any(|(k, _)| k == key) {
                    eprintln!("bench_snapshot --check-governor: policy missing {key}");
                    std::process::exit(1);
                }
            }
        }
    }
    println!("bench_snapshot --check-governor: {path} OK ({} cases)", cases.len());
}

/// Runs the service load generator and writes the JSON artifact.
fn service_snapshot(out_path: &str, requests: usize, shard_requests: usize, seed: u64) {
    use dvfs_bench::service_load::{service_load, LoadConfig};
    let cfg = LoadConfig { requests, seed, ..LoadConfig::default() };
    eprintln!(
        "bench_snapshot: driving {requests} requests ({} clients, {} shards) ...",
        cfg.clients, cfg.shards
    );
    let main = service_load(&cfg);
    eprintln!(
        "bench_snapshot: main segment {:.1}s, {:.0} req/s, hit rate {:.4}",
        main.elapsed_s, main.throughput_rps, main.cache_hit_rate
    );
    let mut shard_docs = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let sweep = LoadConfig {
            requests: shard_requests,
            shards,
            overload_probes: 0,
            seed,
            ..LoadConfig::default()
        };
        eprintln!("bench_snapshot: digest sweep at {shards} shard(s) ...");
        let run = service_load(&sweep);
        shard_docs.push(Json::obj([
            ("shards", Json::Num(shards as f64)),
            ("requests", Json::Num(run.requests as f64)),
            ("served", Json::Num(run.served as f64)),
            ("digest", Json::Str(format!("{:016x}", run.digest))),
        ]));
    }
    let doc = Json::obj([
        ("benchmark", Json::Str("autoserve_load".to_string())),
        ("seed", Json::Str(format!("{seed:016x}"))),
        ("requests", Json::Num(main.requests as f64)),
        ("served", Json::Num(main.served as f64)),
        ("fit_errors", Json::Num(main.fit_errors as f64)),
        ("clients", Json::Num(main.clients as f64)),
        ("shards", Json::Num(main.shards as f64)),
        ("queue_capacity", Json::Num(cfg.queue_capacity as f64)),
        ("batch_max", Json::Num(cfg.batch_max as f64)),
        ("distinct_devices", Json::Num(cfg.distinct_devices as f64)),
        ("elapsed_s", Json::Num(main.elapsed_s)),
        ("throughput_rps", Json::Num(main.throughput_rps)),
        (
            "latency_us",
            Json::obj([
                ("hit_count", Json::Num(main.hit.count as f64)),
                ("hit_p50", Json::Num(main.hit.p50_us)),
                ("hit_p99", Json::Num(main.hit.p99_us)),
                ("hit_max", Json::Num(main.hit.max_us)),
                ("cold_count", Json::Num(main.cold.count as f64)),
                ("cold_p50", Json::Num(main.cold.p50_us)),
                ("cold_p99", Json::Num(main.cold.p99_us)),
                ("cold_max", Json::Num(main.cold.max_us)),
            ]),
        ),
        ("cache_hit_rate", Json::Num(main.cache_hit_rate)),
        ("rejection_rate", Json::Num(main.overload.rejection_rate)),
        ("overload_attempts", Json::Num(main.overload.attempts as f64)),
        ("overload_served", Json::Num(main.overload.served as f64)),
        ("max_queue_depth", Json::Num(main.max_queue_depth as f64)),
        ("degraded_responses", Json::Num(main.degraded_responses as f64)),
        ("digest", Json::Str(format!("{:016x}", main.digest))),
        ("shard_digests", Json::Arr(shard_docs)),
        ("threads", Json::Num(compat::par::num_threads() as f64)),
    ]);
    let text = doc.to_text();
    std::fs::write(out_path, format!("{text}\n")).expect("write service snapshot");
    println!("{text}");
    eprintln!("bench_snapshot: wrote {out_path}");
}

/// Validates a `--service` artifact's shape and service-level
/// invariants; exits non-zero on any mismatch.
fn check_service(path: &str) {
    let fail = |msg: String| -> ! {
        eprintln!("bench_snapshot --check-service: {msg}");
        std::process::exit(1);
    };
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(format!("cannot read {path}: {e}")));
    let doc =
        Json::parse(&text).unwrap_or_else(|e| fail(format!("{path} is not valid JSON: {e:?}")));
    let Json::Obj(fields) = &doc else { fail("top level must be an object".to_string()) };
    let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
    let num = |key: &str| match get(key) {
        Some(Json::Num(v)) => *v,
        other => fail(format!("missing or non-numeric field {key}: {other:?}")),
    };
    match get("benchmark") {
        Some(Json::Str(s)) if s == "autoserve_load" => {}
        other => fail(format!("bad benchmark field: {other:?}")),
    }
    if num("requests") < 1_000_000.0 {
        fail(format!("committed artifact must cover >= 1M requests, got {}", num("requests")));
    }
    if num("served") != num("requests") || num("fit_errors") != 0.0 {
        fail("every request must be served without fit errors".to_string());
    }
    let hit_rate = num("cache_hit_rate");
    if !(0.5..=1.0).contains(&hit_rate) {
        fail(format!("cache_hit_rate {hit_rate} out of range (expected mostly hits)"));
    }
    let rejection_rate = num("rejection_rate");
    if !(rejection_rate > 0.0 && rejection_rate < 1.0) {
        fail(format!("rejection_rate {rejection_rate} must exercise backpressure partially"));
    }
    let Some(Json::Obj(lat)) = get("latency_us") else {
        fail("missing latency_us object".to_string())
    };
    let lat_num = |key: &str| match lat.iter().find(|(k, _)| k == key).map(|(_, v)| v) {
        Some(Json::Num(v)) => *v,
        other => fail(format!("latency_us missing {key}: {other:?}")),
    };
    let (hit_p99, cold_p99) = (lat_num("hit_p99"), lat_num("cold_p99"));
    for key in ["hit_p50", "cold_p50", "hit_max", "cold_max"] {
        let _ = lat_num(key);
    }
    if !(hit_p99 > 0.0 && cold_p99 >= 10.0 * hit_p99) {
        fail(format!("cache-hit p99 ({hit_p99}us) must be >=10x below cold p99 ({cold_p99}us)"));
    }
    if num("throughput_rps") <= 0.0 || num("elapsed_s") <= 0.0 {
        fail("throughput and elapsed time must be positive".to_string());
    }
    let Some(Json::Arr(sweep)) = get("shard_digests") else {
        fail("missing shard_digests array".to_string())
    };
    if sweep.len() < 2 {
        fail(format!("shard_digests needs >=2 entries, got {}", sweep.len()));
    }
    let mut digests = Vec::new();
    for entry in sweep {
        let Json::Obj(ef) = entry else { fail("shard_digests entry is not an object".to_string()) };
        let eget = |key: &str| ef.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let (Some(Json::Num(shards)), Some(Json::Str(digest))) = (eget("shards"), eget("digest"))
        else {
            fail("shard_digests entry missing shards/digest".to_string())
        };
        digests.push((*shards as usize, digest.clone()));
    }
    if digests.windows(2).any(|w| w[0].1 != w[1].1) {
        fail(format!("digests differ across shard counts: {digests:?}"));
    }
    println!(
        "bench_snapshot --check-service: {path} OK ({} requests, identical digests at {:?} shards)",
        num("requests"),
        digests.iter().map(|(s, _)| *s).collect::<Vec<_>>()
    );
}

fn main() {
    let mut out_path = "BENCH_fmm.json".to_string();
    let mut reps = scaling::reps_from_env(7);
    let mut sizes = vec![8192usize, 32768];
    let mut threads: Vec<usize> = scaling::DEFAULT_THREAD_GRID.to_vec();
    let mut check_fmm_path: Option<String> = None;
    let mut baseline_fmm: Option<String> = None;
    let mut governor_out: Option<String> = None;
    let mut service_out: Option<String> = None;
    let mut requests = 1_000_000usize;
    let mut shard_requests = 65_536usize;
    let mut scale_shift = 6u32;
    let mut seed = 0xC0FFEEu64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => {
                let path = args.next().expect("--check needs a path");
                check(&path);
                return;
            }
            "--check-fmm" => {
                check_fmm_path = Some(args.next().expect("--check-fmm needs a path"));
            }
            "--baseline-fmm" => {
                baseline_fmm = Some(args.next().expect("--baseline-fmm needs a path"));
            }
            "--check-governor" => {
                let path = args.next().expect("--check-governor needs a path");
                check_governor(&path);
                return;
            }
            "--check-service" => {
                let path = args.next().expect("--check-service needs a path");
                check_service(&path);
                return;
            }
            "--governor" => {
                governor_out = Some(args.next().expect("--governor needs a path"));
            }
            "--service" => {
                service_out = Some(args.next().expect("--service needs a path"));
            }
            "--requests" => {
                requests =
                    args.next().and_then(|v| v.parse().ok()).expect("--requests needs a number")
            }
            "--shard-requests" => {
                shard_requests = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--shard-requests needs a number")
            }
            "--scale-shift" => {
                scale_shift =
                    args.next().and_then(|v| v.parse().ok()).expect("--scale-shift needs a number")
            }
            "--seed" => {
                seed = args.next().and_then(|v| v.parse().ok()).expect("--seed needs a number")
            }
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--reps" => {
                reps = args.next().and_then(|v| v.parse().ok()).expect("--reps needs a number")
            }
            "--sizes" => {
                let list = args.next().expect("--sizes needs a list");
                sizes = list
                    .split(',')
                    .map(|s| s.trim().parse().expect("size must be an integer"))
                    .collect();
            }
            "--threads" => {
                let list = args.next().expect("--threads needs a list");
                threads = list
                    .split(',')
                    .map(|s| s.trim().parse().expect("thread count must be an integer"))
                    .collect();
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = check_fmm_path {
        check_fmm(&path, baseline_fmm.as_deref());
        return;
    }
    if let Some(out) = governor_out {
        governor_snapshot(&out, scale_shift, seed);
        return;
    }
    if let Some(out) = service_out {
        service_snapshot(&out, requests, shard_requests, seed);
        return;
    }
    eprintln!("bench_snapshot: sizes {sizes:?} x threads {threads:?}, {reps} reps per point ...");
    let grid = scaling::scaling_grid(&sizes, &threads, reps, 3);
    let cases: Vec<Json> = grid.iter().map(case_to_json).collect();
    let doc = Json::obj([
        ("benchmark", Json::Str("fmm_evaluate_phases".to_string())),
        ("cases", Json::Arr(cases)),
    ]);
    let text = doc.to_text();
    std::fs::write(&out_path, format!("{text}\n")).expect("write snapshot");
    println!("{text}");
    eprintln!("bench_snapshot: wrote {out_path}");
}
