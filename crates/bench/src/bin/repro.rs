//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro <artifact> [--scale-shift K] [--seed S]
//!
//! artifacts:
//!   table1        DVFS settings and derived energy/power costs
//!   cv            Section II-D cross-validations
//!   table2        energy autotuning: model vs time oracle
//!   table3        the nvprof counters and their values for F1
//!   table4        the S1–S8 / F1–F8 experiment matrix
//!   fig4          FMM instruction/data breakdown
//!   fig5          predicted vs measured FMM energy (64 cases)
//!   fig6          FMM energy breakdown by op class at S1
//!   fig7          computation/data/constant-power shares
//!   observations  the Section IV-C findings
//!   ablation-util race-to-halt penalty vs utilization (A1)
//!   prefetch      prefetch what-if break-even scan (A3)
//!   ablation-model nested predictor comparison (A4)
//!   roofline      energy rooflines and balances per setting
//!   governors     DVFS governors racing on the FMM phase sequence
//!   governor      phase-aware governor policies vs the best static setting
//!   bootstrap     confidence intervals for the fitted constants
//!   csv-export    write the measurement dataset to dataset.csv
//!   service       closed-loop load run against the autotune server
//!   fmm-scaling   FMM evaluate over the 1/2/4/8-thread grid
//!   all           everything above (except csv-export, service and
//!                 fmm-scaling), in order
//! ```
//!
//! `--scale-shift K` divides every FMM problem size by `2^K` (profiles
//! only; the pipeline is identical).  The default 0 reproduces the
//! paper-scale inputs.

use dvfs_bench::paper;
use dvfs_bench::pipeline::{self, fitted_model, fmm_profiles};
use dvfs_bench::report::{joules, pct, table};
use dvfs_energy_model::experiments::{FMM_INPUTS, SYSTEM_SETTINGS};
use dvfs_energy_model::{holdout_validation, leave_one_setting_out};
use gpu_counters::TABLE3_EVENTS;
use kifmm::Phase;

const USAGE: &str = "\
repro <artifact> [--scale-shift K] [--seed S]

artifacts:
  table1        DVFS settings and derived energy/power costs
  cv            Section II-D cross-validations
  table2        energy autotuning: model vs time oracle
  table3        the nvprof counters and their values for F1
  table4        the S1-S8 / F1-F8 experiment matrix
  fig4          FMM instruction/data breakdown
  fig5          predicted vs measured FMM energy (64 cases)
  fig6          FMM energy breakdown by op class at S1
  fig7          computation/data/constant-power shares
  observations  the Section IV-C findings
  ablation-util race-to-halt penalty vs utilization (A1)
  prefetch      prefetch what-if break-even scan (A3)
  ablation-model nested predictor comparison (A4)
  roofline      energy rooflines and balances per setting
  governors     DVFS governors racing on the FMM phase sequence
  governor      phase-aware governor policies vs the best static setting
  bootstrap     confidence intervals for the fitted constants
  csv-export    write the measurement dataset to dataset.csv
  service       closed-loop load run against the autotune server
                (--requests N, default 50000)
  fmm-scaling   FMM evaluate over the 1/2/4/8-thread grid
                (--reps K, --max-n N; also FMM_ENERGY_BENCH_REPS)
  all           everything above (except csv-export, service and
                fmm-scaling), in order

--scale-shift K divides every FMM problem size by 2^K (default 0 =
paper scale); --seed S reseeds the whole pipeline (default 0xC0FFEE).";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let artifact = args.first().map(String::as_str).unwrap_or("all");
    if artifact == "--help" || artifact == "-h" || artifact == "help" {
        println!("{USAGE}");
        return;
    }
    let scale_shift = flag_value(&args, "--scale-shift").unwrap_or(0);
    let seed = flag_value(&args, "--seed").unwrap_or(0xC0FFEE);

    let run_all = artifact == "all";
    let want = |name: &str| run_all || artifact == name;
    let mut ran = false;

    // Shared pipeline state, built lazily.
    let mut ctx = Context::new(seed, scale_shift as u32);

    if want("table1") {
        table1(&mut ctx);
        ran = true;
    }
    if want("cv") {
        cv(&mut ctx);
        ran = true;
    }
    if want("table2") {
        table2(&mut ctx);
        ran = true;
    }
    if want("table3") {
        table3(&mut ctx);
        ran = true;
    }
    if want("table4") {
        table4();
        ran = true;
    }
    if want("fig4") {
        fig4(&mut ctx);
        ran = true;
    }
    if want("fig5") {
        fig5(&mut ctx);
        ran = true;
    }
    if want("fig6") {
        fig6(&mut ctx);
        ran = true;
    }
    if want("fig7") {
        fig7(&mut ctx);
        ran = true;
    }
    if want("observations") {
        observations(&mut ctx);
        ran = true;
    }
    if want("ablation-util") {
        ablation_util(&mut ctx);
        ran = true;
    }
    if want("prefetch") {
        prefetch(&mut ctx);
        ran = true;
    }
    if want("roofline") {
        roofline(&mut ctx);
        ran = true;
    }
    if want("governors") {
        governors(&mut ctx);
        ran = true;
    }
    if want("governor") {
        governor(&mut ctx);
        ran = true;
    }
    if want("ablation-model") {
        ablation_model(&mut ctx);
        ran = true;
    }
    if want("bootstrap") {
        bootstrap(&mut ctx);
        ran = true;
    }
    if artifact == "csv-export" {
        csv_export(&mut ctx);
        ran = true;
    }
    if artifact == "service" {
        let requests = flag_value(&args, "--requests").unwrap_or(50_000) as usize;
        service(seed, requests);
        ran = true;
    }
    if artifact == "fmm-scaling" {
        let reps = flag_value(&args, "--reps")
            .map(|r| r as usize)
            .unwrap_or_else(|| dvfs_bench::scaling::reps_from_env(3));
        let max_n = flag_value(&args, "--max-n").unwrap_or(32_768) as usize;
        fmm_scaling(reps, max_n);
        ran = true;
    }

    if !ran {
        eprintln!("unknown artifact '{artifact}'\n\n{USAGE}");
        std::process::exit(2);
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<u64> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).and_then(|v| v.parse().ok())
}

/// Lazily built shared pipeline state so `repro all` fits everything
/// once.
struct Context {
    seed: u64,
    scale_shift: u32,
    model: Option<dvfs_energy_model::EnergyModel>,
    dataset: Option<dvfs_microbench::Dataset>,
    profiles: Option<Vec<(dvfs_energy_model::experiments::FmmInput, kifmm::FmmProfile)>>,
    cases: Option<Vec<pipeline::CaseResult>>,
}

impl Context {
    fn new(seed: u64, scale_shift: u32) -> Self {
        Context { seed, scale_shift, model: None, dataset: None, profiles: None, cases: None }
    }

    fn model(&mut self) -> dvfs_energy_model::EnergyModel {
        if self.model.is_none() {
            eprintln!("[repro] running microbenchmark sweep + NNLS fit ...");
            let (m, d) = fitted_model(self.seed);
            self.model = Some(m);
            self.dataset = Some(d);
        }
        self.model.clone().expect("just built")
    }

    fn dataset(&mut self) -> dvfs_microbench::Dataset {
        let _ = self.model();
        self.dataset.clone().expect("built with model")
    }

    fn profiles(&mut self) -> &[(dvfs_energy_model::experiments::FmmInput, kifmm::FmmProfile)] {
        if self.profiles.is_none() {
            eprintln!(
                "[repro] building + profiling FMM plans (scale shift {}) ...",
                self.scale_shift
            );
            self.profiles = Some(fmm_profiles(self.scale_shift, self.seed));
        }
        self.profiles.as_deref().expect("just built")
    }

    fn cases(&mut self) -> Vec<pipeline::CaseResult> {
        if self.cases.is_none() {
            let model = self.model();
            let seed = self.seed;
            let profiles = self.profiles();
            let (cases, _) = pipeline::fig5_validation(&model, profiles, seed);
            self.cases = Some(cases);
        }
        self.cases.clone().expect("just built")
    }
}

fn table1(ctx: &mut Context) {
    let model = ctx.model();
    let rows = pipeline::table1_rows(&model);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let op = r.setting.operating_point();
            vec![
                r.setting_type.to_string(),
                format!("{:.0}", op.core.freq_mhz),
                format!("{:.0}", op.mem.freq_mhz),
                format!("{:.1}/{:.1}", r.measured.0, r.paper.0),
                format!("{:.1}/{:.1}", r.measured.1, r.paper.1),
                format!("{:.1}/{:.1}", r.measured.2, r.paper.2),
                format!("{:.1}/{:.1}", r.measured.3, r.paper.3),
                format!("{:.1}/{:.1}", r.measured.4, r.paper.4),
                format!("{:.0}/{:.0}", r.measured.5, r.paper.5),
                format!("{:.2}/{:.1}", r.measured.6, r.paper.6),
            ]
        })
        .collect();
    println!("== Table I: derived energy and power costs (measured/paper) ==");
    println!(
        "{}",
        table(
            &[
                "Type", "Core", "Mem", "SP pJ", "DP pJ", "Int pJ", "SM pJ", "L2 pJ", "Mem pJ",
                "π0 W"
            ],
            &body
        )
    );
}

fn cv(ctx: &mut Context) {
    let dataset = ctx.dataset();
    let holdout = holdout_validation(&dataset);
    let kfold = leave_one_setting_out(&dataset);
    println!("== Section II-D: cross-validation ==");
    println!(
        "2-fold holdout : measured {} | paper mean {:.2}% (σ {:.2}), range {:.2}–{:.2}%",
        holdout.stats.summary(),
        paper::CV_HOLDOUT.0,
        paper::CV_HOLDOUT.1,
        paper::CV_HOLDOUT.2,
        paper::CV_HOLDOUT.3
    );
    println!(
        "16-fold        : measured {} | paper mean {:.2}% (σ {:.2}), range {:.2}–{:.2}%",
        kfold.stats.summary(),
        paper::CV_16FOLD.0,
        paper::CV_16FOLD.1,
        paper::CV_16FOLD.2,
        paper::CV_16FOLD.3
    );
    println!();
}

fn table2(ctx: &mut Context) {
    let model = ctx.model();
    let outcomes = pipeline::table2_outcomes(&model, ctx.seed ^ 0x7AB2);
    let mut body = Vec::new();
    for o in &outcomes {
        let paper_rows: Vec<_> = paper::TABLE2.iter().filter(|r| r.0 == o.kind.name()).collect();
        for (strategy, result, paper_row) in
            [("Our model", &o.model, paper_rows[0]), ("Time Oracle", &o.oracle, paper_rows[1])]
        {
            body.push(vec![
                o.kind.name().to_string(),
                strategy.to_string(),
                format!(
                    "{}/{} (paper {}/{})",
                    result.mispredictions, o.cases, paper_row.2, paper_row.3
                ),
                format!("{:.2} ({:.2})", result.mean_lost_pct(), paper_row.4),
                format!("{:.2} ({:.2})", result.min_lost_pct(), paper_row.5),
                format!("{:.2} ({:.2})", result.max_lost_pct(), paper_row.6),
            ]);
        }
    }
    println!("== Table II: energy autotuning, measured (paper) ==");
    println!(
        "{}",
        table(&["Benchmark", "Strategy", "Mispredictions", "Mean lost %", "Min %", "Max %"], &body)
    );
}

fn table3(ctx: &mut Context) {
    let profiles = ctx.profiles();
    let f1 = &profiles[0].1;
    let totals = gpu_counters::CounterSet::new();
    for p in &f1.phases {
        totals.merge(&p.counters);
    }
    let body: Vec<Vec<String>> = TABLE3_EVENTS
        .iter()
        .map(|e| {
            vec![
                match e.kind() {
                    gpu_counters::CounterKind::Event => "E".to_string(),
                    gpu_counters::CounterKind::Metric => "M".to_string(),
                },
                e.name().to_string(),
                format!("{}", totals.get(*e)),
                e.description().to_string(),
            ]
        })
        .collect();
    println!("== Table III: counters used to profile the FMM (values for F1) ==");
    println!("{}", table(&["Type", "Name", "Value (F1)", "Description"], &body));
}

fn table4() {
    println!("== Table IV: DVFS settings and FMM inputs used for validation ==");
    let body: Vec<Vec<String>> = SYSTEM_SETTINGS
        .iter()
        .zip(FMM_INPUTS.iter())
        .map(|(s, f)| {
            vec![
                s.id.to_string(),
                format!("{:.0} MHz", s.core_mhz),
                format!("{:.0} MHz", s.mem_mhz),
                f.id.to_string(),
                format!("{}", f.n),
                format!("{}", f.q),
            ]
        })
        .collect();
    println!("{}", table(&["ID", "Core", "Memory", "F", "N", "Q"], &body));
}

fn fig4(ctx: &mut Context) {
    let rows = pipeline::fig4_breakdown(ctx.profiles());
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.f_id.to_string(),
                pct(r.instruction_shares.0),
                pct(r.instruction_shares.1),
                pct(r.byte_shares.0),
                pct(r.byte_shares.1),
                pct(r.byte_shares.2),
                pct(r.byte_shares.3),
            ]
        })
        .collect();
    println!("== Figure 4: FMM instruction mix and data-access breakdown ==");
    println!(
        "{}",
        table(
            &["F", "DP insts", "Int insts", "SM bytes", "L1 bytes", "L2 bytes", "DRAM bytes"],
            &body
        )
    );
    println!(
        "(paper: integer ≈ {:.0}% of instructions; DRAM ≈ {:.0}% of accesses)\n",
        paper::INTEGER_INSTRUCTION_SHARE * 100.0,
        paper::DRAM_ACCESS_SHARE * 100.0
    );
}

fn fig5(ctx: &mut Context) {
    let model = ctx.model();
    let cases = ctx.cases();
    let errors: Vec<f64> = cases.iter().map(|c| c.error()).collect();
    let stats = dvfs_energy_model::ErrorStats::from_relative_errors(&errors);
    let body: Vec<Vec<String>> = cases
        .iter()
        .map(|c| {
            vec![
                format!("{}/{}", c.s_id, c.f_id),
                format!("{:.3}", c.time_s),
                joules(c.measured_j),
                joules(c.predicted_j),
                pct(c.error()),
            ]
        })
        .collect();
    println!("== Figure 5: estimated vs measured FMM energy (64 cases) ==");
    println!("{}", table(&["Case", "Time s", "Measured", "Predicted", "Error"], &body));
    println!(
        "measured: {} | paper: mean {:.2}% (σ {:.2}), range {:.2}–{:.2}%\n",
        stats.summary(),
        paper::FMM_VALIDATION.0,
        paper::FMM_VALIDATION.1,
        paper::FMM_VALIDATION.2,
        paper::FMM_VALIDATION.3
    );
    let _ = model;
}

fn fig6(ctx: &mut Context) {
    let model = ctx.model();
    let seed = ctx.seed;
    let profiles = ctx.profiles();
    let rows = pipeline::fig6_energy_breakdown(&model, profiles, seed);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|(f_id, r)| {
            let mut cells = vec![f_id.to_string()];
            for share in &r.per_class {
                cells.push(pct(share.share));
            }
            cells.push(pct(r.constant_share()));
            cells
        })
        .collect();
    println!("== Figure 6: FMM energy breakdown by class at S1 (shares of total) ==");
    println!("{}", table(&["F", "SP", "DP", "Int", "SM", "L1", "L2", "DRAM", "Constant"], &body));
}

fn fig7(ctx: &mut Context) {
    let model = ctx.model();
    let cases = ctx.cases();
    let rows = pipeline::fig7_buckets(&model, &cases);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.label.clone(), pct(r.computation), pct(r.data), pct(r.constant)])
        .collect();
    println!("== Figure 7: computation / data / constant-power energy shares ==");
    println!("{}", table(&["Case", "Computation", "Data", "Constant"], &body));
    let lo = rows.iter().map(|r| r.constant).fold(f64::INFINITY, f64::min);
    let hi = rows.iter().map(|r| r.constant).fold(0.0f64, f64::max);
    println!(
        "constant-power share range: {}–{} (paper: {:.0}%–{:.0}%)\n",
        pct(lo),
        pct(hi),
        paper::FMM_CONSTANT_SHARE_RANGE.0 * 100.0,
        paper::FMM_CONSTANT_SHARE_RANGE.1 * 100.0
    );
}

fn observations(ctx: &mut Context) {
    let model = ctx.model();
    let seed = ctx.seed;
    let cases = ctx.cases();
    let profiles = ctx.profiles();
    let o = pipeline::observations(&model, profiles, &cases, seed);
    println!("== Section IV-C observations (measured vs paper) ==");
    println!(
        "integer share of instructions : {} (paper ≈ {})",
        pct(o.integer_instruction_share),
        pct(paper::INTEGER_INSTRUCTION_SHARE)
    );
    println!(
        "integer share of compute energy: {} (paper ≈ {})",
        pct(o.integer_energy_share),
        pct(paper::INTEGER_ENERGY_SHARE)
    );
    println!(
        "DRAM share of accesses        : {} (paper ≈ {})",
        pct(o.dram_access_share),
        pct(paper::DRAM_ACCESS_SHARE)
    );
    println!(
        "DRAM share of data energy     : {} (paper: up to {})",
        pct(o.dram_energy_share),
        pct(paper::DRAM_ENERGY_SHARE)
    );
    println!(
        "FMM constant-power share range: {}–{} (paper {}–{})",
        pct(o.fmm_constant_share_range.0),
        pct(o.fmm_constant_share_range.1),
        pct(paper::FMM_CONSTANT_SHARE_RANGE.0),
        pct(paper::FMM_CONSTANT_SHARE_RANGE.1)
    );
    println!(
        "microbench constant share     : {} (paper ≈ {})",
        pct(o.microbench_constant_share),
        pct(paper::MICROBENCH_CONSTANT_SHARE)
    );
    println!(
        "FMM best-energy == best-time  : {} (paper: yes)\n",
        if o.fmm_best_energy_is_best_time { "yes" } else { "no" }
    );
}

fn ablation_util(ctx: &mut Context) {
    let model = ctx.model();
    let points = pipeline::utilization_ablation(&model, ctx.seed ^ 0xAB7);
    let body: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![format!("{:.2}", p.utilization), pct(p.constant_share), pct(p.race_to_halt_loss)]
        })
        .collect();
    println!("== Ablation A1: race-to-halt penalty vs utilization ==");
    println!("{}", table(&["Utilization", "Constant share", "Race-to-halt loss"], &body));
    println!("(the paper's IV-C hypothesis: as utilization falls, constant power dominates and racing to halt becomes energy-optimal)\n");
}

fn prefetch(ctx: &mut Context) {
    let model = ctx.model();
    let cases = ctx.cases();
    let profiles = ctx.profiles();
    let f1_time =
        cases.iter().find(|c| c.s_id == "S1" && c.f_id == "F1").expect("S1/F1 present").time_s;
    let scan = pipeline::prefetch_scan(&model, &profiles[0].1, f1_time);
    let body: Vec<Vec<String>> = scan
        .iter()
        .map(|(unused, breakeven)| vec![pct(*unused), format!("{:.4}×", breakeven)])
        .collect();
    println!("== Ablation A3: prefetch what-if (F1 at S1) ==");
    println!("{}", table(&["Unused prefetched data", "Break-even slowdown"], &body));
    println!("(disabling prefetch saves energy only if the resulting slowdown stays below the break-even factor)\n");
}

fn roofline(ctx: &mut Context) {
    use dvfs_energy_model::EnergyRoofline;
    use tk1_sim::Setting;
    let model = ctx.model();
    let r = EnergyRoofline::new(&model);
    println!("== Energy rooflines (fitted model) ==");
    for (core, mem) in [(852.0, 924.0), (612.0, 528.0), (396.0, 204.0)] {
        let s = Setting::from_frequencies(core, mem).expect("valid setting");
        println!("{}", r.render(s, 44));
    }
    println!("most energy-efficient setting per intensity:");
    for k in 0..9 {
        let intensity = 0.5 * 2f64.powi(k);
        let s = r.most_efficient_setting(intensity);
        println!(
            "  {:>7.1} flop/B -> {} ({:.2} Gflop/J)",
            intensity,
            s.label(),
            r.attainable_flops_per_joule(s, intensity) / 1e9
        );
    }
    println!();
}

fn governors(ctx: &mut Context) {
    use tk1_sim::{Device, EnergyEstimates, Governor};
    let model = ctx.model();
    let profiles = ctx.profiles();
    let kernels = profiles[0].1.kernels();
    let estimates = EnergyEstimates {
        c0_pj_per_v2: model.c0_pj_per_v2,
        c1_proc_w_per_v: model.c1_proc_w_per_v,
        c1_mem_w_per_v: model.c1_mem_w_per_v,
        p_misc_w: model.p_misc_w,
    };
    let mut device = Device::new(ctx.seed ^ 0x60BE);
    let mut body = Vec::new();
    for (name, gov) in [
        ("performance", Governor::Performance),
        ("powersave", Governor::Powersave),
        ("ondemand-0.95", Governor::OnDemand { threshold: 0.95 }),
        ("model-based", Governor::ModelBased(estimates)),
    ] {
        let run = gov.run(&mut device, &kernels);
        body.push(vec![
            name.to_string(),
            format!("{:.3}", run.total_time_s),
            format!("{:.3}", run.total_energy_j),
        ]);
    }
    println!("== DVFS governors on the FMM (F1) phase sequence ==");
    println!("{}", table(&["Governor", "Time s", "Energy J"], &body));
}

fn governor(ctx: &mut Context) {
    use dvfs_governor::GovernorConfig;
    use tk1_sim::FaultConfig;
    let model = ctx.model();
    let seed = ctx.seed;
    let cfg = GovernorConfig::from_env();
    let faults = FaultConfig::from_env();
    let profiles = ctx.profiles();
    eprintln!("[repro] running governor policy comparison ({} rounds/input) ...", cfg.rounds);
    let cases = dvfs_bench::governor_comparison(&model, profiles, &cfg, seed, faults.as_ref());
    let mut body = Vec::new();
    for c in &cases {
        body.push(vec![
            c.input.id.to_string(),
            format!("static {}", c.best_static_id),
            joules(c.best_static_j),
            "—".to_string(),
            "—".to_string(),
            "—".to_string(),
            "—".to_string(),
        ]);
        for o in &c.outcomes {
            let delta = (o.energy_j / c.best_static_j - 1.0) * 100.0;
            body.push(vec![
                String::new(),
                o.policy.to_string(),
                joules(o.energy_j),
                format!("{delta:+.2}%"),
                format!("{:.3}", o.time_s),
                format!("{}", o.switches),
                format!("{}", o.latch_retries),
            ]);
        }
    }
    println!("== Governor: per-phase DVFS policies vs best static setting ==");
    println!(
        "{}",
        table(&["F", "Policy", "Energy", "Δ vs static", "Time s", "Switches", "Retries"], &body)
    );
    let wins =
        cases.iter().filter(|c| c.outcome("per-phase-model").energy_j <= c.best_static_j).count();
    println!(
        "per-phase-model matches or beats the best static setting on {wins}/{} inputs\n",
        cases.len()
    );
}

fn ablation_model(ctx: &mut Context) {
    let _ = ctx.model();
    let dataset = ctx.dataset();
    let rows = dvfs_energy_model::model_structure_ablation(&dataset);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.structure.name().to_string(),
                format!("{:.2}", r.holdout.mean_pct),
                format!("{:.2}", r.holdout.std_pct),
                format!("{:.2}", r.holdout.max_pct),
            ]
        })
        .collect();
    println!("== Ablation A4: model structure (held-out settings) ==");
    println!("{}", table(&["Predictor", "Mean err %", "σ", "Max err %"], &body));
    println!("(what DVFS-awareness buys: the static IPDPS'13 roofline and a mean-power\nbaseline degrade once predictions cross DVFS settings)\n");
}

fn bootstrap(ctx: &mut Context) {
    let _ = ctx.model(); // ensure the dataset exists
    let dataset = ctx.dataset();
    let report = dvfs_energy_model::bootstrap_fit(&dataset, 48, ctx.seed ^ 0xB00);
    println!(
        "== Bootstrap {}%-confidence intervals ({} replicates) ==",
        (report.confidence * 100.0) as u32,
        report.replicates
    );
    print!("{}", report.summary());
    let pi0 = report.constant_power_at(tk1_sim::Setting::max_performance());
    println!("π0(852/924) = {:.2} W [{:.2}, {:.2}]\n", pi0.estimate, pi0.lo, pi0.hi);
}

fn service(seed: u64, requests: usize) {
    use dvfs_bench::service_load::{service_load, LoadConfig};
    let cfg = LoadConfig { requests, seed, ..LoadConfig::default() };
    eprintln!(
        "[repro] driving {requests} requests through the autotune server ({} clients, {} shards) ...",
        cfg.clients, cfg.shards
    );
    let r = service_load(&cfg);
    println!("== Service: closed-loop load against the autotune server ==");
    let body = vec![
        vec!["requests served".to_string(), format!("{}/{}", r.served, r.requests)],
        vec!["throughput".to_string(), format!("{:.0} req/s", r.throughput_rps)],
        vec!["elapsed".to_string(), format!("{:.2} s", r.elapsed_s)],
        vec![
            "cache-hit latency".to_string(),
            format!(
                "p50 {:.0} µs, p99 {:.0} µs ({} responses)",
                r.hit.p50_us, r.hit.p99_us, r.hit.count
            ),
        ],
        vec![
            "cold-path latency".to_string(),
            format!(
                "p50 {:.0} µs, p99 {:.0} µs ({} responses)",
                r.cold.p50_us, r.cold.p99_us, r.cold.count
            ),
        ],
        vec!["cache hit rate".to_string(), format!("{:.4}", r.cache_hit_rate)],
        vec!["max queue depth".to_string(), format!("{}", r.max_queue_depth)],
        vec!["degraded responses".to_string(), format!("{}", r.degraded_responses)],
        vec![
            "overload probe".to_string(),
            format!(
                "{}/{} rejected ({:.2}%), {} accepted all answered",
                r.overload.rejections,
                r.overload.attempts,
                r.overload.rejection_rate * 100.0,
                r.overload.served
            ),
        ],
        vec!["run digest".to_string(), format!("{:016x}", r.digest)],
    ];
    println!("{}", table(&["Metric", "Value"], &body));
}

fn fmm_scaling(reps: usize, max_n: usize) {
    use dvfs_bench::scaling::{scaling_grid, DEFAULT_SIZES, DEFAULT_THREAD_GRID};
    let sizes: Vec<usize> = DEFAULT_SIZES.iter().copied().filter(|&n| n <= max_n).collect();
    eprintln!(
        "[repro] FMM thread-scaling grid: sizes {sizes:?} x threads {DEFAULT_THREAD_GRID:?}, \
         {reps} reps ..."
    );
    let cases = scaling_grid(&sizes, &DEFAULT_THREAD_GRID, reps, 3);
    println!("== FMM evaluate: thread scaling (q=64, p=4, FFT M2L) ==");
    let body: Vec<Vec<String>> = cases
        .iter()
        .map(|c| {
            let base = cases
                .iter()
                .find(|b| b.n == c.n && b.threads == 1)
                .map_or(1.0, |b| b.evaluate_median_s);
            let [up, v, x, down, near] = c.phase_medians_s;
            vec![
                format!("{}", c.n),
                format!("{}", c.threads),
                format!("{:.4}", c.evaluate_median_s),
                format!("{:.2}x", base / c.evaluate_median_s),
                format!("{up:.4}"),
                format!("{v:.4}"),
                format!("{x:.4}"),
                format!("{down:.4}"),
                format!("{near:.4}"),
            ]
        })
        .collect();
    println!(
        "{}",
        table(&["n", "threads", "eval s", "speedup", "up", "v", "x", "down", "near"], &body)
    );
    let mut consistent = true;
    for &n in &sizes {
        let digests: Vec<u64> = cases.iter().filter(|c| c.n == n).map(|c| c.digest).collect();
        if digests.windows(2).any(|w| w[0] != w[1]) {
            consistent = false;
            println!("n={n}: POTENTIAL DIGESTS DIFFER ACROSS THREAD COUNTS: {digests:016x?}");
        }
    }
    if consistent {
        println!(
            "potentials bitwise-identical across all thread counts at every size \
             (digest check over {} grid points)\n",
            cases.len()
        );
    } else {
        std::process::exit(1);
    }
}

fn csv_export(ctx: &mut Context) {
    let _ = ctx.model();
    let dataset = ctx.dataset();
    let csv = dvfs_microbench::to_csv(&dataset);
    let path = "dataset.csv";
    std::fs::write(path, &csv).expect("write dataset.csv");
    println!("wrote {} samples to {path}", dataset.len());
}

// Silence the unused-import lint for Phase, which is useful to keep for
// readers grepping the harness.
#[allow(dead_code)]
fn _phases() -> [Phase; 6] {
    Phase::ALL
}
