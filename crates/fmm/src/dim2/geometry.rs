//! Adaptive quadtree and 2D interaction lists.
//!
//! A direct 2D transcription of the 3D [`crate::tree`] / [`crate::lists`]
//! machinery: boxes are addressed by `(level, x, y)`, every box has up to
//! four children, and the U/V/W/X definitions are identical (the paper's
//! Figure 3 illustrates them on exactly this quadtree).

use std::collections::HashMap;

/// A quadtree box address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BoxId2 {
    /// Refinement level.
    pub level: u8,
    /// Anchor x in `[0, 2^level)`.
    pub x: u32,
    /// Anchor y.
    pub y: u32,
}

impl BoxId2 {
    /// The root box.
    pub fn root() -> Self {
        BoxId2 { level: 0, x: 0, y: 0 }
    }

    /// Parent address.
    pub fn parent(&self) -> Option<BoxId2> {
        if self.level == 0 {
            None
        } else {
            Some(BoxId2 { level: self.level - 1, x: self.x / 2, y: self.y / 2 })
        }
    }

    /// Child address in `quadrant` (bit 0 = x, bit 1 = y).
    pub fn child(&self, quadrant: usize) -> BoxId2 {
        BoxId2 {
            level: self.level + 1,
            x: 2 * self.x + (quadrant & 1) as u32,
            y: 2 * self.y + ((quadrant >> 1) & 1) as u32,
        }
    }

    /// Which quadrant of its parent this box occupies.
    pub fn quadrant(&self) -> usize {
        ((self.x & 1) | ((self.y & 1) << 1)) as usize
    }

    /// Closed-square adjacency across levels (exact integer arithmetic).
    pub fn adjacent(&self, other: &BoxId2) -> bool {
        let common = self.level.max(other.level);
        let sa = 1u64 << (common - self.level);
        let sb = 1u64 << (common - other.level);
        let overlap = |a: u32, b: u32| {
            let a0 = a as u64 * sa;
            let b0 = b as u64 * sb;
            a0 <= b0 + sb && b0 <= a0 + sa
        };
        overlap(self.x, other.x) && overlap(self.y, other.y)
    }
}

/// One quadtree node.
#[derive(Debug, Clone)]
pub struct Node2 {
    /// Address.
    pub id: BoxId2,
    /// Parent index.
    pub parent: Option<usize>,
    /// Children by quadrant.
    pub children: [Option<usize>; 4],
    /// Owned range in the permuted point array.
    pub point_range: (usize, usize),
    /// Box center.
    pub center: [f64; 2],
    /// Half of the edge length.
    pub half_width: f64,
}

impl Node2 {
    /// True when the node has no children.
    pub fn is_leaf(&self) -> bool {
        self.children.iter().all(|c| c.is_none())
    }

    /// Number of owned points.
    pub fn num_points(&self) -> usize {
        self.point_range.1 - self.point_range.0
    }
}

/// The adaptive quadtree.
#[derive(Debug, Clone)]
pub struct QuadTree {
    /// Nodes, root first, children after parents.
    pub nodes: Vec<Node2>,
    /// Permuted points.
    pub points: Vec<[f64; 2]>,
    /// Permuted densities.
    pub densities: Vec<f64>,
    /// `permutation[i]` = original index of permuted point `i`.
    pub permutation: Vec<usize>,
    index: HashMap<BoxId2, usize>,
    /// Node indices per level.
    pub levels: Vec<Vec<usize>>,
    /// The split threshold.
    pub max_leaf_points: usize,
}

impl QuadTree {
    /// Builds the quadtree over 2D points.
    pub fn build(points: &[[f64; 2]], densities: &[f64], max_leaf_points: usize) -> Self {
        assert!(!points.is_empty(), "empty point set");
        assert_eq!(points.len(), densities.len());
        assert!(max_leaf_points >= 1);

        let mut lo = [f64::INFINITY; 2];
        let mut hi = [f64::NEG_INFINITY; 2];
        for p in points {
            for d in 0..2 {
                lo[d] = lo[d].min(p[d]);
                hi[d] = hi[d].max(p[d]);
            }
        }
        let width = (hi[0] - lo[0]).max(hi[1] - lo[1]).max(f64::MIN_POSITIVE) * (1.0 + 1e-12);
        let root_center = [lo[0] + width * 0.5, lo[1] + width * 0.5];

        let mut order: Vec<usize> = (0..points.len()).collect();
        let mut nodes = vec![Node2 {
            id: BoxId2::root(),
            parent: None,
            children: [None; 4],
            point_range: (0, points.len()),
            center: root_center,
            half_width: width * 0.5,
        }];
        let mut stack = vec![0usize];
        while let Some(ni) = stack.pop() {
            let (start, end) = nodes[ni].point_range;
            if end - start <= max_leaf_points || nodes[ni].id.level >= 24 {
                continue;
            }
            let center = nodes[ni].center;
            let hw = nodes[ni].half_width;
            let mut buckets: [Vec<usize>; 4] = Default::default();
            for &pi in &order[start..end] {
                let p = points[pi];
                let q = usize::from(p[0] >= center[0]) | (usize::from(p[1] >= center[1]) << 1);
                buckets[q].push(pi);
            }
            let mut cursor = start;
            let parent_id = nodes[ni].id;
            for (q, bucket) in buckets.iter().enumerate() {
                if bucket.is_empty() {
                    continue;
                }
                let child_start = cursor;
                for &pi in bucket {
                    order[cursor] = pi;
                    cursor += 1;
                }
                let child_center = [
                    center[0] + hw * 0.5 * if q & 1 != 0 { 1.0 } else { -1.0 },
                    center[1] + hw * 0.5 * if q & 2 != 0 { 1.0 } else { -1.0 },
                ];
                let idx = nodes.len();
                nodes.push(Node2 {
                    id: parent_id.child(q),
                    parent: Some(ni),
                    children: [None; 4],
                    point_range: (child_start, cursor),
                    center: child_center,
                    half_width: hw * 0.5,
                });
                nodes[ni].children[q] = Some(idx);
                stack.push(idx);
            }
        }

        let permuted_points: Vec<[f64; 2]> = order.iter().map(|&i| points[i]).collect();
        let permuted_densities: Vec<f64> = order.iter().map(|&i| densities[i]).collect();
        let mut index = HashMap::with_capacity(nodes.len());
        let mut levels: Vec<Vec<usize>> = Vec::new();
        for (i, n) in nodes.iter().enumerate() {
            index.insert(n.id, i);
            let l = n.id.level as usize;
            if levels.len() <= l {
                levels.resize(l + 1, Vec::new());
            }
            levels[l].push(i);
        }
        QuadTree {
            nodes,
            points: permuted_points,
            densities: permuted_densities,
            permutation: order,
            index,
            levels,
            max_leaf_points,
        }
    }

    /// Node index of an address.
    pub fn find(&self, id: &BoxId2) -> Option<usize> {
        self.index.get(id).copied()
    }

    /// Deepest existing ancestor-or-self.
    pub fn find_or_ancestor(&self, id: &BoxId2) -> Option<usize> {
        let mut cur = *id;
        loop {
            if let Some(i) = self.find(&cur) {
                return Some(i);
            }
            cur = cur.parent()?;
        }
    }

    /// Leaf node indices.
    pub fn leaves(&self) -> Vec<usize> {
        (0..self.nodes.len()).filter(|&i| self.nodes[i].is_leaf()).collect()
    }

    /// Tree depth.
    pub fn depth(&self) -> u8 {
        (self.levels.len() - 1) as u8
    }

    /// Existing same-level neighbors (≤ 8 in 2D).
    pub fn colleagues(&self, ni: usize) -> Vec<usize> {
        let id = self.nodes[ni].id;
        let max = 1i64 << id.level;
        let mut out = Vec::new();
        for dx in -1i64..=1 {
            for dy in -1i64..=1 {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let (nx, ny) = (id.x as i64 + dx, id.y as i64 + dy);
                if nx < 0 || ny < 0 || nx >= max || ny >= max {
                    continue;
                }
                if let Some(i) = self.find(&BoxId2 { level: id.level, x: nx as u32, y: ny as u32 })
                {
                    out.push(i);
                }
            }
        }
        out
    }
}

/// The 2D interaction lists (definitions identical to 3D).
#[derive(Debug, Clone)]
pub struct InteractionLists2 {
    /// U list per node (leaves only; includes self).
    pub u: Vec<Vec<usize>>,
    /// V list per node.
    pub v: Vec<Vec<usize>>,
    /// W list per node (leaves only).
    pub w: Vec<Vec<usize>>,
    /// X list per node.
    pub x: Vec<Vec<usize>>,
}

impl InteractionLists2 {
    /// Builds all lists.
    pub fn build(tree: &QuadTree) -> Self {
        let n = tree.nodes.len();
        let mut u = vec![Vec::new(); n];
        let mut v = vec![Vec::new(); n];
        let mut w = vec![Vec::new(); n];
        let mut x = vec![Vec::new(); n];
        for ni in 0..n {
            let node = &tree.nodes[ni];
            if let Some(pi) = node.parent {
                for ci in tree.colleagues(pi) {
                    for child in tree.nodes[ci].children.iter().flatten() {
                        if !tree.nodes[*child].id.adjacent(&node.id) {
                            v[ni].push(*child);
                        }
                    }
                }
            }
            if node.is_leaf() {
                u[ni] = adjacent_leaves(tree, ni);
                u[ni].push(ni);
                u[ni].sort_unstable();
                u[ni].dedup();
                for ci in tree.colleagues(ni) {
                    collect_w(tree, ni, ci, &mut w[ni]);
                }
            }
        }
        for (leaf, wl) in w.iter().enumerate() {
            for &c in wl {
                x[c].push(leaf);
            }
        }
        InteractionLists2 { u, v, w, x }
    }
}

fn adjacent_leaves(tree: &QuadTree, ni: usize) -> Vec<usize> {
    let id = tree.nodes[ni].id;
    let max = 1i64 << id.level;
    let mut seeds = Vec::new();
    for dx in -1i64..=1 {
        for dy in -1i64..=1 {
            if dx == 0 && dy == 0 {
                continue;
            }
            let (nx, ny) = (id.x as i64 + dx, id.y as i64 + dy);
            if nx < 0 || ny < 0 || nx >= max || ny >= max {
                continue;
            }
            if let Some(i) =
                tree.find_or_ancestor(&BoxId2 { level: id.level, x: nx as u32, y: ny as u32 })
            {
                seeds.push(i);
            }
        }
    }
    seeds.sort_unstable();
    seeds.dedup();
    let mut out = Vec::new();
    for seed in seeds {
        collect_adjacent_leaves(tree, ni, seed, &mut out);
    }
    out
}

fn collect_adjacent_leaves(tree: &QuadTree, target: usize, cand: usize, out: &mut Vec<usize>) {
    if cand == target || !tree.nodes[cand].id.adjacent(&tree.nodes[target].id) {
        return;
    }
    if tree.nodes[cand].is_leaf() {
        out.push(cand);
        return;
    }
    for child in tree.nodes[cand].children.iter().flatten() {
        collect_adjacent_leaves(tree, target, *child, out);
    }
}

fn collect_w(tree: &QuadTree, target: usize, cand: usize, out: &mut Vec<usize>) {
    for child in tree.nodes[cand].children.iter().flatten() {
        if tree.nodes[*child].id.adjacent(&tree.nodes[target].id) {
            if !tree.nodes[*child].is_leaf() {
                collect_w(tree, target, *child, out);
            }
        } else {
            out.push(*child);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compat::rng::StdRng;

    fn cloud(n: usize, seed: u64) -> Vec<[f64; 2]> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| [rng.random(), rng.random()]).collect()
    }

    fn tree(n: usize, q: usize, seed: u64) -> QuadTree {
        let pts = cloud(n, seed);
        QuadTree::build(&pts, &vec![1.0; n], q)
    }

    #[test]
    fn leaves_partition_points_and_respect_q() {
        let t = tree(2000, 30, 1);
        let mut covered = 0;
        for &li in &t.leaves() {
            let n = t.nodes[li].num_points();
            assert!(n > 0 && n <= 30);
            covered += n;
        }
        assert_eq!(covered, 2000);
    }

    #[test]
    fn points_inside_their_boxes() {
        let t = tree(700, 25, 2);
        for n in &t.nodes {
            let (s, e) = n.point_range;
            for p in &t.points[s..e] {
                assert!((p[0] - n.center[0]).abs() <= n.half_width * (1.0 + 1e-9));
                assert!((p[1] - n.center[1]).abs() <= n.half_width * (1.0 + 1e-9));
            }
        }
    }

    #[test]
    fn adjacency_2d_cases() {
        let a = BoxId2 { level: 2, x: 1, y: 1 };
        assert!(a.adjacent(&BoxId2 { level: 2, x: 2, y: 2 }), "corner touch");
        assert!(!a.adjacent(&BoxId2 { level: 2, x: 3, y: 1 }));
        let coarse = BoxId2 { level: 1, x: 0, y: 0 };
        assert!(coarse.adjacent(&BoxId2 { level: 3, x: 4, y: 1 }));
        assert!(!coarse.adjacent(&BoxId2 { level: 3, x: 6, y: 1 }));
    }

    #[test]
    fn u_symmetry_and_v_separation() {
        let t = tree(3000, 24, 3);
        let lists = InteractionLists2::build(&t);
        for (ni, ul) in lists.u.iter().enumerate() {
            for &a in ul {
                assert!(lists.u[a].contains(&ni));
            }
        }
        for (ni, vl) in lists.v.iter().enumerate() {
            for &s in vl {
                assert_eq!(t.nodes[s].id.level, t.nodes[ni].id.level);
                assert!(!t.nodes[s].id.adjacent(&t.nodes[ni].id));
            }
        }
    }

    #[test]
    fn v_list_bounded_by_27_in_2d() {
        let t = tree(8000, 20, 4);
        let lists = InteractionLists2::build(&t);
        // 2D: children of ≤8 colleagues = ≤32 minus ≥5 adjacent = ≤27.
        for vl in &lists.v {
            assert!(vl.len() <= 27, "V size {}", vl.len());
        }
    }

    #[test]
    fn pair_coverage_is_exactly_once() {
        // Same fundamental invariant as 3D, on a clustered 2D cloud.
        let mut rng = StdRng::seed_from_u64(9);
        let mut pts: Vec<[f64; 2]> = (0..400).map(|_| [rng.random(), rng.random()]).collect();
        for _ in 0..400 {
            pts.push([0.3 + rng.random::<f64>() * 0.01, 0.6 + rng.random::<f64>() * 0.01]);
        }
        let t = QuadTree::build(&pts, &vec![1.0; 800], 16);
        let lists = InteractionLists2::build(&t);
        let leaves = t.leaves();
        let ancestors = |mut i: usize| {
            let mut chain = vec![i];
            while let Some(p) = t.nodes[i].parent {
                chain.push(p);
                i = p;
            }
            chain
        };
        for &target in leaves.iter().step_by(5) {
            for &source in leaves.iter().step_by(7) {
                let mut coverage = 0;
                if lists.u[target].contains(&source) {
                    coverage += 1;
                }
                for &a in &ancestors(target) {
                    for &b in &ancestors(source) {
                        if lists.v[a].contains(&b) {
                            coverage += 1;
                        }
                    }
                }
                for &b in &ancestors(source) {
                    if lists.w[target].contains(&b) {
                        coverage += 1;
                    }
                }
                for &a in &ancestors(target) {
                    if lists.x[a].contains(&source) {
                        coverage += 1;
                    }
                }
                assert_eq!(coverage, 1, "pair ({target}, {source})");
            }
        }
    }
}
