//! The 2D six-phase evaluation engine (dense M2L).
//!
//! Runs on the same execution machinery as the 3D engine
//! ([`crate::evaluator`]): flat per-phase arenas (`node * ns` slices of
//! one contiguous allocation), the persistent worker pool via
//! [`par_for_each_init`] with per-chunk scratch, disjoint [`SendPtr`]
//! slice writes, and cached surface templates
//! ([`crate::dim2::operators::SurfaceTemplate2`]) instead of per-box
//! lattice rebuilds.  The same determinism contract holds: every
//! node-level value is a pure function of finalized inputs, inner loops
//! run in fixed list order, so results are bitwise identical across
//! thread counts and repeated evaluations.

use crate::dim2::geometry::{InteractionLists2, QuadTree};
use crate::dim2::operators::{
    Kernel2, Laplace2, OperatorCache2, SurfaceTemplate2, RADIUS_INNER_2D, RADIUS_OUTER_2D,
};
use crate::evaluator::{phase_end, phase_start, EnginePhase, PhaseObserver};
use compat::par::{par_for_each_init, ParSliceExt, SendPtr};
use std::time::Instant;

/// A 2D execution plan.
pub struct FmmPlan2<K: Kernel2 = Laplace2> {
    /// The kernel.
    pub kernel: K,
    /// The quadtree.
    pub tree: QuadTree,
    /// The interaction lists.
    pub lists: InteractionLists2,
    /// The operators.
    pub ops: OperatorCache2,
    /// Surface order.
    pub p: usize,
    /// Cached unit inner surface (scaled per box by the evaluator).
    pub tpl_inner: SurfaceTemplate2,
    /// Cached unit outer surface.
    pub tpl_outer: SurfaceTemplate2,
}

impl FmmPlan2<Laplace2> {
    /// Builds a plan with the 2D Laplace (log) kernel.
    pub fn new(points: &[[f64; 2]], densities: &[f64], q: usize, p: usize) -> Self {
        FmmPlan2::with_kernel(Laplace2, points, densities, q, p)
    }
}

impl<K: Kernel2> FmmPlan2<K> {
    /// Builds a plan with an arbitrary 2D kernel.
    pub fn with_kernel(
        kernel: K,
        points: &[[f64; 2]],
        densities: &[f64],
        q: usize,
        p: usize,
    ) -> Self {
        let tree = QuadTree::build(points, densities, q);
        let lists = InteractionLists2::build(&tree);
        let ops = OperatorCache2::build(&kernel, &tree, p);
        let tpl_inner = SurfaceTemplate2::new(p, RADIUS_INNER_2D);
        let tpl_outer = SurfaceTemplate2::new(p, RADIUS_OUTER_2D);
        FmmPlan2 { kernel, tree, lists, ops, p, tpl_inner, tpl_outer }
    }

    fn ns(&self) -> usize {
        4 * self.p - 4
    }
}

/// Evaluates all potentials for a 2D plan, in original point order.
pub fn evaluate_2d<K: Kernel2>(plan: &FmmPlan2<K>) -> Vec<f64> {
    evaluate_2d_impl(plan, None)
}

/// Like [`evaluate_2d`], invoking `observer` at every phase boundary.
///
/// The 2D engine runs four execution sections, so the observer sees
/// [`EnginePhase::Up`], [`EnginePhase::V`] (which covers the fused
/// V + X accumulation — there is no separate X boundary here),
/// [`EnginePhase::Down`] and [`EnginePhase::Near`].  Potentials are
/// bitwise identical to [`evaluate_2d`].
pub fn evaluate_2d_observed<K: Kernel2>(
    plan: &FmmPlan2<K>,
    observer: &mut dyn PhaseObserver,
) -> Vec<f64> {
    evaluate_2d_impl(plan, Some(observer))
}

fn evaluate_2d_impl<K: Kernel2>(
    plan: &FmmPlan2<K>,
    mut obs: Option<&mut dyn PhaseObserver>,
) -> Vec<f64> {
    let tree = &plan.tree;
    let ns = plan.ns();
    let n_nodes = tree.nodes.len();

    // UP: bottom-up into a flat equivalent-density arena.
    phase_start(&mut obs, EnginePhase::Up);
    let t = Instant::now();
    struct UpScratch2 {
        surf: Vec<[f64; 2]>,
        check: Vec<f64>,
    }
    let mut up_equiv = vec![0.0f64; n_nodes * ns];
    for level in (0..tree.levels.len()).rev() {
        let base = SendPtr::new(up_equiv.as_mut_ptr());
        par_for_each_init(
            tree.levels[level].clone(),
            || UpScratch2 { surf: Vec::new(), check: vec![0.0; ns] },
            |scr, ni| {
                let node = &tree.nodes[ni];
                // SAFETY: every node within a level owns its own slice.
                let slot = unsafe { base.slice_mut(ni * ns, ns) };
                if node.is_leaf() {
                    plan.tpl_outer.scale_into(node.center, node.half_width, &mut scr.surf);
                    scr.check.fill(0.0);
                    let (s, e) = node.point_range;
                    plan.kernel.p2p(
                        &scr.surf,
                        &tree.points[s..e],
                        &tree.densities[s..e],
                        &mut scr.check,
                    );
                    plan.ops.uc2e(node.id.level).matvec_into(&scr.check, slot);
                } else {
                    slot.fill(0.0);
                    for child in node.children.iter().flatten() {
                        let c = &tree.nodes[*child];
                        // SAFETY: children live one level deeper and were
                        // finalized by the previous pass (read-only here).
                        let cequiv = unsafe { base.slice(*child * ns, ns) };
                        plan.ops.m2m(c.id.level, c.id.quadrant()).matvec_acc(cequiv, slot);
                    }
                }
            },
        );
    }

    phase_end(&mut obs, EnginePhase::Up, t.elapsed().as_secs_f64());

    // V (dense M2L) + X, accumulated straight into the down-check arena.
    phase_start(&mut obs, EnginePhase::V);
    let t = Instant::now();
    let mut down_check = vec![0.0f64; n_nodes * ns];
    {
        let targets: Vec<usize> = (0..n_nodes)
            .filter(|&ni| !plan.lists.v[ni].is_empty() || !plan.lists.x[ni].is_empty())
            .collect();
        let base = SendPtr::new(down_check.as_mut_ptr());
        par_for_each_init(targets, Vec::new, |surf: &mut Vec<[f64; 2]>, ni| {
            let node = &tree.nodes[ni];
            let tid = node.id;
            // SAFETY: each target owns its node's slice.
            let slot = unsafe { base.slice_mut(ni * ns, ns) };
            for &si in &plan.lists.v[ni] {
                let sid = tree.nodes[si].id;
                let off = (sid.x as i32 - tid.x as i32, sid.y as i32 - tid.y as i32);
                let m2l = plan.ops.m2l(tid.level, off).expect("2d m2l cached");
                m2l.matvec_acc(&up_equiv[si * ns..(si + 1) * ns], slot);
            }
            if !plan.lists.x[ni].is_empty() {
                plan.tpl_inner.scale_into(node.center, node.half_width, surf);
                for &ci in &plan.lists.x[ni] {
                    let (s, e) = tree.nodes[ci].point_range;
                    plan.kernel.p2p(surf, &tree.points[s..e], &tree.densities[s..e], slot);
                }
            }
        });
    }

    phase_end(&mut obs, EnginePhase::V, t.elapsed().as_secs_f64());

    // DOWN: L2L top-down through a flat local-expansion arena.
    phase_start(&mut obs, EnginePhase::Down);
    let t = Instant::now();
    let mut down_equiv = vec![0.0f64; n_nodes * ns];
    for level in 0..tree.levels.len() {
        let base = SendPtr::new(down_equiv.as_mut_ptr());
        par_for_each_init(
            tree.levels[level].clone(),
            || (),
            |_, ni| {
                let node = &tree.nodes[ni];
                // SAFETY: every node within a level owns its own slice.
                let slot = unsafe { base.slice_mut(ni * ns, ns) };
                plan.ops.dc2e(node.id.level).matvec_into(&down_check[ni * ns..(ni + 1) * ns], slot);
                if let Some(pi) = node.parent {
                    // SAFETY: the parent was finalized by the previous
                    // (coarser) pass; read-only here.
                    let pequiv = unsafe { base.slice(pi * ns, ns) };
                    plan.ops.l2l(node.id.level, node.id.quadrant()).matvec_acc(pequiv, slot);
                }
            },
        );
    }

    phase_end(&mut obs, EnginePhase::Down, t.elapsed().as_secs_f64());

    // Leaf phases: L2P + W + U, scattered straight to the output through
    // the tree permutation (a bijection; leaf point ranges are disjoint).
    phase_start(&mut obs, EnginePhase::Near);
    let t = Instant::now();
    struct LeafScratch2 {
        surf: Vec<[f64; 2]>,
        pot: Vec<f64>,
    }
    let mut out = vec![0.0f64; tree.points.len()];
    {
        let out_base = SendPtr::new(out.as_mut_ptr());
        par_for_each_init(
            tree.leaves(),
            || LeafScratch2 { surf: Vec::new(), pot: Vec::new() },
            |scr, li| {
                let node = &tree.nodes[li];
                let (s, e) = node.point_range;
                let targets = &tree.points[s..e];
                scr.pot.clear();
                scr.pot.resize(e - s, 0.0);
                plan.tpl_outer.scale_into(node.center, node.half_width, &mut scr.surf);
                plan.kernel.p2p(
                    targets,
                    &scr.surf,
                    &down_equiv[li * ns..(li + 1) * ns],
                    &mut scr.pot,
                );
                for &wi in &plan.lists.w[li] {
                    let wnode = &tree.nodes[wi];
                    plan.tpl_inner.scale_into(wnode.center, wnode.half_width, &mut scr.surf);
                    plan.kernel.p2p(
                        targets,
                        &scr.surf,
                        &up_equiv[wi * ns..(wi + 1) * ns],
                        &mut scr.pot,
                    );
                }
                for &ui in &plan.lists.u[li] {
                    let (us, ue) = tree.nodes[ui].point_range;
                    plan.kernel.p2p(
                        targets,
                        &tree.points[us..ue],
                        &tree.densities[us..ue],
                        &mut scr.pot,
                    );
                }
                for (offset, &v) in scr.pot.iter().enumerate() {
                    // SAFETY: the permutation is a bijection and leaf
                    // point ranges partition it — writes are disjoint.
                    unsafe {
                        *out_base.get().add(tree.permutation[s + offset]) = v;
                    }
                }
            },
        );
    }
    phase_end(&mut obs, EnginePhase::Near, t.elapsed().as_secs_f64());
    out
}

/// O(N²) 2D reference.
pub fn direct_sum_2d(points: &[[f64; 2]], densities: &[f64]) -> Vec<f64> {
    let kernel = Laplace2;
    points
        .par_iter()
        .map(|&t| {
            let mut acc = 0.0;
            for (j, &s) in points.iter().enumerate() {
                acc += kernel.eval(t, s) * densities[j];
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy::relative_l2_error;
    use compat::rng::StdRng;

    fn problem(n: usize, seed: u64) -> (Vec<[f64; 2]>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = (0..n).map(|_| [rng.random(), rng.random()]).collect();
        let den = (0..n).map(|_| 2.0 * rng.random::<f64>() - 1.0).collect();
        (pts, den)
    }

    #[test]
    fn matches_direct_sum_2d() {
        let (pts, den) = problem(2000, 1);
        let plan = FmmPlan2::new(&pts, &den, 30, 8);
        let fmm = evaluate_2d(&plan);
        let direct = direct_sum_2d(&pts, &den);
        let err = relative_l2_error(&fmm, &direct);
        assert!(err < 1e-4, "2D FMM vs direct: {err}");
    }

    #[test]
    fn higher_order_is_more_accurate_2d() {
        let (pts, den) = problem(1500, 2);
        let direct = direct_sum_2d(&pts, &den);
        let e4 = relative_l2_error(&evaluate_2d(&FmmPlan2::new(&pts, &den, 30, 4)), &direct);
        let e12 = relative_l2_error(&evaluate_2d(&FmmPlan2::new(&pts, &den, 30, 12)), &direct);
        assert!(e12 < e4, "p=12 ({e12}) beats p=4 ({e4})");
        assert!(e12 < 1e-5, "2D converges fast: {e12}");
    }

    #[test]
    fn clustered_2d_distribution_exercises_w_x() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut pts: Vec<[f64; 2]> = (0..700).map(|_| [rng.random(), rng.random()]).collect();
        for _ in 0..700 {
            pts.push([0.2 + rng.random::<f64>() * 0.01, 0.8 + rng.random::<f64>() * 0.01]);
        }
        let den: Vec<f64> = (0..1400).map(|_| rng.random::<f64>() - 0.5).collect();
        let plan = FmmPlan2::new(&pts, &den, 20, 8);
        assert!(plan.lists.w.iter().map(|l| l.len()).sum::<usize>() > 0);
        let fmm = evaluate_2d(&plan);
        let direct = direct_sum_2d(&pts, &den);
        let err = relative_l2_error(&fmm, &direct);
        assert!(err < 1e-4, "adaptive 2D error {err}");
    }

    #[test]
    fn single_box_is_exact_2d() {
        let (pts, den) = problem(100, 4);
        let plan = FmmPlan2::new(&pts, &den, 200, 4);
        let fmm = evaluate_2d(&plan);
        let direct = direct_sum_2d(&pts, &den);
        assert!(relative_l2_error(&fmm, &direct) < 1e-14);
    }

    #[test]
    fn observed_2d_evaluation_matches_and_sees_four_phases() {
        struct Recorder(Vec<EnginePhase>);
        impl PhaseObserver for Recorder {
            fn on_phase_start(&mut self, phase: EnginePhase) {
                self.0.push(phase);
            }
            fn on_phase_end(&mut self, _phase: EnginePhase, _elapsed_s: f64) {}
        }
        let (pts, den) = problem(1200, 6);
        let plan = FmmPlan2::new(&pts, &den, 30, 8);
        let mut rec = Recorder(Vec::new());
        let observed = evaluate_2d_observed(&plan, &mut rec);
        assert_eq!(observed, evaluate_2d(&plan), "observer changes nothing");
        // The 2D engine fuses V + X, so there is no X boundary.
        assert_eq!(
            rec.0,
            vec![EnginePhase::Up, EnginePhase::V, EnginePhase::Down, EnginePhase::Near]
        );
    }

    #[test]
    fn linearity_in_density_2d() {
        let (pts, den) = problem(600, 5);
        let base = evaluate_2d(&FmmPlan2::new(&pts, &den, 25, 8));
        let den3: Vec<f64> = den.iter().map(|d| 3.0 * d).collect();
        let tripled = evaluate_2d(&FmmPlan2::new(&pts, &den3, 25, 8));
        let expected: Vec<f64> = base.iter().map(|p| 3.0 * p).collect();
        let err = relative_l2_error(&tripled, &expected);
        // The pipeline is exactly linear in the densities; the residual is
        // rounding amplified by the regularized pseudo-inverses (whose
        // intermediate equivalent densities are large), so a handful of
        // digits — not the 1e-16 of plain arithmetic — is the right bar.
        assert!(err < 1e-7, "linearity error {err}");
    }
}
