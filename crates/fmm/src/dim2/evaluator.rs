//! The 2D six-phase evaluation engine (dense M2L).

use crate::dim2::geometry::{InteractionLists2, QuadTree};
use crate::dim2::operators::{
    surface_points_2d, Kernel2, Laplace2, OperatorCache2, RADIUS_INNER_2D, RADIUS_OUTER_2D,
};
use compat::par::{IntoParIterExt, ParSliceExt};

/// A 2D execution plan.
pub struct FmmPlan2<K: Kernel2 = Laplace2> {
    /// The kernel.
    pub kernel: K,
    /// The quadtree.
    pub tree: QuadTree,
    /// The interaction lists.
    pub lists: InteractionLists2,
    /// The operators.
    pub ops: OperatorCache2,
    /// Surface order.
    pub p: usize,
}

impl FmmPlan2<Laplace2> {
    /// Builds a plan with the 2D Laplace (log) kernel.
    pub fn new(points: &[[f64; 2]], densities: &[f64], q: usize, p: usize) -> Self {
        FmmPlan2::with_kernel(Laplace2, points, densities, q, p)
    }
}

impl<K: Kernel2> FmmPlan2<K> {
    /// Builds a plan with an arbitrary 2D kernel.
    pub fn with_kernel(
        kernel: K,
        points: &[[f64; 2]],
        densities: &[f64],
        q: usize,
        p: usize,
    ) -> Self {
        let tree = QuadTree::build(points, densities, q);
        let lists = InteractionLists2::build(&tree);
        let ops = OperatorCache2::build(&kernel, &tree, p);
        FmmPlan2 { kernel, tree, lists, ops, p }
    }

    fn ns(&self) -> usize {
        4 * self.p - 4
    }
}

/// Evaluates all potentials for a 2D plan, in original point order.
pub fn evaluate_2d<K: Kernel2>(plan: &FmmPlan2<K>) -> Vec<f64> {
    let tree = &plan.tree;
    let ns = plan.ns();
    let n_nodes = tree.nodes.len();

    // UP.
    let mut up_equiv: Vec<Vec<f64>> = vec![Vec::new(); n_nodes];
    for level in (0..tree.levels.len()).rev() {
        let computed: Vec<(usize, Vec<f64>)> = tree.levels[level]
            .par_iter()
            .map(|&ni| {
                let node = &tree.nodes[ni];
                let equiv = if node.is_leaf() {
                    let check =
                        surface_points_2d(plan.p, node.center, node.half_width, RADIUS_OUTER_2D);
                    let (s, e) = node.point_range;
                    let mut pot = vec![0.0; check.len()];
                    plan.kernel.p2p(&check, &tree.points[s..e], &tree.densities[s..e], &mut pot);
                    plan.ops.uc2e(node.id.level).matvec(&pot)
                } else {
                    let mut acc = vec![0.0; ns];
                    for child in node.children.iter().flatten() {
                        let c = &tree.nodes[*child];
                        let contrib =
                            plan.ops.m2m(c.id.level, c.id.quadrant()).matvec(&up_equiv[*child]);
                        for (a, v) in acc.iter_mut().zip(&contrib) {
                            *a += v;
                        }
                    }
                    acc
                };
                (ni, equiv)
            })
            .collect();
        for (ni, equiv) in computed {
            up_equiv[ni] = equiv;
        }
    }

    // V (dense) + X into downward-check accumulators.
    let mut down_check: Vec<Vec<f64>> = vec![vec![0.0; ns]; n_nodes];
    let v_results: Vec<(usize, Vec<f64>)> = (0..n_nodes)
        .into_par_iter()
        .filter(|&ni| !plan.lists.v[ni].is_empty() || !plan.lists.x[ni].is_empty())
        .map(|ni| {
            let node = &tree.nodes[ni];
            let tid = node.id;
            let mut acc = vec![0.0; ns];
            for &si in &plan.lists.v[ni] {
                let sid = tree.nodes[si].id;
                let off = (sid.x as i32 - tid.x as i32, sid.y as i32 - tid.y as i32);
                let m2l = plan.ops.m2l(tid.level, off).expect("2d m2l cached");
                let contrib = m2l.matvec(&up_equiv[si]);
                for (a, v) in acc.iter_mut().zip(&contrib) {
                    *a += v;
                }
            }
            if !plan.lists.x[ni].is_empty() {
                let check =
                    surface_points_2d(plan.p, node.center, node.half_width, RADIUS_INNER_2D);
                for &ci in &plan.lists.x[ni] {
                    let (s, e) = tree.nodes[ci].point_range;
                    plan.kernel.p2p(&check, &tree.points[s..e], &tree.densities[s..e], &mut acc);
                }
            }
            (ni, acc)
        })
        .collect();
    for (ni, acc) in v_results {
        down_check[ni] = acc;
    }

    // DOWN: L2L top-down.
    let mut down_equiv: Vec<Vec<f64>> = vec![Vec::new(); n_nodes];
    for level in 0..tree.levels.len() {
        let computed: Vec<(usize, Vec<f64>)> = tree.levels[level]
            .par_iter()
            .map(|&ni| {
                let node = &tree.nodes[ni];
                let mut equiv = plan.ops.dc2e(node.id.level).matvec(&down_check[ni]);
                if let Some(pi) = node.parent {
                    if !down_equiv[pi].is_empty() {
                        let contrib =
                            plan.ops.l2l(node.id.level, node.id.quadrant()).matvec(&down_equiv[pi]);
                        for (e, v) in equiv.iter_mut().zip(&contrib) {
                            *e += v;
                        }
                    }
                }
                (ni, equiv)
            })
            .collect();
        for (ni, equiv) in computed {
            down_equiv[ni] = equiv;
        }
    }

    // Leaf phases: L2P + W + U.
    let leaf_results: Vec<((usize, usize), Vec<f64>)> = tree
        .leaves()
        .par_iter()
        .map(|&li| {
            let node = &tree.nodes[li];
            let (s, e) = node.point_range;
            let targets = &tree.points[s..e];
            let mut pot = vec![0.0; e - s];
            let equiv_pts =
                surface_points_2d(plan.p, node.center, node.half_width, RADIUS_OUTER_2D);
            plan.kernel.p2p(targets, &equiv_pts, &down_equiv[li], &mut pot);
            for &wi in &plan.lists.w[li] {
                let wnode = &tree.nodes[wi];
                let wpts =
                    surface_points_2d(plan.p, wnode.center, wnode.half_width, RADIUS_INNER_2D);
                plan.kernel.p2p(targets, &wpts, &up_equiv[wi], &mut pot);
            }
            for &ui in &plan.lists.u[li] {
                let (us, ue) = tree.nodes[ui].point_range;
                plan.kernel.p2p(targets, &tree.points[us..ue], &tree.densities[us..ue], &mut pot);
            }
            ((s, e), pot)
        })
        .collect();

    let mut out = vec![0.0; tree.points.len()];
    for ((s, _), pot) in leaf_results {
        for (offset, v) in pot.into_iter().enumerate() {
            out[tree.permutation[s + offset]] = v;
        }
    }
    out
}

/// O(N²) 2D reference.
pub fn direct_sum_2d(points: &[[f64; 2]], densities: &[f64]) -> Vec<f64> {
    let kernel = Laplace2;
    points
        .par_iter()
        .map(|&t| {
            let mut acc = 0.0;
            for (j, &s) in points.iter().enumerate() {
                acc += kernel.eval(t, s) * densities[j];
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy::relative_l2_error;
    use compat::rng::StdRng;

    fn problem(n: usize, seed: u64) -> (Vec<[f64; 2]>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = (0..n).map(|_| [rng.random(), rng.random()]).collect();
        let den = (0..n).map(|_| 2.0 * rng.random::<f64>() - 1.0).collect();
        (pts, den)
    }

    #[test]
    fn matches_direct_sum_2d() {
        let (pts, den) = problem(2000, 1);
        let plan = FmmPlan2::new(&pts, &den, 30, 8);
        let fmm = evaluate_2d(&plan);
        let direct = direct_sum_2d(&pts, &den);
        let err = relative_l2_error(&fmm, &direct);
        assert!(err < 1e-4, "2D FMM vs direct: {err}");
    }

    #[test]
    fn higher_order_is_more_accurate_2d() {
        let (pts, den) = problem(1500, 2);
        let direct = direct_sum_2d(&pts, &den);
        let e4 = relative_l2_error(&evaluate_2d(&FmmPlan2::new(&pts, &den, 30, 4)), &direct);
        let e12 = relative_l2_error(&evaluate_2d(&FmmPlan2::new(&pts, &den, 30, 12)), &direct);
        assert!(e12 < e4, "p=12 ({e12}) beats p=4 ({e4})");
        assert!(e12 < 1e-5, "2D converges fast: {e12}");
    }

    #[test]
    fn clustered_2d_distribution_exercises_w_x() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut pts: Vec<[f64; 2]> = (0..700).map(|_| [rng.random(), rng.random()]).collect();
        for _ in 0..700 {
            pts.push([0.2 + rng.random::<f64>() * 0.01, 0.8 + rng.random::<f64>() * 0.01]);
        }
        let den: Vec<f64> = (0..1400).map(|_| rng.random::<f64>() - 0.5).collect();
        let plan = FmmPlan2::new(&pts, &den, 20, 8);
        assert!(plan.lists.w.iter().map(|l| l.len()).sum::<usize>() > 0);
        let fmm = evaluate_2d(&plan);
        let direct = direct_sum_2d(&pts, &den);
        let err = relative_l2_error(&fmm, &direct);
        assert!(err < 1e-4, "adaptive 2D error {err}");
    }

    #[test]
    fn single_box_is_exact_2d() {
        let (pts, den) = problem(100, 4);
        let plan = FmmPlan2::new(&pts, &den, 200, 4);
        let fmm = evaluate_2d(&plan);
        let direct = direct_sum_2d(&pts, &den);
        assert!(relative_l2_error(&fmm, &direct) < 1e-14);
    }

    #[test]
    fn linearity_in_density_2d() {
        let (pts, den) = problem(600, 5);
        let base = evaluate_2d(&FmmPlan2::new(&pts, &den, 25, 8));
        let den3: Vec<f64> = den.iter().map(|d| 3.0 * d).collect();
        let tripled = evaluate_2d(&FmmPlan2::new(&pts, &den3, 25, 8));
        let expected: Vec<f64> = base.iter().map(|p| 3.0 * p).collect();
        let err = relative_l2_error(&tripled, &expected);
        // The pipeline is exactly linear in the densities; the residual is
        // rounding amplified by the regularized pseudo-inverses (whose
        // intermediate equivalent densities are large), so a handful of
        // digits — not the 1e-16 of plain arithmetic — is the right bar.
        assert!(err < 1e-7, "linearity error {err}");
    }
}
