//! The two-dimensional KIFMM (quad-tree variant).
//!
//! Section III of the paper describes the tree construction as "an
//! octree (or quad-tree in 2D)"; this module is that 2D variant, with
//! the same structure as the 3D implementation:
//!
//! * [`geometry`] — adaptive quadtree and the U/V/W/X lists (the paper's
//!   Figure 3 is exactly this 2D picture);
//! * [`operators`] — the 2D Laplace kernel `−ln‖x−y‖ / 2π`, square
//!   equivalent/check surfaces, and the translation operators;
//! * [`evaluator`] — the six-phase engine with dense M2L.
//!
//! The 2D variant trades the 3D version's FFT acceleration for
//! simplicity (its M2L matrices are tiny: `4p−4` square), and serves as
//! both a readable reference implementation of the KIFMM structure and
//! the substrate for 2D experiments.

pub mod evaluator;
pub mod geometry;
pub mod operators;

pub use evaluator::{direct_sum_2d, evaluate_2d, evaluate_2d_observed, FmmPlan2};
pub use geometry::{BoxId2, InteractionLists2, Node2, QuadTree};
pub use operators::{surface_points_2d, Kernel2, Laplace2, SurfaceTemplate2};
