//! 2D kernels, square surfaces, and translation operators.
//!
//! The 2D single-layer Laplace kernel is `K(x, y) = −ln‖x−y‖ / 2π`; the
//! equivalent/check surfaces are the boundary nodes of a square lattice,
//! with the same 1.05/2.95 radius scheme as 3D.
//!
//! One 2D-specific subtlety: the log kernel does not decay at infinity,
//! so an equivalent density must reproduce both the field *and* the net
//! charge (the coefficient of the log term).  The least-squares
//! check-surface fit handles this automatically because the log term is
//! in the span of the surface sources.

use crate::dim2::geometry::QuadTree;
use dvfs_linalg::{pseudo_inverse, Matrix};
use std::collections::HashMap;

/// Surface radius of the inner (upward-equivalent / downward-check)
/// square, × half-width.
pub const RADIUS_INNER_2D: f64 = 1.05;
/// Surface radius of the outer (upward-check / downward-equivalent)
/// square, × half-width.
pub const RADIUS_OUTER_2D: f64 = 2.95;

/// A translation-invariant 2D kernel.
pub trait Kernel2: Sync {
    /// Evaluates `K(target, source)`.
    fn eval(&self, target: [f64; 2], source: [f64; 2]) -> f64;

    /// Dense kernel matrix.
    fn matrix(&self, targets: &[[f64; 2]], sources: &[[f64; 2]]) -> Matrix {
        Matrix::from_fn(targets.len(), sources.len(), |i, j| self.eval(targets[i], sources[j]))
    }

    /// `out[i] += Σ_j K(t_i, s_j) q_j`.
    fn p2p(&self, targets: &[[f64; 2]], sources: &[[f64; 2]], q: &[f64], out: &mut [f64]) {
        for (i, &t) in targets.iter().enumerate() {
            let mut acc = 0.0;
            for (j, &s) in sources.iter().enumerate() {
                acc += self.eval(t, s) * q[j];
            }
            out[i] += acc;
        }
    }
}

/// The 2D Laplace kernel `−ln r / 2π` (self-interaction = 0).
#[derive(Debug, Clone, Copy, Default)]
pub struct Laplace2;

impl Kernel2 for Laplace2 {
    #[inline]
    fn eval(&self, target: [f64; 2], source: [f64; 2]) -> f64 {
        let dx = target[0] - source[0];
        let dy = target[1] - source[1];
        let r2 = dx * dx + dy * dy;
        if r2 == 0.0 {
            0.0
        } else {
            -0.5 * r2.ln() / (2.0 * std::f64::consts::PI)
        }
    }
}

/// The boundary nodes of a `p × p` lattice spanning the square of radius
/// `radius_factor × half_width` around `center` (`4p − 4` points).
pub fn surface_points_2d(
    p: usize,
    center: [f64; 2],
    half_width: f64,
    radius_factor: f64,
) -> Vec<[f64; 2]> {
    assert!(p >= 2);
    let r = radius_factor * half_width;
    let step = 2.0 * r / (p - 1) as f64;
    let mut out = Vec::with_capacity(4 * p - 4);
    for i in 0..p {
        for j in 0..p {
            if i == 0 || i == p - 1 || j == 0 || j == p - 1 {
                out.push([center[0] - r + step * i as f64, center[1] - r + step * j as f64]);
            }
        }
    }
    out
}

/// A cached unit surface lattice for one `(p, radius_factor)` pair —
/// the 2D twin of [`crate::surface::SurfaceTemplate`].  Scaling replaces
/// the per-box trigonometry-free but allocation-heavy
/// [`surface_points_2d`] calls in the evaluator's hot loops.
pub struct SurfaceTemplate2 {
    p: usize,
    radius_factor: f64,
    unit: Vec<[f64; 2]>,
}

impl SurfaceTemplate2 {
    /// Builds the unit template (`center = 0`, `half_width = 1`).
    pub fn new(p: usize, radius_factor: f64) -> Self {
        SurfaceTemplate2 {
            p,
            radius_factor,
            unit: surface_points_2d(p, [0.0; 2], 1.0, radius_factor),
        }
    }

    /// Number of surface points (`4p − 4`).
    pub fn len(&self) -> usize {
        self.unit.len()
    }

    /// True for the degenerate empty template.
    pub fn is_empty(&self) -> bool {
        self.unit.is_empty()
    }

    /// Surface order.
    pub fn order(&self) -> usize {
        self.p
    }

    /// Radius factor.
    pub fn radius_factor(&self) -> f64 {
        self.radius_factor
    }

    /// Writes the template scaled to a concrete box into `out`.
    pub fn scale_into(&self, center: [f64; 2], half_width: f64, out: &mut Vec<[f64; 2]>) {
        out.clear();
        out.reserve(self.unit.len());
        for u in &self.unit {
            out.push([center[0] + half_width * u[0], center[1] + half_width * u[1]]);
        }
    }
}

/// Relative offset at a common level, in box widths.
pub type Offset2 = (i32, i32);

/// The 2D operator cache (UC2E/DC2E per level, M2M/L2L per quadrant,
/// dense M2L per realized offset).
pub struct OperatorCache2 {
    /// Surface order.
    pub p: usize,
    uc2e: HashMap<u8, Matrix>,
    dc2e: HashMap<u8, Matrix>,
    m2m: HashMap<(u8, usize), Matrix>,
    l2l: HashMap<(u8, usize), Matrix>,
    m2l: HashMap<(u8, Offset2), Matrix>,
}

const PINV_RTOL_2D: f64 = 1e-12;

impl OperatorCache2 {
    /// Builds every operator the tree's lists need.
    pub fn build<K: Kernel2>(kernel: &K, tree: &QuadTree, p: usize) -> Self {
        let mut cache = OperatorCache2 {
            p,
            uc2e: HashMap::new(),
            dc2e: HashMap::new(),
            m2m: HashMap::new(),
            l2l: HashMap::new(),
            m2l: HashMap::new(),
        };
        let root_hw = tree.nodes[0].half_width;
        for level in 0..=tree.depth() {
            let hw = root_hw / (1u64 << level) as f64;
            cache.uc2e.insert(level, Self::make_c2e(kernel, p, hw, true));
            cache.dc2e.insert(level, Self::make_c2e(kernel, p, hw, false));
            if level > 0 {
                let parent_uc2e = cache.uc2e[&(level - 1)].clone();
                let child_dc2e = cache.dc2e[&level].clone();
                for quadrant in 0..4 {
                    cache.m2m.insert(
                        (level, quadrant),
                        Self::make_m2m(kernel, p, hw, quadrant, &parent_uc2e),
                    );
                    cache.l2l.insert(
                        (level, quadrant),
                        Self::make_l2l(kernel, p, hw, quadrant, &child_dc2e),
                    );
                }
            }
        }
        let lists = crate::dim2::geometry::InteractionLists2::build(tree);
        for (ti, vl) in lists.v.iter().enumerate() {
            let tid = tree.nodes[ti].id;
            for &si in vl {
                let sid = tree.nodes[si].id;
                let off = (sid.x as i32 - tid.x as i32, sid.y as i32 - tid.y as i32);
                let hw = root_hw / (1u64 << tid.level) as f64;
                cache
                    .m2l
                    .entry((tid.level, off))
                    .or_insert_with(|| Self::make_m2l(kernel, p, hw, off));
            }
        }
        cache
    }

    fn make_c2e<K: Kernel2>(kernel: &K, p: usize, hw: f64, upward: bool) -> Matrix {
        let (equiv_r, check_r) = if upward {
            (RADIUS_INNER_2D, RADIUS_OUTER_2D)
        } else {
            (RADIUS_OUTER_2D, RADIUS_INNER_2D)
        };
        let equiv = surface_points_2d(p, [0.0; 2], hw, equiv_r);
        let check = surface_points_2d(p, [0.0; 2], hw, check_r);
        pseudo_inverse(&kernel.matrix(&check, &equiv), PINV_RTOL_2D).expect("2d c2e pinv")
    }

    fn child_center(child_hw: f64, quadrant: usize) -> [f64; 2] {
        [
            child_hw * if quadrant & 1 != 0 { 1.0 } else { -1.0 },
            child_hw * if quadrant & 2 != 0 { 1.0 } else { -1.0 },
        ]
    }

    fn make_m2m<K: Kernel2>(
        kernel: &K,
        p: usize,
        child_hw: f64,
        quadrant: usize,
        parent_uc2e: &Matrix,
    ) -> Matrix {
        let child_equiv =
            surface_points_2d(p, Self::child_center(child_hw, quadrant), child_hw, RADIUS_INNER_2D);
        let parent_check = surface_points_2d(p, [0.0; 2], 2.0 * child_hw, RADIUS_OUTER_2D);
        parent_uc2e.matmul(&kernel.matrix(&parent_check, &child_equiv)).expect("m2m")
    }

    fn make_l2l<K: Kernel2>(
        kernel: &K,
        p: usize,
        child_hw: f64,
        quadrant: usize,
        child_dc2e: &Matrix,
    ) -> Matrix {
        let parent_equiv = surface_points_2d(p, [0.0; 2], 2.0 * child_hw, RADIUS_OUTER_2D);
        let child_check =
            surface_points_2d(p, Self::child_center(child_hw, quadrant), child_hw, RADIUS_INNER_2D);
        child_dc2e.matmul(&kernel.matrix(&child_check, &parent_equiv)).expect("l2l")
    }

    fn make_m2l<K: Kernel2>(kernel: &K, p: usize, hw: f64, off: Offset2) -> Matrix {
        let width = 2.0 * hw;
        let src_center = [off.0 as f64 * width, off.1 as f64 * width];
        let src_equiv = surface_points_2d(p, src_center, hw, RADIUS_INNER_2D);
        let tgt_check = surface_points_2d(p, [0.0; 2], hw, RADIUS_INNER_2D);
        kernel.matrix(&tgt_check, &src_equiv)
    }

    /// UC2E at `level`.
    pub fn uc2e(&self, level: u8) -> &Matrix {
        &self.uc2e[&level]
    }

    /// DC2E at `level`.
    pub fn dc2e(&self, level: u8) -> &Matrix {
        &self.dc2e[&level]
    }

    /// M2M for a child at `level` in `quadrant`.
    pub fn m2m(&self, level: u8, quadrant: usize) -> &Matrix {
        &self.m2m[&(level, quadrant)]
    }

    /// L2L for a child at `level` in `quadrant`.
    pub fn l2l(&self, level: u8, quadrant: usize) -> &Matrix {
        &self.l2l[&(level, quadrant)]
    }

    /// Dense M2L at `(level, offset)`.
    pub fn m2l(&self, level: u8, off: Offset2) -> Option<&Matrix> {
        self.m2l.get(&(level, off))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compat::rng::StdRng;

    const P: usize = 8;

    #[test]
    fn log_kernel_values() {
        let k = Laplace2;
        assert_eq!(k.eval([0.0, 0.0], [1.0, 0.0]), 0.0_f64.max(-0.0), "ln 1 = 0");
        assert!(k.eval([0.0, 0.0], [0.5, 0.0]) > 0.0, "attractive inside unit radius");
        assert!(k.eval([0.0, 0.0], [3.0, 0.0]) < 0.0);
        assert_eq!(k.eval([0.2, 0.2], [0.2, 0.2]), 0.0, "self-interaction");
    }

    #[test]
    fn surface_count_is_4p_minus_4() {
        for p in 2..9 {
            assert_eq!(surface_points_2d(p, [0.0; 2], 1.0, 1.0).len(), 4 * p - 4);
        }
    }

    #[test]
    fn surface_template_2d_matches_lattice() {
        let tpl = SurfaceTemplate2::new(6, RADIUS_INNER_2D);
        assert_eq!(tpl.len(), 4 * 6 - 4);
        assert_eq!(tpl.order(), 6);
        assert_eq!(tpl.radius_factor(), RADIUS_INNER_2D);
        assert!(!tpl.is_empty());
        let mut scaled = Vec::new();
        tpl.scale_into([0.3, -0.7], 0.25, &mut scaled);
        let direct = surface_points_2d(6, [0.3, -0.7], 0.25, RADIUS_INNER_2D);
        assert_eq!(scaled.len(), direct.len());
        for (a, b) in scaled.iter().zip(&direct) {
            for d in 0..2 {
                assert!((a[d] - b[d]).abs() < 1e-12, "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn p2m_reproduces_far_field_2d() {
        // Random sources in a box; the fitted equivalent density must
        // reproduce the potential at well-separated targets — including
        // the net-charge log behaviour at long range.
        let kernel = Laplace2;
        let hw = 0.5;
        let mut rng = StdRng::seed_from_u64(2);
        let src: Vec<[f64; 2]> = (0..30)
            .map(|_| {
                [hw * (2.0 * rng.random::<f64>() - 1.0), hw * (2.0 * rng.random::<f64>() - 1.0)]
            })
            .collect();
        let den: Vec<f64> = (0..30).map(|_| 2.0 * rng.random::<f64>() - 1.0).collect();
        let check = surface_points_2d(P, [0.0; 2], hw, RADIUS_OUTER_2D);
        let equiv_pts = surface_points_2d(P, [0.0; 2], hw, RADIUS_INNER_2D);
        let mut check_pot = vec![0.0; check.len()];
        kernel.p2p(&check, &src, &den, &mut check_pot);
        let uc2e = OperatorCache2::make_c2e(&kernel, P, hw, true);
        let equiv_den = uc2e.matvec(&check_pot);
        for t in [[4.0 * hw, 0.0], [3.0 * hw, 3.0 * hw], [0.0, -6.0 * hw]] {
            let mut direct = [0.0];
            kernel.p2p(&[t], &src, &den, &mut direct);
            let mut approx = [0.0];
            kernel.p2p(&[t], &equiv_pts, &equiv_den, &mut approx);
            let scale = direct[0].abs().max(0.1);
            assert!(
                (direct[0] - approx[0]).abs() / scale < 1e-5,
                "2D P2M error at {t:?}: {} vs {}",
                approx[0],
                direct[0]
            );
        }
    }

    #[test]
    fn m2l_reproduces_interior_field_2d() {
        let kernel = Laplace2;
        let hw = 0.5;
        let off: Offset2 = (2, -1);
        let width = 2.0 * hw;
        let src_center = [2.0 * width, -width];
        let mut rng = StdRng::seed_from_u64(5);
        let src: Vec<[f64; 2]> = (0..25)
            .map(|_| {
                [
                    src_center[0] + hw * (2.0 * rng.random::<f64>() - 1.0),
                    src_center[1] + hw * (2.0 * rng.random::<f64>() - 1.0),
                ]
            })
            .collect();
        let den: Vec<f64> = (0..25).map(|_| rng.random::<f64>() - 0.5).collect();
        // Source multipole.
        let src_local: Vec<[f64; 2]> =
            src.iter().map(|p| [p[0] - src_center[0], p[1] - src_center[1]]).collect();
        let check = surface_points_2d(P, [0.0; 2], hw, RADIUS_OUTER_2D);
        let mut cpot = vec![0.0; check.len()];
        kernel.p2p(&check, &src_local, &den, &mut cpot);
        let uc2e = OperatorCache2::make_c2e(&kernel, P, hw, true);
        let equiv_den = uc2e.matvec(&cpot);
        // M2L + DC2E.
        let m2l = OperatorCache2::make_m2l(&kernel, P, hw, off);
        let dcheck = m2l.matvec(&equiv_den);
        let dc2e = OperatorCache2::make_c2e(&kernel, P, hw, false);
        let local = dc2e.matvec(&dcheck);
        let local_pts = surface_points_2d(P, [0.0; 2], hw, RADIUS_OUTER_2D);
        for t in [[0.0, 0.0], [0.4 * hw, -0.7 * hw]] {
            let mut direct = [0.0];
            kernel.p2p(&[t], &src, &den, &mut direct);
            let mut approx = [0.0];
            kernel.p2p(&[t], &local_pts, &local, &mut approx);
            let scale = direct[0].abs().max(0.1);
            assert!((direct[0] - approx[0]).abs() / scale < 1e-5, "2D M2L error at {t:?}");
        }
    }
}
