//! Adaptive octree construction.
//!
//! Given points in a bounding cube and the user parameter `Q` (maximum
//! points per box), boxes are recursively subdivided while they hold more
//! than `Q` points.  Empty children are pruned.  Points are permuted so
//! every node owns a contiguous index range, which keeps the P2P phases
//! streaming.

use crate::morton;
use std::collections::HashMap;

/// A box address: refinement level plus integer anchor in the level grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BoxId {
    /// Refinement level (root = 0).
    pub level: u8,
    /// Anchor coordinates in `[0, 2^level)`.
    pub x: u32,
    /// Anchor y.
    pub y: u32,
    /// Anchor z.
    pub z: u32,
}

impl BoxId {
    /// The root box.
    pub fn root() -> Self {
        BoxId { level: 0, x: 0, y: 0, z: 0 }
    }

    /// The parent box (None for the root).
    pub fn parent(&self) -> Option<BoxId> {
        if self.level == 0 {
            None
        } else {
            Some(BoxId { level: self.level - 1, x: self.x / 2, y: self.y / 2, z: self.z / 2 })
        }
    }

    /// The child box in `octant`.
    pub fn child(&self, octant: usize) -> BoxId {
        let (x, y, z) = morton::child_anchor(self.x, self.y, self.z, octant);
        BoxId { level: self.level + 1, x, y, z }
    }

    /// Which octant of its parent this box occupies.
    pub fn octant(&self) -> usize {
        morton::octant(self.x, self.y, self.z)
    }

    /// True when the closed cubes of `self` and `other` touch or overlap
    /// (the adjacency relation of the interaction lists).  Works across
    /// levels using exact integer arithmetic.
    pub fn adjacent(&self, other: &BoxId) -> bool {
        // Box spans [anchor, anchor+1] * 2^(L - level) at a common scale L.
        let common = self.level.max(other.level);
        let sa = 1u64 << (common - self.level);
        let sb = 1u64 << (common - other.level);
        let overlap_1d = |a: u32, b: u32, sa: u64, sb: u64| {
            let a0 = a as u64 * sa;
            let a1 = a0 + sa;
            let b0 = b as u64 * sb;
            let b1 = b0 + sb;
            a0 <= b1 && b0 <= a1
        };
        overlap_1d(self.x, other.x, sa, sb)
            && overlap_1d(self.y, other.y, sa, sb)
            && overlap_1d(self.z, other.z, sa, sb)
    }

    /// True when `self` is an ancestor of `other` (or equal).
    pub fn contains(&self, other: &BoxId) -> bool {
        if other.level < self.level {
            return false;
        }
        let shift = other.level - self.level;
        other.x >> shift == self.x && other.y >> shift == self.y && other.z >> shift == self.z
    }
}

/// One tree node.
#[derive(Debug, Clone)]
pub struct Node {
    /// The box address.
    pub id: BoxId,
    /// Parent node index (None for the root).
    pub parent: Option<usize>,
    /// Child node indices by octant (pruned children are None).
    pub children: [Option<usize>; 8],
    /// Contiguous range of owned points in the permuted point array
    /// (covers all descendants for internal nodes).
    pub point_range: (usize, usize),
    /// Box center in problem coordinates.
    pub center: [f64; 3],
    /// Half of the box edge length.
    pub half_width: f64,
}

impl Node {
    /// True when the node has no children.
    pub fn is_leaf(&self) -> bool {
        self.children.iter().all(|c| c.is_none())
    }

    /// Number of points the node owns.
    pub fn num_points(&self) -> usize {
        self.point_range.1 - self.point_range.0
    }
}

/// The adaptive octree over a point set.
#[derive(Debug, Clone)]
pub struct Octree {
    /// Nodes; index 0 is the root.  Children always appear after their
    /// parent, so a forward scan is a valid top-down order.
    pub nodes: Vec<Node>,
    /// Points permuted into tree order.
    pub points: Vec<[f64; 3]>,
    /// Source densities permuted identically.
    pub densities: Vec<f64>,
    /// `permutation[i]` = original index of permuted point `i`.
    pub permutation: Vec<usize>,
    /// Box-address → node-index lookup.
    index: HashMap<BoxId, usize>,
    /// Node indices grouped by level.
    pub levels: Vec<Vec<usize>>,
    /// The split threshold `Q`.
    pub max_leaf_points: usize,
}

impl Octree {
    /// Builds the tree over `points` (with per-point `densities`),
    /// splitting boxes holding more than `max_leaf_points` points.
    ///
    /// # Panics
    /// Panics if the inputs are empty or of mismatched length.
    pub fn build(points: &[[f64; 3]], densities: &[f64], max_leaf_points: usize) -> Self {
        assert!(!points.is_empty(), "empty point set");
        assert_eq!(points.len(), densities.len(), "one density per point");
        assert!(max_leaf_points >= 1, "Q must be at least 1");

        // Bounding cube (slightly padded so boundary points stay interior).
        let mut lo = [f64::INFINITY; 3];
        let mut hi = [f64::NEG_INFINITY; 3];
        for p in points {
            for d in 0..3 {
                lo[d] = lo[d].min(p[d]);
                hi[d] = hi[d].max(p[d]);
            }
        }
        let mut width = 0.0f64;
        for d in 0..3 {
            width = width.max(hi[d] - lo[d]);
        }
        let width = if width > 0.0 { width * (1.0 + 1e-12) } else { 1.0 };
        let root_center = [lo[0] + width * 0.5, lo[1] + width * 0.5, lo[2] + width * 0.5];

        let mut order: Vec<usize> = (0..points.len()).collect();
        let mut nodes = Vec::new();
        nodes.push(Node {
            id: BoxId::root(),
            parent: None,
            children: [None; 8],
            point_range: (0, points.len()),
            center: root_center,
            half_width: width * 0.5,
        });

        // Iterative refinement (explicit stack keeps children after
        // parents in `nodes`).
        let mut stack = vec![0usize];
        while let Some(ni) = stack.pop() {
            let (start, end) = nodes[ni].point_range;
            if end - start <= max_leaf_points || nodes[ni].id.level >= morton::MAX_LEVEL {
                continue;
            }
            let center = nodes[ni].center;
            let hw = nodes[ni].half_width;
            // Bucket the node's points by octant (stable three-way via
            // counting sort over 8 buckets).
            let mut buckets: [Vec<usize>; 8] = Default::default();
            for &pi in &order[start..end] {
                let p = points[pi];
                let o = (usize::from(p[0] >= center[0]))
                    | (usize::from(p[1] >= center[1]) << 1)
                    | (usize::from(p[2] >= center[2]) << 2);
                buckets[o].push(pi);
            }
            let mut cursor = start;
            let parent_id = nodes[ni].id;
            for (o, bucket) in buckets.iter().enumerate() {
                if bucket.is_empty() {
                    continue;
                }
                let child_start = cursor;
                for &pi in bucket {
                    order[cursor] = pi;
                    cursor += 1;
                }
                let child_id = parent_id.child(o);
                let child_center = [
                    center[0] + hw * 0.5 * if o & 1 != 0 { 1.0 } else { -1.0 },
                    center[1] + hw * 0.5 * if o & 2 != 0 { 1.0 } else { -1.0 },
                    center[2] + hw * 0.5 * if o & 4 != 0 { 1.0 } else { -1.0 },
                ];
                let child_index = nodes.len();
                nodes.push(Node {
                    id: child_id,
                    parent: Some(ni),
                    children: [None; 8],
                    point_range: (child_start, cursor),
                    center: child_center,
                    half_width: hw * 0.5,
                });
                nodes[ni].children[o] = Some(child_index);
                stack.push(child_index);
            }
            debug_assert_eq!(cursor, end);
        }

        let permuted_points: Vec<[f64; 3]> = order.iter().map(|&i| points[i]).collect();
        let permuted_densities: Vec<f64> = order.iter().map(|&i| densities[i]).collect();

        let mut index = HashMap::with_capacity(nodes.len());
        let mut levels: Vec<Vec<usize>> = Vec::new();
        for (i, n) in nodes.iter().enumerate() {
            index.insert(n.id, i);
            let l = n.id.level as usize;
            if levels.len() <= l {
                levels.resize(l + 1, Vec::new());
            }
            levels[l].push(i);
        }

        Octree {
            nodes,
            points: permuted_points,
            densities: permuted_densities,
            permutation: order,
            index,
            levels,
            max_leaf_points,
        }
    }

    /// Node index of a box address, if the box exists.
    pub fn find(&self, id: &BoxId) -> Option<usize> {
        self.index.get(id).copied()
    }

    /// The deepest existing ancestor-or-self of a box address.
    pub fn find_or_ancestor(&self, id: &BoxId) -> Option<usize> {
        let mut cur = *id;
        loop {
            if let Some(i) = self.find(&cur) {
                return Some(i);
            }
            cur = cur.parent()?;
        }
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Depth of the tree (max level present).
    pub fn depth(&self) -> u8 {
        (self.levels.len() - 1) as u8
    }

    /// Indices of all leaf nodes.
    pub fn leaves(&self) -> Vec<usize> {
        (0..self.nodes.len()).filter(|&i| self.nodes[i].is_leaf()).collect()
    }

    /// The existing same-level neighbors (colleagues) of node `ni`,
    /// excluding itself.
    pub fn colleagues(&self, ni: usize) -> Vec<usize> {
        let id = self.nodes[ni].id;
        let max = 1i64 << id.level;
        let mut out = Vec::new();
        for dx in -1i64..=1 {
            for dy in -1i64..=1 {
                for dz in -1i64..=1 {
                    if dx == 0 && dy == 0 && dz == 0 {
                        continue;
                    }
                    let (nx, ny, nz) = (id.x as i64 + dx, id.y as i64 + dy, id.z as i64 + dz);
                    if nx < 0 || ny < 0 || nz < 0 || nx >= max || ny >= max || nz >= max {
                        continue;
                    }
                    let nid = BoxId { level: id.level, x: nx as u32, y: ny as u32, z: nz as u32 };
                    if let Some(i) = self.find(&nid) {
                        out.push(i);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compat::rng::StdRng;

    fn random_points(n: usize, seed: u64) -> Vec<[f64; 3]> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| [rng.random(), rng.random(), rng.random()]).collect()
    }

    fn build(n: usize, q: usize) -> Octree {
        let pts = random_points(n, 42);
        let den = vec![1.0; n];
        Octree::build(&pts, &den, q)
    }

    #[test]
    fn all_leaves_respect_q() {
        let t = build(2000, 50);
        for n in &t.nodes {
            if n.is_leaf() {
                assert!(n.num_points() <= 50, "leaf holds {}", n.num_points());
                assert!(n.num_points() > 0, "empty leaves are pruned");
            }
        }
    }

    #[test]
    fn leaves_partition_the_points() {
        let t = build(1234, 40);
        let mut covered = vec![false; 1234];
        for &li in &t.leaves() {
            let (s, e) = t.nodes[li].point_range;
            for i in s..e {
                assert!(!covered[i], "point {i} owned by two leaves");
                covered[i] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn permutation_is_a_bijection_and_consistent() {
        let pts = random_points(500, 7);
        let den: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let t = Octree::build(&pts, &den, 30);
        let mut seen = vec![false; 500];
        for (i, &orig) in t.permutation.iter().enumerate() {
            assert!(!seen[orig]);
            seen[orig] = true;
            assert_eq!(t.points[i], pts[orig]);
            assert_eq!(t.densities[i], den[orig]);
        }
    }

    #[test]
    fn children_follow_parents() {
        let t = build(3000, 60);
        for (i, n) in t.nodes.iter().enumerate() {
            if let Some(p) = n.parent {
                assert!(p < i, "top-down scan order");
                assert!(t.nodes[p].id.contains(&n.id));
            }
        }
    }

    #[test]
    fn points_lie_inside_their_boxes() {
        let t = build(800, 25);
        for n in &t.nodes {
            let (s, e) = n.point_range;
            for p in &t.points[s..e] {
                for d in 0..3 {
                    assert!(
                        (p[d] - n.center[d]).abs() <= n.half_width * (1.0 + 1e-9),
                        "point escapes box"
                    );
                }
            }
        }
    }

    #[test]
    fn uniform_points_build_nearly_uniform_tree() {
        let t = build(4096, 64);
        // 4096/64 = 64 boxes minimum; uniform points should reach level 2–3.
        assert!(t.depth() >= 2);
        assert!(t.num_leaves() >= 64);
    }

    #[test]
    fn single_box_when_q_large() {
        let t = build(100, 1000);
        assert_eq!(t.nodes.len(), 1);
        assert!(t.nodes[0].is_leaf());
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn adjacency_same_level() {
        let a = BoxId { level: 2, x: 1, y: 1, z: 1 };
        assert!(a.adjacent(&BoxId { level: 2, x: 2, y: 2, z: 2 }), "corner touch");
        assert!(a.adjacent(&a), "self-adjacent");
        assert!(!a.adjacent(&BoxId { level: 2, x: 3, y: 1, z: 1 }), "gap of one box");
    }

    #[test]
    fn adjacency_across_levels() {
        let coarse = BoxId { level: 1, x: 0, y: 0, z: 0 };
        let fine_inside = BoxId { level: 3, x: 1, y: 2, z: 3 };
        assert!(coarse.adjacent(&fine_inside), "containment counts as touching");
        let fine_touching = BoxId { level: 3, x: 4, y: 0, z: 0 };
        assert!(coarse.adjacent(&fine_touching));
        let fine_far = BoxId { level: 3, x: 6, y: 0, z: 0 };
        assert!(!coarse.adjacent(&fine_far));
    }

    #[test]
    fn find_or_ancestor_walks_up() {
        let t = build(100, 30);
        let deep = BoxId { level: 9, x: 100, y: 200, z: 300 };
        let found = t.find_or_ancestor(&deep).unwrap();
        assert!(t.nodes[found].id.contains(&deep));
    }

    #[test]
    fn colleagues_are_adjacent_same_level() {
        let t = build(5000, 40);
        for &ni in &t.levels[t.depth() as usize - 1] {
            for c in t.colleagues(ni) {
                assert_eq!(t.nodes[c].id.level, t.nodes[ni].id.level);
                assert!(t.nodes[c].id.adjacent(&t.nodes[ni].id));
                assert_ne!(c, ni);
            }
        }
    }

    #[test]
    fn clustered_points_build_deep_adaptive_tree() {
        // Two tight clusters force deep refinement locally.
        let mut pts = Vec::new();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..500 {
            pts.push([
                0.1 + rng.random::<f64>() * 1e-3,
                0.1 + rng.random::<f64>() * 1e-3,
                0.1 + rng.random::<f64>() * 1e-3,
            ]);
        }
        for _ in 0..500 {
            pts.push([rng.random(), rng.random(), rng.random()]);
        }
        let t = Octree::build(&pts, &vec![1.0; 1000], 32);
        assert!(t.depth() >= 5, "clusters force depth, got {}", t.depth());
    }

    #[test]
    #[should_panic(expected = "empty point set")]
    fn empty_input_rejected() {
        let _ = Octree::build(&[], &[], 10);
    }
}
