//! Adaptive octree construction.
//!
//! Given points in a bounding cube and the user parameter `Q` (maximum
//! points per box), boxes are recursively subdivided while they hold more
//! than `Q` points.  Empty children are pruned.  Points are permuted so
//! every node owns a contiguous index range, which keeps the P2P phases
//! streaming.
//!
//! # Parallel construction
//!
//! [`Octree::build`] refines level-synchronously on the `compat::par`
//! pool while producing output *bitwise identical* to the reference
//! [`Octree::build_sequential`] (a test asserts full structural
//! equality across thread counts).  The determinism argument:
//!
//! * Bucketing a box by octant is a **stable 8-bucket counting sort**
//!   on the point's next Morton digit ([`morton::point_octant`]).  A
//!   stable sort has exactly one output for a given input order, so the
//!   parallel within-box sort — per-chunk histograms, an exclusive
//!   prefix over `(octant, chunk)`, then a per-chunk scatter into
//!   disjoint slots — lands every point at the same index for *any*
//!   chunk count, including the sequential single-chunk case.
//! * Distinct boxes own disjoint `order` ranges, so bucketing boxes of
//!   one level in parallel cannot interact.
//! * The sequential builder numbers nodes by an explicit-stack DFS
//!   (children indexed in octant order at parent pop).  The parallel
//!   builder refines in BFS level order — which fixes the *tree shape*
//!   only — and then replays that exact DFS over the finished shape to
//!   assign final node indices, so `nodes`, `levels`, and every
//!   parent/child link match the sequential numbering.

use crate::morton;
use compat::par;
use std::collections::HashMap;

/// A box address: refinement level plus integer anchor in the level grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BoxId {
    /// Refinement level (root = 0).
    pub level: u8,
    /// Anchor coordinates in `[0, 2^level)`.
    pub x: u32,
    /// Anchor y.
    pub y: u32,
    /// Anchor z.
    pub z: u32,
}

impl BoxId {
    /// The root box.
    pub fn root() -> Self {
        BoxId { level: 0, x: 0, y: 0, z: 0 }
    }

    /// The parent box (None for the root).
    pub fn parent(&self) -> Option<BoxId> {
        if self.level == 0 {
            None
        } else {
            Some(BoxId { level: self.level - 1, x: self.x / 2, y: self.y / 2, z: self.z / 2 })
        }
    }

    /// The child box in `octant`.
    pub fn child(&self, octant: usize) -> BoxId {
        let (x, y, z) = morton::child_anchor(self.x, self.y, self.z, octant);
        BoxId { level: self.level + 1, x, y, z }
    }

    /// Which octant of its parent this box occupies.
    pub fn octant(&self) -> usize {
        morton::octant(self.x, self.y, self.z)
    }

    /// True when the closed cubes of `self` and `other` touch or overlap
    /// (the adjacency relation of the interaction lists).  Works across
    /// levels using exact integer arithmetic.
    pub fn adjacent(&self, other: &BoxId) -> bool {
        // Box spans [anchor, anchor+1] * 2^(L - level) at a common scale L.
        let common = self.level.max(other.level);
        let sa = 1u64 << (common - self.level);
        let sb = 1u64 << (common - other.level);
        let overlap_1d = |a: u32, b: u32, sa: u64, sb: u64| {
            let a0 = a as u64 * sa;
            let a1 = a0 + sa;
            let b0 = b as u64 * sb;
            let b1 = b0 + sb;
            a0 <= b1 && b0 <= a1
        };
        overlap_1d(self.x, other.x, sa, sb)
            && overlap_1d(self.y, other.y, sa, sb)
            && overlap_1d(self.z, other.z, sa, sb)
    }

    /// True when `self` is an ancestor of `other` (or equal).
    pub fn contains(&self, other: &BoxId) -> bool {
        if other.level < self.level {
            return false;
        }
        let shift = other.level - self.level;
        other.x >> shift == self.x && other.y >> shift == self.y && other.z >> shift == self.z
    }
}

/// One tree node.
#[derive(Debug, Clone)]
pub struct Node {
    /// The box address.
    pub id: BoxId,
    /// Parent node index (None for the root).
    pub parent: Option<usize>,
    /// Child node indices by octant (pruned children are None).
    pub children: [Option<usize>; 8],
    /// Contiguous range of owned points in the permuted point array
    /// (covers all descendants for internal nodes).
    pub point_range: (usize, usize),
    /// Box center in problem coordinates.
    pub center: [f64; 3],
    /// Half of the box edge length.
    pub half_width: f64,
}

impl Node {
    /// True when the node has no children.
    pub fn is_leaf(&self) -> bool {
        self.children.iter().all(|c| c.is_none())
    }

    /// Number of points the node owns.
    pub fn num_points(&self) -> usize {
        self.point_range.1 - self.point_range.0
    }
}

/// The adaptive octree over a point set.
#[derive(Debug, Clone)]
pub struct Octree {
    /// Nodes; index 0 is the root.  Children always appear after their
    /// parent, so a forward scan is a valid top-down order.
    pub nodes: Vec<Node>,
    /// Points permuted into tree order.
    pub points: Vec<[f64; 3]>,
    /// Source densities permuted identically.
    pub densities: Vec<f64>,
    /// `permutation[i]` = original index of permuted point `i`.
    pub permutation: Vec<usize>,
    /// Box-address → node-index lookup.
    index: HashMap<BoxId, usize>,
    /// Node indices grouped by level.
    pub levels: Vec<Vec<usize>>,
    /// The split threshold `Q`.
    pub max_leaf_points: usize,
}

/// The bounding cube shared by both builders: center and edge length.
///
/// Kept sequential even in the parallel build — a parallel min/max
/// reduction over chunks could order `±0.0` ties differently depending
/// on chunk boundaries, and the cube feeds every box center.
fn bounding_cube(points: &[[f64; 3]]) -> ([f64; 3], f64) {
    // Bounding cube (slightly padded so boundary points stay interior).
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for p in points {
        for d in 0..3 {
            lo[d] = lo[d].min(p[d]);
            hi[d] = hi[d].max(p[d]);
        }
    }
    let mut width = 0.0f64;
    for d in 0..3 {
        width = width.max(hi[d] - lo[d]);
    }
    let width = if width > 0.0 { width * (1.0 + 1e-12) } else { 1.0 };
    let root_center = [lo[0] + width * 0.5, lo[1] + width * 0.5, lo[2] + width * 0.5];
    (root_center, width)
}

/// Child-box center, the exact expression both builders share.
#[inline]
fn child_center(center: [f64; 3], hw: f64, o: usize) -> [f64; 3] {
    [
        center[0] + hw * 0.5 * if o & 1 != 0 { 1.0 } else { -1.0 },
        center[1] + hw * 0.5 * if o & 2 != 0 { 1.0 } else { -1.0 },
        center[2] + hw * 0.5 * if o & 4 != 0 { 1.0 } else { -1.0 },
    ]
}

/// A node of the in-progress parallel build, indexed in BFS (frontier)
/// order; `Octree::build` renumbers these into the sequential DFS order
/// before constructing the final [`Node`]s.
struct BuildNode {
    id: BoxId,
    parent: Option<usize>,
    children: [Option<usize>; 8],
    point_range: (usize, usize),
    center: [f64; 3],
    half_width: f64,
}

/// Below this many points the parallel build delegates to the
/// sequential builder outright (identical output, no pool overhead).
const PAR_BUILD_MIN_POINTS: usize = 512;

/// Boxes at least this large are bucketed with the *within-box*
/// parallel counting sort; smaller boxes are batched *across* boxes.
const PAR_BOX_MIN_POINTS: usize = 1024;

/// Stable 8-bucket counting sort of `order[start..end]` by octant
/// relative to `center`, sequential form.  `scratch` provides the
/// temporary slot space for the same range.
///
/// # Safety contract (checked by the callers)
/// The caller must own `order[start..end]` and `scratch[start..end]`
/// exclusively; distinct boxes own disjoint ranges, which is what makes
/// batching boxes across the pool sound.
fn bucket_range_seq(
    points: &[[f64; 3]],
    order: par::SendPtr<usize>,
    scratch: par::SendPtr<usize>,
    start: usize,
    end: usize,
    center: [f64; 3],
) -> [usize; 8] {
    let len = end - start;
    // SAFETY: per the contract above, this range is exclusively ours.
    let ord = unsafe { order.slice_mut(start, len) };
    let tmp = unsafe { scratch.slice_mut(start, len) };
    let mut counts = [0usize; 8];
    for &pi in ord.iter() {
        counts[morton::point_octant(points[pi], center)] += 1;
    }
    let mut offs = [0usize; 8];
    let mut acc = 0;
    for o in 0..8 {
        offs[o] = acc;
        acc += counts[o];
    }
    for &pi in ord.iter() {
        let o = morton::point_octant(points[pi], center);
        tmp[offs[o]] = pi;
        offs[o] += 1;
    }
    ord.copy_from_slice(tmp);
    counts
}

/// Parallel stable counting sort of one large box: per-chunk octant
/// histograms, an exclusive prefix laid out in `(octant, chunk)` order,
/// then a parallel scatter into disjoint `scratch` slots.  The output
/// is the unique stable ordering, so it is identical for any chunk
/// count — and identical to [`bucket_range_seq`].
fn bucket_range_par(
    points: &[[f64; 3]],
    order: par::SendPtr<usize>,
    scratch: par::SendPtr<usize>,
    start: usize,
    end: usize,
    center: [f64; 3],
    threads: usize,
) -> [usize; 8] {
    let len = end - start;
    let chunk = len.div_ceil(threads.max(1)).max(1);
    let ranges: Vec<(usize, usize)> =
        (start..end).step_by(chunk).map(|s| (s, (s + chunk).min(end))).collect();
    // Phase 1: histogram each chunk (read-only on `order`).
    let histos: Vec<[usize; 8]> = par::par_map_vec(ranges.clone(), &|(s, e): (usize, usize)| {
        // SAFETY: no one writes `order` during this phase.
        let ord = unsafe { order.slice(s, e - s) };
        let mut h = [0usize; 8];
        for &pi in ord {
            h[morton::point_octant(points[pi], center)] += 1;
        }
        h
    });
    let mut totals = [0usize; 8];
    for h in &histos {
        for o in 0..8 {
            totals[o] += h[o];
        }
    }
    let mut oct_base = [0usize; 8];
    let mut acc = 0;
    for o in 0..8 {
        oct_base[o] = acc;
        acc += totals[o];
    }
    // Exclusive prefix: chunk c's octant-o slots start after every
    // earlier octant and after the octant-o items of earlier chunks —
    // the stable counting-sort layout.
    let mut offsets: Vec<[usize; 8]> = Vec::with_capacity(histos.len());
    let mut running = [0usize; 8];
    for h in &histos {
        let mut offs = [0usize; 8];
        for o in 0..8 {
            offs[o] = start + oct_base[o] + running[o];
            running[o] += h[o];
        }
        offsets.push(offs);
    }
    // Phase 2: scatter each chunk into its disjoint slots.
    let jobs: Vec<((usize, usize), [usize; 8])> = ranges.into_iter().zip(offsets).collect();
    par::par_for_each_init(
        jobs,
        || (),
        |_, ((s, e), mut offs): ((usize, usize), [usize; 8])| {
            // SAFETY: reads come from this chunk's own `order` range;
            // writes go to slot ranges disjoint per (chunk, octant).
            let ord = unsafe { order.slice(s, e - s) };
            for &pi in ord {
                let o = morton::point_octant(points[pi], center);
                unsafe { scratch.slice_mut(offs[o], 1)[0] = pi };
                offs[o] += 1;
            }
        },
    );
    // SAFETY: the scatter finished; we exclusively own both ranges.
    unsafe { order.slice_mut(start, len).copy_from_slice(scratch.slice(start, len)) };
    totals
}

/// Parallel gather `src[order[i]] → out[i]` in contiguous chunks.
fn par_gather<T: Copy + Default + Send + Sync>(src: &[T], order: &[usize]) -> Vec<T> {
    let n = order.len();
    let mut out = vec![T::default(); n];
    let threads = par::num_threads();
    if threads <= 1 || n < PAR_BUILD_MIN_POINTS {
        for (i, &oi) in order.iter().enumerate() {
            out[i] = src[oi];
        }
        return out;
    }
    let base = par::SendPtr::new(out.as_mut_ptr());
    let chunk = n.div_ceil(threads).max(1);
    let ranges: Vec<(usize, usize)> =
        (0..n).step_by(chunk).map(|s| (s, (s + chunk).min(n))).collect();
    par::par_for_each_init(
        ranges,
        || (),
        |_, (s, e): (usize, usize)| {
            // SAFETY: chunks write disjoint `out` ranges.
            let dst = unsafe { base.slice_mut(s, e - s) };
            for (i, &oi) in order[s..e].iter().enumerate() {
                dst[i] = src[oi];
            }
        },
    );
    out
}

impl Octree {
    /// Builds the tree over `points` (with per-point `densities`),
    /// splitting boxes holding more than `max_leaf_points` points.
    ///
    /// Refines level-synchronously on the `compat::par` pool; the
    /// result — node numbering, box ids, permutation, everything — is
    /// bitwise identical to [`Octree::build_sequential`] (see the
    /// module docs for the determinism argument).
    ///
    /// # Panics
    /// Panics if the inputs are empty or of mismatched length.
    pub fn build(points: &[[f64; 3]], densities: &[f64], max_leaf_points: usize) -> Self {
        assert!(!points.is_empty(), "empty point set");
        assert_eq!(points.len(), densities.len(), "one density per point");
        assert!(max_leaf_points >= 1, "Q must be at least 1");
        let n = points.len();
        let threads = par::num_threads();
        if threads <= 1 || n < PAR_BUILD_MIN_POINTS {
            return Self::build_sequential(points, densities, max_leaf_points);
        }

        let (root_center, width) = bounding_cube(points);
        let mut order: Vec<usize> = (0..n).collect();
        let mut scratch = vec![0usize; n];
        let order_ptr = par::SendPtr::new(order.as_mut_ptr());
        let scratch_ptr = par::SendPtr::new(scratch.as_mut_ptr());

        let mut bnodes = vec![BuildNode {
            id: BoxId::root(),
            parent: None,
            children: [None; 8],
            point_range: (0, n),
            center: root_center,
            half_width: width * 0.5,
        }];
        // Level-synchronous refinement over the frontier of oversized
        // boxes.  Each box owns a disjoint `order` range, so one level's
        // boxes bucket independently; large boxes parallelize *within*
        // the box instead.
        let mut frontier = vec![0usize];
        while !frontier.is_empty() {
            let mut split: Vec<usize> = Vec::new();
            for &b in &frontier {
                let (s, e) = bnodes[b].point_range;
                if e - s > max_leaf_points && bnodes[b].id.level < morton::MAX_LEVEL {
                    split.push(b);
                }
            }
            if split.is_empty() {
                break;
            }
            let mut counts = vec![[0usize; 8]; split.len()];
            let mut small: Vec<usize> = Vec::new();
            for (k, &b) in split.iter().enumerate() {
                let (s, e) = bnodes[b].point_range;
                if e - s >= PAR_BOX_MIN_POINTS {
                    counts[k] = bucket_range_par(
                        points,
                        order_ptr,
                        scratch_ptr,
                        s,
                        e,
                        bnodes[b].center,
                        threads,
                    );
                } else {
                    small.push(k);
                }
            }
            if !small.is_empty() {
                let jobs: Vec<(usize, usize, [f64; 3])> = small
                    .iter()
                    .map(|&k| {
                        let (s, e) = bnodes[split[k]].point_range;
                        (s, e, bnodes[split[k]].center)
                    })
                    .collect();
                let small_counts =
                    par::par_map_vec(jobs, &|(s, e, c): (usize, usize, [f64; 3])| {
                        bucket_range_seq(points, order_ptr, scratch_ptr, s, e, c)
                    });
                for (&k, c) in small.iter().zip(small_counts) {
                    counts[k] = c;
                }
            }
            // Child creation is sequential and cheap: a handful of
            // arithmetic per non-empty child, in (box, octant) order.
            let mut next = Vec::new();
            for (k, &b) in split.iter().enumerate() {
                let (start, end) = bnodes[b].point_range;
                let center = bnodes[b].center;
                let hw = bnodes[b].half_width;
                let parent_id = bnodes[b].id;
                let mut cursor = start;
                for o in 0..8 {
                    let cnt = counts[k][o];
                    if cnt == 0 {
                        continue;
                    }
                    let ci = bnodes.len();
                    bnodes.push(BuildNode {
                        id: parent_id.child(o),
                        parent: Some(b),
                        children: [None; 8],
                        point_range: (cursor, cursor + cnt),
                        center: child_center(center, hw, o),
                        half_width: hw * 0.5,
                    });
                    bnodes[b].children[o] = Some(ci);
                    next.push(ci);
                    cursor += cnt;
                }
                debug_assert_eq!(cursor, end);
            }
            frontier = next;
        }
        drop(scratch);

        // Renumber the BFS build order into the sequential builder's
        // DFS numbering: children receive consecutive indices in octant
        // order when their parent is popped, and are pushed in octant
        // order (so the deepest-last octant is refined first) — exactly
        // the explicit-stack walk of `build_sequential`.
        let m = bnodes.len();
        let mut new_of_build = vec![usize::MAX; m];
        let mut build_of_new = Vec::with_capacity(m);
        new_of_build[0] = 0;
        build_of_new.push(0usize);
        let mut stack = vec![0usize];
        while let Some(b) = stack.pop() {
            for o in 0..8 {
                if let Some(c) = bnodes[b].children[o] {
                    new_of_build[c] = build_of_new.len();
                    build_of_new.push(c);
                    stack.push(c);
                }
            }
        }
        let nodes: Vec<Node> = build_of_new
            .iter()
            .map(|&b| {
                let bn = &bnodes[b];
                Node {
                    id: bn.id,
                    parent: bn.parent.map(|p| new_of_build[p]),
                    children: std::array::from_fn(|o| bn.children[o].map(|c| new_of_build[c])),
                    point_range: bn.point_range,
                    center: bn.center,
                    half_width: bn.half_width,
                }
            })
            .collect();

        let permuted_points = par_gather(points, &order);
        let permuted_densities = par_gather(densities, &order);

        let mut index = HashMap::with_capacity(nodes.len());
        let mut levels: Vec<Vec<usize>> = Vec::new();
        for (i, node) in nodes.iter().enumerate() {
            index.insert(node.id, i);
            let l = node.id.level as usize;
            if levels.len() <= l {
                levels.resize(l + 1, Vec::new());
            }
            levels[l].push(i);
        }

        Octree {
            nodes,
            points: permuted_points,
            densities: permuted_densities,
            permutation: order,
            index,
            levels,
            max_leaf_points,
        }
    }

    /// The single-threaded reference builder ([`Octree::build`] must
    /// match it bit for bit — the determinism suite compares full
    /// structures across thread counts).
    ///
    /// # Panics
    /// Panics if the inputs are empty or of mismatched length.
    pub fn build_sequential(
        points: &[[f64; 3]],
        densities: &[f64],
        max_leaf_points: usize,
    ) -> Self {
        assert!(!points.is_empty(), "empty point set");
        assert_eq!(points.len(), densities.len(), "one density per point");
        assert!(max_leaf_points >= 1, "Q must be at least 1");

        let (root_center, width) = bounding_cube(points);

        let mut order: Vec<usize> = (0..points.len()).collect();
        let mut nodes = Vec::new();
        nodes.push(Node {
            id: BoxId::root(),
            parent: None,
            children: [None; 8],
            point_range: (0, points.len()),
            center: root_center,
            half_width: width * 0.5,
        });

        // Iterative refinement (explicit stack keeps children after
        // parents in `nodes`).
        let mut stack = vec![0usize];
        while let Some(ni) = stack.pop() {
            let (start, end) = nodes[ni].point_range;
            if end - start <= max_leaf_points || nodes[ni].id.level >= morton::MAX_LEVEL {
                continue;
            }
            let center = nodes[ni].center;
            let hw = nodes[ni].half_width;
            // Bucket the node's points by octant (stable three-way via
            // counting sort over 8 buckets).
            let mut buckets: [Vec<usize>; 8] = Default::default();
            for &pi in &order[start..end] {
                buckets[morton::point_octant(points[pi], center)].push(pi);
            }
            let mut cursor = start;
            let parent_id = nodes[ni].id;
            for (o, bucket) in buckets.iter().enumerate() {
                if bucket.is_empty() {
                    continue;
                }
                let child_start = cursor;
                for &pi in bucket {
                    order[cursor] = pi;
                    cursor += 1;
                }
                let child_id = parent_id.child(o);
                let child_index = nodes.len();
                nodes.push(Node {
                    id: child_id,
                    parent: Some(ni),
                    children: [None; 8],
                    point_range: (child_start, cursor),
                    center: child_center(center, hw, o),
                    half_width: hw * 0.5,
                });
                nodes[ni].children[o] = Some(child_index);
                stack.push(child_index);
            }
            debug_assert_eq!(cursor, end);
        }

        let permuted_points: Vec<[f64; 3]> = order.iter().map(|&i| points[i]).collect();
        let permuted_densities: Vec<f64> = order.iter().map(|&i| densities[i]).collect();

        let mut index = HashMap::with_capacity(nodes.len());
        let mut levels: Vec<Vec<usize>> = Vec::new();
        for (i, n) in nodes.iter().enumerate() {
            index.insert(n.id, i);
            let l = n.id.level as usize;
            if levels.len() <= l {
                levels.resize(l + 1, Vec::new());
            }
            levels[l].push(i);
        }

        Octree {
            nodes,
            points: permuted_points,
            densities: permuted_densities,
            permutation: order,
            index,
            levels,
            max_leaf_points,
        }
    }

    /// Node index of a box address, if the box exists.
    pub fn find(&self, id: &BoxId) -> Option<usize> {
        self.index.get(id).copied()
    }

    /// The deepest existing ancestor-or-self of a box address.
    pub fn find_or_ancestor(&self, id: &BoxId) -> Option<usize> {
        let mut cur = *id;
        loop {
            if let Some(i) = self.find(&cur) {
                return Some(i);
            }
            cur = cur.parent()?;
        }
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Depth of the tree (max level present).
    pub fn depth(&self) -> u8 {
        (self.levels.len() - 1) as u8
    }

    /// Indices of all leaf nodes.
    pub fn leaves(&self) -> Vec<usize> {
        (0..self.nodes.len()).filter(|&i| self.nodes[i].is_leaf()).collect()
    }

    /// The existing same-level neighbors (colleagues) of node `ni`,
    /// excluding itself.
    pub fn colleagues(&self, ni: usize) -> Vec<usize> {
        let id = self.nodes[ni].id;
        let max = 1i64 << id.level;
        let mut out = Vec::new();
        for dx in -1i64..=1 {
            for dy in -1i64..=1 {
                for dz in -1i64..=1 {
                    if dx == 0 && dy == 0 && dz == 0 {
                        continue;
                    }
                    let (nx, ny, nz) = (id.x as i64 + dx, id.y as i64 + dy, id.z as i64 + dz);
                    if nx < 0 || ny < 0 || nz < 0 || nx >= max || ny >= max || nz >= max {
                        continue;
                    }
                    let nid = BoxId { level: id.level, x: nx as u32, y: ny as u32, z: nz as u32 };
                    if let Some(i) = self.find(&nid) {
                        out.push(i);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compat::rng::StdRng;

    fn random_points(n: usize, seed: u64) -> Vec<[f64; 3]> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| [rng.random(), rng.random(), rng.random()]).collect()
    }

    fn build(n: usize, q: usize) -> Octree {
        let pts = random_points(n, 42);
        let den = vec![1.0; n];
        Octree::build(&pts, &den, q)
    }

    #[test]
    fn all_leaves_respect_q() {
        let t = build(2000, 50);
        for n in &t.nodes {
            if n.is_leaf() {
                assert!(n.num_points() <= 50, "leaf holds {}", n.num_points());
                assert!(n.num_points() > 0, "empty leaves are pruned");
            }
        }
    }

    #[test]
    fn leaves_partition_the_points() {
        let t = build(1234, 40);
        let mut covered = vec![false; 1234];
        for &li in &t.leaves() {
            let (s, e) = t.nodes[li].point_range;
            for i in s..e {
                assert!(!covered[i], "point {i} owned by two leaves");
                covered[i] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn permutation_is_a_bijection_and_consistent() {
        let pts = random_points(500, 7);
        let den: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let t = Octree::build(&pts, &den, 30);
        let mut seen = vec![false; 500];
        for (i, &orig) in t.permutation.iter().enumerate() {
            assert!(!seen[orig]);
            seen[orig] = true;
            assert_eq!(t.points[i], pts[orig]);
            assert_eq!(t.densities[i], den[orig]);
        }
    }

    #[test]
    fn children_follow_parents() {
        let t = build(3000, 60);
        for (i, n) in t.nodes.iter().enumerate() {
            if let Some(p) = n.parent {
                assert!(p < i, "top-down scan order");
                assert!(t.nodes[p].id.contains(&n.id));
            }
        }
    }

    #[test]
    fn points_lie_inside_their_boxes() {
        let t = build(800, 25);
        for n in &t.nodes {
            let (s, e) = n.point_range;
            for p in &t.points[s..e] {
                for d in 0..3 {
                    assert!(
                        (p[d] - n.center[d]).abs() <= n.half_width * (1.0 + 1e-9),
                        "point escapes box"
                    );
                }
            }
        }
    }

    #[test]
    fn uniform_points_build_nearly_uniform_tree() {
        let t = build(4096, 64);
        // 4096/64 = 64 boxes minimum; uniform points should reach level 2–3.
        assert!(t.depth() >= 2);
        assert!(t.num_leaves() >= 64);
    }

    #[test]
    fn single_box_when_q_large() {
        let t = build(100, 1000);
        assert_eq!(t.nodes.len(), 1);
        assert!(t.nodes[0].is_leaf());
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn adjacency_same_level() {
        let a = BoxId { level: 2, x: 1, y: 1, z: 1 };
        assert!(a.adjacent(&BoxId { level: 2, x: 2, y: 2, z: 2 }), "corner touch");
        assert!(a.adjacent(&a), "self-adjacent");
        assert!(!a.adjacent(&BoxId { level: 2, x: 3, y: 1, z: 1 }), "gap of one box");
    }

    #[test]
    fn adjacency_across_levels() {
        let coarse = BoxId { level: 1, x: 0, y: 0, z: 0 };
        let fine_inside = BoxId { level: 3, x: 1, y: 2, z: 3 };
        assert!(coarse.adjacent(&fine_inside), "containment counts as touching");
        let fine_touching = BoxId { level: 3, x: 4, y: 0, z: 0 };
        assert!(coarse.adjacent(&fine_touching));
        let fine_far = BoxId { level: 3, x: 6, y: 0, z: 0 };
        assert!(!coarse.adjacent(&fine_far));
    }

    #[test]
    fn find_or_ancestor_walks_up() {
        let t = build(100, 30);
        let deep = BoxId { level: 9, x: 100, y: 200, z: 300 };
        let found = t.find_or_ancestor(&deep).unwrap();
        assert!(t.nodes[found].id.contains(&deep));
    }

    #[test]
    fn colleagues_are_adjacent_same_level() {
        let t = build(5000, 40);
        for &ni in &t.levels[t.depth() as usize - 1] {
            for c in t.colleagues(ni) {
                assert_eq!(t.nodes[c].id.level, t.nodes[ni].id.level);
                assert!(t.nodes[c].id.adjacent(&t.nodes[ni].id));
                assert_ne!(c, ni);
            }
        }
    }

    #[test]
    fn clustered_points_build_deep_adaptive_tree() {
        // Two tight clusters force deep refinement locally.
        let mut pts = Vec::new();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..500 {
            pts.push([
                0.1 + rng.random::<f64>() * 1e-3,
                0.1 + rng.random::<f64>() * 1e-3,
                0.1 + rng.random::<f64>() * 1e-3,
            ]);
        }
        for _ in 0..500 {
            pts.push([rng.random(), rng.random(), rng.random()]);
        }
        let t = Octree::build(&pts, &vec![1.0; 1000], 32);
        assert!(t.depth() >= 5, "clusters force depth, got {}", t.depth());
    }

    #[test]
    #[should_panic(expected = "empty point set")]
    fn empty_input_rejected() {
        let _ = Octree::build(&[], &[], 10);
    }

    fn assert_trees_identical(a: &Octree, b: &Octree, what: &str) {
        assert_eq!(a.nodes.len(), b.nodes.len(), "{what}: node count");
        for (i, (na, nb)) in a.nodes.iter().zip(&b.nodes).enumerate() {
            assert_eq!(na.id, nb.id, "{what}: node {i} id");
            assert_eq!(na.parent, nb.parent, "{what}: node {i} parent");
            assert_eq!(na.children, nb.children, "{what}: node {i} children");
            assert_eq!(na.point_range, nb.point_range, "{what}: node {i} range");
            for d in 0..3 {
                assert_eq!(
                    na.center[d].to_bits(),
                    nb.center[d].to_bits(),
                    "{what}: node {i} center[{d}]"
                );
            }
            assert_eq!(na.half_width.to_bits(), nb.half_width.to_bits(), "{what}: node {i} hw");
        }
        assert_eq!(a.permutation, b.permutation, "{what}: permutation");
        assert_eq!(a.levels, b.levels, "{what}: levels");
        for (pa, pb) in a.points.iter().zip(&b.points) {
            for d in 0..3 {
                assert_eq!(pa[d].to_bits(), pb[d].to_bits(), "{what}: permuted point");
            }
        }
        for (da, db) in a.densities.iter().zip(&b.densities) {
            assert_eq!(da.to_bits(), db.to_bits(), "{what}: permuted density");
        }
    }

    #[test]
    fn parallel_build_is_bitwise_identical_to_sequential() {
        // Uniform (hits the across-box batch path), big-Q (hits the
        // within-box parallel sort on the root), and clustered (deep
        // adaptive refinement, mixed paths + MAX_LEVEL guard).
        let uniform = random_points(3000, 11);
        let mut clustered = random_points(600, 12);
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..1400 {
            clustered.push([
                0.25 + rng.random::<f64>() * 1e-4,
                0.5 + rng.random::<f64>() * 1e-4,
                0.75 + rng.random::<f64>() * 1e-4,
            ]);
        }
        for (pts, q, what) in [
            (&uniform, 32usize, "uniform"),
            (&uniform, 2000, "big-q"),
            (&clustered, 16, "clustered"),
        ] {
            let den: Vec<f64> = (0..pts.len()).map(|i| i as f64 * 0.5 - 1.0).collect();
            let seq = Octree::build_sequential(pts, &den, q);
            for threads in [1usize, 2, 3, 4, 8] {
                compat::par::set_thread_count(Some(threads));
                let par_tree = Octree::build(pts, &den, q);
                assert_trees_identical(&par_tree, &seq, &format!("{what}@{threads}"));
            }
            compat::par::set_thread_count(None);
        }
    }
}
