//! The U, V, W and X interaction lists (Ying, Biros & Zorin 2004).
//!
//! For each box `B` of the adaptive tree:
//!
//! * **U(B)** (leaves only): `B` itself plus every leaf adjacent to `B`,
//!   at any level.  Handled by direct P2P evaluation.
//! * **V(B)**: children of `B`'s parent's colleagues that are not
//!   adjacent to `B` — the classic 189-box far interaction list at `B`'s
//!   own level.  Handled by M2L translations.
//! * **W(B)** (leaves only): descendants `C` of `B`'s colleagues with
//!   `C` not adjacent to `B` but `parent(C)` adjacent to `B`; `C`'s
//!   multipole is evaluated directly at `B`'s points.
//! * **X(B)**: the dual of W — leaves `C` with `B ∈ W(C)`; `C`'s source
//!   points are evaluated onto `B`'s downward-check surface.

use crate::tree::Octree;
use compat::par;

/// The four interaction lists for every node of a tree.
#[derive(Debug, Clone)]
pub struct InteractionLists {
    /// U list per node (empty for internal nodes).  Includes the node
    /// itself.
    pub u: Vec<Vec<usize>>,
    /// V list per node.
    pub v: Vec<Vec<usize>>,
    /// W list per node (empty for internal nodes).
    pub w: Vec<Vec<usize>>,
    /// X list per node.
    pub x: Vec<Vec<usize>>,
}

impl InteractionLists {
    /// Builds all four lists for `tree`.
    ///
    /// The per-node U/V/W lists are independent read-only functions of
    /// the tree, so they are computed in parallel with
    /// [`par::par_map_vec`], which preserves node order — the result is
    /// identical to the sequential loop.  The X list is the dual of W
    /// and is filled by a cheap sequential pass afterwards (its entries
    /// must appear in ascending leaf order, which the serial scan
    /// guarantees).
    pub fn build(tree: &Octree) -> Self {
        let n = tree.nodes.len();

        let per_node = |ni: usize| -> (Vec<usize>, Vec<usize>, Vec<usize>) {
            let node = &tree.nodes[ni];
            let mut u = Vec::new();
            let mut v = Vec::new();
            let mut w = Vec::new();
            // --- V list: children of parent's colleagues, not adjacent.
            if let Some(pi) = node.parent {
                for ci in tree.colleagues(pi) {
                    for child in tree.nodes[ci].children.iter().flatten() {
                        if !tree.nodes[*child].id.adjacent(&node.id) {
                            v.push(*child);
                        }
                    }
                }
            }

            if node.is_leaf() {
                // --- U list: all adjacent leaves (any level), plus self.
                u = adjacent_leaves(tree, ni);
                u.push(ni);
                u.sort_unstable();
                u.dedup();

                // --- W list: colleague descendants whose parent touches B
                // but which do not themselves.
                for ci in tree.colleagues(ni) {
                    collect_w(tree, ni, ci, &mut w);
                }
            }
            (u, v, w)
        };

        let triples = par::par_map_vec((0..n).collect(), &per_node);
        let mut u = Vec::with_capacity(n);
        let mut v = Vec::with_capacity(n);
        let mut w = Vec::with_capacity(n);
        for (ul, vl, wl) in triples {
            u.push(ul);
            v.push(vl);
            w.push(wl);
        }

        // --- X list: dual of W.
        let mut x = vec![Vec::new(); n];
        for (leaf, wlist) in w.iter().enumerate() {
            for &c in wlist {
                x[c].push(leaf);
            }
        }

        InteractionLists { u, v, w, x }
    }

    /// Total number of (target, source) pairs in the U lists.
    pub fn u_pair_count(&self) -> usize {
        self.u.iter().map(|l| l.len()).sum()
    }

    /// Total number of V translations.
    pub fn v_pair_count(&self) -> usize {
        self.v.iter().map(|l| l.len()).sum()
    }
}

/// All leaves adjacent to leaf `ni` (excluding `ni` itself).
fn adjacent_leaves(tree: &Octree, ni: usize) -> Vec<usize> {
    let id = tree.nodes[ni].id;
    let mut out = Vec::new();
    // Seed with the existing boxes covering the 26 same-level neighbor
    // cells (or their deepest existing ancestors for coarser regions).
    let max = 1i64 << id.level;
    let mut seeds = Vec::new();
    for dx in -1i64..=1 {
        for dy in -1i64..=1 {
            for dz in -1i64..=1 {
                if dx == 0 && dy == 0 && dz == 0 {
                    continue;
                }
                let (nx, ny, nz) = (id.x as i64 + dx, id.y as i64 + dy, id.z as i64 + dz);
                if nx < 0 || ny < 0 || nz < 0 || nx >= max || ny >= max || nz >= max {
                    continue;
                }
                let nid = crate::tree::BoxId {
                    level: id.level,
                    x: nx as u32,
                    y: ny as u32,
                    z: nz as u32,
                };
                if let Some(i) = tree.find_or_ancestor(&nid) {
                    seeds.push(i);
                }
            }
        }
    }
    seeds.sort_unstable();
    seeds.dedup();
    // Expand each seed to its adjacent descendant leaves.
    for seed in seeds {
        collect_adjacent_leaves(tree, ni, seed, &mut out);
    }
    out
}

/// Recursively collects leaves under `cand` that are adjacent to `target`.
fn collect_adjacent_leaves(tree: &Octree, target: usize, cand: usize, out: &mut Vec<usize>) {
    if cand == target || !tree.nodes[cand].id.adjacent(&tree.nodes[target].id) {
        return;
    }
    if tree.nodes[cand].is_leaf() {
        out.push(cand);
        return;
    }
    for child in tree.nodes[cand].children.iter().flatten() {
        collect_adjacent_leaves(tree, target, *child, out);
    }
}

/// Recursively collects W-list members for leaf `target` under the
/// adjacent box `cand` (initially a colleague of `target`).
fn collect_w(tree: &Octree, target: usize, cand: usize, out: &mut Vec<usize>) {
    // Invariant: `cand` is adjacent to `target`.
    for child in tree.nodes[cand].children.iter().flatten() {
        if tree.nodes[*child].id.adjacent(&tree.nodes[target].id) {
            // Still adjacent: if it's a leaf it belongs to U; otherwise
            // keep descending.
            if !tree.nodes[*child].is_leaf() {
                collect_w(tree, target, *child, out);
            }
        } else {
            // Parent adjacent, child not: W member (leaf or not).
            out.push(*child);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Octree;
    use compat::rng::StdRng;

    fn uniform_tree(n: usize, q: usize, seed: u64) -> Octree {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts: Vec<[f64; 3]> =
            (0..n).map(|_| [rng.random(), rng.random(), rng.random()]).collect();
        Octree::build(&pts, &vec![1.0; n], q)
    }

    fn clustered_tree(seed: u64) -> Octree {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pts = Vec::new();
        for _ in 0..600 {
            pts.push([
                0.2 + rng.random::<f64>() * 0.01,
                0.3 + rng.random::<f64>() * 0.01,
                0.4 + rng.random::<f64>() * 0.01,
            ]);
        }
        for _ in 0..400 {
            pts.push([rng.random(), rng.random(), rng.random()]);
        }
        Octree::build(&pts, &vec![1.0; 1000], 24)
    }

    #[test]
    fn u_lists_contain_self_and_only_leaves() {
        let t = uniform_tree(2000, 50, 1);
        let lists = InteractionLists::build(&t);
        for (ni, node) in t.nodes.iter().enumerate() {
            if node.is_leaf() {
                assert!(lists.u[ni].contains(&ni), "U contains self");
                for &a in &lists.u[ni] {
                    assert!(t.nodes[a].is_leaf());
                    assert!(t.nodes[a].id.adjacent(&node.id));
                }
            } else {
                assert!(lists.u[ni].is_empty());
                assert!(lists.w[ni].is_empty());
            }
        }
    }

    #[test]
    fn u_is_symmetric() {
        let t = clustered_tree(5);
        let lists = InteractionLists::build(&t);
        for (ni, ul) in lists.u.iter().enumerate() {
            for &a in ul {
                assert!(lists.u[a].contains(&ni), "U symmetry broken between {ni} and {a}");
            }
        }
    }

    #[test]
    fn v_members_are_same_level_and_well_separated() {
        let t = uniform_tree(4000, 40, 2);
        let lists = InteractionLists::build(&t);
        for (ni, vl) in lists.v.iter().enumerate() {
            let id = t.nodes[ni].id;
            for &s in vl {
                let sid = t.nodes[s].id;
                assert_eq!(sid.level, id.level, "V is a same-level list");
                assert!(!sid.adjacent(&id), "V members are not adjacent");
                // But their parents are adjacent.
                assert!(sid.parent().unwrap().adjacent(&id.parent().unwrap()));
            }
        }
    }

    #[test]
    fn v_list_bounded_by_189_for_uniform_trees() {
        let t = uniform_tree(8000, 30, 3);
        let lists = InteractionLists::build(&t);
        for vl in &lists.v {
            assert!(vl.len() <= 189, "uniform V list size {} exceeds 189", vl.len());
        }
        // And some boxes deep in the tree should have sizable V lists.
        let max_v = lists.v.iter().map(|l| l.len()).max().unwrap();
        assert!(max_v > 100, "max V size {max_v}");
    }

    #[test]
    fn w_members_parent_adjacent_self_not() {
        let t = clustered_tree(7);
        let lists = InteractionLists::build(&t);
        for (ni, wl) in lists.w.iter().enumerate() {
            let id = t.nodes[ni].id;
            for &c in wl {
                let cid = t.nodes[c].id;
                assert!(cid.level > id.level, "W members are finer than B");
                assert!(!cid.adjacent(&id), "W member must not touch B");
                let parent = t.nodes[t.nodes[c].parent.unwrap()].id;
                assert!(parent.adjacent(&id), "W member's parent touches B");
            }
        }
    }

    #[test]
    fn x_is_dual_of_w() {
        let t = clustered_tree(9);
        let lists = InteractionLists::build(&t);
        for (b, wl) in lists.w.iter().enumerate() {
            for &c in wl {
                assert!(lists.x[c].contains(&b), "X({c}) misses {b}");
            }
        }
        // Conversely every X entry has a matching W entry.
        for (b, xl) in lists.x.iter().enumerate() {
            for &c in xl {
                assert!(lists.w[c].contains(&b));
            }
        }
    }

    #[test]
    fn uniform_tree_has_empty_w_and_x() {
        // A perfectly level-balanced tree has no level mismatches along
        // adjacency boundaries, hence empty W/X lists.
        let t = uniform_tree(4096, 8, 11);
        // Check uniformity first (all leaves same level); if the sample
        // isn't uniform enough, skip the empty-W assertion.
        let leaf_levels: Vec<u8> = t.leaves().iter().map(|&l| t.nodes[l].id.level).collect();
        let uniform = leaf_levels.iter().all(|&l| l == leaf_levels[0]);
        let lists = InteractionLists::build(&t);
        if uniform {
            assert!(lists.w.iter().all(|l| l.is_empty()));
            assert!(lists.x.iter().all(|l| l.is_empty()));
        }
        let _ = lists;
    }

    #[test]
    fn clustered_tree_has_nonempty_w_and_x() {
        let t = clustered_tree(13);
        let lists = InteractionLists::build(&t);
        let w_total: usize = lists.w.iter().map(|l| l.len()).sum();
        assert!(w_total > 0, "adaptive tree must produce W entries");
        assert_eq!(w_total, lists.x.iter().map(|l| l.len()).sum::<usize>());
    }

    #[test]
    fn lists_are_identical_across_thread_counts_and_tree_builders() {
        // The parallel list builder must reproduce the sequential result
        // exactly — same entries, same order — for any worker count, and
        // for trees built by either the sequential or the parallel
        // builder (which are themselves bitwise-identical).
        let mut rng = StdRng::seed_from_u64(23);
        let n = 3000;
        let pts: Vec<[f64; 3]> =
            (0..n).map(|_| [rng.random(), rng.random(), rng.random()]).collect();
        let dens = vec![1.0; n];

        compat::par::set_thread_count(Some(1));
        let t_seq = Octree::build_sequential(&pts, &dens, 32);
        let reference = InteractionLists::build(&t_seq);
        for threads in [1usize, 2, 4, 8] {
            compat::par::set_thread_count(Some(threads));
            for tree in [Octree::build_sequential(&pts, &dens, 32), Octree::build(&pts, &dens, 32)]
            {
                let got = InteractionLists::build(&tree);
                assert_eq!(got.u, reference.u, "U lists differ at {threads} threads");
                assert_eq!(got.v, reference.v, "V lists differ at {threads} threads");
                assert_eq!(got.w, reference.w, "W lists differ at {threads} threads");
                assert_eq!(got.x, reference.x, "X lists differ at {threads} threads");
            }
        }
        compat::par::set_thread_count(None);
    }

    #[test]
    fn every_pair_is_covered_exactly_once() {
        // Fundamental FMM correctness invariant: for any target leaf T
        // and source leaf S, the (T, S) interaction is accounted for by
        // exactly one mechanism: U (direct), or an (ancestor(T),
        // ancestor(S)) V translation, or W/X, never several.
        let t = clustered_tree(17);
        let lists = InteractionLists::build(&t);
        let leaves = t.leaves();
        let ancestors = |mut i: usize| {
            let mut chain = vec![i];
            while let Some(p) = t.nodes[i].parent {
                chain.push(p);
                i = p;
            }
            chain
        };
        for &target in leaves.iter().step_by(7) {
            for &source in leaves.iter().step_by(5) {
                let t_anc = ancestors(target);
                let s_anc = ancestors(source);
                let mut coverage = 0;
                // U: direct.
                if lists.u[target].contains(&source) {
                    coverage += 1;
                }
                // V: some ancestor pair (a, b) with b in V(a).
                for &a in &t_anc {
                    for &b in &s_anc {
                        if lists.v[a].contains(&b) {
                            coverage += 1;
                        }
                    }
                }
                // W: source's ancestor-or-self in W(target).
                for &b in &s_anc {
                    if lists.w[target].contains(&b) {
                        coverage += 1;
                    }
                }
                // X: target's ancestor-or-self has source leaf in X list.
                for &a in &t_anc {
                    if lists.x[a].contains(&source) {
                        coverage += 1;
                    }
                }
                assert_eq!(
                    coverage, 1,
                    "pair (leaf {target}, leaf {source}) covered {coverage} times"
                );
            }
        }
    }
}
