//! The six-phase FMM evaluation engine.
//!
//! Phases run in the paper's order — UP (P2M + M2M), V (M2L), U (P2P),
//! W, X, DOWN (L2L + L2P) — with pooled data parallelism (see
//! [`compat::par`]) inside each phase: over same-level boxes for the
//! tree passes and over leaves for the list passes.
//!
//! # Execution engine
//!
//! The engine is allocation-free in steady state:
//!
//! * **Flat arenas.** Per-node expansion data (`up_equiv`,
//!   `down_check`, `down_equiv`) lives in three contiguous `Vec<f64>`
//!   arenas indexed by `node * ns` rather than per-node boxed vectors.
//!   Phases write straight into their disjoint arena slices through
//!   [`SendPtr`] — no collect-then-scatter round trips.
//! * **Per-chunk scratch.** Each parallel worker chunk carries reusable
//!   scratch buffers ([`compat::par::par_for_each_chunked_init`]):
//!   scaled surface points, check potentials, FFT grids and SoA staging
//!   are allocated once per chunk, not once per node.
//! * **Chunk affinity.** Every phase fans out over a persistent
//!   [`PhaseSchedule`] partition (cached in the plan, keyed by thread
//!   count) instead of re-splitting per call: chunk `k` of each phase
//!   covers the same slab of the permuted point/arena space, so the
//!   worker that warmed a subtree's multipoles in UP tends to run that
//!   subtree's V, DOWN and NEAR work too (see [`crate::schedule`]).
//! * **Surface templates.** The unit surface lattice is computed once
//!   per `(p, radius)` ([`SurfaceTemplate`]) and scaled per box with a
//!   streaming multiply-add.
//! * **SoA near field.** The permuted tree points are mirrored once
//!   into a structure-of-arrays ([`SoaSources`]) inside the plan; the
//!   U list, P2M and X source loops read per-box
//!   [`crate::p2p_opt::SoaView`] ranges and
//!   run the kernel's vectorized [`Kernel::p2p_soa`] /
//!   [`Kernel::p2p_grad_soa`] fast paths.
//!
//! Writes are race-free by construction: each parallel task owns a
//! disjoint target (its box's arena slice or its leaf's scattered
//! potential slots), and all reads are to data finalized in an earlier
//! level or phase.
//!
//! # Determinism
//!
//! Results are bitwise identical across thread counts and repeated
//! evaluations: every per-node value is a pure function of inputs
//! finalized before its phase, inner accumulation loops run in fixed
//! list order, and the V-phase two-for-one FFT pairing is by fixed
//! source index — never by chunk boundary.  `evaluate` and
//! [`FmmEvaluator::evaluate_with_gradient`] share the same potential
//! arithmetic, so their potentials are bitwise equal too.

use crate::fft_m2l::FftM2l;
use crate::kernel::{Kernel, LaplaceKernel};
use crate::lists::InteractionLists;
use crate::operators::OperatorCache;
use crate::p2p_opt::SoaSources;
use crate::schedule::PhaseSchedule;
use crate::surface::{surface_point_count, SurfaceTemplate, RADIUS_INNER, RADIUS_OUTER};
use crate::tree::Octree;
use compat::par::{self, par_for_each_chunked_init, SendPtr};
use compat::sync::RwLock;
use dvfs_fft::Complex;
use std::sync::Arc;
use std::time::Instant;

/// A coarse engine phase, as seen by a [`PhaseObserver`].
///
/// These are the five *execution* sections of the engine, not the six
/// instrumentation phases of [`crate::Phase`]: the leaf pass fuses L2P,
/// the W list and the U list into one sweep, so they surface here as a
/// single [`EnginePhase::Near`] boundary (the same fusion
/// [`PhaseTimings::near_s`] reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnginePhase {
    /// P2M at leaves + M2M up the tree.
    Up,
    /// M2L (FFT or dense) into the downward-check arena.
    V,
    /// Source points onto downward-check surfaces.
    X,
    /// L2L top-down.
    Down,
    /// Fused leaf pass: L2P + W + U.
    Near,
}

impl EnginePhase {
    /// The phases in execution order.
    pub const ALL: [EnginePhase; 5] =
        [EnginePhase::Up, EnginePhase::V, EnginePhase::X, EnginePhase::Down, EnginePhase::Near];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            EnginePhase::Up => "UP",
            EnginePhase::V => "V",
            EnginePhase::X => "X",
            EnginePhase::Down => "DOWN",
            EnginePhase::Near => "NEAR",
        }
    }
}

/// Phase-boundary hook for [`FmmEvaluator::evaluate_observed`].
///
/// The engine calls `on_phase_start` immediately before entering each
/// [`EnginePhase`] and `on_phase_end` (with the phase's wall-clock
/// seconds) immediately after — this is the seam an online DVFS governor
/// latches per-phase operating points through (see `dvfs-governor`).
/// The observer runs on the calling thread, strictly between phases;
/// it cannot perturb the numerics, so observed evaluations return
/// bitwise-identical potentials to unobserved ones.
pub trait PhaseObserver {
    /// Called before the phase's first parallel region starts.
    fn on_phase_start(&mut self, phase: EnginePhase);
    /// Called after the phase's last write, with its wall-clock time.
    fn on_phase_end(&mut self, phase: EnginePhase, elapsed_s: f64);
}

pub(crate) fn phase_start(obs: &mut Option<&mut dyn PhaseObserver>, phase: EnginePhase) {
    if let Some(o) = obs.as_deref_mut() {
        o.on_phase_start(phase);
    }
}

pub(crate) fn phase_end(
    obs: &mut Option<&mut dyn PhaseObserver>,
    phase: EnginePhase,
    elapsed_s: f64,
) {
    if let Some(o) = obs.as_deref_mut() {
        o.on_phase_end(phase, elapsed_s);
    }
}

/// How the V-list translations are evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum M2lMethod {
    /// Dense per-offset operator matrices.
    Dense,
    /// FFT convolution (the paper's configuration).
    Fft,
}

/// Wall-clock seconds spent in each evaluation phase.
///
/// `near_s` covers the fused leaf pass — L2P, the W list and the U list
/// all stream over each leaf's targets in one sweep, so they share one
/// timer.  The phases sum to slightly less than `total_s` (arena
/// allocation and the output scatter are outside the phase timers).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// UP: P2M at leaves + M2M up the tree.
    pub up_s: f64,
    /// V: M2L (FFT or dense) into the downward-check arena.
    pub v_s: f64,
    /// X: source points onto downward-check surfaces.
    pub x_s: f64,
    /// DOWN: L2L top-down.
    pub down_s: f64,
    /// Fused leaf pass: L2P + W + U (+ gradient twins when requested).
    pub near_s: f64,
    /// Whole evaluation, including arena setup and the output scatter.
    pub total_s: f64,
}

/// An execution plan: tree, lists, and precomputed operators.
///
/// Generic over the interaction kernel — the "kernel independence" of
/// the KIFMM is literal here: any [`Kernel`] implementation gets the
/// same tree, lists, operators and FFT machinery.
///
/// ```
/// use kifmm::evaluator::{FmmPlan, M2lMethod};
/// use kifmm::{direct_sum, relative_l2_error, FmmEvaluator};
/// use kifmm::distributions::uniform_cube;
///
/// let points = uniform_cube(400, 7);
/// let densities = vec![1.0; 400];
/// let plan = FmmPlan::new(&points, &densities, 32, 4, M2lMethod::Fft);
/// let potentials = FmmEvaluator::new().evaluate(&plan);
/// let reference = direct_sum(&points, &densities);
/// assert!(relative_l2_error(&potentials, &reference) < 1e-2);
/// ```
pub struct FmmPlan<K: Kernel = LaplaceKernel> {
    /// The interaction kernel.
    pub kernel: K,
    /// The octree.
    pub tree: Octree,
    /// The U/V/W/X lists.
    pub lists: InteractionLists,
    /// Dense translation operators.
    pub ops: OperatorCache,
    /// FFT M2L state (present when `method == Fft`).
    pub fft: Option<FftM2l>,
    /// Surface order.
    pub p: usize,
    /// V-list evaluation method.
    pub method: M2lMethod,
    /// The tree's permuted points + densities in SoA layout; each box's
    /// sources are the contiguous range `soa.range(s, e)` of its
    /// `point_range`.
    pub soa: SoaSources,
    /// Unit surface template at [`RADIUS_INNER`].
    pub tpl_inner: SurfaceTemplate,
    /// Unit surface template at [`RADIUS_OUTER`].
    pub tpl_outer: SurfaceTemplate,
    /// Cached chunk-affinity [`PhaseSchedule`], keyed by the thread
    /// count it was partitioned for (see [`FmmPlan::schedule`]).
    schedule: RwLock<Option<Arc<PhaseSchedule>>>,
}

impl FmmPlan<LaplaceKernel> {
    /// Builds a plan for `points`/`densities` with at most `q` points per
    /// leaf and surface order `p` (must be a power of two for the FFT
    /// method), using the single-layer Laplace kernel.
    pub fn new(
        points: &[[f64; 3]],
        densities: &[f64],
        q: usize,
        p: usize,
        method: M2lMethod,
    ) -> Self {
        FmmPlan::with_kernel(LaplaceKernel, points, densities, q, p, method)
    }
}

impl<K: Kernel> FmmPlan<K> {
    /// Builds a plan for an arbitrary interaction kernel.
    pub fn with_kernel(
        kernel: K,
        points: &[[f64; 3]],
        densities: &[f64],
        q: usize,
        p: usize,
        method: M2lMethod,
    ) -> Self {
        let tree = Octree::build(points, densities, q);
        let lists = InteractionLists::build(&tree);
        // The dense M2L matrices are only built for the dense method; the
        // FFT method precomputes kernel spectra instead.
        let ops = OperatorCache::build_for_method(&kernel, &tree, p, method == M2lMethod::Dense);
        let fft = match method {
            M2lMethod::Fft => Some(FftM2l::build(&kernel, &tree, p)),
            M2lMethod::Dense => None,
        };
        let soa = SoaSources::from_points(&tree.points, &tree.densities);
        let tpl_inner = SurfaceTemplate::new(p, RADIUS_INNER);
        let tpl_outer = SurfaceTemplate::new(p, RADIUS_OUTER);
        FmmPlan {
            kernel,
            tree,
            lists,
            ops,
            fft,
            p,
            method,
            soa,
            tpl_inner,
            tpl_outer,
            schedule: RwLock::new(None),
        }
    }

    /// Surface points per box.
    pub fn ns(&self) -> usize {
        surface_point_count(self.p)
    }

    /// The chunk-affinity schedule for the current thread count.
    ///
    /// Built lazily on first use and cached in the plan; a thread-count
    /// change (via [`par::set_thread_count`] or `FMM_ENERGY_THREADS`)
    /// transparently rebuilds it.  The partition never affects results
    /// (see [`crate::schedule`]), only which worker touches which slab.
    pub fn schedule(&self) -> Arc<PhaseSchedule> {
        let threads = par::num_threads();
        if let Some(cached) = self.schedule.read().as_ref() {
            if cached.threads == threads {
                return Arc::clone(cached);
            }
        }
        let built = Arc::new(PhaseSchedule::build(&self.tree, &self.lists, threads));
        *self.schedule.write() = Some(Arc::clone(&built));
        built
    }
}

/// Per-chunk scratch for the upward pass.
struct UpScratch {
    surf: Vec<[f64; 3]>,
    check: Vec<f64>,
}

/// Per-chunk scratch for the fused leaf pass.
struct LeafScratch {
    surf: Vec<[f64; 3]>,
    soa: SoaSources,
    pot: Vec<f64>,
    grad: Vec<[f64; 3]>,
}

/// The evaluator.  Stateless; the kernel lives in the plan.
#[derive(Debug, Default)]
pub struct FmmEvaluator;

impl FmmEvaluator {
    /// Creates an evaluator.
    pub fn new() -> Self {
        FmmEvaluator
    }

    /// Computes all `N` potentials, returned in the ORIGINAL point order.
    pub fn evaluate<K: Kernel>(&self, plan: &FmmPlan<K>) -> Vec<f64> {
        self.evaluate_impl(plan, false, None).0
    }

    /// Like [`FmmEvaluator::evaluate`], additionally reporting wall-clock
    /// time per phase — the measurement hook the phase benchmarks and
    /// `scripts/bench_snapshot.sh` build on.
    pub fn evaluate_timed<K: Kernel>(&self, plan: &FmmPlan<K>) -> (Vec<f64>, PhaseTimings) {
        let (pot, _, timings) = self.evaluate_impl(plan, false, None);
        (pot, timings)
    }

    /// Like [`FmmEvaluator::evaluate_timed`], invoking `observer` at every
    /// phase boundary (see [`PhaseObserver`]).  Potentials are bitwise
    /// identical to the unobserved paths.
    pub fn evaluate_observed<K: Kernel>(
        &self,
        plan: &FmmPlan<K>,
        observer: &mut dyn PhaseObserver,
    ) -> (Vec<f64>, PhaseTimings) {
        let (pot, _, timings) = self.evaluate_impl(plan, false, Some(observer));
        (pot, timings)
    }

    /// Computes potentials *and* their gradients `∇f(x_i)` (for the
    /// Laplace kernel, `−∇f` is the field — the force per unit charge),
    /// both in the ORIGINAL point order.
    ///
    /// The far field is differentiated through its single-layer
    /// representation: at the leaf stages (L2P, W, U) the gradient kernel
    /// is applied against the same equivalent densities and sources the
    /// potential uses, so force accuracy matches potential accuracy up to
    /// one derivative order.
    pub fn evaluate_with_gradient<K: Kernel>(
        &self,
        plan: &FmmPlan<K>,
    ) -> (Vec<f64>, Vec<[f64; 3]>) {
        let (pot, grad, _) = self.evaluate_impl(plan, true, None);
        (pot, grad.expect("gradient requested"))
    }

    fn evaluate_impl<K: Kernel>(
        &self,
        plan: &FmmPlan<K>,
        with_grad: bool,
        mut obs: Option<&mut dyn PhaseObserver>,
    ) -> (Vec<f64>, Option<Vec<[f64; 3]>>, PhaseTimings) {
        let tree = &plan.tree;
        let ns = plan.ns();
        let n_nodes = tree.nodes.len();
        // One fixed target→chunk partition shared by every phase: chunk
        // `k` covers the same slab of the permuted point/arena space in
        // UP, V, X, DOWN and NEAR, so a worker re-touches memory it
        // warmed in the previous phase (see [`crate::schedule`]).
        let sched = plan.schedule();
        let mut timings = PhaseTimings::default();
        let t_total = Instant::now();

        // ---- UP: P2M at leaves, M2M bottom-up. ----------------------
        phase_start(&mut obs, EnginePhase::Up);
        let t = Instant::now();
        let mut up_equiv = vec![0.0f64; n_nodes * ns];
        {
            let base = SendPtr::new(up_equiv.as_mut_ptr());
            for level in (0..tree.levels.len()).rev() {
                par_for_each_chunked_init(
                    &sched.level_chunks[level],
                    || UpScratch { surf: Vec::new(), check: vec![0.0; ns] },
                    |scr, ni| {
                        let node = &tree.nodes[ni];
                        // SAFETY: each task writes only its own node's
                        // slice; child reads touch slices finalized in
                        // the previous (deeper) level iteration.
                        let slot = unsafe { base.slice_mut(ni * ns, ns) };
                        if node.is_leaf() {
                            plan.tpl_outer.scale_into(node.center, node.half_width, &mut scr.surf);
                            scr.check.fill(0.0);
                            let (s, e) = node.point_range;
                            plan.kernel.p2p_soa(&scr.surf, plan.soa.range(s, e), &mut scr.check);
                            plan.ops.uc2e(node.id.level).matvec_into(&scr.check, slot);
                        } else {
                            slot.fill(0.0);
                            for child in node.children.iter().flatten() {
                                let cnode = &tree.nodes[*child];
                                let cequiv = unsafe { base.slice(*child * ns, ns) };
                                plan.ops
                                    .m2m(cnode.id.level, cnode.id.octant())
                                    .matvec_acc(cequiv, slot);
                            }
                        }
                    },
                );
            }
        }
        timings.up_s = t.elapsed().as_secs_f64();
        phase_end(&mut obs, EnginePhase::Up, timings.up_s);

        // ---- V: M2L into the downward-check arena. ------------------
        phase_start(&mut obs, EnginePhase::V);
        let t = Instant::now();
        let mut down_check = vec![0.0f64; n_nodes * ns];
        match plan.method {
            M2lMethod::Fft => {
                let fft = plan.fft.as_ref().expect("fft plan built");
                let glen = fft.grid_len();
                let hlen = fft.half_len();
                // Dense slot assignment for every box appearing as a V
                // source, in node-index order — precomputed once in the
                // schedule rather than per evaluation.
                let spec_slot = &sched.spec_slot;
                let sources = &sched.v_sources;
                // Forward transforms, two source boxes per complex FFT,
                // stored as split re/im Hermitian half-grids for the
                // multiply-add hot loop.  Pairing is by fixed slot index
                // (2i, 2i+1) — chunks partition the *pair list* — so the
                // spectra, and hence all downstream bits, do not depend
                // on the thread count or the chunk boundaries.
                let mut spec_re = vec![0.0f64; sources.len() * hlen];
                let mut spec_im = vec![0.0f64; sources.len() * hlen];
                {
                    let base_re = SendPtr::new(spec_re.as_mut_ptr());
                    let base_im = SendPtr::new(spec_im.as_mut_ptr());
                    par_for_each_chunked_init(
                        &sched.v_source_pair_chunks,
                        || vec![Complex::ZERO; glen],
                        |grid, pi| {
                            let a = 2 * pi;
                            let b = a + 1;
                            let da = &up_equiv[sources[a] * ns..(sources[a] + 1) * ns];
                            // SAFETY: pair `pi` owns exactly the spectrum
                            // slots `2pi` and `2pi + 1`.
                            let (ra, ia) = unsafe {
                                (
                                    base_re.slice_mut(a * hlen, hlen),
                                    base_im.slice_mut(a * hlen, hlen),
                                )
                            };
                            if b < sources.len() {
                                let db = &up_equiv[sources[b] * ns..(sources[b] + 1) * ns];
                                let (rb, ib) = unsafe {
                                    (
                                        base_re.slice_mut(b * hlen, hlen),
                                        base_im.slice_mut(b * hlen, hlen),
                                    )
                                };
                                fft.source_spectrum_half_pair_into(da, db, grid, ra, ia, rb, ib);
                            } else {
                                fft.source_spectrum_half_into(da, grid, ra, ia);
                            }
                        },
                    );
                }
                // Per-target frequency-domain accumulation, finished
                // straight into the down-check arena.  Targets are
                // processed in fixed-index pairs (2i, 2i+1) so two
                // accumulators share one packed inverse transform —
                // pairing by slot keeps the (rounding-level) cross-talk
                // of the packed inverse independent of the thread count.
                let targets = &sched.v_targets;
                let base = SendPtr::new(down_check.as_mut_ptr());
                let accumulate_target = |ni: usize, acc_re: &mut [f64], acc_im: &mut [f64]| {
                    let tid = tree.nodes[ni].id;
                    acc_re.fill(0.0);
                    acc_im.fill(0.0);
                    for &si in &plan.lists.v[ni] {
                        let sid = tree.nodes[si].id;
                        let off = (
                            sid.x as i32 - tid.x as i32,
                            sid.y as i32 - tid.y as i32,
                            sid.z as i32 - tid.z as i32,
                        );
                        let slot_i = spec_slot[si] * hlen;
                        let ok = fft.accumulate_split(
                            tid.level,
                            off,
                            &spec_re[slot_i..slot_i + hlen],
                            &spec_im[slot_i..slot_i + hlen],
                            acc_re,
                            acc_im,
                        );
                        debug_assert!(ok, "spectrum for every realized offset");
                    }
                };
                par_for_each_chunked_init(
                    &sched.v_target_pair_chunks,
                    || {
                        (
                            vec![0.0f64; hlen],
                            vec![0.0f64; hlen],
                            vec![0.0f64; hlen],
                            vec![0.0f64; hlen],
                            vec![Complex::ZERO; glen],
                        )
                    },
                    |(a_re, a_im, b_re, b_im, cgrid), pi| {
                        let na = targets[2 * pi];
                        accumulate_target(na, a_re, a_im);
                        // SAFETY: each V target owns its node's slice,
                        // and each pair owns two distinct targets.
                        let slot_a = unsafe { base.slice_mut(na * ns, ns) };
                        if let Some(&nb) = targets.get(2 * pi + 1) {
                            accumulate_target(nb, b_re, b_im);
                            let slot_b = unsafe { base.slice_mut(nb * ns, ns) };
                            fft.finish_split_acc_pair_into(
                                a_re, a_im, b_re, b_im, cgrid, slot_a, slot_b,
                            );
                        } else {
                            fft.finish_split_acc_into(a_re, a_im, cgrid, slot_a);
                        }
                    },
                );
            }
            M2lMethod::Dense => {
                let base = SendPtr::new(down_check.as_mut_ptr());
                par_for_each_chunked_init(
                    &sched.v_target_chunks,
                    || (),
                    |_, ni| {
                        let tid = tree.nodes[ni].id;
                        // SAFETY: each V target owns its node's slice.
                        let slot = unsafe { base.slice_mut(ni * ns, ns) };
                        for &si in &plan.lists.v[ni] {
                            let sid = tree.nodes[si].id;
                            let off = (
                                sid.x as i32 - tid.x as i32,
                                sid.y as i32 - tid.y as i32,
                                sid.z as i32 - tid.z as i32,
                            );
                            let m2l = plan.ops.m2l(tid.level, off).expect("operator cached");
                            m2l.matvec_acc(&up_equiv[si * ns..(si + 1) * ns], slot);
                        }
                    },
                );
            }
        }
        timings.v_s = t.elapsed().as_secs_f64();
        phase_end(&mut obs, EnginePhase::V, timings.v_s);

        // ---- X: source points onto downward-check surfaces. ---------
        phase_start(&mut obs, EnginePhase::X);
        let t = Instant::now();
        {
            let base = SendPtr::new(down_check.as_mut_ptr());
            par_for_each_chunked_init(&sched.x_chunks, Vec::new, |surf: &mut Vec<[f64; 3]>, ni| {
                let node = &tree.nodes[ni];
                plan.tpl_inner.scale_into(node.center, node.half_width, surf);
                // SAFETY: each X target owns its node's slice.
                let slot = unsafe { base.slice_mut(ni * ns, ns) };
                for &ci in &plan.lists.x[ni] {
                    let (s, e) = tree.nodes[ci].point_range;
                    plan.kernel.p2p_soa(surf, plan.soa.range(s, e), slot);
                }
            });
        }
        timings.x_s = t.elapsed().as_secs_f64();
        phase_end(&mut obs, EnginePhase::X, timings.x_s);

        // ---- DOWN: L2L top-down. -------------------------------------
        phase_start(&mut obs, EnginePhase::Down);
        let t = Instant::now();
        let mut down_equiv = vec![0.0f64; n_nodes * ns];
        {
            let base = SendPtr::new(down_equiv.as_mut_ptr());
            for level in 0..tree.levels.len() {
                par_for_each_chunked_init(
                    &sched.level_chunks[level],
                    || (),
                    |_, ni| {
                        let node = &tree.nodes[ni];
                        // SAFETY: each task writes only its own node's
                        // slice; the parent read touches a slice finalized
                        // in the previous (shallower) level iteration.
                        let slot = unsafe { base.slice_mut(ni * ns, ns) };
                        plan.ops
                            .dc2e(node.id.level)
                            .matvec_into(&down_check[ni * ns..(ni + 1) * ns], slot);
                        if let Some(pi) = node.parent {
                            let pequiv = unsafe { base.slice(pi * ns, ns) };
                            plan.ops.l2l(node.id.level, node.id.octant()).matvec_acc(pequiv, slot);
                        }
                    },
                );
            }
        }
        timings.down_s = t.elapsed().as_secs_f64();
        phase_end(&mut obs, EnginePhase::Down, timings.down_s);

        // ---- Fused leaf pass: L2P + W + U, scattered in place. -------
        phase_start(&mut obs, EnginePhase::Near);
        let t = Instant::now();
        let n_points = tree.points.len();
        let mut out = vec![0.0f64; n_points];
        let mut out_grad = if with_grad { Some(vec![[0.0f64; 3]; n_points]) } else { None };
        {
            let out_base = SendPtr::new(out.as_mut_ptr());
            let grad_base = out_grad.as_mut().map(|g| SendPtr::new(g.as_mut_ptr()));
            par_for_each_chunked_init(
                &sched.leaf_chunks,
                || LeafScratch {
                    surf: Vec::new(),
                    soa: SoaSources::with_capacity(ns),
                    pot: Vec::new(),
                    grad: Vec::new(),
                },
                |scr, li| {
                    let node = &tree.nodes[li];
                    let (s, e) = node.point_range;
                    let targets = &tree.points[s..e];
                    scr.pot.clear();
                    scr.pot.resize(e - s, 0.0);
                    if with_grad {
                        scr.grad.clear();
                        scr.grad.resize(e - s, [0.0; 3]);
                    }
                    // L2P: evaluate the local expansion.
                    let stage = |scr: &mut LeafScratch, equiv: &[f64]| {
                        scr.soa.clear();
                        for (pt, &q) in scr.surf.iter().zip(equiv) {
                            scr.soa.push(*pt, q);
                        }
                    };
                    plan.tpl_outer.scale_into(node.center, node.half_width, &mut scr.surf);
                    stage(scr, &down_equiv[li * ns..(li + 1) * ns]);
                    plan.kernel.p2p_soa(targets, scr.soa.view(), &mut scr.pot);
                    if with_grad {
                        plan.kernel.p2p_grad_soa(targets, scr.soa.view(), &mut scr.grad);
                    }
                    // W: multipoles of W-list boxes evaluated directly.
                    for &wi in &plan.lists.w[li] {
                        let wnode = &tree.nodes[wi];
                        plan.tpl_inner.scale_into(wnode.center, wnode.half_width, &mut scr.surf);
                        stage(scr, &up_equiv[wi * ns..(wi + 1) * ns]);
                        plan.kernel.p2p_soa(targets, scr.soa.view(), &mut scr.pot);
                        if with_grad {
                            plan.kernel.p2p_grad_soa(targets, scr.soa.view(), &mut scr.grad);
                        }
                    }
                    // U: direct near-field over SoA source ranges.
                    for &ui in &plan.lists.u[li] {
                        let (us, ue) = tree.nodes[ui].point_range;
                        plan.kernel.p2p_soa(targets, plan.soa.range(us, ue), &mut scr.pot);
                        if with_grad {
                            plan.kernel.p2p_grad_soa(
                                targets,
                                plan.soa.range(us, ue),
                                &mut scr.grad,
                            );
                        }
                    }
                    // Scatter straight to original point order.
                    // SAFETY: the permutation is a bijection and leaf
                    // point ranges are disjoint, so no two leaves write
                    // the same output slot.
                    for (offset, &v) in scr.pot.iter().enumerate() {
                        unsafe { *out_base.get().add(tree.permutation[s + offset]) = v };
                    }
                    if let Some(gb) = grad_base {
                        for (offset, &v) in scr.grad.iter().enumerate() {
                            unsafe { *gb.get().add(tree.permutation[s + offset]) = v };
                        }
                    }
                },
            );
        }
        timings.near_s = t.elapsed().as_secs_f64();
        phase_end(&mut obs, EnginePhase::Near, timings.near_s);
        timings.total_s = t_total.elapsed().as_secs_f64();
        (out, out_grad, timings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy::{direct_sum, relative_l2_error};
    use compat::rng::StdRng;

    fn random_problem(n: usize, seed: u64) -> (Vec<[f64; 3]>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = (0..n).map(|_| [rng.random(), rng.random(), rng.random()]).collect();
        let den = (0..n).map(|_| 2.0 * rng.random::<f64>() - 1.0).collect();
        (pts, den)
    }

    #[test]
    fn matches_direct_sum_dense_m2l() {
        let (pts, den) = random_problem(1500, 1);
        let plan = FmmPlan::new(&pts, &den, 40, 4, M2lMethod::Dense);
        let fmm = FmmEvaluator::new().evaluate(&plan);
        let direct = direct_sum(&pts, &den);
        let err = relative_l2_error(&fmm, &direct);
        assert!(err < 5e-3, "FMM vs direct relative L2 error {err}");
    }

    #[test]
    fn matches_direct_sum_fft_m2l() {
        let (pts, den) = random_problem(1500, 2);
        let plan = FmmPlan::new(&pts, &den, 40, 4, M2lMethod::Fft);
        let fmm = FmmEvaluator::new().evaluate(&plan);
        let direct = direct_sum(&pts, &den);
        let err = relative_l2_error(&fmm, &direct);
        assert!(err < 5e-3, "FFT-M2L FMM vs direct relative L2 error {err}");
    }

    #[test]
    fn fft_and_dense_agree_closely() {
        let (pts, den) = random_problem(2000, 3);
        let dense =
            FmmEvaluator::new().evaluate(&FmmPlan::new(&pts, &den, 50, 4, M2lMethod::Dense));
        let fft = FmmEvaluator::new().evaluate(&FmmPlan::new(&pts, &den, 50, 4, M2lMethod::Fft));
        let err = relative_l2_error(&fft, &dense);
        assert!(err < 1e-10, "two M2L paths are the same operator: {err}");
    }

    #[test]
    fn higher_order_is_more_accurate() {
        let (pts, den) = random_problem(1200, 4);
        let direct = direct_sum(&pts, &den);
        let e4 = relative_l2_error(
            &FmmEvaluator::new().evaluate(&FmmPlan::new(&pts, &den, 30, 4, M2lMethod::Fft)),
            &direct,
        );
        let e8 = relative_l2_error(
            &FmmEvaluator::new().evaluate(&FmmPlan::new(&pts, &den, 30, 8, M2lMethod::Fft)),
            &direct,
        );
        assert!(e8 < e4, "p=8 ({e8}) beats p=4 ({e4})");
        assert!(e8 < 1e-5, "p=8 reaches ~1e-6: {e8}");
    }

    #[test]
    fn clustered_distribution_still_accurate() {
        // Exercises the adaptive W/X paths.
        let mut rng = StdRng::seed_from_u64(5);
        let mut pts = Vec::new();
        for _ in 0..800 {
            pts.push([
                0.1 + rng.random::<f64>() * 0.02,
                0.5 + rng.random::<f64>() * 0.02,
                0.5 + rng.random::<f64>() * 0.02,
            ]);
        }
        for _ in 0..700 {
            pts.push([rng.random(), rng.random(), rng.random()]);
        }
        let den: Vec<f64> = (0..1500).map(|_| 2.0 * rng.random::<f64>() - 1.0).collect();
        let plan = FmmPlan::new(&pts, &den, 24, 4, M2lMethod::Fft);
        // Sanity: the adaptive paths are actually exercised.
        assert!(plan.lists.w.iter().map(|l| l.len()).sum::<usize>() > 0);
        let fmm = FmmEvaluator::new().evaluate(&plan);
        let direct = direct_sum(&pts, &den);
        let err = relative_l2_error(&fmm, &direct);
        assert!(err < 5e-3, "adaptive case error {err}");
    }

    #[test]
    fn single_leaf_tree_is_exact() {
        // Q >= N: everything is one U-list self-interaction = direct sum.
        let (pts, den) = random_problem(120, 6);
        let plan = FmmPlan::new(&pts, &den, 200, 4, M2lMethod::Dense);
        let fmm = FmmEvaluator::new().evaluate(&plan);
        let direct = direct_sum(&pts, &den);
        let err = relative_l2_error(&fmm, &direct);
        assert!(err < 1e-14, "single box is exact: {err}");
    }

    #[test]
    fn gradients_match_direct_force_sum() {
        use crate::kernel::{Kernel, LaplaceKernel};
        let (pts, den) = random_problem(1000, 21);
        let plan = FmmPlan::new(&pts, &den, 32, 8, M2lMethod::Fft);
        let (pot, grad) = FmmEvaluator::new().evaluate_with_gradient(&plan);
        // Potentials unchanged by the gradient path.
        let pot_only = FmmEvaluator::new().evaluate(&plan);
        assert_eq!(pot, pot_only);
        // Reference gradient by direct summation.
        let kernel = LaplaceKernel;
        let mut reference = vec![[0.0; 3]; pts.len()];
        for (i, &t) in pts.iter().enumerate() {
            let mut acc = [0.0; 3];
            for (j, &s) in pts.iter().enumerate() {
                let g = kernel.eval_grad(t, s);
                acc[0] += g[0] * den[j];
                acc[1] += g[1] * den[j];
                acc[2] += g[2] * den[j];
            }
            reference[i] = acc;
        }
        // Relative L2 over all 3N components.
        let mut num = 0.0;
        let mut d2 = 0.0;
        for (a, b) in grad.iter().zip(&reference) {
            for k in 0..3 {
                num += (a[k] - b[k]) * (a[k] - b[k]);
                d2 += b[k] * b[k];
            }
        }
        let err = (num / d2).sqrt();
        assert!(err < 2e-2, "gradient relative L2 error {err}");
    }

    #[test]
    fn kernel_independence_yukawa_matches_its_direct_sum() {
        // The headline KIFMM property: swap the kernel, keep everything
        // else — the scheme still converges to that kernel's direct sum.
        use crate::accuracy::direct_sum_with;
        use crate::kernel::YukawaKernel;
        let (pts, den) = random_problem(1200, 9);
        let kernel = YukawaKernel::new(1.5);
        let plan = FmmPlan::with_kernel(kernel, &pts, &den, 40, 4, M2lMethod::Fft);
        let fmm = FmmEvaluator::new().evaluate(&plan);
        let direct = direct_sum_with(&kernel, &pts, &den);
        let err = relative_l2_error(&fmm, &direct);
        assert!(err < 5e-3, "Yukawa FMM vs direct relative L2 error {err}");
        // And it is genuinely a different answer than Laplace.
        let laplace = direct_sum(&pts, &den);
        assert!(relative_l2_error(&direct, &laplace) > 0.05);
    }

    #[test]
    fn potentials_scale_linearly_with_density() {
        let (pts, den) = random_problem(600, 7);
        let plan = FmmPlan::new(&pts, &den, 30, 4, M2lMethod::Fft);
        let base = FmmEvaluator::new().evaluate(&plan);
        let den2: Vec<f64> = den.iter().map(|d| 2.0 * d).collect();
        let plan2 = FmmPlan::new(&pts, &den2, 30, 4, M2lMethod::Fft);
        let doubled = FmmEvaluator::new().evaluate(&plan2);
        let err = relative_l2_error(&doubled, &base.iter().map(|p| 2.0 * p).collect::<Vec<_>>());
        assert!(err < 1e-12, "linearity: {err}");
    }

    #[test]
    fn repeated_evaluations_on_warm_pool_are_bitwise_stable() {
        // One plan evaluated many times: results must be bitwise
        // identical run to run, and the persistent pool must not grow a
        // fresh set of workers per call (pre-pool, 6 evaluations × every
        // parallel region would each have spawned their own threads).
        let (pts, den) = random_problem(900, 33);
        let plan = FmmPlan::new(&pts, &den, 32, 4, M2lMethod::Fft);
        let ev = FmmEvaluator::new();
        let first = ev.evaluate(&plan);
        for _ in 0..5 {
            assert_eq!(ev.evaluate(&plan), first);
        }
        assert!(
            compat::par::pool_workers() <= compat::par::MAX_POOL_WORKERS,
            "worker count is bounded by the pool cap, not by call count"
        );
    }

    #[test]
    fn observed_evaluation_is_bitwise_identical_and_ordered() {
        struct Recorder {
            events: Vec<(EnginePhase, bool)>,
        }
        impl PhaseObserver for Recorder {
            fn on_phase_start(&mut self, phase: EnginePhase) {
                self.events.push((phase, true));
            }
            fn on_phase_end(&mut self, phase: EnginePhase, elapsed_s: f64) {
                assert!(elapsed_s >= 0.0);
                self.events.push((phase, false));
            }
        }
        let (pts, den) = random_problem(1100, 55);
        let plan = FmmPlan::new(&pts, &den, 32, 4, M2lMethod::Fft);
        let mut rec = Recorder { events: Vec::new() };
        let (pot, _) = FmmEvaluator::new().evaluate_observed(&plan, &mut rec);
        assert_eq!(pot, FmmEvaluator::new().evaluate(&plan), "observer changes nothing");
        let expected: Vec<(EnginePhase, bool)> =
            EnginePhase::ALL.iter().flat_map(|&p| [(p, true), (p, false)]).collect();
        assert_eq!(rec.events, expected, "start/end for each phase, in execution order");
    }

    #[test]
    fn evaluate_timed_reports_coherent_phase_times() {
        let (pts, den) = random_problem(1200, 41);
        let plan = FmmPlan::new(&pts, &den, 40, 4, M2lMethod::Fft);
        let (pot, t) = FmmEvaluator::new().evaluate_timed(&plan);
        assert_eq!(pot, FmmEvaluator::new().evaluate(&plan), "timing changes nothing");
        assert!(t.total_s > 0.0);
        for phase in [t.up_s, t.v_s, t.x_s, t.down_s, t.near_s] {
            assert!(phase >= 0.0 && phase <= t.total_s);
        }
        let sum = t.up_s + t.v_s + t.x_s + t.down_s + t.near_s;
        assert!(sum <= t.total_s * 1.01, "phases nest inside the total: {sum} vs {}", t.total_s);
    }
}
