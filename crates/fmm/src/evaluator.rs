//! The six-phase FMM evaluation engine.
//!
//! Phases run in the paper's order — UP (P2M + M2M), V (M2L), U (P2P),
//! W, X, DOWN (L2L + L2P) — with rayon data parallelism inside each
//! phase: over same-level boxes for the tree passes and over leaves for
//! the list passes.  Writes are race-free by construction: each parallel
//! task owns a disjoint target (its box's expansion or its leaf's
//! contiguous potential range), and all reads are to data finalized in an
//! earlier level or phase.

use crate::fft_m2l::FftM2l;
use crate::kernel::{Kernel, LaplaceKernel};
use crate::lists::InteractionLists;
use crate::operators::OperatorCache;
use crate::surface::{surface_point_count, surface_points, RADIUS_INNER, RADIUS_OUTER};
use crate::tree::Octree;
use compat::par::{IntoParIterExt, ParSliceExt};

/// How the V-list translations are evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum M2lMethod {
    /// Dense per-offset operator matrices.
    Dense,
    /// FFT convolution (the paper's configuration).
    Fft,
}

/// An execution plan: tree, lists, and precomputed operators.
///
/// Generic over the interaction kernel — the "kernel independence" of
/// the KIFMM is literal here: any [`Kernel`] implementation gets the
/// same tree, lists, operators and FFT machinery.
///
/// ```
/// use kifmm::evaluator::{FmmPlan, M2lMethod};
/// use kifmm::{direct_sum, relative_l2_error, FmmEvaluator};
/// use kifmm::distributions::uniform_cube;
///
/// let points = uniform_cube(400, 7);
/// let densities = vec![1.0; 400];
/// let plan = FmmPlan::new(&points, &densities, 32, 4, M2lMethod::Fft);
/// let potentials = FmmEvaluator::new().evaluate(&plan);
/// let reference = direct_sum(&points, &densities);
/// assert!(relative_l2_error(&potentials, &reference) < 1e-2);
/// ```
pub struct FmmPlan<K: Kernel = LaplaceKernel> {
    /// The interaction kernel.
    pub kernel: K,
    /// The octree.
    pub tree: Octree,
    /// The U/V/W/X lists.
    pub lists: InteractionLists,
    /// Dense translation operators.
    pub ops: OperatorCache,
    /// FFT M2L state (present when `method == Fft`).
    pub fft: Option<FftM2l>,
    /// Surface order.
    pub p: usize,
    /// V-list evaluation method.
    pub method: M2lMethod,
}

impl FmmPlan<LaplaceKernel> {
    /// Builds a plan for `points`/`densities` with at most `q` points per
    /// leaf and surface order `p` (must be a power of two for the FFT
    /// method), using the single-layer Laplace kernel.
    pub fn new(
        points: &[[f64; 3]],
        densities: &[f64],
        q: usize,
        p: usize,
        method: M2lMethod,
    ) -> Self {
        FmmPlan::with_kernel(LaplaceKernel, points, densities, q, p, method)
    }
}

impl<K: Kernel> FmmPlan<K> {
    /// Builds a plan for an arbitrary interaction kernel.
    pub fn with_kernel(
        kernel: K,
        points: &[[f64; 3]],
        densities: &[f64],
        q: usize,
        p: usize,
        method: M2lMethod,
    ) -> Self {
        let tree = Octree::build(points, densities, q);
        let lists = InteractionLists::build(&tree);
        // The dense M2L matrices are only built for the dense method; the
        // FFT method precomputes kernel spectra instead.
        let ops = OperatorCache::build_for_method(&kernel, &tree, p, method == M2lMethod::Dense);
        let fft = match method {
            M2lMethod::Fft => Some(FftM2l::build(&kernel, &tree, p)),
            M2lMethod::Dense => None,
        };
        FmmPlan { kernel, tree, lists, ops, fft, p, method }
    }

    /// Surface points per box.
    pub fn ns(&self) -> usize {
        surface_point_count(self.p)
    }
}

/// The evaluator.  Stateless; the kernel lives in the plan.
#[derive(Debug, Default)]
pub struct FmmEvaluator;

impl FmmEvaluator {
    /// Creates an evaluator.
    pub fn new() -> Self {
        FmmEvaluator
    }

    /// Computes all `N` potentials, returned in the ORIGINAL point order.
    pub fn evaluate<K: Kernel>(&self, plan: &FmmPlan<K>) -> Vec<f64> {
        self.evaluate_impl(plan, false).0
    }

    /// Computes potentials *and* their gradients `∇f(x_i)` (for the
    /// Laplace kernel, `−∇f` is the field — the force per unit charge),
    /// both in the ORIGINAL point order.
    ///
    /// The far field is differentiated through its single-layer
    /// representation: at the leaf stages (L2P, W, U) the gradient kernel
    /// is applied against the same equivalent densities and sources the
    /// potential uses, so force accuracy matches potential accuracy up to
    /// one derivative order.
    pub fn evaluate_with_gradient<K: Kernel>(
        &self,
        plan: &FmmPlan<K>,
    ) -> (Vec<f64>, Vec<[f64; 3]>) {
        let (pot, grad) = self.evaluate_impl(plan, true);
        (pot, grad.expect("gradient requested"))
    }

    fn evaluate_impl<K: Kernel>(
        &self,
        plan: &FmmPlan<K>,
        with_grad: bool,
    ) -> (Vec<f64>, Option<Vec<[f64; 3]>>) {
        let tree = &plan.tree;
        let ns = plan.ns();
        let n_nodes = tree.nodes.len();

        // ---- UP: P2M at leaves, M2M bottom-up. ----------------------
        let mut up_equiv: Vec<Vec<f64>> = vec![Vec::new(); n_nodes];
        for level in (0..tree.levels.len()).rev() {
            let computed: Vec<(usize, Vec<f64>)> = tree.levels[level]
                .par_iter()
                .map(|&ni| (ni, self.upward_for_node(plan, ni, &up_equiv)))
                .collect();
            for (ni, equiv) in computed {
                up_equiv[ni] = equiv;
            }
        }

        // ---- V: M2L into downward-check accumulators. ---------------
        let mut down_check: Vec<Vec<f64>> = vec![vec![0.0; ns]; n_nodes];
        match plan.method {
            M2lMethod::Fft => {
                let fft = plan.fft.as_ref().expect("fft plan built");
                // Forward transforms for every box that appears as a V
                // source.
                let mut is_source = vec![false; n_nodes];
                for vl in &plan.lists.v {
                    for &s in vl {
                        is_source[s] = true;
                    }
                }
                let spectra: Vec<Option<Vec<dvfs_fft::Complex>>> = (0..n_nodes)
                    .into_par_iter()
                    .map(|ni| {
                        if is_source[ni] {
                            Some(fft.source_spectrum(&up_equiv[ni]))
                        } else {
                            None
                        }
                    })
                    .collect();
                let results: Vec<(usize, Vec<f64>)> = (0..n_nodes)
                    .into_par_iter()
                    .filter(|&ni| !plan.lists.v[ni].is_empty())
                    .map(|ni| {
                        let tid = tree.nodes[ni].id;
                        let mut acc = fft.new_accumulator();
                        for &si in &plan.lists.v[ni] {
                            let sid = tree.nodes[si].id;
                            let off = (
                                sid.x as i32 - tid.x as i32,
                                sid.y as i32 - tid.y as i32,
                                sid.z as i32 - tid.z as i32,
                            );
                            let spec = spectra[si].as_ref().expect("source spectrum");
                            let ok = fft.accumulate(tid.level, off, spec, &mut acc);
                            debug_assert!(ok, "spectrum for every realized offset");
                        }
                        (ni, fft.finish(acc))
                    })
                    .collect();
                for (ni, pot) in results {
                    for (d, p) in down_check[ni].iter_mut().zip(&pot) {
                        *d += p;
                    }
                }
            }
            M2lMethod::Dense => {
                let results: Vec<(usize, Vec<f64>)> = (0..n_nodes)
                    .into_par_iter()
                    .filter(|&ni| !plan.lists.v[ni].is_empty())
                    .map(|ni| {
                        let tid = tree.nodes[ni].id;
                        let mut acc = vec![0.0; ns];
                        for &si in &plan.lists.v[ni] {
                            let sid = tree.nodes[si].id;
                            let off = (
                                sid.x as i32 - tid.x as i32,
                                sid.y as i32 - tid.y as i32,
                                sid.z as i32 - tid.z as i32,
                            );
                            let m2l = plan.ops.m2l(tid.level, off).expect("operator cached");
                            let contrib = m2l.matvec(&up_equiv[si]);
                            for (a, c) in acc.iter_mut().zip(&contrib) {
                                *a += c;
                            }
                        }
                        (ni, acc)
                    })
                    .collect();
                for (ni, pot) in results {
                    for (d, p) in down_check[ni].iter_mut().zip(&pot) {
                        *d += p;
                    }
                }
            }
        }

        // ---- X: source points onto downward-check surfaces. ---------
        let x_results: Vec<(usize, Vec<f64>)> = (0..n_nodes)
            .into_par_iter()
            .filter(|&ni| !plan.lists.x[ni].is_empty())
            .map(|ni| {
                let node = &tree.nodes[ni];
                let check = surface_points(plan.p, node.center, node.half_width, RADIUS_INNER);
                let mut acc = vec![0.0; ns];
                for &ci in &plan.lists.x[ni] {
                    let (s, e) = tree.nodes[ci].point_range;
                    plan.kernel.p2p(&check, &tree.points[s..e], &tree.densities[s..e], &mut acc);
                }
                (ni, acc)
            })
            .collect();
        for (ni, pot) in x_results {
            for (d, p) in down_check[ni].iter_mut().zip(&pot) {
                *d += p;
            }
        }

        // ---- DOWN (part 1): L2L top-down. ----------------------------
        let mut down_equiv: Vec<Vec<f64>> = vec![Vec::new(); n_nodes];
        for level in 0..tree.levels.len() {
            let computed: Vec<(usize, Vec<f64>)> = tree.levels[level]
                .par_iter()
                .map(|&ni| {
                    let node = &tree.nodes[ni];
                    let mut equiv = plan.ops.dc2e(node.id.level).matvec(&down_check[ni]);
                    if let Some(pi) = node.parent {
                        if !down_equiv[pi].is_empty() {
                            let l2l = plan.ops.l2l(node.id.level, node.id.octant());
                            let from_parent = l2l.matvec(&down_equiv[pi]);
                            for (e, f) in equiv.iter_mut().zip(&from_parent) {
                                *e += f;
                            }
                        }
                    }
                    (ni, equiv)
                })
                .collect();
            for (ni, equiv) in computed {
                down_equiv[ni] = equiv;
            }
        }

        // ---- Leaf phases: L2P + W + U, writing disjoint ranges. ------
        type LeafResult = ((usize, usize), Vec<f64>, Option<Vec<[f64; 3]>>);
        let leaves = tree.leaves();
        let leaf_results: Vec<LeafResult> = leaves
            .par_iter()
            .map(|&li| {
                let node = &tree.nodes[li];
                let (s, e) = node.point_range;
                let targets = &tree.points[s..e];
                let mut pot = vec![0.0; e - s];
                let mut grad = if with_grad { Some(vec![[0.0; 3]; e - s]) } else { None };
                // L2P: evaluate the local expansion.
                let equiv_pts = surface_points(plan.p, node.center, node.half_width, RADIUS_OUTER);
                plan.kernel.p2p(targets, &equiv_pts, &down_equiv[li], &mut pot);
                if let Some(g) = grad.as_mut() {
                    plan.kernel.p2p_grad(targets, &equiv_pts, &down_equiv[li], g);
                }
                // W: multipoles of W-list boxes evaluated directly.
                for &wi in &plan.lists.w[li] {
                    let wnode = &tree.nodes[wi];
                    let wequiv_pts =
                        surface_points(plan.p, wnode.center, wnode.half_width, RADIUS_INNER);
                    plan.kernel.p2p(targets, &wequiv_pts, &up_equiv[wi], &mut pot);
                    if let Some(g) = grad.as_mut() {
                        plan.kernel.p2p_grad(targets, &wequiv_pts, &up_equiv[wi], g);
                    }
                }
                // U: direct near-field.
                for &ui in &plan.lists.u[li] {
                    let (us, ue) = tree.nodes[ui].point_range;
                    plan.kernel.p2p(
                        targets,
                        &tree.points[us..ue],
                        &tree.densities[us..ue],
                        &mut pot,
                    );
                    if let Some(g) = grad.as_mut() {
                        plan.kernel.p2p_grad(
                            targets,
                            &tree.points[us..ue],
                            &tree.densities[us..ue],
                            g,
                        );
                    }
                }
                ((s, e), pot, grad)
            })
            .collect();

        // Scatter to original order.
        let mut out = vec![0.0; tree.points.len()];
        let mut out_grad = if with_grad { Some(vec![[0.0; 3]; tree.points.len()]) } else { None };
        for ((s, _e), pot, grad) in leaf_results {
            for (offset, v) in pot.into_iter().enumerate() {
                out[tree.permutation[s + offset]] = v;
            }
            if let (Some(og), Some(g)) = (out_grad.as_mut(), grad) {
                for (offset, v) in g.into_iter().enumerate() {
                    og[tree.permutation[s + offset]] = v;
                }
            }
        }
        (out, out_grad)
    }

    /// P2M for leaves, M2M for internal nodes.
    fn upward_for_node<K: Kernel>(
        &self,
        plan: &FmmPlan<K>,
        ni: usize,
        up_equiv: &[Vec<f64>],
    ) -> Vec<f64> {
        let tree = &plan.tree;
        let node = &tree.nodes[ni];
        let level = node.id.level;
        if node.is_leaf() {
            let check = surface_points(plan.p, node.center, node.half_width, RADIUS_OUTER);
            let mut check_pot = vec![0.0; check.len()];
            let (s, e) = node.point_range;
            plan.kernel.p2p(&check, &tree.points[s..e], &tree.densities[s..e], &mut check_pot);
            plan.ops.uc2e(level).matvec(&check_pot)
        } else {
            let ns = plan.ns();
            let mut equiv = vec![0.0; ns];
            for child in node.children.iter().flatten() {
                let cnode = &tree.nodes[*child];
                let m2m = plan.ops.m2m(cnode.id.level, cnode.id.octant());
                let contrib = m2m.matvec(&up_equiv[*child]);
                for (a, c) in equiv.iter_mut().zip(&contrib) {
                    *a += c;
                }
            }
            equiv
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy::{direct_sum, relative_l2_error};
    use compat::rng::StdRng;

    fn random_problem(n: usize, seed: u64) -> (Vec<[f64; 3]>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = (0..n).map(|_| [rng.random(), rng.random(), rng.random()]).collect();
        let den = (0..n).map(|_| 2.0 * rng.random::<f64>() - 1.0).collect();
        (pts, den)
    }

    #[test]
    fn matches_direct_sum_dense_m2l() {
        let (pts, den) = random_problem(1500, 1);
        let plan = FmmPlan::new(&pts, &den, 40, 4, M2lMethod::Dense);
        let fmm = FmmEvaluator::new().evaluate(&plan);
        let direct = direct_sum(&pts, &den);
        let err = relative_l2_error(&fmm, &direct);
        assert!(err < 5e-3, "FMM vs direct relative L2 error {err}");
    }

    #[test]
    fn matches_direct_sum_fft_m2l() {
        let (pts, den) = random_problem(1500, 2);
        let plan = FmmPlan::new(&pts, &den, 40, 4, M2lMethod::Fft);
        let fmm = FmmEvaluator::new().evaluate(&plan);
        let direct = direct_sum(&pts, &den);
        let err = relative_l2_error(&fmm, &direct);
        assert!(err < 5e-3, "FFT-M2L FMM vs direct relative L2 error {err}");
    }

    #[test]
    fn fft_and_dense_agree_closely() {
        let (pts, den) = random_problem(2000, 3);
        let dense =
            FmmEvaluator::new().evaluate(&FmmPlan::new(&pts, &den, 50, 4, M2lMethod::Dense));
        let fft = FmmEvaluator::new().evaluate(&FmmPlan::new(&pts, &den, 50, 4, M2lMethod::Fft));
        let err = relative_l2_error(&fft, &dense);
        assert!(err < 1e-10, "two M2L paths are the same operator: {err}");
    }

    #[test]
    fn higher_order_is_more_accurate() {
        let (pts, den) = random_problem(1200, 4);
        let direct = direct_sum(&pts, &den);
        let e4 = relative_l2_error(
            &FmmEvaluator::new().evaluate(&FmmPlan::new(&pts, &den, 30, 4, M2lMethod::Fft)),
            &direct,
        );
        let e8 = relative_l2_error(
            &FmmEvaluator::new().evaluate(&FmmPlan::new(&pts, &den, 30, 8, M2lMethod::Fft)),
            &direct,
        );
        assert!(e8 < e4, "p=8 ({e8}) beats p=4 ({e4})");
        assert!(e8 < 1e-5, "p=8 reaches ~1e-6: {e8}");
    }

    #[test]
    fn clustered_distribution_still_accurate() {
        // Exercises the adaptive W/X paths.
        let mut rng = StdRng::seed_from_u64(5);
        let mut pts = Vec::new();
        for _ in 0..800 {
            pts.push([
                0.1 + rng.random::<f64>() * 0.02,
                0.5 + rng.random::<f64>() * 0.02,
                0.5 + rng.random::<f64>() * 0.02,
            ]);
        }
        for _ in 0..700 {
            pts.push([rng.random(), rng.random(), rng.random()]);
        }
        let den: Vec<f64> = (0..1500).map(|_| 2.0 * rng.random::<f64>() - 1.0).collect();
        let plan = FmmPlan::new(&pts, &den, 24, 4, M2lMethod::Fft);
        // Sanity: the adaptive paths are actually exercised.
        assert!(plan.lists.w.iter().map(|l| l.len()).sum::<usize>() > 0);
        let fmm = FmmEvaluator::new().evaluate(&plan);
        let direct = direct_sum(&pts, &den);
        let err = relative_l2_error(&fmm, &direct);
        assert!(err < 5e-3, "adaptive case error {err}");
    }

    #[test]
    fn single_leaf_tree_is_exact() {
        // Q >= N: everything is one U-list self-interaction = direct sum.
        let (pts, den) = random_problem(120, 6);
        let plan = FmmPlan::new(&pts, &den, 200, 4, M2lMethod::Dense);
        let fmm = FmmEvaluator::new().evaluate(&plan);
        let direct = direct_sum(&pts, &den);
        let err = relative_l2_error(&fmm, &direct);
        assert!(err < 1e-14, "single box is exact: {err}");
    }

    #[test]
    fn gradients_match_direct_force_sum() {
        use crate::kernel::{Kernel, LaplaceKernel};
        let (pts, den) = random_problem(1000, 21);
        let plan = FmmPlan::new(&pts, &den, 32, 8, M2lMethod::Fft);
        let (pot, grad) = FmmEvaluator::new().evaluate_with_gradient(&plan);
        // Potentials unchanged by the gradient path.
        let pot_only = FmmEvaluator::new().evaluate(&plan);
        assert_eq!(pot, pot_only);
        // Reference gradient by direct summation.
        let kernel = LaplaceKernel;
        let mut reference = vec![[0.0; 3]; pts.len()];
        for (i, &t) in pts.iter().enumerate() {
            let mut acc = [0.0; 3];
            for (j, &s) in pts.iter().enumerate() {
                let g = kernel.eval_grad(t, s);
                acc[0] += g[0] * den[j];
                acc[1] += g[1] * den[j];
                acc[2] += g[2] * den[j];
            }
            reference[i] = acc;
        }
        // Relative L2 over all 3N components.
        let mut num = 0.0;
        let mut d2 = 0.0;
        for (a, b) in grad.iter().zip(&reference) {
            for k in 0..3 {
                num += (a[k] - b[k]) * (a[k] - b[k]);
                d2 += b[k] * b[k];
            }
        }
        let err = (num / d2).sqrt();
        assert!(err < 2e-2, "gradient relative L2 error {err}");
    }

    #[test]
    fn kernel_independence_yukawa_matches_its_direct_sum() {
        // The headline KIFMM property: swap the kernel, keep everything
        // else — the scheme still converges to that kernel's direct sum.
        use crate::accuracy::direct_sum_with;
        use crate::kernel::YukawaKernel;
        let (pts, den) = random_problem(1200, 9);
        let kernel = YukawaKernel::new(1.5);
        let plan = FmmPlan::with_kernel(kernel, &pts, &den, 40, 4, M2lMethod::Fft);
        let fmm = FmmEvaluator::new().evaluate(&plan);
        let direct = direct_sum_with(&kernel, &pts, &den);
        let err = relative_l2_error(&fmm, &direct);
        assert!(err < 5e-3, "Yukawa FMM vs direct relative L2 error {err}");
        // And it is genuinely a different answer than Laplace.
        let laplace = direct_sum(&pts, &den);
        assert!(relative_l2_error(&direct, &laplace) > 0.05);
    }

    #[test]
    fn potentials_scale_linearly_with_density() {
        let (pts, den) = random_problem(600, 7);
        let plan = FmmPlan::new(&pts, &den, 30, 4, M2lMethod::Fft);
        let base = FmmEvaluator::new().evaluate(&plan);
        let den2: Vec<f64> = den.iter().map(|d| 2.0 * d).collect();
        let plan2 = FmmPlan::new(&pts, &den2, 30, 4, M2lMethod::Fft);
        let doubled = FmmEvaluator::new().evaluate(&plan2);
        let err = relative_l2_error(&doubled, &base.iter().map(|p| 2.0 * p).collect::<Vec<_>>());
        assert!(err < 1e-12, "linearity: {err}");
    }
}
