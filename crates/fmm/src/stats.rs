//! Tree and interaction-list statistics.
//!
//! The cost balance the paper tunes with `Q` is ultimately a statement
//! about these statistics: how many leaves, how long the U and V lists
//! run, how much direct work each leaf carries.  This module summarizes
//! a plan the way FMM papers tabulate their trees.

use crate::lists::InteractionLists;
use crate::tree::Octree;

/// Min/mean/max summary of an integer quantity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinMeanMax {
    /// Minimum.
    pub min: usize,
    /// Mean.
    pub mean: f64,
    /// Maximum.
    pub max: usize,
}

impl MinMeanMax {
    fn over(values: impl Iterator<Item = usize> + Clone) -> MinMeanMax {
        let mut min = usize::MAX;
        let mut max = 0usize;
        let mut sum = 0usize;
        let mut n = 0usize;
        for v in values {
            min = min.min(v);
            max = max.max(v);
            sum += v;
            n += 1;
        }
        if n == 0 {
            MinMeanMax { min: 0, mean: 0.0, max: 0 }
        } else {
            MinMeanMax { min, mean: sum as f64 / n as f64, max }
        }
    }
}

/// Summary statistics of a built tree + lists.
#[derive(Debug, Clone)]
pub struct TreeStats {
    /// Number of points.
    pub points: usize,
    /// Total nodes.
    pub nodes: usize,
    /// Number of leaves.
    pub leaves: usize,
    /// Tree depth.
    pub depth: u8,
    /// Nodes per level, root first.
    pub nodes_per_level: Vec<usize>,
    /// Points per leaf.
    pub points_per_leaf: MinMeanMax,
    /// U-list length over leaves.
    pub u_list_len: MinMeanMax,
    /// V-list length over nodes that have one.
    pub v_list_len: MinMeanMax,
    /// Total W entries (0 for uniform trees).
    pub w_entries: usize,
    /// Total X entries.
    pub x_entries: usize,
    /// Total direct (U-phase) interactions Σ nt·ns.
    pub direct_interactions: u64,
    /// Total M2L translations.
    pub translations: usize,
}

impl TreeStats {
    /// Computes the statistics of `tree` with `lists`.
    pub fn compute(tree: &Octree, lists: &InteractionLists) -> TreeStats {
        let leaves = tree.leaves();
        let mut direct = 0u64;
        for &li in &leaves {
            let nt = tree.nodes[li].num_points() as u64;
            for &ai in &lists.u[li] {
                direct += nt * tree.nodes[ai].num_points() as u64;
            }
        }
        TreeStats {
            points: tree.points.len(),
            nodes: tree.nodes.len(),
            leaves: leaves.len(),
            depth: tree.depth(),
            nodes_per_level: tree.levels.iter().map(|l| l.len()).collect(),
            points_per_leaf: MinMeanMax::over(leaves.iter().map(|&l| tree.nodes[l].num_points())),
            u_list_len: MinMeanMax::over(leaves.iter().map(|&l| lists.u[l].len())),
            v_list_len: MinMeanMax::over(lists.v.iter().filter(|v| !v.is_empty()).map(|v| v.len())),
            w_entries: lists.w.iter().map(|l| l.len()).sum(),
            x_entries: lists.x.iter().map(|l| l.len()).sum(),
            direct_interactions: direct,
            translations: lists.v_pair_count(),
        }
    }

    /// Direct interactions per point — the `O(Q)` factor of the U phase.
    pub fn direct_per_point(&self) -> f64 {
        self.direct_interactions as f64 / self.points.max(1) as f64
    }

    /// A compact one-paragraph report.
    pub fn summary(&self) -> String {
        format!(
            "N={} nodes={} leaves={} depth={} | pts/leaf {:.1} (max {}) | U {:.1} | V {:.1} (max {}) | W/X {}/{} | direct/pt {:.0} | M2L {}",
            self.points,
            self.nodes,
            self.leaves,
            self.depth,
            self.points_per_leaf.mean,
            self.points_per_leaf.max,
            self.u_list_len.mean,
            self.v_list_len.mean,
            self.v_list_len.max,
            self.w_entries,
            self.x_entries,
            self.direct_per_point(),
            self.translations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::{two_clusters, uniform_cube};

    fn stats(pts: &[[f64; 3]], q: usize) -> TreeStats {
        let tree = Octree::build(pts, &vec![1.0; pts.len()], q);
        let lists = InteractionLists::build(&tree);
        TreeStats::compute(&tree, &lists)
    }

    #[test]
    fn totals_are_consistent() {
        let s = stats(&uniform_cube(4000, 3), 64);
        assert_eq!(s.points, 4000);
        assert_eq!(s.nodes_per_level.iter().sum::<usize>(), s.nodes);
        assert_eq!(s.nodes_per_level.len(), s.depth as usize + 1);
        assert!(s.leaves <= s.nodes);
        assert!(s.points_per_leaf.max <= 64);
        assert!(s.points_per_leaf.min >= 1);
        assert_eq!(s.w_entries, s.x_entries);
    }

    #[test]
    fn v_lists_bounded_by_189() {
        let s = stats(&uniform_cube(8000, 32), 32);
        assert!(s.v_list_len.max <= 189);
        assert!(s.translations > 0);
    }

    #[test]
    fn larger_q_means_more_direct_work_per_point() {
        let pts = uniform_cube(8000, 5);
        let small = stats(&pts, 32);
        let large = stats(&pts, 256);
        assert!(large.direct_per_point() > small.direct_per_point());
        assert!(large.leaves < small.leaves);
    }

    #[test]
    fn clustered_points_produce_w_entries() {
        let s = stats(&two_clusters(3000, 0.01, 7), 24);
        assert!(s.w_entries > 0);
        assert!(s.depth >= 4);
    }

    #[test]
    fn summary_mentions_key_numbers() {
        let s = stats(&uniform_cube(1000, 50), 50);
        let text = s.summary();
        assert!(text.contains("N=1000"));
        assert!(text.contains("M2L"));
    }

    #[test]
    fn direct_interactions_match_manual_count() {
        let pts = uniform_cube(500, 11);
        let tree = Octree::build(&pts, &vec![1.0; 500], 40);
        let lists = InteractionLists::build(&tree);
        let s = TreeStats::compute(&tree, &lists);
        let mut manual = 0u64;
        for &li in &tree.leaves() {
            for &ai in &lists.u[li] {
                manual += tree.nodes[li].num_points() as u64 * tree.nodes[ai].num_points() as u64;
            }
        }
        assert_eq!(s.direct_interactions, manual);
    }
}
