//! Chunk-affinity phase scheduling.
//!
//! Every engine phase fans its targets out over the persistent pool.
//! Left to [`compat::par::par_for_each_init`], each phase re-splits its
//! own target list by *item count*, so the box→chunk assignment drifts
//! between phases: the worker that computed a subtree's multipoles in UP
//! has no particular claim on that subtree's V accumulation or leaf
//! pass, and the arena lines it warmed are re-fetched by someone else.
//!
//! A [`PhaseSchedule`] fixes one partition per phase *up front*, keyed
//! by the targets' permuted-point ranges: every target list is in node
//! order (which is DFS order, so `point_range.0` is non-decreasing), and
//! chunk boundaries are placed at cumulative-work quantiles.  Chunk `k`
//! of every phase therefore covers the same contiguous slab of the
//! permuted point/arena space, and [`par_for_each_chunked_init`]
//! enqueues chunks in order, so the worker that picks up slab `k` in one
//! phase tends to pick it up in the next — UP, V, X, DOWN and NEAR
//! re-touch the memory they warmed instead of a stranger's.
//!
//! The schedule also hoists the V-phase's dense spectrum-slot
//! assignment (previously recomputed per evaluation) into plan state.
//!
//! # Determinism
//!
//! A partition only decides *which worker* runs an item, never what the
//! item computes or where it writes, so results are bitwise identical
//! for any chunking — the schedule can be rebuilt for a different
//! thread count (see [`FmmPlan::schedule`](crate::evaluator::FmmPlan))
//! without perturbing a single bit.  The one ordering that carries
//! rounding weight, the V-phase two-for-one FFT pairing, is by fixed
//! pair index: chunks partition the *pair list*, so pairing never moves
//! with a chunk boundary.
//!
//! [`par_for_each_chunked_init`]: compat::par::par_for_each_chunked_init

use crate::lists::InteractionLists;
use crate::tree::Octree;

/// Splits `items` into at most `parts` contiguous chunks with
/// near-equal total `weight`, by closing chunk `k` once the cumulative
/// weight passes the `(k + 1)/parts` quantile.
fn balanced_chunks<W: Fn(usize) -> usize>(
    items: &[usize],
    parts: usize,
    weight: W,
) -> Vec<Vec<usize>> {
    let parts = parts.max(1);
    if items.is_empty() {
        return Vec::new();
    }
    let total: usize = items.iter().map(|&i| weight(i).max(1)).sum();
    let mut chunks: Vec<Vec<usize>> = Vec::with_capacity(parts);
    let mut current = Vec::new();
    let mut consumed = 0usize;
    for &item in items {
        current.push(item);
        consumed += weight(item).max(1);
        if chunks.len() + 1 < parts && consumed * parts >= total * (chunks.len() + 1) {
            chunks.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// A fixed target→chunk partition for every engine phase, plus the
/// V-phase spectrum-slot assignment, built once per `(plan, threads)`.
#[derive(Debug)]
pub struct PhaseSchedule {
    /// The parallelism width this schedule was partitioned for.
    pub threads: usize,
    /// Per tree level, the partition of that level's nodes.  UP
    /// (deepest-first) and DOWN (shallowest-first) share these chunks,
    /// so both passes hand slab `k` of a level to the same task slot.
    pub level_chunks: Vec<Vec<Vec<usize>>>,
    /// Partition of the leaves for the fused NEAR pass, weighted by
    /// target count times the number of source boxes streamed per
    /// target (self + U + W).
    pub leaf_chunks: Vec<Vec<usize>>,
    /// Partition of the X-list target nodes, weighted by total source
    /// points evaluated onto each target's check surface.
    pub x_chunks: Vec<Vec<usize>>,
    /// Node indices appearing in some V list, in node order — the dense
    /// spectrum arena is indexed by position in this list.
    pub v_sources: Vec<usize>,
    /// `spec_slot[node]` = that node's slot in the spectrum arena, or
    /// `usize::MAX` if the node is not a V source.
    pub spec_slot: Vec<usize>,
    /// Partition of forward-transform pair indices (`pi` covers
    /// spectrum slots `2pi` and `2pi + 1`); uniform weight, since every
    /// pair is one packed FFT.
    pub v_source_pair_chunks: Vec<Vec<usize>>,
    /// Nodes with a non-empty V list, in node order.
    pub v_targets: Vec<usize>,
    /// Partition of V-target pair indices for the FFT path, weighted by
    /// the two targets' translation counts.
    pub v_target_pair_chunks: Vec<Vec<usize>>,
    /// Partition of `v_targets` itself for the dense path.
    pub v_target_chunks: Vec<Vec<usize>>,
}

impl PhaseSchedule {
    /// Builds the schedule for `threads`-way execution.
    pub fn build(tree: &Octree, lists: &InteractionLists, threads: usize) -> Self {
        let parts = threads.max(1);
        let n_nodes = tree.nodes.len();
        let span = |ni: usize| {
            let (s, e) = tree.nodes[ni].point_range;
            e - s
        };

        let level_chunks =
            tree.levels.iter().map(|level| balanced_chunks(level, parts, |ni| span(ni))).collect();

        let leaves = tree.leaves();
        let leaf_chunks = balanced_chunks(&leaves, parts, |li| {
            span(li) * (1 + lists.u[li].len() + lists.w[li].len())
        });

        let x_targets: Vec<usize> = (0..n_nodes).filter(|&ni| !lists.x[ni].is_empty()).collect();
        let x_chunks =
            balanced_chunks(&x_targets, parts, |ni| lists.x[ni].iter().map(|&ci| span(ci)).sum());

        // Dense slot assignment for every box appearing as a V source,
        // in node-index order (the evaluator's spectrum arena layout).
        let mut spec_slot = vec![usize::MAX; n_nodes];
        for vl in &lists.v {
            for &s in vl {
                spec_slot[s] = 0;
            }
        }
        let v_sources: Vec<usize> =
            (0..n_nodes).filter(|&ni| spec_slot[ni] != usize::MAX).collect();
        for (slot, &s) in v_sources.iter().enumerate() {
            spec_slot[s] = slot;
        }
        let source_pairs: Vec<usize> = (0..v_sources.len().div_ceil(2)).collect();
        let v_source_pair_chunks = balanced_chunks(&source_pairs, parts, |_| 1);

        let v_targets: Vec<usize> = (0..n_nodes).filter(|&ni| !lists.v[ni].is_empty()).collect();
        let target_pairs: Vec<usize> = (0..v_targets.len().div_ceil(2)).collect();
        let v_target_pair_chunks = balanced_chunks(&target_pairs, parts, |pi| {
            let a = lists.v[v_targets[2 * pi]].len();
            let b = v_targets.get(2 * pi + 1).map_or(0, |&ni| lists.v[ni].len());
            a + b
        });
        let v_target_chunks = balanced_chunks(&v_targets, parts, |ni| lists.v[ni].len());

        PhaseSchedule {
            threads,
            level_chunks,
            leaf_chunks,
            x_chunks,
            v_sources,
            spec_slot,
            v_source_pair_chunks,
            v_targets,
            v_target_pair_chunks,
            v_target_chunks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compat::rng::StdRng;

    fn sample_tree(n: usize, seed: u64) -> Octree {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pts: Vec<[f64; 3]> =
            (0..n / 2).map(|_| [rng.random(), rng.random(), rng.random()]).collect();
        for _ in 0..n - n / 2 {
            pts.push([
                0.3 + rng.random::<f64>() * 0.02,
                0.6 + rng.random::<f64>() * 0.02,
                0.1 + rng.random::<f64>() * 0.02,
            ]);
        }
        Octree::build(&pts, &vec![1.0; n], 24)
    }

    fn flatten(chunks: &[Vec<usize>]) -> Vec<usize> {
        chunks.iter().flatten().copied().collect()
    }

    #[test]
    fn chunks_partition_their_target_lists_exactly() {
        let tree = sample_tree(3000, 3);
        let lists = InteractionLists::build(&tree);
        for threads in [1usize, 2, 4, 8] {
            let s = PhaseSchedule::build(&tree, &lists, threads);
            assert_eq!(s.threads, threads);
            for (level, nodes) in tree.levels.iter().enumerate() {
                assert_eq!(&flatten(&s.level_chunks[level]), nodes, "level {level}");
                assert!(s.level_chunks[level].len() <= threads.max(1));
            }
            assert_eq!(flatten(&s.leaf_chunks), tree.leaves());
            let x_targets: Vec<usize> =
                (0..tree.nodes.len()).filter(|&ni| !lists.x[ni].is_empty()).collect();
            assert_eq!(flatten(&s.x_chunks), x_targets);
            assert_eq!(
                flatten(&s.v_target_chunks),
                s.v_targets,
                "dense chunks cover v_targets in order"
            );
            assert_eq!(
                flatten(&s.v_target_pair_chunks),
                (0..s.v_targets.len().div_ceil(2)).collect::<Vec<_>>()
            );
            assert_eq!(
                flatten(&s.v_source_pair_chunks),
                (0..s.v_sources.len().div_ceil(2)).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn spec_slots_are_dense_and_in_node_order() {
        let tree = sample_tree(2000, 5);
        let lists = InteractionLists::build(&tree);
        let s = PhaseSchedule::build(&tree, &lists, 4);
        for (slot, &src) in s.v_sources.iter().enumerate() {
            assert_eq!(s.spec_slot[src], slot);
        }
        let mut sorted = s.v_sources.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, s.v_sources, "sources listed in node order");
        for ni in 0..tree.nodes.len() {
            let is_source = lists.v.iter().any(|vl| vl.contains(&ni));
            assert_eq!(s.spec_slot[ni] != usize::MAX, is_source, "node {ni}");
        }
    }

    #[test]
    fn balanced_chunks_respect_weight_quantiles() {
        // 100 items of weight 1 plus one of weight 100: the heavy item
        // must not drag half the light ones into its chunk.
        let items: Vec<usize> = (0..101).collect();
        let weight = |i: usize| if i == 0 { 100 } else { 1 };
        let chunks = balanced_chunks(&items, 4, weight);
        assert!(chunks.len() <= 4);
        assert_eq!(flatten(&chunks), items);
        assert_eq!(chunks[0], vec![0], "heavy head closes the first chunk alone");
    }
}
