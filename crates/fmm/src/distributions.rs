//! Particle distributions for n-body experiments.
//!
//! The paper's evaluation uses uniformly distributed points; the FMM
//! literature exercises adaptivity with highly non-uniform ones.  These
//! generators cover both regimes (all seeded and deterministic):
//!
//! * [`uniform_cube`] — the paper's setup.
//! * [`uniform_ball`] — rejection-free uniform sampling in a ball.
//! * [`sphere_surface`] — points on a spherical shell: every octree box
//!   along the surface splits deeply while the interior stays empty, the
//!   classic adaptive stress case.
//! * [`plummer`] — the Plummer model, the standard astrophysical cluster
//!   profile (`ρ ∝ (1 + r²/a²)^{-5/2}`), radially heavy-tailed.
//! * [`two_clusters`] — a bimodal merger scene.

use compat::rng::StdRng;

/// Uniform points in the unit cube `[0, 1]³`.
pub fn uniform_cube(n: usize, seed: u64) -> Vec<[f64; 3]> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| [rng.random(), rng.random(), rng.random()]).collect()
}

/// Uniform points in the ball of radius ½ centered at (½, ½, ½).
pub fn uniform_ball(n: usize, seed: u64) -> Vec<[f64; 3]> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            // Direction from a Gaussian triple, radius via cube-root law.
            let dir = gaussian_direction(&mut rng);
            let r = 0.5 * rng.random::<f64>().cbrt();
            [0.5 + r * dir[0], 0.5 + r * dir[1], 0.5 + r * dir[2]]
        })
        .collect()
}

/// Points on the sphere of radius ½ centered at (½, ½, ½), with an
/// optional shell thickness (relative, e.g. `0.01`).
pub fn sphere_surface(n: usize, thickness: f64, seed: u64) -> Vec<[f64; 3]> {
    assert!((0.0..1.0).contains(&thickness), "thickness is a small fraction");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let dir = gaussian_direction(&mut rng);
            let r = 0.5 * (1.0 - thickness * rng.random::<f64>());
            [0.5 + r * dir[0], 0.5 + r * dir[1], 0.5 + r * dir[2]]
        })
        .collect()
}

/// The Plummer model with scale radius `a`, clipped into the unit cube
/// around (½, ½, ½).
pub fn plummer(n: usize, a: f64, seed: u64) -> Vec<[f64; 3]> {
    assert!(a > 0.0, "scale radius must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        // Inverse-CDF sampling of the Plummer radial profile:
        // r = a (u^{-2/3} − 1)^{-1/2}.
        let u: f64 = rng.random();
        if u <= f64::MIN_POSITIVE {
            continue;
        }
        let r = a / (u.powf(-2.0 / 3.0) - 1.0).sqrt();
        if !r.is_finite() || r > 0.5 {
            continue; // clip the heavy tail into the cube
        }
        let dir = gaussian_direction(&mut rng);
        out.push([0.5 + r * dir[0], 0.5 + r * dir[1], 0.5 + r * dir[2]]);
    }
    out
}

/// Two Gaussian blobs of `n/2` points each at opposite corners.
pub fn two_clusters(n: usize, sigma: f64, seed: u64) -> Vec<[f64; 3]> {
    assert!(sigma > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let noise = |rng: &mut StdRng| -> f64 {
        // Box–Muller.
        let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.random();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    };
    (0..n)
        .map(|i| {
            let center = if i % 2 == 0 { 0.25 } else { 0.75 };
            [
                (center + sigma * noise(&mut rng)).clamp(0.0, 1.0),
                (center + sigma * noise(&mut rng)).clamp(0.0, 1.0),
                (center + sigma * noise(&mut rng)).clamp(0.0, 1.0),
            ]
        })
        .collect()
}

fn gaussian_direction(rng: &mut StdRng) -> [f64; 3] {
    loop {
        let mut v = [0.0f64; 3];
        for x in &mut v {
            let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
            let u2: f64 = rng.random();
            *x = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
        let norm = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
        if norm > 1e-12 {
            return [v[0] / norm, v[1] / norm, v[2] / norm];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Octree;

    #[test]
    fn all_generators_fill_the_unit_cube() {
        for pts in [
            uniform_cube(500, 1),
            uniform_ball(500, 2),
            sphere_surface(500, 0.01, 3),
            plummer(500, 0.05, 4),
            two_clusters(500, 0.03, 5),
        ] {
            assert_eq!(pts.len(), 500);
            for p in &pts {
                for d in 0..3 {
                    assert!((0.0..=1.0).contains(&p[d]), "{p:?} escapes the cube");
                }
            }
        }
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(uniform_cube(64, 9), uniform_cube(64, 9));
        assert_eq!(plummer(64, 0.1, 9), plummer(64, 0.1, 9));
        assert_ne!(uniform_cube(64, 9), uniform_cube(64, 10));
    }

    #[test]
    fn ball_points_stay_in_the_ball() {
        for p in uniform_ball(2000, 7) {
            let r2 = (p[0] - 0.5).powi(2) + (p[1] - 0.5).powi(2) + (p[2] - 0.5).powi(2);
            assert!(r2 <= 0.25 + 1e-12);
        }
    }

    #[test]
    fn sphere_points_sit_on_the_shell() {
        for p in sphere_surface(2000, 0.01, 8) {
            let r = ((p[0] - 0.5).powi(2) + (p[1] - 0.5).powi(2) + (p[2] - 0.5).powi(2)).sqrt();
            assert!(r <= 0.5 + 1e-12 && r >= 0.5 * 0.99 - 1e-12, "r = {r}");
        }
    }

    #[test]
    fn plummer_is_centrally_concentrated() {
        let pts = plummer(4000, 0.05, 11);
        let inner = pts
            .iter()
            .filter(|p| {
                (p[0] - 0.5).powi(2) + (p[1] - 0.5).powi(2) + (p[2] - 0.5).powi(2) < 0.1 * 0.1
            })
            .count();
        assert!(inner > pts.len() / 2, "most mass inside 2a: {inner}/{}", pts.len());
    }

    #[test]
    fn nonuniform_distributions_build_deeper_trees_than_uniform() {
        let n = 4000;
        let q = 32;
        let depth = |pts: &[[f64; 3]]| Octree::build(pts, &vec![1.0; pts.len()], q).depth();
        let uniform_depth = depth(&uniform_cube(n, 21));
        let plummer_depth = depth(&plummer(n, 0.02, 21));
        let sphere_depth = depth(&sphere_surface(n, 0.005, 21));
        assert!(plummer_depth > uniform_depth, "{plummer_depth} vs {uniform_depth}");
        assert!(sphere_depth >= uniform_depth);
    }

    #[test]
    fn fmm_stays_accurate_on_every_distribution() {
        use crate::accuracy::{direct_sum, relative_l2_error};
        use crate::evaluator::{FmmEvaluator, FmmPlan, M2lMethod};
        for (name, pts) in [
            ("ball", uniform_ball(900, 31)),
            ("sphere", sphere_surface(900, 0.01, 32)),
            ("plummer", plummer(900, 0.05, 33)),
            ("clusters", two_clusters(900, 0.02, 34)),
        ] {
            let den: Vec<f64> = (0..pts.len()).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
            let plan = FmmPlan::new(&pts, &den, 32, 4, M2lMethod::Fft);
            let fmm = FmmEvaluator::new().evaluate(&plan);
            let reference = direct_sum(&pts, &den);
            let err = relative_l2_error(&fmm, &reference);
            assert!(err < 1e-2, "{name}: relative L2 error {err}");
        }
    }

    #[test]
    #[should_panic(expected = "thickness")]
    fn bad_thickness_rejected() {
        let _ = sphere_surface(10, 1.5, 0);
    }
}
