//! KIFMM translation operators.
//!
//! All operators are dense matrices built from kernel evaluations between
//! surface point sets, with the check-to-equivalent inversions done by a
//! truncated-SVD pseudo-inverse (the kernel matrices are severely
//! ill-conditioned by design — that is what gives the scheme its spectral
//! accuracy).
//!
//! * `UC2E(l)` — upward check-to-equivalent solve at level `l`.
//! * `DC2E(l)` — downward check-to-equivalent solve.
//! * `M2M(l, octant)` — child upward-equivalent → parent
//!   upward-equivalent (child at level `l`).
//! * `L2L(l, octant)` — parent downward-equivalent → child
//!   downward-equivalent contribution (child at level `l`).
//! * `M2L(l, offset)` — source upward-equivalent → target downward-check
//!   potentials for a same-level box offset.
//!
//! Operators depend only on (level, relative geometry), never on absolute
//! centers, so one cache serves the whole tree.  The cache is built
//! single-threaded at plan time and read-only during the rayon-parallel
//! evaluation.

use crate::kernel::Kernel;
use crate::surface::{surface_points, RADIUS_INNER, RADIUS_OUTER};
use crate::tree::Octree;
use dvfs_linalg::{pseudo_inverse, Matrix};
use std::collections::HashMap;

/// Relative box offset at a common level, in units of the box width.
pub type Offset = (i32, i32, i32);

/// The operator cache for one (kernel, tree, order) triple.
pub struct OperatorCache {
    /// Surface order (nodes per cube edge).
    pub p: usize,
    uc2e: HashMap<u8, Matrix>,
    dc2e: HashMap<u8, Matrix>,
    m2m: HashMap<(u8, usize), Matrix>,
    l2l: HashMap<(u8, usize), Matrix>,
    m2l: HashMap<(u8, Offset), Matrix>,
}

/// Relative SVD truncation for the check→equivalent solves.
const PINV_RTOL: f64 = 1e-12;

impl OperatorCache {
    /// Builds every operator the tree's lists will need, including the
    /// dense M2L matrices.
    pub fn build<K: Kernel>(kernel: &K, tree: &Octree, p: usize) -> Self {
        Self::build_for_method(kernel, tree, p, true)
    }

    /// Builds the tree-pass operators, and the dense M2L set only when
    /// `include_m2l` is set — FFT-method plans never touch the dense
    /// matrices, and for large trees they dominate both the precompute
    /// time and the memory footprint (hundreds of MB at p = 8).
    pub fn build_for_method<K: Kernel>(
        kernel: &K,
        tree: &Octree,
        p: usize,
        include_m2l: bool,
    ) -> Self {
        let mut cache = OperatorCache {
            p,
            uc2e: HashMap::new(),
            dc2e: HashMap::new(),
            m2m: HashMap::new(),
            l2l: HashMap::new(),
            m2l: HashMap::new(),
        };
        let root_hw = tree.nodes[0].half_width;
        let depth = tree.depth();
        for level in 0..=depth {
            let hw = root_hw / (1u64 << level) as f64;
            cache.uc2e.insert(level, Self::make_uc2e(kernel, p, hw));
            cache.dc2e.insert(level, Self::make_dc2e(kernel, p, hw));
            if level > 0 {
                let parent_uc2e = cache.uc2e[&(level - 1)].clone();
                let child_dc2e = cache.dc2e[&level].clone();
                for octant in 0..8 {
                    cache.m2m.insert(
                        (level, octant),
                        Self::make_m2m(kernel, p, hw, octant, &parent_uc2e),
                    );
                    cache.l2l.insert(
                        (level, octant),
                        Self::make_l2l(kernel, p, hw, octant, &child_dc2e),
                    );
                }
            }
        }
        // M2L operators for every (level, offset) the V lists realize.
        if !include_m2l {
            return cache;
        }
        let lists = crate::lists::InteractionLists::build(tree);
        for (ti, vl) in lists.v.iter().enumerate() {
            let tid = tree.nodes[ti].id;
            for &si in vl {
                let sid = tree.nodes[si].id;
                let off = (
                    sid.x as i32 - tid.x as i32,
                    sid.y as i32 - tid.y as i32,
                    sid.z as i32 - tid.z as i32,
                );
                let hw = root_hw / (1u64 << tid.level) as f64;
                cache
                    .m2l
                    .entry((tid.level, off))
                    .or_insert_with(|| Self::make_m2l(kernel, p, hw, off));
            }
        }
        cache
    }

    fn make_uc2e<K: Kernel>(kernel: &K, p: usize, hw: f64) -> Matrix {
        let equiv = surface_points(p, [0.0; 3], hw, RADIUS_INNER);
        let check = surface_points(p, [0.0; 3], hw, RADIUS_OUTER);
        pseudo_inverse(&kernel.matrix(&check, &equiv), PINV_RTOL).expect("uc2e pinv")
    }

    fn make_dc2e<K: Kernel>(kernel: &K, p: usize, hw: f64) -> Matrix {
        let equiv = surface_points(p, [0.0; 3], hw, RADIUS_OUTER);
        let check = surface_points(p, [0.0; 3], hw, RADIUS_INNER);
        pseudo_inverse(&kernel.matrix(&check, &equiv), PINV_RTOL).expect("dc2e pinv")
    }

    /// Child (level `l`, octant) upward-equivalent → parent
    /// upward-equivalent: evaluate child equiv densities on the parent's
    /// check surface, then solve the parent's UC2E system.
    fn make_m2m<K: Kernel>(
        kernel: &K,
        p: usize,
        child_hw: f64,
        octant: usize,
        parent_uc2e: &Matrix,
    ) -> Matrix {
        let parent_hw = child_hw * 2.0;
        let child_center = [
            child_hw * if octant & 1 != 0 { 1.0 } else { -1.0 },
            child_hw * if octant & 2 != 0 { 1.0 } else { -1.0 },
            child_hw * if octant & 4 != 0 { 1.0 } else { -1.0 },
        ];
        let child_equiv = surface_points(p, child_center, child_hw, RADIUS_INNER);
        let parent_check = surface_points(p, [0.0; 3], parent_hw, RADIUS_OUTER);
        let k = kernel.matrix(&parent_check, &child_equiv);
        parent_uc2e.matmul(&k).expect("m2m shapes")
    }

    /// Parent downward-equivalent → child downward-equivalent
    /// contribution: evaluate parent equiv on the child's check surface,
    /// then solve the child's DC2E system.
    fn make_l2l<K: Kernel>(
        kernel: &K,
        p: usize,
        child_hw: f64,
        octant: usize,
        child_dc2e: &Matrix,
    ) -> Matrix {
        let parent_hw = child_hw * 2.0;
        let child_center = [
            child_hw * if octant & 1 != 0 { 1.0 } else { -1.0 },
            child_hw * if octant & 2 != 0 { 1.0 } else { -1.0 },
            child_hw * if octant & 4 != 0 { 1.0 } else { -1.0 },
        ];
        let parent_equiv = surface_points(p, [0.0; 3], parent_hw, RADIUS_OUTER);
        let child_check = surface_points(p, child_center, child_hw, RADIUS_INNER);
        let k = kernel.matrix(&child_check, &parent_equiv);
        child_dc2e.matmul(&k).expect("l2l shapes")
    }

    /// Source upward-equivalent → target downward-check potentials for a
    /// same-level offset (in box widths).
    fn make_m2l<K: Kernel>(kernel: &K, p: usize, hw: f64, off: Offset) -> Matrix {
        let width = 2.0 * hw;
        let src_center = [off.0 as f64 * width, off.1 as f64 * width, off.2 as f64 * width];
        let src_equiv = surface_points(p, src_center, hw, RADIUS_INNER);
        let tgt_check = surface_points(p, [0.0; 3], hw, RADIUS_INNER);
        kernel.matrix(&tgt_check, &src_equiv)
    }

    /// The upward check-to-equivalent solve at `level`.
    pub fn uc2e(&self, level: u8) -> &Matrix {
        &self.uc2e[&level]
    }

    /// The downward check-to-equivalent solve at `level`.
    pub fn dc2e(&self, level: u8) -> &Matrix {
        &self.dc2e[&level]
    }

    /// M2M for a child at `child_level` in `octant`.
    pub fn m2m(&self, child_level: u8, octant: usize) -> &Matrix {
        &self.m2m[&(child_level, octant)]
    }

    /// L2L for a child at `child_level` in `octant`.
    pub fn l2l(&self, child_level: u8, octant: usize) -> &Matrix {
        &self.l2l[&(child_level, octant)]
    }

    /// Dense M2L for a same-level offset, if realized by the tree.
    pub fn m2l(&self, level: u8, off: Offset) -> Option<&Matrix> {
        self.m2l.get(&(level, off))
    }

    /// Number of distinct (level, offset) M2L operators cached.
    pub fn m2l_count(&self) -> usize {
        self.m2l.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::LaplaceKernel;
    use compat::rng::StdRng;

    const P: usize = 6;

    fn random_sources(center: [f64; 3], hw: f64, n: usize, seed: u64) -> (Vec<[f64; 3]>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = (0..n)
            .map(|_| {
                [
                    center[0] + hw * (2.0 * rng.random::<f64>() - 1.0),
                    center[1] + hw * (2.0 * rng.random::<f64>() - 1.0),
                    center[2] + hw * (2.0 * rng.random::<f64>() - 1.0),
                ]
            })
            .collect();
        let den = (0..n).map(|_| 2.0 * rng.random::<f64>() - 1.0).collect();
        (pts, den)
    }

    /// Builds an upward-equivalent density for sources in a box at the
    /// origin and returns (equiv points, equiv densities).
    fn p2m(
        kernel: &LaplaceKernel,
        hw: f64,
        sources: &[[f64; 3]],
        densities: &[f64],
    ) -> (Vec<[f64; 3]>, Vec<f64>) {
        let check = surface_points(P, [0.0; 3], hw, RADIUS_OUTER);
        let equiv_pts = surface_points(P, [0.0; 3], hw, RADIUS_INNER);
        let mut check_pot = vec![0.0; check.len()];
        kernel.p2p(&check, sources, densities, &mut check_pot);
        let uc2e = OperatorCache::make_uc2e(kernel, P, hw);
        let equiv_den = uc2e.matvec(&check_pot);
        (equiv_pts, equiv_den)
    }

    #[test]
    fn p2m_reproduces_far_field() {
        let kernel = LaplaceKernel;
        let hw = 0.5;
        let (src, den) = random_sources([0.0; 3], hw, 40, 1);
        let (equiv_pts, equiv_den) = p2m(&kernel, hw, &src, &den);
        // Evaluate at far targets (non-adjacent box distance: 2 widths).
        for t in [[4.0 * hw, 0.0, 0.0], [3.0 * hw, 3.0 * hw, 0.0], [0.0, 0.0, -5.0 * hw]] {
            let mut direct = [0.0];
            kernel.p2p(&[t], &src, &den, &mut direct);
            let mut approx = [0.0];
            kernel.p2p(&[t], &equiv_pts, &equiv_den, &mut approx);
            let rel = (direct[0] - approx[0]).abs() / direct[0].abs().max(1e-30);
            assert!(rel < 1e-4, "P2M far-field error {rel} at {t:?}");
        }
    }

    #[test]
    fn m2m_preserves_far_field() {
        let kernel = LaplaceKernel;
        let child_hw = 0.25;
        let octant = 5; // child center (+, -, +) relative to parent
        let child_center = [child_hw, -child_hw, child_hw];
        let (src, den) = random_sources(child_center, child_hw, 30, 2);
        // Child multipole (centered at child).
        let child_check = surface_points(P, child_center, child_hw, RADIUS_OUTER);
        let mut ccheck = vec![0.0; child_check.len()];
        kernel.p2p(&child_check, &src, &den, &mut ccheck);
        let uc2e_child = OperatorCache::make_uc2e(&kernel, P, child_hw);
        let child_equiv_den = uc2e_child.matvec(&ccheck);
        // Parent multipole via M2M.
        let parent_uc2e = OperatorCache::make_uc2e(&kernel, P, 2.0 * child_hw);
        let m2m = OperatorCache::make_m2m(&kernel, P, child_hw, octant, &parent_uc2e);
        let parent_equiv_den = m2m.matvec(&child_equiv_den);
        let parent_equiv_pts = surface_points(P, [0.0; 3], 2.0 * child_hw, RADIUS_INNER);
        // Compare at a point well separated from the parent.
        let t = [2.0, 1.0, -0.5];
        let mut direct = [0.0];
        kernel.p2p(&[t], &src, &den, &mut direct);
        let mut approx = [0.0];
        kernel.p2p(&[t], &parent_equiv_pts, &parent_equiv_den, &mut approx);
        let rel = (direct[0] - approx[0]).abs() / direct[0].abs();
        assert!(rel < 1e-6, "M2M error {rel}");
    }

    #[test]
    fn m2l_plus_dc2e_reproduces_interior_field() {
        let kernel = LaplaceKernel;
        let hw = 0.5;
        let off: Offset = (3, 1, -2); // V-list style separation
        let width = 2.0 * hw;
        let src_center = [3.0 * width, width, -2.0 * width];
        let (src, den) = random_sources(src_center, hw, 35, 3);
        // Source multipole, shifted: reuse p2m by translating sources.
        let src_local: Vec<[f64; 3]> = src
            .iter()
            .map(|p| [p[0] - src_center[0], p[1] - src_center[1], p[2] - src_center[2]])
            .collect();
        let (_, equiv_den) = p2m(&kernel, hw, &src_local, &den);
        // M2L into the target box at the origin.
        let m2l = OperatorCache::make_m2l(&kernel, P, hw, off);
        let check_pot = m2l.matvec(&equiv_den);
        // Solve for the local (downward-equivalent) density.
        let dc2e = OperatorCache::make_dc2e(&kernel, P, hw);
        let local_den = dc2e.matvec(&check_pot);
        let local_pts = surface_points(P, [0.0; 3], hw, RADIUS_OUTER);
        // Evaluate inside the target box.
        for t in [[0.0; 3], [0.3 * hw, -0.2 * hw, 0.4 * hw], [0.9 * hw, 0.9 * hw, -0.9 * hw]] {
            let mut direct = [0.0];
            kernel.p2p(&[t], &src, &den, &mut direct);
            let mut approx = [0.0];
            kernel.p2p(&[t], &local_pts, &local_den, &mut approx);
            let rel = (direct[0] - approx[0]).abs() / direct[0].abs();
            assert!(rel < 1e-5, "M2L interior error {rel} at {t:?}");
        }
    }

    #[test]
    fn l2l_preserves_interior_field() {
        let kernel = LaplaceKernel;
        let parent_hw = 0.5;
        // Far sources, represented as a parent local expansion.
        let (src, den) = random_sources([5.0, 0.0, 0.0], 0.3, 30, 4);
        let parent_check = surface_points(P, [0.0; 3], parent_hw, RADIUS_INNER);
        let mut pcheck = vec![0.0; parent_check.len()];
        kernel.p2p(&parent_check, &src, &den, &mut pcheck);
        let dc2e_parent = OperatorCache::make_dc2e(&kernel, P, parent_hw);
        let parent_local = dc2e_parent.matvec(&pcheck);
        // Push to a child via L2L.
        let octant = 3;
        let child_hw = parent_hw / 2.0;
        let child_center = [
            child_hw * if octant & 1 != 0 { 1.0 } else { -1.0 },
            child_hw * if octant & 2 != 0 { 1.0 } else { -1.0 },
            child_hw * if octant & 4 != 0 { 1.0 } else { -1.0 },
        ];
        let child_dc2e = OperatorCache::make_dc2e(&kernel, P, child_hw);
        let l2l = OperatorCache::make_l2l(&kernel, P, child_hw, octant, &child_dc2e);
        let child_local = l2l.matvec(&parent_local);
        let child_equiv_pts = surface_points(P, child_center, child_hw, RADIUS_OUTER);
        // Evaluate inside the child.
        let t = [child_center[0] + 0.3 * child_hw, child_center[1], child_center[2]];
        let mut direct = [0.0];
        kernel.p2p(&[t], &src, &den, &mut direct);
        let mut approx = [0.0];
        kernel.p2p(&[t], &child_equiv_pts, &child_local, &mut approx);
        let rel = (direct[0] - approx[0]).abs() / direct[0].abs();
        assert!(rel < 1e-5, "L2L interior error {rel}");
    }

    #[test]
    fn cache_covers_tree_needs() {
        use crate::tree::Octree;
        let mut rng = StdRng::seed_from_u64(5);
        let pts: Vec<[f64; 3]> =
            (0..2000).map(|_| [rng.random(), rng.random(), rng.random()]).collect();
        let tree = Octree::build(&pts, &vec![1.0; 2000], 50);
        let cache = OperatorCache::build(&LaplaceKernel, &tree, 4);
        for level in 0..=tree.depth() {
            let _ = cache.uc2e(level);
            let _ = cache.dc2e(level);
        }
        let lists = crate::lists::InteractionLists::build(&tree);
        for (ti, vl) in lists.v.iter().enumerate() {
            let tid = tree.nodes[ti].id;
            for &si in vl {
                let sid = tree.nodes[si].id;
                let off = (
                    sid.x as i32 - tid.x as i32,
                    sid.y as i32 - tid.y as i32,
                    sid.z as i32 - tid.z as i32,
                );
                assert!(cache.m2l(tid.level, off).is_some(), "missing M2L {off:?}");
            }
        }
        assert!(cache.m2l_count() > 0);
    }
}
