//! Interaction kernels and direct (P2P) evaluation.
//!
//! The proxy application uses the single-layer Laplace kernel
//! `K(x, y) = 1/(4π‖x−y‖)`, which models electrostatic or gravitational
//! interactions.  The KIFMM is kernel-independent: everything downstream
//! only requires the ability to *evaluate* the kernel, which is the trait
//! boundary here.

use crate::p2p_opt::{p2p_soa_grad_view, p2p_soa_view, SoaView};
use dvfs_linalg::Matrix;

/// A translation-invariant interaction kernel.
pub trait Kernel: Sync {
    /// Evaluates `K(target, source)`.
    fn eval(&self, target: [f64; 3], source: [f64; 3]) -> f64;

    /// Gradient of `K` with respect to the *target*, `∇ₓK(x, y)`.
    ///
    /// The default central-difference fallback keeps the trait easy to
    /// implement for exploratory kernels; production kernels should
    /// override with the analytic form.
    fn eval_grad(&self, target: [f64; 3], source: [f64; 3]) -> [f64; 3] {
        let h = 1e-6;
        let mut g = [0.0; 3];
        for d in 0..3 {
            let mut plus = target;
            let mut minus = target;
            plus[d] += h;
            minus[d] -= h;
            g[d] = (self.eval(plus, source) - self.eval(minus, source)) / (2.0 * h);
        }
        g
    }

    /// Accumulates gradients: `out[i] += Σ_j ∇ₓK(targets[i], sources[j]) ·
    /// densities[j]` (for the Laplace kernel, `−out` is the field/force
    /// per unit density).
    fn p2p_grad(
        &self,
        targets: &[[f64; 3]],
        sources: &[[f64; 3]],
        densities: &[f64],
        out: &mut [[f64; 3]],
    ) {
        debug_assert_eq!(sources.len(), densities.len());
        debug_assert_eq!(targets.len(), out.len());
        for (i, &t) in targets.iter().enumerate() {
            let mut acc = [0.0; 3];
            for (j, &s) in sources.iter().enumerate() {
                let g = self.eval_grad(t, s);
                acc[0] += g[0] * densities[j];
                acc[1] += g[1] * densities[j];
                acc[2] += g[2] * densities[j];
            }
            out[i][0] += acc[0];
            out[i][1] += acc[1];
            out[i][2] += acc[2];
        }
    }

    /// Dense kernel matrix `K[i][j] = K(targets[i], sources[j])`.
    fn matrix(&self, targets: &[[f64; 3]], sources: &[[f64; 3]]) -> Matrix {
        Matrix::from_fn(targets.len(), sources.len(), |i, j| self.eval(targets[i], sources[j]))
    }

    /// Accumulates potentials: `out[i] += Σ_j K(targets[i], sources[j]) ·
    /// densities[j]`.
    fn p2p(&self, targets: &[[f64; 3]], sources: &[[f64; 3]], densities: &[f64], out: &mut [f64]) {
        debug_assert_eq!(sources.len(), densities.len());
        debug_assert_eq!(targets.len(), out.len());
        for (i, &t) in targets.iter().enumerate() {
            let mut acc = 0.0;
            for (j, &s) in sources.iter().enumerate() {
                acc += self.eval(t, s) * densities[j];
            }
            out[i] += acc;
        }
    }

    /// [`Kernel::p2p`] over a structure-of-arrays source range — the
    /// evaluator's near-field fast path.
    ///
    /// The default walks `eval` in the same order as `p2p`, so a kernel
    /// that overrides neither gets bit-identical results from both entry
    /// points; kernels with a tuned SoA inner loop (Laplace) override
    /// this with the lane-unrolled form ([`crate::p2p_opt`]): a
    /// `[f64; LANES]` accumulator per target fed by whole lane groups
    /// plus a scalar tail, reduced in a fixed order so the override is
    /// deterministic for any caller blocking.
    fn p2p_soa(&self, targets: &[[f64; 3]], sources: SoaView<'_>, out: &mut [f64]) {
        debug_assert_eq!(targets.len(), out.len());
        for (i, &t) in targets.iter().enumerate() {
            let mut acc = 0.0;
            for j in 0..sources.len() {
                let s = [sources.x[j], sources.y[j], sources.z[j]];
                acc += self.eval(t, s) * sources.q[j];
            }
            out[i] += acc;
        }
    }

    /// [`Kernel::p2p_grad`] over a structure-of-arrays source range.
    ///
    /// Same contract as [`Kernel::p2p_soa`]: the default matches the
    /// naive gradient loop exactly; Laplace overrides with the unrolled
    /// branch-free kernel.
    fn p2p_grad_soa(&self, targets: &[[f64; 3]], sources: SoaView<'_>, out: &mut [[f64; 3]]) {
        debug_assert_eq!(targets.len(), out.len());
        for (i, &t) in targets.iter().enumerate() {
            let mut acc = [0.0; 3];
            for j in 0..sources.len() {
                let s = [sources.x[j], sources.y[j], sources.z[j]];
                let g = self.eval_grad(t, s);
                acc[0] += g[0] * sources.q[j];
                acc[1] += g[1] * sources.q[j];
                acc[2] += g[2] * sources.q[j];
            }
            out[i][0] += acc[0];
            out[i][1] += acc[1];
            out[i][2] += acc[2];
        }
    }
}

/// The single-layer Laplace kernel `1/(4π r)`, with the self-interaction
/// (`r = 0`) defined as zero.
#[derive(Debug, Clone, Copy, Default)]
pub struct LaplaceKernel;

impl Kernel for LaplaceKernel {
    #[inline]
    fn eval(&self, target: [f64; 3], source: [f64; 3]) -> f64 {
        let dx = target[0] - source[0];
        let dy = target[1] - source[1];
        let dz = target[2] - source[2];
        let r2 = dx * dx + dy * dy + dz * dz;
        if r2 == 0.0 {
            0.0
        } else {
            1.0 / (4.0 * std::f64::consts::PI * r2.sqrt())
        }
    }

    #[inline]
    fn eval_grad(&self, target: [f64; 3], source: [f64; 3]) -> [f64; 3] {
        // ∇ₓ 1/(4π|x−y|) = −(x−y)/(4π|x−y|³).
        let dx = target[0] - source[0];
        let dy = target[1] - source[1];
        let dz = target[2] - source[2];
        let r2 = dx * dx + dy * dy + dz * dz;
        if r2 == 0.0 {
            return [0.0; 3];
        }
        let inv = -1.0 / (4.0 * std::f64::consts::PI * r2 * r2.sqrt());
        [dx * inv, dy * inv, dz * inv]
    }

    fn p2p_soa(&self, targets: &[[f64; 3]], sources: SoaView<'_>, out: &mut [f64]) {
        p2p_soa_view(targets, sources, out);
    }

    fn p2p_grad_soa(&self, targets: &[[f64; 3]], sources: SoaView<'_>, out: &mut [[f64; 3]]) {
        p2p_soa_grad_view(targets, sources, out);
    }
}

/// The Yukawa (screened-Coulomb / modified-Helmholtz) kernel
/// `e^{-λr}/(4π r)`.
///
/// This is the "kernel-independent" part of KIFMM made concrete: the
/// scheme only ever *evaluates* the kernel, so swapping the physics —
/// here, exponential screening as in plasmas or electrolytes — requires
/// no new expansions, just this struct.
#[derive(Debug, Clone, Copy)]
pub struct YukawaKernel {
    /// Screening parameter λ (inverse screening length).
    pub lambda: f64,
}

impl YukawaKernel {
    /// Creates a Yukawa kernel with screening parameter `lambda >= 0`.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda >= 0.0 && lambda.is_finite(), "screening must be non-negative");
        YukawaKernel { lambda }
    }
}

impl Kernel for YukawaKernel {
    #[inline]
    fn eval(&self, target: [f64; 3], source: [f64; 3]) -> f64 {
        let dx = target[0] - source[0];
        let dy = target[1] - source[1];
        let dz = target[2] - source[2];
        let r2 = dx * dx + dy * dy + dz * dz;
        if r2 == 0.0 {
            0.0
        } else {
            let r = r2.sqrt();
            (-self.lambda * r).exp() / (4.0 * std::f64::consts::PI * r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_distance_value() {
        let k = LaplaceKernel;
        let v = k.eval([0.0; 3], [1.0, 0.0, 0.0]);
        assert!((v - 1.0 / (4.0 * std::f64::consts::PI)).abs() < 1e-15);
    }

    #[test]
    fn self_interaction_is_zero() {
        let k = LaplaceKernel;
        assert_eq!(k.eval([0.3, 0.4, 0.5], [0.3, 0.4, 0.5]), 0.0);
    }

    #[test]
    fn symmetric_in_arguments() {
        let k = LaplaceKernel;
        let a = [0.1, 0.9, 0.2];
        let b = [0.7, 0.3, 0.8];
        assert_eq!(k.eval(a, b), k.eval(b, a));
    }

    #[test]
    fn decays_with_distance() {
        let k = LaplaceKernel;
        let near = k.eval([0.0; 3], [0.5, 0.0, 0.0]);
        let far = k.eval([0.0; 3], [5.0, 0.0, 0.0]);
        assert!((near / far - 10.0).abs() < 1e-12, "1/r decay");
    }

    #[test]
    fn matrix_matches_eval() {
        let k = LaplaceKernel;
        let t = [[0.0, 0.0, 0.0], [1.0, 1.0, 1.0]];
        let s = [[2.0, 0.0, 0.0], [0.0, 3.0, 0.0], [0.0, 0.0, 4.0]];
        let m = k.matrix(&t, &s);
        assert_eq!(m.shape(), (2, 3));
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(m[(i, j)], k.eval(t[i], s[j]));
            }
        }
    }

    #[test]
    fn yukawa_reduces_to_laplace_at_zero_screening() {
        let y = YukawaKernel::new(0.0);
        let l = LaplaceKernel;
        let a = [0.1, 0.2, 0.3];
        let b = [0.9, 0.5, 0.7];
        assert_eq!(y.eval(a, b), l.eval(a, b));
    }

    #[test]
    fn yukawa_decays_faster_than_laplace() {
        let y = YukawaKernel::new(2.0);
        let l = LaplaceKernel;
        let origin = [0.0; 3];
        let near = [0.5, 0.0, 0.0];
        let far = [5.0, 0.0, 0.0];
        let laplace_ratio = l.eval(origin, near) / l.eval(origin, far);
        let yukawa_ratio = y.eval(origin, near) / y.eval(origin, far);
        assert!(yukawa_ratio > laplace_ratio, "screening accelerates decay");
        assert_eq!(y.eval(origin, origin), 0.0);
    }

    #[test]
    #[should_panic(expected = "screening")]
    fn negative_screening_rejected() {
        let _ = YukawaKernel::new(-1.0);
    }

    #[test]
    fn default_soa_entry_point_matches_p2p_bitwise() {
        // A kernel that overrides neither path (Yukawa) must agree with
        // itself exactly, whichever entry point the evaluator uses.
        use crate::p2p_opt::SoaSources;
        let k = YukawaKernel::new(1.5);
        let t = [[0.1, 0.2, 0.3], [0.9, 0.8, 0.7], [0.5, 0.1, 0.6]];
        let s = [[0.3, 0.3, 0.3], [0.1, 0.2, 0.3], [0.7, 0.2, 0.9], [0.4, 0.6, 0.1]];
        let q = [1.0, -0.5, 0.25, 2.0];
        let soa = SoaSources::from_points(&s, &q);
        let mut aos = vec![0.0; 3];
        k.p2p(&t, &s, &q, &mut aos);
        let mut via_soa = vec![0.0; 3];
        k.p2p_soa(&t, soa.view(), &mut via_soa);
        assert_eq!(aos, via_soa);
        let mut aos_g = vec![[0.0; 3]; 3];
        k.p2p_grad(&t, &s, &q, &mut aos_g);
        let mut soa_g = vec![[0.0; 3]; 3];
        k.p2p_grad_soa(&t, soa.view(), &mut soa_g);
        assert_eq!(aos_g, soa_g);
    }

    #[test]
    fn p2p_superposition() {
        let k = LaplaceKernel;
        let t = [[0.0; 3]];
        let s = [[1.0, 0.0, 0.0], [0.0, 2.0, 0.0]];
        let mut out = [1.0]; // accumulates on top of existing value
        k.p2p(&t, &s, &[2.0, 4.0], &mut out);
        let expected = 1.0 + 2.0 * k.eval(t[0], s[0]) + 4.0 * k.eval(t[0], s[1]);
        assert!((out[0] - expected).abs() < 1e-15);
    }
}
