//! Morton (Z-order) keys for octree boxes.
//!
//! A box is identified by its refinement level and integer anchor
//! coordinates within that level's `2^level` grid.  The Morton key
//! interleaves the coordinate bits, giving a total order in which
//! siblings are contiguous and each subtree is an interval — the
//! property the tree builder and the list builders rely on.

/// Maximum supported refinement level (3 × 20 bits + level tag fit u64).
pub const MAX_LEVEL: u8 = 20;

/// Spreads the low 20 bits of `x` so consecutive bits land 3 apart.
#[inline]
fn spread(x: u32) -> u64 {
    let mut v = (x as u64) & 0x1F_FFFF; // 21 bits
    v = (v | (v << 32)) & 0x001F_0000_0000_FFFF;
    v = (v | (v << 16)) & 0x001F_0000_FF00_00FF;
    v = (v | (v << 8)) & 0x100F_00F0_0F00_F00F;
    v = (v | (v << 4)) & 0x10C3_0C30_C30C_30C3;
    v = (v | (v << 2)) & 0x1249_2492_4924_9249;
    v
}

/// Inverse of [`spread`].
#[inline]
fn compact(v: u64) -> u32 {
    let mut v = v & 0x1249_2492_4924_9249;
    v = (v | (v >> 2)) & 0x10C3_0C30_C30C_30C3;
    v = (v | (v >> 4)) & 0x100F_00F0_0F00_F00F;
    v = (v | (v >> 8)) & 0x001F_0000_FF00_00FF;
    v = (v | (v >> 16)) & 0x001F_0000_0000_FFFF;
    v = (v | (v >> 32)) & 0x1F_FFFF;
    v as u32
}

/// Encodes `(level, x, y, z)` into a Morton key.
///
/// The interleaved coordinates occupy the low 60 bits; the level is not
/// stored in the key itself (callers pair keys with levels), but anchors
/// are validated against the level's grid.
pub fn encode(level: u8, x: u32, y: u32, z: u32) -> u64 {
    debug_assert!(level <= MAX_LEVEL);
    debug_assert!((x as u64) < (1 << level.max(1)) || level == 0, "anchor outside level grid");
    spread(x) | (spread(y) << 1) | (spread(z) << 2)
}

/// Decodes a Morton key back into `(x, y, z)`.
pub fn decode(key: u64) -> (u32, u32, u32) {
    (compact(key), compact(key >> 1), compact(key >> 2))
}

/// The octant (0–7) a child anchor occupies within its parent.
#[inline]
pub fn octant(x: u32, y: u32, z: u32) -> usize {
    ((x & 1) | ((y & 1) << 1) | ((z & 1) << 2)) as usize
}

/// The octant of point `p` relative to a box `center` — the Morton
/// digit the point contributes at the next refinement level (bit `d`
/// set iff `p[d] >= center[d]`).
///
/// The sequential and parallel tree builders share this single
/// classification function, so a point's bucket is a pure function of
/// `(p, center)` and the two builders can never disagree on it.
#[inline]
pub fn point_octant(p: [f64; 3], center: [f64; 3]) -> usize {
    usize::from(p[0] >= center[0])
        | (usize::from(p[1] >= center[1]) << 1)
        | (usize::from(p[2] >= center[2]) << 2)
}

/// Child anchor for `parent` anchor and `octant`.
#[inline]
pub fn child_anchor(x: u32, y: u32, z: u32, octant: usize) -> (u32, u32, u32) {
    (
        2 * x + (octant & 1) as u32,
        2 * y + ((octant >> 1) & 1) as u32,
        2 * z + ((octant >> 2) & 1) as u32,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        for &(x, y, z) in &[(0, 0, 0), (1, 2, 3), (1023, 511, 255), (0xF_FFFF, 0, 0xF_FFFF)] {
            let key = encode(MAX_LEVEL, x, y, z);
            assert_eq!(decode(key), (x, y, z));
        }
    }

    #[test]
    fn keys_order_siblings_contiguously() {
        // The 8 children of (level 1, anchor (0,0,0) scaled) are keys 0..8.
        let mut keys: Vec<u64> = (0..8)
            .map(|o| {
                let (x, y, z) = child_anchor(0, 0, 0, o);
                encode(1, x, y, z)
            })
            .collect();
        keys.sort_unstable();
        assert_eq!(keys, (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn z_order_is_monotone_in_each_axis() {
        assert!(encode(3, 1, 0, 0) < encode(3, 2, 0, 0));
        assert!(encode(3, 0, 1, 0) < encode(3, 0, 2, 0));
        assert!(encode(3, 0, 0, 1) < encode(3, 0, 0, 2));
    }

    #[test]
    fn octant_and_child_anchor_are_inverse() {
        for o in 0..8 {
            let (x, y, z) = child_anchor(5, 3, 7, o);
            assert_eq!(octant(x, y, z), o);
            assert_eq!((x / 2, y / 2, z / 2), (5, 3, 7));
        }
    }

    #[test]
    fn point_octant_covers_all_octants_and_boundaries() {
        let c = [0.5, 0.5, 0.5];
        for o in 0..8 {
            let p = [
                if o & 1 != 0 { 0.75 } else { 0.25 },
                if o & 2 != 0 { 0.75 } else { 0.25 },
                if o & 4 != 0 { 0.75 } else { 0.25 },
            ];
            assert_eq!(point_octant(p, c), o);
        }
        // A point exactly on a splitting plane belongs to the upper side.
        assert_eq!(point_octant([0.5, 0.25, 0.25], c), 1);
        assert_eq!(point_octant([0.25, 0.5, 0.5], c), 6);
    }

    #[test]
    fn distinct_anchors_distinct_keys() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for x in 0..8 {
            for y in 0..8 {
                for z in 0..8 {
                    assert!(seen.insert(encode(3, x, y, z)));
                }
            }
        }
        assert_eq!(seen.len(), 512);
    }
}
