//! A kernel-independent fast multipole method (KIFMM).
//!
//! This is the proxy application of the paper's Section III/IV: the
//! kernel-independent FMM of Ying, Biros & Zorin for n-body sums
//!
//! ```text
//! f(x_i) = Σ_j K(x_i, y_j) · s(y_j)
//! ```
//!
//! with the single-layer Laplace kernel `K(x, y) = 1/(4π‖x−y‖)`.  The
//! implementation follows the classical structure:
//!
//! * [`morton`] — interleaved box keys.
//! * [`tree`] — an adaptive octree splitting boxes with more than `Q`
//!   points.
//! * [`lists`] — the U, V, W and X interaction lists of each box.
//! * [`kernel`] — the Laplace kernel and direct (P2P) evaluation.
//! * [`surface`] — KIFMM equivalent/check surfaces (regular cube-surface
//!   grids, which is what makes the FFT M2L possible).
//! * [`operators`] — the translation operators (P2M, M2M, M2L, L2L, L2P,
//!   and the W/X shortcuts), built from regularized pseudo-inverses of
//!   kernel matrices.
//! * [`fft_m2l`] — FFT acceleration of the V-list phase: per-offset
//!   kernel spectra turn M2L into circular convolutions, which is what
//!   makes the V list memory-bandwidth-bound (low arithmetic intensity),
//!   in contrast to the compute-bound U list — the intensity dichotomy
//!   the paper's energy analysis revolves around.
//! * [`evaluator`] — the pool-parallel, flat-arena six-phase evaluation
//!   engine (persistent workers, SoA near field; see its module docs).
//! * [`instrument`] — nvprof-style profiling: analytic instruction
//!   counts plus the cache-hierarchy simulator produce the Table III
//!   counters for each phase.
//! * [`accuracy`] — direct-sum reference and error norms.

pub mod accuracy;
pub mod dim2;
pub mod distributions;
pub mod evaluator;
pub mod fft_m2l;
pub mod instrument;
pub mod kernel;
pub mod lists;
pub mod morton;
pub mod operators;
pub mod p2p_opt;
pub mod schedule;
pub mod stats;
pub mod surface;
pub mod tree;

pub use accuracy::{direct_sum, direct_sum_with, relative_l2_error};
pub use evaluator::{EnginePhase, FmmEvaluator, FmmPlan, PhaseObserver, PhaseTimings};
pub use instrument::{profile_plan, CostModel, FmmProfile, PhaseProfile};
pub use kernel::{Kernel, LaplaceKernel, YukawaKernel};
pub use lists::InteractionLists;
pub use p2p_opt::{p2p_soa, p2p_soa_grad, SoaSources, SoaView};
pub use schedule::PhaseSchedule;
pub use stats::TreeStats;
pub use surface::SurfaceTemplate;
pub use tree::{BoxId, Node, Octree};

/// The evaluation phases of the FMM, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Upward: P2M at leaves then M2M up the tree.
    Up,
    /// V-list: far-field translations (FFT M2L).
    V,
    /// U-list: direct near-field interactions (P2P).
    U,
    /// W-list: multipole-to-point shortcuts.
    W,
    /// X-list: point-to-local shortcuts.
    X,
    /// Downward: L2L down the tree then L2P at leaves.
    Down,
}

impl Phase {
    /// All phases in execution order.
    pub const ALL: [Phase; 6] = [Phase::Up, Phase::V, Phase::U, Phase::W, Phase::X, Phase::Down];

    /// Display name used in profiles and figures.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Up => "UP",
            Phase::V => "V",
            Phase::U => "U",
            Phase::W => "W",
            Phase::X => "X",
            Phase::Down => "DOWN",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_phases_as_in_paper() {
        assert_eq!(Phase::ALL.len(), 6);
        assert_eq!(Phase::ALL[0].name(), "UP");
        assert_eq!(Phase::ALL[5].name(), "DOWN");
    }
}
