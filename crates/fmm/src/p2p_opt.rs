//! Optimized direct-interaction (P2P) kernels.
//!
//! The paper's U-list phase is the compute-bound heart of the FMM, and
//! its implementation quality decides whether the phase sits near the
//! roofline (their GPU kernels are "highly tuned").  This module applies
//! the equivalent CPU tuning to the Laplace P2P:
//!
//! * structure-of-arrays source layout (contiguous x/y/z/q streams) so
//!   the compiler can vectorize the inner loop;
//! * a fused inner loop with no branches — the self-interaction guard is
//!   folded into the arithmetic by clamping `r²` away from zero and
//!   multiplying by a 0/1 mask;
//! * explicit array-of-[`LANES`] lane unrolling of the *source* loop:
//!   each target keeps a `[f64; LANES]` accumulator, source `j` lands in
//!   lane `j % LANES`, the vector body walks whole lane groups and a
//!   scalar tail finishes the last `len % LANES` sources in the same
//!   lanes.  Every arithmetic chain is a straight per-lane recurrence,
//!   so the autovectorizer emits packed `sqrt`/`div` instead of scalar
//!   chains.  The final reduction is the fixed pairwise tree of
//!   [`lane_sum`], which makes the result a pure function of the source
//!   order — bitwise reproducible for any target blocking, thread
//!   count, or call-site split (the property tests pin this against a
//!   scalar lane-order reference).
//!
//! [`SoaSources`] holds one SoA copy of an entire (permuted) point set;
//! [`SoaView`] borrows the contiguous range a tree box owns, so the
//! evaluator converts the points *once per plan* instead of once per
//! interaction.  `p2p_soa` computes exactly what the naive kernel
//! computes (tests enforce bitwise-tolerance agreement) and
//! [`p2p_soa_grad`] does the same for the gradient kernel; the
//! `numerics` criterion bench measures the speedup.

/// A structure-of-arrays copy of a source point set.
#[derive(Debug, Clone, Default)]
pub struct SoaSources {
    /// x coordinates.
    pub x: Vec<f64>,
    /// y coordinates.
    pub y: Vec<f64>,
    /// z coordinates.
    pub z: Vec<f64>,
    /// densities.
    pub q: Vec<f64>,
}

impl SoaSources {
    /// Converts an AoS point slice + densities into SoA form.
    pub fn from_points(points: &[[f64; 3]], densities: &[f64]) -> Self {
        assert_eq!(points.len(), densities.len());
        let mut s = SoaSources {
            x: Vec::with_capacity(points.len()),
            y: Vec::with_capacity(points.len()),
            z: Vec::with_capacity(points.len()),
            q: Vec::with_capacity(points.len()),
        };
        for (p, &d) in points.iter().zip(densities) {
            s.x.push(p[0]);
            s.y.push(p[1]);
            s.z.push(p[2]);
            s.q.push(d);
        }
        s
    }

    /// An empty buffer with room for `cap` sources (scratch reuse).
    pub fn with_capacity(cap: usize) -> Self {
        SoaSources {
            x: Vec::with_capacity(cap),
            y: Vec::with_capacity(cap),
            z: Vec::with_capacity(cap),
            q: Vec::with_capacity(cap),
        }
    }

    /// Clears the buffer, keeping its allocations.
    pub fn clear(&mut self) {
        self.x.clear();
        self.y.clear();
        self.z.clear();
        self.q.clear();
    }

    /// Appends one source.
    #[inline]
    pub fn push(&mut self, p: [f64; 3], q: f64) {
        self.x.push(p[0]);
        self.y.push(p[1]);
        self.z.push(p[2]);
        self.q.push(q);
    }

    /// Number of sources.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Borrows the whole set as a view.
    pub fn view(&self) -> SoaView<'_> {
        self.range(0, self.len())
    }

    /// Borrows the contiguous source range `[s, e)` — for the permuted
    /// tree layout this is exactly the points one box owns.
    pub fn range(&self, s: usize, e: usize) -> SoaView<'_> {
        SoaView { x: &self.x[s..e], y: &self.y[s..e], z: &self.z[s..e], q: &self.q[s..e] }
    }
}

/// A borrowed SoA source range (see [`SoaSources::range`]).
#[derive(Debug, Clone, Copy)]
pub struct SoaView<'a> {
    /// x coordinates.
    pub x: &'a [f64],
    /// y coordinates.
    pub y: &'a [f64],
    /// z coordinates.
    pub z: &'a [f64],
    /// densities.
    pub q: &'a [f64],
}

impl SoaView<'_> {
    /// Number of sources.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }
}

const INV_4PI: f64 = 1.0 / (4.0 * std::f64::consts::PI);

/// SIMD lane width of the unrolled kernels: four f64 lanes (one AVX
/// register, two SSE registers).  Source `j` always accumulates into
/// lane `j % LANES`, in the vector body *and* in the scalar tail.
/// (Eight lanes measured *slower* here: the gradient kernel's 3×8
/// accumulators spill, and the divider/sqrt units are the bottleneck
/// anyway.)
pub const LANES: usize = 4;

/// One Laplace potential term, shared verbatim by the vector body and
/// the scalar tail so both produce identical bits for the same source.
#[inline(always)]
fn potential_term(tx: f64, ty: f64, tz: f64, sx: f64, sy: f64, sz: f64, qj: f64) -> f64 {
    let dx = tx - sx;
    let dy = ty - sy;
    let dz = tz - sz;
    let r2 = dx * dx + dy * dy + dz * dz;
    // Branch-free self-interaction guard: mask is 0.0 when r² == 0.
    let mask = if r2 > 0.0 { 1.0 } else { 0.0 };
    let safe = r2 + (1.0 - mask); // 1.0 where r² == 0: no NaN from rsqrt
    mask * qj / safe.sqrt()
}

/// Fixed-order pairwise lane reduction: `(a0 + a1) + (a2 + a3)`.
#[inline(always)]
fn lane_sum(acc: [f64; LANES]) -> f64 {
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// Laplace potential of `sources` at one target: explicit
/// array-of-[`LANES`] lane-unrolled source loop with a scalar tail.
#[inline]
fn potential_at(tx: f64, ty: f64, tz: f64, s: SoaView<'_>) -> f64 {
    let n = s.len();
    let body = n - n % LANES;
    let mut acc = [0.0f64; LANES];
    // `chunks_exact` gives the optimizer length-LANES slices with no
    // per-group bounds checks inside the lane loop.
    let xs = s.x[..body].chunks_exact(LANES);
    let ys = s.y[..body].chunks_exact(LANES);
    let zs = s.z[..body].chunks_exact(LANES);
    let qs = s.q[..body].chunks_exact(LANES);
    for (((sx, sy), sz), sq) in xs.zip(ys).zip(zs).zip(qs) {
        for l in 0..LANES {
            acc[l] += potential_term(tx, ty, tz, sx[l], sy[l], sz[l], sq[l]);
        }
    }
    for j in body..n {
        // Tail sources stay in their home lane `j % LANES == j - body`.
        acc[j - body] += potential_term(tx, ty, tz, s.x[j], s.y[j], s.z[j], s.q[j]);
    }
    lane_sum(acc) * INV_4PI
}

/// Optimized Laplace P2P: `out[i] += Σ_j K(targets[i], sources_j) q_j`.
///
/// Each target owns a `[f64; LANES]` accumulator over the lane-unrolled
/// source loop; the per-target result is independent of target blocking.
pub fn p2p_soa(targets: &[[f64; 3]], sources: &SoaSources, out: &mut [f64]) {
    p2p_soa_view(targets, sources.view(), out);
}

/// [`p2p_soa`] over a borrowed source range.
pub fn p2p_soa_view(targets: &[[f64; 3]], sources: SoaView<'_>, out: &mut [f64]) {
    assert_eq!(targets.len(), out.len());
    for (k, t) in targets.iter().enumerate() {
        out[k] += potential_at(t[0], t[1], t[2], sources);
    }
}

/// One Laplace gradient weight `w = −q·mask/r³` (see [`gradient_at`]),
/// shared verbatim by the vector body and the scalar tail.
#[inline(always)]
fn gradient_term(
    tx: f64,
    ty: f64,
    tz: f64,
    sx: f64,
    sy: f64,
    sz: f64,
    qj: f64,
) -> (f64, f64, f64, f64) {
    let dx = tx - sx;
    let dy = ty - sy;
    let dz = tz - sz;
    let r2 = dx * dx + dy * dy + dz * dz;
    let mask = if r2 > 0.0 { 1.0 } else { 0.0 };
    let safe = r2 + (1.0 - mask);
    // −q/r³ = −q / (r² · r); the mask zeroes the whole contribution.
    let w = -mask * qj / (safe * safe.sqrt());
    (dx, dy, dz, w)
}

/// Laplace gradient of `sources` at one target, lane-unrolled form:
/// `∇ₓ 1/(4π|x−y|) = −(x−y)/(4π|x−y|³)`, zero at `r = 0`.  Keeps one
/// `[f64; LANES]` accumulator per component.
#[inline]
fn gradient_at(tx: f64, ty: f64, tz: f64, s: SoaView<'_>) -> [f64; 3] {
    let n = s.len();
    let body = n - n % LANES;
    let mut gx = [0.0f64; LANES];
    let mut gy = [0.0f64; LANES];
    let mut gz = [0.0f64; LANES];
    let xs = s.x[..body].chunks_exact(LANES);
    let ys = s.y[..body].chunks_exact(LANES);
    let zs = s.z[..body].chunks_exact(LANES);
    let qs = s.q[..body].chunks_exact(LANES);
    for (((sx, sy), sz), sq) in xs.zip(ys).zip(zs).zip(qs) {
        for l in 0..LANES {
            let (dx, dy, dz, w) = gradient_term(tx, ty, tz, sx[l], sy[l], sz[l], sq[l]);
            gx[l] += dx * w;
            gy[l] += dy * w;
            gz[l] += dz * w;
        }
    }
    for j in body..n {
        let l = j - body; // == j % LANES: tail sources keep their lane
        let (dx, dy, dz, w) = gradient_term(tx, ty, tz, s.x[j], s.y[j], s.z[j], s.q[j]);
        gx[l] += dx * w;
        gy[l] += dy * w;
        gz[l] += dz * w;
    }
    [lane_sum(gx) * INV_4PI, lane_sum(gy) * INV_4PI, lane_sum(gz) * INV_4PI]
}

/// Optimized Laplace gradient P2P:
/// `out[i] += Σ_j ∇ₓK(targets[i], sources_j) q_j`, the vectorized
/// counterpart of [`crate::kernel::Kernel::p2p_grad`] for the Laplace
/// kernel (tests enforce bitwise-tolerance agreement with the naive
/// form).
pub fn p2p_soa_grad(targets: &[[f64; 3]], sources: &SoaSources, out: &mut [[f64; 3]]) {
    p2p_soa_grad_view(targets, sources.view(), out);
}

/// [`p2p_soa_grad`] over a borrowed source range.
pub fn p2p_soa_grad_view(targets: &[[f64; 3]], sources: SoaView<'_>, out: &mut [[f64; 3]]) {
    assert_eq!(targets.len(), out.len());
    for (k, t) in targets.iter().enumerate() {
        let g = gradient_at(t[0], t[1], t[2], sources);
        out[k][0] += g[0];
        out[k][1] += g[1];
        out[k][2] += g[2];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Kernel, LaplaceKernel};
    use compat::rng::StdRng;

    fn problem(nt: usize, ns: usize, seed: u64) -> (Vec<[f64; 3]>, Vec<[f64; 3]>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = (0..nt).map(|_| [rng.random(), rng.random(), rng.random()]).collect();
        let s: Vec<[f64; 3]> =
            (0..ns).map(|_| [rng.random(), rng.random(), rng.random()]).collect();
        let q = (0..ns).map(|_| 2.0 * rng.random::<f64>() - 1.0).collect();
        (t, s, q)
    }

    #[test]
    fn matches_naive_kernel_exactly() {
        for (nt, ns) in [(1usize, 1usize), (3, 7), (64, 64), (129, 200)] {
            let (t, s, q) = problem(nt, ns, nt as u64 * 31 + ns as u64);
            let soa = SoaSources::from_points(&s, &q);
            let mut fast = vec![0.0; nt];
            p2p_soa(&t, &soa, &mut fast);
            let mut slow = vec![0.0; nt];
            LaplaceKernel.p2p(&t, &s, &q, &mut slow);
            for (f, n) in fast.iter().zip(&slow) {
                assert!((f - n).abs() <= 1e-13 * (1.0 + n.abs()), "nt={nt} ns={ns}: {f} vs {n}");
            }
        }
    }

    #[test]
    fn grad_matches_naive_kernel_exactly() {
        for (nt, ns) in [(1usize, 1usize), (2, 5), (63, 64), (130, 200)] {
            let (t, s, q) = problem(nt, ns, nt as u64 * 97 + ns as u64 + 1);
            let soa = SoaSources::from_points(&s, &q);
            let mut fast = vec![[0.0; 3]; nt];
            p2p_soa_grad(&t, &soa, &mut fast);
            let mut slow = vec![[0.0; 3]; nt];
            LaplaceKernel.p2p_grad(&t, &s, &q, &mut slow);
            for (i, (f, n)) in fast.iter().zip(&slow).enumerate() {
                for d in 0..3 {
                    assert!(
                        (f[d] - n[d]).abs() <= 1e-12 * (1.0 + n[d].abs()),
                        "nt={nt} ns={ns} target {i} component {d}: {} vs {}",
                        f[d],
                        n[d]
                    );
                }
            }
        }
    }

    #[test]
    fn grad_masks_self_interaction() {
        let pts = [[0.3, 0.3, 0.3], [0.7, 0.7, 0.7], [0.1, 0.9, 0.4]];
        let soa = SoaSources::from_points(&pts, &[5.0, 3.0, -2.0]);
        let mut out = vec![[0.0; 3]; 3];
        p2p_soa_grad(&pts, &soa, &mut out);
        assert!(out.iter().flatten().all(|v| v.is_finite()));
        let mut reference = vec![[0.0; 3]; 3];
        LaplaceKernel.p2p_grad(&pts, &pts, &[5.0, 3.0, -2.0], &mut reference);
        for (a, b) in out.iter().zip(&reference) {
            for d in 0..3 {
                assert!((a[d] - b[d]).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn view_range_equals_subslice_conversion() {
        let (_, s, q) = problem(0, 40, 9);
        let soa = SoaSources::from_points(&s, &q);
        let t = [[0.25, 0.5, 0.75], [0.9, 0.1, 0.2], [0.4, 0.4, 0.6]];
        let mut via_range = vec![0.0; 3];
        p2p_soa_view(&t, soa.range(10, 30), &mut via_range);
        let sub = SoaSources::from_points(&s[10..30], &q[10..30]);
        let mut via_copy = vec![0.0; 3];
        p2p_soa(&t, &sub, &mut via_copy);
        assert_eq!(via_range, via_copy, "a range view is the subset, bit for bit");
    }

    #[test]
    fn self_interaction_masked_without_branch_divergence() {
        // Coincident target/source must contribute zero, not NaN.
        let pts = [[0.3, 0.3, 0.3], [0.7, 0.7, 0.7]];
        let soa = SoaSources::from_points(&pts, &[5.0, 3.0]);
        let mut out = vec![0.0; 2];
        p2p_soa(&pts, &soa, &mut out);
        assert!(out.iter().all(|v| v.is_finite()));
        let k = LaplaceKernel;
        let expected0 = 3.0 * k.eval(pts[0], pts[1]);
        assert!((out[0] - expected0).abs() < 1e-14);
    }

    #[test]
    fn accumulates_on_top_of_existing_values() {
        let (t, s, q) = problem(8, 8, 5);
        let soa = SoaSources::from_points(&s, &q);
        let mut out = vec![1.5; 8];
        p2p_soa(&t, &soa, &mut out);
        let mut reference = vec![0.0; 8];
        LaplaceKernel.p2p(&t, &s, &q, &mut reference);
        for (o, r) in out.iter().zip(&reference) {
            assert!((o - 1.5 - r).abs() < 1e-13);
        }
    }

    #[test]
    fn empty_sources_are_a_noop() {
        let soa = SoaSources::default();
        assert!(soa.is_empty());
        let t = [[0.1, 0.2, 0.3]];
        let mut out = vec![7.0];
        p2p_soa(&t, &soa, &mut out);
        assert_eq!(out[0], 7.0);
        let mut grad = vec![[1.0; 3]];
        p2p_soa_grad(&t, &soa, &mut grad);
        assert_eq!(grad[0], [1.0; 3]);
    }

    use compat::prop::prelude::*;

    /// Scalar emulation of the lane-unrolled potential: walks sources
    /// one at a time, accumulating source `j` into lane `j % LANES`,
    /// then reduces with the same fixed tree.  The kernel must match
    /// this bit for bit regardless of how its vector body and scalar
    /// tail split the source range.
    fn scalar_lane_potential(t: [f64; 3], s: &SoaSources) -> f64 {
        let mut acc = [0.0f64; LANES];
        for j in 0..s.len() {
            acc[j % LANES] += potential_term(t[0], t[1], t[2], s.x[j], s.y[j], s.z[j], s.q[j]);
        }
        lane_sum(acc) * INV_4PI
    }

    /// Scalar emulation of the lane-unrolled gradient (see
    /// [`scalar_lane_potential`]).
    fn scalar_lane_gradient(t: [f64; 3], s: &SoaSources) -> [f64; 3] {
        let mut gx = [0.0f64; LANES];
        let mut gy = [0.0f64; LANES];
        let mut gz = [0.0f64; LANES];
        for j in 0..s.len() {
            let l = j % LANES;
            let (dx, dy, dz, w) = gradient_term(t[0], t[1], t[2], s.x[j], s.y[j], s.z[j], s.q[j]);
            gx[l] += dx * w;
            gy[l] += dy * w;
            gz[l] += dz * w;
        }
        [lane_sum(gx) * INV_4PI, lane_sum(gy) * INV_4PI, lane_sum(gz) * INV_4PI]
    }

    #[test]
    fn tail_lengths_match_scalar_lane_reference_bitwise() {
        // Every source count around the lane width, including every
        // tail residue and the empty set.
        for ns in 0usize..=33 {
            let (t, s, q) = problem(5, ns, 1000 + ns as u64);
            let soa = SoaSources::from_points(&s, &q);
            let mut fast = vec![0.0; t.len()];
            p2p_soa(&t, &soa, &mut fast);
            let mut fast_g = vec![[0.0; 3]; t.len()];
            p2p_soa_grad(&t, &soa, &mut fast_g);
            for (k, tk) in t.iter().enumerate() {
                let want = scalar_lane_potential(*tk, &soa);
                assert_eq!(fast[k].to_bits(), want.to_bits(), "ns={ns} target {k}");
                let want_g = scalar_lane_gradient(*tk, &soa);
                for d in 0..3 {
                    assert_eq!(
                        fast_g[k][d].to_bits(),
                        want_g[d].to_bits(),
                        "ns={ns} target {k} component {d}"
                    );
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn lane_unrolled_kernels_match_scalar_reference_across_threads(
            ns in 1usize..48,
            nt in 1usize..7,
            seed in 0u64..1_000_000,
        ) {
            let (t, s, q) = problem(nt, ns, seed);
            let soa = SoaSources::from_points(&s, &q);
            let mut want = vec![0.0; nt];
            let mut want_g = vec![[0.0; 3]; nt];
            for (k, tk) in t.iter().enumerate() {
                want[k] = scalar_lane_potential(*tk, &soa);
                want_g[k] = scalar_lane_gradient(*tk, &soa);
            }
            // The kernels are single-threaded inner loops; pinning them
            // under every pool size documents that the pool (and any
            // parallel caller chunking) cannot perturb the bits.
            for threads in [1usize, 2, 4, 8] {
                compat::par::set_thread_count(Some(threads));
                let mut fast = vec![0.0; nt];
                p2p_soa(&t, &soa, &mut fast);
                let mut fast_g = vec![[0.0; 3]; nt];
                p2p_soa_grad(&t, &soa, &mut fast_g);
                for k in 0..nt {
                    prop_assert_eq!(
                        fast[k].to_bits(),
                        want[k].to_bits(),
                        "threads={} ns={} target {}",
                        threads,
                        ns,
                        k
                    );
                    for d in 0..3 {
                        prop_assert_eq!(
                            fast_g[k][d].to_bits(),
                            want_g[k][d].to_bits(),
                            "threads={} ns={} target {} component {}",
                            threads,
                            ns,
                            k,
                            d
                        );
                    }
                }
            }
            compat::par::set_thread_count(None);
        }
    }

    #[test]
    fn soa_conversion_preserves_order() {
        let pts = [[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]];
        let soa = SoaSources::from_points(&pts, &[0.5, 0.25]);
        assert_eq!(soa.len(), 2);
        assert_eq!(soa.x, vec![1.0, 4.0]);
        assert_eq!(soa.y, vec![2.0, 5.0]);
        assert_eq!(soa.z, vec![3.0, 6.0]);
        assert_eq!(soa.q, vec![0.5, 0.25]);
    }

    #[test]
    fn push_and_clear_reuse_scratch() {
        let mut soa = SoaSources::with_capacity(4);
        soa.push([1.0, 2.0, 3.0], 0.5);
        soa.push([4.0, 5.0, 6.0], 0.25);
        assert_eq!(soa.len(), 2);
        let from = SoaSources::from_points(&[[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]], &[0.5, 0.25]);
        assert_eq!(soa.x, from.x);
        assert_eq!(soa.q, from.q);
        soa.clear();
        assert!(soa.is_empty());
    }
}
