//! nvprof-style profiling of an FMM plan.
//!
//! The paper reads its FMM's operation counts from hardware counters
//! (Table III) and feeds them to the energy model.  Here the same
//! counters are produced by an instrumentation pass over the plan: it
//! walks every interaction the evaluator would perform, charges analytic
//! instruction costs per inner-loop iteration (the [`CostModel`]
//! constants below document exactly what each iteration costs and why),
//! and classifies every memory access through the cache-hierarchy
//! simulator in the same traversal order the evaluator uses.
//!
//! The pass is *separate from* the numeric evaluator — profiling does not
//! require executing the kernel arithmetic, exactly as nvprof replays
//! kernels to collect counters.  This keeps the hot numeric loops free of
//! instrumentation and lets the paper-scale inputs (N = 262144) be
//! profiled in seconds.
//!
//! Memory-path modeling follows Kepler's actual load paths:
//!
//! * U-phase point data is read through the read-only (`__ldg`) path and
//!   is L1-cacheable ([`gpu_counters::CacheSim::read`]);
//! * V-phase spectra, kernel tableaux and operator matrices are plain
//!   global loads, cached in L2 only
//!   ([`gpu_counters::CacheSim::read_l2_only`]);
//! * the FFT's transpose passes exchange data through shared memory.

use crate::evaluator::{FmmPlan, M2lMethod};
use crate::tree::Octree;
use crate::Phase;
use gpu_counters::{derive_op_vector, CacheSim, CounterEvent, CounterSet};
use tk1_sim::{KernelProfile, OpVector};

/// Analytic per-iteration instruction costs and per-phase utilizations.
///
/// The instruction constants come from counting the operations in the
/// actual inner loops (see `kernel.rs` and `fft_m2l.rs`): one Laplace
/// evaluation is 3 coordinate differences, a fused norm accumulation, a
/// reciprocal square root and the density multiply-accumulate; its
/// integer cost is the source index increment, the four address
/// computations (x/y/z/density), the loop-bound compare/branch and the
/// accumulator indexing of an unrolled-by-4 GPU loop.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// DP FMAs per kernel evaluation.
    pub fma_per_eval: u64,
    /// DP adds per kernel evaluation.
    pub add_per_eval: u64,
    /// DP muls per kernel evaluation (includes the rsqrt iteration).
    pub mul_per_eval: u64,
    /// Integer instructions per kernel evaluation.
    pub int_per_eval: u64,
    /// Integer instructions per target-point loop iteration.
    pub int_per_point: u64,
    /// Integer instructions per dense-matvec element (index + address).
    pub int_per_matvec_elem: u64,
    /// DP FMAs per radix-2 butterfly (complex multiply).
    pub fma_per_butterfly: u64,
    /// DP adds per butterfly (complex add/sub).
    pub add_per_butterfly: u64,
    /// Integer instructions per butterfly.
    pub int_per_butterfly: u64,
    /// DP FMAs per spectral multiply-accumulate grid element.
    pub fma_per_mac: u64,
    /// DP adds per spectral MAC element.
    pub add_per_mac: u64,
    /// Integer instructions per spectral MAC element.
    pub int_per_mac: u64,
    /// Achieved utilization per phase (fraction of the bound resource's
    /// peak; the paper measures the FMM below a quarter of peak IPC).
    pub utilization: [f64; 6],
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            fma_per_eval: 6,
            add_per_eval: 2,
            mul_per_eval: 3,
            int_per_eval: 16,
            int_per_point: 12,
            int_per_matvec_elem: 2,
            fma_per_butterfly: 4,
            add_per_butterfly: 4,
            int_per_butterfly: 10,
            fma_per_mac: 4,
            add_per_mac: 4,
            int_per_mac: 8,
            // Order: UP, V, U, W, X, DOWN (Phase::ALL order).
            utilization: [0.30, 0.35, 0.25, 0.30, 0.30, 0.30],
        }
    }
}

impl CostModel {
    fn utilization_of(&self, phase: Phase) -> f64 {
        let idx = Phase::ALL.iter().position(|&p| p == phase).expect("known phase");
        self.utilization[idx]
    }
}

/// The profile of one FMM phase.
#[derive(Debug)]
pub struct PhaseProfile {
    /// Which phase.
    pub phase: Phase,
    /// The raw Table III counters collected for the phase.
    pub counters: CounterSet,
    /// The phase's achieved utilization.
    pub utilization: f64,
    /// Kernel launches the phase performs (one per level for the tree
    /// passes).
    pub launches: u32,
}

impl PhaseProfile {
    /// The energy model's feature vector, derived from the counters by
    /// the Section IV-A rules.
    pub fn ops(&self) -> OpVector {
        derive_op_vector(&self.counters)
    }

    /// The phase as an executable kernel descriptor for the simulator.
    pub fn kernel_profile(&self, tag: &str) -> KernelProfile {
        KernelProfile::new(format!("fmm-{}-{}", self.phase.name(), tag), self.ops())
            .with_utilization(self.utilization)
            .with_launches(self.launches)
    }
}

/// The profile of a full FMM evaluation.
#[derive(Debug)]
pub struct FmmProfile {
    /// Problem size.
    pub n: usize,
    /// Points-per-box parameter.
    pub q: usize,
    /// Per-phase profiles, in [`Phase::ALL`] order.
    pub phases: Vec<PhaseProfile>,
}

impl FmmProfile {
    /// The profile of one phase.
    pub fn phase(&self, phase: Phase) -> &PhaseProfile {
        self.phases.iter().find(|p| p.phase == phase).expect("all phases profiled")
    }

    /// Total operation counts across all phases.
    pub fn total_ops(&self) -> OpVector {
        let mut total = OpVector::zero();
        for p in &self.phases {
            total.accumulate(&p.ops());
        }
        total
    }

    /// Executable kernel descriptors for every phase.
    pub fn kernels(&self) -> Vec<KernelProfile> {
        let tag = format!("N{}-Q{}", self.n, self.q);
        self.phases.iter().map(|p| p.kernel_profile(&tag)).collect()
    }
}

// Synthetic address-space bases for the cache simulator.
const POINTS_BASE: u64 = 0x1000_0000;
const POTENTIALS_BASE: u64 = 0x3000_0000;
const UP_EQUIV_BASE: u64 = 0x5000_0000;
const DOWN_EQUIV_BASE: u64 = 0x6000_0000;
const DOWN_CHECK_BASE: u64 = 0x7000_0000;
const SPECTRA_BASE: u64 = 0x0009_0000_0000;
const TABLEAU_BASE: u64 = 0x000B_0000_0000;
const OPERATOR_BASE: u64 = 0x000D_0000_0000;

/// Bytes per stored point (x, y, z, density — four doubles).
const POINT_BYTES: u64 = 32;
/// GPU warp width.
const WARP: u64 = 32;

/// Profiles `plan` under `cost`, producing per-phase counters.
pub fn profile_plan<K: crate::kernel::Kernel>(plan: &FmmPlan<K>, cost: &CostModel) -> FmmProfile {
    let tree = &plan.tree;
    let ns = plan.ns() as u64;
    let depth = tree.depth() as u32;
    let mut cache = CacheSim::tegra_k1();
    let mut phases = Vec::new();

    for phase in Phase::ALL {
        cache.flush();
        let counters = CounterSet::new();
        match phase {
            Phase::Up => profile_up(plan, cost, &mut cache, &counters, ns),
            Phase::V => profile_v(plan, cost, &mut cache, &counters, ns),
            Phase::U => profile_u(plan, cost, &mut cache, &counters),
            Phase::W => profile_w(plan, cost, &mut cache, &counters, ns),
            Phase::X => profile_x(plan, cost, &mut cache, &counters, ns),
            Phase::Down => profile_down(plan, cost, &mut cache, &counters, ns),
        }
        let launches = match phase {
            Phase::Up | Phase::Down => depth + 1,
            Phase::V => depth.max(2) - 1,
            _ => 1,
        };
        phases.push(PhaseProfile {
            phase,
            counters,
            utilization: cost.utilization_of(phase),
            launches,
        });
    }

    FmmProfile { n: tree.points.len(), q: tree.max_leaf_points, phases }
}

/// Charges `evals` kernel evaluations plus `points` target-loop
/// iterations of instruction cost.
fn charge_evals(c: &CounterSet, cost: &CostModel, evals: u64, points: u64) {
    c.add(CounterEvent::flops_dp_fma, evals * cost.fma_per_eval);
    c.add(CounterEvent::flops_dp_add, evals * cost.add_per_eval);
    c.add(CounterEvent::flops_dp_mul, evals * cost.mul_per_eval);
    c.add(CounterEvent::inst_integer, evals * cost.int_per_eval + points * cost.int_per_point);
}

/// Charges an `rows x cols` dense matvec.
fn charge_matvec(c: &CounterSet, cost: &CostModel, rows: u64, cols: u64) {
    let elems = rows * cols;
    c.add(CounterEvent::flops_dp_fma, elems);
    c.add(CounterEvent::inst_integer, elems * cost.int_per_matvec_elem);
}

fn point_region(tree: &Octree, ni: usize) -> (u64, usize) {
    let (s, e) = tree.nodes[ni].point_range;
    (POINTS_BASE + s as u64 * POINT_BYTES, (e - s) * POINT_BYTES as usize)
}

fn profile_up<K: crate::kernel::Kernel>(
    plan: &FmmPlan<K>,
    cost: &CostModel,
    cache: &mut CacheSim,
    c: &CounterSet,
    ns: u64,
) {
    let tree = &plan.tree;
    for level in (0..tree.levels.len()).rev() {
        for &ni in &tree.levels[level] {
            let node = &tree.nodes[ni];
            let lvl = node.id.level;
            if node.is_leaf() {
                let np = node.num_points() as u64;
                charge_evals(c, cost, ns * np, np);
                let (addr, bytes) = point_region(tree, ni);
                cache.read(addr, bytes, c);
                charge_matvec(c, cost, ns, ns);
                cache.read_l2_only(
                    OPERATOR_BASE + lvl as u64 * 0x0100_0000,
                    (ns * ns * 8) as usize,
                    c,
                );
            } else {
                for child in node.children.iter().flatten() {
                    charge_matvec(c, cost, ns, ns);
                    let octant = tree.nodes[*child].id.octant() as u64;
                    cache.read_l2_only(
                        OPERATOR_BASE + 0x1000_0000 + (lvl as u64 * 8 + octant) * 0x0040_0000,
                        (ns * ns * 8) as usize,
                        c,
                    );
                    cache.read_l2_only(
                        UP_EQUIV_BASE + *child as u64 * ns * 8,
                        (ns * 8) as usize,
                        c,
                    );
                }
            }
            cache.write(UP_EQUIV_BASE + ni as u64 * ns * 8, (ns * 8) as usize, c);
        }
    }
}

fn profile_v<K: crate::kernel::Kernel>(
    plan: &FmmPlan<K>,
    cost: &CostModel,
    cache: &mut CacheSim,
    c: &CounterSet,
    ns: u64,
) {
    let tree = &plan.tree;
    match plan.method {
        M2lMethod::Fft => {
            let fft = plan.fft.as_ref().expect("fft plan");
            let grid = fft.grid_len() as u64;
            let m = fft.m as u64;
            // 3 axis passes of m² independent length-m transforms.
            let butterflies_per_transform =
                3 * m * m * (m / 2) * (64 - (m - 1).leading_zeros() as u64);
            let shared_tx_per_transform = 3 * grid * 16 / 128;
            // Forward transforms: once per box appearing as a V source.
            let mut is_source = vec![false; tree.nodes.len()];
            for vl in &plan.lists.v {
                for &s in vl {
                    is_source[s] = true;
                }
            }
            let mut spectrum_index = std::collections::HashMap::new();
            for (ni, &src) in is_source.iter().enumerate() {
                if !src {
                    continue;
                }
                charge_fft(c, cost, butterflies_per_transform, shared_tx_per_transform);
                cache.read_l2_only(UP_EQUIV_BASE + ni as u64 * ns * 8, (ns * 8) as usize, c);
                cache.write(SPECTRA_BASE + ni as u64 * grid * 16, (grid * 16) as usize, c);
            }
            // Translations, blocked by parent as the real GPU kernel
            // blocks them: each source spectrum and each kernel tableau
            // is staged into shared memory *once* per parent block
            // (global, L2-cached reads), then the per-pair MAC inner loop
            // streams it from shared memory — so SM transactions scale
            // with pairs while off-chip traffic scales with unique
            // (parent, source) combinations.
            for level in 0..tree.levels.len() {
                for &pi in &tree.levels[level] {
                    let parent = &tree.nodes[pi];
                    if parent.children.iter().all(|ch| ch.is_none()) {
                        continue;
                    }
                    // Stage the union of the children's V sources.
                    let mut union_sources: Vec<usize> = Vec::new();
                    let mut union_offsets: Vec<u64> = Vec::new();
                    for child in parent.children.iter().flatten() {
                        let tid = tree.nodes[*child].id;
                        for &si in &plan.lists.v[*child] {
                            union_sources.push(si);
                            let sid = tree.nodes[si].id;
                            let off = (
                                sid.x as i32 - tid.x as i32,
                                sid.y as i32 - tid.y as i32,
                                sid.z as i32 - tid.z as i32,
                            );
                            let next = spectrum_index.len() as u64;
                            let kidx = *spectrum_index.entry((tid.level, off)).or_insert(next);
                            union_offsets.push(kidx);
                        }
                    }
                    union_sources.sort_unstable();
                    union_sources.dedup();
                    union_offsets.sort_unstable();
                    union_offsets.dedup();
                    for &si in &union_sources {
                        cache.read_l2_only(
                            SPECTRA_BASE + si as u64 * grid * 16,
                            (grid * 16) as usize,
                            c,
                        );
                    }
                    for &kidx in &union_offsets {
                        cache.read_l2_only(
                            TABLEAU_BASE + kidx * grid * 16,
                            (grid * 16) as usize,
                            c,
                        );
                    }
                    // Per-pair spectral MACs out of shared memory.
                    for child in parent.children.iter().flatten() {
                        let ti = *child;
                        if plan.lists.v[ti].is_empty() {
                            continue;
                        }
                        let pairs = plan.lists.v[ti].len() as u64;
                        c.add(CounterEvent::flops_dp_fma, pairs * grid * cost.fma_per_mac);
                        c.add(CounterEvent::flops_dp_add, pairs * grid * cost.add_per_mac);
                        c.add(CounterEvent::inst_integer, pairs * grid * cost.int_per_mac);
                        c.add(CounterEvent::l1_shared_load_transactions, pairs * grid * 16 / 128);
                        // Inverse transform + check-surface extraction.
                        charge_fft(c, cost, butterflies_per_transform, shared_tx_per_transform);
                        cache.write(DOWN_CHECK_BASE + ti as u64 * ns * 8, (ns * 8) as usize, c);
                    }
                }
            }
        }
        M2lMethod::Dense => {
            for (ti, vl) in plan.lists.v.iter().enumerate() {
                if vl.is_empty() {
                    continue;
                }
                let tid = tree.nodes[ti].id;
                for &si in vl {
                    let sid = tree.nodes[si].id;
                    charge_matvec(c, cost, ns, ns);
                    // Distinct matrix per offset: hash the offset into an
                    // operator slot.
                    let off_key = ((sid.x as i64 - tid.x as i64 + 3)
                        + 7 * (sid.y as i64 - tid.y as i64 + 3)
                        + 49 * (sid.z as i64 - tid.z as i64 + 3))
                        as u64
                        + 343 * tid.level as u64;
                    cache.read_l2_only(
                        OPERATOR_BASE + 0x4000_0000 + off_key * ns * ns * 8,
                        (ns * ns * 8) as usize,
                        c,
                    );
                    cache.read_l2_only(UP_EQUIV_BASE + si as u64 * ns * 8, (ns * 8) as usize, c);
                }
                cache.write(DOWN_CHECK_BASE + ti as u64 * ns * 8, (ns * 8) as usize, c);
            }
        }
    }
}

fn charge_fft(c: &CounterSet, cost: &CostModel, butterflies: u64, shared_tx: u64) {
    c.add(CounterEvent::flops_dp_fma, butterflies * cost.fma_per_butterfly);
    c.add(CounterEvent::flops_dp_add, butterflies * cost.add_per_butterfly);
    c.add(CounterEvent::inst_integer, butterflies * cost.int_per_butterfly);
    c.add(CounterEvent::l1_shared_load_transactions, shared_tx);
    c.add(CounterEvent::l1_shared_store_transactions, shared_tx);
}

fn profile_u<K: crate::kernel::Kernel>(
    plan: &FmmPlan<K>,
    cost: &CostModel,
    cache: &mut CacheSim,
    c: &CounterSet,
) {
    let tree = &plan.tree;
    for li in tree.leaves() {
        let nt = tree.nodes[li].num_points() as u64;
        let warps = nt.div_ceil(WARP);
        for &ai in &plan.lists.u[li] {
            let np = tree.nodes[ai].num_points() as u64;
            charge_evals(c, cost, nt * np, nt);
            // Each warp streams the source box through the read-only
            // (L1-cached) path.
            let (addr, bytes) = point_region(tree, ai);
            for _ in 0..warps {
                cache.read(addr, bytes, c);
            }
        }
        // Target coordinates and the potential write-back.
        let (taddr, tbytes) = point_region(tree, li);
        cache.read(taddr, tbytes, c);
        let (s, _) = tree.nodes[li].point_range;
        cache.write(POTENTIALS_BASE + s as u64 * 8, (nt * 8) as usize, c);
    }
}

fn profile_w<K: crate::kernel::Kernel>(
    plan: &FmmPlan<K>,
    cost: &CostModel,
    cache: &mut CacheSim,
    c: &CounterSet,
    ns: u64,
) {
    let tree = &plan.tree;
    for li in tree.leaves() {
        if plan.lists.w[li].is_empty() {
            continue;
        }
        let nt = tree.nodes[li].num_points() as u64;
        for &wi in &plan.lists.w[li] {
            charge_evals(c, cost, nt * ns, nt);
            cache.read_l2_only(UP_EQUIV_BASE + wi as u64 * ns * 8, (ns * 8) as usize, c);
        }
        let (s, _) = tree.nodes[li].point_range;
        cache.write(POTENTIALS_BASE + s as u64 * 8, (nt * 8) as usize, c);
    }
}

fn profile_x<K: crate::kernel::Kernel>(
    plan: &FmmPlan<K>,
    cost: &CostModel,
    cache: &mut CacheSim,
    c: &CounterSet,
    ns: u64,
) {
    let tree = &plan.tree;
    for (bi, xl) in plan.lists.x.iter().enumerate() {
        if xl.is_empty() {
            continue;
        }
        for &ci in xl {
            let np = tree.nodes[ci].num_points() as u64;
            charge_evals(c, cost, ns * np, ns);
            let (addr, bytes) = point_region(tree, ci);
            cache.read(addr, bytes, c);
        }
        cache.write(DOWN_CHECK_BASE + bi as u64 * ns * 8, (ns * 8) as usize, c);
    }
}

fn profile_down<K: crate::kernel::Kernel>(
    plan: &FmmPlan<K>,
    cost: &CostModel,
    cache: &mut CacheSim,
    c: &CounterSet,
    ns: u64,
) {
    let tree = &plan.tree;
    for level in 0..tree.levels.len() {
        for &ni in &tree.levels[level] {
            let node = &tree.nodes[ni];
            let lvl = node.id.level;
            // DC2E solve.
            charge_matvec(c, cost, ns, ns);
            cache.read_l2_only(DOWN_CHECK_BASE + ni as u64 * ns * 8, (ns * 8) as usize, c);
            cache.read_l2_only(
                OPERATOR_BASE + 0x2000_0000 + lvl as u64 * 0x0100_0000,
                (ns * ns * 8) as usize,
                c,
            );
            if node.parent.is_some() {
                // L2L from the parent.
                charge_matvec(c, cost, ns, ns);
                let octant = node.id.octant() as u64;
                cache.read_l2_only(
                    OPERATOR_BASE + 0x3000_0000 + (lvl as u64 * 8 + octant) * 0x0040_0000,
                    (ns * ns * 8) as usize,
                    c,
                );
            }
            cache.write(DOWN_EQUIV_BASE + ni as u64 * ns * 8, (ns * 8) as usize, c);
            if node.is_leaf() {
                // L2P.
                let nt = node.num_points() as u64;
                charge_evals(c, cost, nt * ns, nt);
                let (taddr, tbytes) = point_region(tree, ni);
                cache.read(taddr, tbytes, c);
                let (s, _) = node.point_range;
                cache.write(POTENTIALS_BASE + s as u64 * 8, (nt * 8) as usize, c);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compat::rng::StdRng;
    use tk1_sim::OpClass;

    fn plan(n: usize, q: usize, seed: u64) -> FmmPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts: Vec<[f64; 3]> =
            (0..n).map(|_| [rng.random(), rng.random(), rng.random()]).collect();
        let den: Vec<f64> = (0..n).map(|_| rng.random::<f64>() - 0.5).collect();
        FmmPlan::new(&pts, &den, q, 4, M2lMethod::Fft)
    }

    #[test]
    fn profile_covers_all_phases() {
        let p = plan(4000, 64, 1);
        let prof = profile_plan(&p, &CostModel::default());
        assert_eq!(prof.phases.len(), 6);
        for phase in Phase::ALL {
            let _ = prof.phase(phase);
        }
        assert_eq!(prof.n, 4000);
        assert_eq!(prof.q, 64);
    }

    #[test]
    fn u_phase_eval_count_matches_pair_sum() {
        let p = plan(3000, 50, 2);
        let prof = profile_plan(&p, &CostModel::default());
        let cost = CostModel::default();
        // Expected FMA count: Σ over leaves, U-pairs of nt·ns evals.
        let mut evals = 0u64;
        for li in p.tree.leaves() {
            let nt = p.tree.nodes[li].num_points() as u64;
            for &ai in &p.lists.u[li] {
                evals += nt * p.tree.nodes[ai].num_points() as u64;
            }
        }
        let fma = prof.phase(Phase::U).counters.get(CounterEvent::flops_dp_fma);
        assert_eq!(fma, evals * cost.fma_per_eval);
    }

    #[test]
    fn integer_share_of_instructions_near_sixty_percent() {
        // The paper's Section IV-C(a) observation.
        let p = plan(8000, 64, 3);
        let prof = profile_plan(&p, &CostModel::default());
        let ops = prof.total_ops();
        let int_share = ops.get(OpClass::Int) / ops.total_compute();
        assert!(
            (0.45..0.70).contains(&int_share),
            "integer instruction share {int_share:.2} should be near 60%"
        );
    }

    #[test]
    fn dram_is_minority_of_accesses() {
        // Section IV-C(b): DRAM ≈ 13% of accesses.
        let p = plan(8000, 64, 4);
        let prof = profile_plan(&p, &CostModel::default());
        let ops = prof.total_ops();
        let dram_share = ops.get(OpClass::Dram) / ops.total_memory_ops();
        assert!(
            dram_share < 0.35,
            "DRAM share of accesses {dram_share:.2} should be a small minority"
        );
        assert!(dram_share > 0.005, "but not negligible: {dram_share:.4}");
    }

    #[test]
    fn u_phase_is_compute_bound_v_phase_less_intense() {
        let p = plan(8000, 64, 5);
        let prof = profile_plan(&p, &CostModel::default());
        let u_ops = prof.phase(Phase::U).ops();
        let v_ops = prof.phase(Phase::V).ops();
        // Arithmetic intensity (flops per byte of off-chip traffic).
        let intensity = |o: &OpVector| {
            o.total_flops() / (o.bytes(OpClass::Dram) + o.bytes(OpClass::L2)).max(1.0)
        };
        assert!(
            intensity(&u_ops) > 4.0 * intensity(&v_ops),
            "U intensity {} ≫ V intensity {}",
            intensity(&u_ops),
            intensity(&v_ops)
        );
    }

    #[test]
    fn kernels_are_executable_descriptors() {
        let p = plan(2000, 40, 6);
        let prof = profile_plan(&p, &CostModel::default());
        let kernels = prof.kernels();
        assert_eq!(kernels.len(), 6);
        for k in &kernels {
            assert!(k.utilization > 0.0 && k.utilization <= 1.0);
            assert!(k.launches >= 1);
        }
        // Executing them on the simulator produces sane times.
        let mut dev = tk1_sim::Device::new(1);
        let total: f64 = kernels.iter().map(|k| dev.execute(k).duration_s).sum();
        assert!(total > 0.0 && total.is_finite());
    }

    #[test]
    fn larger_q_shifts_work_toward_u_phase() {
        // The paper's tuning knob: larger Q = more direct (U) work, fewer
        // tree levels, less V work.
        let cost = CostModel::default();
        let small_q = profile_plan(&plan(8000, 32, 7), &cost);
        let large_q = profile_plan(&plan(8000, 256, 7), &cost);
        let u_flops = |p: &FmmProfile| p.phase(Phase::U).ops().total_flops();
        let v_flops = |p: &FmmProfile| p.phase(Phase::V).ops().total_flops();
        assert!(u_flops(&large_q) > u_flops(&small_q));
        let ratio_small = u_flops(&small_q) / v_flops(&small_q).max(1.0);
        let ratio_large = u_flops(&large_q) / v_flops(&large_q).max(1.0);
        assert!(ratio_large > ratio_small, "{ratio_large} vs {ratio_small}");
    }

    #[test]
    fn profile_is_deterministic() {
        let p = plan(3000, 64, 8);
        let a = profile_plan(&p, &CostModel::default());
        let b = profile_plan(&p, &CostModel::default());
        for (pa, pb) in a.phases.iter().zip(&b.phases) {
            assert_eq!(pa.counters.snapshot(), pb.counters.snapshot());
        }
    }
}
