//! KIFMM equivalent and check surfaces.
//!
//! The kernel-independent FMM represents far fields by single-layer
//! densities on cube surfaces around each box.  Surface points are the
//! boundary nodes of a regular `p × p × p` lattice — a *regular grid*,
//! which is precisely what lets the V-list M2L operator become a
//! convolution (see [`crate::fft_m2l`]).
//!
//! Radius conventions (in units of the box half-width), following the
//! standard KIFMM parameterization:
//!
//! * upward equivalent surface: `1.05` (just outside the box);
//! * upward check surface: `2.95` (just inside the far-field boundary);
//! * downward check surface: `1.05`;
//! * downward equivalent surface: `2.95`.
//!
//! These are exactly the margins that keep every U/V/W/X interaction on
//! the correct side of the relevant surface.

/// Upward-equivalent / downward-check surface radius (× half-width).
pub const RADIUS_INNER: f64 = 1.05;
/// Upward-check / downward-equivalent surface radius (× half-width).
pub const RADIUS_OUTER: f64 = 2.95;

/// Number of surface points for `p` nodes per cube edge.
pub fn surface_point_count(p: usize) -> usize {
    debug_assert!(p >= 2);
    p * p * p - (p - 2) * (p - 2) * (p - 2)
}

/// The boundary nodes of a `p³` lattice spanning the cube
/// `[center - r, center + r]³` where `r = radius_factor × half_width`.
///
/// Points are returned in lattice order: all `(i, j, k)` with at least
/// one index on the boundary, `i` slowest — an order [`crate::fft_m2l`]
/// depends on (it maps surface points back to lattice coordinates).
pub fn surface_points(
    p: usize,
    center: [f64; 3],
    half_width: f64,
    radius_factor: f64,
) -> Vec<[f64; 3]> {
    assert!(p >= 2, "need at least 2 nodes per edge");
    let r = radius_factor * half_width;
    let step = 2.0 * r / (p - 1) as f64;
    let mut out = Vec::with_capacity(surface_point_count(p));
    for i in 0..p {
        for j in 0..p {
            for k in 0..p {
                if i == 0 || i == p - 1 || j == 0 || j == p - 1 || k == 0 || k == p - 1 {
                    out.push([
                        center[0] - r + step * i as f64,
                        center[1] - r + step * j as f64,
                        center[2] - r + step * k as f64,
                    ]);
                }
            }
        }
    }
    out
}

/// A unit surface-point template, cached once per `(p, radius_factor)`
/// and scaled per box.
///
/// [`surface_points`] re-derives the full lattice geometry (three nested
/// loops plus a boundary test per lattice cell) on every call; the
/// evaluator used to pay that per node per phase.  The template stores
/// the surface points of the *unit* box (`center = 0`,
/// `half_width = 1`) once, after which a box's surface is the affine map
/// `center + half_width · unit` — a streaming multiply-add over exactly
/// `ns` points.
#[derive(Debug, Clone)]
pub struct SurfaceTemplate {
    /// Surface order.
    p: usize,
    /// Radius factor baked into the unit points.
    radius_factor: f64,
    /// Surface points of the unit box.
    unit: Vec<[f64; 3]>,
}

impl SurfaceTemplate {
    /// Builds the template for surface order `p` and `radius_factor`.
    pub fn new(p: usize, radius_factor: f64) -> Self {
        SurfaceTemplate { p, radius_factor, unit: surface_points(p, [0.0; 3], 1.0, radius_factor) }
    }

    /// Number of surface points.
    pub fn len(&self) -> usize {
        self.unit.len()
    }

    /// True when the template is empty (never for `p >= 2`).
    pub fn is_empty(&self) -> bool {
        self.unit.is_empty()
    }

    /// The surface order this template was built for.
    pub fn order(&self) -> usize {
        self.p
    }

    /// The radius factor this template was built for.
    pub fn radius_factor(&self) -> f64 {
        self.radius_factor
    }

    /// Writes the surface points of the box `(center, half_width)` into
    /// `out` (cleared first, allocation reused).
    pub fn scale_into(&self, center: [f64; 3], half_width: f64, out: &mut Vec<[f64; 3]>) {
        out.clear();
        out.reserve(self.unit.len());
        for u in &self.unit {
            out.push([
                center[0] + half_width * u[0],
                center[1] + half_width * u[1],
                center[2] + half_width * u[2],
            ]);
        }
    }
}

/// Lattice coordinates `(i, j, k)` of each surface point, in the same
/// order as [`surface_points`].
pub fn surface_lattice_coords(p: usize) -> Vec<(usize, usize, usize)> {
    let mut out = Vec::with_capacity(surface_point_count(p));
    for i in 0..p {
        for j in 0..p {
            for k in 0..p {
                if i == 0 || i == p - 1 || j == 0 || j == p - 1 || k == 0 || k == p - 1 {
                    out.push((i, j, k));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_count_formula() {
        assert_eq!(surface_point_count(2), 8);
        assert_eq!(surface_point_count(4), 56);
        assert_eq!(surface_point_count(6), 152);
        for p in 2..8 {
            assert_eq!(surface_points(p, [0.0; 3], 1.0, 1.0).len(), surface_point_count(p));
        }
    }

    #[test]
    fn points_lie_on_cube_surface() {
        let pts = surface_points(5, [1.0, 2.0, 3.0], 0.5, RADIUS_INNER);
        let r = 0.5 * RADIUS_INNER;
        for p in &pts {
            let d = [(p[0] - 1.0).abs(), (p[1] - 2.0).abs(), (p[2] - 3.0).abs()];
            let max = d.iter().cloned().fold(0.0f64, f64::max);
            assert!((max - r).abs() < 1e-12, "on the cube boundary");
            assert!(d.iter().all(|&x| x <= r + 1e-12));
        }
    }

    #[test]
    fn lattice_coords_align_with_points() {
        let p = 4;
        let pts = surface_points(p, [0.0; 3], 1.0, 1.0);
        let coords = surface_lattice_coords(p);
        assert_eq!(pts.len(), coords.len());
        let step = 2.0 / 3.0;
        for (pt, &(i, j, k)) in pts.iter().zip(&coords) {
            assert!((pt[0] - (-1.0 + step * i as f64)).abs() < 1e-12);
            assert!((pt[1] - (-1.0 + step * j as f64)).abs() < 1e-12);
            assert!((pt[2] - (-1.0 + step * k as f64)).abs() < 1e-12);
        }
    }

    #[test]
    fn surfaces_nest_correctly() {
        // Inner surface strictly inside outer surface for any box.
        let inner = surface_points(4, [0.0; 3], 1.0, RADIUS_INNER);
        let outer_r = RADIUS_OUTER;
        for p in &inner {
            let max = p.iter().map(|x| x.abs()).fold(0.0f64, f64::max);
            assert!(max < outer_r);
        }
        assert!(RADIUS_INNER > 1.0, "equivalent surface is outside the box itself");
        assert!(RADIUS_OUTER < 3.0, "check surface inside the far-field boundary");
    }

    #[test]
    fn distinct_points() {
        let pts = surface_points(4, [0.0; 3], 1.0, 1.0);
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                assert_ne!(pts[i], pts[j]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn degenerate_order_rejected() {
        let _ = surface_points(1, [0.0; 3], 1.0, 1.0);
    }
}
