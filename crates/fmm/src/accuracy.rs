//! Direct-sum reference and error norms.

use crate::kernel::{Kernel, LaplaceKernel};
use compat::par::ParSliceExt;

/// The O(N²) reference: `f(x_i) = Σ_j K(x_i, y_j) s(y_j)` with sources =
/// targets (self-interaction excluded by the kernel's `r = 0` rule).
pub fn direct_sum(points: &[[f64; 3]], densities: &[f64]) -> Vec<f64> {
    direct_sum_with(&LaplaceKernel, points, densities)
}

/// [`direct_sum`] for an arbitrary kernel.
pub fn direct_sum_with<K: Kernel>(kernel: &K, points: &[[f64; 3]], densities: &[f64]) -> Vec<f64> {
    assert_eq!(points.len(), densities.len());
    points
        .par_iter()
        .map(|&t| {
            let mut acc = 0.0;
            for (j, &s) in points.iter().enumerate() {
                acc += kernel.eval(t, s) * densities[j];
            }
            acc
        })
        .collect()
}

/// Relative L2 error `‖a − b‖₂ / ‖b‖₂` (`b` is the reference).
pub fn relative_l2_error(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let mut num = 0.0;
    let mut den = 0.0;
    for (x, y) in a.iter().zip(b) {
        num += (x - y) * (x - y);
        den += y * y;
    }
    if den == 0.0 {
        if num == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (num / den).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_body_potential() {
        let pts = [[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]];
        let den = [3.0, 5.0];
        let pot = direct_sum(&pts, &den);
        let k = 1.0 / (4.0 * std::f64::consts::PI);
        assert!((pot[0] - 5.0 * k).abs() < 1e-15);
        assert!((pot[1] - 3.0 * k).abs() < 1e-15);
    }

    #[test]
    fn self_interaction_excluded() {
        let pot = direct_sum(&[[0.5, 0.5, 0.5]], &[7.0]);
        assert_eq!(pot[0], 0.0);
    }

    #[test]
    fn error_norm_basics() {
        assert_eq!(relative_l2_error(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((relative_l2_error(&[1.1, 2.0], &[1.0, 2.0]) - 0.1 / 5.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(relative_l2_error(&[0.0], &[0.0]), 0.0);
        assert!(relative_l2_error(&[1.0], &[0.0]).is_infinite());
    }
}
