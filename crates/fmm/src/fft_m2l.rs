//! FFT-accelerated M2L (the V-list phase).
//!
//! Because the KIFMM's equivalent/check surface points are the boundary
//! nodes of a regular `p³` lattice, the M2L operator for a same-level box
//! offset `t` is a discrete convolution: the check potential at target
//! node `g_i` is `Σ_j K(g_i − g_j − c(t)) · q_j`, and `g_i − g_j` ranges
//! over a `(2p−1)³` difference lattice.  Embedding densities in an
//! `m = 2p` cube and precomputing one kernel tableau spectrum per unique
//! offset turns every translation into a pointwise spectral
//! multiply-accumulate, with one forward FFT per source box and one
//! inverse FFT per target box.
//!
//! This is the paper's "the V list approximates interactions with far
//! neighbors through FFTs and vector additions" — an intrinsically
//! low-arithmetic-intensity, bandwidth-bound computation, in contrast to
//! the compute-bound U list.

use crate::kernel::Kernel;
use crate::operators::Offset;
use crate::surface::{surface_lattice_coords, RADIUS_INNER};
use crate::tree::Octree;
use dvfs_fft::{fft3_inplace, ifft3_inplace, Complex, FftPlan, Spectrum3};
use std::collections::HashMap;

/// Precomputed FFT M2L state for one (kernel, tree, order) triple.
pub struct FftM2l {
    /// Surface order.
    pub p: usize,
    /// Convolution grid edge (`2p`).
    pub m: usize,
    plan: FftPlan,
    coords: Vec<(usize, usize, usize)>,
    spectra: HashMap<(u8, Offset), Spectrum3>,
}

impl FftM2l {
    /// Builds kernel-tableau spectra for every (level, offset) realized
    /// by the tree's V lists.
    pub fn build<K: Kernel>(kernel: &K, tree: &Octree, p: usize) -> Self {
        assert!(p.is_power_of_two() && p >= 2, "surface order must be a power of two");
        let m = 2 * p;
        let plan = FftPlan::new(m).expect("m = 2p is a power of two");
        let coords = surface_lattice_coords(p);
        let mut spectra = HashMap::new();
        let root_hw = tree.nodes[0].half_width;
        let lists = crate::lists::InteractionLists::build(tree);
        for (ti, vl) in lists.v.iter().enumerate() {
            let tid = tree.nodes[ti].id;
            for &si in vl {
                let sid = tree.nodes[si].id;
                let off = (
                    sid.x as i32 - tid.x as i32,
                    sid.y as i32 - tid.y as i32,
                    sid.z as i32 - tid.z as i32,
                );
                spectra.entry((tid.level, off)).or_insert_with(|| {
                    let hw = root_hw / (1u64 << tid.level) as f64;
                    let tableau = Self::kernel_tableau(kernel, p, m, hw, off);
                    Spectrum3::new(&tableau, m, &plan).expect("tableau spectrum")
                });
            }
        }
        FftM2l { p, m, plan, coords, spectra }
    }

    /// The circular kernel tableau for one offset: `T[d] = K(d·s − c)`
    /// where `d` spans `[−(p−1), p−1]³`, `s` is the surface lattice
    /// spacing, and `c` is the source-box center offset.
    fn kernel_tableau<K: Kernel>(
        kernel: &K,
        p: usize,
        m: usize,
        hw: f64,
        off: Offset,
    ) -> Vec<Complex> {
        let spacing = 2.0 * RADIUS_INNER * hw / (p - 1) as f64;
        let width = 2.0 * hw;
        let c = [off.0 as f64 * width, off.1 as f64 * width, off.2 as f64 * width];
        let mut tableau = vec![Complex::ZERO; m * m * m];
        let range = (p as i64 - 1).max(0);
        for dx in -range..=range {
            for dy in -range..=range {
                for dz in -range..=range {
                    let x = [
                        dx as f64 * spacing - c[0],
                        dy as f64 * spacing - c[1],
                        dz as f64 * spacing - c[2],
                    ];
                    let v = kernel.eval(x, [0.0; 3]);
                    let ix = ((dx + m as i64) % m as i64) as usize;
                    let iy = ((dy + m as i64) % m as i64) as usize;
                    let iz = ((dz + m as i64) % m as i64) as usize;
                    tableau[ix * m * m + iy * m + iz] = Complex::real(v);
                }
            }
        }
        tableau
    }

    /// Grid cells per cube (`m³`).
    pub fn grid_len(&self) -> usize {
        self.m * self.m * self.m
    }

    /// Number of precomputed spectra.
    pub fn spectrum_count(&self) -> usize {
        self.spectra.len()
    }

    /// Embeds a source box's equivalent densities in the convolution grid
    /// and returns its forward transform (done once per source box).
    pub fn source_spectrum(&self, equiv_densities: &[f64]) -> Vec<Complex> {
        assert_eq!(equiv_densities.len(), self.coords.len());
        let m = self.m;
        let mut grid = vec![Complex::ZERO; self.grid_len()];
        for (&(i, j, k), &q) in self.coords.iter().zip(equiv_densities) {
            grid[i * m * m + j * m + k] = Complex::real(q);
        }
        fft3_inplace(&mut grid, m, &self.plan).expect("forward fft");
        grid
    }

    /// Accumulates one translation in the frequency domain:
    /// `acc += spectrum(level, off) ⊙ src`.
    ///
    /// Returns false (and leaves `acc` untouched) when the offset has no
    /// precomputed spectrum — callers fall back to the dense operator.
    pub fn accumulate(
        &self,
        level: u8,
        off: Offset,
        src_spectrum: &[Complex],
        acc: &mut [Complex],
    ) -> bool {
        match self.spectra.get(&(level, off)) {
            Some(spec) => {
                spec.accumulate(src_spectrum, acc).expect("dimension match");
                true
            }
            None => false,
        }
    }

    /// Transforms *two* boxes' (real) equivalent densities with a single
    /// complex FFT — the classic two-for-one trick: transform
    /// `d1 + i·d2` and separate the spectra using conjugate symmetry
    /// (`F1[k] = (F[k] + conj(F[−k]))/2`, `F2[k] = (F[k] − conj(F[−k]))/(2i)`).
    ///
    /// Halves the forward-transform cost of the V phase; the result is
    /// identical (to rounding) to two [`FftM2l::source_spectrum`] calls.
    pub fn source_spectrum_pair(&self, d1: &[f64], d2: &[f64]) -> (Vec<Complex>, Vec<Complex>) {
        assert_eq!(d1.len(), self.coords.len());
        assert_eq!(d2.len(), self.coords.len());
        let m = self.m;
        let mut grid = vec![Complex::ZERO; self.grid_len()];
        for ((&(i, j, k), &a), &b) in self.coords.iter().zip(d1).zip(d2) {
            grid[i * m * m + j * m + k] = Complex::new(a, b);
        }
        fft3_inplace(&mut grid, m, &self.plan).expect("forward fft");
        // Split by conjugate symmetry: index negation mod m per axis.
        let len = self.grid_len();
        let mut f1 = vec![Complex::ZERO; len];
        let mut f2 = vec![Complex::ZERO; len];
        for x in 0..m {
            let nx = (m - x) % m;
            for y in 0..m {
                let ny = (m - y) % m;
                for z in 0..m {
                    let nz = (m - z) % m;
                    let fk = grid[x * m * m + y * m + z];
                    let fnk = grid[nx * m * m + ny * m + nz].conj();
                    let idx = x * m * m + y * m + z;
                    f1[idx] = (fk + fnk).scale(0.5);
                    // (F[k] − conj(F[−k])) / (2i) = −i/2 · (F[k] − conj(F[−k])).
                    let diff = fk - fnk;
                    f2[idx] = Complex::new(diff.im * 0.5, -diff.re * 0.5);
                }
            }
        }
        (f1, f2)
    }

    /// Inverse-transforms an accumulated frequency-domain grid and
    /// extracts the check potentials at the surface nodes.
    pub fn finish(&self, mut acc: Vec<Complex>) -> Vec<f64> {
        let m = self.m;
        ifft3_inplace(&mut acc, m, &self.plan).expect("inverse fft");
        self.coords.iter().map(|&(i, j, k)| acc[i * m * m + j * m + k].re).collect()
    }

    /// A zeroed frequency-domain accumulator.
    pub fn new_accumulator(&self) -> Vec<Complex> {
        vec![Complex::ZERO; self.grid_len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::LaplaceKernel;
    use crate::operators::OperatorCache;
    use crate::tree::Octree;
    use compat::rng::StdRng;

    fn small_tree(seed: u64) -> Octree {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts: Vec<[f64; 3]> =
            (0..3000).map(|_| [rng.random(), rng.random(), rng.random()]).collect();
        Octree::build(&pts, &vec![1.0; 3000], 60)
    }

    #[test]
    fn fft_m2l_matches_dense_m2l() {
        // The decisive correctness test: for every (level, offset) the
        // tree realizes, the spectral path must reproduce the dense
        // operator's check potentials.
        let kernel = LaplaceKernel;
        let tree = small_tree(1);
        let p = 4;
        let fft = FftM2l::build(&kernel, &tree, p);
        let ops = OperatorCache::build(&kernel, &tree, p);
        let mut rng = StdRng::seed_from_u64(9);
        let ns = crate::surface::surface_point_count(p);
        let densities: Vec<f64> = (0..ns).map(|_| rng.random::<f64>() - 0.5).collect();
        let src_spec = fft.source_spectrum(&densities);
        let mut tested = 0;
        for (&(level, off), _) in fft.spectra.iter().take(24) {
            let dense = ops.m2l(level, off).expect("dense twin exists");
            let expected = dense.matvec(&densities);
            let mut acc = fft.new_accumulator();
            assert!(fft.accumulate(level, off, &src_spec, &mut acc));
            let got = fft.finish(acc);
            for (g, e) in got.iter().zip(&expected) {
                assert!(
                    (g - e).abs() < 1e-10 * (1.0 + e.abs()),
                    "level {level} off {off:?}: {g} vs {e}"
                );
            }
            tested += 1;
        }
        assert!(tested > 0);
    }

    #[test]
    fn accumulation_is_linear() {
        let kernel = LaplaceKernel;
        let tree = small_tree(2);
        let p = 4;
        let fft = FftM2l::build(&kernel, &tree, p);
        let (&(level, off), _) = fft.spectra.iter().next().expect("non-empty");
        let ns = crate::surface::surface_point_count(p);
        let d1: Vec<f64> = (0..ns).map(|i| i as f64).collect();
        let d2: Vec<f64> = (0..ns).map(|i| (i * i % 7) as f64).collect();
        let s1 = fft.source_spectrum(&d1);
        let s2 = fft.source_spectrum(&d2);
        // Two sources accumulated into one grid == sum of individual runs.
        let mut acc = fft.new_accumulator();
        fft.accumulate(level, off, &s1, &mut acc);
        fft.accumulate(level, off, &s2, &mut acc);
        let combined = fft.finish(acc);
        let mut acc1 = fft.new_accumulator();
        fft.accumulate(level, off, &s1, &mut acc1);
        let r1 = fft.finish(acc1);
        let mut acc2 = fft.new_accumulator();
        fft.accumulate(level, off, &s2, &mut acc2);
        let r2 = fft.finish(acc2);
        for i in 0..ns {
            assert!((combined[i] - r1[i] - r2[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn two_for_one_spectra_match_individual_transforms() {
        let kernel = LaplaceKernel;
        let tree = small_tree(8);
        let p = 4;
        let fft = FftM2l::build(&kernel, &tree, p);
        let ns = crate::surface::surface_point_count(p);
        let mut rng = StdRng::seed_from_u64(77);
        let d1: Vec<f64> = (0..ns).map(|_| rng.random::<f64>() - 0.5).collect();
        let d2: Vec<f64> = (0..ns).map(|_| 2.0 * rng.random::<f64>()).collect();
        let (f1, f2) = fft.source_spectrum_pair(&d1, &d2);
        let r1 = fft.source_spectrum(&d1);
        let r2 = fft.source_spectrum(&d2);
        for i in 0..f1.len() {
            assert!((f1[i].re - r1[i].re).abs() < 1e-10 && (f1[i].im - r1[i].im).abs() < 1e-10);
            assert!((f2[i].re - r2[i].re).abs() < 1e-10 && (f2[i].im - r2[i].im).abs() < 1e-10);
        }
    }

    #[test]
    fn unknown_offset_reports_false() {
        let kernel = LaplaceKernel;
        let tree = small_tree(3);
        let fft = FftM2l::build(&kernel, &tree, 4);
        let src = fft.source_spectrum(&vec![0.0; crate::surface::surface_point_count(4)]);
        let mut acc = fft.new_accumulator();
        assert!(!fft.accumulate(7, (9, 9, 9), &src, &mut acc));
    }

    #[test]
    fn spectra_cover_all_v_offsets() {
        let kernel = LaplaceKernel;
        let tree = small_tree(4);
        let fft = FftM2l::build(&kernel, &tree, 4);
        let lists = crate::lists::InteractionLists::build(&tree);
        for (ti, vl) in lists.v.iter().enumerate() {
            let tid = tree.nodes[ti].id;
            for &si in vl {
                let sid = tree.nodes[si].id;
                let off = (
                    sid.x as i32 - tid.x as i32,
                    sid.y as i32 - tid.y as i32,
                    sid.z as i32 - tid.z as i32,
                );
                assert!(fft.spectra.contains_key(&(tid.level, off)));
            }
        }
        // At most 7³ − 3³ = 316 offsets per level exist.
        assert!(fft.spectrum_count() <= 316 * (tree.depth() as usize + 1));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn odd_order_rejected() {
        let tree = small_tree(5);
        let _ = FftM2l::build(&LaplaceKernel, &tree, 3);
    }
}
