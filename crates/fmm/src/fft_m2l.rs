//! FFT-accelerated M2L (the V-list phase).
//!
//! Because the KIFMM's equivalent/check surface points are the boundary
//! nodes of a regular `p³` lattice, the M2L operator for a same-level box
//! offset `t` is a discrete convolution: the check potential at target
//! node `g_i` is `Σ_j K(g_i − g_j − c(t)) · q_j`, and `g_i − g_j` ranges
//! over a `(2p−1)³` difference lattice.  Embedding densities in an
//! `m = 2p` cube and precomputing one kernel tableau spectrum per unique
//! offset turns every translation into a pointwise spectral
//! multiply-accumulate, with one forward FFT per source box and one
//! inverse FFT per target box.
//!
//! This is the paper's "the V list approximates interactions with far
//! neighbors through FFTs and vector additions" — an intrinsically
//! low-arithmetic-intensity, bandwidth-bound computation, in contrast to
//! the compute-bound U list.

use crate::kernel::Kernel;
use crate::operators::Offset;
use crate::surface::{surface_lattice_coords, RADIUS_INNER};
use crate::tree::Octree;
use dvfs_fft::{fft3_inplace, ifft3_inplace, Complex, FftPlan, Spectrum3};

/// Offsets realized by V lists lie in `[-3, 3]³` — 343 codes per level.
const OFFSET_CODES: usize = 7 * 7 * 7;
/// Sentinel for "no spectrum" in the dense index.
const NO_SPECTRUM: u32 = u32::MAX;

/// A kernel-tableau spectrum stored as split real/imaginary planes over
/// the compact Hermitian half-grid.
///
/// The frequency-domain multiply-accumulate is the V phase's hot loop,
/// and it is memory-bandwidth-bound: each translation streams the source
/// spectrum, the kernel spectrum, and the accumulator.  Two layout
/// choices cut that traffic:
///
/// * **Split planes.** Separate `re`/`im` arrays turn the complex
///   multiply into four independent FMA streams with no interleaving
///   shuffles.
/// * **Hermitian half-grid.** Every spectrum here comes from a real
///   signal (kernel tableaus and embedded densities), so
///   `F(-k) = conj(F(k))` and only `z ∈ [0, m/2]` needs to be stored —
///   `(m/2 + 1)/m` of the grid, compacted so the savings are real cache
///   lines, not just skipped lanes.  The full cube is reconstructed once
///   per target right before the inverse transform.
struct SplitSpectrum {
    re: Vec<f64>,
    im: Vec<f64>,
}

impl SplitSpectrum {
    /// Compacts a full `m³` spectrum to the `z <= m/2` half-grid.
    fn from_complex(freq: &[Complex], m: usize) -> Self {
        let h = m / 2;
        let hlen = m * m * (h + 1);
        let mut re = Vec::with_capacity(hlen);
        let mut im = Vec::with_capacity(hlen);
        for x in 0..m {
            for y in 0..m {
                for z in 0..=h {
                    let v = freq[x * m * m + y * m + z];
                    re.push(v.re);
                    im.push(v.im);
                }
            }
        }
        SplitSpectrum { re, im }
    }
}

/// Precomputed FFT M2L state for one (kernel, tree, order) triple.
pub struct FftM2l {
    /// Surface order.
    pub p: usize,
    /// Convolution grid edge (`2p`).
    pub m: usize,
    plan: FftPlan,
    coords: Vec<(usize, usize, usize)>,
    /// Spectrum payloads, addressed through `index`.
    spectra: Vec<SplitSpectrum>,
    /// The `(level, offset)` key of each entry in `spectra` — kept for
    /// introspection and tests.
    keys: Vec<(u8, Offset)>,
    /// Dense `level → offset-code → handle` table.  The V accumulate
    /// runs once per (target, source) pair, so the lookup must be two
    /// array indexes, not a hash.
    index: Vec<[u32; OFFSET_CODES]>,
}

impl FftM2l {
    /// Builds kernel-tableau spectra for every (level, offset) realized
    /// by the tree's V lists.
    pub fn build<K: Kernel>(kernel: &K, tree: &Octree, p: usize) -> Self {
        assert!(p.is_power_of_two() && p >= 2, "surface order must be a power of two");
        let m = 2 * p;
        let plan = FftPlan::new(m).expect("m = 2p is a power of two");
        let coords = surface_lattice_coords(p);
        let mut spectra: Vec<SplitSpectrum> = Vec::new();
        let mut keys: Vec<(u8, Offset)> = Vec::new();
        let mut index: Vec<[u32; OFFSET_CODES]> =
            vec![[NO_SPECTRUM; OFFSET_CODES]; tree.depth() as usize + 1];
        let root_hw = tree.nodes[0].half_width;
        let lists = crate::lists::InteractionLists::build(tree);
        for (ti, vl) in lists.v.iter().enumerate() {
            let tid = tree.nodes[ti].id;
            for &si in vl {
                let sid = tree.nodes[si].id;
                let off = (
                    sid.x as i32 - tid.x as i32,
                    sid.y as i32 - tid.y as i32,
                    sid.z as i32 - tid.z as i32,
                );
                let code = Self::offset_code(off).expect("V offsets lie in [-3, 3]³");
                let slot = &mut index[tid.level as usize][code];
                if *slot == NO_SPECTRUM {
                    let hw = root_hw / (1u64 << tid.level) as f64;
                    let tableau = Self::kernel_tableau(kernel, p, m, hw, off);
                    let spec = Spectrum3::new(&tableau, m, &plan).expect("tableau spectrum");
                    *slot = spectra.len() as u32;
                    spectra.push(SplitSpectrum::from_complex(spec.as_slice(), m));
                    keys.push((tid.level, off));
                }
            }
        }
        FftM2l { p, m, plan, coords, spectra, keys, index }
    }

    /// The `(level, offset)` key of every realized spectrum, in build
    /// order (parallel to the internal spectrum arena).
    pub fn keys(&self) -> &[(u8, Offset)] {
        &self.keys
    }

    /// Packs an offset into its dense code, or `None` when outside the
    /// `[-3, 3]³` range any V list can realize.
    #[inline]
    fn offset_code(off: Offset) -> Option<usize> {
        let (x, y, z) = off;
        if !(-3..=3).contains(&x) || !(-3..=3).contains(&y) || !(-3..=3).contains(&z) {
            return None;
        }
        Some((((x + 3) * 7 + (y + 3)) * 7 + (z + 3)) as usize)
    }

    /// Resolves a `(level, offset)` key to its spectrum, if realized.
    #[inline]
    fn lookup(&self, level: u8, off: Offset) -> Option<&SplitSpectrum> {
        let code = Self::offset_code(off)?;
        let row = self.index.get(level as usize)?;
        let h = row[code];
        if h == NO_SPECTRUM {
            None
        } else {
            Some(&self.spectra[h as usize])
        }
    }

    /// The circular kernel tableau for one offset: `T[d] = K(d·s − c)`
    /// where `d` spans `[−(p−1), p−1]³`, `s` is the surface lattice
    /// spacing, and `c` is the source-box center offset.
    fn kernel_tableau<K: Kernel>(
        kernel: &K,
        p: usize,
        m: usize,
        hw: f64,
        off: Offset,
    ) -> Vec<Complex> {
        let spacing = 2.0 * RADIUS_INNER * hw / (p - 1) as f64;
        let width = 2.0 * hw;
        let c = [off.0 as f64 * width, off.1 as f64 * width, off.2 as f64 * width];
        let mut tableau = vec![Complex::ZERO; m * m * m];
        let range = (p as i64 - 1).max(0);
        for dx in -range..=range {
            for dy in -range..=range {
                for dz in -range..=range {
                    let x = [
                        dx as f64 * spacing - c[0],
                        dy as f64 * spacing - c[1],
                        dz as f64 * spacing - c[2],
                    ];
                    let v = kernel.eval(x, [0.0; 3]);
                    let ix = ((dx + m as i64) % m as i64) as usize;
                    let iy = ((dy + m as i64) % m as i64) as usize;
                    let iz = ((dz + m as i64) % m as i64) as usize;
                    tableau[ix * m * m + iy * m + iz] = Complex::real(v);
                }
            }
        }
        tableau
    }

    /// Grid cells per cube (`m³`).
    pub fn grid_len(&self) -> usize {
        self.m * self.m * self.m
    }

    /// Number of precomputed spectra.
    pub fn spectrum_count(&self) -> usize {
        self.spectra.len()
    }

    /// Embeds a source box's equivalent densities in the convolution grid
    /// and returns its forward transform (done once per source box).
    pub fn source_spectrum(&self, equiv_densities: &[f64]) -> Vec<Complex> {
        assert_eq!(equiv_densities.len(), self.coords.len());
        let m = self.m;
        let mut grid = vec![Complex::ZERO; self.grid_len()];
        for (&(i, j, k), &q) in self.coords.iter().zip(equiv_densities) {
            grid[i * m * m + j * m + k] = Complex::real(q);
        }
        fft3_inplace(&mut grid, m, &self.plan).expect("forward fft");
        grid
    }

    /// Like [`FftM2l::source_spectrum`], but writes the transform into a
    /// caller-provided buffer of length [`FftM2l::grid_len`] — the
    /// allocation-free form the evaluator's spectrum arena uses.
    pub fn source_spectrum_into(&self, equiv_densities: &[f64], grid: &mut [Complex]) {
        assert_eq!(equiv_densities.len(), self.coords.len());
        assert_eq!(grid.len(), self.grid_len());
        let m = self.m;
        grid.fill(Complex::ZERO);
        for (&(i, j, k), &q) in self.coords.iter().zip(equiv_densities) {
            grid[i * m * m + j * m + k] = Complex::real(q);
        }
        fft3_inplace(grid, m, &self.plan).expect("forward fft");
    }

    /// Compact Hermitian half-grid length: `m · m · (m/2 + 1)`.
    ///
    /// All split-plane spectra ([`FftM2l::source_spectrum_half_into`],
    /// [`FftM2l::accumulate_split`], …) use this layout: `z` restricted
    /// to `[0, m/2]` with stride `m/2 + 1`, valid because every signal
    /// involved is real so `F(-k) = conj(F(k))`.
    pub fn half_len(&self) -> usize {
        self.m * self.m * (self.m / 2 + 1)
    }

    #[inline]
    fn half_idx(m: usize, x: usize, y: usize, z: usize) -> usize {
        let h1 = m / 2 + 1;
        (x * m + y) * h1 + z
    }

    /// Forward-transforms one box's (real) equivalent densities into
    /// split half-grid planes `r`/`i` (length [`FftM2l::half_len`]),
    /// using `scratch` (length [`FftM2l::grid_len`]) for the complex
    /// transform.
    pub fn source_spectrum_half_into(
        &self,
        equiv_densities: &[f64],
        scratch: &mut [Complex],
        r: &mut [f64],
        i: &mut [f64],
    ) {
        self.source_spectrum_into(equiv_densities, scratch);
        let m = self.m;
        let h = m / 2;
        assert_eq!(r.len(), self.half_len());
        assert_eq!(i.len(), self.half_len());
        for x in 0..m {
            for y in 0..m {
                for z in 0..=h {
                    let v = scratch[x * m * m + y * m + z];
                    let hi = Self::half_idx(m, x, y, z);
                    r[hi] = v.re;
                    i[hi] = v.im;
                }
            }
        }
    }

    /// Two-for-one forward transform straight to split half-grids: the
    /// spectra of `d1` and `d2` land in `(r1, i1)` and `(r2, i2)` (each
    /// of length [`FftM2l::half_len`]), with `scratch` holding the packed
    /// complex grid.  One complex FFT transforms both real inputs; the
    /// conjugate-symmetry separation is evaluated only on the stored
    /// half-grid.
    #[allow(clippy::too_many_arguments)]
    pub fn source_spectrum_half_pair_into(
        &self,
        d1: &[f64],
        d2: &[f64],
        scratch: &mut [Complex],
        r1: &mut [f64],
        i1: &mut [f64],
        r2: &mut [f64],
        i2: &mut [f64],
    ) {
        assert_eq!(d1.len(), self.coords.len());
        assert_eq!(d2.len(), self.coords.len());
        assert_eq!(scratch.len(), self.grid_len());
        let hlen = self.half_len();
        assert_eq!(r1.len(), hlen);
        assert_eq!(i1.len(), hlen);
        assert_eq!(r2.len(), hlen);
        assert_eq!(i2.len(), hlen);
        let m = self.m;
        let h = m / 2;
        scratch.fill(Complex::ZERO);
        for ((&(i, j, k), &a), &b) in self.coords.iter().zip(d1).zip(d2) {
            scratch[i * m * m + j * m + k] = Complex::new(a, b);
        }
        fft3_inplace(scratch, m, &self.plan).expect("forward fft");
        // Split by conjugate symmetry (`F1 = (F[k] + conj(F[−k]))/2`,
        // `F2 = (F[k] − conj(F[−k]))/(2i)`), only where stored.
        for x in 0..m {
            let nx = (m - x) % m;
            for y in 0..m {
                let ny = (m - y) % m;
                for z in 0..=h {
                    let nz = (m - z) % m;
                    let fk = scratch[x * m * m + y * m + z];
                    let fnk = scratch[nx * m * m + ny * m + nz].conj();
                    let hi = Self::half_idx(m, x, y, z);
                    let sum = fk + fnk;
                    r1[hi] = sum.re * 0.5;
                    i1[hi] = sum.im * 0.5;
                    let diff = fk - fnk;
                    r2[hi] = diff.im * 0.5;
                    i2[hi] = -diff.re * 0.5;
                }
            }
        }
    }

    /// Like [`FftM2l::finish`], but inverse-transforms `acc` in place and
    /// *adds* the surface-node values into `out` (length = surface point
    /// count) — letting the evaluator accumulate straight into its
    /// `down_check` arena slice.
    pub fn finish_acc_into(&self, acc: &mut [Complex], out: &mut [f64]) {
        assert_eq!(out.len(), self.coords.len());
        assert_eq!(acc.len(), self.grid_len());
        let m = self.m;
        ifft3_inplace(acc, m, &self.plan).expect("inverse fft");
        for (&(i, j, k), o) in self.coords.iter().zip(out.iter_mut()) {
            *o += acc[i * m * m + j * m + k].re;
        }
    }

    /// Accumulates one translation in the frequency domain:
    /// `acc += spectrum(level, off) ⊙ src`.
    ///
    /// Returns false (and leaves `acc` untouched) when the offset has no
    /// precomputed spectrum — callers fall back to the dense operator.
    pub fn accumulate(
        &self,
        level: u8,
        off: Offset,
        src_spectrum: &[Complex],
        acc: &mut [Complex],
    ) -> bool {
        let Some(spec) = self.lookup(level, off) else { return false };
        let n = self.grid_len();
        assert_eq!(src_spectrum.len(), n);
        assert_eq!(acc.len(), n);
        let m = self.m;
        let h = m / 2;
        for x in 0..m {
            for y in 0..m {
                for z in 0..m {
                    // Reconstruct the kernel value from the stored
                    // half-grid (`K(-k) = conj(K(k))` — the tableau is
                    // real).
                    let k = if z <= h {
                        let hi = Self::half_idx(m, x, y, z);
                        Complex::new(spec.re[hi], spec.im[hi])
                    } else {
                        let hi = Self::half_idx(m, (m - x) % m, (m - y) % m, m - z);
                        Complex::new(spec.re[hi], -spec.im[hi])
                    };
                    let i = x * m * m + y * m + z;
                    let s = src_spectrum[i];
                    acc[i].re += s.re * k.re - s.im * k.im;
                    acc[i].im += s.re * k.im + s.im * k.re;
                }
            }
        }
        true
    }

    /// The split-plane twin of [`FftM2l::accumulate`]: source and
    /// accumulator are separate re/im half-grids of length
    /// [`FftM2l::half_len`].  This is the V phase's hot loop — four
    /// independent FMA streams over compacted arrays, no interleaving
    /// shuffles and ~40% fewer bytes than the full cube.
    pub fn accumulate_split(
        &self,
        level: u8,
        off: Offset,
        src_re: &[f64],
        src_im: &[f64],
        acc_re: &mut [f64],
        acc_im: &mut [f64],
    ) -> bool {
        let Some(spec) = self.lookup(level, off) else { return false };
        let n = self.half_len();
        let kr = &spec.re[..n];
        let ki = &spec.im[..n];
        let sr = &src_re[..n];
        let si = &src_im[..n];
        let ar = &mut acc_re[..n];
        let ai = &mut acc_im[..n];
        for i in 0..n {
            ar[i] += sr[i] * kr[i] - si[i] * ki[i];
            ai[i] += sr[i] * ki[i] + si[i] * kr[i];
        }
        true
    }

    /// Expands a split half-grid accumulator to the full complex cube
    /// (by Hermitian symmetry, into the caller's `scratch`),
    /// inverse-transforms it, and *adds* the surface-node values into
    /// `out` — the split-path twin of [`FftM2l::finish_acc_into`].
    pub fn finish_split_acc_into(
        &self,
        acc_re: &[f64],
        acc_im: &[f64],
        scratch: &mut [Complex],
        out: &mut [f64],
    ) {
        assert_eq!(acc_re.len(), self.half_len());
        assert_eq!(acc_im.len(), self.half_len());
        assert_eq!(scratch.len(), self.grid_len());
        let m = self.m;
        let h = m / 2;
        for x in 0..m {
            for y in 0..m {
                for z in 0..=h {
                    let hi = Self::half_idx(m, x, y, z);
                    scratch[x * m * m + y * m + z] = Complex::new(acc_re[hi], acc_im[hi]);
                }
                for z in (h + 1)..m {
                    let hi = Self::half_idx(m, (m - x) % m, (m - y) % m, m - z);
                    scratch[x * m * m + y * m + z] = Complex::new(acc_re[hi], -acc_im[hi]);
                }
            }
        }
        self.finish_acc_into(scratch, out);
    }

    /// Two-for-one inverse: finishes *two* targets' split half-grid
    /// accumulators with a single inverse transform.
    ///
    /// Both accumulators come from (nearly) Hermitian spectra, so their
    /// inverse transforms are real up to rounding; packing `C = A + i·B`
    /// and inverse-transforming once yields `ifft(A)` in the real part
    /// and `ifft(B)` in the imaginary part.  Surface-node values are
    /// *added* into `out_a` / `out_b`.  Each output absorbs the other's
    /// rounding-level imaginary residue (~1e-16 relative) — far below
    /// the scheme's truncation error, and deterministic as long as the
    /// caller pairs targets in a fixed order.
    #[allow(clippy::too_many_arguments)]
    pub fn finish_split_acc_pair_into(
        &self,
        a_re: &[f64],
        a_im: &[f64],
        b_re: &[f64],
        b_im: &[f64],
        scratch: &mut [Complex],
        out_a: &mut [f64],
        out_b: &mut [f64],
    ) {
        let hlen = self.half_len();
        assert_eq!(a_re.len(), hlen);
        assert_eq!(a_im.len(), hlen);
        assert_eq!(b_re.len(), hlen);
        assert_eq!(b_im.len(), hlen);
        assert_eq!(scratch.len(), self.grid_len());
        assert_eq!(out_a.len(), self.coords.len());
        assert_eq!(out_b.len(), self.coords.len());
        let m = self.m;
        let h = m / 2;
        // C(k) = A(k) + i·B(k), with A and B Hermitian-expanded on the fly:
        // stored half (z <= h) directly, mirrored half via conj.
        for x in 0..m {
            for y in 0..m {
                for z in 0..=h {
                    let hi = Self::half_idx(m, x, y, z);
                    scratch[x * m * m + y * m + z] =
                        Complex::new(a_re[hi] - b_im[hi], a_im[hi] + b_re[hi]);
                }
                for z in (h + 1)..m {
                    let hi = Self::half_idx(m, (m - x) % m, (m - y) % m, m - z);
                    scratch[x * m * m + y * m + z] =
                        Complex::new(a_re[hi] + b_im[hi], -a_im[hi] + b_re[hi]);
                }
            }
        }
        ifft3_inplace(scratch, m, &self.plan).expect("inverse fft");
        for (&(i, j, k), (oa, ob)) in self.coords.iter().zip(out_a.iter_mut().zip(out_b.iter_mut()))
        {
            let c = scratch[i * m * m + j * m + k];
            *oa += c.re;
            *ob += c.im;
        }
    }

    /// Transforms *two* boxes' (real) equivalent densities with a single
    /// complex FFT — the classic two-for-one trick: transform
    /// `d1 + i·d2` and separate the spectra using conjugate symmetry
    /// (`F1[k] = (F[k] + conj(F[−k]))/2`, `F2[k] = (F[k] − conj(F[−k]))/(2i)`).
    ///
    /// Halves the forward-transform cost of the V phase; the result is
    /// identical (to rounding) to two [`FftM2l::source_spectrum`] calls.
    pub fn source_spectrum_pair(&self, d1: &[f64], d2: &[f64]) -> (Vec<Complex>, Vec<Complex>) {
        assert_eq!(d1.len(), self.coords.len());
        assert_eq!(d2.len(), self.coords.len());
        let m = self.m;
        let mut grid = vec![Complex::ZERO; self.grid_len()];
        for ((&(i, j, k), &a), &b) in self.coords.iter().zip(d1).zip(d2) {
            grid[i * m * m + j * m + k] = Complex::new(a, b);
        }
        fft3_inplace(&mut grid, m, &self.plan).expect("forward fft");
        // Split by conjugate symmetry: index negation mod m per axis.
        let len = self.grid_len();
        let mut f1 = vec![Complex::ZERO; len];
        let mut f2 = vec![Complex::ZERO; len];
        for x in 0..m {
            let nx = (m - x) % m;
            for y in 0..m {
                let ny = (m - y) % m;
                for z in 0..m {
                    let nz = (m - z) % m;
                    let fk = grid[x * m * m + y * m + z];
                    let fnk = grid[nx * m * m + ny * m + nz].conj();
                    let idx = x * m * m + y * m + z;
                    f1[idx] = (fk + fnk).scale(0.5);
                    // (F[k] − conj(F[−k])) / (2i) = −i/2 · (F[k] − conj(F[−k])).
                    let diff = fk - fnk;
                    f2[idx] = Complex::new(diff.im * 0.5, -diff.re * 0.5);
                }
            }
        }
        (f1, f2)
    }

    /// Inverse-transforms an accumulated frequency-domain grid and
    /// extracts the check potentials at the surface nodes.
    pub fn finish(&self, mut acc: Vec<Complex>) -> Vec<f64> {
        let m = self.m;
        ifft3_inplace(&mut acc, m, &self.plan).expect("inverse fft");
        self.coords.iter().map(|&(i, j, k)| acc[i * m * m + j * m + k].re).collect()
    }

    /// A zeroed frequency-domain accumulator.
    pub fn new_accumulator(&self) -> Vec<Complex> {
        vec![Complex::ZERO; self.grid_len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::LaplaceKernel;
    use crate::operators::OperatorCache;
    use crate::tree::Octree;
    use compat::rng::StdRng;

    fn small_tree(seed: u64) -> Octree {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts: Vec<[f64; 3]> =
            (0..3000).map(|_| [rng.random(), rng.random(), rng.random()]).collect();
        Octree::build(&pts, &vec![1.0; 3000], 60)
    }

    #[test]
    fn fft_m2l_matches_dense_m2l() {
        // The decisive correctness test: for every (level, offset) the
        // tree realizes, the spectral path must reproduce the dense
        // operator's check potentials.
        let kernel = LaplaceKernel;
        let tree = small_tree(1);
        let p = 4;
        let fft = FftM2l::build(&kernel, &tree, p);
        let ops = OperatorCache::build(&kernel, &tree, p);
        let mut rng = StdRng::seed_from_u64(9);
        let ns = crate::surface::surface_point_count(p);
        let densities: Vec<f64> = (0..ns).map(|_| rng.random::<f64>() - 0.5).collect();
        let src_spec = fft.source_spectrum(&densities);
        let mut tested = 0;
        for &(level, off) in fft.keys.iter().take(24) {
            let dense = ops.m2l(level, off).expect("dense twin exists");
            let expected = dense.matvec(&densities);
            let mut acc = fft.new_accumulator();
            assert!(fft.accumulate(level, off, &src_spec, &mut acc));
            let got = fft.finish(acc);
            for (g, e) in got.iter().zip(&expected) {
                assert!(
                    (g - e).abs() < 1e-10 * (1.0 + e.abs()),
                    "level {level} off {off:?}: {g} vs {e}"
                );
            }
            tested += 1;
        }
        assert!(tested > 0);
    }

    #[test]
    fn accumulation_is_linear() {
        let kernel = LaplaceKernel;
        let tree = small_tree(2);
        let p = 4;
        let fft = FftM2l::build(&kernel, &tree, p);
        let &(level, off) = fft.keys.first().expect("non-empty");
        let ns = crate::surface::surface_point_count(p);
        let d1: Vec<f64> = (0..ns).map(|i| i as f64).collect();
        let d2: Vec<f64> = (0..ns).map(|i| (i * i % 7) as f64).collect();
        let s1 = fft.source_spectrum(&d1);
        let s2 = fft.source_spectrum(&d2);
        // Two sources accumulated into one grid == sum of individual runs.
        let mut acc = fft.new_accumulator();
        fft.accumulate(level, off, &s1, &mut acc);
        fft.accumulate(level, off, &s2, &mut acc);
        let combined = fft.finish(acc);
        let mut acc1 = fft.new_accumulator();
        fft.accumulate(level, off, &s1, &mut acc1);
        let r1 = fft.finish(acc1);
        let mut acc2 = fft.new_accumulator();
        fft.accumulate(level, off, &s2, &mut acc2);
        let r2 = fft.finish(acc2);
        for i in 0..ns {
            assert!((combined[i] - r1[i] - r2[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn two_for_one_spectra_match_individual_transforms() {
        let kernel = LaplaceKernel;
        let tree = small_tree(8);
        let p = 4;
        let fft = FftM2l::build(&kernel, &tree, p);
        let ns = crate::surface::surface_point_count(p);
        let mut rng = StdRng::seed_from_u64(77);
        let d1: Vec<f64> = (0..ns).map(|_| rng.random::<f64>() - 0.5).collect();
        let d2: Vec<f64> = (0..ns).map(|_| 2.0 * rng.random::<f64>()).collect();
        let (f1, f2) = fft.source_spectrum_pair(&d1, &d2);
        let r1 = fft.source_spectrum(&d1);
        let r2 = fft.source_spectrum(&d2);
        for i in 0..f1.len() {
            assert!((f1[i].re - r1[i].re).abs() < 1e-10 && (f1[i].im - r1[i].im).abs() < 1e-10);
            assert!((f2[i].re - r2[i].re).abs() < 1e-10 && (f2[i].im - r2[i].im).abs() < 1e-10);
        }
    }

    #[test]
    fn into_variants_match_allocating_forms_bitwise() {
        let kernel = LaplaceKernel;
        let tree = small_tree(6);
        let p = 4;
        let fft = FftM2l::build(&kernel, &tree, p);
        let ns = crate::surface::surface_point_count(p);
        let mut rng = StdRng::seed_from_u64(21);
        let d1: Vec<f64> = (0..ns).map(|_| rng.random::<f64>() - 0.5).collect();

        // source_spectrum_into ≡ source_spectrum.
        let alloc = fft.source_spectrum(&d1);
        let mut into = vec![Complex::new(3.0, 4.0); fft.grid_len()]; // stale garbage
        fft.source_spectrum_into(&d1, &mut into);
        for (a, b) in alloc.iter().zip(&into) {
            assert_eq!(a.re, b.re);
            assert_eq!(a.im, b.im);
        }

        // finish_acc_into accumulates exactly finish()'s values.
        let &(level, off) = fft.keys.first().expect("non-empty");
        let mut acc = fft.new_accumulator();
        assert!(fft.accumulate(level, off, &alloc, &mut acc));
        let expected = fft.finish(acc.clone());
        let mut out: Vec<f64> = (0..ns).map(|i| i as f64).collect();
        fft.finish_acc_into(&mut acc, &mut out);
        for (i, (o, e)) in out.iter().zip(&expected).enumerate() {
            assert_eq!(*o, i as f64 + e, "accumulates on top of prior contents");
        }
    }

    #[test]
    fn half_grid_split_path_matches_full_grid_path() {
        // The production V pipeline (half-grid split spectra, split
        // accumulate, Hermitian expansion) must agree with the reference
        // full-grid complex pipeline.
        let kernel = LaplaceKernel;
        let tree = small_tree(6);
        let p = 4;
        let fft = FftM2l::build(&kernel, &tree, p);
        let ns = crate::surface::surface_point_count(p);
        let hlen = fft.half_len();
        assert!(hlen < fft.grid_len());
        let mut rng = StdRng::seed_from_u64(22);
        let d1: Vec<f64> = (0..ns).map(|_| rng.random::<f64>() - 0.5).collect();
        let d2: Vec<f64> = (0..ns).map(|_| rng.random::<f64>() + 0.25).collect();

        // Half spectra: the single form stores exactly the full
        // transform's z <= m/2 entries; the pair form matches the
        // allocating pair split on those entries bitwise.
        let mut scratch = vec![Complex::ZERO; fft.grid_len()];
        let (mut r1, mut i1) = (vec![0.0; hlen], vec![0.0; hlen]);
        let (mut r2, mut i2) = (vec![0.0; hlen], vec![0.0; hlen]);
        fft.source_spectrum_half_pair_into(
            &d1,
            &d2,
            &mut scratch,
            &mut r1,
            &mut i1,
            &mut r2,
            &mut i2,
        );
        let (f1, f2) = fft.source_spectrum_pair(&d1, &d2);
        let m = fft.m;
        let h = m / 2;
        for x in 0..m {
            for y in 0..m {
                for z in 0..=h {
                    let full = x * m * m + y * m + z;
                    let half = FftM2l::half_idx(m, x, y, z);
                    assert_eq!(f1[full].re, r1[half]);
                    assert_eq!(f1[full].im, i1[half]);
                    assert_eq!(f2[full].re, r2[half]);
                    assert_eq!(f2[full].im, i2[half]);
                }
            }
        }
        let (mut rs, mut is) = (vec![0.0; hlen], vec![0.0; hlen]);
        fft.source_spectrum_half_into(&d1, &mut scratch, &mut rs, &mut is);
        let full1 = fft.source_spectrum(&d1);
        for x in 0..m {
            for y in 0..m {
                for z in 0..=h {
                    let hi = FftM2l::half_idx(m, x, y, z);
                    assert_eq!(full1[x * m * m + y * m + z].re, rs[hi]);
                    assert_eq!(full1[x * m * m + y * m + z].im, is[hi]);
                }
            }
        }

        // Split accumulate + Hermitian finish ≈ full-grid accumulate +
        // finish (the half path drops the rounding-level Hermitian
        // asymmetry of the kernel spectrum, so tolerance, not bits).
        let &(level, off) = fft.keys.first().expect("non-empty");
        let (mut acc_re, mut acc_im) = (vec![0.0; hlen], vec![0.0; hlen]);
        assert!(fft.accumulate_split(level, off, &r1, &i1, &mut acc_re, &mut acc_im));
        assert!(fft.accumulate_split(level, off, &r2, &i2, &mut acc_re, &mut acc_im));
        let mut got = vec![0.0; ns];
        fft.finish_split_acc_into(&acc_re, &acc_im, &mut scratch, &mut got);
        let mut acc = fft.new_accumulator();
        assert!(fft.accumulate(level, off, &f1, &mut acc));
        assert!(fft.accumulate(level, off, &f2, &mut acc));
        let expected = fft.finish(acc);
        for (g, e) in got.iter().zip(&expected) {
            assert!((g - e).abs() < 1e-10 * (1.0 + e.abs()), "{g} vs {e}");
        }

        // Two-for-one inverse: one packed transform finishes two
        // accumulators, matching the single-target path to rounding.
        let (mut b_re, mut b_im) = (vec![0.0; hlen], vec![0.0; hlen]);
        assert!(fft.accumulate_split(level, off, &r2, &i2, &mut b_re, &mut b_im));
        let mut single_a = vec![0.0; ns];
        fft.finish_split_acc_into(&acc_re, &acc_im, &mut scratch, &mut single_a);
        let mut single_b = vec![0.0; ns];
        fft.finish_split_acc_into(&b_re, &b_im, &mut scratch, &mut single_b);
        let mut pair_a = vec![0.0; ns];
        let mut pair_b = vec![0.0; ns];
        fft.finish_split_acc_pair_into(
            &acc_re,
            &acc_im,
            &b_re,
            &b_im,
            &mut scratch,
            &mut pair_a,
            &mut pair_b,
        );
        for i in 0..ns {
            assert!((pair_a[i] - single_a[i]).abs() < 1e-12 * (1.0 + single_a[i].abs()));
            assert!((pair_b[i] - single_b[i]).abs() < 1e-12 * (1.0 + single_b[i].abs()));
        }
    }

    #[test]
    fn unknown_offset_reports_false() {
        let kernel = LaplaceKernel;
        let tree = small_tree(3);
        let fft = FftM2l::build(&kernel, &tree, 4);
        let src = fft.source_spectrum(&vec![0.0; crate::surface::surface_point_count(4)]);
        let mut acc = fft.new_accumulator();
        assert!(!fft.accumulate(7, (9, 9, 9), &src, &mut acc));
    }

    #[test]
    fn spectra_cover_all_v_offsets() {
        let kernel = LaplaceKernel;
        let tree = small_tree(4);
        let fft = FftM2l::build(&kernel, &tree, 4);
        let lists = crate::lists::InteractionLists::build(&tree);
        for (ti, vl) in lists.v.iter().enumerate() {
            let tid = tree.nodes[ti].id;
            for &si in vl {
                let sid = tree.nodes[si].id;
                let off = (
                    sid.x as i32 - tid.x as i32,
                    sid.y as i32 - tid.y as i32,
                    sid.z as i32 - tid.z as i32,
                );
                assert!(fft.lookup(tid.level, off).is_some());
            }
        }
        // At most 7³ − 3³ = 316 offsets per level exist.
        assert!(fft.spectrum_count() <= 316 * (tree.depth() as usize + 1));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn odd_order_rejected() {
        let tree = small_tree(5);
        let _ = FftM2l::build(&LaplaceKernel, &tree, 3);
    }
}
