//! Property-based tests for the FMM's structural invariants and
//! numerical accuracy over random particle distributions.

use compat::prop::prelude::*;
use kifmm::evaluator::{FmmPlan, M2lMethod};
use kifmm::lists::InteractionLists;
use kifmm::morton;
use kifmm::tree::{BoxId, Octree};
use kifmm::{direct_sum, relative_l2_error, FmmEvaluator};

fn points(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<[f64; 3]>> {
    compat::prop::collection::vec([0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0], n)
        .prop_map(|v| v.into_iter().map(|[x, y, z]| [x, y, z]).collect())
}

/// A mixture of a uniform cloud and a tight cluster — exercises the
/// adaptive (W/X) machinery.
fn clustered_points() -> impl Strategy<Value = Vec<[f64; 3]>> {
    (points(100..200), points(100..200), 0.05f64..0.9).prop_map(|(uniform, cluster, center)| {
        let mut all = uniform;
        for p in cluster {
            all.push([center + p[0] * 0.01, center + p[1] * 0.01, center + p[2] * 0.01]);
        }
        all
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn morton_round_trips(x in 0u32..(1 << 20), y in 0u32..(1 << 20), z in 0u32..(1 << 20)) {
        let key = morton::encode(morton::MAX_LEVEL, x, y, z);
        prop_assert_eq!(morton::decode(key), (x, y, z));
    }

    #[test]
    fn adjacency_is_symmetric(
        la in 1u8..5, xa in 0u32..16, ya in 0u32..16, za in 0u32..16,
        lb in 1u8..5, xb in 0u32..16, yb in 0u32..16, zb in 0u32..16,
    ) {
        let clamp = |l: u8, v: u32| v % (1u32 << l);
        let a = BoxId { level: la, x: clamp(la, xa), y: clamp(la, ya), z: clamp(la, za) };
        let b = BoxId { level: lb, x: clamp(lb, xb), y: clamp(lb, yb), z: clamp(lb, zb) };
        prop_assert_eq!(a.adjacent(&b), b.adjacent(&a));
        prop_assert!(a.adjacent(&a));
        // Ancestors of an adjacent box are adjacent too (containment
        // only grows the cube).
        if let Some(pb) = b.parent() {
            if a.adjacent(&b) {
                prop_assert!(a.adjacent(&pb));
            }
        }
    }

    #[test]
    fn tree_partitions_points(pts in points(50..400), q in 8usize..64) {
        let den = vec![1.0; pts.len()];
        let tree = Octree::build(&pts, &den, q);
        // Permutation is a bijection.
        let mut seen = vec![false; pts.len()];
        for &orig in &tree.permutation {
            prop_assert!(!seen[orig]);
            seen[orig] = true;
        }
        // Leaves tile the permuted range exactly.
        let mut covered = 0usize;
        for &li in &tree.leaves() {
            let n = tree.nodes[li].num_points();
            prop_assert!(n <= q);
            prop_assert!(n > 0);
            covered += n;
        }
        prop_assert_eq!(covered, pts.len());
        // Every internal node's range equals the union of its children's.
        for node in &tree.nodes {
            if !node.is_leaf() {
                let child_sum: usize = node
                    .children
                    .iter()
                    .flatten()
                    .map(|&c| tree.nodes[c].num_points())
                    .sum();
                prop_assert_eq!(child_sum, node.num_points());
            }
        }
    }

    #[test]
    fn interaction_lists_invariants(pts in clustered_points()) {
        let den = vec![1.0; pts.len()];
        let tree = Octree::build(&pts, &den, 24);
        let lists = InteractionLists::build(&tree);
        for (ni, node) in tree.nodes.iter().enumerate() {
            // U symmetry and leaf-ness.
            for &u in &lists.u[ni] {
                prop_assert!(tree.nodes[u].is_leaf());
                prop_assert!(lists.u[u].contains(&ni));
            }
            // V members are same-level non-adjacent with adjacent parents.
            for &v in &lists.v[ni] {
                prop_assert_eq!(tree.nodes[v].id.level, node.id.level);
                prop_assert!(!tree.nodes[v].id.adjacent(&node.id));
            }
            // W/X duality.
            for &w in &lists.w[ni] {
                prop_assert!(lists.x[w].contains(&ni));
            }
        }
    }

    #[test]
    fn fmm_matches_direct_sum_on_random_clouds(pts in points(200..500), seed in 0u64..1000) {
        let n = pts.len();
        let den: Vec<f64> = (0..n)
            .map(|i| ((i as f64 + seed as f64) * 0.7).sin())
            .collect();
        let plan = FmmPlan::new(&pts, &den, 32, 4, M2lMethod::Fft);
        let fmm = FmmEvaluator::new().evaluate(&plan);
        let reference = direct_sum(&pts, &den);
        let err = relative_l2_error(&fmm, &reference);
        prop_assert!(err < 1e-2, "relative L2 error {err}");
    }

    #[test]
    fn fmm_is_translation_invariant(pts in points(150..300), shift in 0.0f64..100.0) {
        // The Laplace kernel depends on differences only: shifting every
        // point leaves all potentials unchanged.
        let den: Vec<f64> = (0..pts.len()).map(|i| (i as f64 * 0.3).cos()).collect();
        let base = FmmEvaluator::new()
            .evaluate(&FmmPlan::new(&pts, &den, 32, 4, M2lMethod::Fft));
        let shifted: Vec<[f64; 3]> =
            pts.iter().map(|p| [p[0] + shift, p[1] + shift, p[2] + shift]).collect();
        let moved = FmmEvaluator::new()
            .evaluate(&FmmPlan::new(&shifted, &den, 32, 4, M2lMethod::Fft));
        let err = relative_l2_error(&moved, &base);
        prop_assert!(err < 1e-9, "translation changed potentials: {err}");
    }
}
