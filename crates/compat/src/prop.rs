//! A property-testing microframework with seeded generators and
//! failure-case shrinking.
//!
//! Replaces `proptest` for the workspace's test suites: the macro
//! surface (`proptest!`, `prop_assert!`, `prop_assert_eq!`,
//! `prop_oneof!`) and the strategy combinators the tests use
//! (`prop_map`, `prop_filter`, `prop_flat_map`, `collection::vec`,
//! `array::uniform7`, `option::of`, `bool::ANY`, `Just`, ranges and
//! tuples/arrays of strategies) are drop-in compatible.
//!
//! Each test's generator is seeded from an FNV-1a hash of the test's
//! full path, so runs are deterministic across machines and
//! invocations while distinct tests draw independent streams.  On
//! failure the input is shrunk by binary search (scalars), tail
//! truncation (collections), and per-component descent (tuples) before
//! the panic reports the minimal failing case.

// The core lives in an inner module because this module declares a
// child module named `bool`, which would otherwise shadow the
// primitive type throughout the file.
pub use self::imp::*;

mod imp {
    use crate::rng::StdRng;
    use std::rc::Rc;

    // -----------------------------------------------------------------
    // Core traits
    // -----------------------------------------------------------------

    /// A generated value plus the state needed to shrink it.
    pub trait ValueTree {
        /// The value's type.
        type Value;

        /// The value at the current shrink position.
        fn current(&self) -> Self::Value;

        /// Moves one step toward a simpler value; `false` when exhausted.
        fn simplify(&mut self) -> bool;

        /// Backs off the last simplification (the simpler value passed
        /// the test); `false` when there is nowhere to return to.
        fn complicate(&mut self) -> bool;
    }

    /// A boxed, type-erased shrink tree.
    pub type BoxTree<T> = Box<dyn ValueTree<Value = T>>;

    /// A recipe for generating (and shrinking) values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value from `rng`, packaged with its shrink state.
        fn new_tree(&self, rng: &mut StdRng) -> BoxTree<Self::Value>;

        /// Transforms generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            U: 'static,
            F: Fn(Self::Value) -> U + 'static,
        {
            Map { source: self, f: Rc::new(f) }
        }

        /// Discards generated values rejected by `pred`.
        ///
        /// `whence` labels the filter in the panic raised when the
        /// rejection rate makes generation infeasible.
        fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool + 'static,
        {
            Filter { source: self, whence: whence.into(), pred: Rc::new(pred) }
        }

        /// Derives a second strategy from each generated value.
        ///
        /// Shrinking only descends into the derived strategy's tree —
        /// the outer value stays fixed, which keeps dependent pairs
        /// (such as a length and a vector of that length) consistent.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2 + 'static,
        {
            FlatMap { source: self, f }
        }

        /// Erases the strategy's concrete type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A type-erased strategy (what `prop_oneof!` arms become).
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_tree(&self, rng: &mut StdRng) -> BoxTree<T> {
            self.0.new_tree(rng)
        }
    }

    // -----------------------------------------------------------------
    // Scalar strategies: Just, integer ranges, float ranges
    // -----------------------------------------------------------------

    /// A strategy producing one fixed value (never shrinks).
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    struct JustTree<T: Clone>(T);

    impl<T: Clone> ValueTree for JustTree<T> {
        type Value = T;
        fn current(&self) -> T {
            self.0.clone()
        }
        fn simplify(&mut self) -> bool {
            false
        }
        fn complicate(&mut self) -> bool {
            false
        }
    }

    impl<T: Clone + 'static> Strategy for Just<T> {
        type Value = T;
        fn new_tree(&self, _rng: &mut StdRng) -> BoxTree<T> {
            Box::new(JustTree(self.0.clone()))
        }
    }

    /// Integer types an `IntTree` can represent (all fit in `i128`).
    pub trait IntValue: Copy + 'static {
        /// Converts from the tree's internal representation.
        fn from_i128(x: i128) -> Self;
        /// Converts into the tree's internal representation.
        fn to_i128(self) -> i128;
    }

    macro_rules! int_value {
        ($($t:ty),*) => {$(
            impl IntValue for $t {
                #[inline]
                fn from_i128(x: i128) -> $t { x as $t }
                #[inline]
                fn to_i128(self) -> i128 { self as i128 }
            }
        )*};
    }
    int_value!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Binary-search shrinker for integers: halves the distance to the
    /// range's lower bound while the test keeps failing.
    struct IntTree<T> {
        lo: i128,
        curr: i128,
        hi: i128,
        _t: std::marker::PhantomData<T>,
    }

    impl<T: IntValue> ValueTree for IntTree<T> {
        type Value = T;
        fn current(&self) -> T {
            T::from_i128(self.curr)
        }
        fn simplify(&mut self) -> bool {
            if self.curr == self.lo {
                return false;
            }
            self.hi = self.curr;
            self.curr = self.lo + (self.curr - self.lo) / 2;
            true
        }
        fn complicate(&mut self) -> bool {
            if self.curr >= self.hi {
                return false;
            }
            self.lo = self.curr + 1;
            self.curr = self.lo + (self.hi - self.lo) / 2;
            true
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_tree(&self, rng: &mut StdRng) -> BoxTree<$t> {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let v = rng.random_range(self.start..self.end);
                    Box::new(IntTree::<$t> {
                        lo: self.start.to_i128(),
                        curr: v.to_i128(),
                        hi: v.to_i128(),
                        _t: std::marker::PhantomData,
                    })
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Bisection shrinker for floats: midpoints toward the range's
    /// lower bound, step-capped so the search always terminates.
    struct F64Tree {
        lo: f64,
        curr: f64,
        hi: f64,
        steps: u32,
    }

    impl ValueTree for F64Tree {
        type Value = f64;
        fn current(&self) -> f64 {
            self.curr
        }
        fn simplify(&mut self) -> bool {
            if self.steps >= 64 || self.curr == self.lo {
                return false;
            }
            let candidate = self.lo + (self.curr - self.lo) / 2.0;
            if candidate == self.curr {
                return false;
            }
            self.steps += 1;
            self.hi = self.curr;
            self.curr = candidate;
            true
        }
        fn complicate(&mut self) -> bool {
            if self.steps >= 64 {
                return false;
            }
            let candidate = self.curr + (self.hi - self.curr) / 2.0;
            if candidate == self.curr {
                return false;
            }
            self.steps += 1;
            self.lo = self.curr;
            self.curr = candidate;
            true
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn new_tree(&self, rng: &mut StdRng) -> BoxTree<f64> {
            assert!(self.start < self.end, "empty float range strategy");
            let v = rng.random_range(self.start..self.end);
            Box::new(F64Tree { lo: self.start, curr: v, hi: v, steps: 0 })
        }
    }

    // -----------------------------------------------------------------
    // Combinators: Map, Filter, FlatMap, Union
    // -----------------------------------------------------------------

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: Rc<F>,
    }

    struct MapTree<T, F> {
        inner: BoxTree<T>,
        f: Rc<F>,
    }

    impl<T, U, F: Fn(T) -> U> ValueTree for MapTree<T, F> {
        type Value = U;
        fn current(&self) -> U {
            (self.f)(self.inner.current())
        }
        fn simplify(&mut self) -> bool {
            self.inner.simplify()
        }
        fn complicate(&mut self) -> bool {
            self.inner.complicate()
        }
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        S::Value: 'static,
        U: 'static,
        F: Fn(S::Value) -> U + 'static,
    {
        type Value = U;
        fn new_tree(&self, rng: &mut StdRng) -> BoxTree<U> {
            Box::new(MapTree { inner: self.source.new_tree(rng), f: Rc::clone(&self.f) })
        }
    }

    /// The strategy returned by [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        source: S,
        whence: String,
        pred: Rc<F>,
    }

    struct FilterTree<T, F> {
        inner: BoxTree<T>,
        pred: Rc<F>,
    }

    impl<T, F: Fn(&T) -> bool> ValueTree for FilterTree<T, F> {
        type Value = T;
        fn current(&self) -> T {
            self.inner.current()
        }
        fn simplify(&mut self) -> bool {
            // Only accept simplifications that still satisfy the
            // filter; step back immediately when one does not.
            if self.inner.simplify() {
                if (self.pred)(&self.inner.current()) {
                    true
                } else {
                    let _ = self.inner.complicate();
                    false
                }
            } else {
                false
            }
        }
        fn complicate(&mut self) -> bool {
            self.inner.complicate()
        }
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        S::Value: 'static,
        F: Fn(&S::Value) -> bool + 'static,
    {
        type Value = S::Value;
        fn new_tree(&self, rng: &mut StdRng) -> BoxTree<S::Value> {
            for _ in 0..256 {
                let tree = self.source.new_tree(rng);
                if (self.pred)(&tree.current()) {
                    return Box::new(FilterTree { inner: tree, pred: Rc::clone(&self.pred) });
                }
            }
            panic!("prop_filter `{}` rejected 256 consecutive draws", self.whence);
        }
    }

    /// The strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2 + 'static,
    {
        type Value = S2::Value;
        fn new_tree(&self, rng: &mut StdRng) -> BoxTree<S2::Value> {
            let outer = self.source.new_tree(rng).current();
            (self.f)(outer).new_tree(rng)
        }
    }

    /// Chooses uniformly among alternative strategies (`prop_oneof!`).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// Builds a union over `arms` (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union(arms)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_tree(&self, rng: &mut StdRng) -> BoxTree<T> {
            let idx = rng.random_range(0..self.0.len());
            self.0[idx].new_tree(rng)
        }
    }

    // -----------------------------------------------------------------
    // Compound strategies: tuples and arrays
    // -----------------------------------------------------------------

    /// Shrinks tuples one component at a time, resuming at the
    /// component last worked on.
    macro_rules! tuple_strategy {
        ($tree:ident: $($S:ident . $idx:tt),+) => {
            struct $tree<$($S),+> {
                trees: ($(BoxTree<$S>,)+),
                last: usize,
            }

            impl<$($S: 'static),+> ValueTree for $tree<$($S),+> {
                type Value = ($($S,)+);
                fn current(&self) -> Self::Value {
                    ($(self.trees.$idx.current(),)+)
                }
                fn simplify(&mut self) -> bool {
                    let n = [$($idx),+].len();
                    for off in 0..n {
                        let i = (self.last + off) % n;
                        let moved = match i {
                            $($idx => self.trees.$idx.simplify(),)+
                            _ => unreachable!(),
                        };
                        if moved {
                            self.last = i;
                            return true;
                        }
                    }
                    false
                }
                fn complicate(&mut self) -> bool {
                    match self.last {
                        $($idx => self.trees.$idx.complicate(),)+
                        _ => false,
                    }
                }
            }

            impl<$($S),+> Strategy for ($($S,)+)
            where
                $($S: Strategy, $S::Value: 'static,)+
            {
                type Value = ($($S::Value,)+);
                fn new_tree(&self, rng: &mut StdRng) -> BoxTree<Self::Value> {
                    Box::new($tree { trees: ($(self.$idx.new_tree(rng),)+), last: 0 })
                }
            }
        };
    }

    tuple_strategy!(Tuple1Tree: A.0);
    tuple_strategy!(Tuple2Tree: A.0, B.1);
    tuple_strategy!(Tuple3Tree: A.0, B.1, C.2);
    tuple_strategy!(Tuple4Tree: A.0, B.1, C.2, D.3);
    tuple_strategy!(Tuple5Tree: A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(Tuple6Tree: A.0, B.1, C.2, D.3, E.4, F.5);
    tuple_strategy!(Tuple7Tree: A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    tuple_strategy!(Tuple8Tree: A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

    struct ArrayTree<T, const N: usize> {
        trees: Vec<BoxTree<T>>,
        last: usize,
    }

    impl<T: 'static, const N: usize> ValueTree for ArrayTree<T, N> {
        type Value = [T; N];
        fn current(&self) -> [T; N] {
            std::array::from_fn(|i| self.trees[i].current())
        }
        fn simplify(&mut self) -> bool {
            for off in 0..N {
                let i = (self.last + off) % N;
                if self.trees[i].simplify() {
                    self.last = i;
                    return true;
                }
            }
            false
        }
        fn complicate(&mut self) -> bool {
            self.trees[self.last].complicate()
        }
    }

    impl<S, const N: usize> Strategy for [S; N]
    where
        S: Strategy,
        S::Value: 'static,
    {
        type Value = [S::Value; N];
        fn new_tree(&self, rng: &mut StdRng) -> BoxTree<[S::Value; N]> {
            Box::new(ArrayTree::<S::Value, N> {
                trees: self.iter().map(|s| s.new_tree(rng)).collect(),
                last: 0,
            })
        }
    }

    // -----------------------------------------------------------------
    // Runner
    // -----------------------------------------------------------------

    /// Per-test configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Cap on shrink iterations after the first failure.
        pub max_shrink_iters: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases (other fields default).
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases, ..Default::default() }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_shrink_iters: 1024 }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property does not hold for this input.
        Fail(String),
        /// The input should not count toward the case budget.
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection with the given reason.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    pub(super) fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    fn run_one<V, F>(test: &F, value: V) -> Result<(), TestCaseError>
    where
        F: Fn(V) -> Result<(), TestCaseError>,
    {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| test(value))) {
            Ok(outcome) => outcome,
            Err(payload) => {
                let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "test panicked".to_string()
                };
                Err(TestCaseError::Fail(format!("panic: {msg}")))
            }
        }
    }

    /// Drives one property: generates `config.cases` inputs from a
    /// deterministic per-test seed, runs `test` on each, and on failure
    /// shrinks before panicking with the minimal failing input.
    pub fn run_proptest<S, F>(config: &ProptestConfig, name: &str, strategy: &S, test: F)
    where
        S: Strategy,
        S::Value: std::fmt::Debug,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let mut rng = StdRng::seed_from_u64(fnv1a(name));
        let mut rejects = 0u32;
        let mut case = 0u32;
        while case < config.cases {
            let mut tree = strategy.new_tree(&mut rng);
            match run_one(&test, tree.current()) {
                Ok(()) => {
                    case += 1;
                }
                Err(TestCaseError::Reject(why)) => {
                    rejects += 1;
                    assert!(
                        rejects < 4 * config.cases.max(64),
                        "{name}: too many rejected inputs (last: {why})"
                    );
                }
                Err(TestCaseError::Fail(first_msg)) => {
                    // Shrink: simplify while the test still fails, back
                    // off when a simplification passes, and keep the
                    // smallest input that failed.
                    let mut best_value = tree.current();
                    let mut best_msg = first_msg;
                    let mut iters = 0u32;
                    let mut last_failed = true;
                    while iters < config.max_shrink_iters {
                        iters += 1;
                        let moved = if last_failed { tree.simplify() } else { tree.complicate() };
                        if !moved {
                            break;
                        }
                        match run_one(&test, tree.current()) {
                            Err(TestCaseError::Fail(msg)) => {
                                best_value = tree.current();
                                best_msg = msg;
                                last_failed = true;
                            }
                            _ => {
                                last_failed = false;
                            }
                        }
                    }
                    panic!(
                        "proptest `{name}` failed after {case} passing case(s)\n\
                         minimal failing input: {best_value:#?}\n\
                         error: {best_msg}"
                    );
                }
            }
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{BoxTree, Strategy, ValueTree};
    use crate::rng::StdRng;

    /// A uniformly random boolean (shrinks toward `false`).
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The canonical boolean strategy, `proptest::bool::ANY`-style.
    pub const ANY: Any = Any;

    struct BoolTree {
        curr: core::primitive::bool,
        orig: core::primitive::bool,
    }

    impl ValueTree for BoolTree {
        type Value = core::primitive::bool;
        fn current(&self) -> core::primitive::bool {
            self.curr
        }
        fn simplify(&mut self) -> core::primitive::bool {
            if self.curr {
                self.curr = false;
                true
            } else {
                false
            }
        }
        fn complicate(&mut self) -> core::primitive::bool {
            if self.curr != self.orig {
                self.curr = self.orig;
                true
            } else {
                false
            }
        }
    }

    impl Strategy for Any {
        type Value = core::primitive::bool;
        fn new_tree(&self, rng: &mut StdRng) -> BoxTree<core::primitive::bool> {
            let v: core::primitive::bool = rng.random();
            Box::new(BoolTree { curr: v, orig: v })
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::{BoxTree, Strategy, ValueTree};
    use crate::rng::StdRng;

    /// The strategy returned by [`of`].
    pub struct OptionStrategy<S>(S);

    struct OptionTree<T> {
        inner: BoxTree<T>,
        present: bool,
        orig_present: bool,
    }

    impl<T> ValueTree for OptionTree<T> {
        type Value = Option<T>;
        fn current(&self) -> Option<T> {
            if self.present {
                Some(self.inner.current())
            } else {
                None
            }
        }
        fn simplify(&mut self) -> bool {
            if self.present {
                if self.inner.simplify() {
                    true
                } else {
                    self.present = false;
                    true
                }
            } else {
                false
            }
        }
        fn complicate(&mut self) -> bool {
            if !self.present && self.orig_present {
                self.present = true;
                true
            } else if self.present {
                self.inner.complicate()
            } else {
                false
            }
        }
    }

    /// Generates `None` half the time, `Some(element)` otherwise.
    /// Shrinks `Some` values inward and then to `None`.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }

    impl<S> Strategy for OptionStrategy<S>
    where
        S: Strategy,
        S::Value: 'static,
    {
        type Value = Option<S::Value>;
        fn new_tree(&self, rng: &mut StdRng) -> BoxTree<Option<S::Value>> {
            let present = rng.random_bool(0.5);
            Box::new(OptionTree { inner: self.0.new_tree(rng), present, orig_present: present })
        }
    }
}

/// Fixed-size arrays of one repeated strategy.
pub mod array {
    use super::Strategy;

    /// Seven independent draws from `element`, as a `[T; 7]`.
    pub fn uniform7<S: Strategy + Clone>(element: S) -> [S; 7] {
        std::array::from_fn(|_| element.clone())
    }
}

/// Collection strategies.
pub mod collection {
    use super::{BoxTree, Strategy, ValueTree};
    use crate::rng::StdRng;

    /// A half-open length range for [`vec`]; converts from `usize`
    /// (exact length) and `Range<usize>`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        /// Minimum length (inclusive).
        pub lo: usize,
        /// Maximum length (exclusive).
        pub hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector of `size` draws from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Shrinks by truncating the tail toward the minimum length, then
    /// by shrinking the surviving elements in turn.
    struct VecTree<T> {
        trees: Vec<BoxTree<T>>,
        len: usize,
        min_len: usize,
        elem: usize,
        last_was_len: bool,
    }

    impl<T: 'static> ValueTree for VecTree<T> {
        type Value = Vec<T>;
        fn current(&self) -> Vec<T> {
            self.trees[..self.len].iter().map(|t| t.current()).collect()
        }
        fn simplify(&mut self) -> bool {
            if self.len > self.min_len {
                self.len -= 1;
                self.last_was_len = true;
                return true;
            }
            while self.elem < self.len {
                if self.trees[self.elem].simplify() {
                    self.last_was_len = false;
                    return true;
                }
                self.elem += 1;
            }
            false
        }
        fn complicate(&mut self) -> bool {
            if self.last_was_len {
                // The shorter vector passed: the dropped element
                // mattered.  Restore it and stop length shrinking.
                self.len += 1;
                self.min_len = self.len;
                true
            } else if self.elem < self.len {
                self.trees[self.elem].complicate()
            } else {
                false
            }
        }
    }

    impl<S> Strategy for VecStrategy<S>
    where
        S: Strategy,
        S::Value: 'static,
    {
        type Value = Vec<S::Value>;
        fn new_tree(&self, rng: &mut StdRng) -> BoxTree<Vec<S::Value>> {
            let len = if self.size.lo + 1 == self.size.hi {
                self.size.lo
            } else {
                rng.random_range(self.size.lo..self.size.hi)
            };
            let trees = (0..len).map(|_| self.element.new_tree(rng)).collect();
            Box::new(VecTree { trees, len, min_len: self.size.lo, elem: 0, last_was_len: false })
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests: each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` that generates inputs, checks the body, and
/// shrinks failures.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::prop::ProptestConfig::default()); $($rest)*);
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::prop::run_proptest(
                &$config,
                concat!(module_path!(), "::", stringify!($name)),
                &($($strat,)+),
                |($($pat,)+)| -> ::std::result::Result<(), $crate::prop::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_impl!(($config); $($rest)*);
    };
    (($config:expr);) => {};
}

/// Fails the current property case when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::prop::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current property case when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Picks uniformly among alternative strategies with a common value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::prop::Union::new(vec![$($crate::prop::Strategy::boxed($arm)),+])
    };
}

/// The flat import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use super::{BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{collection, fnv1a, run_proptest};
    use crate::rng::StdRng;

    #[test]
    fn generation_is_deterministic_per_name() {
        let strat = collection::vec(0u64..1000, 3usize..10);
        let draw = |name: &str| {
            let mut rng = StdRng::seed_from_u64(fnv1a(name));
            strat.new_tree(&mut rng).current()
        };
        assert_eq!(draw("a::b"), draw("a::b"));
        assert_ne!(draw("a::b"), draw("a::c"));
    }

    #[test]
    fn shrinking_finds_boundary_counterexample() {
        // Property `x < 500` over 0..10_000 must shrink to exactly 500.
        let failure = std::panic::catch_unwind(|| {
            run_proptest(
                &ProptestConfig::with_cases(64),
                "shrink_to_500",
                &(0u32..10_000,),
                |(x,)| {
                    crate::prop_assert!(x < 500, "x = {x}");
                    Ok(())
                },
            );
        })
        .expect_err("property must fail");
        let msg = failure.downcast_ref::<String>().expect("panic carries a String");
        assert!(msg.contains("minimal failing input"), "{msg}");
        assert!(msg.contains("x = 500"), "should shrink to the boundary: {msg}");
    }

    #[test]
    fn vec_shrinks_toward_min_length() {
        let failure = std::panic::catch_unwind(|| {
            run_proptest(
                &ProptestConfig::with_cases(64),
                "vec_len",
                &(collection::vec(0u8..10, 0usize..20),),
                |(v,)| {
                    crate::prop_assert!(v.len() < 5, "len = {}", v.len());
                    Ok(())
                },
            );
        })
        .expect_err("property must fail");
        let msg = failure.downcast_ref::<String>().expect("panic carries a String");
        // The minimal counterexample is any 5-element vector.
        assert!(msg.contains("len = 5"), "{msg}");
    }

    #[test]
    fn filter_constrains_generation() {
        run_proptest(
            &ProptestConfig::with_cases(128),
            "filter",
            &((0u32..100).prop_filter("even", |x| x % 2 == 0),),
            |(x,)| {
                crate::prop_assert!(x % 2 == 0);
                Ok(())
            },
        );
    }

    #[test]
    fn flat_map_keeps_dependent_values_consistent() {
        run_proptest(
            &ProptestConfig::with_cases(64),
            "flat_map",
            &((1usize..8).prop_flat_map(|n| (Just(n), collection::vec(0.0f64..1.0, n))),),
            |((n, v),)| {
                crate::prop_assert_eq!(n, v.len());
                Ok(())
            },
        );
    }

    #[test]
    fn oneof_covers_all_arms() {
        let strat = crate::prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.new_tree(&mut rng).current() as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_surface_round_trips(
            a in 0u32..100,
            b in -1.0f64..1.0,
            flag in crate::prop::bool::ANY,
            opt in crate::prop::option::of(0usize..9),
            arr in crate::prop::array::uniform7(0.0f64..1.0),
        ) {
            prop_assert!(a < 100);
            prop_assert!((-1.0..1.0).contains(&b));
            let _ = flag;
            if let Some(x) = opt {
                prop_assert!(x < 9);
            }
            for x in arr {
                prop_assert!((0.0..1.0).contains(&x), "arr member {x}");
            }
            if a == u32::MAX {
                return Ok(());
            }
        }
    }
}
