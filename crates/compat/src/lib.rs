//! In-tree, zero-dependency replacements for the external crates the
//! workspace used to pull from crates-io.
//!
//! The reproduction's claims rest on *deterministic simulated
//! measurements*, so the build that produces them must itself be
//! hermetic: every bit of randomness, parallelism and serialization is
//! implemented here, in auditable std-only Rust, and the whole workspace
//! builds and tests with `--offline` from a clean checkout.
//!
//! Module map (what each shim replaces):
//!
//! * [`rng`] — seedable SplitMix64/xoshiro256++ PRNG with the `StdRng`
//!   API surface the workspace uses (replaces `rand`).
//! * [`par`] — scoped thread-pool with `par_iter`/`into_par_iter`-style
//!   chunked map-collect helpers with a *fixed* reduction order
//!   (replaces `rayon` and `crossbeam::thread::scope`).
//! * [`sync`] — a poison-free `RwLock` wrapper (replaces `parking_lot`).
//! * [`json`] — a hand-rolled JSON value type, parser and printer with
//!   `ToJson`/`FromJson` traits (replaces the `serde` derives).
//! * [`prop`] — a property-testing microframework with seeded
//!   generators, failure-case shrinking and a `proptest!`-compatible
//!   macro surface (replaces `proptest`).
//! * [`bench`] — a warmup/median/MAD timer harness with a
//!   criterion-compatible macro surface and a `--quick` smoke mode
//!   (replaces `criterion`).

//! * [`chan`] — bounded MPSC queues with a non-blocking, rejecting send
//!   side plus one-shot reply slots; the serving layer's backpressure
//!   and batching primitives (replaces `crossbeam-channel`).
//! * [`error`] — the workspace-wide [`error::PipelineError`] enum used by
//!   the hardened measurement-to-fit pipeline (not a shim; it lives here
//!   because `compat` is the one crate every layer can name).
//! * [`env`] — typed accessors for the `FMM_ENERGY_*` environment
//!   variables (not a shim; it lives here for the same reason as
//!   [`error`] — every layer that reads a knob can name `compat`).

pub mod bench;
pub mod chan;
pub mod env;
pub mod error;
pub mod json;
pub mod par;
pub mod prop;
pub mod rng;
pub mod sync;
