//! Data parallelism on a persistent worker pool with a fixed reduction
//! order.
//!
//! Replaces the workspace's `rayon` usage.  The API mirrors the three
//! call-site shapes the FMM evaluator and direct-sum reference use:
//!
//! ```
//! use compat::par::*;
//! let v = vec![1u64, 2, 3, 4];
//! let doubled: Vec<u64> = v.par_iter().map(|&x| 2 * x).collect();
//! let squares: Vec<u64> = (0..4usize).into_par_iter().map(|i| (i * i) as u64).collect();
//! let odd: Vec<u64> = (0..8u64).into_par_iter().filter(|&x| x % 2 == 1).map(|x| x).collect();
//! assert_eq!(doubled, vec![2, 4, 6, 8]);
//! assert_eq!(squares, vec![0, 1, 4, 9]);
//! assert_eq!(odd, vec![1, 3, 5, 7]);
//! ```
//!
//! # Execution model
//!
//! Workers are spawned lazily on first use and then live for the rest of
//! the process — a call never pays thread spawn/join latency, which
//! matters to the FMM evaluator: it issues one parallel region per tree
//! level per phase, and with scoped threads each of those regions paid a
//! full spawn/join round trip.  Each parallel call splits its items into
//! contiguous chunks, runs the first chunk on the calling thread, queues
//! the rest for the workers, and waits on a completion latch.  While
//! waiting, the caller executes queued chunks itself ("help-first"
//! waiting), so nested parallel calls cannot deadlock and no core idles.
//!
//! # Determinism
//!
//! Items are split into contiguous chunks and chunk results are
//! concatenated in chunk order.  The output order therefore equals
//! sequential order *regardless of the thread count or scheduling*, so
//! any caller that reduces the collected vector sequentially is bitwise
//! reproducible across thread counts — the property the determinism test
//! suite locks in.  [`par_for_each_init`] extends the same contract to
//! in-place writers: each item must write only locations it owns, making
//! the result independent of which worker (or chunk) processed it.
//!
//! # Thread-count resolution
//!
//! [`num_threads`] resolves the parallelism width in this order:
//!
//! 1. the [`set_thread_count`] override (tests pin this);
//! 2. the `FMM_ENERGY_THREADS` environment variable (any positive
//!    integer; values above [`MAX_POOL_WORKERS`] are honored for chunk
//!    *splitting* but executed by at most that many workers);
//! 3. `std::thread::available_parallelism()`, capped at
//!    [`DEFAULT_THREAD_CAP`] — the map regions here saturate memory
//!    bandwidth well before high core counts, so the *default* stays
//!    modest; the env var overrides the cap explicitly.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Locks a mutex, shrugging off poisoning.
///
/// The pool's invariants never depend on the guarded data being
/// mid-update (queue pushes/pops and latch counters are single
/// statements), so a panic that poisoned the mutex left it in a
/// consistent state.  Honoring the poison flag instead would let one
/// panicking job kill every condvar-parked worker the moment it wakes —
/// the "wedged warm pool" failure this module must never exhibit.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Default cap applied to `available_parallelism()` when neither the
/// [`set_thread_count`] override nor `FMM_ENERGY_THREADS` is set.
pub const DEFAULT_THREAD_CAP: usize = 8;

/// Hard ceiling on pool workers, whatever the requested width.  Wider
/// requests still split into that many chunks (chunk-ordered results are
/// identical either way); they just share these workers.
pub const MAX_POOL_WORKERS: usize = 64;

/// Global thread-count override (0 = automatic).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Forces parallel calls to split into `n` chunks (`None` restores
/// automatic sizing).
///
/// Intended for determinism tests that compare runs across thread
/// counts; the computed results are identical either way.
pub fn set_thread_count(n: Option<usize>) {
    THREAD_OVERRIDE.store(n.unwrap_or(0), Ordering::Relaxed);
}

/// The parallelism width used for parallel maps.
///
/// See the module docs for the resolution order: override, then
/// `FMM_ENERGY_THREADS`, then `available_parallelism()` capped at
/// [`DEFAULT_THREAD_CAP`].
pub fn num_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Some(n) = crate::env::positive_usize("FMM_ENERGY_THREADS") {
        return n;
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(DEFAULT_THREAD_CAP)
}

// ---------------------------------------------------------------------
// The persistent pool.
// ---------------------------------------------------------------------

/// A queued chunk of work: the lifetime-erased closure plus the latch of
/// the parallel region it belongs to.  The submitting call keeps every
/// borrow in `run` alive until its latch opens, which is what makes the
/// erasure sound.
struct Job {
    run: Box<dyn FnOnce() + Send + 'static>,
    latch: Arc<Latch>,
}

/// Completion latch for one parallel region.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

struct LatchState {
    remaining: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl Latch {
    fn new(remaining: usize) -> Self {
        Latch { state: Mutex::new(LatchState { remaining, panic: None }), done: Condvar::new() }
    }

    /// Marks one job finished, recording the first panic payload.
    fn complete(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        let mut st = lock_unpoisoned(&self.state);
        st.remaining -= 1;
        if st.panic.is_none() {
            st.panic = panic;
        }
        if st.remaining == 0 {
            self.done.notify_all();
        }
    }

    fn is_open(&self) -> bool {
        lock_unpoisoned(&self.state).remaining == 0
    }

    fn take_panic(&self) -> Option<Box<dyn std::any::Any + Send>> {
        lock_unpoisoned(&self.state).panic.take()
    }
}

struct Pool {
    queue: Mutex<VecDeque<Job>>,
    job_ready: Condvar,
    spawned: AtomicUsize,
}

impl Pool {
    /// Pops and runs one queued job, if any.  Any thread may execute any
    /// job — ownership of output locations lives in the closures.
    fn try_run_one(&self) -> bool {
        let job = lock_unpoisoned(&self.queue).pop_front();
        match job {
            Some(job) => {
                run_job(job);
                true
            }
            None => false,
        }
    }
}

fn run_job(job: Job) {
    let result = catch_unwind(AssertUnwindSafe(job.run));
    job.latch.complete(result.err());
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        queue: Mutex::new(VecDeque::new()),
        job_ready: Condvar::new(),
        spawned: AtomicUsize::new(0),
    })
}

/// Number of live pool workers (they persist for the process lifetime).
///
/// Exposed so tests can assert that repeated parallel calls *reuse*
/// workers instead of leaking one set per call.
pub fn pool_workers() -> usize {
    pool().spawned.load(Ordering::Acquire)
}

/// Spawns workers until at least `wanted` exist (capped at
/// [`MAX_POOL_WORKERS`]).  Serialized by the queue mutex so concurrent
/// callers never over-spawn.
fn ensure_workers(pool: &'static Pool, wanted: usize) {
    let wanted = wanted.min(MAX_POOL_WORKERS);
    if pool.spawned.load(Ordering::Acquire) >= wanted {
        return;
    }
    let _guard = lock_unpoisoned(&pool.queue);
    let mut have = pool.spawned.load(Ordering::Acquire);
    while have < wanted {
        std::thread::Builder::new()
            .name(format!("compat-par-{have}"))
            .spawn(move || worker_loop(pool))
            .expect("spawn pool worker");
        have += 1;
    }
    pool.spawned.store(have, Ordering::Release);
}

fn worker_loop(pool: &'static Pool) {
    loop {
        let job = {
            let mut q = lock_unpoisoned(&pool.queue);
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                q = pool.job_ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        run_job(job);
    }
}

/// Waits for `latch` on drop, helping with queued jobs meanwhile.  Being
/// a drop guard makes the wait run even when the caller's own chunk
/// panics — the queued jobs borrow the caller's stack, so unwinding past
/// them before they finish would be unsound.
struct WaitGuard<'a> {
    latch: &'a Latch,
    pool: &'static Pool,
}

impl Drop for WaitGuard<'_> {
    fn drop(&mut self) {
        loop {
            if self.latch.is_open() {
                return;
            }
            if self.pool.try_run_one() {
                continue;
            }
            let st = lock_unpoisoned(&self.latch.state);
            if st.remaining == 0 {
                return;
            }
            // Re-check the queue periodically: a job enqueued by a
            // *nested* parallel region inside one of our chunks must be
            // picked up even though it signals a different latch.
            let _ = self.latch.done.wait_timeout(st, Duration::from_micros(200));
        }
    }
}

/// Runs every task to completion: the first inline on the caller, the
/// rest on the pool.  Panics from any task are propagated after all
/// tasks finish.
fn run_scope<'scope>(tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
    let mut iter = tasks.into_iter();
    let Some(first) = iter.next() else { return };
    let rest: Vec<_> = iter.collect();
    if rest.is_empty() {
        first();
        return;
    }
    let pool = pool();
    ensure_workers(pool, rest.len());
    let latch = Arc::new(Latch::new(rest.len()));
    {
        let mut q = lock_unpoisoned(&pool.queue);
        for task in rest {
            // SAFETY: the latch (waited on by `WaitGuard`, even during
            // unwinding) guarantees every queued closure finishes before
            // this stack frame is left, so extending the borrow lifetime
            // to 'static never outlives the borrowed data.
            let run: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(task) };
            q.push_back(Job { run, latch: Arc::clone(&latch) });
        }
    }
    pool.job_ready.notify_all();
    let guard = WaitGuard { latch: &latch, pool };
    let own = catch_unwind(AssertUnwindSafe(first));
    drop(guard); // waits for the queued chunks (and helps run them)
    if let Err(payload) = own {
        resume_unwind(payload);
    }
    if let Some(payload) = latch.take_panic() {
        resume_unwind(payload);
    }
}

/// Splits `items` into at most `threads` contiguous chunks.
fn make_chunks<I>(items: Vec<I>, threads: usize) -> Vec<Vec<I>> {
    let chunk_len = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<I>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<I> = it.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    chunks
}

/// Maps `f` over `items` on the pool, preserving input order.
pub fn par_map_vec<I, U, F>(items: Vec<I>, f: &F) -> Vec<U>
where
    I: Send,
    U: Send,
    F: Fn(I) -> U + Sync,
{
    let n = items.len();
    let threads = num_threads().min(n);
    if threads <= 1 || n < 2 {
        return items.into_iter().map(f).collect();
    }
    let chunks = make_chunks(items, threads);
    let k = chunks.len();
    let mut slots: Vec<Option<Vec<U>>> = Vec::with_capacity(k);
    slots.resize_with(k, || None);
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = slots
        .iter_mut()
        .zip(chunks)
        .map(|(slot, chunk)| {
            let task: Box<dyn FnOnce() + Send + '_> =
                Box::new(move || *slot = Some(chunk.into_iter().map(f).collect::<Vec<U>>()));
            task
        })
        .collect();
    run_scope(tasks);
    let mut out = Vec::with_capacity(n);
    for slot in slots {
        out.extend(slot.expect("chunk completed"));
    }
    out
}

/// A parallel job failure surfaced by [`try_par_map_vec`]: one chunk
/// panicked on its first run *and* on its single resubmission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// Index of the failed chunk (chunks are contiguous, in item order).
    pub chunk: usize,
    /// Attempts made (always 2: the original run plus one resubmission).
    pub attempts: usize,
    /// The panic message, when the payload was a string.
    pub detail: String,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "parallel chunk {} panicked on all {} attempts: {}",
            self.chunk, self.attempts, self.detail
        )
    }
}

impl std::error::Error for JobError {}

/// Extracts a human-readable message from a panic payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Maps `f` over `items` in parallel with panic isolation: a chunk whose
/// closure panics is resubmitted once (on the calling thread, after the
/// parallel region drains), and a chunk that panics twice surfaces a
/// structured [`JobError`] instead of unwinding through the caller.
///
/// Results are concatenated in chunk order, so output order (and hence
/// bitwise determinism across thread counts) matches [`par_map_vec`].
/// Items must be `Clone` so the failed chunk can be replayed.
pub fn try_par_map_vec<I, U, F>(items: Vec<I>, f: &F) -> Result<Vec<U>, JobError>
where
    I: Send + Clone,
    U: Send,
    F: Fn(I) -> U + Sync,
{
    let n = items.len();
    let threads = num_threads().min(n.max(1));
    let run_chunk = |chunk: Vec<I>| -> Result<Vec<U>, String> {
        catch_unwind(AssertUnwindSafe(|| chunk.into_iter().map(f).collect::<Vec<U>>()))
            .map_err(|p| panic_message(p.as_ref()))
    };
    if threads <= 1 || n < 2 {
        return run_chunk(items.clone()).or_else(|_| run_chunk(items)).map_err(|detail| JobError {
            chunk: 0,
            attempts: 2,
            detail,
        });
    }
    let chunks = make_chunks(items, threads);
    let replay = chunks.clone();
    let results = par_map_vec(chunks, &run_chunk);
    let mut out = Vec::with_capacity(n);
    for (idx, (result, spare)) in results.into_iter().zip(replay).enumerate() {
        match result.or_else(|_| run_chunk(spare)) {
            Ok(part) => out.extend(part),
            Err(detail) => return Err(JobError { chunk: idx, attempts: 2, detail }),
        }
    }
    Ok(out)
}

/// Runs `f` over `items` on the pool for effect, with one scratch state
/// per chunk.
///
/// `init` builds the chunk-local scratch (reused across the items of the
/// chunk — the flat-arena evaluator hoists its per-node buffers here),
/// and `f` consumes one item with that scratch.  Since chunk boundaries
/// move with the thread count, determinism requires `f` to (a) write
/// only locations owned by its item and (b) produce values independent
/// of residual scratch contents.
pub fn par_for_each_init<I, S, G, F>(items: Vec<I>, init: G, f: F)
where
    I: Send,
    G: Fn() -> S + Sync,
    F: Fn(&mut S, I) + Sync,
{
    let n = items.len();
    let threads = num_threads().min(n);
    if threads <= 1 || n < 2 {
        if n == 0 {
            return;
        }
        let mut scratch = init();
        for item in items {
            f(&mut scratch, item);
        }
        return;
    }
    let init = &init;
    let f = &f;
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = make_chunks(items, threads)
        .into_iter()
        .map(|chunk| {
            let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let mut scratch = init();
                for item in chunk {
                    f(&mut scratch, item);
                }
            });
            task
        })
        .collect();
    run_scope(tasks);
}

/// Like [`par_for_each_init`], but with *caller-provided* chunk
/// boundaries: each inner slice becomes exactly one pool task (empty
/// chunks are skipped), and tasks are enqueued in chunk order.
///
/// This is the chunk-affinity primitive the FMM evaluator's phase
/// scheduler builds on.  [`par_for_each_init`] re-splits by item count
/// on every call, so the box→chunk assignment drifts between phases;
/// here the caller hands every phase the same persistent partition of
/// its targets, so chunk `k` covers the same boxes — the same arena and
/// point ranges — in every phase of every evaluation, and the worker
/// that picks it up re-touches memory it already has cache-resident.
///
/// The chunks are borrowed (items are `Copy` indices at the call
/// sites), so a cached schedule can be replayed without cloning.
/// Determinism requirements match [`par_for_each_init`]: `f` must write
/// only locations its item owns and must not depend on residual scratch
/// contents, making results independent of the partition.
pub fn par_for_each_chunked_init<I, S, G, F>(chunks: &[Vec<I>], init: G, f: F)
where
    I: Send + Sync + Copy,
    G: Fn() -> S + Sync,
    F: Fn(&mut S, I) + Sync,
{
    let live = chunks.iter().filter(|c| !c.is_empty()).count();
    if live == 0 {
        return;
    }
    if num_threads() <= 1 || live == 1 {
        for chunk in chunks.iter().filter(|c| !c.is_empty()) {
            let mut scratch = init();
            for &item in chunk {
                f(&mut scratch, item);
            }
        }
        return;
    }
    let init = &init;
    let f = &f;
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = chunks
        .iter()
        .filter(|c| !c.is_empty())
        .map(|chunk| {
            let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let mut scratch = init();
                for &item in chunk {
                    f(&mut scratch, item);
                }
            });
            task
        })
        .collect();
    run_scope(tasks);
}

/// A raw pointer that asserts `Send + Sync`, for parallel tasks writing
/// *disjoint* regions of one allocation (arena phases of the FMM
/// evaluator).
///
/// Safety is the caller's: tasks must never write overlapping locations
/// or read a location another task may write.
#[derive(Debug)]
pub struct SendPtr<T>(*mut T);

unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Wraps a mutable base pointer (typically `vec.as_mut_ptr()`).
    pub fn new(ptr: *mut T) -> Self {
        SendPtr(ptr)
    }

    /// The raw base pointer.
    pub fn get(self) -> *mut T {
        self.0
    }

    /// A mutable slice at `offset` of length `len`.
    ///
    /// # Safety
    ///
    /// `offset..offset + len` must be in bounds of the allocation and no
    /// other live reference (in any thread) may overlap it.
    pub unsafe fn slice_mut<'a>(self, offset: usize, len: usize) -> &'a mut [T] {
        std::slice::from_raw_parts_mut(self.0.add(offset), len)
    }

    /// A shared slice at `offset` of length `len`.
    ///
    /// # Safety
    ///
    /// `offset..offset + len` must be in bounds and no thread may write
    /// it while the returned borrow is live.
    pub unsafe fn slice<'a>(self, offset: usize, len: usize) -> &'a [T] {
        std::slice::from_raw_parts(self.0.add(offset), len)
    }
}

/// A materialized parallel iterator (order-preserving).
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Keeps the items matching `pred` (applied sequentially — the
    /// predicates at the call sites are trivial index tests).
    pub fn filter<P: Fn(&I) -> bool>(mut self, pred: P) -> Self {
        self.items.retain(|i| pred(i));
        self
    }

    /// Attaches the map stage; the parallel work happens at `collect`.
    pub fn map<U, F>(self, f: F) -> ParMap<I, F>
    where
        U: Send,
        F: Fn(I) -> U + Sync,
    {
        ParMap { items: self.items, f }
    }
}

/// A pending parallel map; [`ParMap::collect`] runs it.
pub struct ParMap<I, F> {
    items: Vec<I>,
    f: F,
}

impl<I, F> ParMap<I, F> {
    /// Runs the map on the pool and collects the results in input order.
    pub fn collect<U, C>(self) -> C
    where
        I: Send,
        U: Send,
        F: Fn(I) -> U + Sync,
        C: FromIterator<U>,
    {
        par_map_vec(self.items, &self.f).into_iter().collect()
    }
}

/// `par_iter` over slices (and anything that derefs to a slice).
pub trait ParSliceExt<T: Sync> {
    /// A parallel iterator over references to the elements.
    fn par_iter(&self) -> ParIter<&T>;
}

impl<T: Sync> ParSliceExt<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter { items: self.iter().collect() }
    }
}

/// `into_par_iter` for owned collections and ranges.
pub trait IntoParIterExt {
    /// The element type.
    type Item: Send;
    /// Converts into a parallel iterator over owned items.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParIterExt for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParIterExt for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter { items: self.collect() }
    }
}

impl IntoParIterExt for std::ops::Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter { items: self.collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 3).collect();
        assert_eq!(out, (0..1000).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn filter_then_map() {
        let out: Vec<usize> =
            (0..100usize).into_par_iter().filter(|&i| i % 7 == 0).map(|i| i + 1).collect();
        assert_eq!(out, (0..100).filter(|i| i % 7 == 0).map(|i| i + 1).collect::<Vec<_>>());
    }

    #[test]
    fn slice_par_iter_borrows() {
        let data = vec![1.5f64, 2.5, 3.5];
        let out: Vec<f64> = data.par_iter().map(|&x| x * 2.0).collect();
        assert_eq!(out, vec![3.0, 5.0, 7.0]);
    }

    #[test]
    fn identical_across_thread_counts() {
        let run = || -> Vec<f64> {
            (0..512usize).into_par_iter().map(|i| (i as f64).sqrt().sin()).collect()
        };
        set_thread_count(Some(1));
        let serial = run();
        for t in [2, 3, 5, 8] {
            set_thread_count(Some(t));
            assert_eq!(serial, run(), "thread count {t} changed results");
        }
        set_thread_count(None);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
        let one: Vec<u8> = vec![9u8].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![10]);
    }

    #[test]
    fn pool_workers_are_reused_not_leaked() {
        set_thread_count(Some(4));
        let _: Vec<usize> = (0..64usize).into_par_iter().map(|i| i).collect();
        assert!(pool_workers() >= 1, "first parallel call spawns workers");
        for _ in 0..50 {
            let _: Vec<usize> = (0..64usize).into_par_iter().map(|i| i + 1).collect();
        }
        // Other tests in this binary share the pool and may request up
        // to 8-way splits concurrently, so the bound is "no growth with
        // call count", not an exact figure: 51 scoped-thread calls would
        // have created ~150 threads.
        assert!(pool_workers() <= 7, "workers leaked: {}", pool_workers());
        set_thread_count(None);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        set_thread_count(Some(4));
        let attempt = std::panic::catch_unwind(|| {
            let _: Vec<usize> = (0..64usize)
                .into_par_iter()
                .map(|i| if i == 63 { panic!("boom {i}") } else { i })
                .collect();
        });
        assert!(attempt.is_err(), "panic must cross the parallel region");
        // The pool keeps working afterwards.
        let out: Vec<usize> = (0..8usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10, 12, 14]);
        set_thread_count(None);
    }

    #[test]
    fn panicking_job_does_not_wedge_parked_workers() {
        // Regression: a panic that poisons the pool's mutexes (here,
        // provoked with the queue lock held, the worst case) must not
        // leave condvar-parked workers wedged — job N panics, job N+1
        // still completes on the warm pool.
        set_thread_count(Some(4));
        let _: Vec<usize> = (0..64usize).into_par_iter().map(|i| i).collect();
        assert!(pool_workers() >= 1);
        let poison = std::panic::catch_unwind(|| {
            let _guard = pool().queue.lock().unwrap();
            panic!("poison the pool queue");
        });
        assert!(poison.is_err());
        assert!(pool().queue.is_poisoned(), "the mutex must actually be poisoned");
        let out: Vec<usize> = (0..64usize).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(out, (1..65).collect::<Vec<_>>());
        set_thread_count(None);
    }

    #[test]
    fn try_map_retries_failed_chunk_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        set_thread_count(Some(4));
        let attempts = AtomicUsize::new(0);
        let out = try_par_map_vec((0..64usize).collect(), &|i| {
            // Item 17 panics on its first execution only.
            if i == 17 && attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient failure at {i}");
            }
            i * 2
        });
        assert_eq!(out.unwrap(), (0..64).map(|i| i * 2).collect::<Vec<usize>>());
        assert_eq!(attempts.load(Ordering::SeqCst), 2, "one retry of the failed chunk");
        set_thread_count(None);
    }

    #[test]
    fn try_map_surfaces_structured_error_after_retry() {
        set_thread_count(Some(4));
        let out: Result<Vec<usize>, JobError> = try_par_map_vec((0..64usize).collect(), &|i| {
            if i == 40 {
                panic!("persistent failure at {i}");
            }
            i
        });
        let err = out.unwrap_err();
        assert_eq!(err.attempts, 2);
        assert!(err.detail.contains("persistent failure at 40"), "{err}");
        // The pool stays usable afterwards.
        let ok: Vec<usize> = (0..8usize).into_par_iter().map(|i| i).collect();
        assert_eq!(ok.len(), 8);
        set_thread_count(None);
    }

    #[test]
    fn for_each_init_writes_disjoint_slots() {
        set_thread_count(Some(3));
        let mut out = vec![0u64; 100];
        let base = SendPtr::new(out.as_mut_ptr());
        par_for_each_init(
            (0..100usize).collect(),
            || 0u64, // per-chunk scratch: a running count of items seen
            |seen, i| {
                *seen += 1;
                unsafe { base.slice_mut(i, 1)[0] = (i as u64) * 7 };
            },
        );
        assert_eq!(out, (0..100).map(|i| i * 7).collect::<Vec<u64>>());
        set_thread_count(None);
    }

    #[test]
    fn chunked_for_each_covers_every_item_once() {
        // Caller-provided partitions — uneven sizes, empty chunks in the
        // middle — must execute every item exactly once, with results
        // identical across thread counts.
        let chunks: Vec<Vec<usize>> =
            vec![(0..7).collect(), vec![], (7..8).collect(), (8..40).collect(), vec![]];
        for threads in [1usize, 2, 4, 8] {
            set_thread_count(Some(threads));
            let mut out = vec![0u64; 40];
            let base = SendPtr::new(out.as_mut_ptr());
            par_for_each_chunked_init(
                &chunks,
                || 0usize,
                |seen, i| {
                    *seen += 1;
                    unsafe { base.slice_mut(i, 1)[0] += (i as u64) * 3 };
                },
            );
            assert_eq!(out, (0..40).map(|i| i * 3).collect::<Vec<u64>>(), "at {threads} threads");
        }
        set_thread_count(None);
    }

    #[test]
    fn nested_parallel_regions_complete() {
        set_thread_count(Some(4));
        let out: Vec<u64> = (0..8usize)
            .into_par_iter()
            .map(|i| {
                let inner: Vec<u64> = (0..16u64).into_par_iter().map(|j| j + i as u64).collect();
                inner.iter().sum()
            })
            .collect();
        let expect: Vec<u64> = (0..8).map(|i| (0..16u64).map(|j| j + i as u64).sum()).collect();
        assert_eq!(out, expect);
        set_thread_count(None);
    }
}
