//! Data parallelism over scoped threads with a fixed reduction order.
//!
//! Replaces the workspace's `rayon` usage.  The API mirrors the three
//! call-site shapes the FMM evaluator and direct-sum reference use:
//!
//! ```
//! use compat::par::*;
//! let v = vec![1u64, 2, 3, 4];
//! let doubled: Vec<u64> = v.par_iter().map(|&x| 2 * x).collect();
//! let squares: Vec<u64> = (0..4usize).into_par_iter().map(|i| (i * i) as u64).collect();
//! let odd: Vec<u64> = (0..8u64).into_par_iter().filter(|&x| x % 2 == 1).map(|x| x).collect();
//! assert_eq!(doubled, vec![2, 4, 6, 8]);
//! assert_eq!(squares, vec![0, 1, 4, 9]);
//! assert_eq!(odd, vec![1, 3, 5, 7]);
//! ```
//!
//! Determinism: items are split into contiguous chunks, each chunk is
//! mapped on its own scoped thread, and chunk results are concatenated
//! in chunk order.  The output order therefore equals sequential order
//! *regardless of the thread count or scheduling*, so any caller that
//! reduces the collected vector sequentially is bitwise reproducible
//! across thread counts — the property the determinism test suite
//! locks in.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Global thread-count override (0 = automatic).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Forces the pool to `n` threads (`None` restores automatic sizing).
///
/// Intended for determinism tests that compare runs across thread
/// counts; the computed results are identical either way.
pub fn set_thread_count(n: Option<usize>) {
    THREAD_OVERRIDE.store(n.unwrap_or(0), Ordering::Relaxed);
}

/// The worker count used for parallel maps.
///
/// Resolution order: [`set_thread_count`] override, then the
/// `FMM_ENERGY_THREADS` environment variable, then
/// `std::thread::available_parallelism()` (capped at 8 — the map
/// regions here saturate memory bandwidth well before core count).
pub fn num_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("FMM_ENERGY_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
}

/// Maps `f` over `items` on scoped threads, preserving input order.
pub fn par_map_vec<I, U, F>(items: Vec<I>, f: &F) -> Vec<U>
where
    I: Send,
    U: Send,
    F: Fn(I) -> U + Sync,
{
    let n = items.len();
    let threads = num_threads().min(n);
    if threads <= 1 || n < 2 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = n.div_ceil(threads);
    let mut chunks: Vec<Vec<I>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<I> = it.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let results: Vec<Vec<U>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        handles.into_iter().map(|h| h.join().expect("compat::par worker panicked")).collect()
    });
    let mut out = Vec::with_capacity(n);
    for r in results {
        out.extend(r);
    }
    out
}

/// A materialized parallel iterator (order-preserving).
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Keeps the items matching `pred` (applied sequentially — the
    /// predicates at the call sites are trivial index tests).
    pub fn filter<P: Fn(&I) -> bool>(mut self, pred: P) -> Self {
        self.items.retain(|i| pred(i));
        self
    }

    /// Attaches the map stage; the parallel work happens at `collect`.
    pub fn map<U, F>(self, f: F) -> ParMap<I, F>
    where
        U: Send,
        F: Fn(I) -> U + Sync,
    {
        ParMap { items: self.items, f }
    }
}

/// A pending parallel map; [`ParMap::collect`] runs it.
pub struct ParMap<I, F> {
    items: Vec<I>,
    f: F,
}

impl<I, F> ParMap<I, F> {
    /// Runs the map on the pool and collects the results in input order.
    pub fn collect<U, C>(self) -> C
    where
        I: Send,
        U: Send,
        F: Fn(I) -> U + Sync,
        C: FromIterator<U>,
    {
        par_map_vec(self.items, &self.f).into_iter().collect()
    }
}

/// `par_iter` over slices (and anything that derefs to a slice).
pub trait ParSliceExt<T: Sync> {
    /// A parallel iterator over references to the elements.
    fn par_iter(&self) -> ParIter<&T>;
}

impl<T: Sync> ParSliceExt<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter { items: self.iter().collect() }
    }
}

/// `into_par_iter` for owned collections and ranges.
pub trait IntoParIterExt {
    /// The element type.
    type Item: Send;
    /// Converts into a parallel iterator over owned items.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParIterExt for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParIterExt for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter { items: self.collect() }
    }
}

impl IntoParIterExt for std::ops::Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter { items: self.collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 3).collect();
        assert_eq!(out, (0..1000).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn filter_then_map() {
        let out: Vec<usize> =
            (0..100usize).into_par_iter().filter(|&i| i % 7 == 0).map(|i| i + 1).collect();
        assert_eq!(out, (0..100).filter(|i| i % 7 == 0).map(|i| i + 1).collect::<Vec<_>>());
    }

    #[test]
    fn slice_par_iter_borrows() {
        let data = vec![1.5f64, 2.5, 3.5];
        let out: Vec<f64> = data.par_iter().map(|&x| x * 2.0).collect();
        assert_eq!(out, vec![3.0, 5.0, 7.0]);
    }

    #[test]
    fn identical_across_thread_counts() {
        let run = || -> Vec<f64> {
            (0..512usize).into_par_iter().map(|i| (i as f64).sqrt().sin()).collect()
        };
        set_thread_count(Some(1));
        let serial = run();
        for t in [2, 3, 5, 8] {
            set_thread_count(Some(t));
            assert_eq!(serial, run(), "thread count {t} changed results");
        }
        set_thread_count(None);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
        let one: Vec<u8> = vec![9u8].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![10]);
    }
}
