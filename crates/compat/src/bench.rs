//! A criterion-compatible benchmark harness on a warmup/median/MAD
//! timer.
//!
//! Replaces `criterion` for the workspace's `harness = false` bench
//! targets.  The macro surface (`criterion_group!`, `criterion_main!`)
//! and the types the benches use (`Criterion`, `BenchmarkGroup`,
//! `BenchmarkId`, `Bencher::iter`) are drop-in compatible.
//!
//! Measurement protocol per benchmark: calibrate the iteration count by
//! doubling until one batch takes at least [`TARGET_BATCH`], then time
//! `sample_size` batches and report the median per-iteration time with
//! the median absolute deviation (MAD) as the robust spread estimate.
//!
//! Command-line flags (everything else cargo passes is ignored):
//!
//! * `--quick` / `--test` — run every benchmark body once and skip
//!   timing; used by CI as a smoke test.
//! * a bare string — only run benchmarks whose name contains it.

use std::time::{Duration, Instant};

/// Minimum wall time for one timed batch during calibration.
const TARGET_BATCH: Duration = Duration::from_millis(10);

/// Default number of timed batches per benchmark.
const DEFAULT_SAMPLE_SIZE: usize = 20;

/// Times the body of one benchmark.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the harness-chosen number of iterations, timing
    /// the whole batch.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// A benchmark identifier: a function name plus a parameter value.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }
}

/// Names a benchmark; implemented for strings and [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for &String {
    fn into_id(self) -> String {
        self.clone()
    }
}

/// The benchmark driver; one per bench binary.
pub struct Criterion {
    quick: bool,
    filter: Option<String>,
    ran: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { quick: false, filter: None, ran: 0 }
    }
}

impl Criterion {
    /// Builds a driver from the process arguments (see module docs).
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--quick" | "--test" => c.quick = true,
                s if s.starts_with('-') => {} // cargo-injected flags
                s => c.filter = Some(s.to_string()),
            }
        }
        c
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string(), sample_size: DEFAULT_SAMPLE_SIZE }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        self.run(&id.into_id(), DEFAULT_SAMPLE_SIZE, f);
        self
    }

    /// Prints the closing line; called by `criterion_main!`.
    pub fn final_summary(&self) {
        println!(
            "\n{} benchmark(s) {}",
            self.ran,
            if self.quick { "smoke-tested (--quick)" } else { "measured" }
        );
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, name: &str, sample_size: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        self.ran += 1;
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        if self.quick {
            f(&mut b);
            println!("{name:<40} ok ({:>12?})", b.elapsed);
            return;
        }
        // Calibrate: double the batch size until a batch is long enough
        // to time reliably.
        loop {
            f(&mut b);
            if b.elapsed >= TARGET_BATCH || b.iters >= (1 << 24) {
                break;
            }
            b.iters *= 2;
        }
        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(sample_size);
        for _ in 0..sample_size {
            f(&mut b);
            per_iter_ns.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
        }
        let med = median(&mut per_iter_ns);
        let mut dev: Vec<f64> = per_iter_ns.iter().map(|&x| (x - med).abs()).collect();
        let mad = median(&mut dev);
        println!(
            "{name:<40} median {:>12} (MAD {:>10}, {} x {} iters)",
            fmt_ns(med),
            fmt_ns(mad),
            sample_size,
            b.iters,
        );
    }
}

/// A set of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed batches for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark under this group's prefix.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        self.criterion.run(&full, self.sample_size, f);
        self
    }

    /// Runs one parameterized benchmark under this group's prefix.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.run(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Closes the group (kept for criterion API parity).
    pub fn finish(self) {}
}

fn median(xs: &mut [f64]) -> f64 {
    assert!(!xs.is_empty());
    xs.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        0.5 * (xs[n / 2 - 1] + xs[n / 2])
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Bundles benchmark functions into a group runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::bench::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generates `fn main` running the given groups, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::bench::Criterion::from_args();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_spread() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn quick_mode_runs_each_benchmark_once() {
        let mut c = Criterion { quick: true, filter: None, ran: 0 };
        let mut calls = 0;
        c.bench_function("noop", |b| {
            b.iter(|| ());
            calls += 1;
        });
        assert_eq!(calls, 1);
        assert_eq!(c.ran, 1);
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut c = Criterion { quick: true, filter: Some("keep".into()), ran: 0 };
        let mut kept = false;
        let mut skipped = false;
        c.bench_function("keep/this", |b| {
            b.iter(|| ());
            kept = true;
        });
        c.bench_function("drop/this", |b| {
            b.iter(|| ());
            skipped = true;
        });
        assert!(kept);
        assert!(!skipped);
        assert_eq!(c.ran, 1);
    }

    #[test]
    fn group_prefixes_names() {
        let mut c = Criterion { quick: true, filter: Some("grp/inner".into()), ran: 0 };
        let mut hit = false;
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(5);
            g.bench_with_input(BenchmarkId::new("inner", 7), &7usize, |b, &n| {
                b.iter(|| n * 2);
                hit = true;
            });
            g.finish();
        }
        assert!(hit);
    }
}
