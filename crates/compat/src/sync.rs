//! Synchronization primitives with a `parking_lot`-style API.

/// A reader-writer lock whose guards never expose poisoning.
///
/// Wraps `std::sync::RwLock`; a panic while a guard is held aborts the
/// poisoned state by propagating the panic at the next acquisition,
/// matching how the workspace used `parking_lot` (no call site handled
/// poisoning — a panicked writer is a bug, not a recoverable state).
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock owning `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquires shared read access.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().expect("RwLock poisoned: a holder panicked")
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().expect("RwLock poisoned: a holder panicked")
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("RwLock poisoned: a holder panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn read_write_round_trip() {
        let lock = RwLock::new(5);
        assert_eq!(*lock.read(), 5);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 6);
        assert_eq!(lock.into_inner(), 6);
    }

    #[test]
    fn concurrent_writers_serialize() {
        let lock = Arc::new(RwLock::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let lock = Arc::clone(&lock);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *lock.write() += 1;
                    }
                });
            }
        });
        assert_eq!(*lock.read(), 8000);
    }
}
