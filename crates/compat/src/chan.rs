//! Bounded channels and one-shot reply slots for the serving layer.
//!
//! `std::sync::mpsc` is unbounded (its `sync_channel` blocks senders
//! instead of rejecting), and the zero-dependency policy rules out
//! `crossbeam-channel`, so the autotune server's ingress queues live
//! here: a Mutex+Condvar bounded MPSC queue whose *send side never
//! blocks* — a full queue is an immediate, countable rejection, which
//! is the backpressure contract the service exposes as
//! `Rejected::Overloaded` — plus a one-shot reply slot pairing each
//! accepted request with its response.
//!
//! Determinism note: channels order *delivery*, not *answers*.  Every
//! consumer in this workspace computes answers as pure functions of the
//! request, so queue interleaving (which does vary with thread timing)
//! is never observable in the values delivered back.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Locks a mutex, shrugging off poisoning (same rationale as
/// `par::lock_unpoisoned`: the guarded updates are single statements, so
/// a panicking holder cannot leave the state mid-update, and honoring
/// the poison flag would wedge every parked consumer).
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

struct ChanState<T> {
    queue: VecDeque<T>,
    capacity: usize,
    senders: usize,
    /// High-water mark of the queue depth, for the bounded-depth audit.
    max_depth: usize,
    closed: bool,
}

struct Chan<T> {
    state: Mutex<ChanState<T>>,
    not_empty: Condvar,
}

/// Non-blocking producer half of a bounded queue.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// Consumer half of a bounded queue (one per shard worker).
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// Why a [`Sender::try_send`] did not enqueue.
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The queue is at capacity; the item is handed back unconsumed.
    Full(T),
    /// The receiver is gone (shutdown); the item is handed back.
    Closed(T),
}

/// Creates a bounded queue of at most `capacity` items (minimum 1).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(ChanState {
            queue: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            senders: 1,
            max_depth: 0,
            closed: false,
        }),
        not_empty: Condvar::new(),
    });
    (Sender { chan: Arc::clone(&chan) }, Receiver { chan })
}

impl<T> Sender<T> {
    /// Enqueues `item` if there is room, returning the queue depth after
    /// the push.  Never blocks: a full queue returns
    /// [`TrySendError::Full`] immediately — that immediacy is the
    /// backpressure contract the overload tests pin down.
    pub fn try_send(&self, item: T) -> Result<usize, TrySendError<T>> {
        let mut st = lock_unpoisoned(&self.chan.state);
        if st.closed {
            return Err(TrySendError::Closed(item));
        }
        if st.queue.len() >= st.capacity {
            return Err(TrySendError::Full(item));
        }
        st.queue.push_back(item);
        let depth = st.queue.len();
        st.max_depth = st.max_depth.max(depth);
        drop(st);
        self.chan.not_empty.notify_one();
        Ok(depth)
    }

    /// Current queue depth (racy by nature; diagnostics only).
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.chan.state).queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        lock_unpoisoned(&self.chan.state).senders += 1;
        Sender { chan: Arc::clone(&self.chan) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = lock_unpoisoned(&self.chan.state);
        st.senders -= 1;
        if st.senders == 0 {
            drop(st);
            // Wake the consumer so it can observe the hangup and drain.
            self.chan.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until an item arrives, returning `None` once every sender
    /// is dropped *and* the queue has fully drained — shutdown never
    /// loses accepted items.
    pub fn recv(&self) -> Option<T> {
        let mut st = lock_unpoisoned(&self.chan.state);
        loop {
            if let Some(item) = st.queue.pop_front() {
                return Some(item);
            }
            if st.senders == 0 {
                return None;
            }
            st = self.chan.not_empty.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Blocks for the first item, then greedily drains up to `max`
    /// items total without further waiting — the batching primitive:
    /// one wakeup amortizes over everything already queued.  Returns an
    /// empty vector only at hangup (all senders dropped, queue empty).
    pub fn recv_batch(&self, max: usize) -> Vec<T> {
        let max = max.max(1);
        let mut st = lock_unpoisoned(&self.chan.state);
        loop {
            if !st.queue.is_empty() {
                let take = max.min(st.queue.len());
                return st.queue.drain(..take).collect();
            }
            if st.senders == 0 {
                return Vec::new();
            }
            st = self.chan.not_empty.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// High-water mark of the queue depth since creation.
    pub fn max_depth(&self) -> usize {
        lock_unpoisoned(&self.chan.state).max_depth
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        // Future sends fail fast instead of filling a queue nobody reads.
        lock_unpoisoned(&self.chan.state).closed = true;
    }
}

// ---------------------------------------------------------------------
// One-shot reply slots.
// ---------------------------------------------------------------------

struct OnceState<T> {
    value: Option<T>,
    done: bool,
}

struct OnceSlot<T> {
    state: Mutex<OnceState<T>>,
    filled: Condvar,
}

/// Producer half of a one-shot slot (held by the shard worker).
pub struct OnceSender<T> {
    slot: Arc<OnceSlot<T>>,
}

/// Consumer half of a one-shot slot (the caller's response ticket).
pub struct OnceReceiver<T> {
    slot: Arc<OnceSlot<T>>,
}

/// Creates a one-shot slot: one value crosses, exactly once.
pub fn oneshot<T>() -> (OnceSender<T>, OnceReceiver<T>) {
    let slot = Arc::new(OnceSlot {
        state: Mutex::new(OnceState { value: None, done: false }),
        filled: Condvar::new(),
    });
    (OnceSender { slot: Arc::clone(&slot) }, OnceReceiver { slot })
}

impl<T> OnceSender<T> {
    /// Delivers the value and wakes the waiter.
    pub fn send(self, value: T) {
        let mut st = lock_unpoisoned(&self.slot.state);
        st.value = Some(value);
        st.done = true;
        drop(st);
        self.slot.filled.notify_all();
    }
}

impl<T> Drop for OnceSender<T> {
    fn drop(&mut self) {
        let mut st = lock_unpoisoned(&self.slot.state);
        if !st.done {
            // Dropped without sending: the waiter gets `None` instead of
            // blocking forever (e.g. a worker that errored mid-request).
            st.done = true;
            drop(st);
            self.slot.filled.notify_all();
        }
    }
}

impl<T> OnceReceiver<T> {
    /// Blocks until the value arrives; `None` if the sender was dropped
    /// without sending.
    pub fn recv(self) -> Option<T> {
        let mut st = lock_unpoisoned(&self.slot.state);
        while !st.done {
            st = self.slot.filled.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.value.take()
    }

    /// Non-blocking probe: `Some` once the value is ready.
    pub fn try_recv(&self) -> Option<T> {
        lock_unpoisoned(&self.slot.state).value.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn fifo_order_and_depth_accounting() {
        let (tx, rx) = bounded::<u32>(8);
        for i in 0..5 {
            assert_eq!(tx.try_send(i).expect("room"), (i + 1) as usize);
        }
        for i in 0..5 {
            assert_eq!(rx.recv(), Some(i));
        }
        assert_eq!(rx.max_depth(), 5);
    }

    #[test]
    fn full_queue_rejects_immediately_without_blocking() {
        let (tx, rx) = bounded::<u32>(2);
        assert!(tx.try_send(1).is_ok());
        assert!(tx.try_send(2).is_ok());
        let start = Instant::now();
        match tx.try_send(3) {
            Err(TrySendError::Full(v)) => assert_eq!(v, 3, "item handed back"),
            other => panic!("expected Full, got {other:?}"),
        }
        assert!(start.elapsed() < Duration::from_millis(50), "rejection must be immediate");
        // Draining reopens the queue.
        assert_eq!(rx.recv(), Some(1));
        assert!(tx.try_send(3).is_ok());
    }

    #[test]
    fn hangup_drains_then_returns_none() {
        let (tx, rx) = bounded::<u32>(4);
        tx.try_send(7).expect("room");
        tx.try_send(8).expect("room");
        drop(tx);
        assert_eq!(rx.recv(), Some(7), "queued items survive sender drop");
        assert_eq!(rx.recv(), Some(8));
        assert_eq!(rx.recv(), None, "then clean hangup");
    }

    #[test]
    fn dropped_receiver_closes_the_send_side() {
        let (tx, rx) = bounded::<u32>(4);
        drop(rx);
        match tx.try_send(1) {
            Err(TrySendError::Closed(v)) => assert_eq!(v, 1),
            other => panic!("expected Closed, got {other:?}"),
        }
    }

    #[test]
    fn recv_batch_amortizes_one_wakeup() {
        let (tx, rx) = bounded::<u32>(16);
        for i in 0..10 {
            tx.try_send(i).expect("room");
        }
        assert_eq!(rx.recv_batch(4), vec![0, 1, 2, 3]);
        assert_eq!(rx.recv_batch(100), vec![4, 5, 6, 7, 8, 9]);
        drop(tx);
        assert!(rx.recv_batch(4).is_empty(), "hangup yields the empty batch");
    }

    #[test]
    fn cross_thread_producers_lose_nothing() {
        let (tx, rx) = bounded::<u64>(1024);
        let mut sum = 0u64;
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..256u64 {
                        // The queue is big enough that Full cannot occur.
                        tx.try_send(t * 1000 + i).expect("capacity sized for the test");
                    }
                });
            }
            drop(tx);
            while let Some(v) = rx.recv() {
                sum += v;
            }
        });
        let expect: u64 = (0..4u64).map(|t| (0..256u64).map(|i| t * 1000 + i).sum::<u64>()).sum();
        assert_eq!(sum, expect);
    }

    #[test]
    fn oneshot_round_trip_and_hangup() {
        let (otx, orx) = oneshot::<&'static str>();
        std::thread::scope(|s| {
            s.spawn(move || otx.send("answer"));
            assert_eq!(orx.recv(), Some("answer"));
        });
        let (otx, orx) = oneshot::<&'static str>();
        drop(otx);
        assert_eq!(orx.recv(), None, "dropped sender never wedges the waiter");
    }
}
