//! Seedable pseudo-random number generation.
//!
//! [`StdRng`] is a xoshiro256++ generator seeded through SplitMix64 —
//! the standard construction for expanding a 64-bit seed into a
//! full-period 256-bit state without correlated lanes.  It exposes the
//! subset of the `rand` API the workspace actually uses
//! (`seed_from_u64`, `random::<T>()`, `random_range`), with identical
//! streams on every platform: all arithmetic is wrapping integer math,
//! so the sequences are bit-reproducible across architectures.

/// One SplitMix64 step: advances `state` and returns the next output.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seedable xoshiro256++ generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Expands a 64-bit seed into the generator state via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // The all-zero state is the one fixed point of the update; the
        // SplitMix64 expansion cannot produce it from any seed, but keep
        // the guard in case of future direct-state constructors.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }

    /// The next raw 64-bit output (xoshiro256++ update).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// The next 32-bit output (upper half of the 64-bit stream).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly distributed value of type `T`.
    ///
    /// For floats this is the standard 53-bit (24-bit for `f32`)
    /// mantissa construction over `[0, 1)`.
    #[inline]
    pub fn random<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A uniform value in `[range.start, range.end)`.
    ///
    /// Panics when the range is empty.
    #[inline]
    pub fn random_range<T: UniformRange>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// A biased coin flip: `true` with probability `p`.
    #[inline]
    pub fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

/// Types [`StdRng::random`] can produce.
pub trait FromRng {
    /// Draws one uniformly distributed value.
    fn from_rng(rng: &mut StdRng) -> Self;
}

impl FromRng for f64 {
    #[inline]
    fn from_rng(rng: &mut StdRng) -> f64 {
        // 53 random mantissa bits / 2^53: uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    #[inline]
    fn from_rng(rng: &mut StdRng) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl FromRng for bool {
    #[inline]
    fn from_rng(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! from_rng_int {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            #[inline]
            fn from_rng(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
from_rng_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types [`StdRng::random_range`] can produce.
pub trait UniformRange: Sized {
    /// Draws a uniform value from a half-open range.
    fn sample_range(rng: &mut StdRng, range: std::ops::Range<Self>) -> Self;
}

macro_rules! uniform_range_int {
    ($($t:ty),*) => {$(
        impl UniformRange for $t {
            #[inline]
            fn sample_range(rng: &mut StdRng, range: std::ops::Range<$t>) -> $t {
                assert!(range.start < range.end, "empty random_range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Multiply-shift bounded sampling; the modulo bias over a
                // 64-bit draw is < 2^-63 for every span used here.
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (range.start as i128 + draw as i128) as $t
            }
        }
    )*};
}
uniform_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformRange for f64 {
    #[inline]
    fn sample_range(rng: &mut StdRng, range: std::ops::Range<f64>) -> f64 {
        assert!(range.start < range.end, "empty random_range");
        range.start + (range.end - range.start) * rng.random::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..256).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn known_answer_vector() {
        // Locks the exact stream: every seeded experiment in the
        // workspace depends on these bits never changing.
        let mut r = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            vec![5987356902031041503, 7051070477665621255, 6633766593972829180, 211316841551650330,]
        );
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_sampling_respects_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = r.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.random_range(-5i64..5);
            assert!((-5..5).contains(&y));
            let z = r.random_range(2.0f64..4.0);
            assert!((2.0..4.0).contains(&z));
        }
    }
}
