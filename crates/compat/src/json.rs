//! Hand-rolled JSON: a value type, a recursive-descent parser, a
//! printer, and `ToJson`/`FromJson` traits.
//!
//! Replaces the workspace's `serde` derives.  Scope is deliberately
//! small: finite `f64` numbers (printed with Rust's shortest
//! round-trip formatting, so `parse(print(x)) == x` bitwise), strings
//! with the standard escapes, arrays, and order-preserving objects —
//! everything the dataset snapshot types need and nothing more.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved (deterministic output).
    Obj(Vec<(String, Json)>),
}

/// A parse or conversion error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks up `key`, erroring with the key name when absent.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key).ok_or_else(|| JsonError(format!("missing field `{key}`")))
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::Num(x) => Ok(*x),
            other => err(format!("expected number, got {other:?}")),
        }
    }

    /// The value as a `usize` (must be a non-negative integer).
    pub fn as_usize(&self) -> Result<usize, JsonError> {
        let x = self.as_f64()?;
        if x >= 0.0 && x.fract() == 0.0 && x <= usize::MAX as f64 {
            Ok(x as usize)
        } else {
            err(format!("expected unsigned integer, got {x}"))
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => err(format!("expected string, got {other:?}")),
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => err(format!("expected bool, got {other:?}")),
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => err(format!("expected array, got {other:?}")),
        }
    }

    /// Serializes to compact JSON text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(x) => {
                assert!(x.is_finite(), "JSON numbers must be finite, got {x}");
                // `{:?}` is Rust's shortest representation that parses
                // back to the same f64 — the round-trip guarantee.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    let _ = write!(out, "{}", *x as i64);
                } else {
                    let _ = write!(out, "{x:?}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => err(format!("unexpected `{}` at byte {}", b as char, self.pos)),
            None => err("unexpected end of input"),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError("non-utf8 number".into()))?;
        match text.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Json::Num(x)),
            _ => err(format!("invalid number `{text}` at byte {start}")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let mut chars = std::str::from_utf8(rest)
                .map_err(|_| JsonError("invalid utf-8 in string".into()))?
                .chars();
            match chars.next() {
                None => return err("unterminated string"),
                Some('"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some('\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| JsonError("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| JsonError("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| JsonError("bad \\u escape".into()))?;
                            // Surrogate pairs are not needed by any
                            // workspace type; reject them explicitly.
                            let c = char::from_u32(code)
                                .ok_or_else(|| JsonError("surrogate \\u escape".into()))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(c) => {
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// Encodes `self`.
    fn to_json(&self) -> Json;

    /// Encodes `self` directly to JSON text.
    fn to_json_text(&self) -> String {
        self.to_json().to_text()
    }
}

/// Conversion from a [`Json`] value.
pub trait FromJson: Sized {
    /// Decodes a value of `Self`.
    fn from_json(v: &Json) -> Result<Self, JsonError>;

    /// Decodes from JSON text.
    fn from_json_text(text: &str) -> Result<Self, JsonError> {
        Self::from_json(&Json::parse(text)?)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<f64, JsonError> {
        v.as_f64()
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl FromJson for usize {
    fn from_json(v: &Json) -> Result<usize, JsonError> {
        v.as_usize()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<bool, JsonError> {
        v.as_bool()
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<String, JsonError> {
        Ok(v.as_str()?.to_string())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            None => Json::Null,
            Some(x) => x.to_json(),
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Option<T>, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => Ok(Some(T::from_json(other)?)),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Vec<T>, JsonError> {
        v.as_array()?.iter().map(T::from_json).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-3", "2.5", "1e-3"] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.to_text()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn f64_round_trips_bitwise() {
        for x in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -2.875, 6.02e23] {
            let text = Json::Num(x).to_text();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {text}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\nquote\"back\\slash\ttab\u{1}end";
        let text = Json::Str(s.to_string()).to_text();
        assert_eq!(Json::parse(&text).unwrap().as_str().unwrap(), s);
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::obj([
            ("name", Json::Str("sweep".into())),
            ("ok", Json::Bool(true)),
            ("xs", Json::Arr(vec![Json::Num(1.0), Json::Null, Json::Num(-2.5)])),
            ("nested", Json::obj([("k", Json::Num(3.0))])),
        ]);
        assert_eq!(Json::parse(&v.to_text()).unwrap(), v);
    }

    #[test]
    fn object_field_access() {
        let v = Json::parse(r#"{"a": 1, "b": "x"}"#).unwrap();
        assert_eq!(v.field("a").unwrap().as_usize().unwrap(), 1);
        assert_eq!(v.field("b").unwrap().as_str().unwrap(), "x");
        assert!(v.field("c").is_err());
    }

    #[test]
    fn malformed_inputs_rejected() {
        for text in ["", "{", "[1,", "tru", "\"unterminated", "1 2", "{\"a\" 1}", "nan"] {
            assert!(Json::parse(text).is_err(), "{text:?} should not parse");
        }
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.field("a").unwrap().as_array().unwrap().len(), 2);
    }
}
